//===- support/ArgParse.cpp -----------------------------------------------===//

#include "support/ArgParse.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace jtc;

ArgParser &ArgParser::add(const char *Name, bool TakesValue,
                          bool ValueRequired, Handler Fn) {
  Options.push_back({Name, TakesValue, ValueRequired, std::move(Fn)});
  return *this;
}

ArgParser &ArgParser::flag(const char *Name, bool *Out) {
  return add(Name, /*TakesValue=*/false, /*ValueRequired=*/false,
             [Out](const std::string &) {
               *Out = true;
               return true;
             });
}

namespace {

/// Parses the full string as an unsigned integer; false on trailing
/// garbage, a sign, or overflow.
bool parseUInt(const char *Name, const std::string &V, uint64_t &Out) {
  if (V.empty() || V[0] == '-' || V[0] == '+') {
    std::fprintf(stderr, "invalid value '%s' for --%s\n", V.c_str(), Name);
    return false;
  }
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(V.c_str(), &End, 10);
  if (errno != 0 || End != V.c_str() + V.size()) {
    std::fprintf(stderr, "invalid value '%s' for --%s\n", V.c_str(), Name);
    return false;
  }
  return true;
}

} // namespace

ArgParser &ArgParser::u32Opt(const char *Name, uint32_t *Out) {
  return add(Name, /*TakesValue=*/true, /*ValueRequired=*/true,
             [Name, Out](const std::string &V) {
               uint64_t N = 0;
               if (!parseUInt(Name, V, N))
                 return false;
               if (N > 0xffffffffull) {
                 std::fprintf(stderr, "value '%s' for --%s out of range\n",
                              V.c_str(), Name);
                 return false;
               }
               *Out = static_cast<uint32_t>(N);
               return true;
             });
}

ArgParser &ArgParser::uintOpt(const char *Name, uint64_t *Out) {
  return add(Name, /*TakesValue=*/true, /*ValueRequired=*/true,
             [Name, Out](const std::string &V) {
               return parseUInt(Name, V, *Out);
             });
}

ArgParser &ArgParser::realOpt(const char *Name, double *Out) {
  return add(Name, /*TakesValue=*/true, /*ValueRequired=*/true,
             [Name, Out](const std::string &V) {
               errno = 0;
               char *End = nullptr;
               double X = std::strtod(V.c_str(), &End);
               if (V.empty() || errno != 0 || End != V.c_str() + V.size()) {
                 std::fprintf(stderr, "invalid value '%s' for --%s\n",
                              V.c_str(), Name);
                 return false;
               }
               *Out = X;
               return true;
             });
}

ArgParser &ArgParser::durationOpt(const char *Name, double *Out) {
  return add(Name, /*TakesValue=*/true, /*ValueRequired=*/true,
             [Name, Out](const std::string &V) {
               errno = 0;
               char *End = nullptr;
               double X = std::strtod(V.c_str(), &End);
               std::string Suffix = End ? std::string(End) : std::string();
               bool Ok = !V.empty() && errno == 0 && End != V.c_str() &&
                         X >= 0.0;
               if (Ok) {
                 if (Suffix == "ms")
                   X /= 1000.0;
                 else if (Suffix == "m")
                   X *= 60.0;
                 else if (Suffix == "h")
                   X *= 3600.0;
                 else if (!Suffix.empty() && Suffix != "s")
                   Ok = false;
               }
               if (!Ok) {
                 std::fprintf(stderr,
                              "invalid duration '%s' for --%s "
                              "(expected e.g. 250ms, 30s, 5m, 1h)\n",
                              V.c_str(), Name);
                 return false;
               }
               *Out = X;
               return true;
             });
}

ArgParser &ArgParser::sizeOpt(const char *Name, uint64_t *Out) {
  return add(Name, /*TakesValue=*/true, /*ValueRequired=*/true,
             [Name, Out](const std::string &V) {
               std::string Digits = V;
               uint64_t Scale = 1;
               if (!Digits.empty()) {
                 switch (Digits.back()) {
                 case 'k': case 'K': Scale = 1024ull; break;
                 case 'm': case 'M': Scale = 1024ull * 1024; break;
                 case 'g': case 'G': Scale = 1024ull * 1024 * 1024; break;
                 default: break;
                 }
                 if (Scale != 1)
                   Digits.pop_back();
               }
               uint64_t N = 0;
               if (!parseUInt(Name, Digits, N))
                 return false;
               if (Scale != 1 && N > UINT64_MAX / Scale) {
                 std::fprintf(stderr, "value '%s' for --%s out of range\n",
                              V.c_str(), Name);
                 return false;
               }
               *Out = N * Scale;
               return true;
             });
}

ArgParser &ArgParser::strOpt(const char *Name, std::string *Out) {
  return add(Name, /*TakesValue=*/true, /*ValueRequired=*/true,
             [Out](const std::string &V) {
               *Out = V;
               return true;
             });
}

ArgParser &ArgParser::custom(const char *Name, Handler Fn,
                             bool ValueRequired) {
  return add(Name, /*TakesValue=*/true, ValueRequired, std::move(Fn));
}

ArgParser &ArgParser::positionals(std::vector<std::string> *Out) {
  Positionals = Out;
  return *this;
}

bool ArgParser::parse(int Argc, char **Argv, int Start) {
  for (int I = Start; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--", 0) != 0) {
      if (!Positionals) {
        std::fprintf(stderr, "unexpected argument '%s'\n", A.c_str());
        return false;
      }
      Positionals->push_back(std::move(A));
      continue;
    }
    size_t Eq = A.find('=');
    bool HasValue = Eq != std::string::npos;
    std::string Name = A.substr(2, HasValue ? Eq - 2 : std::string::npos);
    std::string Value = HasValue ? A.substr(Eq + 1) : std::string();

    const Option *Found = nullptr;
    for (const Option &O : Options)
      if (O.Name == Name) {
        Found = &O;
        break;
      }
    if (!Found) {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return false;
    }
    if (HasValue && !Found->TakesValue) {
      std::fprintf(stderr, "option --%s takes no value\n", Name.c_str());
      return false;
    }
    if (!HasValue && Found->ValueRequired) {
      std::fprintf(stderr, "option --%s requires =<value>\n", Name.c_str());
      return false;
    }
    if (!Found->Fn(Value))
      return false;
  }
  return true;
}
