//===- support/SaturatingCounter.h - 16-bit saturating counters -*- C++ -*-===//
///
/// \file
/// The paper stores branch correlations in 16-bit counters that saturate on
/// increment and are halved (shifted right one bit) by the periodic decay
/// pass (paper section 4.1.1). This header provides that counter.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SUPPORT_SATURATINGCOUNTER_H
#define JTC_SUPPORT_SATURATINGCOUNTER_H

#include <cstdint>
#include <limits>

namespace jtc {

/// A 16-bit counter that sticks at its maximum instead of wrapping.
class SaturatingCounter {
public:
  static constexpr uint16_t Max = std::numeric_limits<uint16_t>::max();

  SaturatingCounter() = default;
  explicit SaturatingCounter(uint16_t Initial) : Count(Initial) {}

  uint16_t value() const { return Count; }

  /// Adds one, saturating at Max.
  void increment() {
    if (Count != Max)
      ++Count;
  }

  /// Halves the counter (the decay step: one right shift).
  void decay() { Count = static_cast<uint16_t>(Count >> 1); }

  void reset(uint16_t V = 0) { Count = V; }

  bool operator==(const SaturatingCounter &O) const = default;

private:
  uint16_t Count = 0;
};

} // namespace jtc

#endif // JTC_SUPPORT_SATURATINGCOUNTER_H
