//===- support/TypedError.cpp ---------------------------------------------===//

#include "support/TypedError.h"

#include "support/Json.h"

using namespace jtc;

std::string TypedError::message() const {
  if (ok())
    return "ok";
  std::string S = codeName();
  if (!Detail.empty()) {
    S += ": ";
    S += Detail;
  }
  return S;
}

std::string TypedError::qualifiedMessage() const {
  if (ok())
    return "ok";
  std::string S = categoryName();
  S += "/";
  S += message();
  return S;
}

void TypedError::writeJsonFields(JsonWriter &W) const {
  W.field("category", categoryName());
  W.field("code", codeName());
  if (!Detail.empty())
    W.field("detail", Detail);
}
