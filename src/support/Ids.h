//===- support/Ids.h - Shared identifier types ------------------*- C++ -*-===//
///
/// \file
/// Basic-block identifiers and block-pair keys. The profiler and trace
/// cache operate purely on the dynamic stream of BlockIds, so the type
/// lives here rather than in the interpreter to keep those libraries
/// independent of interpreter internals.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SUPPORT_IDS_H
#define JTC_SUPPORT_IDS_H

#include <cstdint>

namespace jtc {

/// Identifies one basic block, unique across the whole prepared module.
using BlockId = uint32_t;

/// Sentinel for "no block".
constexpr BlockId InvalidBlockId = 0xffffffffu;

/// Packs an ordered block pair (X, Y) -- the paper's branch (X -> Y) --
/// into one hashable key.
inline uint64_t pairKey(BlockId X, BlockId Y) {
  return (static_cast<uint64_t>(X) << 32) | Y;
}

} // namespace jtc

#endif // JTC_SUPPORT_IDS_H
