//===- support/TablePrinter.h - Aligned ASCII tables -----------*- C++ -*-===//
///
/// \file
/// Formats the benchmark harness output as aligned ASCII tables mirroring
/// the rows/columns of the paper's Tables I-VII.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SUPPORT_TABLEPRINTER_H
#define JTC_SUPPORT_TABLEPRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace jtc {

/// Collects rows of string cells and prints them with per-column alignment.
///
/// Usage:
/// \code
///   TablePrinter T({"threshold", "compress", "javac"});
///   T.addRow({"97%", "12.1", "4.3"});
///   T.print(OS);
/// \endcode
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends one row; must have the same arity as the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (header, separator, rows) to \p OS.
  void print(std::ostream &OS) const;

  /// Formats a double with \p Decimals fraction digits.
  static std::string fmt(double Value, int Decimals = 1);

  /// Formats a ratio as a percentage string like "97.3%".
  static std::string fmtPercent(double Ratio, int Decimals = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace jtc

#endif // JTC_SUPPORT_TABLEPRINTER_H
