//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
///
/// \file
/// Minimal steady-clock stopwatch used by the Table VI/VII overhead
/// experiments, which time the profiled vs. unprofiled interpreters.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SUPPORT_TIMER_H
#define JTC_SUPPORT_TIMER_H

#include <chrono>

namespace jtc {

/// A stopwatch over std::chrono::steady_clock.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace jtc

#endif // JTC_SUPPORT_TIMER_H
