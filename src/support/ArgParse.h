//===- support/ArgParse.h - Declarative CLI flag parsing --------*- C++ -*-===//
///
/// \file
/// The --flag / --name=value parser shared by the command-line tools
/// (jtcvm, jtc-fuzz, jtc-serve) and the bench binaries. Each tool
/// declares its options once against an ArgParser; parsing, value
/// conversion, "unknown option" diagnostics and the usage exit path are
/// identical everywhere, so flag spellings cannot drift between tools.
///
/// Conventions: every option is spelled --kebab-case; value options take
/// --name=value (never a separate argv slot); bare arguments are
/// positionals (rejected unless the tool asks for them).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SUPPORT_ARGPARSE_H
#define JTC_SUPPORT_ARGPARSE_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace jtc {

class ArgParser {
public:
  /// Handler for custom(): receives the value ("" for a bare --name) and
  /// returns false to reject it (the handler prints its own diagnostic).
  using Handler = std::function<bool(const std::string &Value)>;

  /// Boolean switch: --name sets *Out to true. Rejects --name=value.
  ArgParser &flag(const char *Name, bool *Out);

  /// --name=<n>, a 32-bit unsigned integer.
  ArgParser &u32Opt(const char *Name, uint32_t *Out);

  /// --name=<n>, a 64-bit unsigned integer.
  ArgParser &uintOpt(const char *Name, uint64_t *Out);

  /// --name=<x>, a real number.
  ArgParser &realOpt(const char *Name, double *Out);

  /// --name=<text>; the value may be empty only via --name= explicitly.
  ArgParser &strOpt(const char *Name, std::string *Out);

  /// --name=<duration>: a number with an optional ms / s / m / h suffix
  /// ("250ms", "30s", "5m", "1.5h"). A bare number means seconds, so
  /// older second-valued spellings keep working. *Out is in seconds.
  ArgParser &durationOpt(const char *Name, double *Out);

  /// --name=<size>: a byte count with an optional k / M / G suffix
  /// (case-insensitive, x1024: "64k", "1M"). A bare number is bytes.
  ArgParser &sizeOpt(const char *Name, uint64_t *Out);

  /// --name or --name=value, interpreted by \p Fn. With \p ValueRequired
  /// a bare --name is rejected before \p Fn runs.
  ArgParser &custom(const char *Name, Handler Fn, bool ValueRequired = false);

  /// --name=<choice>, a closed enum vocabulary: each (spelling, value)
  /// pair maps one legal string to *Out. Anything else is rejected with a
  /// diagnostic listing the legal spellings, so every tool sharing an
  /// enum flag (--validate, --backend) rejects identically.
  template <typename Enum>
  ArgParser &choice(const char *Name,
                    std::initializer_list<std::pair<const char *, Enum>> Vocab,
                    Enum *Out) {
    std::vector<std::pair<std::string, Enum>> Cs(Vocab.begin(), Vocab.end());
    return custom(
        Name,
        [Name, Cs, Out](const std::string &V) {
          for (const auto &C : Cs)
            if (C.first == V) {
              *Out = C.second;
              return true;
            }
          std::string Legal;
          for (const auto &C : Cs) {
            if (!Legal.empty())
              Legal += ", ";
            Legal += C.first;
          }
          std::fprintf(stderr, "invalid value '%s' for --%s (expected %s)\n",
                       V.c_str(), Name, Legal.c_str());
          return false;
        },
        /*ValueRequired=*/true);
  }

  /// Collect non-option arguments into \p Out instead of rejecting them.
  ArgParser &positionals(std::vector<std::string> *Out);

  /// Parses Argv[Start..Argc). On any error a one-line diagnostic goes to
  /// stderr and false is returned (callers print usage and exit 2).
  bool parse(int Argc, char **Argv, int Start = 1);

private:
  struct Option {
    std::string Name;    ///< Without the leading "--".
    bool TakesValue;     ///< Accepts --name=value.
    bool ValueRequired;  ///< Rejects a bare --name.
    Handler Fn;
  };

  ArgParser &add(const char *Name, bool TakesValue, bool ValueRequired,
                 Handler Fn);

  std::vector<Option> Options;
  std::vector<std::string> *Positionals = nullptr;
};

} // namespace jtc

#endif // JTC_SUPPORT_ARGPARSE_H
