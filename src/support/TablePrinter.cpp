//===- support/TablePrinter.cpp -------------------------------------------===//

#include "support/TablePrinter.h"

#include <cassert>
#include <cstdio>

using namespace jtc;

TablePrinter::TablePrinter(std::vector<std::string> Hdr)
    : Header(std::move(Hdr)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row arity must match header");
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print(std::ostream &OS) const {
  std::vector<size_t> Width(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Width[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Width[I])
        Width[I] = Row[I].size();

  auto emitRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      OS << (I == 0 ? "| " : " | ");
      OS << Row[I];
      OS << std::string(Width[I] - Row[I].size(), ' ');
    }
    OS << " |\n";
  };

  emitRow(Header);
  for (size_t I = 0; I < Header.size(); ++I) {
    OS << (I == 0 ? "|-" : "-|-");
    OS << std::string(Width[I], '-');
  }
  OS << "-|\n";
  for (const auto &Row : Rows)
    emitRow(Row);
}

std::string TablePrinter::fmt(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string TablePrinter::fmtPercent(double Ratio, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Decimals, Ratio * 100.0);
  return Buf;
}
