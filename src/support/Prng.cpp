//===- support/Prng.cpp ---------------------------------------------------===//

#include "support/Prng.h"

using namespace jtc;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void Prng::reseed(uint64_t Seed) {
  uint64_t X = Seed;
  State0 = splitmix64(X);
  State1 = splitmix64(X);
  // Guard against the all-zero state, which xorshift cannot leave.
  if (State0 == 0 && State1 == 0)
    State1 = 1;
}

uint64_t Prng::next() {
  uint64_t S1 = State0;
  const uint64_t S0 = State1;
  State0 = S0;
  S1 ^= S1 << 23;
  State1 = S1 ^ S0 ^ (S1 >> 17) ^ (S0 >> 26);
  return State1 + S0;
}

uint64_t Prng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  // A bound of one admits a single value; skip the draw so degenerate
  // ranges cost nothing.
  if (Bound == 1)
    return 0;
  // Multiply-shift bounded generation; the tiny modulo bias is irrelevant
  // for workload synthesis.
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(next()) * Bound) >> 64);
}

int64_t Prng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  // Compute the span in unsigned arithmetic: Hi - Lo overflows int64_t for
  // wide ranges, and the full-width range [INT64_MIN, INT64_MAX] wraps the
  // span itself to zero -- meaning "all 2^64 values", i.e. a raw draw.
  uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
  uint64_t Draw = Span == 0 ? next() : nextBelow(Span);
  return static_cast<int64_t>(static_cast<uint64_t>(Lo) + Draw);
}

bool Prng::chancePercent(unsigned Percent) {
  assert(Percent <= 100 && "percentage out of range");
  return nextBelow(100) < Percent;
}

double Prng::nextUnit() {
  // 53 random mantissa bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}
