//===- support/Stats.h - Small statistics helpers --------------*- C++ -*-===//
///
/// \file
/// Aggregation helpers used when reducing per-benchmark measurements into
/// the averages the paper's tables report.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SUPPORT_STATS_H
#define JTC_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace jtc {

/// Arithmetic mean; returns 0 for an empty sample.
double mean(const std::vector<double> &Values);

/// Geometric mean; requires strictly positive samples, returns 0 if empty.
double geomean(const std::vector<double> &Values);

/// Population standard deviation; returns 0 for fewer than two samples.
double stddev(const std::vector<double> &Values);

/// Ratio helper that maps x/0 to 0 instead of a trap.
double safeDiv(double Num, double Den);

/// Online accumulator for min/max/mean without storing the samples.
class RunningStat {
public:
  void add(double X);
  size_t count() const { return N; }
  double mean() const { return N == 0 ? 0.0 : Sum / static_cast<double>(N); }
  double min() const { return N == 0 ? 0.0 : Lo; }
  double max() const { return N == 0 ? 0.0 : Hi; }

private:
  size_t N = 0;
  double Sum = 0;
  double Lo = 0;
  double Hi = 0;
};

} // namespace jtc

#endif // JTC_SUPPORT_STATS_H
