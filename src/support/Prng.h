//===- support/Prng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
///
/// \file
/// A small, fast, deterministic PRNG (xorshift128+ seeded via splitmix64).
/// Every stochastic choice in the workload generators and tests flows
/// through this class so that runs are exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SUPPORT_PRNG_H
#define JTC_SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>

namespace jtc {

/// Deterministic xorshift128+ generator.
///
/// Not cryptographic; chosen for speed and reproducibility across
/// platforms. The default seed is arbitrary but fixed.
class Prng {
public:
  explicit Prng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64 so that nearby
  /// seeds yield unrelated streams.
  void reseed(uint64_t Seed);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t next();

  /// Returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  /// A bound of one returns 0 without consuming generator state.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] inclusive. Handles ranges wider
  /// than int64_t, including the full-width [INT64_MIN, INT64_MAX].
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns true with probability \p Percent / 100.
  bool chancePercent(unsigned Percent);

  /// Returns a uniform double in [0, 1).
  double nextUnit();

private:
  uint64_t State0 = 0;
  uint64_t State1 = 0;
};

} // namespace jtc

#endif // JTC_SUPPORT_PRNG_H
