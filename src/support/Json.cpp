//===- support/Json.cpp ---------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace jtc;

void JsonWriter::writeEscaped(std::ostream &OS, std::string_view S) {
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\b':
      OS << "\\b";
      break;
    case '\f':
      OS << "\\f";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        OS << Buf;
      } else {
        OS << Ch;
      }
    }
  }
}

void JsonWriter::preValue() {
  if (KeyPending) {
    KeyPending = false;
    return;
  }
  if (!Scopes.empty()) {
    assert(Scopes.back().Close == ']' &&
           "object members need a key() before the value");
    if (Scopes.back().HasElems)
      OS << ',';
    Scopes.back().HasElems = true;
  }
}

JsonWriter &JsonWriter::beginObject() {
  preValue();
  Scopes.push_back({'}'});
  OS << '{';
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Scopes.empty() && Scopes.back().Close == '}' && "scope mismatch");
  Scopes.pop_back();
  OS << '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  preValue();
  Scopes.push_back({']'});
  OS << '[';
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Scopes.empty() && Scopes.back().Close == ']' && "scope mismatch");
  Scopes.pop_back();
  OS << ']';
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view K) {
  assert(!Scopes.empty() && Scopes.back().Close == '}' &&
         "key() outside an object");
  assert(!KeyPending && "two keys in a row");
  if (Scopes.back().HasElems)
    OS << ',';
  Scopes.back().HasElems = true;
  OS << '"';
  writeEscaped(OS, K);
  OS << "\":";
  KeyPending = true;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view V) {
  preValue();
  OS << '"';
  writeEscaped(OS, V);
  OS << '"';
  return *this;
}

JsonWriter &JsonWriter::valueUInt(uint64_t V) {
  preValue();
  OS << V;
  return *this;
}

JsonWriter &JsonWriter::valueInt(int64_t V) {
  preValue();
  OS << V;
  return *this;
}

JsonWriter &JsonWriter::valueReal(double V) {
  preValue();
  if (!std::isfinite(V)) {
    OS << "null";
    return *this;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.12g", V);
  OS << Buf;
  return *this;
}

JsonWriter &JsonWriter::valueBool(bool V) {
  preValue();
  OS << (V ? "true" : "false");
  return *this;
}

JsonWriter &JsonWriter::null() {
  preValue();
  OS << "null";
  return *this;
}
