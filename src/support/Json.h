//===- support/Json.h - Minimal JSON emission -------------------*- C++ -*-===//
///
/// \file
/// A small streaming JSON writer used by every machine-readable output in
/// the system: VmStats::toJson, the telemetry exporters (Chrome trace and
/// JSONL event dumps) and the benchmark --json artifacts. Emission is
/// compact (no whitespace) and deterministic -- doubles are formatted with
/// "%.12g" so golden-output tests are stable across platforms -- which
/// keeps every consumer byte-reproducible for a given input.
///
/// Commas are inserted automatically from a scope stack; the caller only
/// sequences begin/end, key and value calls. Misuse (a value where a key
/// is required, unbalanced scopes) is caught by assertions.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SUPPORT_JSON_H
#define JTC_SUPPORT_JSON_H

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace jtc {

class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS) : OS(OS) {}

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; must be inside an object and followed by
  /// exactly one value or container.
  JsonWriter &key(std::string_view K);

  JsonWriter &value(std::string_view V);
  JsonWriter &value(const char *V) { return value(std::string_view(V)); }
  JsonWriter &valueUInt(uint64_t V);
  JsonWriter &valueInt(int64_t V);
  /// Non-finite doubles (which JSON cannot represent) are emitted as null.
  JsonWriter &valueReal(double V);
  JsonWriter &valueBool(bool V);
  JsonWriter &null();

  //===--- key + value in one call ------------------------------------===//
  JsonWriter &field(std::string_view K, std::string_view V) {
    return key(K).value(V);
  }
  JsonWriter &fieldUInt(std::string_view K, uint64_t V) {
    return key(K).valueUInt(V);
  }
  JsonWriter &fieldInt(std::string_view K, int64_t V) {
    return key(K).valueInt(V);
  }
  JsonWriter &fieldReal(std::string_view K, double V) {
    return key(K).valueReal(V);
  }
  JsonWriter &fieldBool(std::string_view K, bool V) {
    return key(K).valueBool(V);
  }

  /// Writes \p S with JSON string escaping but no surrounding machinery;
  /// exposed for code assembling JSON by hand (the JSONL exporter).
  static void writeEscaped(std::ostream &OS, std::string_view S);

private:
  /// Called before any value/container: writes the separating comma and
  /// consumes a pending key.
  void preValue();

  struct Scope {
    char Close;      ///< '}' or ']'
    bool HasElems = false;
  };

  std::ostream &OS;
  std::vector<Scope> Scopes;
  bool KeyPending = false;
};

} // namespace jtc

#endif // JTC_SUPPORT_JSON_H
