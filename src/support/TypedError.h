//===- support/TypedError.h - One typed-error pattern -----------*- C++ -*-===//
///
/// \file
/// The shared shape of every typed-error taxonomy in the repository. Three
/// subsystems grew their own enum + name + message dialects (the persist
/// decoder's PersistErrorKind, the btrace decoder reusing it, and the
/// validator's rejection Reason); the trace-backend tier adds compile
/// fallback reasons. Instead of a fourth dialect, each taxonomy registers
/// an ErrorDomain -- a domain name plus a code-to-name function -- and
/// renders failures through one TypedError value, so diagnostics
/// ("domain: code: detail") and --json output ({"category", "code",
/// "detail"}) are byte-uniform across subsystems.
///
/// Each subsystem keeps its own enum as the source of truth (codes are
/// persisted in telemetry and fixtures, so their numeric values stay
/// stable); TypedError is the rendering seam, not a replacement enum.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SUPPORT_TYPEDERROR_H
#define JTC_SUPPORT_TYPEDERROR_H

#include <cstdint>
#include <string>

namespace jtc {

class JsonWriter;

/// One error taxonomy: a stable category name and the mapping from its
/// enum codes to stable kebab-case names. Domains are static constants
/// (persistErrorDomain(), validate::reasonDomain(), backend::
/// compileFallbackDomain()); a TypedError holds a pointer to one.
struct ErrorDomain {
  /// Stable category name ("persist", "validate", "backend").
  const char *Name;
  /// Stable code name for any code of this domain ("bad-magic",
  /// "guard-dropped", "unsupported-op", ...).
  const char *(*CodeName)(uint32_t Code);
};

/// One failure (or success) of any registered domain. Default-constructed
/// means success; ok() is the polarity every API reports.
class TypedError {
public:
  TypedError() = default;
  TypedError(const ErrorDomain &Domain, uint32_t Code, std::string Detail = "")
      : Dom(&Domain), Code(Code), Detail(std::move(Detail)) {}

  bool ok() const { return Dom == nullptr; }

  /// The taxonomy, or null for success.
  const ErrorDomain *domain() const { return Dom; }
  uint32_t code() const { return Code; }

  /// Stable kebab-case code name; "ok" for success.
  const char *codeName() const { return Dom ? Dom->CodeName(Code) : "ok"; }

  /// Category name; "ok" for success.
  const char *categoryName() const { return Dom ? Dom->Name : "ok"; }

  const std::string &detail() const { return Detail; }

  /// "code: detail" (or just "code", or "ok"), the uniform one-line
  /// diagnostic every taxonomy historically printed.
  std::string message() const;

  /// "category/code: detail", for contexts mixing domains.
  std::string qualifiedMessage() const;

  /// Uniform --json rendering: writes "category", "code" and (when
  /// non-empty) "detail" fields into an already-open JSON object.
  void writeJsonFields(JsonWriter &W) const;

private:
  const ErrorDomain *Dom = nullptr;
  uint32_t Code = 0;
  std::string Detail;
};

} // namespace jtc

#endif // JTC_SUPPORT_TYPEDERROR_H
