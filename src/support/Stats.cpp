//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

#include <cassert>
#include <cmath>

using namespace jtc;

double jtc::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double jtc::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0;
  for (double V : Values) {
    assert(V > 0 && "geomean requires positive samples");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double jtc::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Acc = 0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size()));
}

double jtc::safeDiv(double Num, double Den) {
  return Den == 0.0 ? 0.0 : Num / Den;
}

void RunningStat::add(double X) {
  if (N == 0) {
    Lo = Hi = X;
  } else {
    if (X < Lo)
      Lo = X;
    if (X > Hi)
      Hi = X;
  }
  ++N;
  Sum += X;
}
