//===- validate/Validator.h - Trace translation validation ------*- C++ -*-===//
///
/// \file
/// A translation validator for the trace optimizer, in the
/// CompCert-style "verify each translation, not the translator" mold:
/// instead of trusting TraceOptimizer, every optimized segment is proved
/// equivalent to its source segment at construction time, and a trace
/// whose proof fails falls back to the unoptimized form.
///
/// The proof is an abstract bisimulation over the two straight-line
/// instruction sequences. Both are evaluated symbolically into a shared
/// hash-consed expression DAG (so syntactically different but
/// semantically equal computations converge to the same node id), an
/// ordered list of observable effects (prints, heap operations,
/// possibly-trapping divisions), and a journal of guard observations.
/// The refinement relation then requires, under the trace's guard
/// assumptions (entry constants + passed guards):
///
///  - every source guard is either matched by an optimized guard over
///    the same condition values with identical exit metadata, or is
///    *justified*: its condition is implied by entry facts (constant
///    operands that evaluate to the recorded direction) or dominated by
///    an equivalent earlier check that already passed;
///  - at every matched side exit, the optimized machine state restores
///    the source state -- all live root-frame locals (dead-at-exit
///    locals may diverge only when the guard carries liveness facts),
///    an identical operand stack, and no observable effect reordered
///    across the exit;
///  - final locals, final stack and the full effect list agree.
///
/// Failures carry a typed Reason so tests can assert *why* a deliberate
/// miscompile (opt/OptConfig.h's UnsoundPass hook) was rejected, and so
/// rejection telemetry is aggregable by cause.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_VALIDATE_VALIDATOR_H
#define JTC_VALIDATE_VALIDATOR_H

#include "opt/TraceOptimizer.h"
#include "support/TypedError.h"

#include <cstdint>
#include <string>

namespace jtc {

namespace analysis {
class ModuleAnalysis;
}

namespace validate {

/// Why a segment pair failed validation. Order is part of the public
/// surface: reason codes are persisted in telemetry events and corpus
/// fixtures, so new reasons go at the end.
enum class Reason : uint8_t {
  None = 0,             ///< Accepted.
  ShapeMismatch,        ///< Frame metadata (locals, scratch, entry facts) differs.
  Unsupported,          ///< The symbolic evaluator cannot model the segment.
  GuardDropped,         ///< A source guard vanished without justification.
  GuardExtra,           ///< The optimized form checks a guard the source never did.
  GuardOperandMismatch, ///< Matched guard tests different condition values.
  GuardExitMismatch,    ///< Matched guard's exit pc / liveness metadata differs.
  SideExitLocalMismatch,  ///< A live local is wrong at a side exit.
  SideExitStackMismatch,  ///< The operand stack is wrong at a side exit.
  SideExitEffectMismatch, ///< An effect moved across a side exit.
  EffectMismatch,         ///< Observable effect lists disagree.
  FinalLocalMismatch,     ///< A local's final value differs.
  FinalStackMismatch,     ///< The final operand stack differs.
  MemLoadUnjustified,  ///< A heap load vanished without a proof that its
                       ///< value and checks were already established.
  MemStoreUnjustified, ///< A heap store vanished (or appeared) without a
                       ///< dead-store proof, or final heaps diverge.
  MemSinkUnjustified,  ///< A heap store crossed a side exit without a
                       ///< proof the exit path cannot observe the cell.
};

inline constexpr unsigned NumReasons =
    static_cast<unsigned>(Reason::MemSinkUnjustified) + 1;

/// Stable kebab-case name (telemetry, --json, corpus fixtures).
const char *reasonName(Reason R);

/// The TypedError domain for validation rejections ("validate").
const ErrorDomain &reasonDomain();

/// The verdict for one segment pair or a whole trace.
struct Result {
  bool Ok = true;
  Reason Why = Reason::None;
  /// Index of the failing segment within the trace (0 for single-segment
  /// validation).
  uint32_t SegmentIndex = 0;
  /// Human-readable specifics (local index, guard position, ...).
  std::string Detail;

  static Result pass() { return Result(); }
  static Result fail(Reason Why, std::string Detail) {
    Result R;
    R.Ok = false;
    R.Why = Why;
    R.Detail = std::move(Detail);
    return R;
  }

  /// This verdict as the repo-uniform TypedError (success when Ok).
  TypedError typed() const {
    if (Ok)
      return TypedError();
    return TypedError(reasonDomain(), static_cast<uint32_t>(Why), Detail);
  }
};

/// Proves \p Opt a sound refinement of \p Src under the segment's entry
/// assumptions. Both segments are evaluated from the same fully symbolic
/// initial state, so acceptance means equivalence for *every* initial
/// (locals, stack, heap) -- the validator never needs to trust the
/// optimizer's reasoning, only re-check its conclusion.
///
/// Heap accesses evaluate against a symbolic heap (a chain of store
/// frames over an opaque initial heap, with same-cell collapse and
/// commuting of provably distinct frames), so a redundant load the
/// optimizer forwarded converges to the same value id as the source's
/// load. Omitted load effects must be justified by an earlier access to
/// the same address or a trap-freedom proof; omitted or sunk stores must
/// be proven dead (overwritten, or targeting an allocation the exit
/// path / segment end provably cannot observe). \p M supplies class
/// field counts for those trap-freedom proofs; without it the memory
/// justifications that need one are rejected. Reference reasoning
/// assumes type-verified input (an allocation's reference cannot be
/// forged from arithmetic), which the bytecode verifier guarantees.
Result validateSegment(const LinearSegment &Src, const LinearSegment &Opt,
                       const Module *M = nullptr);

/// Convenience for the trace-install path: linearizes \p T, optimizes
/// each segment under \p Config, and validates every pair. The first
/// failing segment decides the verdict (SegmentIndex tells which).
/// \p Facts must be the analysis the optimizer itself would use --
/// validation re-runs the optimizer, it does not take its output on
/// faith.
Result validateTrace(const PreparedModule &PM, const Trace &T,
                     const OptConfig &Config = OptConfig(),
                     const analysis::ModuleAnalysis *Facts = nullptr);

} // namespace validate
} // namespace jtc

#endif // JTC_VALIDATE_VALIDATOR_H
