//===- validate/Validator.cpp ---------------------------------------------===//

#include "validate/Validator.h"

#include "analysis/Analysis.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>

using namespace jtc;
using namespace jtc::validate;

const char *validate::reasonName(Reason R) {
  switch (R) {
  case Reason::None:
    return "none";
  case Reason::ShapeMismatch:
    return "shape-mismatch";
  case Reason::Unsupported:
    return "unsupported";
  case Reason::GuardDropped:
    return "guard-dropped";
  case Reason::GuardExtra:
    return "guard-extra";
  case Reason::GuardOperandMismatch:
    return "guard-operand-mismatch";
  case Reason::GuardExitMismatch:
    return "guard-exit-mismatch";
  case Reason::SideExitLocalMismatch:
    return "side-exit-local-mismatch";
  case Reason::SideExitStackMismatch:
    return "side-exit-stack-mismatch";
  case Reason::SideExitEffectMismatch:
    return "side-exit-effect-mismatch";
  case Reason::EffectMismatch:
    return "effect-mismatch";
  case Reason::FinalLocalMismatch:
    return "final-local-mismatch";
  case Reason::FinalStackMismatch:
    return "final-stack-mismatch";
  case Reason::MemLoadUnjustified:
    return "mem-load-unjustified";
  case Reason::MemStoreUnjustified:
    return "mem-store-unjustified";
  case Reason::MemSinkUnjustified:
    return "mem-sink-unjustified";
  }
  return "none";
}

const ErrorDomain &validate::reasonDomain() {
  static const ErrorDomain Dom = {"validate", [](uint32_t Code) {
                                    return reasonName(
                                        static_cast<Reason>(Code));
                                  }};
  return Dom;
}

namespace {

//===----------------------------------------------------------------------===//
// Hash-consed symbolic expressions
//===----------------------------------------------------------------------===//

/// One node of the shared expression DAG. Hash-consing makes node-id
/// equality a sound (if incomplete) proof of value equality: both runs
/// build their values in the same pool, so a computation the optimizer
/// merely re-arranged syntactically converges to the same id as long as
/// the validator's folder normalizes both spellings.
struct Expr {
  enum class Kind : uint8_t {
    Init,    ///< Initial value of local C.
    StackIn, ///< C-th value popped from the incoming operand stack.
    Const,   ///< The constant C.
    Unop,    ///< Op applied to A.
    Binop,   ///< Op applied to (A, B).
    Opaque,  ///< Result of the C-th observable effect (unused today).
    HeapInit, ///< The opaque heap the segment starts from.
    Alloc,    ///< The C-th in-segment allocation. Op is New (A = class
              ///< id) or NewArray (A = length value id). Allocations are
              ///< never added, dropped or reordered, so the C-th one
              ///< denotes the same object in both runs.
    Addr,     ///< A heap cell address. Op canonicalizes the group
              ///< (GetField = field, Iaload = element, ArrayLength =
              ///< length), A = base value id, B = element index value
              ///< id, C = field index immediate.
    Store,    ///< A heap state: frame B (a StoreBind) over heap A.
    StoreBind, ///< One store frame: address A holds value B.
    Select,   ///< A stuck heap read: address A against heap B.
  };
  Kind K;
  Opcode Op = Opcode::Nop;
  int64_t C = 0;
  uint32_t A = 0, B = 0;
};

/// Folds A op B exactly as interp::Machine executes it (wrap-around
/// arithmetic, masked shifts, the INT64_MIN/-1 special cases). Unlike the
/// optimizer's folder there is no immediate-range restriction: the
/// validator tracks real semantics, not re-emittability, and both runs
/// fold under the same rules so optimized and unoptimized spellings of a
/// constant computation reach the same node.
bool foldBinary(Opcode Op, int64_t A, int64_t B, int64_t &Out) {
  auto U = [](int64_t V) { return static_cast<uint64_t>(V); };
  switch (Op) {
  case Opcode::Iadd:
    Out = static_cast<int64_t>(U(A) + U(B));
    return true;
  case Opcode::Isub:
    Out = static_cast<int64_t>(U(A) - U(B));
    return true;
  case Opcode::Imul:
    Out = static_cast<int64_t>(U(A) * U(B));
    return true;
  case Opcode::Idiv:
    if (B == 0)
      return false;
    Out = (A == std::numeric_limits<int64_t>::min() && B == -1) ? A : A / B;
    return true;
  case Opcode::Irem:
    if (B == 0)
      return false;
    Out = (A == std::numeric_limits<int64_t>::min() && B == -1) ? 0 : A % B;
    return true;
  case Opcode::Ishl:
    Out = static_cast<int64_t>(U(A) << (B & 63));
    return true;
  case Opcode::Ishr:
    Out = A >> (B & 63);
    return true;
  case Opcode::Iushr:
    Out = static_cast<int64_t>(U(A) >> (B & 63));
    return true;
  case Opcode::Iand:
    Out = A & B;
    return true;
  case Opcode::Ior:
    Out = A | B;
    return true;
  case Opcode::Ixor:
    Out = A ^ B;
    return true;
  default:
    return false;
  }
}

class ExprPool {
public:
  uint32_t init(uint32_t Local) {
    return intern({Expr::Kind::Init, Opcode::Nop, Local, 0, 0});
  }
  uint32_t stackIn(uint32_t K) {
    return intern({Expr::Kind::StackIn, Opcode::Nop, K, 0, 0});
  }
  uint32_t constant(int64_t V) {
    return intern({Expr::Kind::Const, Opcode::Nop, V, 0, 0});
  }
  uint32_t opaque(uint64_t EffectIndex) {
    return intern(
        {Expr::Kind::Opaque, Opcode::Nop, static_cast<int64_t>(EffectIndex), 0,
         0});
  }
  uint32_t unop(Opcode Op, uint32_t A) {
    assert(Op == Opcode::Ineg);
    if (auto C = constOf(A))
      return constant(static_cast<int64_t>(0 - static_cast<uint64_t>(*C)));
    return intern({Expr::Kind::Unop, Op, 0, A, 0});
  }
  uint32_t binop(Opcode Op, uint32_t A, uint32_t B) {
    auto CA = constOf(A), CB = constOf(B);
    int64_t Folded = 0;
    if (CA && CB && foldBinary(Op, *CA, *CB, Folded))
      return constant(Folded);
    return intern({Expr::Kind::Binop, Op, 0, A, B});
  }
  std::optional<int64_t> constOf(uint32_t Id) const {
    const Expr &E = Nodes[Id];
    if (E.K == Expr::Kind::Const)
      return E.C;
    return std::nullopt;
  }

  const Expr &node(uint32_t Id) const { return Nodes[Id]; }

  //===--------------------------------------------------------------------===//
  // Symbolic heap
  //===--------------------------------------------------------------------===//

  uint32_t heapInit() {
    return intern({Expr::Kind::HeapInit, Opcode::Nop, 0, 0, 0});
  }
  uint32_t alloc(Opcode Op, uint32_t Ordinal, uint32_t Aux) {
    return intern({Expr::Kind::Alloc, Op, Ordinal, Aux, 0});
  }
  /// The address of a field / element / length cell. \p GroupOp is the
  /// canonical load opcode of the group, so a GetField and a PutField of
  /// the same field intern the same address.
  uint32_t addr(Opcode GroupOp, uint32_t Base, uint32_t Index,
                int32_t FieldImm) {
    return intern({Expr::Kind::Addr, GroupOp, FieldImm, Base, Index});
  }
  /// The StoreBind frame "Addr holds Value" (for effect bookkeeping).
  uint32_t bind(uint32_t Addr, uint32_t Value) {
    return intern({Expr::Kind::StoreBind, Opcode::Nop, 0, Addr, Value});
  }

  /// True when the two addresses can never name the same cell: different
  /// groups, same base with a provably different index, two distinct
  /// in-segment allocations, or an in-segment allocation against a value
  /// that existed before it (an initial local or incoming stack value
  /// cannot hold a reference that is only created later; type-verified
  /// code cannot forge one from arithmetic).
  bool distinctAddrs(uint32_t A, uint32_t B) const {
    if (A == B)
      return false;
    const Expr &EA = Nodes[A], &EB = Nodes[B];
    if (EA.Op != EB.Op)
      return true; // different cell groups never alias
    if (EA.A == EB.A) { // same base value
      if (EA.Op == Opcode::GetField)
        return EA.C != EB.C;
      if (EA.Op == Opcode::Iaload) {
        auto CI = constOf(EA.B), CJ = constOf(EB.B);
        return CI && CJ && *CI != *CJ;
      }
      return false;
    }
    auto BaseKind = [&](uint32_t Id) { return Nodes[Id].K; };
    Expr::Kind KA = BaseKind(EA.A), KB = BaseKind(EB.A);
    if (KA == Expr::Kind::Alloc && KB == Expr::Kind::Alloc)
      return true; // distinct allocations are distinct objects
    if (KA == Expr::Kind::Alloc &&
        (KB == Expr::Kind::Init || KB == Expr::Kind::StackIn))
      return true;
    if (KB == Expr::Kind::Alloc &&
        (KA == Expr::Kind::Init || KA == Expr::Kind::StackIn))
      return true;
    return false;
  }

  /// Pushes a store frame, normalizing so both runs converge to the same
  /// chain id: an older frame for the *same* address is collapsed away
  /// (it can no longer be observed), and provably distinct adjacent
  /// frames are ordered by address id (commuting them is sound, and a
  /// canonical order makes a sunk store meet its source-side twin).
  uint32_t store(uint32_t Heap, uint32_t Addr, uint32_t Value) {
    if (auto Collapsed = removeStore(Heap, Addr, 16))
      Heap = *Collapsed;
    return pushFrame(Heap, intern({Expr::Kind::StoreBind, Opcode::Nop, 0, Addr,
                                   Value}),
                     16);
  }

  /// Reads \p Addr out of \p Heap: the nearest frame for the same
  /// address wins; provably distinct frames are skipped. An unresolvable
  /// read is a stuck Select node keyed by the address and the deepest
  /// heap the walk reached -- identical reads in both runs unify even
  /// when one run's chain carries extra provably distinct frames.
  uint32_t select(uint32_t Heap, uint32_t Addr) {
    int Depth = 32;
    uint32_t Cur = Heap;
    while (Depth-- > 0 && Nodes[Cur].K == Expr::Kind::Store) {
      const Expr Frame = Nodes[Cur];
      const Expr Bind = Nodes[Frame.B];
      if (Bind.A == Addr)
        return Bind.B;
      if (!distinctAddrs(Bind.A, Addr))
        break;
      Cur = Frame.A;
    }
    const Expr &AE = Nodes[Addr];
    // The length of an in-segment array allocation is its length operand
    // (lengths are immutable, so no store can intervene).
    if (AE.Op == Opcode::ArrayLength &&
        Nodes[AE.A].K == Expr::Kind::Alloc &&
        Nodes[AE.A].Op == Opcode::NewArray)
      return Nodes[AE.A].A;
    return intern({Expr::Kind::Select, Opcode::Nop, 0, Addr, Cur});
  }

  /// Collects a heap chain's store frames, deepest first. Returns false
  /// when the chain exceeds the bound.
  bool chainBinds(uint32_t Heap, std::vector<uint32_t> &BindsOut,
                  uint32_t &BottomOut) const {
    std::vector<uint32_t> Rev;
    uint32_t Cur = Heap;
    for (int Depth = 0; Nodes[Cur].K == Expr::Kind::Store; ++Depth) {
      if (Depth > 256)
        return false;
      Rev.push_back(Nodes[Cur].B);
      Cur = Nodes[Cur].A;
    }
    BottomOut = Cur;
    BindsOut.assign(Rev.rbegin(), Rev.rend());
    return true;
  }

  /// Rebuilds \p Heap with each bind in \p Skip removed once (the
  /// justified-dead stores), re-normalizing every remaining frame. Equal
  /// to the chain the other run built iff it performed exactly the
  /// non-skipped stores.
  std::optional<uint32_t> rebuildWithout(uint32_t Heap,
                                         std::vector<uint32_t> Skip) {
    std::vector<uint32_t> Binds;
    uint32_t Bottom = 0;
    if (!chainBinds(Heap, Binds, Bottom))
      return std::nullopt;
    uint32_t Out = Bottom;
    for (uint32_t B : Binds) {
      auto It = std::find(Skip.begin(), Skip.end(), B);
      if (It != Skip.end()) {
        Skip.erase(It);
        continue;
      }
      Out = store(Out, Nodes[B].A, Nodes[B].B);
    }
    return Out;
  }

private:
  /// Removes the nearest frame for exactly \p Addr, looking through
  /// provably distinct frames. nullopt when no removable frame is found.
  std::optional<uint32_t> removeStore(uint32_t Heap, uint32_t Addr,
                                      int Depth) {
    if (Depth == 0 || Nodes[Heap].K != Expr::Kind::Store)
      return std::nullopt;
    const Expr Frame = Nodes[Heap];
    const Expr Bind = Nodes[Frame.B];
    if (Bind.A == Addr)
      return Frame.A;
    if (!distinctAddrs(Bind.A, Addr))
      return std::nullopt;
    if (auto Parent = removeStore(Frame.A, Addr, Depth - 1))
      return intern({Expr::Kind::Store, Opcode::Nop, 0, *Parent, Frame.B});
    return std::nullopt;
  }

  /// Inserts \p Bind into \p Heap, sinking it below provably distinct
  /// frames with a larger address id (canonical order for commuting
  /// frames).
  uint32_t pushFrame(uint32_t Heap, uint32_t Bind, int Depth) {
    if (Depth > 0 && Nodes[Heap].K == Expr::Kind::Store) {
      const Expr Frame = Nodes[Heap];
      uint32_t TopAddr = Nodes[Frame.B].A;
      uint32_t MyAddr = Nodes[Bind].A;
      if (distinctAddrs(TopAddr, MyAddr) && MyAddr < TopAddr)
        return intern({Expr::Kind::Store, Opcode::Nop, 0,
                       pushFrame(Frame.A, Bind, Depth - 1), Frame.B});
    }
    return intern({Expr::Kind::Store, Opcode::Nop, 0, Heap, Bind});
  }

  uint32_t intern(Expr E) {
    auto Key = std::make_tuple(static_cast<uint8_t>(E.K),
                               static_cast<uint8_t>(E.Op), E.C, E.A, E.B);
    auto [It, Inserted] =
        Interned.try_emplace(Key, static_cast<uint32_t>(Nodes.size()));
    if (Inserted)
      Nodes.push_back(E);
    return It->second;
  }

  std::vector<Expr> Nodes;
  std::map<std::tuple<uint8_t, uint8_t, int64_t, uint32_t, uint32_t>, uint32_t>
      Interned;
};

//===----------------------------------------------------------------------===//
// Symbolic evaluation of one segment
//===----------------------------------------------------------------------===//

/// One observable effect, in program order. The baseline refinement is
/// element-wise agreement; heap loads and stores additionally carry
/// their symbolic address (and, for stores, the store-frame bind) so the
/// alignment walk can justify the memory optimizer's eliminations
/// instead of demanding identity.
struct Effect {
  enum class Kind : uint8_t {
    Print,   ///< Iprint of Operands[0].
    Heap,    ///< Allocation or heap/array access.
    MayTrap, ///< Division whose divisor is not provably nonzero.
  };
  Kind K;
  Opcode Op;
  int32_t A = 0, B = 0;            ///< Instruction immediates (field ids...).
  std::vector<uint32_t> Operands;  ///< Value ids, deepest first.
  /// For heap loads/stores: the cell's Addr node. 0 for allocations and
  /// non-heap effects. Not part of equality (it is derived from Operands).
  uint32_t Addr = 0;
  /// For heap stores: the StoreBind frame this store pushed. Lets the
  /// final-heap check strip justified-dead stores bind-by-bind.
  uint32_t Bind = 0;

  bool operator==(const Effect &O) const {
    return K == O.K && Op == O.Op && A == O.A && B == O.B &&
           Operands == O.Operands;
  }
};

/// What was observed at one surviving guard: its identity, its exit
/// metadata, and a full snapshot of the machine state just after the
/// guard's operands were popped -- exactly the state the interpreter
/// resumes from when the guard fires.
struct GuardObs {
  Opcode Op;
  bool Taken;
  uint32_t ExitPc;
  bool HasLiveAtExit;
  analysis::LocalSet LiveAtExit;
  std::vector<uint32_t> Operands; ///< Condition values, deepest first.
  std::vector<uint32_t> Locals;
  std::vector<uint32_t> Stack; ///< Values pushed in-segment (deepest first).
  uint32_t StackInCount;       ///< Incoming values consumed so far.
  size_t Effects;              ///< Effects emitted before this guard.
  uint32_t Token;              ///< Symbolic heap at the guard.
};

struct SymState {
  std::vector<uint32_t> Locals;
  std::vector<uint32_t> Stack;
  uint32_t StackInCount = 0;
  std::vector<Effect> Effects;
  std::vector<GuardObs> Guards;
  uint32_t HeapToken = 0; ///< Final symbolic heap.
};

/// A stack state modulo untouched incoming values: (values still
/// consumed, values pushed on top of the remaining incoming stack). A
/// popped-and-repushed incoming value is normalized away so a run that
/// never touched the stack and one that popped a value and pushed it back
/// compare equal -- they are.
struct CanonStack {
  uint32_t Consumed = 0;
  std::vector<uint32_t> Values;

  bool operator==(const CanonStack &O) const {
    return Consumed == O.Consumed && Values == O.Values;
  }
};

class SymEval {
public:
  SymEval(const LinearSegment &Seg, ExprPool &Pool) : Seg(Seg), Pool(Pool) {}

  /// Evaluates the whole segment. Returns false (with \p Unsupported
  /// detail) when an opcode outside the segment grammar shows up.
  bool run(SymState &Out, std::string &UnsupportedDetail) {
    S.HeapToken = Pool.heapInit();
    S.Locals.resize(Seg.NumLocals);
    for (uint32_t L = 0; L < Seg.NumLocals; ++L)
      S.Locals[L] = Pool.init(L);
    // Entry assumptions: locals proved constant at the segment entry.
    // Seeding them identically in both runs is what makes facts-based
    // folding and guard elimination validatable.
    for (const auto &[L, C] : Seg.EntryConsts)
      if (L < Seg.NumLocals)
        S.Locals[L] = Pool.constant(C);

    for (const LinearOp &Op : Seg.Ops) {
      bool Ok = Op.K == LinearOp::Kind::Guard ? evalGuard(Op) : evalInstr(Op.I);
      if (!Ok) {
        UnsupportedDetail = Detail;
        return false;
      }
    }
    Out = std::move(S);
    return true;
  }

  static CanonStack canonicalize(const std::vector<uint32_t> &Stack,
                                 uint32_t Consumed, ExprPool &Pool) {
    CanonStack C;
    size_t Begin = 0;
    // Strip pushed-back incoming values: if the deepest in-segment push
    // is exactly the deepest incoming value consumed, the two cancel.
    while (Consumed > 0 && Begin < Stack.size() &&
           Stack[Begin] == Pool.stackIn(Consumed - 1)) {
      ++Begin;
      --Consumed;
    }
    C.Consumed = Consumed;
    C.Values.assign(Stack.begin() + static_cast<ptrdiff_t>(Begin),
                    Stack.end());
    return C;
  }

private:
  uint32_t pop() {
    if (S.Stack.empty())
      return Pool.stackIn(S.StackInCount++);
    uint32_t V = S.Stack.back();
    S.Stack.pop_back();
    return V;
  }
  void push(uint32_t V) { S.Stack.push_back(V); }

  /// Pops \p N operands, returning them deepest-first.
  std::vector<uint32_t> popOperands(int N) {
    std::vector<uint32_t> Ops(static_cast<size_t>(N));
    for (int I = N; I-- > 0;)
      Ops[static_cast<size_t>(I)] = pop();
    return Ops;
  }

  /// The Addr node a heap load reads (operands deepest-first).
  uint32_t loadAddr(const Instruction &I, const std::vector<uint32_t> &Ops) {
    switch (I.Op) {
    case Opcode::GetField:
      return Pool.addr(Opcode::GetField, Ops[0], 0, I.A);
    case Opcode::Iaload:
      return Pool.addr(Opcode::Iaload, Ops[0], Ops[1], 0);
    default: // ArrayLength
      return Pool.addr(Opcode::ArrayLength, Ops[0], 0, 0);
    }
  }

  bool evalInstr(const Instruction &I) {
    switch (I.Op) {
    case Opcode::Nop:
      return true;
    case Opcode::Iconst:
      push(Pool.constant(I.A));
      return true;
    case Opcode::Iload:
      push(S.Locals[static_cast<uint32_t>(I.A)]);
      return true;
    case Opcode::Istore:
      S.Locals[static_cast<uint32_t>(I.A)] = pop();
      return true;
    case Opcode::Iinc: {
      auto X = static_cast<uint32_t>(I.A);
      S.Locals[X] = Pool.binop(Opcode::Iadd, S.Locals[X], Pool.constant(I.B));
      return true;
    }
    case Opcode::Pop:
      pop();
      return true;
    case Opcode::Dup: {
      uint32_t V = pop();
      push(V);
      push(V);
      return true;
    }
    case Opcode::Swap: {
      uint32_t B = pop(), A = pop();
      push(B);
      push(A);
      return true;
    }
    case Opcode::Ineg:
      push(Pool.unop(Opcode::Ineg, pop()));
      return true;
    case Opcode::Iadd:
    case Opcode::Isub:
    case Opcode::Imul:
    case Opcode::Ishl:
    case Opcode::Ishr:
    case Opcode::Iushr:
    case Opcode::Iand:
    case Opcode::Ior:
    case Opcode::Ixor: {
      uint32_t B = pop(), A = pop();
      push(Pool.binop(I.Op, A, B));
      return true;
    }
    case Opcode::Idiv:
    case Opcode::Irem: {
      uint32_t B = pop(), A = pop();
      // A division whose divisor is not provably nonzero may trap: that
      // is an observable event whose position must be preserved. When
      // the divisor is a nonzero constant the operation is pure.
      auto CB = Pool.constOf(B);
      if (!CB || *CB == 0)
        S.Effects.push_back({Effect::Kind::MayTrap, I.Op, 0, 0, {A, B}});
      push(Pool.binop(I.Op, A, B));
      return true;
    }
    case Opcode::Iprint:
      S.Effects.push_back({Effect::Kind::Print, I.Op, 0, 0, {pop()}});
      return true;
    case Opcode::New:
    case Opcode::NewArray: {
      // Allocations are ordered effects (they can trap: OOM, negative
      // size) and their results are Alloc nodes keyed by ordinal: the
      // memory passes never add, drop or reorder allocations, so the
      // C-th allocation denotes the same object in both runs.
      std::vector<uint32_t> Ops = popOperands(opPops(I.Op));
      uint32_t Aux = I.Op == Opcode::New ? static_cast<uint32_t>(I.A) : Ops[0];
      S.Effects.push_back({Effect::Kind::Heap, I.Op, I.A, I.B, Ops});
      push(Pool.alloc(I.Op, AllocCount++, Aux));
      return true;
    }
    case Opcode::GetField:
    case Opcode::Iaload:
    case Opcode::ArrayLength: {
      // A heap read is an ordered effect (it checks its base and index,
      // and a read moved across a write would observe a different heap),
      // but its *value* comes from the symbolic heap: a load whose cell
      // was written or read on the trace path resolves to the same node
      // id the optimizer forwarded.
      std::vector<uint32_t> Ops = popOperands(opPops(I.Op));
      uint32_t Addr = loadAddr(I, Ops);
      Effect E{Effect::Kind::Heap, I.Op, I.A, I.B, Ops};
      E.Addr = Addr;
      S.Effects.push_back(std::move(E));
      push(Pool.select(S.HeapToken, Addr));
      return true;
    }
    case Opcode::PutField:
    case Opcode::Iastore: {
      std::vector<uint32_t> Ops = popOperands(opPops(I.Op));
      uint32_t Addr =
          I.Op == Opcode::PutField
              ? Pool.addr(Opcode::GetField, Ops[0], 0, I.A)
              : Pool.addr(Opcode::Iaload, Ops[0], Ops[1], 0);
      S.HeapToken = Pool.store(S.HeapToken, Addr, Ops.back());
      Effect E{Effect::Kind::Heap, I.Op, I.A, I.B, Ops};
      E.Addr = Addr;
      E.Bind = Pool.bind(Addr, Ops.back());
      S.Effects.push_back(std::move(E));
      return true;
    }
    default: {
      std::ostringstream OS;
      OS << "opcode " << mnemonic(I.Op) << " in a linear segment";
      Detail = OS.str();
      return false;
    }
    }
  }

  bool evalGuard(const LinearOp &Op) {
    GuardObs G;
    G.Op = Op.I.Op;
    G.Taken = Op.GuardTaken;
    G.ExitPc = Op.ExitPc;
    G.HasLiveAtExit = Op.HasLiveAtExit;
    G.LiveAtExit = Op.LiveAtExit;
    G.Operands = popOperands(opPops(Op.I.Op));
    G.Locals = S.Locals;
    G.Stack = S.Stack;
    G.StackInCount = S.StackInCount;
    G.Effects = S.Effects.size();
    G.Token = S.HeapToken;
    S.Guards.push_back(std::move(G));
    return true;
  }

  const LinearSegment &Seg;
  ExprPool &Pool;
  SymState S;
  uint32_t AllocCount = 0;
  std::string Detail;
};

/// Evaluates a one- or two-operand conditional branch (A is the deeper
/// operand), mirroring interp::Machine.
bool evalBranch(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::IfEq:
    return A == 0;
  case Opcode::IfNe:
    return A != 0;
  case Opcode::IfLt:
    return A < 0;
  case Opcode::IfGe:
    return A >= 0;
  case Opcode::IfGt:
    return A > 0;
  case Opcode::IfLe:
    return A <= 0;
  case Opcode::IfIcmpEq:
    return A == B;
  case Opcode::IfIcmpNe:
    return A != B;
  case Opcode::IfIcmpLt:
    return A < B;
  case Opcode::IfIcmpGe:
    return A >= B;
  case Opcode::IfIcmpGt:
    return A > B;
  case Opcode::IfIcmpLe:
    return A <= B;
  default:
    return false;
  }
}

std::string describeLocal(uint32_t L) {
  return "local " + std::to_string(L);
}

} // namespace

//===----------------------------------------------------------------------===//
// The refinement check
//===----------------------------------------------------------------------===//

Result validate::validateSegment(const LinearSegment &Src,
                                 const LinearSegment &Opt, const Module *M) {
  if (Src.MethodId != Opt.MethodId || Src.NumLocals != Opt.NumLocals ||
      Src.ScratchBase != Opt.ScratchBase || Src.EntryConsts != Opt.EntryConsts)
    return Result::fail(Reason::ShapeMismatch,
                        "frame metadata differs between source and optimized "
                        "segments");

  ExprPool Pool;
  SymState A, B;
  std::string Detail;
  if (!SymEval(Src, Pool).run(A, Detail))
    return Result::fail(Reason::Unsupported, "source: " + Detail);
  if (!SymEval(Opt, Pool).run(B, Detail))
    return Result::fail(Reason::Unsupported, "optimized: " + Detail);

  // --- Guard alignment -------------------------------------------------
  //
  // Walk the source guards in order, holding a cursor into the optimized
  // guards. Each source guard must either match the cursor's guard (same
  // condition over the same value ids, same exit metadata, equivalent
  // machine state) or be *justified*: provably redundant under the entry
  // facts, or dominated by an identical check that already passed.
  using GuardKey = std::tuple<Opcode, bool, std::vector<uint32_t>>;
  std::set<GuardKey> Passed;
  /// A matched guard pair as seen by the effect-alignment walk: effects
  /// may not cross it, and any store held back past it must be proven
  /// unobservable on the exit path.
  struct Barrier {
    size_t Ra, Oa;               ///< Effect counts before the guard.
    uint32_t RefToken, OptToken; ///< Symbolic heaps at the guard.
    size_t GuardIdx;
    const GuardObs *G; ///< Source observation (exit-visible state).
  };
  std::vector<Barrier> Bars;
  size_t J = 0;
  for (size_t I = 0; I < A.Guards.size(); ++I) {
    const GuardObs &G = A.Guards[I];
    const GuardObs *H = J < B.Guards.size() ? &B.Guards[J] : nullptr;
    bool Matches = H && H->Op == G.Op && H->Taken == G.Taken &&
                   H->Operands == G.Operands;
    if (Matches) {
      if (H->ExitPc != G.ExitPc || H->HasLiveAtExit != G.HasLiveAtExit ||
          !(H->LiveAtExit == G.LiveAtExit))
        return Result::fail(Reason::GuardExitMismatch,
                            "guard " + std::to_string(I) +
                                ": exit metadata differs");
      // Side-exit state: when the guard fires, the interpreter resumes
      // at ExitPc from the *source* machine state. Every live root-frame
      // local, the whole operand stack, and the effect prefix must
      // therefore agree.
      for (uint32_t L = 0; L < Src.ScratchBase; ++L) {
        if (G.HasLiveAtExit && !G.LiveAtExit.test(L))
          continue; // dead at the exit: stale values are unobservable
        if (G.Locals[L] != H->Locals[L])
          return Result::fail(Reason::SideExitLocalMismatch,
                              "guard " + std::to_string(I) + ": " +
                                  describeLocal(L) +
                                  " differs at the side exit");
      }
      if (!(SymEval::canonicalize(G.Stack, G.StackInCount, Pool) ==
            SymEval::canonicalize(H->Stack, H->StackInCount, Pool)))
        return Result::fail(Reason::SideExitStackMismatch,
                            "guard " + std::to_string(I) +
                                ": operand stack differs at the side exit");
      Bars.push_back({G.Effects, H->Effects, G.Token, H->Token, I, &G});
      Passed.insert({G.Op, G.Taken, G.Operands});
      ++J;
      continue;
    }

    // Not matched: justified elimination?
    bool Justified = false;
    if (G.Op != Opcode::Tableswitch) {
      // Entry facts: all condition values constant and evaluating to the
      // recorded direction -- the guard can never fire.
      auto C0 = Pool.constOf(G.Operands[0]);
      auto C1 = G.Operands.size() > 1 ? Pool.constOf(G.Operands[1])
                                      : std::optional<int64_t>(0);
      if (C0 && C1 && evalBranch(G.Op, *C0, *C1) == G.Taken)
        Justified = true;
      // Domination: an identical check over the same value ids already
      // passed, so this one cannot fire either.
      if (!Justified && Passed.count({G.Op, G.Taken, G.Operands}))
        Justified = true;
    }
    if (Justified)
      continue;
    if (H && H->Op == G.Op && H->Taken == G.Taken)
      return Result::fail(Reason::GuardOperandMismatch,
                          "guard " + std::to_string(I) +
                              ": condition tests different values");
    return Result::fail(Reason::GuardDropped,
                        "guard " + std::to_string(I) +
                            " has no optimized counterpart and no "
                            "justification");
  }
  if (J < B.Guards.size())
    return Result::fail(Reason::GuardExtra,
                        std::to_string(B.Guards.size() - J) +
                            " unmatched guard(s) in the optimized segment");

  // --- Final state ------------------------------------------------------
  for (uint32_t L = 0; L < Src.ScratchBase; ++L)
    if (A.Locals[L] != B.Locals[L])
      return Result::fail(Reason::FinalLocalMismatch,
                          describeLocal(L) + " differs at the segment end");
  if (!(SymEval::canonicalize(A.Stack, A.StackInCount, Pool) ==
        SymEval::canonicalize(B.Stack, B.StackInCount, Pool)))
    return Result::fail(Reason::FinalStackMismatch,
                        "operand stack differs at the segment end");
  // --- Effect alignment -------------------------------------------------
  //
  // Walk the source effect list against the optimized one. The memory
  // optimizer is allowed exactly three liberties: omit a heap load whose
  // checks are provably already established (its value came from the
  // symbolic heap), hold a heap store back past its program point (it
  // lands later, or never), and drop a store that is provably dead. Every
  // other divergence is the old element-wise mismatch. Barriers (matched
  // guards) cap the matching: no effect may cross a side exit, and every
  // store held back across one needs an unobservability proof.
  auto isHeapStore = [](const Effect &E) {
    return E.K == Effect::Kind::Heap &&
           (E.Op == Opcode::PutField || E.Op == Opcode::Iastore);
  };
  auto isHeapLoad = [](const Effect &E) {
    return E.K == Effect::Kind::Heap &&
           (E.Op == Opcode::GetField || E.Op == Opcode::Iaload ||
            E.Op == Opcode::ArrayLength);
  };
  // Trap-freedom from the address shape alone: the base must be an
  // in-segment allocation (live, non-null, known kind) with the accessed
  // slot provably in bounds. Re-derived from the symbolic nodes -- the
  // validator never trusts the optimizer's own alias facts.
  auto noTrapAddr = [&](uint32_t AddrId) {
    const Expr &AE = Pool.node(AddrId);
    const Expr &Base = Pool.node(AE.A);
    if (Base.K != Expr::Kind::Alloc)
      return false;
    if (AE.Op == Opcode::GetField)
      return Base.Op == Opcode::New && M && AE.C >= 0 &&
             Base.A < M->Classes.size() &&
             static_cast<uint32_t>(AE.C) < M->Classes[Base.A].NumFields;
    if (AE.Op == Opcode::Iaload) {
      if (Base.Op != Opcode::NewArray)
        return false;
      auto Len = Pool.constOf(Base.A);
      auto Idx = Pool.constOf(AE.B);
      return Len && Idx && *Idx >= 0 && *Idx < *Len;
    }
    // ArrayLength: a fresh array is live and has a length.
    return AE.Op == Opcode::ArrayLength && Base.Op == Opcode::NewArray;
  };

  struct PendingStore {
    const Effect *E;
    /// No observable effect has matched since this was held back; a
    /// possibly-trapping store may only move within such a clean window.
    bool Clean = true;
  };
  std::vector<PendingStore> Pend;
  std::set<uint32_t> ProvenAddrs; ///< Addresses whose checks ran in source.
  std::set<uint32_t> Escaped;     ///< Values the source stored into the heap.
  auto dirtyPend = [&] {
    for (PendingStore &P : Pend)
      P.Clean = false;
  };
  // Consumes opt effect \p J2 as the delayed flush of a held-back store.
  // Out-of-order flushes are only sound over a trap-free prefix, and a
  // possibly-trapping store only flushes inside its clean window.
  auto tryDrain = [&](size_t OptIdx) {
    for (size_t K = 0; K < Pend.size(); ++K) {
      if (!(*Pend[K].E == B.Effects[OptIdx]))
        continue;
      if (!noTrapAddr(Pend[K].E->Addr) && !Pend[K].Clean)
        return false;
      for (size_t P = 0; P < K; ++P)
        if (!noTrapAddr(Pend[P].E->Addr))
          return false;
      Pend.erase(Pend.begin() + static_cast<ptrdiff_t>(K));
      return true;
    }
    return false;
  };
  // Is value \p V observable when this guard's exit fires?
  auto observableAt = [&](const GuardObs &G, uint32_t V) {
    for (uint32_t L = 0; L < Src.ScratchBase; ++L) {
      if (G.HasLiveAtExit && !G.LiveAtExit.test(L))
        continue;
      if (G.Locals[L] == V)
        return true;
    }
    CanonStack CS = SymEval::canonicalize(G.Stack, G.StackInCount, Pool);
    return std::find(CS.Values.begin(), CS.Values.end(), V) != CS.Values.end();
  };
  auto observableAtEnd = [&](uint32_t V) {
    for (uint32_t L = 0; L < Src.ScratchBase; ++L)
      if (A.Locals[L] == V)
        return true;
    CanonStack CS = SymEval::canonicalize(A.Stack, A.StackInCount, Pool);
    return std::find(CS.Values.begin(), CS.Values.end(), V) != CS.Values.end();
  };

  size_t RI = 0, OJ = 0, BI = 0;
  auto cap = [&] { return BI < Bars.size() ? Bars[BI].Oa : B.Effects.size(); };
  auto atBarrier = [&](const Barrier &Bar) -> std::optional<Result> {
    while (OJ < Bar.Oa && tryDrain(OJ))
      ++OJ;
    if (OJ != Bar.Oa) {
      if (isHeapStore(B.Effects[OJ]))
        return Result::fail(Reason::MemStoreUnjustified,
                            "guard " + std::to_string(Bar.GuardIdx) +
                                ": the optimized segment stores before the "
                                "exit with no source counterpart");
      return Result::fail(Reason::SideExitEffectMismatch,
                          "guard " + std::to_string(Bar.GuardIdx) +
                              ": an observable effect crossed the exit");
    }
    std::vector<uint32_t> Binds;
    for (const PendingStore &P : Pend) {
      uint32_t BaseId = Pool.node(P.E->Addr).A;
      if (!noTrapAddr(P.E->Addr) || Escaped.count(BaseId) ||
          observableAt(*Bar.G, BaseId))
        return Result::fail(Reason::MemSinkUnjustified,
                            "guard " + std::to_string(Bar.GuardIdx) +
                                ": a held-back store crosses the exit "
                                "without an unobservability proof");
      Binds.push_back(P.E->Bind);
    }
    auto Rebuilt = Pool.rebuildWithout(Bar.RefToken, Binds);
    if (!Rebuilt || *Rebuilt != Bar.OptToken)
      return Result::fail(Reason::MemStoreUnjustified,
                          "guard " + std::to_string(Bar.GuardIdx) +
                              ": heaps diverge at the side exit");
    dirtyPend();
    return std::nullopt;
  };

  for (;;) {
    while (BI < Bars.size() && Bars[BI].Ra == RI) {
      if (auto R = atBarrier(Bars[BI]))
        return *R;
      ++BI;
    }
    if (RI >= A.Effects.size())
      break;
    const Effect &E = A.Effects[RI];
    bool Consumed = false;
    for (;;) {
      if (OJ < cap() && B.Effects[OJ] == E) {
        if (E.Addr)
          ProvenAddrs.insert(E.Addr);
        if (isHeapStore(E)) {
          Escaped.insert(E.Operands.back());
          // An overwrite consumed in place kills an older held-back
          // store for the same address, under the same removability
          // rule as the held-back overwrite below: the old store cannot
          // trap, or this twin's identical trap condition replaces it
          // within a clean window.
          for (size_t K = 0; K < Pend.size();) {
            if (Pend[K].E->Addr == E.Addr &&
                (noTrapAddr(Pend[K].E->Addr) ||
                 (K + 1 == Pend.size() && Pend[K].Clean)))
              Pend.erase(Pend.begin() + static_cast<ptrdiff_t>(K));
            else
              ++K;
          }
        }
        dirtyPend();
        ++OJ;
        Consumed = true;
        break;
      }
      if (OJ < cap() && tryDrain(OJ)) {
        ++OJ;
        continue;
      }
      break;
    }
    if (!Consumed) {
      if (isHeapStore(E)) {
        // Held back. The source ran its checks here, and its value is
        // published as far as escape analysis is concerned.
        ProvenAddrs.insert(E.Addr);
        Escaped.insert(E.Operands.back());
        // An exact overwrite kills an older held-back store -- removable
        // when trap order provably survives: the old store cannot trap,
        // or its twin trap condition replaces it with no window.
        for (size_t K = 0; K < Pend.size();) {
          if (Pend[K].E->Addr == E.Addr &&
              (noTrapAddr(Pend[K].E->Addr) ||
               (K + 1 == Pend.size() && Pend[K].Clean)))
            Pend.erase(Pend.begin() + static_cast<ptrdiff_t>(K));
          else
            ++K;
        }
        Pend.push_back({&E, true});
      } else if (isHeapLoad(E)) {
        // Before treating the load as eliminated: if the optimized run
        // performs this very load later, it was not eliminated at all --
        // the effect at the cursor is an extra or out-of-order effect
        // (e.g. a store the source never owed here), and the blame
        // belongs to it.
        for (size_t Ahead = OJ; Ahead < cap(); ++Ahead) {
          if (!(B.Effects[Ahead] == E))
            continue;
          if (isHeapStore(B.Effects[OJ]))
            return Result::fail(Reason::MemStoreUnjustified,
                                "the optimized segment stores before a kept "
                                "load with no source counterpart");
          return Result::fail(Reason::EffectMismatch,
                              "observable effects diverge at index " +
                                  std::to_string(RI));
        }
        // Omitted load: sound only if reaching it implies its checks
        // already passed (the address was accessed before, possibly by a
        // store that is itself held back) or can never fail.
        bool PendHas = false;
        for (const PendingStore &P : Pend)
          PendHas = PendHas || P.E->Addr == E.Addr;
        if (!ProvenAddrs.count(E.Addr) && !PendHas && !noTrapAddr(E.Addr))
          return Result::fail(Reason::MemLoadUnjustified,
                              "source heap load at effect " +
                                  std::to_string(RI) +
                                  " vanished without an established-access "
                                  "or trap-freedom proof");
        ProvenAddrs.insert(E.Addr);
      } else {
        if (OJ >= cap() && BI < Bars.size())
          return Result::fail(Reason::SideExitEffectMismatch,
                              "guard " + std::to_string(Bars[BI].GuardIdx) +
                                  ": an observable effect crossed the exit");
        return Result::fail(Reason::EffectMismatch,
                            "observable effects diverge at index " +
                                std::to_string(RI));
      }
    }
    ++RI;
  }

  // Tail: remaining optimized effects must be flushes of held-back
  // stores; whatever never lands must be provably dead.
  while (OJ < B.Effects.size() && tryDrain(OJ))
    ++OJ;
  if (OJ < B.Effects.size()) {
    if (isHeapStore(B.Effects[OJ]))
      return Result::fail(Reason::MemStoreUnjustified,
                          "the optimized segment performs a store the source "
                          "does not (or out of order)");
    return Result::fail(Reason::EffectMismatch,
                        "unmatched optimized effect at index " +
                            std::to_string(OJ));
  }
  std::vector<uint32_t> Leftover;
  for (const PendingStore &P : Pend) {
    uint32_t BaseId = Pool.node(P.E->Addr).A;
    if (!noTrapAddr(P.E->Addr) || Escaped.count(BaseId) ||
        observableAtEnd(BaseId))
      return Result::fail(Reason::MemStoreUnjustified,
                          "a source store was eliminated without a "
                          "dead-store proof");
    Leftover.push_back(P.E->Bind);
  }
  auto FinalRebuilt = Pool.rebuildWithout(A.HeapToken, Leftover);
  if (!FinalRebuilt || *FinalRebuilt != B.HeapToken)
    return Result::fail(Reason::MemStoreUnjustified,
                        "final heaps diverge");
  return Result::pass();
}

Result validate::validateTrace(const PreparedModule &PM, const Trace &T,
                               const OptConfig &Config,
                               const analysis::ModuleAnalysis *Facts) {
  OptStats Stats;
  std::vector<LinearSegment> Segments =
      linearizeTrace(PM, T, /*InlineStaticCalls=*/false, Facts);
  for (size_t I = 0; I < Segments.size(); ++I) {
    LinearSegment Opt =
        optimizeSegment(Segments[I], Stats, Config, &PM.module());
    Result R = validateSegment(Segments[I], Opt, &PM.module());
    if (!R.Ok) {
      R.SegmentIndex = static_cast<uint32_t>(I);
      return R;
    }
  }
  return Result::pass();
}
