//===- validate/Validator.cpp ---------------------------------------------===//

#include "validate/Validator.h"

#include "analysis/Analysis.h"

#include <array>
#include <cassert>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>

using namespace jtc;
using namespace jtc::validate;

const char *validate::reasonName(Reason R) {
  switch (R) {
  case Reason::None:
    return "none";
  case Reason::ShapeMismatch:
    return "shape-mismatch";
  case Reason::Unsupported:
    return "unsupported";
  case Reason::GuardDropped:
    return "guard-dropped";
  case Reason::GuardExtra:
    return "guard-extra";
  case Reason::GuardOperandMismatch:
    return "guard-operand-mismatch";
  case Reason::GuardExitMismatch:
    return "guard-exit-mismatch";
  case Reason::SideExitLocalMismatch:
    return "side-exit-local-mismatch";
  case Reason::SideExitStackMismatch:
    return "side-exit-stack-mismatch";
  case Reason::SideExitEffectMismatch:
    return "side-exit-effect-mismatch";
  case Reason::EffectMismatch:
    return "effect-mismatch";
  case Reason::FinalLocalMismatch:
    return "final-local-mismatch";
  case Reason::FinalStackMismatch:
    return "final-stack-mismatch";
  }
  return "none";
}

const ErrorDomain &validate::reasonDomain() {
  static const ErrorDomain Dom = {"validate", [](uint32_t Code) {
                                    return reasonName(
                                        static_cast<Reason>(Code));
                                  }};
  return Dom;
}

namespace {

//===----------------------------------------------------------------------===//
// Hash-consed symbolic expressions
//===----------------------------------------------------------------------===//

/// One node of the shared expression DAG. Hash-consing makes node-id
/// equality a sound (if incomplete) proof of value equality: both runs
/// build their values in the same pool, so a computation the optimizer
/// merely re-arranged syntactically converges to the same id as long as
/// the validator's folder normalizes both spellings.
struct Expr {
  enum class Kind : uint8_t {
    Init,    ///< Initial value of local C.
    StackIn, ///< C-th value popped from the incoming operand stack.
    Const,   ///< The constant C.
    Unop,    ///< Op applied to A.
    Binop,   ///< Op applied to (A, B).
    Opaque,  ///< Result of the C-th observable effect (heap reads, ...).
  };
  Kind K;
  Opcode Op = Opcode::Nop;
  int64_t C = 0;
  uint32_t A = 0, B = 0;
};

/// Folds A op B exactly as interp::Machine executes it (wrap-around
/// arithmetic, masked shifts, the INT64_MIN/-1 special cases). Unlike the
/// optimizer's folder there is no immediate-range restriction: the
/// validator tracks real semantics, not re-emittability, and both runs
/// fold under the same rules so optimized and unoptimized spellings of a
/// constant computation reach the same node.
bool foldBinary(Opcode Op, int64_t A, int64_t B, int64_t &Out) {
  auto U = [](int64_t V) { return static_cast<uint64_t>(V); };
  switch (Op) {
  case Opcode::Iadd:
    Out = static_cast<int64_t>(U(A) + U(B));
    return true;
  case Opcode::Isub:
    Out = static_cast<int64_t>(U(A) - U(B));
    return true;
  case Opcode::Imul:
    Out = static_cast<int64_t>(U(A) * U(B));
    return true;
  case Opcode::Idiv:
    if (B == 0)
      return false;
    Out = (A == std::numeric_limits<int64_t>::min() && B == -1) ? A : A / B;
    return true;
  case Opcode::Irem:
    if (B == 0)
      return false;
    Out = (A == std::numeric_limits<int64_t>::min() && B == -1) ? 0 : A % B;
    return true;
  case Opcode::Ishl:
    Out = static_cast<int64_t>(U(A) << (B & 63));
    return true;
  case Opcode::Ishr:
    Out = A >> (B & 63);
    return true;
  case Opcode::Iushr:
    Out = static_cast<int64_t>(U(A) >> (B & 63));
    return true;
  case Opcode::Iand:
    Out = A & B;
    return true;
  case Opcode::Ior:
    Out = A | B;
    return true;
  case Opcode::Ixor:
    Out = A ^ B;
    return true;
  default:
    return false;
  }
}

class ExprPool {
public:
  uint32_t init(uint32_t Local) {
    return intern({Expr::Kind::Init, Opcode::Nop, Local, 0, 0});
  }
  uint32_t stackIn(uint32_t K) {
    return intern({Expr::Kind::StackIn, Opcode::Nop, K, 0, 0});
  }
  uint32_t constant(int64_t V) {
    return intern({Expr::Kind::Const, Opcode::Nop, V, 0, 0});
  }
  uint32_t opaque(uint64_t EffectIndex) {
    return intern(
        {Expr::Kind::Opaque, Opcode::Nop, static_cast<int64_t>(EffectIndex), 0,
         0});
  }
  uint32_t unop(Opcode Op, uint32_t A) {
    assert(Op == Opcode::Ineg);
    if (auto C = constOf(A))
      return constant(static_cast<int64_t>(0 - static_cast<uint64_t>(*C)));
    return intern({Expr::Kind::Unop, Op, 0, A, 0});
  }
  uint32_t binop(Opcode Op, uint32_t A, uint32_t B) {
    auto CA = constOf(A), CB = constOf(B);
    int64_t Folded = 0;
    if (CA && CB && foldBinary(Op, *CA, *CB, Folded))
      return constant(Folded);
    return intern({Expr::Kind::Binop, Op, 0, A, B});
  }
  std::optional<int64_t> constOf(uint32_t Id) const {
    const Expr &E = Nodes[Id];
    if (E.K == Expr::Kind::Const)
      return E.C;
    return std::nullopt;
  }

private:
  uint32_t intern(Expr E) {
    auto Key = std::make_tuple(static_cast<uint8_t>(E.K),
                               static_cast<uint8_t>(E.Op), E.C, E.A, E.B);
    auto [It, Inserted] =
        Interned.try_emplace(Key, static_cast<uint32_t>(Nodes.size()));
    if (Inserted)
      Nodes.push_back(E);
    return It->second;
  }

  std::vector<Expr> Nodes;
  std::map<std::tuple<uint8_t, uint8_t, int64_t, uint32_t, uint32_t>, uint32_t>
      Interned;
};

//===----------------------------------------------------------------------===//
// Symbolic evaluation of one segment
//===----------------------------------------------------------------------===//

/// One observable effect, in program order. Two runs refine each other
/// only if their effect lists agree element-wise: the optimizer may never
/// add, drop, reorder or re-operand an observable operation.
struct Effect {
  enum class Kind : uint8_t {
    Print,   ///< Iprint of Operands[0].
    Heap,    ///< Allocation or heap/array access.
    MayTrap, ///< Division whose divisor is not provably nonzero.
  };
  Kind K;
  Opcode Op;
  int32_t A = 0, B = 0;            ///< Instruction immediates (field ids...).
  std::vector<uint32_t> Operands;  ///< Value ids, deepest first.

  bool operator==(const Effect &O) const {
    return K == O.K && Op == O.Op && A == O.A && B == O.B &&
           Operands == O.Operands;
  }
};

/// What was observed at one surviving guard: its identity, its exit
/// metadata, and a full snapshot of the machine state just after the
/// guard's operands were popped -- exactly the state the interpreter
/// resumes from when the guard fires.
struct GuardObs {
  Opcode Op;
  bool Taken;
  uint32_t ExitPc;
  bool HasLiveAtExit;
  analysis::LocalSet LiveAtExit;
  std::vector<uint32_t> Operands; ///< Condition values, deepest first.
  std::vector<uint32_t> Locals;
  std::vector<uint32_t> Stack; ///< Values pushed in-segment (deepest first).
  uint32_t StackInCount;       ///< Incoming values consumed so far.
  size_t Effects;              ///< Effects emitted before this guard.
};

struct SymState {
  std::vector<uint32_t> Locals;
  std::vector<uint32_t> Stack;
  uint32_t StackInCount = 0;
  std::vector<Effect> Effects;
  std::vector<GuardObs> Guards;
};

/// A stack state modulo untouched incoming values: (values still
/// consumed, values pushed on top of the remaining incoming stack). A
/// popped-and-repushed incoming value is normalized away so a run that
/// never touched the stack and one that popped a value and pushed it back
/// compare equal -- they are.
struct CanonStack {
  uint32_t Consumed = 0;
  std::vector<uint32_t> Values;

  bool operator==(const CanonStack &O) const {
    return Consumed == O.Consumed && Values == O.Values;
  }
};

class SymEval {
public:
  SymEval(const LinearSegment &Seg, ExprPool &Pool) : Seg(Seg), Pool(Pool) {}

  /// Evaluates the whole segment. Returns false (with \p Unsupported
  /// detail) when an opcode outside the segment grammar shows up.
  bool run(SymState &Out, std::string &UnsupportedDetail) {
    S.Locals.resize(Seg.NumLocals);
    for (uint32_t L = 0; L < Seg.NumLocals; ++L)
      S.Locals[L] = Pool.init(L);
    // Entry assumptions: locals proved constant at the segment entry.
    // Seeding them identically in both runs is what makes facts-based
    // folding and guard elimination validatable.
    for (const auto &[L, C] : Seg.EntryConsts)
      if (L < Seg.NumLocals)
        S.Locals[L] = Pool.constant(C);

    for (const LinearOp &Op : Seg.Ops) {
      bool Ok = Op.K == LinearOp::Kind::Guard ? evalGuard(Op) : evalInstr(Op.I);
      if (!Ok) {
        UnsupportedDetail = Detail;
        return false;
      }
    }
    Out = std::move(S);
    return true;
  }

  static CanonStack canonicalize(const std::vector<uint32_t> &Stack,
                                 uint32_t Consumed, ExprPool &Pool) {
    CanonStack C;
    size_t Begin = 0;
    // Strip pushed-back incoming values: if the deepest in-segment push
    // is exactly the deepest incoming value consumed, the two cancel.
    while (Consumed > 0 && Begin < Stack.size() &&
           Stack[Begin] == Pool.stackIn(Consumed - 1)) {
      ++Begin;
      --Consumed;
    }
    C.Consumed = Consumed;
    C.Values.assign(Stack.begin() + static_cast<ptrdiff_t>(Begin),
                    Stack.end());
    return C;
  }

private:
  uint32_t pop() {
    if (S.Stack.empty())
      return Pool.stackIn(S.StackInCount++);
    uint32_t V = S.Stack.back();
    S.Stack.pop_back();
    return V;
  }
  void push(uint32_t V) { S.Stack.push_back(V); }

  /// Pops \p N operands, returning them deepest-first.
  std::vector<uint32_t> popOperands(int N) {
    std::vector<uint32_t> Ops(static_cast<size_t>(N));
    for (int I = N; I-- > 0;)
      Ops[static_cast<size_t>(I)] = pop();
    return Ops;
  }

  bool evalInstr(const Instruction &I) {
    switch (I.Op) {
    case Opcode::Nop:
      return true;
    case Opcode::Iconst:
      push(Pool.constant(I.A));
      return true;
    case Opcode::Iload:
      push(S.Locals[static_cast<uint32_t>(I.A)]);
      return true;
    case Opcode::Istore:
      S.Locals[static_cast<uint32_t>(I.A)] = pop();
      return true;
    case Opcode::Iinc: {
      auto X = static_cast<uint32_t>(I.A);
      S.Locals[X] = Pool.binop(Opcode::Iadd, S.Locals[X], Pool.constant(I.B));
      return true;
    }
    case Opcode::Pop:
      pop();
      return true;
    case Opcode::Dup: {
      uint32_t V = pop();
      push(V);
      push(V);
      return true;
    }
    case Opcode::Swap: {
      uint32_t B = pop(), A = pop();
      push(B);
      push(A);
      return true;
    }
    case Opcode::Ineg:
      push(Pool.unop(Opcode::Ineg, pop()));
      return true;
    case Opcode::Iadd:
    case Opcode::Isub:
    case Opcode::Imul:
    case Opcode::Ishl:
    case Opcode::Ishr:
    case Opcode::Iushr:
    case Opcode::Iand:
    case Opcode::Ior:
    case Opcode::Ixor: {
      uint32_t B = pop(), A = pop();
      push(Pool.binop(I.Op, A, B));
      return true;
    }
    case Opcode::Idiv:
    case Opcode::Irem: {
      uint32_t B = pop(), A = pop();
      // A division whose divisor is not provably nonzero may trap: that
      // is an observable event whose position must be preserved. When
      // the divisor is a nonzero constant the operation is pure.
      auto CB = Pool.constOf(B);
      if (!CB || *CB == 0)
        S.Effects.push_back({Effect::Kind::MayTrap, I.Op, 0, 0, {A, B}});
      push(Pool.binop(I.Op, A, B));
      return true;
    }
    case Opcode::Iprint:
      S.Effects.push_back({Effect::Kind::Print, I.Op, 0, 0, {pop()}});
      return true;
    case Opcode::New:
    case Opcode::GetField:
    case Opcode::PutField:
    case Opcode::NewArray:
    case Opcode::Iaload:
    case Opcode::Iastore:
    case Opcode::ArrayLength: {
      // Heap operations are ordered effects against a single abstract
      // heap: reads included, since a read moved across a write would
      // observe a different heap. The result (if any) is an opaque value
      // keyed by the effect's position, so aligned effect lists also
      // unify their results.
      std::vector<uint32_t> Ops = popOperands(opPops(I.Op));
      S.Effects.push_back({Effect::Kind::Heap, I.Op, I.A, I.B, Ops});
      if (opPushes(I.Op) > 0)
        push(Pool.opaque(S.Effects.size() - 1));
      return true;
    }
    default: {
      std::ostringstream OS;
      OS << "opcode " << mnemonic(I.Op) << " in a linear segment";
      Detail = OS.str();
      return false;
    }
    }
  }

  bool evalGuard(const LinearOp &Op) {
    GuardObs G;
    G.Op = Op.I.Op;
    G.Taken = Op.GuardTaken;
    G.ExitPc = Op.ExitPc;
    G.HasLiveAtExit = Op.HasLiveAtExit;
    G.LiveAtExit = Op.LiveAtExit;
    G.Operands = popOperands(opPops(Op.I.Op));
    G.Locals = S.Locals;
    G.Stack = S.Stack;
    G.StackInCount = S.StackInCount;
    G.Effects = S.Effects.size();
    S.Guards.push_back(std::move(G));
    return true;
  }

  const LinearSegment &Seg;
  ExprPool &Pool;
  SymState S;
  std::string Detail;
};

/// Evaluates a one- or two-operand conditional branch (A is the deeper
/// operand), mirroring interp::Machine.
bool evalBranch(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::IfEq:
    return A == 0;
  case Opcode::IfNe:
    return A != 0;
  case Opcode::IfLt:
    return A < 0;
  case Opcode::IfGe:
    return A >= 0;
  case Opcode::IfGt:
    return A > 0;
  case Opcode::IfLe:
    return A <= 0;
  case Opcode::IfIcmpEq:
    return A == B;
  case Opcode::IfIcmpNe:
    return A != B;
  case Opcode::IfIcmpLt:
    return A < B;
  case Opcode::IfIcmpGe:
    return A >= B;
  case Opcode::IfIcmpGt:
    return A > B;
  case Opcode::IfIcmpLe:
    return A <= B;
  default:
    return false;
  }
}

std::string describeLocal(uint32_t L) {
  return "local " + std::to_string(L);
}

} // namespace

//===----------------------------------------------------------------------===//
// The refinement check
//===----------------------------------------------------------------------===//

Result validate::validateSegment(const LinearSegment &Src,
                                 const LinearSegment &Opt) {
  if (Src.MethodId != Opt.MethodId || Src.NumLocals != Opt.NumLocals ||
      Src.ScratchBase != Opt.ScratchBase || Src.EntryConsts != Opt.EntryConsts)
    return Result::fail(Reason::ShapeMismatch,
                        "frame metadata differs between source and optimized "
                        "segments");

  ExprPool Pool;
  SymState A, B;
  std::string Detail;
  if (!SymEval(Src, Pool).run(A, Detail))
    return Result::fail(Reason::Unsupported, "source: " + Detail);
  if (!SymEval(Opt, Pool).run(B, Detail))
    return Result::fail(Reason::Unsupported, "optimized: " + Detail);

  // --- Guard alignment -------------------------------------------------
  //
  // Walk the source guards in order, holding a cursor into the optimized
  // guards. Each source guard must either match the cursor's guard (same
  // condition over the same value ids, same exit metadata, equivalent
  // machine state) or be *justified*: provably redundant under the entry
  // facts, or dominated by an identical check that already passed.
  using GuardKey = std::tuple<Opcode, bool, std::vector<uint32_t>>;
  std::set<GuardKey> Passed;
  size_t J = 0;
  for (size_t I = 0; I < A.Guards.size(); ++I) {
    const GuardObs &G = A.Guards[I];
    const GuardObs *H = J < B.Guards.size() ? &B.Guards[J] : nullptr;
    bool Matches = H && H->Op == G.Op && H->Taken == G.Taken &&
                   H->Operands == G.Operands;
    if (Matches) {
      if (H->ExitPc != G.ExitPc || H->HasLiveAtExit != G.HasLiveAtExit ||
          !(H->LiveAtExit == G.LiveAtExit))
        return Result::fail(Reason::GuardExitMismatch,
                            "guard " + std::to_string(I) +
                                ": exit metadata differs");
      // Side-exit state: when the guard fires, the interpreter resumes
      // at ExitPc from the *source* machine state. Every live root-frame
      // local, the whole operand stack, and the effect prefix must
      // therefore agree.
      for (uint32_t L = 0; L < Src.ScratchBase; ++L) {
        if (G.HasLiveAtExit && !G.LiveAtExit.test(L))
          continue; // dead at the exit: stale values are unobservable
        if (G.Locals[L] != H->Locals[L])
          return Result::fail(Reason::SideExitLocalMismatch,
                              "guard " + std::to_string(I) + ": " +
                                  describeLocal(L) +
                                  " differs at the side exit");
      }
      if (!(SymEval::canonicalize(G.Stack, G.StackInCount, Pool) ==
            SymEval::canonicalize(H->Stack, H->StackInCount, Pool)))
        return Result::fail(Reason::SideExitStackMismatch,
                            "guard " + std::to_string(I) +
                                ": operand stack differs at the side exit");
      if (G.Effects != H->Effects)
        return Result::fail(Reason::SideExitEffectMismatch,
                            "guard " + std::to_string(I) +
                                ": an observable effect crossed the exit");
      Passed.insert({G.Op, G.Taken, G.Operands});
      ++J;
      continue;
    }

    // Not matched: justified elimination?
    bool Justified = false;
    if (G.Op != Opcode::Tableswitch) {
      // Entry facts: all condition values constant and evaluating to the
      // recorded direction -- the guard can never fire.
      auto C0 = Pool.constOf(G.Operands[0]);
      auto C1 = G.Operands.size() > 1 ? Pool.constOf(G.Operands[1])
                                      : std::optional<int64_t>(0);
      if (C0 && C1 && evalBranch(G.Op, *C0, *C1) == G.Taken)
        Justified = true;
      // Domination: an identical check over the same value ids already
      // passed, so this one cannot fire either.
      if (!Justified && Passed.count({G.Op, G.Taken, G.Operands}))
        Justified = true;
    }
    if (Justified)
      continue;
    if (H && H->Op == G.Op && H->Taken == G.Taken)
      return Result::fail(Reason::GuardOperandMismatch,
                          "guard " + std::to_string(I) +
                              ": condition tests different values");
    return Result::fail(Reason::GuardDropped,
                        "guard " + std::to_string(I) +
                            " has no optimized counterpart and no "
                            "justification");
  }
  if (J < B.Guards.size())
    return Result::fail(Reason::GuardExtra,
                        std::to_string(B.Guards.size() - J) +
                            " unmatched guard(s) in the optimized segment");

  // --- Final state ------------------------------------------------------
  for (uint32_t L = 0; L < Src.ScratchBase; ++L)
    if (A.Locals[L] != B.Locals[L])
      return Result::fail(Reason::FinalLocalMismatch,
                          describeLocal(L) + " differs at the segment end");
  if (!(SymEval::canonicalize(A.Stack, A.StackInCount, Pool) ==
        SymEval::canonicalize(B.Stack, B.StackInCount, Pool)))
    return Result::fail(Reason::FinalStackMismatch,
                        "operand stack differs at the segment end");
  if (!(A.Effects == B.Effects)) {
    size_t At = 0;
    while (At < A.Effects.size() && At < B.Effects.size() &&
           A.Effects[At] == B.Effects[At])
      ++At;
    return Result::fail(Reason::EffectMismatch,
                        "observable effects diverge at index " +
                            std::to_string(At));
  }
  return Result::pass();
}

Result validate::validateTrace(const PreparedModule &PM, const Trace &T,
                               const OptConfig &Config,
                               const analysis::ModuleAnalysis *Facts) {
  OptStats Stats;
  std::vector<LinearSegment> Segments =
      linearizeTrace(PM, T, /*InlineStaticCalls=*/false, Facts);
  for (size_t I = 0; I < Segments.size(); ++I) {
    LinearSegment Opt = optimizeSegment(Segments[I], Stats, Config);
    Result R = validateSegment(Segments[I], Opt);
    if (!R.Ok) {
      R.SegmentIndex = static_cast<uint32_t>(I);
      return R;
    }
  }
  return Result::pass();
}
