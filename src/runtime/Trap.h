//===- runtime/Trap.h - Runtime trap kinds ----------------------*- C++ -*-===//
///
/// \file
/// Data-dependent runtime failures. The verifier rules out structural
/// errors statically; what remains (division by zero, null dereference,
/// bounds violations, resource exhaustion) surfaces as a trap that halts
/// execution with a diagnosable cause, in place of Java exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_RUNTIME_TRAP_H
#define JTC_RUNTIME_TRAP_H

#include <cstdint>

namespace jtc {

enum class TrapKind : uint8_t {
  None,
  DivideByZero,
  NullReference,
  ArrayBounds,
  FieldBounds,
  NegativeArraySize,
  StackOverflow,
  OutOfMemory,
  BadVirtualDispatch, ///< Receiver's class has no implementation for the slot.
  VmReuse,            ///< TraceVM::run() called twice; sessions are single-shot.
};

/// Human-readable trap name for diagnostics.
const char *trapName(TrapKind Kind);

} // namespace jtc

#endif // JTC_RUNTIME_TRAP_H
