//===- runtime/Machine.h - Execution state and semantics --------*- C++ -*-===//
///
/// \file
/// The Machine owns all mutable execution state (operand stack, locals,
/// call frames, heap, output) and implements the semantics of every
/// opcode. Both the per-instruction interpreter (Fig. 1 dispatch model)
/// and the per-block direct-threaded interpreter (Fig. 2 model) drive the
/// same Machine, so the two dispatch models agree on program behaviour by
/// construction and differ only in dispatch granularity.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_RUNTIME_MACHINE_H
#define JTC_RUNTIME_MACHINE_H

#include "bytecode/Program.h"
#include "runtime/Heap.h"
#include "runtime/Trap.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace jtc {

/// How one executed instruction affects control.
enum class EffectKind : uint8_t {
  Next, ///< Fall through to the next instruction.
  Jump, ///< Transfer to instruction index Effect::Target.
  Call, ///< Push a frame for method Effect::Target, then run its pc 0.
  Ret,  ///< Pop the current frame (Effect::HasValue: push return value).
  Halt, ///< Stop the virtual machine.
  Trap, ///< A runtime trap fired; see Machine::trap().
};

struct Effect {
  EffectKind Kind = EffectKind::Next;
  uint32_t Target = 0;
  bool HasValue = false;
};

/// Execution state plus opcode semantics for one program run.
///
/// The operand stack and locals of all frames live in two shared arenas;
/// each frame records its base offsets, so calls do not allocate.
class Machine {
public:
  explicit Machine(const Module &M, size_t MaxFrames = 2048,
                   size_t MaxHeapCells = 1u << 22);

  /// Clears all state (stacks, frames, heap, output, trap).
  void reset();

  /// Pushes the initial frame for \p MethodIdx, which must take no
  /// arguments.
  void start(uint32_t MethodIdx);

  /// Executes one instruction of the current frame's method and reports
  /// its control effect. Call/Ret effects only *resolve* the transfer; the
  /// interpreter applies them with pushFrame()/popFrame() so it can track
  /// dispatch boundaries.
  Effect execOne(const Instruction &I);

  /// Executes one *heap-access* instruction with its dynamic checks
  /// reduced, for accesses the trace-path alias analysis proved cannot
  /// fail them (trace/Trace.h's MemElision). \p Full skips every check;
  /// otherwise only the liveness/class check is skipped and the
  /// field/array bounds check remains. The caller asserts the proof: an
  /// unjustified call is undefined behaviour (the same type-verified-
  /// input assumption the validator's reference reasoning documents).
  /// Non-heap opcodes fall back to execOne.
  Effect execOneElided(const Instruction &I, bool Full);

  /// Pushes a frame for \p Callee, moving its arguments from the operand
  /// stack into the new locals. Returns false (and sets a StackOverflow
  /// trap) when the frame budget is exhausted.
  bool pushFrame(uint32_t Callee, uint32_t ReturnPc);

  struct PopInfo {
    bool BottomFrame = false; ///< The popped frame was the entry frame.
    uint32_t ReturnPc = 0;    ///< Caller pc to resume at (if !BottomFrame).
  };

  /// Pops the current frame; when \p HasValue, transfers the return value
  /// to the caller's operand stack.
  PopInfo popFrame(bool HasValue);

  /// Module method id of the frame on top of the call stack.
  uint32_t currentMethodId() const {
    assert(!Frames.empty() && "no active frame");
    return Frames.back().MethodId;
  }

  const Method &currentMethod() const {
    return TheModule.Methods[currentMethodId()];
  }

  bool hasFrames() const { return !Frames.empty(); }
  size_t frameDepth() const { return Frames.size(); }

  TrapKind trap() const { return TrapValue; }

  /// Values emitted by Iprint, in order; the observable output of a run.
  const std::vector<int64_t> &output() const { return Output; }

  Heap &heap() { return TheHeap; }
  const Module &module() const { return TheModule; }

  // Raw operand-stack and local access, used by tests and by the machine
  // itself. The verifier guarantees stack discipline, so these assert
  // rather than trap.
  void push(int64_t V) { Operands.push_back(V); }
  int64_t pop() {
    assert(Operands.size() > frameOperandBase() && "operand stack underflow");
    int64_t V = Operands.back();
    Operands.pop_back();
    return V;
  }
  size_t operandDepth() const { return Operands.size() - frameOperandBase(); }

  int64_t local(uint32_t Idx) const {
    assert(!Frames.empty() && Idx < currentMethod().NumLocals);
    return Locals[Frames.back().LocalsBase + Idx];
  }
  void setLocal(uint32_t Idx, int64_t V) {
    assert(!Frames.empty() && Idx < currentMethod().NumLocals);
    Locals[Frames.back().LocalsBase + Idx] = V;
  }

  // Arena access for the template JIT (src/backend): generated code works
  // on the raw operand and locals arrays through base pointers, and its
  // runtime helpers replicate execOne's heap/trap/output semantics.
  // Pointers are invalidated by push/pop/resizeOperandStack and by frame
  // operations; the JIT re-derives them per trace run and never executes
  // native code across such an operation.
  size_t operandStackSize() const { return Operands.size(); }
  int64_t *operandStackData() { return Operands.data(); }
  void resizeOperandStack(size_t N) { Operands.resize(N); }
  int64_t *currentLocalsData() {
    assert(!Frames.empty() && "no active frame");
    return Locals.data() + Frames.back().LocalsBase;
  }
  void setTrap(TrapKind Kind) { TrapValue = Kind; }
  void appendOutput(int64_t V) { Output.push_back(V); }

private:
  struct Frame {
    uint32_t MethodId = 0;
    uint32_t LocalsBase = 0;
    uint32_t OperandBase = 0;
    uint32_t ReturnPc = 0;
  };

  size_t frameOperandBase() const {
    return Frames.empty() ? 0 : Frames.back().OperandBase;
  }

  Effect trapOut(TrapKind Kind) {
    TrapValue = Kind;
    return {EffectKind::Trap, 0, false};
  }

  const Module &TheModule;
  Heap TheHeap;
  std::vector<int64_t> Operands;
  std::vector<int64_t> Locals;
  std::vector<Frame> Frames;
  std::vector<int64_t> Output;
  TrapKind TrapValue = TrapKind::None;
  size_t MaxFrames;
};

} // namespace jtc

#endif // JTC_RUNTIME_MACHINE_H
