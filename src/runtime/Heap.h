//===- runtime/Heap.h - Objects and integer arrays ---------------*- C++ -*-===//
///
/// \file
/// A simple non-moving heap holding class instances and integer arrays.
/// References are opaque nonzero int64 handles (0 is null); there is no
/// collector -- workload programs allocate a bounded working set, and the
/// heap enforces a configurable cell budget to trap runaway allocation.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_RUNTIME_HEAP_H
#define JTC_RUNTIME_HEAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jtc {

/// The heap. Object cells remember their class id (for virtual dispatch);
/// array cells use the reserved ArrayClass id.
class Heap {
public:
  /// Class id stored in array cells.
  static constexpr uint32_t ArrayClass = 0xffffffffu;
  /// The null reference.
  static constexpr int64_t Null = 0;

  explicit Heap(size_t MaxCells = 1u << 22) : MaxCells(MaxCells) {}

  /// Allocates an instance of \p ClassId with \p NumFields zeroed fields.
  /// Returns Null when the cell budget is exhausted.
  int64_t allocObject(uint32_t ClassId, uint32_t NumFields);

  /// Allocates a zeroed integer array of length \p Len (>= 0). Returns
  /// Null when the cell budget is exhausted.
  int64_t allocArray(int64_t Len);

  /// True iff \p Ref is a live non-null reference.
  bool isLive(int64_t Ref) const;

  /// Class id of the cell behind \p Ref (ArrayClass for arrays). \p Ref
  /// must be live.
  uint32_t classOf(int64_t Ref) const;

  /// Number of fields / array length. \p Ref must be live.
  size_t slotCount(int64_t Ref) const;

  /// Raw slot access. \p Ref must be live, \p Idx in range.
  int64_t load(int64_t Ref, size_t Idx) const;
  void store(int64_t Ref, size_t Idx, int64_t Value);

  /// Cells allocated so far.
  size_t size() const { return Cells.size(); }

  /// Drops every cell (used by Machine::reset()).
  void clear() { Cells.clear(); }

private:
  struct Cell {
    uint32_t ClassId = 0;
    std::vector<int64_t> Slots;
  };

  const Cell &cell(int64_t Ref) const;
  Cell &cell(int64_t Ref);

  std::vector<Cell> Cells;
  size_t MaxCells;
};

/// Order-sensitive FNV-1a digest of the whole heap: cell count, then each
/// cell's class id and slots in allocation order. Two digests are equal
/// iff the heaps are observably identical, so engines and sessions can be
/// compared without shipping heap contents around.
uint64_t heapDigest(const Heap &H);

} // namespace jtc

#endif // JTC_RUNTIME_HEAP_H
