//===- runtime/Machine.cpp ------------------------------------------------===//

#include "runtime/Machine.h"

#include <limits>

using namespace jtc;

Machine::Machine(const Module &M, size_t MaxFrames, size_t MaxHeapCells)
    : TheModule(M), TheHeap(MaxHeapCells), MaxFrames(MaxFrames) {
  Operands.reserve(256);
  Locals.reserve(1024);
  Frames.reserve(64);
}

void Machine::reset() {
  Operands.clear();
  Locals.clear();
  Frames.clear();
  Output.clear();
  TheHeap.clear();
  TrapValue = TrapKind::None;
}

void Machine::start(uint32_t MethodIdx) {
  assert(Frames.empty() && "start() on a machine already running");
  assert(TheModule.Methods[MethodIdx].NumArgs == 0 &&
         "entry method must take no arguments");
  bool Ok = pushFrame(MethodIdx, /*ReturnPc=*/0);
  assert(Ok && "initial frame push cannot overflow");
  (void)Ok;
}

bool Machine::pushFrame(uint32_t Callee, uint32_t ReturnPc) {
  if (Frames.size() >= MaxFrames) {
    TrapValue = TrapKind::StackOverflow;
    return false;
  }
  const Method &M = TheModule.Methods[Callee];
  assert(Operands.size() - frameOperandBase() >= M.NumArgs &&
         "caller did not push enough arguments");

  Frame F;
  F.MethodId = Callee;
  F.ReturnPc = ReturnPc;
  F.LocalsBase = static_cast<uint32_t>(Locals.size());
  Locals.resize(Locals.size() + M.NumLocals, 0);
  // Move the arguments (deepest first) from the caller's operand stack
  // into locals [0, NumArgs).
  size_t ArgBase = Operands.size() - M.NumArgs;
  for (uint32_t I = 0; I < M.NumArgs; ++I)
    Locals[F.LocalsBase + I] = Operands[ArgBase + I];
  Operands.resize(ArgBase);
  F.OperandBase = static_cast<uint32_t>(Operands.size());
  Frames.push_back(F);
  return true;
}

Machine::PopInfo Machine::popFrame(bool HasValue) {
  assert(!Frames.empty() && "popFrame with no frames");
  int64_t RetVal = 0;
  if (HasValue)
    RetVal = pop();
  Frame F = Frames.back();
  Frames.pop_back();
  Operands.resize(F.OperandBase);
  Locals.resize(F.LocalsBase);

  PopInfo Info;
  Info.ReturnPc = F.ReturnPc;
  Info.BottomFrame = Frames.empty();
  if (!Info.BottomFrame && HasValue)
    push(RetVal);
  return Info;
}

Effect Machine::execOne(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Nop:
    return {};
  case Opcode::Iconst:
    push(I.A);
    return {};
  case Opcode::Iload:
    push(local(static_cast<uint32_t>(I.A)));
    return {};
  case Opcode::Istore:
    setLocal(static_cast<uint32_t>(I.A), pop());
    return {};
  case Opcode::Iinc:
    setLocal(static_cast<uint32_t>(I.A),
             local(static_cast<uint32_t>(I.A)) + I.B);
    return {};
  case Opcode::Pop:
    pop();
    return {};
  case Opcode::Dup: {
    int64_t V = pop();
    push(V);
    push(V);
    return {};
  }
  case Opcode::Swap: {
    int64_t B = pop();
    int64_t A = pop();
    push(B);
    push(A);
    return {};
  }

  case Opcode::Iadd: {
    int64_t B = pop(), A = pop();
    push(static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B)));
    return {};
  }
  case Opcode::Isub: {
    int64_t B = pop(), A = pop();
    push(static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B)));
    return {};
  }
  case Opcode::Imul: {
    int64_t B = pop(), A = pop();
    push(static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B)));
    return {};
  }
  case Opcode::Idiv: {
    int64_t B = pop(), A = pop();
    if (B == 0)
      return trapOut(TrapKind::DivideByZero);
    // Define INT64_MIN / -1 as INT64_MIN instead of hardware UB.
    if (A == std::numeric_limits<int64_t>::min() && B == -1) {
      push(A);
      return {};
    }
    push(A / B);
    return {};
  }
  case Opcode::Irem: {
    int64_t B = pop(), A = pop();
    if (B == 0)
      return trapOut(TrapKind::DivideByZero);
    if (A == std::numeric_limits<int64_t>::min() && B == -1) {
      push(0);
      return {};
    }
    push(A % B);
    return {};
  }
  case Opcode::Ineg: {
    int64_t A = pop();
    push(static_cast<int64_t>(0 - static_cast<uint64_t>(A)));
    return {};
  }
  case Opcode::Ishl: {
    int64_t B = pop(), A = pop();
    push(static_cast<int64_t>(static_cast<uint64_t>(A) << (B & 63)));
    return {};
  }
  case Opcode::Ishr: {
    int64_t B = pop(), A = pop();
    push(A >> (B & 63));
    return {};
  }
  case Opcode::Iushr: {
    int64_t B = pop(), A = pop();
    push(static_cast<int64_t>(static_cast<uint64_t>(A) >> (B & 63)));
    return {};
  }
  case Opcode::Iand: {
    int64_t B = pop(), A = pop();
    push(A & B);
    return {};
  }
  case Opcode::Ior: {
    int64_t B = pop(), A = pop();
    push(A | B);
    return {};
  }
  case Opcode::Ixor: {
    int64_t B = pop(), A = pop();
    push(A ^ B);
    return {};
  }

  case Opcode::Goto:
    return {EffectKind::Jump, static_cast<uint32_t>(I.A), false};
  case Opcode::IfEq:
    return pop() == 0 ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A),
                               false}
                      : Effect{};
  case Opcode::IfNe:
    return pop() != 0 ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A),
                               false}
                      : Effect{};
  case Opcode::IfLt:
    return pop() < 0 ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A),
                              false}
                     : Effect{};
  case Opcode::IfGe:
    return pop() >= 0 ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A),
                               false}
                      : Effect{};
  case Opcode::IfGt:
    return pop() > 0 ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A),
                              false}
                     : Effect{};
  case Opcode::IfLe:
    return pop() <= 0 ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A),
                               false}
                      : Effect{};
  case Opcode::IfIcmpEq: {
    int64_t B = pop(), A = pop();
    return A == B ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A), false}
                  : Effect{};
  }
  case Opcode::IfIcmpNe: {
    int64_t B = pop(), A = pop();
    return A != B ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A), false}
                  : Effect{};
  }
  case Opcode::IfIcmpLt: {
    int64_t B = pop(), A = pop();
    return A < B ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A), false}
                 : Effect{};
  }
  case Opcode::IfIcmpGe: {
    int64_t B = pop(), A = pop();
    return A >= B ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A), false}
                  : Effect{};
  }
  case Opcode::IfIcmpGt: {
    int64_t B = pop(), A = pop();
    return A > B ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A), false}
                 : Effect{};
  }
  case Opcode::IfIcmpLe: {
    int64_t B = pop(), A = pop();
    return A <= B ? Effect{EffectKind::Jump, static_cast<uint32_t>(I.A), false}
                  : Effect{};
  }

  case Opcode::Tableswitch: {
    const SwitchTable &T = currentMethod().SwitchTables[I.A];
    int64_t Sel = pop();
    int64_t Off = Sel - T.Low;
    uint32_t Target = T.DefaultTarget;
    if (Off >= 0 && Off < static_cast<int64_t>(T.Targets.size()))
      Target = T.Targets[static_cast<size_t>(Off)];
    return {EffectKind::Jump, Target, false};
  }

  case Opcode::InvokeStatic:
    return {EffectKind::Call, static_cast<uint32_t>(I.A), false};

  case Opcode::InvokeVirtual: {
    const SlotInfo &Slot = TheModule.Slots[I.A];
    assert(operandDepth() >= Slot.ArgCount && "missing call arguments");
    int64_t Receiver = Operands[Operands.size() - Slot.ArgCount];
    if (!TheHeap.isLive(Receiver))
      return trapOut(TrapKind::NullReference);
    uint32_t ClassId = TheHeap.classOf(Receiver);
    if (ClassId == Heap::ArrayClass)
      return trapOut(TrapKind::BadVirtualDispatch);
    uint32_t Callee = TheModule.Classes[ClassId].Vtable[I.A];
    if (Callee == InvalidMethod)
      return trapOut(TrapKind::BadVirtualDispatch);
    return {EffectKind::Call, Callee, false};
  }

  case Opcode::Return:
    return {EffectKind::Ret, 0, false};
  case Opcode::Ireturn:
    return {EffectKind::Ret, 0, true};

  case Opcode::New: {
    const Class &C = TheModule.Classes[I.A];
    int64_t Ref = TheHeap.allocObject(static_cast<uint32_t>(I.A), C.NumFields);
    if (Ref == Heap::Null)
      return trapOut(TrapKind::OutOfMemory);
    push(Ref);
    return {};
  }
  case Opcode::GetField: {
    int64_t Ref = pop();
    if (!TheHeap.isLive(Ref) || TheHeap.classOf(Ref) == Heap::ArrayClass)
      return trapOut(TrapKind::NullReference);
    auto Idx = static_cast<size_t>(I.A);
    if (Idx >= TheHeap.slotCount(Ref))
      return trapOut(TrapKind::FieldBounds);
    push(TheHeap.load(Ref, Idx));
    return {};
  }
  case Opcode::PutField: {
    int64_t Value = pop();
    int64_t Ref = pop();
    if (!TheHeap.isLive(Ref) || TheHeap.classOf(Ref) == Heap::ArrayClass)
      return trapOut(TrapKind::NullReference);
    auto Idx = static_cast<size_t>(I.A);
    if (Idx >= TheHeap.slotCount(Ref))
      return trapOut(TrapKind::FieldBounds);
    TheHeap.store(Ref, Idx, Value);
    return {};
  }

  case Opcode::NewArray: {
    int64_t Len = pop();
    if (Len < 0)
      return trapOut(TrapKind::NegativeArraySize);
    int64_t Ref = TheHeap.allocArray(Len);
    if (Ref == Heap::Null)
      return trapOut(TrapKind::OutOfMemory);
    push(Ref);
    return {};
  }
  case Opcode::Iaload: {
    int64_t Idx = pop();
    int64_t Ref = pop();
    if (!TheHeap.isLive(Ref) || TheHeap.classOf(Ref) != Heap::ArrayClass)
      return trapOut(TrapKind::NullReference);
    if (Idx < 0 || static_cast<size_t>(Idx) >= TheHeap.slotCount(Ref))
      return trapOut(TrapKind::ArrayBounds);
    push(TheHeap.load(Ref, static_cast<size_t>(Idx)));
    return {};
  }
  case Opcode::Iastore: {
    int64_t Value = pop();
    int64_t Idx = pop();
    int64_t Ref = pop();
    if (!TheHeap.isLive(Ref) || TheHeap.classOf(Ref) != Heap::ArrayClass)
      return trapOut(TrapKind::NullReference);
    if (Idx < 0 || static_cast<size_t>(Idx) >= TheHeap.slotCount(Ref))
      return trapOut(TrapKind::ArrayBounds);
    TheHeap.store(Ref, static_cast<size_t>(Idx), Value);
    return {};
  }
  case Opcode::ArrayLength: {
    int64_t Ref = pop();
    if (!TheHeap.isLive(Ref) || TheHeap.classOf(Ref) != Heap::ArrayClass)
      return trapOut(TrapKind::NullReference);
    push(static_cast<int64_t>(TheHeap.slotCount(Ref)));
    return {};
  }

  case Opcode::Iprint:
    Output.push_back(pop());
    return {};

  case Opcode::Halt:
    return {EffectKind::Halt, 0, false};
  }
  assert(false && "unhandled opcode");
  return {EffectKind::Halt, 0, false};
}

Effect Machine::execOneElided(const Instruction &I, bool Full) {
  // Pop order and trap kinds mirror execOne exactly; only the elided
  // checks are gone. The liveness/class check is always elided (that is
  // what licenses calling this at all); Full additionally drops the
  // bounds check. Heap's own asserts still police the proof in checked
  // builds.
  switch (I.Op) {
  case Opcode::GetField: {
    int64_t Ref = pop();
    auto Idx = static_cast<size_t>(I.A);
    if (!Full && Idx >= TheHeap.slotCount(Ref))
      return trapOut(TrapKind::FieldBounds);
    push(TheHeap.load(Ref, Idx));
    return {};
  }
  case Opcode::PutField: {
    int64_t Value = pop();
    int64_t Ref = pop();
    auto Idx = static_cast<size_t>(I.A);
    if (!Full && Idx >= TheHeap.slotCount(Ref))
      return trapOut(TrapKind::FieldBounds);
    TheHeap.store(Ref, Idx, Value);
    return {};
  }
  case Opcode::Iaload: {
    int64_t Idx = pop();
    int64_t Ref = pop();
    if (!Full && (Idx < 0 || static_cast<size_t>(Idx) >= TheHeap.slotCount(Ref)))
      return trapOut(TrapKind::ArrayBounds);
    push(TheHeap.load(Ref, static_cast<size_t>(Idx)));
    return {};
  }
  case Opcode::Iastore: {
    int64_t Value = pop();
    int64_t Idx = pop();
    int64_t Ref = pop();
    if (!Full && (Idx < 0 || static_cast<size_t>(Idx) >= TheHeap.slotCount(Ref)))
      return trapOut(TrapKind::ArrayBounds);
    TheHeap.store(Ref, static_cast<size_t>(Idx), Value);
    return {};
  }
  case Opcode::ArrayLength: {
    int64_t Ref = pop();
    push(static_cast<int64_t>(TheHeap.slotCount(Ref)));
    return {};
  }
  default:
    return execOne(I);
  }
}
