//===- runtime/Trap.cpp ---------------------------------------------------===//

#include "runtime/Trap.h"

using namespace jtc;

const char *jtc::trapName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None:
    return "none";
  case TrapKind::DivideByZero:
    return "divide by zero";
  case TrapKind::NullReference:
    return "null reference";
  case TrapKind::ArrayBounds:
    return "array index out of bounds";
  case TrapKind::FieldBounds:
    return "field index out of bounds";
  case TrapKind::NegativeArraySize:
    return "negative array size";
  case TrapKind::StackOverflow:
    return "call stack overflow";
  case TrapKind::OutOfMemory:
    return "heap exhausted";
  case TrapKind::BadVirtualDispatch:
    return "no implementation for virtual slot";
  case TrapKind::VmReuse:
    return "single-shot vm reused";
  }
  return "unknown trap";
}
