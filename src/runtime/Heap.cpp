//===- runtime/Heap.cpp ---------------------------------------------------===//

#include "runtime/Heap.h"

#include <cassert>
#include <cstddef>

using namespace jtc;

int64_t Heap::allocObject(uint32_t ClassId, uint32_t NumFields) {
  assert(ClassId != ArrayClass && "ArrayClass id is reserved for arrays");
  if (Cells.size() >= MaxCells)
    return Null;
  Cell C;
  C.ClassId = ClassId;
  C.Slots.assign(NumFields, 0);
  Cells.push_back(std::move(C));
  return static_cast<int64_t>(Cells.size());
}

int64_t Heap::allocArray(int64_t Len) {
  assert(Len >= 0 && "caller must trap negative lengths");
  if (Cells.size() >= MaxCells)
    return Null;
  Cell C;
  C.ClassId = ArrayClass;
  C.Slots.assign(static_cast<size_t>(Len), 0);
  Cells.push_back(std::move(C));
  return static_cast<int64_t>(Cells.size());
}

bool Heap::isLive(int64_t Ref) const {
  return Ref > 0 && static_cast<size_t>(Ref) <= Cells.size();
}

const Heap::Cell &Heap::cell(int64_t Ref) const {
  assert(isLive(Ref) && "dereference of dead or null reference");
  return Cells[static_cast<size_t>(Ref) - 1];
}

Heap::Cell &Heap::cell(int64_t Ref) {
  assert(isLive(Ref) && "dereference of dead or null reference");
  return Cells[static_cast<size_t>(Ref) - 1];
}

uint32_t Heap::classOf(int64_t Ref) const { return cell(Ref).ClassId; }

size_t Heap::slotCount(int64_t Ref) const { return cell(Ref).Slots.size(); }

int64_t Heap::load(int64_t Ref, size_t Idx) const {
  const Cell &C = cell(Ref);
  assert(Idx < C.Slots.size() && "slot index out of range");
  return C.Slots[Idx];
}

void Heap::store(int64_t Ref, size_t Idx, int64_t Value) {
  Cell &C = cell(Ref);
  assert(Idx < C.Slots.size() && "slot index out of range");
  C.Slots[Idx] = Value;
}

uint64_t jtc::heapDigest(const Heap &H) {
  uint64_t D = 14695981039346656037ull;
  auto Mix = [&D](uint64_t V) { D = (D ^ V) * 1099511628211ull; };
  Mix(H.size());
  // References are dense handles 1..size and cells are never freed, so
  // this walks every cell in allocation order.
  for (size_t Ref = 1; Ref <= H.size(); ++Ref) {
    Mix(H.classOf(Ref));
    size_t N = H.slotCount(Ref);
    Mix(N);
    for (size_t I = 0; I < N; ++I)
      Mix(static_cast<uint64_t>(H.load(Ref, I)));
  }
  return D;
}
