//===- backend/X64Emitter.cpp - Minimal x86-64 instruction emitter --------===//

#include "backend/X64Emitter.h"

#include <cassert>
#include <cstring>

namespace jtc {
namespace backend {

static uint8_t lo3(Reg R) { return static_cast<uint8_t>(R) & 7; }
static bool ext(Reg R) { return static_cast<uint8_t>(R) >= 8; }

void X64Emitter::imm32(int32_t V) {
  for (int I = 0; I < 4; ++I)
    byte(static_cast<uint8_t>(static_cast<uint32_t>(V) >> (8 * I)));
}

void X64Emitter::imm64(int64_t V) {
  for (int I = 0; I < 8; ++I)
    byte(static_cast<uint8_t>(static_cast<uint64_t>(V) >> (8 * I)));
}

void X64Emitter::rex(Reg RegOp, Reg RmOp) {
  // REX.W, plus R/B extension bits for the reg and rm fields.
  byte(0x48 | (ext(RegOp) ? 0x4 : 0) | (ext(RmOp) ? 0x1 : 0));
}

void X64Emitter::modrmReg(Reg RegOp, Reg RmOp) {
  byte(0xC0 | (lo3(RegOp) << 3) | lo3(RmOp));
}

void X64Emitter::modrmMem(Reg RegOp, Reg Base, int32_t Disp) {
  assert(lo3(Base) != 4 && "rsp/r12 bases would need a SIB byte");
  // rbp/r13 cannot be encoded with mod=00 (that slot means rip-relative),
  // so force at least a disp8.
  bool NeedsDisp = Disp != 0 || lo3(Base) == 5;
  if (!NeedsDisp) {
    byte(0x00 | (lo3(RegOp) << 3) | lo3(Base));
  } else if (Disp >= -128 && Disp <= 127) {
    byte(0x40 | (lo3(RegOp) << 3) | lo3(Base));
    byte(static_cast<uint8_t>(Disp));
  } else {
    byte(0x80 | (lo3(RegOp) << 3) | lo3(Base));
    imm32(Disp);
  }
}

void X64Emitter::movRR(Reg Dst, Reg Src) { aluRR(0x8B, Dst, Src); }

void X64Emitter::movRI(Reg Dst, int64_t Imm) {
  if (Imm >= INT32_MIN && Imm <= INT32_MAX) {
    // mov r/m64, imm32 (sign-extended): REX.W C7 /0 id
    rex(Reg::Rax, Dst);
    byte(0xC7);
    modrmReg(Reg::Rax, Dst);
    imm32(static_cast<int32_t>(Imm));
  } else {
    // movabs r64, imm64: REX.W B8+rd io
    rex(Reg::Rax, Dst);
    byte(0xB8 + lo3(Dst));
    imm64(Imm);
  }
}

void X64Emitter::movRM(Reg Dst, Reg Base, int32_t Disp) {
  rex(Dst, Base);
  byte(0x8B);
  modrmMem(Dst, Base, Disp);
}

void X64Emitter::movMR(Reg Base, int32_t Disp, Reg Src) {
  rex(Src, Base);
  byte(0x89);
  modrmMem(Src, Base, Disp);
}

void X64Emitter::movMI32(Reg Base, int32_t Disp, int32_t Imm) {
  rex(Reg::Rax, Base);
  byte(0xC7);
  modrmMem(Reg::Rax, Base, Disp);
  imm32(Imm);
}

void X64Emitter::aluRR(uint8_t Op, Reg RegOp, Reg RmOp) {
  rex(RegOp, RmOp);
  byte(Op);
  modrmReg(RegOp, RmOp);
}

void X64Emitter::aluRM(uint8_t Op, Reg RegOp, Reg Base, int32_t Disp) {
  rex(RegOp, Base);
  byte(Op);
  modrmMem(RegOp, Base, Disp);
}

void X64Emitter::aluRI(uint8_t Ext, Reg RmOp, int32_t Imm) {
  rex(Reg::Rax, RmOp);
  byte(0x81);
  byte(0xC0 | (Ext << 3) | lo3(RmOp));
  imm32(Imm);
}

void X64Emitter::addRR(Reg Dst, Reg Src) { aluRR(0x03, Dst, Src); }
void X64Emitter::subRR(Reg Dst, Reg Src) { aluRR(0x2B, Dst, Src); }
void X64Emitter::andRR(Reg Dst, Reg Src) { aluRR(0x23, Dst, Src); }
void X64Emitter::orRR(Reg Dst, Reg Src) { aluRR(0x0B, Dst, Src); }
void X64Emitter::xorRR(Reg Dst, Reg Src) { aluRR(0x33, Dst, Src); }
void X64Emitter::cmpRR(Reg A, Reg B) { aluRR(0x3B, A, B); }

void X64Emitter::imulRR(Reg Dst, Reg Src) {
  rex(Dst, Src);
  byte(0x0F);
  byte(0xAF);
  modrmReg(Dst, Src);
}

void X64Emitter::addRM(Reg Dst, Reg Base, int32_t Disp) {
  aluRM(0x03, Dst, Base, Disp);
}
void X64Emitter::subRM(Reg Dst, Reg Base, int32_t Disp) {
  aluRM(0x2B, Dst, Base, Disp);
}
void X64Emitter::andRM(Reg Dst, Reg Base, int32_t Disp) {
  aluRM(0x23, Dst, Base, Disp);
}
void X64Emitter::orRM(Reg Dst, Reg Base, int32_t Disp) {
  aluRM(0x0B, Dst, Base, Disp);
}
void X64Emitter::xorRM(Reg Dst, Reg Base, int32_t Disp) {
  aluRM(0x33, Dst, Base, Disp);
}
void X64Emitter::cmpRM(Reg A, Reg Base, int32_t Disp) {
  aluRM(0x3B, A, Base, Disp);
}

void X64Emitter::imulRM(Reg Dst, Reg Base, int32_t Disp) {
  rex(Dst, Base);
  byte(0x0F);
  byte(0xAF);
  modrmMem(Dst, Base, Disp);
}

void X64Emitter::addRI(Reg Dst, int32_t Imm) { aluRI(0, Dst, Imm); }
void X64Emitter::subRI(Reg Dst, int32_t Imm) { aluRI(5, Dst, Imm); }
void X64Emitter::cmpRI(Reg A, int32_t Imm) { aluRI(7, A, Imm); }

void X64Emitter::testRR(Reg A, Reg B) {
  // test r/m64, r64: REX.W 85 /r (B is the reg field).
  rex(B, A);
  byte(0x85);
  modrmReg(B, A);
}

void X64Emitter::negR(Reg R) {
  rex(Reg::Rax, R);
  byte(0xF7);
  byte(0xC0 | (3 << 3) | lo3(R));
}

void X64Emitter::cqo() {
  byte(0x48);
  byte(0x99);
}

void X64Emitter::idivR(Reg Divisor) {
  rex(Reg::Rax, Divisor);
  byte(0xF7);
  byte(0xC0 | (7 << 3) | lo3(Divisor));
}

void X64Emitter::shlCl(Reg R) {
  rex(Reg::Rax, R);
  byte(0xD3);
  byte(0xC0 | (4 << 3) | lo3(R));
}

void X64Emitter::shrCl(Reg R) {
  rex(Reg::Rax, R);
  byte(0xD3);
  byte(0xC0 | (5 << 3) | lo3(R));
}

void X64Emitter::sarCl(Reg R) {
  rex(Reg::Rax, R);
  byte(0xD3);
  byte(0xC0 | (7 << 3) | lo3(R));
}

size_t X64Emitter::jcc(Cond C) {
  byte(0x0F);
  byte(0x80 | static_cast<uint8_t>(C));
  size_t At = Code.size();
  imm32(0);
  return At;
}

size_t X64Emitter::jmp() {
  byte(0xE9);
  size_t At = Code.size();
  imm32(0);
  return At;
}

void X64Emitter::patchRel32(size_t FixupOff, size_t Target) {
  assert(FixupOff + 4 <= Code.size() && "fixup outside emitted code");
  int64_t Rel = static_cast<int64_t>(Target) -
                static_cast<int64_t>(FixupOff + 4);
  assert(Rel >= INT32_MIN && Rel <= INT32_MAX && "jump out of rel32 range");
  auto V = static_cast<int32_t>(Rel);
  std::memcpy(Code.data() + FixupOff, &V, 4);
}

void X64Emitter::callR(Reg R) {
  if (ext(R))
    byte(0x41);
  byte(0xFF);
  byte(0xC0 | (2 << 3) | lo3(R));
}

void X64Emitter::pushR(Reg R) {
  if (ext(R))
    byte(0x41);
  byte(0x50 + lo3(R));
}

void X64Emitter::popR(Reg R) {
  if (ext(R))
    byte(0x41);
  byte(0x58 + lo3(R));
}

void X64Emitter::ret() { byte(0xC3); }

} // namespace backend
} // namespace jtc
