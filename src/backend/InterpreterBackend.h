//===- backend/InterpreterBackend.h - Block-stepping trace tier -*- C++ -*-===//
///
/// \file
/// The baseline TraceBackend: runs a dispatched trace by block-stepping
/// it through BlockStepper / Machine::execOne, exactly as the pre-seam
/// dispatch loop did. Every other backend is measured against this tier
/// -- it is the differential-fuzzing oracle and the transparent fallback
/// for anything the JIT cannot (or should not yet) compile.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BACKEND_INTERPRETERBACKEND_H
#define JTC_BACKEND_INTERPRETERBACKEND_H

#include "backend/TraceBackend.h"

namespace jtc {
namespace backend {

class InterpreterBackend : public TraceBackend {
public:
  const char *name() const override { return "interp"; }

  TraceRunResult run(const Trace &T, TraceRunContext &Ctx) override;
};

/// Block-steps one dispatched trace to its end (completion, divergence,
/// trap, program end, or budget cut). The mechanism behind
/// InterpreterBackend::run and the JIT's delegation path -- both tiers
/// share one definition of "run a trace by interpretation".
TraceRunResult stepTrace(const Trace &T, TraceRunContext &Ctx);

} // namespace backend
} // namespace jtc

#endif // JTC_BACKEND_INTERPRETERBACKEND_H
