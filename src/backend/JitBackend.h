//===- backend/JitBackend.h - x86-64 template JIT trace tier ----*- C++ -*-===//
///
/// \file
/// The compiled trace tier: a copy-and-patch template JIT. Each trace IR
/// op has a fixed x86-64 machine-code template (see TraceCompiler in the
/// .cpp) whose immediates -- local slot offsets, constants, helper
/// addresses -- are patched at compile time; guards become a compare and
/// a conditional branch to a side-exit stub. Heap-touching ops (arrays,
/// fields, allocation, print) call extern "C" helpers that replicate
/// Machine::execOne exactly, so the heap/trap/output semantics have one
/// definition. Calls and returns inside the trace call frame helpers that
/// run the Machine's real pushFrame/popFrame, then guard the dynamic
/// continuation (resolved callee / return site) against what the trace
/// recorded.
///
/// Register convention inside a compiled trace (all callee-saved, so
/// helper calls preserve them):
///
///   rbx  JitContext*            r14  operand-stack top (one past top)
///   r13  frame locals base      r15  Machine*
///
/// The operand stack is the Machine's own arena: before a native run the
/// backend extends it by the trace's MaxPush so template code pushes with
/// raw stores, and shrinks it to the native top afterwards. Frame helpers
/// shrink the arena to the true top, run the frame op, re-extend by
/// MaxPush, and publish the (possibly reallocated) pointers back through
/// the JitContext; the template reloads its pinned registers after each
/// one. Every exit -- completion, fired guard, trap, finish -- leaves an
/// exit-record index in the JitContext; the record carries the
/// interpreter-exact blocks-run / instruction counts and resume block
/// that TraceVM replays through the AdaptiveEngine. Traces are promoted
/// after BackendConfig::JitPromoteAfter completed runs; anything that
/// cannot compile (see CompileFallback) and every pre-promotion dispatch
/// runs on the embedded interpreter tier.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BACKEND_JITBACKEND_H
#define JTC_BACKEND_JITBACKEND_H

#include "backend/TraceBackend.h"
#include "runtime/Trap.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace jtc {

namespace analysis {
class ModuleAnalysis;
}

namespace backend {

/// The in/out block native trace code works against. Layout is ABI: the
/// templates address fields by constant offsets (asserted in the .cpp).
struct JitContext {
  Machine *Mach = nullptr;     ///< For runtime helpers.
  int64_t *Locals = nullptr;   ///< Current frame's locals base.
  int64_t *StackTop = nullptr; ///< One past the operand top; in/out.
  uint64_t ExitIndex = 0;      ///< Out: index into CompiledTrace::Exits.
  /// Out: the dynamic half of a frame-op exit -- the resolved callee
  /// method (CompleteCallee / DivergeCallee) or the actual return pc
  /// (CompleteRet / DivergeRet). Written by the frame helpers, read by
  /// JitBackend::run() to compute the successor block.
  uint64_t ExitPayload = 0;
};

/// One way out of a compiled trace, with the interpreter-exact accounting
/// TraceVM needs to replay the run.
struct ExitRecord {
  enum class Kind : uint8_t {
    Complete,       ///< All blocks ran; Next is the final block's successor.
    CompleteCallee, ///< All blocks ran, last op a virtual call; the
                    ///< successor is the entry block of the resolved
                    ///< callee (JitContext::ExitPayload).
    CompleteRet,    ///< All blocks ran, last op a return; the successor
                    ///< is the return-site block (ExitPayload = pc).
    Guard,          ///< A guard fired (divergence); Next is the resume block.
    DivergeCallee,  ///< A virtual call resolved off-trace; execution is in
                    ///< the resolved callee (ExitPayload) at its entry.
    DivergeRet,     ///< A return landed off-trace; execution is at the
                    ///< actual return site (ExitPayload = pc).
    Finished,       ///< A return popped the bottom frame: program over.
    Trap,           ///< A runtime trap; TrapToSet names it (None when the
                    ///< helper that detected it already set Machine::trap()).
  };
  Kind K = Kind::Complete;
  uint32_t BlocksRun = 0;
  uint64_t Instructions = 0;
  /// Dynamic heap-access checks the elided templates skipped on the path
  /// to this exit (the compile-time prefix count; exact because elided
  /// ops are straight-line code between exits). Mirrors the stepper's
  /// checksElided() accounting for the same run.
  uint64_t ChecksElided = 0;
  BlockId Next = InvalidBlockId;
  TrapKind TrapToSet = TrapKind::None;
};

using TraceFn = void (*)(JitContext *);

/// One promotion outcome, cached per trace id. A null Fn records a failed
/// promotion: the trace stays on the interpreter tier without retrying.
struct CompiledTrace {
  std::vector<BlockId> Blocks; ///< Identity check against id reuse.
  TraceFn Fn = nullptr;
  std::vector<ExitRecord> Exits;
  uint32_t MaxPush = 0;
  uint64_t InstrCount = 0;
};

/// Bump-allocated executable memory: mmapped chunks, written RW and
/// flipped RX once the code is in place. Compilation never overlaps
/// native execution (single-threaded sessions), so re-flipping a chunk RW
/// to append another trace is safe.
class CodeArena {
public:
  CodeArena() = default;
  CodeArena(const CodeArena &) = delete;
  CodeArena &operator=(const CodeArena &) = delete;
  ~CodeArena();

  /// Copies \p Code into executable memory; null when the platform cannot
  /// provide it (the CodeSpace fallback).
  const void *install(const std::vector<uint8_t> &Code);

private:
  struct Chunk {
    uint8_t *Base = nullptr;
    size_t Size = 0;
    size_t Used = 0;
  };
  std::vector<Chunk> Chunks;
};

class JitBackend : public TraceBackend {
public:
  JitBackend(const PreparedModule &PM, const BackendConfig &Config);
  ~JitBackend() override;

  const char *name() const override { return "jit"; }
  TraceRunResult run(const Trace &T, TraceRunContext &Ctx) override;
  void setTelemetry(EventRing *R) override { Telem = R; }

private:
  /// The cached promotion outcome for \p T, compiling on first sight of a
  /// hot trace; null while the trace is below the promotion threshold.
  const CompiledTrace *compiled(const Trace &T);
  CompileFallback tryCompile(const Trace &T, CompiledTrace &Out);

  const PreparedModule &PM;
  BackendConfig Config;
  EventRing *Telem = nullptr;
  /// Liveness/value facts for side-exit annotation; computed on the first
  /// promotion, reused for every trace.
  std::unique_ptr<analysis::ModuleAnalysis> Facts;
  std::unordered_map<TraceId, CompiledTrace> Cache;
  CodeArena Arena;
};

} // namespace backend
} // namespace jtc

#endif // JTC_BACKEND_JITBACKEND_H
