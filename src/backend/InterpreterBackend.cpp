//===- backend/InterpreterBackend.cpp - Block-stepping trace tier ---------===//

#include "backend/InterpreterBackend.h"

#include "interp/BlockStepper.h"

#include <cassert>

namespace jtc {
namespace backend {

TraceRunResult stepTrace(const Trace &T, TraceRunContext &Ctx) {
  BlockStepper &S = Ctx.Stepper;
  assert(S.currentBlock() == T.Blocks.front() &&
         "stepper not positioned at the trace entry");

  const uint64_t Start = S.instructions();
  const uint64_t ElidedStart = S.checksElided();
  // Absolute instruction count at which the session budget cuts the run.
  // The check is block-granular and sits after the status check, matching
  // the live loop it replaces.
  const uint64_t Stop = Ctx.RemainingBudget > ~0ull - Start
                            ? ~0ull
                            : Start + Ctx.RemainingBudget;

  // Cursor over the trace's check-elision facts (pc-ordered within
  // ascending block index); each block's slice is armed on the stepper
  // just before that block steps. Inside the trace the facts' path
  // assumption holds by construction: block I only executes after blocks
  // 0..I-1 matched the recorded sequence.
  const MemElision *EF = T.MemElisions.data();
  const size_t EN = T.MemElisions.size();
  size_t EC = 0;

  TraceRunResult R;
  for (size_t I = 0; I < T.Blocks.size(); ++I) {
    if (EC < EN && EF[EC].BlockIndex == I) {
      size_t Begin = EC;
      while (EC < EN && EF[EC].BlockIndex == I)
        ++EC;
      S.setElisions(EF + Begin, EC - Begin);
    }
    BlockStepper::StepStatus St = S.step();
    R.BlocksRun = static_cast<uint32_t>(I + 1);
    R.Instructions = S.instructions() - Start;
    R.ChecksElided = S.checksElided() - ElidedStart;
    if (St == BlockStepper::StepStatus::Trapped) {
      R.End = TraceRunEnd::Trapped;
      return R;
    }
    if (St == BlockStepper::StepStatus::Finished) {
      R.End = TraceRunEnd::Finished;
      return R;
    }
    if (S.instructions() >= Stop) {
      R.End = TraceRunEnd::Budget;
      return R;
    }
    BlockId Next = S.currentBlock();
    if (I + 1 == T.Blocks.size()) {
      R.End = TraceRunEnd::Completed;
      R.NextBlock = Next;
      return R;
    }
    if (Next != T.Blocks[I + 1]) {
      R.End = TraceRunEnd::Diverged;
      R.NextBlock = Next;
      return R;
    }
  }
  assert(false && "trace has no blocks");
  return R;
}

TraceRunResult InterpreterBackend::run(const Trace &T, TraceRunContext &Ctx) {
  ++Stats.InterpDispatches;
  TraceRunResult R = stepTrace(T, Ctx);
  Stats.MemChecksElided += R.ChecksElided;
  return R;
}

} // namespace backend
} // namespace jtc
