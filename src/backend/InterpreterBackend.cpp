//===- backend/InterpreterBackend.cpp - Block-stepping trace tier ---------===//

#include "backend/InterpreterBackend.h"

#include "interp/BlockStepper.h"

#include <cassert>

namespace jtc {
namespace backend {

TraceRunResult stepTrace(const Trace &T, TraceRunContext &Ctx) {
  BlockStepper &S = Ctx.Stepper;
  assert(S.currentBlock() == T.Blocks.front() &&
         "stepper not positioned at the trace entry");

  const uint64_t Start = S.instructions();
  // Absolute instruction count at which the session budget cuts the run.
  // The check is block-granular and sits after the status check, matching
  // the live loop it replaces.
  const uint64_t Stop = Ctx.RemainingBudget > ~0ull - Start
                            ? ~0ull
                            : Start + Ctx.RemainingBudget;

  TraceRunResult R;
  for (size_t I = 0; I < T.Blocks.size(); ++I) {
    BlockStepper::StepStatus St = S.step();
    R.BlocksRun = static_cast<uint32_t>(I + 1);
    R.Instructions = S.instructions() - Start;
    if (St == BlockStepper::StepStatus::Trapped) {
      R.End = TraceRunEnd::Trapped;
      return R;
    }
    if (St == BlockStepper::StepStatus::Finished) {
      R.End = TraceRunEnd::Finished;
      return R;
    }
    if (S.instructions() >= Stop) {
      R.End = TraceRunEnd::Budget;
      return R;
    }
    BlockId Next = S.currentBlock();
    if (I + 1 == T.Blocks.size()) {
      R.End = TraceRunEnd::Completed;
      R.NextBlock = Next;
      return R;
    }
    if (Next != T.Blocks[I + 1]) {
      R.End = TraceRunEnd::Diverged;
      R.NextBlock = Next;
      return R;
    }
  }
  assert(false && "trace has no blocks");
  return R;
}

TraceRunResult InterpreterBackend::run(const Trace &T, TraceRunContext &Ctx) {
  ++Stats.InterpDispatches;
  return stepTrace(T, Ctx);
}

} // namespace backend
} // namespace jtc
