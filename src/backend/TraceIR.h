//===- backend/TraceIR.h - Backend view of the trace IR ---------*- C++ -*-===//
///
/// \file
/// The execution IR a trace lowers into before a backend runs it: the
/// trace's dynamic instruction stream with every control decision made
/// explicit. Interior conditional branches become direction *guards*
/// (compare-and-side-exit, like src/opt's LinearOp guards, and annotated
/// with the same validator-grade liveness facts); calls and returns
/// become frame ops that push/pop Machine frames and guard the recorded
/// continuation (a virtual call guards the resolved callee, a return
/// guards the return site -- both are dynamic, exactly the places a
/// recorded trace can diverge). Jumps and fallthroughs vanish: the block
/// sequence already encodes them (they still count in the instruction
/// accounting). The final block's terminator is not an interior op --
/// the trace records no direction for it -- so a separate completion
/// rule describes how it selects the successor block.
///
/// The JIT compiles the *unoptimized* stream: each IR op maps 1:1 to the
/// instruction the interpreter would execute, so the machine state at
/// every side exit, trap and completion is the interpreter state by
/// construction, and the interp/JIT digest contract is structural rather
/// than proved per trace. (Compiling the validator-accepted *optimized*
/// segments is the designed next step; guards already carry the liveness
/// facts that make partial state materialization at exits legal.)
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BACKEND_TRACEIR_H
#define JTC_BACKEND_TRACEIR_H

#include "analysis/Liveness.h"
#include "backend/TraceBackend.h"
#include "bytecode/Program.h"

#include <cstdint>
#include <vector>

namespace jtc {

namespace analysis {
class ModuleAnalysis;
}

namespace backend {

/// One trace IR operation.
struct IrOp {
  enum class Kind : uint8_t {
    Instr,       ///< Ordinary instruction, 1:1 with the interpreter.
    Guard,       ///< Interior conditional branch: assert the recorded
                 ///< direction, side-exit to Resume otherwise.
    CallStatic,  ///< InvokeStatic: push a frame, continue in the callee.
                 ///< The continuation is static, so it cannot diverge.
    CallVirtual, ///< InvokeVirtual: resolve the receiver, push a frame,
                 ///< and (mid-trace) diverge unless the resolved callee
                 ///< is the recorded one.
    Ret,         ///< Return/Ireturn: pop a frame; finishes the run at the
                 ///< bottom frame, diverges (mid-trace) unless the return
                 ///< site is the recorded one.
  };

  Kind K = Kind::Instr;
  /// Instr: the instruction. Guard: the branch. Calls/Ret: the
  /// terminator (I.A is the callee / vtable slot).
  Instruction I;

  // Guard fields.
  bool GuardTaken = false;         ///< The trace follows the taken edge.
  BlockId Resume = InvalidBlockId; ///< Block interpretation resumes at.
  /// Validator-grade liveness at the exit: when HasLiveAtExit, only the
  /// locals in LiveAtExit must hold interpreter-exact values (dead locals
  /// may be stale). The unoptimized tier materializes everything
  /// regardless; the annotation records what the validator proved.
  bool HasLiveAtExit = false;
  analysis::LocalSet LiveAtExit;

  // Call fields.
  /// CallStatic: the callee. CallVirtual: the *expected* callee (the
  /// method whose entry the trace records next); InvalidMethod on the
  /// final block, where any resolution completes the trace.
  uint32_t Callee = InvalidMethod;
  uint32_t ReturnPc = 0; ///< Caller pc the new frame returns to.

  // Ret fields.
  bool HasValue = false; ///< Ireturn (transfer a value to the caller).
  /// The recorded return site (method, pc); ExpectMethod is InvalidMethod
  /// on the final block, where any return site completes the trace.
  uint32_t ExpectMethod = InvalidMethod;
  uint32_t ExpectPc = 0;

  /// Source position: the trace block (index into Blocks) and method pc
  /// this op lowers, the basis for interpreter-exact accounting at every
  /// side exit and trap.
  uint32_t SrcBlockIndex = 0;
  uint32_t SrcPc = 0;

  /// Check elision for heap-access Instr ops, copied from the trace's
  /// MemElisions (None when the access was not proven, or the trace
  /// carries no annotation). The compiler selects reduced-check helper
  /// templates accordingly; a Full op needs no trap exit at all.
  enum class ElideKind : uint8_t {
    None = 0, ///< Emit the fully checked helper.
    NullOnly, ///< Skip the liveness/class check; keep the bounds check.
    Full,     ///< Skip every check (the access provably cannot trap).
  };
  ElideKind Elide = ElideKind::None;
};

/// One trace lowered for backend execution.
struct TraceIR {
  TraceId Id = 0;
  /// Method of the first block. Later blocks may be in other methods --
  /// traces follow calls and returns across frames.
  uint32_t EntryMethod = 0;

  /// The trace's block sequence, copied: Trace objects live in the cache
  /// table, which may reallocate while a compiled trace is still
  /// dispatchable.
  std::vector<BlockId> Blocks;

  /// The lowered op stream, in execution order.
  std::vector<IrOp> Ops;

  /// How the final block's terminator selects the successor once every
  /// trace block has run.
  enum class CompleteKind : uint8_t {
    Static, ///< Goto, fallthrough or static call: NextFall is known.
    Branch, ///< Conditional: FinalTerm pops and picks NextTaken/NextFall.
    Callee, ///< Final op is a virtual call: the successor is the entry
            ///< block of whatever callee resolved at run time.
    Return, ///< Final op is a return: the successor is the dynamic
            ///< return site (or the run finishes at the bottom frame).
  };
  CompleteKind Complete = CompleteKind::Static;
  Instruction FinalTerm;
  BlockId NextTaken = InvalidBlockId;
  BlockId NextFall = InvalidBlockId;

  /// Total instructions a completed run executes (== Trace::InstrCount).
  uint64_t InstrCount = 0;

  /// InstrPrefix[i] = instructions in blocks [0, i); size Blocks.size()+1.
  std::vector<uint64_t> InstrPrefix;

  /// Maximum operand-stack growth above the entry depth of the current
  /// frame run (runs are delimited by frame ops, which re-establish the
  /// stack slack). The JIT pre-extends the operand arena by this much so
  /// template code can push with raw stores.
  uint32_t MaxPush = 0;
};

/// Lowering outcome: Ok, or the typed reason the backend must fall back
/// to the interpreter for this trace.
struct LowerResult {
  CompileFallback Why = CompileFallback::None;
  TraceIR IR;

  bool ok() const { return Why == CompileFallback::None; }
};

/// Lowers \p T into a TraceIR, or reports why its shape cannot run on the
/// template tier (a halt or tableswitch anywhere, or a recorded block
/// sequence inconsistent with its terminators -- possible under
/// fault-injection, where falling back reproduces the interpreter's
/// divergence behaviour exactly). \p Facts, when provided, annotates
/// guards with liveness the way validation does.
LowerResult lowerTrace(const PreparedModule &PM, const Trace &T,
                       const analysis::ModuleAnalysis *Facts);

} // namespace backend
} // namespace jtc

#endif // JTC_BACKEND_TRACEIR_H
