//===- backend/TraceBackend.cpp - Seam support + backend factory ----------===//

#include "backend/TraceBackend.h"

#include "backend/InterpreterBackend.h"
#include "backend/JitBackend.h"

namespace jtc {
namespace backend {

TraceBackend::~TraceBackend() = default;

const char *compileFallbackName(CompileFallback F) {
  switch (F) {
  case CompileFallback::None:
    return "none";
  case CompileFallback::HostUnsupported:
    return "host-unsupported";
  case CompileFallback::HaltInTrace:
    return "halt-in-trace";
  case CompileFallback::SwitchGuard:
    return "switch-guard";
  case CompileFallback::TraceShape:
    return "trace-shape";
  case CompileFallback::NoTemplate:
    return "no-template";
  case CompileFallback::CodeSpace:
    return "code-space";
  }
  return "unknown";
}

const ErrorDomain &compileFallbackDomain() {
  static const ErrorDomain Dom = {"backend", [](uint32_t Code) {
                                    return compileFallbackName(
                                        static_cast<CompileFallback>(Code));
                                  }};
  return Dom;
}

bool jitSupportedHost() {
#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
  return true;
#else
  return false;
#endif
}

std::unique_ptr<TraceBackend> makeBackend(BackendKind Kind,
                                          const PreparedModule &PM,
                                          const BackendConfig &Config) {
  if (Kind == BackendKind::Auto)
    Kind = jitSupportedHost() && !Config.SimulateUnsupportedHost
               ? BackendKind::Jit
               : BackendKind::Interp;
  if (Kind == BackendKind::Jit)
    return std::make_unique<JitBackend>(PM, Config);
  (void)PM;
  return std::make_unique<InterpreterBackend>();
}

} // namespace backend
} // namespace jtc
