//===- backend/TraceBackend.h - The trace-execution seam --------*- C++ -*-===//
///
/// \file
/// The execution seam between trace selection (src/trace, src/opt,
/// src/validate -- everything that decides *what* a trace is) and trace
/// execution (*how* a dispatched trace runs). AdaptiveEngine decides that
/// a transition enters a trace; from that point the whole trace run --
/// every block, every interior branch, the divergence or completion --
/// belongs to exactly one TraceBackend::run() call. The backend executes
/// instructions only; it never touches the profiler, the trace cache or
/// the statistics. TraceVM replays the backend's summary through the
/// AdaptiveEngine afterwards, block by block, so the adaptive state,
/// telemetry clocks and btrace stream are bit-identical regardless of
/// which backend ran -- that interp/JIT equivalence contract (same
/// VmStats digest, same btrace stream) is what the fuzz oracle enforces.
///
/// Two backends ship:
///  - InterpreterBackend: block-steps the trace through BlockStepper /
///    Machine::execOne, exactly the pre-seam dispatch loop. This is the
///    oracle tier.
///  - JitBackend (x86-64 only): promotes hot completed traces to template
///    machine code (see X64Emitter.h) and runs them natively; anything it
///    cannot compile -- and every pre-promotion dispatch -- is delegated
///    to an embedded InterpreterBackend, so fallback is invisible to the
///    caller.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BACKEND_TRACEBACKEND_H
#define JTC_BACKEND_TRACEBACKEND_H

#include "backend/BackendKind.h"
#include "support/TypedError.h"
#include "trace/Trace.h"

#include <cstdint>
#include <memory>

namespace jtc {

class PreparedModule;
class Machine;
class BlockStepper;
class EventRing;

namespace backend {

/// Why a trace could not be promoted to native code. Codes are stable
/// (they surface in telemetry events and --json counters); new reasons go
/// at the end.
enum class CompileFallback : uint8_t {
  None = 0,        ///< Compiled.
  HostUnsupported, ///< Not an x86-64 build (or simulated unsupported).
  HaltInTrace,     ///< A trace block ends in halt.
  SwitchGuard,     ///< A tableswitch anywhere in the trace (records no
                   ///< direction a two-way guard could assert).
  TraceShape,      ///< A recorded successor is unreachable from its
                   ///< block's terminator -- a corrupted trace (fault
                   ///< injection); the interpreter tier reproduces its
                   ///< divergence behaviour exactly.
  NoTemplate,      ///< An op without a machine-code template survived
                   ///< lowering (compiler safety net; never expected).
  CodeSpace,       ///< Executable code buffer could not be allocated.
};

inline constexpr unsigned NumCompileFallbacks =
    static_cast<unsigned>(CompileFallback::CodeSpace) + 1;

/// Stable kebab-case reason name ("host-unsupported", "call-in-trace", ...).
const char *compileFallbackName(CompileFallback F);

/// The TypedError domain for compile-fallback reasons ("backend").
const ErrorDomain &compileFallbackDomain();

/// Tier accounting, folded into VmStats (digest-excluded: which tier ran
/// is a backend configuration, not an execution semantic).
struct BackendStats {
  uint64_t TracesCompiled = 0;     ///< Traces promoted to native code.
  uint64_t CompileFallbacks = 0;   ///< Traces that failed promotion.
  uint64_t CompiledDispatches = 0; ///< Trace runs executed natively.
  uint64_t InterpDispatches = 0;   ///< Trace runs executed by block-stepping.
  uint64_t CodeBytes = 0;          ///< Native code emitted.
  /// Dynamic heap-access checks skipped via trace MemElisions, summed
  /// over every run this backend served (both tiers count identically).
  uint64_t MemChecksElided = 0;
  uint64_t FallbacksByReason[NumCompileFallbacks] = {};
};

/// How one trace run ended.
enum class TraceRunEnd : uint8_t {
  Completed, ///< Every trace block executed; NextBlock is the successor of
             ///< the final block.
  Diverged,  ///< A successor mismatched the trace; NextBlock is where
             ///< execution actually went.
  Trapped,   ///< A runtime trap fired; Machine::trap() is set.
  Finished,  ///< The program ended inside the trace (halt / bottom return).
  Budget,    ///< The instruction budget was reached mid-trace (interpreter
             ///< backend only; the JIT never starts a run it cannot finish).
};

/// The summary TraceVM replays through the AdaptiveEngine. Instructions
/// and BlocksRun follow the interpreter's accounting exactly: a trapping
/// instruction is counted, and the block it trapped in counts as run.
struct TraceRunResult {
  TraceRunEnd End = TraceRunEnd::Completed;
  uint32_t BlocksRun = 0;      ///< Trace blocks executed (>= 1).
  uint64_t Instructions = 0;   ///< Instructions executed by this run.
  BlockId NextBlock = InvalidBlockId; ///< Successor (Completed / Diverged).
  /// Dynamic checks skipped via the trace's MemElisions during this run
  /// (digest-neutral accounting; see BackendStats::MemChecksElided).
  uint64_t ChecksElided = 0;
};

/// Everything a backend may touch while running one trace. The stepper is
/// positioned at the trace's first block; on return the caller
/// repositions it at TraceRunResult::NextBlock.
struct TraceRunContext {
  const PreparedModule &PM;
  Machine &Mach;
  BlockStepper &Stepper;
  /// Instructions this dispatch may still execute before the session
  /// budget cuts the run (the live loop's block-granular check).
  uint64_t RemainingBudget = ~0ull;
};

/// Backend construction knobs (a slice of VmOptions).
struct BackendConfig {
  /// Completed executions before a trace is promoted to native code.
  uint32_t JitPromoteAfter = 2;
  /// Test hook: pretend the host cannot run template code, forcing the
  /// HostUnsupported fallback path on any host.
  bool SimulateUnsupportedHost = false;
};

/// The trace-execution interface. One instance per VM session; never
/// shared across threads.
class TraceBackend {
public:
  virtual ~TraceBackend();

  /// Stable tier name ("interp", "jit") -- what actually executes, after
  /// Auto resolution.
  virtual const char *name() const = 0;

  /// Executes \p T (all of it, or as much as diverges / traps / fits the
  /// budget). \p T is the trace AdaptiveEngine just dispatched; the
  /// machine is at the entry state of T's first block.
  virtual TraceRunResult run(const Trace &T, TraceRunContext &Ctx) = 0;

  /// Attaches the session telemetry ring (TraceCompiled /
  /// TraceCompileFallback events); null detaches.
  virtual void setTelemetry(EventRing *R) { (void)R; }

  const BackendStats &stats() const { return Stats; }

protected:
  BackendStats Stats;
};

/// True when this build can emit and execute template code (x86-64 with
/// POSIX executable mappings).
bool jitSupportedHost();

/// Creates the backend for \p Kind over \p PM. Auto resolves to Jit when
/// jitSupportedHost() (and not Config.SimulateUnsupportedHost), Interp
/// otherwise. Jit on an unsupported host still constructs a JitBackend;
/// every promotion attempt then records a HostUnsupported fallback and
/// runs through its embedded interpreter tier.
std::unique_ptr<TraceBackend> makeBackend(BackendKind Kind,
                                          const PreparedModule &PM,
                                          const BackendConfig &Config);

} // namespace backend
} // namespace jtc

#endif // JTC_BACKEND_TRACEBACKEND_H
