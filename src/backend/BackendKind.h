//===- backend/BackendKind.h - Trace-execution tier selection ---*- C++ -*-===//
///
/// \file
/// The backend knob: which tier executes dispatched traces. Kept in its
/// own header (enum + names only) so VmOptions can carry the knob without
/// depending on the execution machinery in TraceBackend.h.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BACKEND_BACKENDKIND_H
#define JTC_BACKEND_BACKENDKIND_H

#include <cstdint>
#include <string>

namespace jtc {
namespace backend {

/// Which TraceBackend executes dispatched traces (the CLI spelling of
/// --backend=).
enum class BackendKind : uint8_t {
  Interp, ///< Block-step every trace through the interpreter (the
          ///< pre-seam behaviour; the differential-fuzzing oracle).
  Jit,    ///< Compile hot completed traces to x86-64 template code; a
          ///< trace that cannot compile (or a non-x86-64 host) falls
          ///< back to the interpreter backend transparently.
  Auto,   ///< Jit when the host supports it, Interp otherwise.
};

inline const char *backendKindName(BackendKind K) {
  switch (K) {
  case BackendKind::Interp:
    return "interp";
  case BackendKind::Jit:
    return "jit";
  case BackendKind::Auto:
    return "auto";
  }
  return "interp";
}

/// Parses "interp" / "jit" / "auto".
inline bool parseBackendKind(const std::string &V, BackendKind &Out) {
  if (V == "interp")
    Out = BackendKind::Interp;
  else if (V == "jit")
    Out = BackendKind::Jit;
  else if (V == "auto")
    Out = BackendKind::Auto;
  else
    return false;
  return true;
}

} // namespace backend
} // namespace jtc

#endif // JTC_BACKEND_BACKENDKIND_H
