//===- backend/JitBackend.cpp - x86-64 template JIT trace tier ------------===//

#include "backend/JitBackend.h"

#include "analysis/Analysis.h"
#include "backend/InterpreterBackend.h"
#include "backend/TraceIR.h"
#include "backend/X64Emitter.h"
#include "interp/BlockStepper.h"
#include "interp/PreparedModule.h"
#include "runtime/Machine.h"
#include "telemetry/EventRing.h"

#include <cassert>
#include <cstddef>
#include <cstring>
#include <limits>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define JTC_HAVE_MMAP 1
#endif

namespace jtc {
namespace backend {

// The templates address JitContext fields by these constants; keep the
// struct layout and the generated code in lockstep.
static constexpr int32_t CtxMach = 0;
static constexpr int32_t CtxLocals = 8;
static constexpr int32_t CtxTop = 16;
static constexpr int32_t CtxExit = 24;
static constexpr int32_t CtxPayload = 32;
static_assert(offsetof(JitContext, Mach) == CtxMach, "ABI drift");
static_assert(offsetof(JitContext, Locals) == CtxLocals, "ABI drift");
static_assert(offsetof(JitContext, StackTop) == CtxTop, "ABI drift");
static_assert(offsetof(JitContext, ExitIndex) == CtxExit, "ABI drift");
static_assert(offsetof(JitContext, ExitPayload) == CtxPayload, "ABI drift");

// Pinned registers (all callee-saved; see JitBackend.h).
static constexpr Reg CtxReg = Reg::Rbx;
static constexpr Reg LocalsReg = Reg::R13;
static constexpr Reg TopReg = Reg::R14;
static constexpr Reg MachReg = Reg::R15;

//===----------------------------------------------------------------------===//
// Runtime helpers
//
// Heap-touching ops go through these instead of inline code: heap cells
// are nested std::vectors, so their semantics stay defined once, in C++,
// byte-identical to Machine::execOne. Helpers set Machine::trap()
// themselves and report "trapped" through the second return register;
// they never touch the Machine's operand stack or locals arenas (the
// template code owns those via pinned pointers).
//===----------------------------------------------------------------------===//

extern "C" {

/// Returned in rax (Value) and rdx (Trap) under the SysV ABI.
struct JitHelperResult {
  int64_t Value;
  uint64_t Trap;
};

static JitHelperResult jtcJitIaload(Machine *M, int64_t Ref, int64_t Idx) {
  Heap &H = M->heap();
  if (!H.isLive(Ref) || H.classOf(Ref) != Heap::ArrayClass) {
    M->setTrap(TrapKind::NullReference);
    return {0, 1};
  }
  if (Idx < 0 || static_cast<size_t>(Idx) >= H.slotCount(Ref)) {
    M->setTrap(TrapKind::ArrayBounds);
    return {0, 1};
  }
  return {H.load(Ref, static_cast<size_t>(Idx)), 0};
}

static uint64_t jtcJitIastore(Machine *M, int64_t Ref, int64_t Idx,
                              int64_t Value) {
  Heap &H = M->heap();
  if (!H.isLive(Ref) || H.classOf(Ref) != Heap::ArrayClass) {
    M->setTrap(TrapKind::NullReference);
    return 1;
  }
  if (Idx < 0 || static_cast<size_t>(Idx) >= H.slotCount(Ref)) {
    M->setTrap(TrapKind::ArrayBounds);
    return 1;
  }
  H.store(Ref, static_cast<size_t>(Idx), Value);
  return 0;
}

static JitHelperResult jtcJitArrayLength(Machine *M, int64_t Ref) {
  Heap &H = M->heap();
  if (!H.isLive(Ref) || H.classOf(Ref) != Heap::ArrayClass) {
    M->setTrap(TrapKind::NullReference);
    return {0, 1};
  }
  return {static_cast<int64_t>(H.slotCount(Ref)), 0};
}

static JitHelperResult jtcJitGetField(Machine *M, int64_t Ref, int64_t Slot) {
  Heap &H = M->heap();
  if (!H.isLive(Ref) || H.classOf(Ref) == Heap::ArrayClass) {
    M->setTrap(TrapKind::NullReference);
    return {0, 1};
  }
  if (static_cast<size_t>(Slot) >= H.slotCount(Ref)) {
    M->setTrap(TrapKind::FieldBounds);
    return {0, 1};
  }
  return {H.load(Ref, static_cast<size_t>(Slot)), 0};
}

static uint64_t jtcJitPutField(Machine *M, int64_t Ref, int64_t Slot,
                               int64_t Value) {
  Heap &H = M->heap();
  if (!H.isLive(Ref) || H.classOf(Ref) == Heap::ArrayClass) {
    M->setTrap(TrapKind::NullReference);
    return 1;
  }
  if (static_cast<size_t>(Slot) >= H.slotCount(Ref)) {
    M->setTrap(TrapKind::FieldBounds);
    return 1;
  }
  H.store(Ref, static_cast<size_t>(Slot), Value);
  return 0;
}

//===--- Reduced-check variants (IrOp::ElideKind) ----------------------===//
//
// For heap accesses the trace-path alias analysis proved cannot fail a
// check (Trace::MemElisions). NoNull keeps the bounds check but skips the
// liveness/class check; Fast skips everything and so cannot trap at all
// (the template emits no trap exit for it). Pop order, trap kinds and
// Heap calls mirror Machine::execOneElided exactly.

static JitHelperResult jtcJitIaloadNoNull(Machine *M, int64_t Ref,
                                          int64_t Idx) {
  Heap &H = M->heap();
  if (Idx < 0 || static_cast<size_t>(Idx) >= H.slotCount(Ref)) {
    M->setTrap(TrapKind::ArrayBounds);
    return {0, 1};
  }
  return {H.load(Ref, static_cast<size_t>(Idx)), 0};
}

static int64_t jtcJitIaloadFast(Machine *M, int64_t Ref, int64_t Idx) {
  return M->heap().load(Ref, static_cast<size_t>(Idx));
}

static uint64_t jtcJitIastoreNoNull(Machine *M, int64_t Ref, int64_t Idx,
                                    int64_t Value) {
  Heap &H = M->heap();
  if (Idx < 0 || static_cast<size_t>(Idx) >= H.slotCount(Ref)) {
    M->setTrap(TrapKind::ArrayBounds);
    return 1;
  }
  H.store(Ref, static_cast<size_t>(Idx), Value);
  return 0;
}

static void jtcJitIastoreFast(Machine *M, int64_t Ref, int64_t Idx,
                              int64_t Value) {
  M->heap().store(Ref, static_cast<size_t>(Idx), Value);
}

static int64_t jtcJitArrayLengthFast(Machine *M, int64_t Ref) {
  return static_cast<int64_t>(M->heap().slotCount(Ref));
}

static JitHelperResult jtcJitGetFieldNoNull(Machine *M, int64_t Ref,
                                            int64_t Slot) {
  Heap &H = M->heap();
  if (static_cast<size_t>(Slot) >= H.slotCount(Ref)) {
    M->setTrap(TrapKind::FieldBounds);
    return {0, 1};
  }
  return {H.load(Ref, static_cast<size_t>(Slot)), 0};
}

static int64_t jtcJitGetFieldFast(Machine *M, int64_t Ref, int64_t Slot) {
  return M->heap().load(Ref, static_cast<size_t>(Slot));
}

static uint64_t jtcJitPutFieldNoNull(Machine *M, int64_t Ref, int64_t Slot,
                                     int64_t Value) {
  Heap &H = M->heap();
  if (static_cast<size_t>(Slot) >= H.slotCount(Ref)) {
    M->setTrap(TrapKind::FieldBounds);
    return 1;
  }
  H.store(Ref, static_cast<size_t>(Slot), Value);
  return 0;
}

static void jtcJitPutFieldFast(Machine *M, int64_t Ref, int64_t Slot,
                               int64_t Value) {
  M->heap().store(Ref, static_cast<size_t>(Slot), Value);
}

static JitHelperResult jtcJitNew(Machine *M, int64_t ClassId) {
  const Class &C = M->module().Classes[static_cast<size_t>(ClassId)];
  int64_t Ref = M->heap().allocObject(static_cast<uint32_t>(ClassId),
                                      C.NumFields);
  if (Ref == Heap::Null) {
    M->setTrap(TrapKind::OutOfMemory);
    return {0, 1};
  }
  return {Ref, 0};
}

static JitHelperResult jtcJitNewArray(Machine *M, int64_t Len) {
  if (Len < 0) {
    M->setTrap(TrapKind::NegativeArraySize);
    return {0, 1};
  }
  int64_t Ref = M->heap().allocArray(Len);
  if (Ref == Heap::Null) {
    M->setTrap(TrapKind::OutOfMemory);
    return {0, 1};
  }
  return {Ref, 0};
}

static void jtcJitIprint(Machine *M, int64_t Value) {
  M->appendOutput(Value);
}

//===----------------------------------------------------------------------===//
// Frame helpers
//
// Calls and returns inside a trace run the Machine's real frame machinery.
// Protocol: shrink the over-extended operand arena to the live top (the
// frame ops work on the vector's end), run the frame op, re-extend by the
// trace's stack slack, and publish the -- possibly reallocated -- top and
// locals pointers back through the JitContext; the template reloads its
// pinned registers afterwards. Return code: 0 = continue on trace,
// 1 = trapped, 2 = diverged (JC->ExitPayload holds where execution
// actually went), 3 = program finished (bottom-frame return).
//===----------------------------------------------------------------------===//

static uint64_t jtcJitCallStatic(JitContext *JC, uint64_t Callee,
                                 uint64_t ReturnPc, uint64_t Slack) {
  Machine *M = JC->Mach;
  size_t Top = static_cast<size_t>(JC->StackTop - M->operandStackData());
  M->resizeOperandStack(Top);
  if (!M->pushFrame(static_cast<uint32_t>(Callee),
                    static_cast<uint32_t>(ReturnPc))) {
    // StackOverflow trap, args left on the stack (pushFrame's contract).
    JC->StackTop = M->operandStackData() + M->operandStackSize();
    return 1;
  }
  size_t NewTop = M->operandStackSize();
  M->resizeOperandStack(NewTop + Slack);
  JC->StackTop = M->operandStackData() + NewTop;
  JC->Locals = M->currentLocalsData();
  return 0;
}

static uint64_t jtcJitCallVirtual(JitContext *JC, uint64_t SlotId,
                                  uint64_t ReturnPc, uint64_t Expect,
                                  uint64_t Slack) {
  Machine *M = JC->Mach;
  size_t Top = static_cast<size_t>(JC->StackTop - M->operandStackData());
  M->resizeOperandStack(Top);
  // Resolution replicates execOne's InvokeVirtual: receiver liveness, then
  // vtable dispatch, trapping *before* the args are consumed.
  const Module &Mod = M->module();
  const SlotInfo &Slot = Mod.Slots[static_cast<size_t>(SlotId)];
  int64_t Receiver = M->operandStackData()[Top - Slot.ArgCount];
  Heap &H = M->heap();
  if (!H.isLive(Receiver)) {
    M->setTrap(TrapKind::NullReference);
    JC->StackTop = M->operandStackData() + Top;
    return 1;
  }
  uint32_t ClassId = H.classOf(Receiver);
  uint32_t Callee = ClassId == Heap::ArrayClass
                        ? InvalidMethod
                        : Mod.Classes[ClassId].Vtable[static_cast<size_t>(
                              SlotId)];
  if (Callee == InvalidMethod) {
    M->setTrap(TrapKind::BadVirtualDispatch);
    JC->StackTop = M->operandStackData() + Top;
    return 1;
  }
  if (!M->pushFrame(Callee, static_cast<uint32_t>(ReturnPc))) {
    JC->StackTop = M->operandStackData() + M->operandStackSize();
    return 1;
  }
  size_t NewTop = M->operandStackSize();
  M->resizeOperandStack(NewTop + Slack);
  JC->StackTop = M->operandStackData() + NewTop;
  JC->Locals = M->currentLocalsData();
  JC->ExitPayload = Callee;
  return Expect != InvalidMethod && Callee != Expect ? 2 : 0;
}

static uint64_t jtcJitRet(JitContext *JC, uint64_t HasValue,
                          uint64_t ExpectMethod, uint64_t ExpectPc,
                          uint64_t Slack) {
  Machine *M = JC->Mach;
  size_t Top = static_cast<size_t>(JC->StackTop - M->operandStackData());
  M->resizeOperandStack(Top);
  Machine::PopInfo Info = M->popFrame(HasValue != 0);
  if (Info.BottomFrame) {
    JC->StackTop = M->operandStackData() + M->operandStackSize();
    return 3;
  }
  size_t NewTop = M->operandStackSize();
  M->resizeOperandStack(NewTop + Slack);
  JC->StackTop = M->operandStackData() + NewTop;
  JC->Locals = M->currentLocalsData();
  JC->ExitPayload = Info.ReturnPc;
  return ExpectMethod != InvalidMethod &&
                 (M->currentMethodId() != ExpectMethod ||
                  Info.ReturnPc != ExpectPc)
             ? 2
             : 0;
}

} // extern "C"

//===----------------------------------------------------------------------===//
// CodeArena
//===----------------------------------------------------------------------===//

CodeArena::~CodeArena() {
#ifdef JTC_HAVE_MMAP
  for (Chunk &C : Chunks)
    munmap(C.Base, C.Size);
#endif
}

const void *CodeArena::install(const std::vector<uint8_t> &Code) {
#ifdef JTC_HAVE_MMAP
  if (Code.empty())
    return nullptr;
  Chunk *C = Chunks.empty() ? nullptr : &Chunks.back();
  if (!C || C->Size - C->Used < Code.size()) {
    const size_t Page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    size_t Size = ((Code.size() + Page - 1) / Page) * Page;
    if (Size < (64u << 10))
      Size = 64u << 10;
    void *Base = mmap(nullptr, Size, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (Base == MAP_FAILED)
      return nullptr;
    Chunks.push_back({static_cast<uint8_t *>(Base), Size, 0});
    C = &Chunks.back();
  } else {
    if (mprotect(C->Base, C->Size, PROT_READ | PROT_WRITE) != 0)
      return nullptr;
  }
  uint8_t *At = C->Base + C->Used;
  std::memcpy(At, Code.data(), Code.size());
  C->Used += Code.size();
  if (mprotect(C->Base, C->Size, PROT_READ | PROT_EXEC) != 0)
    return nullptr;
  return At;
#else
  (void)Code;
  return nullptr;
#endif
}

//===----------------------------------------------------------------------===//
// TraceCompiler: TraceIR -> machine code + exit records
//===----------------------------------------------------------------------===//

namespace {

/// Signed-compare condition for a branch opcode.
static Cond condFor(Opcode Op) {
  switch (Op) {
  case Opcode::IfEq:
  case Opcode::IfIcmpEq:
    return Cond::Eq;
  case Opcode::IfNe:
  case Opcode::IfIcmpNe:
    return Cond::Ne;
  case Opcode::IfLt:
  case Opcode::IfIcmpLt:
    return Cond::Lt;
  case Opcode::IfGe:
  case Opcode::IfIcmpGe:
    return Cond::Ge;
  case Opcode::IfGt:
  case Opcode::IfIcmpGt:
    return Cond::Gt;
  case Opcode::IfLe:
  case Opcode::IfIcmpLe:
    return Cond::Le;
  default:
    assert(false && "not a branch opcode");
    return Cond::Eq;
  }
}

static bool isIcmp(Opcode Op) {
  return Op >= Opcode::IfIcmpEq && Op <= Opcode::IfIcmpLe;
}

class TraceCompiler {
public:
  TraceCompiler(const TraceIR &IR, const PreparedModule &PM)
      : IR(IR), PM(PM) {}

  /// Emits the whole trace; false on an op the templates cannot express
  /// (cannot happen for IR produced by lowerTrace, but kept as a safety
  /// net rather than an assert in release builds).
  bool emit();

  const std::vector<uint8_t> &code() const { return E.code(); }
  std::vector<ExitRecord> takeExits() { return std::move(Exits); }

private:
  // Exit-record plumbing: templates jump to per-record stubs emitted
  // after the body; each stub stores its record index and joins the
  // common epilogue.
  uint32_t addExit(const ExitRecord &R) {
    Exits.push_back(R);
    // Every exit reached from this point in the template has executed
    // every elided op emitted so far (they are straight-line), so the
    // prefix count is exact per exit.
    Exits.back().ChecksElided = ElidedSoFar;
    return static_cast<uint32_t>(Exits.size() - 1);
  }
  /// Instructions executed once \p Op (at its source position) has: full
  /// blocks before it, plus the partial block through the op itself.
  uint64_t instrsThrough(const IrOp &Op) const {
    const BasicBlock &BB = PM.block(IR.Blocks[Op.SrcBlockIndex]);
    return IR.InstrPrefix[Op.SrcBlockIndex] + (Op.SrcPc - BB.StartPc + 1);
  }
  /// An exit record positioned at \p Op, with interpreter-exact counts.
  uint32_t exitAt(const IrOp &Op, ExitRecord::Kind K) {
    ExitRecord R;
    R.K = K;
    R.BlocksRun = Op.SrcBlockIndex + 1;
    R.Instructions = instrsThrough(Op);
    return addExit(R);
  }
  uint32_t trapExit(const IrOp &Op, TrapKind Set) {
    uint32_t Idx = exitAt(Op, ExitRecord::Kind::Trap);
    Exits[Idx].TrapToSet = Set;
    return Idx;
  }
  void jumpToExit(size_t Fixup, uint32_t ExitIdx) {
    ExitFixups.push_back({Fixup, ExitIdx});
  }

  void prologue();
  void emitOp(const IrOp &Op);
  void emitGuard(const IrOp &Op);
  void emitFrameOp(const IrOp &Op);
  void emitDivRem(const IrOp &Op, bool Rem);
  void emitCompletion();
  void emitStubsAndEpilogue();

  // Template building blocks.
  void pushRax() {
    E.movMR(TopReg, 0, Reg::Rax);
    E.addRI(TopReg, 8);
  }
  void popRax() {
    E.subRI(TopReg, 8);
    E.movRM(Reg::Rax, TopReg, 0);
  }
  void helperCall(const void *Fn) {
    E.movRI(Reg::Rax, static_cast<int64_t>(reinterpret_cast<uintptr_t>(Fn)));
    E.callR(Reg::Rax);
  }
  /// test rdx, rdx; jnz <trap stub> -- for helpers returning
  /// JitHelperResult.
  void helperTrapCheckRdx(const IrOp &Op) {
    E.testRR(Reg::Rdx, Reg::Rdx);
    jumpToExit(E.jcc(Cond::Ne), trapExit(Op, TrapKind::None));
  }
  /// test rax, rax; jnz <trap stub> -- for helpers returning a bare trap
  /// flag.
  void helperTrapCheckRax(const IrOp &Op) {
    E.testRR(Reg::Rax, Reg::Rax);
    jumpToExit(E.jcc(Cond::Ne), trapExit(Op, TrapKind::None));
  }

  const TraceIR &IR;
  const PreparedModule &PM;
  X64Emitter E;
  std::vector<ExitRecord> Exits;
  std::vector<std::pair<size_t, uint32_t>> ExitFixups;
  /// Checks skipped by the elided ops emitted so far; bumped *before* an
  /// elided op's templates (so its own residual trap exit counts it,
  /// matching the stepper, which counts the elision before the bounds
  /// check can trap).
  uint64_t ElidedSoFar = 0;
  bool Failed = false;
};

void TraceCompiler::prologue() {
  E.pushR(Reg::Rbx);
  E.pushR(Reg::R13);
  E.pushR(Reg::R14);
  E.pushR(Reg::R15);
  // Four pushes put rsp back at 16-byte alignment minus the return
  // address; one more qword keeps helper call sites ABI-aligned.
  E.subRI(Reg::Rsp, 8);
  E.movRR(CtxReg, Reg::Rdi);
  E.movRM(MachReg, CtxReg, CtxMach);
  E.movRM(LocalsReg, CtxReg, CtxLocals);
  E.movRM(TopReg, CtxReg, CtxTop);
}

void TraceCompiler::emitGuard(const IrOp &Op) {
  if (isIcmp(Op.I.Op)) {
    E.movRM(Reg::Rcx, TopReg, -8);  // B
    E.movRM(Reg::Rax, TopReg, -16); // A
    E.subRI(TopReg, 16);
    E.cmpRR(Reg::Rax, Reg::Rcx);
  } else {
    E.subRI(TopReg, 8);
    E.movRM(Reg::Rax, TopReg, 0);
    E.cmpRI(Reg::Rax, 0);
  }
  // The guard asserts the recorded direction; exit when the branch goes
  // the other way.
  Cond C = condFor(Op.I.Op);
  Cond ExitWhen = Op.GuardTaken ? negate(C) : C;

  uint32_t Idx = exitAt(Op, ExitRecord::Kind::Guard);
  Exits[Idx].Next = Op.Resume;
  jumpToExit(E.jcc(ExitWhen), Idx);
}

void TraceCompiler::emitFrameOp(const IrOp &Op) {
  // Publish the live top: the helper works on the Machine's real stack
  // state, not the over-extended template view.
  E.movMR(CtxReg, CtxTop, TopReg);
  E.movRR(Reg::Rdi, CtxReg);
  switch (Op.K) {
  case IrOp::Kind::CallStatic:
    E.movRI(Reg::Rsi, Op.Callee);
    E.movRI(Reg::Rdx, Op.ReturnPc);
    E.movRI(Reg::Rcx, IR.MaxPush);
    helperCall(reinterpret_cast<const void *>(&jtcJitCallStatic));
    break;
  case IrOp::Kind::CallVirtual:
    E.movRI(Reg::Rsi, Op.I.A); // vtable slot
    E.movRI(Reg::Rdx, Op.ReturnPc);
    E.movRI(Reg::Rcx, Op.Callee); // expected callee (InvalidMethod: none)
    E.movRI(Reg::R8, IR.MaxPush);
    helperCall(reinterpret_cast<const void *>(&jtcJitCallVirtual));
    break;
  default:
    assert(Op.K == IrOp::Kind::Ret && "not a frame op");
    E.movRI(Reg::Rsi, Op.HasValue ? 1 : 0);
    E.movRI(Reg::Rdx, Op.ExpectMethod);
    E.movRI(Reg::Rcx, Op.ExpectPc);
    E.movRI(Reg::R8, IR.MaxPush);
    helperCall(reinterpret_cast<const void *>(&jtcJitRet));
    break;
  }
  // The frame op moved the frame and may have reallocated the arenas;
  // re-derive the pinned pointers before dispatching on the return code
  // (0 continue, 1 trap, 2 diverge, 3 finished).
  E.movRM(LocalsReg, CtxReg, CtxLocals);
  E.movRM(TopReg, CtxReg, CtxTop);
  if (Op.K == IrOp::Kind::Ret) {
    E.cmpRI(Reg::Rax, 3);
    jumpToExit(E.jcc(Cond::Eq), exitAt(Op, ExitRecord::Kind::Finished));
    if (Op.ExpectMethod != InvalidMethod) {
      E.cmpRI(Reg::Rax, 2);
      jumpToExit(E.jcc(Cond::Eq), exitAt(Op, ExitRecord::Kind::DivergeRet));
    }
  } else {
    E.cmpRI(Reg::Rax, 1);
    jumpToExit(E.jcc(Cond::Eq), trapExit(Op, TrapKind::None));
    if (Op.K == IrOp::Kind::CallVirtual && Op.Callee != InvalidMethod) {
      E.cmpRI(Reg::Rax, 2);
      jumpToExit(E.jcc(Cond::Eq), exitAt(Op, ExitRecord::Kind::DivergeCallee));
    }
  }
}

void TraceCompiler::emitDivRem(const IrOp &Op, bool Rem) {
  E.movRM(Reg::Rcx, TopReg, -8);  // B (divisor)
  E.movRM(Reg::Rax, TopReg, -16); // A (dividend)
  E.subRI(TopReg, 8);
  E.testRR(Reg::Rcx, Reg::Rcx);
  jumpToExit(E.jcc(Cond::Eq), trapExit(Op, TrapKind::DivideByZero));
  // INT64_MIN / -1 is defined as (INT64_MIN, 0) instead of hardware #DE.
  E.cmpRI(Reg::Rcx, -1);
  size_t NotMinus1 = E.jcc(Cond::Ne);
  E.movRI(Reg::Rdx, std::numeric_limits<int64_t>::min());
  E.cmpRR(Reg::Rax, Reg::Rdx);
  size_t NotMin = E.jcc(Cond::Ne);
  if (Rem)
    E.movRI(Reg::Rax, 0);
  size_t Special = E.jmp();
  E.bind(NotMinus1);
  E.bind(NotMin);
  E.cqo();
  E.idivR(Reg::Rcx);
  if (Rem)
    E.movRR(Reg::Rax, Reg::Rdx);
  E.bind(Special);
  E.movMR(TopReg, -8, Reg::Rax);
}

void TraceCompiler::emitOp(const IrOp &Op) {
  switch (Op.K) {
  case IrOp::Kind::Guard:
    emitGuard(Op);
    return;
  case IrOp::Kind::CallStatic:
  case IrOp::Kind::CallVirtual:
  case IrOp::Kind::Ret:
    emitFrameOp(Op);
    return;
  case IrOp::Kind::Instr:
    break;
  }

  const Instruction &I = Op.I;
  const int32_t LocalOff = I.A * 8; // for the local-slot ops
  switch (I.Op) {
  case Opcode::Nop:
    break;
  case Opcode::Iconst:
    E.movMI32(TopReg, 0, I.A);
    E.addRI(TopReg, 8);
    break;
  case Opcode::Iload:
    E.movRM(Reg::Rax, LocalsReg, LocalOff);
    pushRax();
    break;
  case Opcode::Istore:
    popRax();
    E.movMR(LocalsReg, LocalOff, Reg::Rax);
    break;
  case Opcode::Iinc:
    E.movRM(Reg::Rax, LocalsReg, LocalOff);
    E.addRI(Reg::Rax, I.B);
    E.movMR(LocalsReg, LocalOff, Reg::Rax);
    break;
  case Opcode::Pop:
    E.subRI(TopReg, 8);
    break;
  case Opcode::Dup:
    E.movRM(Reg::Rax, TopReg, -8);
    pushRax();
    break;
  case Opcode::Swap:
    E.movRM(Reg::Rax, TopReg, -8);
    E.movRM(Reg::Rcx, TopReg, -16);
    E.movMR(TopReg, -8, Reg::Rcx);
    E.movMR(TopReg, -16, Reg::Rax);
    break;

  case Opcode::Iadd:
  case Opcode::Isub:
  case Opcode::Imul:
  case Opcode::Iand:
  case Opcode::Ior:
  case Opcode::Ixor:
    E.movRM(Reg::Rax, TopReg, -16); // A
    switch (I.Op) {
    case Opcode::Iadd:
      E.addRM(Reg::Rax, TopReg, -8);
      break;
    case Opcode::Isub:
      E.subRM(Reg::Rax, TopReg, -8);
      break;
    case Opcode::Imul:
      E.imulRM(Reg::Rax, TopReg, -8);
      break;
    case Opcode::Iand:
      E.andRM(Reg::Rax, TopReg, -8);
      break;
    case Opcode::Ior:
      E.orRM(Reg::Rax, TopReg, -8);
      break;
    default:
      E.xorRM(Reg::Rax, TopReg, -8);
      break;
    }
    E.subRI(TopReg, 8);
    E.movMR(TopReg, -8, Reg::Rax);
    break;

  case Opcode::Idiv:
    emitDivRem(Op, /*Rem=*/false);
    break;
  case Opcode::Irem:
    emitDivRem(Op, /*Rem=*/true);
    break;

  case Opcode::Ineg:
    E.movRM(Reg::Rax, TopReg, -8);
    E.negR(Reg::Rax);
    E.movMR(TopReg, -8, Reg::Rax);
    break;

  case Opcode::Ishl:
  case Opcode::Ishr:
  case Opcode::Iushr:
    // Hardware masks cl to 63 in 64-bit mode, which is exactly the
    // interpreter's `B & 63`.
    E.movRM(Reg::Rcx, TopReg, -8);  // count
    E.movRM(Reg::Rax, TopReg, -16); // value
    E.subRI(TopReg, 8);
    if (I.Op == Opcode::Ishl)
      E.shlCl(Reg::Rax);
    else if (I.Op == Opcode::Iushr)
      E.shrCl(Reg::Rax);
    else
      E.sarCl(Reg::Rax);
    E.movMR(TopReg, -8, Reg::Rax);
    break;

  case Opcode::Iaload:
    E.movRR(Reg::Rdi, MachReg);
    E.movRM(Reg::Rdx, TopReg, -8);  // Idx
    E.movRM(Reg::Rsi, TopReg, -16); // Ref
    E.subRI(TopReg, 16);
    if (Op.Elide == IrOp::ElideKind::Full) {
      ElidedSoFar += 2;
      helperCall(reinterpret_cast<const void *>(&jtcJitIaloadFast));
    } else if (Op.Elide == IrOp::ElideKind::NullOnly) {
      ElidedSoFar += 1;
      helperCall(reinterpret_cast<const void *>(&jtcJitIaloadNoNull));
      helperTrapCheckRdx(Op);
    } else {
      helperCall(reinterpret_cast<const void *>(&jtcJitIaload));
      helperTrapCheckRdx(Op);
    }
    pushRax();
    break;
  case Opcode::Iastore:
    E.movRR(Reg::Rdi, MachReg);
    E.movRM(Reg::Rcx, TopReg, -8);  // Value
    E.movRM(Reg::Rdx, TopReg, -16); // Idx
    E.movRM(Reg::Rsi, TopReg, -24); // Ref
    E.subRI(TopReg, 24);
    if (Op.Elide == IrOp::ElideKind::Full) {
      ElidedSoFar += 2;
      helperCall(reinterpret_cast<const void *>(&jtcJitIastoreFast));
    } else if (Op.Elide == IrOp::ElideKind::NullOnly) {
      ElidedSoFar += 1;
      helperCall(reinterpret_cast<const void *>(&jtcJitIastoreNoNull));
      helperTrapCheckRax(Op);
    } else {
      helperCall(reinterpret_cast<const void *>(&jtcJitIastore));
      helperTrapCheckRax(Op);
    }
    break;
  case Opcode::ArrayLength:
    E.movRR(Reg::Rdi, MachReg);
    E.movRM(Reg::Rsi, TopReg, -8); // Ref
    E.subRI(TopReg, 8);
    if (Op.Elide != IrOp::ElideKind::None) {
      // The liveness/class check is ArrayLength's only check, so both
      // elision kinds skip everything (weight 1, like the stepper).
      ElidedSoFar += 1;
      helperCall(reinterpret_cast<const void *>(&jtcJitArrayLengthFast));
    } else {
      helperCall(reinterpret_cast<const void *>(&jtcJitArrayLength));
      helperTrapCheckRdx(Op);
    }
    pushRax();
    break;
  case Opcode::GetField:
    E.movRR(Reg::Rdi, MachReg);
    E.movRM(Reg::Rsi, TopReg, -8); // Ref
    E.movRI(Reg::Rdx, I.A);        // Slot
    E.subRI(TopReg, 8);
    if (Op.Elide == IrOp::ElideKind::Full) {
      ElidedSoFar += 2;
      helperCall(reinterpret_cast<const void *>(&jtcJitGetFieldFast));
    } else if (Op.Elide == IrOp::ElideKind::NullOnly) {
      ElidedSoFar += 1;
      helperCall(reinterpret_cast<const void *>(&jtcJitGetFieldNoNull));
      helperTrapCheckRdx(Op);
    } else {
      helperCall(reinterpret_cast<const void *>(&jtcJitGetField));
      helperTrapCheckRdx(Op);
    }
    pushRax();
    break;
  case Opcode::PutField:
    E.movRR(Reg::Rdi, MachReg);
    E.movRM(Reg::Rcx, TopReg, -8);  // Value
    E.movRM(Reg::Rsi, TopReg, -16); // Ref
    E.movRI(Reg::Rdx, I.A);         // Slot
    E.subRI(TopReg, 16);
    if (Op.Elide == IrOp::ElideKind::Full) {
      ElidedSoFar += 2;
      helperCall(reinterpret_cast<const void *>(&jtcJitPutFieldFast));
    } else if (Op.Elide == IrOp::ElideKind::NullOnly) {
      ElidedSoFar += 1;
      helperCall(reinterpret_cast<const void *>(&jtcJitPutFieldNoNull));
      helperTrapCheckRax(Op);
    } else {
      helperCall(reinterpret_cast<const void *>(&jtcJitPutField));
      helperTrapCheckRax(Op);
    }
    break;
  case Opcode::New:
    E.movRR(Reg::Rdi, MachReg);
    E.movRI(Reg::Rsi, I.A); // ClassId
    helperCall(reinterpret_cast<const void *>(&jtcJitNew));
    helperTrapCheckRdx(Op);
    pushRax();
    break;
  case Opcode::NewArray:
    E.movRR(Reg::Rdi, MachReg);
    E.movRM(Reg::Rsi, TopReg, -8); // Len
    E.subRI(TopReg, 8);
    helperCall(reinterpret_cast<const void *>(&jtcJitNewArray));
    helperTrapCheckRdx(Op);
    pushRax();
    break;
  case Opcode::Iprint:
    E.movRR(Reg::Rdi, MachReg);
    E.movRM(Reg::Rsi, TopReg, -8);
    E.subRI(TopReg, 8);
    helperCall(reinterpret_cast<const void *>(&jtcJitIprint));
    break;

  default:
    assert(false && "op survived lowering but has no template");
    Failed = true;
    break;
  }
}

void TraceCompiler::emitCompletion() {
  // How the final block's terminator selects the successor. All counts
  // are the full-trace counts; only the successor differs. When the final
  // op was a frame op, the op itself already executed (emitFrameOp) and
  // the successor is dynamic -- the exit record defers to the payload the
  // helper recorded.
  ExitRecord Done;
  Done.K = ExitRecord::Kind::Complete;
  Done.BlocksRun = static_cast<uint32_t>(IR.Blocks.size());
  Done.Instructions = IR.InstrCount;

  if (IR.Complete == TraceIR::CompleteKind::Static) {
    Done.Next = IR.NextFall;
    jumpToExit(E.jmp(), addExit(Done));
    return;
  }
  if (IR.Complete == TraceIR::CompleteKind::Callee) {
    Done.K = ExitRecord::Kind::CompleteCallee;
    jumpToExit(E.jmp(), addExit(Done));
    return;
  }
  if (IR.Complete == TraceIR::CompleteKind::Return) {
    Done.K = ExitRecord::Kind::CompleteRet;
    jumpToExit(E.jmp(), addExit(Done));
    return;
  }

  if (isIcmp(IR.FinalTerm.Op)) {
    E.movRM(Reg::Rcx, TopReg, -8);
    E.movRM(Reg::Rax, TopReg, -16);
    E.subRI(TopReg, 16);
    E.cmpRR(Reg::Rax, Reg::Rcx);
  } else {
    E.subRI(TopReg, 8);
    E.movRM(Reg::Rax, TopReg, 0);
    E.cmpRI(Reg::Rax, 0);
  }
  ExitRecord Taken = Done;
  Taken.Next = IR.NextTaken;
  jumpToExit(E.jcc(condFor(IR.FinalTerm.Op)), addExit(Taken));
  Done.Next = IR.NextFall;
  jumpToExit(E.jmp(), addExit(Done));
}

void TraceCompiler::emitStubsAndEpilogue() {
  // One stub per exit record: store the record index, join the epilogue.
  std::vector<size_t> StubAt(Exits.size());
  std::vector<size_t> ToEpilogue;
  ToEpilogue.reserve(Exits.size());
  for (size_t K = 0; K < Exits.size(); ++K) {
    StubAt[K] = E.size();
    E.movMI32(CtxReg, CtxExit, static_cast<int32_t>(K));
    ToEpilogue.push_back(E.jmp());
  }
  size_t Epilogue = E.size();
  for (size_t Fix : ToEpilogue)
    E.patchRel32(Fix, Epilogue);
  for (const auto &[Fix, ExitIdx] : ExitFixups)
    E.patchRel32(Fix, StubAt[ExitIdx]);

  E.movMR(CtxReg, CtxTop, TopReg);
  E.addRI(Reg::Rsp, 8);
  E.popR(Reg::R15);
  E.popR(Reg::R14);
  E.popR(Reg::R13);
  E.popR(Reg::Rbx);
  E.ret();
}

bool TraceCompiler::emit() {
  prologue();
  for (const IrOp &Op : IR.Ops) {
    emitOp(Op);
    if (Failed)
      return false;
  }
  emitCompletion();
  emitStubsAndEpilogue();
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// JitBackend
//===----------------------------------------------------------------------===//

JitBackend::JitBackend(const PreparedModule &PM, const BackendConfig &Config)
    : PM(PM), Config(Config) {}

JitBackend::~JitBackend() = default;

CompileFallback JitBackend::tryCompile(const Trace &T, CompiledTrace &Out) {
  if (Config.SimulateUnsupportedHost || !jitSupportedHost())
    return CompileFallback::HostUnsupported;

  if (!Facts)
    Facts = std::make_unique<analysis::ModuleAnalysis>(
        analysis::ModuleAnalysis::compute(PM.module()));

  LowerResult L = lowerTrace(PM, T, Facts.get());
  if (!L.ok())
    return L.Why;

  TraceCompiler TC(L.IR, PM);
  if (!TC.emit())
    return CompileFallback::NoTemplate;

  const void *Entry = Arena.install(TC.code());
  if (!Entry)
    return CompileFallback::CodeSpace;

  Out.Fn = reinterpret_cast<TraceFn>(reinterpret_cast<uintptr_t>(Entry));
  Out.Exits = TC.takeExits();
  Out.MaxPush = L.IR.MaxPush;
  Out.InstrCount = L.IR.InstrCount;
  Stats.CodeBytes += TC.code().size();
  JTC_RECORD_EVENT(Telem, EventKind::TraceCompiled, T.Id,
                   static_cast<uint32_t>(TC.code().size()));
  return CompileFallback::None;
}

const CompiledTrace *JitBackend::compiled(const Trace &T) {
  auto It = Cache.find(T.Id);
  if (It != Cache.end() && It->second.Blocks != T.Blocks) {
    // The cache reused this trace id for a different block sequence; the
    // old code is dead.
    Cache.erase(It);
    It = Cache.end();
  }
  if (It != Cache.end())
    return &It->second;
  if (T.Completed < Config.JitPromoteAfter)
    return nullptr; // not hot yet; keep interpreting

  CompiledTrace C;
  C.Blocks = T.Blocks;
  CompileFallback Why = tryCompile(T, C);
  if (Why != CompileFallback::None) {
    C.Fn = nullptr;
    ++Stats.CompileFallbacks;
    ++Stats.FallbacksByReason[static_cast<unsigned>(Why)];
    JTC_RECORD_EVENT(Telem, EventKind::TraceCompileFallback, T.Id,
                     static_cast<uint32_t>(Why));
  } else {
    ++Stats.TracesCompiled;
  }
  return &Cache.emplace(T.Id, std::move(C)).first->second;
}

TraceRunResult JitBackend::run(const Trace &T, TraceRunContext &Ctx) {
  const CompiledTrace *C = compiled(T);
  // Delegate to block-stepping when the trace has no native code (yet),
  // or when the session budget could cut the run mid-trace -- the budget
  // check is block-granular, which native code does not replicate. A
  // budget the whole trace exactly fits is safe: TraceVM applies the
  // live loop's post-block checks during replay.
  if (!C || !C->Fn || T.InstrCount > Ctx.RemainingBudget) {
    ++Stats.InterpDispatches;
    TraceRunResult R = stepTrace(T, Ctx);
    Stats.MemChecksElided += R.ChecksElided;
    return R;
  }

  ++Stats.CompiledDispatches;
  Machine &M = Ctx.Mach;
  const size_t Top = M.operandStackSize();
  // Pre-extend the operand arena by the trace's maximum stack growth so
  // template code pushes with raw stores; the base pointer is taken
  // *after* the resize (only the frame helpers move the arena, and they
  // republish the pointers through the context).
  M.resizeOperandStack(Top + C->MaxPush);
  int64_t *Base = M.operandStackData();

  JitContext JC;
  JC.Mach = &M;
  JC.Locals = M.currentLocalsData();
  JC.StackTop = Base + Top;
  JC.ExitIndex = 0;
  C->Fn(&JC);

  // JC.StackTop points into the *current* allocation (frame helpers may
  // have reallocated the arena mid-run).
  int64_t *Cur = M.operandStackData();
  assert(JC.StackTop >= Cur && JC.StackTop <= Cur + M.operandStackSize() &&
         "native code corrupted the operand stack top");
  M.resizeOperandStack(static_cast<size_t>(JC.StackTop - Cur));

  assert(JC.ExitIndex < C->Exits.size() && "bad exit index");
  const ExitRecord &X = C->Exits[JC.ExitIndex];
  Ctx.Stepper.creditInstructions(X.Instructions);
  Ctx.Stepper.creditChecksElided(X.ChecksElided);
  Stats.MemChecksElided += X.ChecksElided;

  TraceRunResult R;
  R.BlocksRun = X.BlocksRun;
  R.Instructions = X.Instructions;
  R.ChecksElided = X.ChecksElided;
  switch (X.K) {
  case ExitRecord::Kind::Complete:
    R.End = TraceRunEnd::Completed;
    R.NextBlock = X.Next;
    break;
  case ExitRecord::Kind::Guard:
    R.End = TraceRunEnd::Diverged;
    R.NextBlock = X.Next;
    break;
  case ExitRecord::Kind::CompleteCallee:
  case ExitRecord::Kind::DivergeCallee:
    // The run ended right after a virtual call; the successor is the
    // entry block of the callee the helper resolved.
    R.End = X.K == ExitRecord::Kind::CompleteCallee ? TraceRunEnd::Completed
                                                    : TraceRunEnd::Diverged;
    R.NextBlock =
        Ctx.PM.methodEntryBlock(static_cast<uint32_t>(JC.ExitPayload));
    break;
  case ExitRecord::Kind::CompleteRet:
  case ExitRecord::Kind::DivergeRet:
    // The run ended right after a return; the machine is back in the
    // caller and the successor is the block at the recorded return pc.
    R.End = X.K == ExitRecord::Kind::CompleteRet ? TraceRunEnd::Completed
                                                 : TraceRunEnd::Diverged;
    R.NextBlock = Ctx.PM.blockStartingAt(
        M.currentMethodId(), static_cast<uint32_t>(JC.ExitPayload));
    break;
  case ExitRecord::Kind::Finished:
    R.End = TraceRunEnd::Finished;
    break;
  case ExitRecord::Kind::Trap:
    R.End = TraceRunEnd::Trapped;
    if (X.TrapToSet != TrapKind::None)
      M.setTrap(X.TrapToSet);
    break;
  }
  return R;
}

} // namespace backend
} // namespace jtc
