//===- backend/X64Emitter.h - Minimal x86-64 instruction emitter -*- C++ -*-===//
///
/// \file
/// Just enough of an x86-64 assembler for the template JIT: 64-bit moves,
/// ALU ops with register or [base+disp] operands, division, shifts,
/// compare-and-branch with rel32 fixups, and indirect calls. Emission is
/// plain byte appending into a std::vector (position-independent except
/// for movabs-materialized helper addresses), so the emitter builds and
/// runs on any host; only *executing* the bytes requires an x86-64
/// machine (see jitSupportedHost()).
///
/// Encoding notes: every instruction here is REX.W-prefixed (64-bit
/// operand size). Memory operands are [base + disp] only -- the template
/// code addresses everything off four pinned callee-saved registers (see
/// JitBackend.h for the register convention), none of which are rsp/r12,
/// so no SIB bytes are needed; r13/rbp bases force a disp8 of zero per
/// the ModRM rules.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BACKEND_X64EMITTER_H
#define JTC_BACKEND_X64EMITTER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jtc {
namespace backend {

/// x86-64 general-purpose registers, hardware numbering.
enum class Reg : uint8_t {
  Rax = 0,
  Rcx = 1,
  Rdx = 2,
  Rbx = 3,
  Rsp = 4,
  Rbp = 5,
  Rsi = 6,
  Rdi = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// Condition codes (the low nibble of the 0F 8x / 9x opcodes).
enum class Cond : uint8_t {
  Eq = 0x4,  ///< ZF (je)
  Ne = 0x5,  ///< !ZF (jne)
  Lt = 0xC,  ///< SF != OF (jl, signed)
  Ge = 0xD,  ///< SF == OF (jge, signed)
  Le = 0xE,  ///< ZF || SF != OF (jle, signed)
  Gt = 0xF,  ///< !ZF && SF == OF (jg, signed)
};

inline Cond negate(Cond C) {
  // Condition codes pair up: cc ^ 1 is the logical negation.
  return static_cast<Cond>(static_cast<uint8_t>(C) ^ 1);
}

/// Appends encoded instructions to an owned byte buffer. Forward jump
/// targets are handled with fixups: jcc()/jmp() return the offset of
/// their rel32 field, patched later with patchRel32().
class X64Emitter {
public:
  const std::vector<uint8_t> &code() const { return Code; }
  size_t size() const { return Code.size(); }

  // -- 64-bit moves -------------------------------------------------------
  void movRR(Reg Dst, Reg Src);              ///< mov Dst, Src
  void movRI(Reg Dst, int64_t Imm);          ///< mov Dst, Imm (movabs if needed)
  void movRM(Reg Dst, Reg Base, int32_t Disp); ///< mov Dst, [Base+Disp]
  void movMR(Reg Base, int32_t Disp, Reg Src); ///< mov [Base+Disp], Src
  /// mov qword [Base+Disp], Imm (sign-extended imm32).
  void movMI32(Reg Base, int32_t Disp, int32_t Imm);

  // -- ALU ----------------------------------------------------------------
  void addRR(Reg Dst, Reg Src);
  void subRR(Reg Dst, Reg Src);
  void andRR(Reg Dst, Reg Src);
  void orRR(Reg Dst, Reg Src);
  void xorRR(Reg Dst, Reg Src);
  void cmpRR(Reg A, Reg B); ///< cmp A, B
  void imulRR(Reg Dst, Reg Src);
  void addRM(Reg Dst, Reg Base, int32_t Disp);
  void subRM(Reg Dst, Reg Base, int32_t Disp);
  void andRM(Reg Dst, Reg Base, int32_t Disp);
  void orRM(Reg Dst, Reg Base, int32_t Disp);
  void xorRM(Reg Dst, Reg Base, int32_t Disp);
  void cmpRM(Reg A, Reg Base, int32_t Disp);
  void imulRM(Reg Dst, Reg Base, int32_t Disp);
  void addRI(Reg Dst, int32_t Imm); ///< add Dst, imm (sign-extended)
  void subRI(Reg Dst, int32_t Imm);
  void cmpRI(Reg A, int32_t Imm);
  void testRR(Reg A, Reg B); ///< test A, B
  void negR(Reg R);          ///< neg R
  void cqo();                ///< sign-extend rax into rdx:rax
  void idivR(Reg Divisor);   ///< signed divide rdx:rax by Divisor
  void shlCl(Reg R);         ///< shl R, cl (count masked to 63 by hardware)
  void shrCl(Reg R);         ///< shr R, cl
  void sarCl(Reg R);         ///< sar R, cl

  // -- control ------------------------------------------------------------
  /// jcc rel32 with a zero displacement; returns the rel32 field offset.
  size_t jcc(Cond C);
  /// jmp rel32 with a zero displacement; returns the rel32 field offset.
  size_t jmp();
  /// Points the rel32 at \p FixupOff to \p Target (a code offset).
  void patchRel32(size_t FixupOff, size_t Target);
  /// Binds a fixup to the current position.
  void bind(size_t FixupOff) { patchRel32(FixupOff, Code.size()); }
  void callR(Reg R); ///< call R
  void pushR(Reg R);
  void popR(Reg R);
  void ret();

private:
  void byte(uint8_t B) { Code.push_back(B); }
  void imm32(int32_t V);
  void imm64(int64_t V);
  void rex(Reg RegOp, Reg RmOp);
  /// ModRM (+ optional SIB/disp) for reg `RegOp`, memory [Base+Disp].
  void modrmMem(Reg RegOp, Reg Base, int32_t Disp);
  void modrmReg(Reg RegOp, Reg RmOp);
  /// REX.W <Op> /r with a register rm operand.
  void aluRR(uint8_t Op, Reg RegOp, Reg RmOp);
  /// REX.W <Op> /r with a memory rm operand.
  void aluRM(uint8_t Op, Reg RegOp, Reg Base, int32_t Disp);
  /// REX.W 81 /Ext id (ALU with sign-extended imm32).
  void aluRI(uint8_t Ext, Reg RmOp, int32_t Imm);

  std::vector<uint8_t> Code;
};

} // namespace backend
} // namespace jtc

#endif // JTC_BACKEND_X64EMITTER_H
