//===- backend/TraceIR.cpp - Lowering traces for backend execution --------===//

#include "backend/TraceIR.h"

#include "analysis/Analysis.h"
#include "bytecode/Opcode.h"
#include "interp/PreparedModule.h"

#include <algorithm>
#include <cassert>

namespace jtc {
namespace backend {

static LowerResult bail(CompileFallback Why) {
  LowerResult R;
  R.Why = Why;
  return R;
}

LowerResult lowerTrace(const PreparedModule &PM, const Trace &T,
                       const analysis::ModuleAnalysis *Facts) {
  assert(!T.Blocks.empty() && "trace has no blocks");

  const Module &M = PM.module();
  const size_t N = T.Blocks.size();

  LowerResult R;
  TraceIR &IR = R.IR;
  IR.Id = T.Id;
  IR.EntryMethod = PM.block(T.Blocks.front()).MethodId;
  IR.Blocks = T.Blocks;

  // Per-block instruction prefix sums: the basis for interpreter-exact
  // instruction accounting at every exit. Jumps and fallthroughs drop out
  // of the op stream below but still count here, exactly as the stepper
  // counts them.
  IR.InstrPrefix.resize(N + 1, 0);
  for (size_t I = 0; I < N; ++I)
    IR.InstrPrefix[I + 1] = IR.InstrPrefix[I] + PM.blockSize(T.Blocks[I]);
  IR.InstrCount = IR.InstrPrefix.back();
  assert(IR.InstrCount == T.InstrCount &&
         "trace instruction count disagrees with block sizes");

  // Operand-stack growth tracking, per frame run (frame ops re-establish
  // the arena slack, so the counter restarts at each call/return).
  int32_t Depth = 0;
  int32_t MaxDepth = 0;

  // Cursor over the trace's check-elision facts, ordered by
  // (BlockIndex, Pc) exactly like the lowering walk. Applied only to the
  // heap opcodes the facts can describe -- anything else is a stale or
  // foreign annotation and is ignored.
  const std::vector<MemElision> &Elisions = T.MemElisions;
  size_t ElideCursor = 0;
  auto applyElide = [&](IrOp &Op) {
    while (ElideCursor < Elisions.size() &&
           (Elisions[ElideCursor].BlockIndex < Op.SrcBlockIndex ||
            (Elisions[ElideCursor].BlockIndex == Op.SrcBlockIndex &&
             Elisions[ElideCursor].Pc < Op.SrcPc)))
      ++ElideCursor;
    if (ElideCursor >= Elisions.size() ||
        Elisions[ElideCursor].BlockIndex != Op.SrcBlockIndex ||
        Elisions[ElideCursor].Pc != Op.SrcPc)
      return;
    switch (Op.I.Op) {
    case Opcode::GetField:
    case Opcode::PutField:
    case Opcode::Iaload:
    case Opcode::Iastore:
    case Opcode::ArrayLength:
      Op.Elide = Elisions[ElideCursor].Kind == MemElision::Full
                     ? IrOp::ElideKind::Full
                     : IrOp::ElideKind::NullOnly;
      break;
    default:
      break;
    }
    ++ElideCursor;
  };

  // Lower block by block, straight off the recorded stream. Every
  // non-final block's recorded successor is verified against what its
  // terminator can actually produce; a mismatch is a corrupted trace
  // (possible only under fault injection), and falling back to the
  // interpreter tier reproduces the divergence behaviour by construction
  // -- compiling through it would run the wrong block's code after a
  // passing guard.
  for (size_t Bi = 0; Bi < N; ++Bi) {
    const BasicBlock &BB = PM.block(T.Blocks[Bi]);
    const Method &Meth = M.method(BB.MethodId);
    const bool FinalB = Bi + 1 == N;
    const BlockId Next = FinalB ? InvalidBlockId : T.Blocks[Bi + 1];

    // Body: everything before the terminator is straight-line (block
    // discovery cuts at the first block-ending opcode).
    assert(BB.StartPc < BB.EndPc && "empty basic block");
    for (uint32_t Pc = BB.StartPc; Pc + 1 < BB.EndPc; ++Pc) {
      const Instruction &I = Meth.Code[Pc];
      assert(opKind(I.Op) == OpKind::Normal && "terminator inside a block");
      IrOp Op;
      Op.K = IrOp::Kind::Instr;
      Op.I = I;
      Op.SrcBlockIndex = static_cast<uint32_t>(Bi);
      Op.SrcPc = Pc;
      assert(opPops(I.Op) >= 0 && opPushes(I.Op) >= 0 &&
             "variable-arity opcode classified Normal");
      applyElide(Op);
      Depth -= opPops(I.Op);
      Depth += opPushes(I.Op);
      MaxDepth = std::max(MaxDepth, Depth);
      IR.Ops.push_back(std::move(Op));
    }

    const uint32_t TermPc = BB.EndPc - 1;
    const Instruction &Term = Meth.Code[TermPc];
    IrOp Op;
    Op.I = Term;
    Op.SrcBlockIndex = static_cast<uint32_t>(Bi);
    Op.SrcPc = TermPc;

    switch (opKind(Term.Op)) {
    case OpKind::Normal: {
      // Fallthrough into the next leader: the terminator is an ordinary
      // instruction; the successor is static.
      Op.K = IrOp::Kind::Instr;
      applyElide(Op);
      Depth -= opPops(Term.Op);
      Depth += opPushes(Term.Op);
      MaxDepth = std::max(MaxDepth, Depth);
      IR.Ops.push_back(std::move(Op));
      BlockId Succ = PM.blockStartingAt(BB.MethodId, BB.EndPc);
      if (FinalB) {
        IR.Complete = TraceIR::CompleteKind::Static;
        IR.NextFall = Succ;
      } else if (Next != Succ) {
        return bail(CompileFallback::TraceShape);
      }
      break;
    }

    case OpKind::Jump: {
      // The jump drops out of the op stream (the block sequence encodes
      // it); it is still in the instruction counts via InstrPrefix.
      BlockId Succ =
          PM.blockStartingAt(BB.MethodId, static_cast<uint32_t>(Term.A));
      if (FinalB) {
        IR.Complete = TraceIR::CompleteKind::Static;
        IR.NextFall = Succ;
      } else if (Next != Succ) {
        return bail(CompileFallback::TraceShape);
      }
      break;
    }

    case OpKind::Branch: {
      BlockId TakenB =
          PM.blockStartingAt(BB.MethodId, static_cast<uint32_t>(Term.A));
      BlockId FallB = PM.blockStartingAt(BB.MethodId, BB.EndPc);
      Depth -= opPops(Term.Op); // asserts a direction: pops, pushes nothing
      if (FinalB) {
        IR.Complete = TraceIR::CompleteKind::Branch;
        IR.FinalTerm = Term;
        IR.NextTaken = TakenB;
        IR.NextFall = FallB;
        break;
      }
      if (TakenB == FallB)
        return bail(CompileFallback::TraceShape); // degenerate: both edges
                                                  // land on Next; a guard
                                                  // cannot discriminate
      Op.K = IrOp::Kind::Guard;
      uint32_t ExitPc;
      if (Next == TakenB) {
        Op.GuardTaken = true;
        Op.Resume = FallB;
        ExitPc = BB.EndPc;
      } else if (Next == FallB) {
        Op.GuardTaken = false;
        Op.Resume = TakenB;
        ExitPc = static_cast<uint32_t>(Term.A);
      } else {
        return bail(CompileFallback::TraceShape);
      }
      // Annotate the exit with validation-grade liveness. Unlike the
      // optimizer's inlined segments, every guard here executes in its
      // block's own real frame, so the method's facts always apply.
      if (Facts) {
        if (const analysis::MethodAnalysis *MA = Facts->method(BB.MethodId)) {
          Op.HasLiveAtExit = true;
          Op.LiveAtExit = MA->Liveness.liveIn(ExitPc);
        }
      }
      IR.Ops.push_back(std::move(Op));
      break;
    }

    case OpKind::Call: {
      Op.ReturnPc = TermPc + 1;
      if (Term.Op == Opcode::InvokeStatic) {
        Op.K = IrOp::Kind::CallStatic;
        Op.Callee = static_cast<uint32_t>(Term.A);
        BlockId Entry = PM.methodEntryBlock(Op.Callee);
        if (FinalB) {
          IR.Complete = TraceIR::CompleteKind::Static;
          IR.NextFall = Entry;
        } else if (Next != Entry) {
          return bail(CompileFallback::TraceShape);
        }
      } else {
        Op.K = IrOp::Kind::CallVirtual;
        if (FinalB) {
          Op.Callee = InvalidMethod; // any resolution completes
          IR.Complete = TraceIR::CompleteKind::Callee;
        } else {
          const BasicBlock &NB = PM.block(Next);
          if (Next != PM.methodEntryBlock(NB.MethodId))
            return bail(CompileFallback::TraceShape);
          Op.Callee = NB.MethodId;
        }
      }
      IR.Ops.push_back(std::move(Op));
      Depth = 0; // new frame run: the helper re-establishes the slack
      break;
    }

    case OpKind::Ret: {
      Op.K = IrOp::Kind::Ret;
      Op.HasValue = Term.Op == Opcode::Ireturn;
      if (FinalB) {
        Op.ExpectMethod = InvalidMethod; // any return site completes
        IR.Complete = TraceIR::CompleteKind::Return;
      } else {
        const BasicBlock &NB = PM.block(Next);
        Op.ExpectMethod = NB.MethodId;
        Op.ExpectPc = NB.StartPc;
      }
      IR.Ops.push_back(std::move(Op));
      Depth = 0; // caller frame run restarts
      break;
    }

    case OpKind::Switch:
      // A tableswitch records no direction in the block sequence that a
      // two-way guard could assert; the interpreter tier handles it.
      return bail(CompileFallback::SwitchGuard);

    case OpKind::End:
      return bail(CompileFallback::HaltInTrace);
    }
  }

  IR.MaxPush = static_cast<uint32_t>(std::max<int32_t>(MaxDepth, 0));
  return R;
}

} // namespace backend
} // namespace jtc
