//===- harness/Experiment.cpp ---------------------------------------------===//

#include "harness/Experiment.h"

#include "bytecode/Verifier.h"
#include "interp/ThreadedInterpreter.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace jtc;

const std::vector<double> &jtc::standardThresholds() {
  static const std::vector<double> Ts = {1.00, 0.99, 0.98, 0.97, 0.95};
  return Ts;
}

const std::vector<uint32_t> &jtc::standardDelays() {
  static const std::vector<uint32_t> Ds = {1, 64, 4096};
  return Ds;
}

VmStats jtc::runWorkload(const WorkloadInfo &W, const VmOptions &Options,
                         uint32_t ScaleOverride) {
  uint32_t Scale = ScaleOverride ? ScaleOverride : W.DefaultScale;
  Module M = W.Build(Scale);
  std::vector<VerifyError> Errors = verifyModule(M);
  if (!Errors.empty()) {
    std::fprintf(stderr, "workload '%s' failed verification:\n%s", W.Name,
                 formatErrors(Errors).c_str());
    std::abort();
  }
  PreparedModule PM(M);
  TraceVM VM(PM, Options);
  RunResult R = VM.run();
  if (R.Status == RunStatus::Trapped) {
    std::fprintf(stderr, "workload '%s' trapped: %s\n", W.Name,
                 trapName(R.Trap));
    std::abort();
  }
  return VM.stats();
}

OverheadSample jtc::measureProfilerOverhead(const WorkloadInfo &W,
                                            uint32_t ScaleOverride,
                                            int Repeats) {
  uint32_t Scale = ScaleOverride ? ScaleOverride : W.DefaultScale;
  Module M = W.Build(Scale);
  PreparedModule PM(M);

  OverheadSample S;
  S.PlainSeconds = 1e100;
  S.ProfiledSeconds = 1e100;

  // The timed interpreter is the direct-threaded engine -- the same
  // substrate class the paper measures against (a fast threaded
  // SableVM); timing the slow reference interpreter instead would
  // understate the relative profiling cost.
  ThreadedProgram TP(PM);
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    // Plain direct-threaded-inlining interpreter: no per-dispatch hook.
    {
      Timer T;
      ThreadedResult R = TP.run();
      double Sec = T.seconds();
      if (Sec < S.PlainSeconds)
        S.PlainSeconds = Sec;
      S.Dispatches = R.BlockDispatches;
      S.Instructions = R.Instructions;
    }
    // Profiled interpreter: the branch correlation graph hook runs at
    // every block dispatch (the paper's Table VI experiment). No trace
    // cache is attached, matching "we modified SableVM to include the
    // profiler code at the end of each basic block".
    {
      ProfilerConfig PC;
      BranchCorrelationGraph Graph(PC);
      Timer T;
      TP.runProfiled(Graph);
      double Sec = T.seconds();
      if (Sec < S.ProfiledSeconds)
        S.ProfiledSeconds = Sec;
    }
  }
  return S;
}

void jtc::writeBenchJson(std::ostream &OS, const std::string &Table,
                         const std::vector<BenchRecord> &Records) {
  JsonWriter W(OS);
  W.beginObject();
  W.field("table", Table);
  W.key("records").beginArray();
  for (const BenchRecord &R : Records) {
    W.beginObject();
    W.field("workload", R.Workload);
    if (R.Threshold > 0)
      W.fieldReal("threshold", R.Threshold);
    if (R.Delay > 0)
      W.fieldUInt("delay", R.Delay);
    if (R.HasStats) {
      W.key("stats").beginObject();
      R.Stats.writeJsonFields(W);
      W.endObject();
    }
    if (R.HasOverhead) {
      W.key("overhead")
          .beginObject()
          .fieldReal("plain_seconds", R.Overhead.PlainSeconds)
          .fieldReal("profiled_seconds", R.Overhead.ProfiledSeconds)
          .fieldUInt("dispatches", R.Overhead.Dispatches)
          .fieldUInt("instructions", R.Overhead.Instructions)
          .fieldReal("overhead_per_million_dispatches",
                     R.Overhead.overheadPerMillionDispatches())
          .endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << "\n";
}

std::string jtc::parseBenchJsonArg(int Argc, char **Argv, const char *Tool) {
  std::string Path;
  ArgParser P;
  P.strOpt("json", &Path);
  if (!P.parse(Argc, Argv)) {
    std::fprintf(stderr, "usage: %s [--json=<file>]\n", Tool);
    std::exit(2);
  }
  return Path;
}

void jtc::maybeWriteBenchJson(const std::string &Path, const std::string &Table,
                              const std::vector<BenchRecord> &Records) {
  if (Path.empty())
    return;
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", Path.c_str());
    std::exit(1);
  }
  writeBenchJson(OS, Table, Records);
  std::fprintf(stderr, "wrote %zu records to %s\n", Records.size(),
               Path.c_str());
}
