//===- harness/Experiment.h - Experiment harness ----------------*- C++ -*-===//
///
/// \file
/// Shared machinery for the benchmark binaries that regenerate the
/// paper's tables: building/verifying/preparing a workload, running it
/// under a TraceVM configuration, the standard parameter sweeps of
/// section 5.2, and the wall-clock profiler-overhead measurement of
/// Tables VI and VII.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_HARNESS_EXPERIMENT_H
#define JTC_HARNESS_EXPERIMENT_H

#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace jtc {

/// Thresholds of Tables I-IV, in the paper's row order.
const std::vector<double> &standardThresholds();

/// Start-state delays of Table V.
const std::vector<uint32_t> &standardDelays();

/// Builds \p W (verifying the module -- aborts on verifier errors, which
/// would be a workload-generator bug), prepares it, runs it under
/// \p Options, and returns the collected statistics. \p ScaleOverride of
/// 0 uses the workload's default scale.
VmStats runWorkload(const WorkloadInfo &W, const VmOptions &Options,
                    uint32_t ScaleOverride = 0);

/// One wall-clock overhead measurement (Table VI): the same block
/// interpreter timed with and without the profiler hook.
struct OverheadSample {
  double PlainSeconds = 0;    ///< Unmodified interpreter.
  double ProfiledSeconds = 0; ///< Interpreter + profiler hook per dispatch.
  uint64_t Dispatches = 0;    ///< Block dispatches per run.
  uint64_t Instructions = 0;

  /// Seconds of profiling overhead per million block dispatches.
  double overheadPerMillionDispatches() const {
    return Dispatches == 0 ? 0.0
                           : (ProfiledSeconds - PlainSeconds) /
                                 (static_cast<double>(Dispatches) / 1e6);
  }
};

/// Times \p Repeats runs of each interpreter flavour over \p W (taking
/// the fastest run of each to suppress scheduling noise). \p ScaleOverride
/// of 0 uses the workload default; the overhead experiments typically
/// scale up for stable timings.
OverheadSample measureProfilerOverhead(const WorkloadInfo &W,
                                       uint32_t ScaleOverride = 0,
                                       int Repeats = 3);

/// One measured cell of a table experiment: a workload run at a
/// particular parameter point, carrying the full statistics block and/or
/// a wall-clock overhead sample. The table binaries accumulate these and
/// emit them with writeBenchJson so the human-readable tables and the
/// machine-readable artifacts come from the same measurements.
struct BenchRecord {
  std::string Workload;
  double Threshold = 0;
  uint32_t Delay = 0;
  bool HasStats = false;
  VmStats Stats;
  bool HasOverhead = false;
  OverheadSample Overhead;

  static BenchRecord forStats(std::string Workload, double Threshold,
                              uint32_t Delay, const VmStats &Stats) {
    BenchRecord R;
    R.Workload = std::move(Workload);
    R.Threshold = Threshold;
    R.Delay = Delay;
    R.HasStats = true;
    R.Stats = Stats;
    return R;
  }
};

/// Writes a bench artifact: {"table": ..., "records": [{"workload", ...,
/// "stats": {...}, "overhead": {...}}]}. Every VmStats field (counters
/// and derived metrics) appears under "stats".
void writeBenchJson(std::ostream &OS, const std::string &Table,
                    const std::vector<BenchRecord> &Records);

/// Command-line front end shared by the table binaries: recognises
/// --json=<file> and returns the path ("" when absent). Any other
/// argument prints usage for \p Tool and exits with status 2.
std::string parseBenchJsonArg(int Argc, char **Argv, const char *Tool);

/// Writes \p Records to \p Path when non-empty (no-op otherwise) and
/// reports the artifact on stderr. Exits non-zero if the file cannot be
/// written.
void maybeWriteBenchJson(const std::string &Path, const std::string &Table,
                         const std::vector<BenchRecord> &Records);

} // namespace jtc

#endif // JTC_HARNESS_EXPERIMENT_H
