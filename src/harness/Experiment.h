//===- harness/Experiment.h - Experiment harness ----------------*- C++ -*-===//
///
/// \file
/// Shared machinery for the benchmark binaries that regenerate the
/// paper's tables: building/verifying/preparing a workload, running it
/// under a TraceVM configuration, the standard parameter sweeps of
/// section 5.2, and the wall-clock profiler-overhead measurement of
/// Tables VI and VII.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_HARNESS_EXPERIMENT_H
#define JTC_HARNESS_EXPERIMENT_H

#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <vector>

namespace jtc {

/// Thresholds of Tables I-IV, in the paper's row order.
const std::vector<double> &standardThresholds();

/// Start-state delays of Table V.
const std::vector<uint32_t> &standardDelays();

/// Builds \p W (verifying the module -- aborts on verifier errors, which
/// would be a workload-generator bug), prepares it, runs it under
/// \p Config, and returns the collected statistics. \p ScaleOverride of 0
/// uses the workload's default scale.
VmStats runWorkload(const WorkloadInfo &W, const VmConfig &Config,
                    uint32_t ScaleOverride = 0);

/// One wall-clock overhead measurement (Table VI): the same block
/// interpreter timed with and without the profiler hook.
struct OverheadSample {
  double PlainSeconds = 0;    ///< Unmodified interpreter.
  double ProfiledSeconds = 0; ///< Interpreter + profiler hook per dispatch.
  uint64_t Dispatches = 0;    ///< Block dispatches per run.
  uint64_t Instructions = 0;

  /// Seconds of profiling overhead per million block dispatches.
  double overheadPerMillionDispatches() const {
    return Dispatches == 0 ? 0.0
                           : (ProfiledSeconds - PlainSeconds) /
                                 (static_cast<double>(Dispatches) / 1e6);
  }
};

/// Times \p Repeats runs of each interpreter flavour over \p W (taking
/// the fastest run of each to suppress scheduling noise). \p ScaleOverride
/// of 0 uses the workload default; the overhead experiments typically
/// scale up for stable timings.
OverheadSample measureProfilerOverhead(const WorkloadInfo &W,
                                       uint32_t ScaleOverride = 0,
                                       int Repeats = 3);

} // namespace jtc

#endif // JTC_HARNESS_EXPERIMENT_H
