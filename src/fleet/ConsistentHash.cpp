//===- fleet/ConsistentHash.cpp -------------------------------------------===//

#include "fleet/ConsistentHash.h"

#include <cstdio>

using namespace jtc;
using namespace jtc::fleet;

uint64_t fleet::ringHash(const std::string &Key) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Key) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

void HashRing::add(uint32_t Node) {
  if (!Members.insert(Node).second)
    return;
  char Point[64];
  for (unsigned V = 0; V < VNodes; ++V) {
    std::snprintf(Point, sizeof(Point), "node-%u#%u", Node, V);
    // A (astronomically unlikely) point collision keeps the incumbent;
    // remove() erases only points it owns, so the ring stays coherent.
    Ring.emplace(ringHash(Point), Node);
  }
}

void HashRing::remove(uint32_t Node) {
  if (Members.erase(Node) == 0)
    return;
  for (auto It = Ring.begin(); It != Ring.end();) {
    if (It->second == Node)
      It = Ring.erase(It);
    else
      ++It;
  }
}

bool HashRing::route(const std::string &Key, uint32_t &Node) const {
  if (Ring.empty())
    return false;
  auto It = Ring.lower_bound(ringHash(Key));
  if (It == Ring.end())
    It = Ring.begin(); // Wrap: the ring is circular.
  Node = It->second;
  return true;
}
