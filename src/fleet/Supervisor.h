//===- fleet/Supervisor.h - Fleet supervisor / router -----------*- C++ -*-===//
///
/// \file
/// The jtc-fleet supervisor: owns every shard's listening socket (bound
/// before the first fork, kept across restarts, passed by fd inheritance
/// so a respawned shard serves the same port), forks shard processes,
/// reaps and restarts them when they crash, and runs the client-facing
/// front-end that routes sessions by consistent hash on the session key.
///
/// Request multiplexing: every client session forwarded upstream gets a
/// fresh supervisor-allocated request id; a pending map keyed by
/// (upstream connection, upstream id) routes the shard's response back
/// to the originating client connection and its original id. Broadcast
/// operations (SubmitProgram, FetchStats, Checkpoint) fan out to every
/// live shard and fan back in -- counters summed, acks counted -- before
/// one reply goes to the client.
///
/// The aggregation tier rides the same machinery: on a timer (or on
/// demand) the supervisor broadcasts Checkpoint, waits for the acks,
/// then merges every shard's .jtcp files module-by-module into
/// <state>/fleet/ -- the directory newly started shards warm-boot from.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FLEET_SUPERVISOR_H
#define JTC_FLEET_SUPERVISOR_H

#include "fleet/ConsistentHash.h"
#include "net/EpollServer.h"
#include "persist/SnapshotMerge.h"

#include <sys/types.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jtc {
namespace fleet {

struct FleetOptions {
  unsigned Shards = 2;
  unsigned Workers = 1;    ///< VmService workers per shard.
  uint16_t ListenPort = 0; ///< Front-end port (0 = kernel-assigned).
  std::string StateDir;    ///< Empty: no checkpoints / aggregation.
  double AggregateIntervalSeconds = 0; ///< 0: only aggregateNow().
  uint64_t MaxQueueDepth = 64;
  double IdleTimeoutSeconds = 0;
  double CheckpointIntervalSeconds = 0;
  std::string ShardBinary; ///< Path to jtc-fleet (re-executed --shard).
  /// Workloads every shard registers: (registry name, scale).
  std::vector<std::pair<std::string, uint32_t>> Workloads;
};

struct FleetStats {
  uint64_t ShardRestarts = 0;
  uint64_t AggregatesMerged = 0; ///< Aggregation rounds completed.
  uint64_t SessionsRouted = 0;
  uint64_t RoutedShardDown = 0; ///< Sessions refused: target shard down.
  persist::MergeReport LastMerge;
};

/// One shard's counters as fetched over the protocol.
struct ShardStatsReport {
  unsigned Shard = 0;
  std::vector<std::pair<std::string, uint64_t>> Counters;
};

class FleetSupervisor : public net::EpollServer::Handler {
public:
  explicit FleetSupervisor(FleetOptions O);
  ~FleetSupervisor() override;

  FleetSupervisor(const FleetSupervisor &) = delete;
  FleetSupervisor &operator=(const FleetSupervisor &) = delete;

  /// Binds every socket, spawns the shards, connects upstream. False
  /// with \p Err on any setup failure.
  bool start(std::string &Err);

  /// Front-end port clients connect to (valid after start()).
  uint16_t frontPort() const { return FrontPort; }

  /// One event-loop round: network traffic, child reaping/restarts,
  /// reconnects, keepalives, the aggregation timer.
  void poll(int TimeoutMs = 50);

  /// poll() until \p Seconds of wall clock pass.
  void runFor(double Seconds);

  /// Synchronous aggregation round: checkpoint every live shard, merge
  /// all shard .jtcp files into the fleet directory. False with \p Err
  /// when checkpointing or merging failed (partial merges keep going;
  /// the first error is reported).
  bool aggregateNow(std::string &Err, double TimeoutSeconds = 30);

  /// Synchronous per-shard counter fetch over the protocol.
  bool fetchStats(std::vector<ShardStatsReport> &Out, std::string &Err,
                  double TimeoutSeconds = 30);

  /// SIGTERMs every shard, waits for exits, closes every socket
  /// (idempotent; the destructor calls it).
  void shutdown();

  const FleetStats &stats() const { return Stats; }
  const net::NetCounters &netCounters() const;
  unsigned numShards() const { return static_cast<unsigned>(Slots.size()); }
  pid_t shardPid(unsigned Shard) const { return Slots[Shard].Pid; }
  bool shardConnected(unsigned Shard) const {
    return Slots[Shard].Conn != 0;
  }

  // EpollServer::Handler:
  void onFrame(uint64_t ConnId, net::Frame F) override;
  void onConnClosed(uint64_t ConnId) override;

private:
  struct ShardSlot {
    int ListenFd = -1;
    uint16_t Port = 0;
    pid_t Pid = -1;
    uint64_t Conn = 0; ///< Upstream ConnId (0 = down / reconnecting).
    unsigned Restarts = 0;
  };

  /// One forwarded request awaiting its upstream response, keyed
  /// externally by (upstream ConnId, upstream request id).
  struct Pending {
    uint64_t ClientConn = 0; ///< 0 = supervisor-internal.
    uint64_t ClientReqId = 0;
    unsigned Shard = 0;
    uint64_t FanIn = 0; ///< Fan-in id (0 = unicast forward).
  };

  /// An in-flight broadcast; replies accumulate until Remaining == 0.
  struct FanIn {
    uint64_t ClientConn = 0; ///< 0 = supervisor-internal (aggregation).
    uint64_t ClientReqId = 0;
    net::MessageType Request = net::MessageType::FetchStats;
    unsigned Remaining = 0;
    uint64_t SavedSum = 0; ///< CheckpointAck files written.
    std::vector<ShardStatsReport> PerShard;
    bool AnyError = false;
    std::string ErrorDetail;
    bool Done = false;
  };

  bool spawnShard(unsigned Shard, std::string &Err);
  void reapChildren();
  void reconnectShards();
  void handleClientFrame(uint64_t ConnId, net::Frame &F);
  void handleUpstreamFrame(unsigned Shard, uint64_t ConnId, net::Frame &F);
  void sendClientError(uint64_t ConnId, uint64_t RequestId,
                       net::RequestErrorCode Code, std::string Detail);
  /// Starts a broadcast of \p Type to every connected shard; returns the
  /// fan-in id, or 0 when no shard is connected.
  uint64_t startFanIn(net::MessageType Type,
                      const std::vector<uint8_t> &Payload,
                      uint64_t ClientConn, uint64_t ClientReqId);
  void finishFanIn(uint64_t Id);
  void failShardPendings(uint64_t ConnId);
  /// Merges every shard's checkpoints into the fleet directory.
  bool mergeAggregates(std::string &Err);
  void maybeAggregate();

  FleetOptions O;
  std::unique_ptr<net::EpollServer> Net;
  int FrontFd = -1;
  uint16_t FrontPort = 0;
  std::vector<ShardSlot> Slots;
  std::map<uint64_t, unsigned> ConnToShard; ///< Upstream conn -> shard.
  HashRing Ring;

  std::map<std::pair<uint64_t, uint64_t>, Pending> Pendings;
  std::map<uint64_t, FanIn> FanIns;
  uint64_t NextUpstreamId = 1;
  uint64_t NextFanInId = 1;

  FleetStats Stats;
  std::chrono::steady_clock::time_point LastAggregate;
  std::chrono::steady_clock::time_point LastKeepalive;
  uint64_t AggregateFanIn = 0; ///< Timer-driven round in flight (or 0).
  bool Started = false;
  bool ShuttingDown = false;
};

} // namespace fleet
} // namespace jtc

#endif // JTC_FLEET_SUPERVISOR_H
