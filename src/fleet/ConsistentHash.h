//===- fleet/ConsistentHash.h - Session-to-shard routing --------*- C++ -*-===//
///
/// \file
/// Consistent-hash ring with virtual nodes, the supervisor's routing
/// function from session key to shard. Consistency is what makes warm
/// profiles stick: a session key always lands on the same shard while
/// membership is stable, so that shard's BCG / trace state keeps
/// absorbing the same traffic, and when a shard leaves (crash) or
/// returns (restart) only the keys on its arcs move -- every other
/// session stays where its profile already lives. Virtual nodes smooth
/// the load split so two shards do not end up owning wildly unequal
/// arcs of the key space.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FLEET_CONSISTENTHASH_H
#define JTC_FLEET_CONSISTENTHASH_H

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace jtc {
namespace fleet {

/// FNV-1a over \p Key, the ring's point hash (stable across processes,
/// unlike std::hash).
uint64_t ringHash(const std::string &Key);

class HashRing {
public:
  /// \p VNodes points per node; more points, smoother balance.
  explicit HashRing(unsigned VNodes = 64) : VNodes(VNodes < 1 ? 1 : VNodes) {}

  /// Adds \p Node (idempotent).
  void add(uint32_t Node);

  /// Removes \p Node (idempotent). Keys on its arcs redistribute to the
  /// clockwise successors; all other keys keep their owner.
  void remove(uint32_t Node);

  bool contains(uint32_t Node) const { return Members.count(Node) != 0; }
  size_t size() const { return Members.size(); }

  /// Owner of \p Key: the first ring point clockwise from hash(Key).
  /// False when the ring is empty.
  bool route(const std::string &Key, uint32_t &Node) const;

private:
  unsigned VNodes;
  std::map<uint64_t, uint32_t> Ring; ///< Point hash -> node.
  std::set<uint32_t> Members;
};

} // namespace fleet
} // namespace jtc

#endif // JTC_FLEET_CONSISTENTHASH_H
