//===- fleet/Shard.cpp ----------------------------------------------------===//

#include "fleet/Shard.h"

#include "bytecode/Verifier.h"
#include "net/EpollServer.h"
#include "server/VmService.h"
#include "telemetry/Event.h"
#include "text/AsmParser.h"

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <optional>

using namespace jtc;
using namespace jtc::fleet;
using namespace jtc::net;

std::string fleet::shardCheckpointDir(const std::string &StateDir,
                                      uint32_t ShardId) {
  return StateDir + "/shard-" + std::to_string(ShardId);
}

std::string fleet::fleetAggregateDir(const std::string &StateDir) {
  return StateDir + "/fleet";
}

namespace {

volatile std::sig_atomic_t ShardStopRequested = 0;

void onShardSignal(int) { ShardStopRequested = 1; }

/// The shard's protocol handler: every callback fires on the poll
/// thread; VmService workers hand completions back through Outbox +
/// wake().
class ShardHandler : public EpollServer::Handler {
public:
  ShardHandler(const ShardOptions &O, VmService &Svc) : O(O), Svc(Svc) {}

  void attach(EpollServer *Server) { Net = Server; }

  uint64_t backpressureRejects() const { return BackpressureRejects; }

  void onFrame(uint64_t ConnId, Frame F) override {
    NetError Err;
    switch (F.Type) {
    case MessageType::Ping:
      Net->send(ConnId, MessageType::Pong, F.RequestId, {});
      return;
    case MessageType::SubmitProgram: {
      SubmitProgramMsg M;
      if (!M.decode(F.Payload, Err))
        return sendError(ConnId, F.RequestId, RequestErrorCode::BadRequest,
                         Err.message());
      std::string ParseErr;
      std::optional<Module> Mod = parseModule(M.Jasm, ParseErr);
      if (!Mod)
        return sendError(ConnId, F.RequestId,
                         RequestErrorCode::ProgramRejected, ParseErr);
      std::vector<VerifyError> Errors = verifyModule(*Mod);
      if (!Errors.empty())
        return sendError(ConnId, F.RequestId,
                         RequestErrorCode::ProgramRejected,
                         Errors.front().Message);
      Svc.registerModule(M.Name, std::move(*Mod), "submitted:" + M.Name);
      Net->send(ConnId, MessageType::SubmitAck, F.RequestId, {});
      return;
    }
    case MessageType::RunSession: {
      RunSessionMsg M;
      if (!M.decode(F.Payload, Err))
        return sendError(ConnId, F.RequestId, RequestErrorCode::BadRequest,
                         Err.message());
      if (ShardStopRequested)
        return sendError(ConnId, F.RequestId, RequestErrorCode::Shutdown,
                         "shard draining");
      uint64_t Depth = Svc.queueDepth();
      if (Depth >= O.MaxQueueDepth) {
        ++BackpressureRejects;
        BackpressureMsg B;
        B.QueueDepth = Depth;
        B.Bound = O.MaxQueueDepth;
        Net->send(ConnId, MessageType::Backpressure, F.RequestId, B.encode());
        return;
      }
      RunRequest R;
      R.Module = M.Module;
      R.MaxInstructions = M.MaxInstructions;
      uint64_t ReqId = F.RequestId;
      Svc.submitAsync(std::move(R),
                      [this, ConnId, ReqId](SessionResult Result) {
                        {
                          std::lock_guard<std::mutex> Lock(OutboxMutex);
                          Outbox.push_back(
                              {ConnId, ReqId, std::move(Result)});
                        }
                        Net->wake();
                      });
      return;
    }
    case MessageType::FetchStats: {
      StatsReplyMsg M;
      fillStats(M);
      Net->send(ConnId, MessageType::StatsReply, F.RequestId, M.encode());
      return;
    }
    case MessageType::Checkpoint: {
      CheckpointAckMsg M;
      M.Saved = Svc.checkpointAll();
      Net->send(ConnId, MessageType::CheckpointAck, F.RequestId, M.encode());
      return;
    }
    default:
      sendError(ConnId, F.RequestId, RequestErrorCode::BadRequest,
                std::string("unexpected ") + messageTypeName(F.Type));
      return;
    }
  }

  void onWake() override {
    std::vector<Retired> Batch;
    {
      std::lock_guard<std::mutex> Lock(OutboxMutex);
      Batch.swap(Outbox);
    }
    for (Retired &R : Batch) {
      if (R.Result.Rejected) {
        sendError(R.ConnId, R.RequestId, RequestErrorCode::UnknownModule,
                  "module '" + R.Result.Module + "' is not registered");
        continue;
      }
      SessionDoneMsg M;
      M.Status = static_cast<uint8_t>(R.Result.Run.Status);
      M.Trap = static_cast<uint8_t>(R.Result.Run.Trap);
      M.WarmStart = R.Result.WarmStart;
      M.Shard = O.ShardId;
      M.BlocksExecuted = R.Result.Stats.BlocksExecuted;
      M.Instructions = R.Result.Run.Instructions;
      M.HeapDigest = R.Result.HeapDigest;
      M.OutputDigest = outputDigest(R.Result.Output);
      M.StatsDigest = R.Result.Stats.digest();
      M.Seconds = R.Result.Seconds;
      Net->send(R.ConnId, MessageType::SessionDone, R.RequestId, M.encode());
    }
  }

private:
  struct Retired {
    uint64_t ConnId;
    uint64_t RequestId;
    SessionResult Result;
  };

  void sendError(uint64_t ConnId, uint64_t RequestId, RequestErrorCode Code,
                 std::string Detail) {
    ErrorMsg M;
    M.Code = static_cast<uint32_t>(Code);
    M.Detail = std::move(Detail);
    Net->send(ConnId, MessageType::Error, RequestId, M.encode());
  }

  void fillStats(StatsReplyMsg &M) {
    ServiceStats S = Svc.stats();
    const NetCounters &N = Net->counters();
    auto Put = [&M](const char *Key, uint64_t V) {
      M.Counters.emplace_back(Key, V);
    };
    Put("submitted", S.Submitted);
    Put("completed", S.Completed);
    Put("rejected", S.Rejected);
    Put("warm-starts", S.WarmStarts);
    Put("cold-starts", S.ColdStarts);
    Put("snapshots-published", S.SnapshotsPublished);
    Put("checkpoints-saved", S.CheckpointsSaved);
    Put("checkpoints-loaded", S.CheckpointsLoaded);
    Put("checkpoint-load-rejects", S.CheckpointLoadRejects);
    Put("queue-depth", Svc.queueDepth());
    Put(eventKindName(EventKind::ConnAccepted), N.ConnsAccepted);
    Put(eventKindName(EventKind::ConnClosed), N.ConnsClosed);
    Put(eventKindName(EventKind::RequestRejectedBackpressure),
        BackpressureRejects);
    Put("frames-in", N.FramesIn);
    Put("frames-out", N.FramesOut);
    Put("protocol-errors", N.ProtocolErrors);
    Put("idle-closed", N.IdleClosed);
  }

  const ShardOptions &O;
  VmService &Svc;
  EpollServer *Net = nullptr;

  std::mutex OutboxMutex;
  std::vector<Retired> Outbox; ///< Guarded by OutboxMutex.

  uint64_t BackpressureRejects = 0; ///< Poll-thread only.
};

} // namespace

int fleet::runShardProcess(const ShardOptions &O) {
  if (O.ListenFd < 0) {
    std::fprintf(stderr, "shard %u: no inherited listen fd\n", O.ShardId);
    return 2;
  }

  ServiceOptions SO;
  SO.workers(O.Workers);
  if (!O.StateDir.empty()) {
    std::string Dir = shardCheckpointDir(O.StateDir, O.ShardId);
    std::error_code Ec;
    std::filesystem::create_directories(Dir, Ec);
    SO.checkpointDir(Dir);
    SO.loadDir(fleetAggregateDir(O.StateDir));
    SO.checkpointIntervalSeconds(O.CheckpointIntervalSeconds);
  }
  VmService Svc(SO);
  for (const auto &[Name, Scale] : O.Workloads) {
    const WorkloadInfo *W = findWorkload(Name);
    if (!W) {
      std::fprintf(stderr, "shard %u: unknown workload '%s'\n", O.ShardId,
                   Name.c_str());
      return 2;
    }
    Svc.registerWorkload(*W, Scale);
  }

  ShardStopRequested = 0;
  std::signal(SIGTERM, onShardSignal);
  std::signal(SIGINT, onShardSignal);
  std::signal(SIGPIPE, SIG_IGN);

  ShardHandler Handler(O, Svc);
  EpollServer::Config Cfg;
  Cfg.IdleTimeoutSeconds = O.IdleTimeoutSeconds;
  EpollServer Net(Cfg, Handler);
  Handler.attach(&Net);
  std::string Err;
  if (!Net.addListener(O.ListenFd, Err)) {
    std::fprintf(stderr, "shard %u: %s\n", O.ShardId, Err.c_str());
    return 2;
  }

  while (!ShardStopRequested)
    Net.poll(/*TimeoutMs=*/100);

  // Graceful drain: retire admitted sessions, write a final checkpoint.
  Svc.shutdown();
  return 0;
}
