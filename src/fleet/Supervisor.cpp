//===- fleet/Supervisor.cpp -----------------------------------------------===//

#include "fleet/Supervisor.h"

#include "fleet/Shard.h"
#include "telemetry/Event.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <sys/wait.h>
#include <unistd.h>

using namespace jtc;
using namespace jtc::fleet;
using namespace jtc::net;

FleetSupervisor::FleetSupervisor(FleetOptions Opts) : O(std::move(Opts)) {
  EpollServer::Config Cfg;
  // The front-end sweeps idle clients; upstream shard connections are
  // connectTo() and exempt by construction.
  Cfg.IdleTimeoutSeconds = O.IdleTimeoutSeconds;
  Net = std::make_unique<EpollServer>(Cfg, *this);
}

FleetSupervisor::~FleetSupervisor() { shutdown(); }

const NetCounters &FleetSupervisor::netCounters() const {
  return Net->counters();
}

bool FleetSupervisor::spawnShard(unsigned Shard, std::string &Err) {
  ShardSlot &S = Slots[Shard];
  std::vector<std::string> Args;
  Args.push_back(O.ShardBinary);
  Args.push_back("--shard");
  Args.push_back("--shard-id=" + std::to_string(Shard));
  Args.push_back("--listen-fd=" + std::to_string(S.ListenFd));
  Args.push_back("--shard-workers=" + std::to_string(O.Workers));
  Args.push_back("--max-queue-depth=" + std::to_string(O.MaxQueueDepth));
  if (!O.StateDir.empty())
    Args.push_back("--state-dir=" + O.StateDir);
  if (O.CheckpointIntervalSeconds > 0)
    Args.push_back("--checkpoint-interval=" +
                   std::to_string(O.CheckpointIntervalSeconds) + "s");
  if (O.IdleTimeoutSeconds > 0)
    Args.push_back("--idle-timeout=" +
                   std::to_string(O.IdleTimeoutSeconds) + "s");
  for (const auto &[Name, Scale] : O.Workloads)
    Args.push_back("--workload=" + Name +
                   (Scale ? ":" + std::to_string(Scale) : std::string()));

  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 1);
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0) {
    Err = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (Pid == 0) {
    // Child: everything except the inherited listen fds is CLOEXEC, so
    // exec starts the shard with a clean table.
    ::execv(O.ShardBinary.c_str(), Argv.data());
    std::fprintf(stderr, "execv %s: %s\n", O.ShardBinary.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  S.Pid = Pid;
  return true;
}

bool FleetSupervisor::start(std::string &Err) {
  if (Started) {
    Err = "already started";
    return false;
  }
  if (O.Shards < 1)
    O.Shards = 1;
  if (O.ShardBinary.empty()) {
    Err = "no shard binary configured";
    return false;
  }
  if (!O.StateDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(fleetAggregateDir(O.StateDir), Ec);
    if (Ec) {
      Err = "create " + fleetAggregateDir(O.StateDir) + ": " + Ec.message();
      return false;
    }
  }

  FrontFd = EpollServer::makeListenSocket(O.ListenPort, FrontPort, Err);
  if (FrontFd < 0)
    return false;
  if (!Net->addListener(FrontFd, Err))
    return false;

  Slots.resize(O.Shards);
  for (unsigned I = 0; I < O.Shards; ++I) {
    ShardSlot &S = Slots[I];
    S.ListenFd = EpollServer::makeListenSocket(0, S.Port, Err);
    if (S.ListenFd < 0)
      return false;
    Ring.add(I);
  }
  for (unsigned I = 0; I < O.Shards; ++I)
    if (!spawnShard(I, Err))
      return false;
  // The sockets are already listening (the kernel queues connects while
  // the shard boots), so upstream connections succeed immediately.
  for (unsigned I = 0; I < O.Shards; ++I) {
    ShardSlot &S = Slots[I];
    S.Conn = Net->connectTo(S.Port, Err);
    if (S.Conn == 0)
      return false;
    ConnToShard[S.Conn] = I;
  }
  LastAggregate = LastKeepalive = std::chrono::steady_clock::now();
  Started = true;
  return true;
}

void FleetSupervisor::reapChildren() {
  for (;;) {
    int Status = 0;
    pid_t Pid = ::waitpid(-1, &Status, WNOHANG);
    if (Pid <= 0)
      return;
    auto It = std::find_if(Slots.begin(), Slots.end(),
                           [Pid](const ShardSlot &S) { return S.Pid == Pid; });
    if (It == Slots.end())
      continue;
    ShardSlot &S = *It;
    unsigned Shard = static_cast<unsigned>(It - Slots.begin());
    S.Pid = -1;
    if (S.Conn) {
      uint64_t Old = S.Conn;
      S.Conn = 0;
      ConnToShard.erase(Old);
      failShardPendings(Old);
      Net->closeConn(Old);
    }
    if (ShuttingDown)
      continue;
    ++S.Restarts;
    ++Stats.ShardRestarts;
    std::string Err;
    if (!spawnShard(Shard, Err))
      std::fprintf(stderr, "fleet: restart shard %u: %s\n", Shard,
                   Err.c_str());
  }
}

void FleetSupervisor::reconnectShards() {
  for (unsigned I = 0; I < Slots.size(); ++I) {
    ShardSlot &S = Slots[I];
    if (S.Pid < 0 || S.Conn != 0)
      continue;
    std::string Err;
    S.Conn = Net->connectTo(S.Port, Err);
    if (S.Conn)
      ConnToShard[S.Conn] = I;
  }
}

void FleetSupervisor::poll(int TimeoutMs) {
  Net->poll(TimeoutMs);
  reapChildren();
  reconnectShards();

  auto Now = std::chrono::steady_clock::now();
  if (O.IdleTimeoutSeconds > 0) {
    // Keep upstream connections warm: the shard side sees us as an
    // accepted (idle-sweepable) connection.
    double Sec = std::chrono::duration<double>(Now - LastKeepalive).count();
    if (Sec > O.IdleTimeoutSeconds / 2) {
      LastKeepalive = Now;
      for (ShardSlot &S : Slots)
        if (S.Conn)
          Net->send(S.Conn, MessageType::Ping, 0, {});
    }
  }
  maybeAggregate();
}

void FleetSupervisor::maybeAggregate() {
  if (O.AggregateIntervalSeconds <= 0 || O.StateDir.empty() ||
      AggregateFanIn != 0 || ShuttingDown)
    return;
  auto Now = std::chrono::steady_clock::now();
  double Sec = std::chrono::duration<double>(Now - LastAggregate).count();
  if (Sec < O.AggregateIntervalSeconds)
    return;
  LastAggregate = Now;
  AggregateFanIn = startFanIn(MessageType::Checkpoint, {}, 0, 0);
}

void FleetSupervisor::runFor(double Seconds) {
  auto End = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(Seconds));
  while (std::chrono::steady_clock::now() < End)
    poll(50);
}

uint64_t FleetSupervisor::startFanIn(MessageType Type,
                                     const std::vector<uint8_t> &Payload,
                                     uint64_t ClientConn,
                                     uint64_t ClientReqId) {
  std::vector<unsigned> Live;
  for (unsigned I = 0; I < Slots.size(); ++I)
    if (Slots[I].Conn)
      Live.push_back(I);
  if (Live.empty())
    return 0;
  uint64_t Id = NextFanInId++;
  FanIn &F = FanIns[Id];
  F.ClientConn = ClientConn;
  F.ClientReqId = ClientReqId;
  F.Request = Type;
  F.Remaining = static_cast<unsigned>(Live.size());
  for (unsigned Shard : Live) {
    uint64_t Up = NextUpstreamId++;
    Pendings[{Slots[Shard].Conn, Up}] = {ClientConn, ClientReqId, Shard, Id};
    Net->send(Slots[Shard].Conn, Type, Up, Payload);
  }
  return Id;
}

void FleetSupervisor::finishFanIn(uint64_t Id) {
  auto It = FanIns.find(Id);
  if (It == FanIns.end())
    return;
  FanIn &F = It->second;
  F.Done = true;
  if (Id == AggregateFanIn) {
    // Timer-driven aggregation round: every live shard has checkpointed;
    // fold their files into the fleet directory.
    AggregateFanIn = 0;
    std::string Err;
    if (!F.AnyError && !mergeAggregates(Err))
      std::fprintf(stderr, "fleet: aggregate merge: %s\n", Err.c_str());
    FanIns.erase(It);
    return;
  }
  if (F.ClientConn == 0)
    return; // A synchronous waiter (aggregateNow/fetchStats) harvests it.

  // Client-facing broadcast: one reply, after all shards answered.
  if (F.AnyError) {
    sendClientError(F.ClientConn, F.ClientReqId,
                    RequestErrorCode::BadRequest, F.ErrorDetail);
  } else if (F.Request == MessageType::SubmitProgram) {
    Net->send(F.ClientConn, MessageType::SubmitAck, F.ClientReqId, {});
  } else if (F.Request == MessageType::Checkpoint) {
    CheckpointAckMsg M;
    M.Saved = F.SavedSum;
    Net->send(F.ClientConn, MessageType::CheckpointAck, F.ClientReqId,
              M.encode());
  } else if (F.Request == MessageType::FetchStats) {
    StatsReplyMsg M;
    std::map<std::string, uint64_t> Sum;
    for (const ShardStatsReport &R : F.PerShard)
      for (const auto &[Key, V] : R.Counters)
        Sum[Key] += V;
    for (const auto &[Key, V] : Sum)
      M.Counters.emplace_back(Key, V);
    M.Counters.emplace_back(eventKindName(EventKind::ShardRestarted),
                            Stats.ShardRestarts);
    M.Counters.emplace_back(eventKindName(EventKind::AggregateMerged),
                            Stats.AggregatesMerged);
    Net->send(F.ClientConn, MessageType::StatsReply, F.ClientReqId,
              M.encode());
  }
  FanIns.erase(It);
}

void FleetSupervisor::failShardPendings(uint64_t ConnId) {
  for (auto It = Pendings.begin(); It != Pendings.end();) {
    if (It->first.first != ConnId) {
      ++It;
      continue;
    }
    Pending P = It->second;
    It = Pendings.erase(It);
    if (P.FanIn) {
      auto FIt = FanIns.find(P.FanIn);
      if (FIt != FanIns.end()) {
        FIt->second.AnyError = true;
        FIt->second.ErrorDetail = "shard " + std::to_string(P.Shard) +
                                  " went down mid-request";
        if (--FIt->second.Remaining == 0)
          finishFanIn(P.FanIn);
      }
    } else if (P.ClientConn) {
      sendClientError(P.ClientConn, P.ClientReqId,
                      RequestErrorCode::ShardDown,
                      "shard " + std::to_string(P.Shard) +
                          " crashed; retry");
    }
  }
}

void FleetSupervisor::sendClientError(uint64_t ConnId, uint64_t RequestId,
                                      RequestErrorCode Code,
                                      std::string Detail) {
  ErrorMsg M;
  M.Code = static_cast<uint32_t>(Code);
  M.Detail = std::move(Detail);
  Net->send(ConnId, MessageType::Error, RequestId, M.encode());
}

void FleetSupervisor::onFrame(uint64_t ConnId, Frame F) {
  auto It = ConnToShard.find(ConnId);
  if (It != ConnToShard.end())
    handleUpstreamFrame(It->second, ConnId, F);
  else
    handleClientFrame(ConnId, F);
}

void FleetSupervisor::handleClientFrame(uint64_t ConnId, Frame &F) {
  switch (F.Type) {
  case MessageType::Ping:
    Net->send(ConnId, MessageType::Pong, F.RequestId, {});
    return;
  case MessageType::RunSession: {
    RunSessionMsg M;
    NetError Err;
    if (!M.decode(F.Payload, Err))
      return sendClientError(ConnId, F.RequestId,
                             RequestErrorCode::BadRequest, Err.message());
    uint32_t Shard = 0;
    if (!Ring.route(M.SessionKey, Shard) || Slots[Shard].Conn == 0) {
      ++Stats.RoutedShardDown;
      return sendClientError(ConnId, F.RequestId,
                             RequestErrorCode::ShardDown,
                             "shard " + std::to_string(Shard) +
                                 " is restarting; retry");
    }
    ++Stats.SessionsRouted;
    uint64_t Up = NextUpstreamId++;
    Pendings[{Slots[Shard].Conn, Up}] = {ConnId, F.RequestId, Shard, 0};
    Net->send(Slots[Shard].Conn, MessageType::RunSession, Up, F.Payload);
    return;
  }
  case MessageType::SubmitProgram:
  case MessageType::FetchStats:
  case MessageType::Checkpoint: {
    if (startFanIn(F.Type, F.Payload, ConnId, F.RequestId) == 0)
      sendClientError(ConnId, F.RequestId, RequestErrorCode::ShardDown,
                      "no shard is reachable");
    return;
  }
  default:
    sendClientError(ConnId, F.RequestId, RequestErrorCode::BadRequest,
                    std::string("unexpected ") + messageTypeName(F.Type));
    return;
  }
}

void FleetSupervisor::handleUpstreamFrame(unsigned Shard, uint64_t ConnId,
                                          Frame &F) {
  if (F.Type == MessageType::Pong && F.RequestId == 0)
    return; // Keepalive answer.
  auto It = Pendings.find({ConnId, F.RequestId});
  if (It == Pendings.end())
    return; // Client vanished or response raced a shard restart.
  Pending P = It->second;
  Pendings.erase(It);

  if (P.FanIn == 0) {
    // Unicast forward (RunSession): relay verbatim under the client's id.
    if (P.ClientConn)
      Net->send(P.ClientConn, F.Type, P.ClientReqId, F.Payload);
    return;
  }

  auto FIt = FanIns.find(P.FanIn);
  if (FIt == FanIns.end())
    return;
  FanIn &Fan = FIt->second;
  NetError Err;
  switch (F.Type) {
  case MessageType::StatsReply: {
    ShardStatsReport R;
    R.Shard = Shard;
    StatsReplyMsg M;
    if (M.decode(F.Payload, Err))
      R.Counters = std::move(M.Counters);
    Fan.PerShard.push_back(std::move(R));
    break;
  }
  case MessageType::CheckpointAck: {
    CheckpointAckMsg M;
    if (M.decode(F.Payload, Err))
      Fan.SavedSum += M.Saved;
    break;
  }
  case MessageType::SubmitAck:
    break;
  case MessageType::Error: {
    ErrorMsg M;
    Fan.AnyError = true;
    Fan.ErrorDetail = M.decode(F.Payload, Err)
                          ? M.Detail
                          : "shard reported an undecodable error";
    break;
  }
  default:
    Fan.AnyError = true;
    Fan.ErrorDetail =
        std::string("unexpected upstream ") + messageTypeName(F.Type);
    break;
  }
  if (--Fan.Remaining == 0)
    finishFanIn(P.FanIn);
}

void FleetSupervisor::onConnClosed(uint64_t ConnId) {
  auto It = ConnToShard.find(ConnId);
  if (It == ConnToShard.end())
    return;
  unsigned Shard = It->second;
  ConnToShard.erase(It);
  if (Slots[Shard].Conn == ConnId)
    Slots[Shard].Conn = 0;
  failShardPendings(ConnId);
}

bool FleetSupervisor::mergeAggregates(std::string &Err) {
  namespace fs = std::filesystem;
  // Group every shard's checkpoint files by module file name.
  std::map<std::string, std::vector<std::string>> ByModule;
  for (unsigned I = 0; I < Slots.size(); ++I) {
    std::error_code Ec;
    fs::directory_iterator DirIt(shardCheckpointDir(O.StateDir, I), Ec);
    if (Ec)
      continue; // Shard has not checkpointed yet.
    for (const fs::directory_entry &E : DirIt)
      if (E.path().extension() == ".jtcp")
        ByModule[E.path().filename().string()].push_back(E.path().string());
  }
  bool Ok = true;
  const std::string FleetDir = fleetAggregateDir(O.StateDir);
  TraceConfig TC; // Merge under default retirement thresholds.
  persist::MergeReport Merged;
  size_t Rounds = 0;
  for (const auto &[File, Paths] : ByModule) {
    persist::MergeReport Report;
    persist::PersistError PErr;
    if (!persist::mergeSnapshotFiles(Paths, FleetDir + "/" + File, TC,
                                     Report, PErr)) {
      if (Ok)
        Err = File + ": " + PErr.message();
      Ok = false;
      continue;
    }
    Merged.Inputs += Report.Inputs;
    Merged.Nodes += Report.Nodes;
    Merged.Traces += Report.Traces;
    Merged.TracesDeduped += Report.TracesDeduped;
    Merged.TracesDroppedByCompletion += Report.TracesDroppedByCompletion;
    Merged.Epoch = std::max(Merged.Epoch, Report.Epoch);
    ++Rounds;
  }
  if (Rounds) {
    ++Stats.AggregatesMerged;
    Stats.LastMerge = Merged;
  }
  return Ok;
}

bool FleetSupervisor::aggregateNow(std::string &Err, double TimeoutSeconds) {
  if (O.StateDir.empty()) {
    Err = "no state directory configured";
    return false;
  }
  uint64_t Id = startFanIn(MessageType::Checkpoint, {}, 0, 0);
  if (Id == 0) {
    Err = "no shard is reachable";
    return false;
  }
  auto End = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(TimeoutSeconds));
  while (!FanIns[Id].Done) {
    if (std::chrono::steady_clock::now() > End) {
      FanIns.erase(Id);
      Err = "checkpoint broadcast timed out";
      return false;
    }
    poll(20);
  }
  bool AnyError = FanIns[Id].AnyError;
  std::string Detail = FanIns[Id].ErrorDetail;
  FanIns.erase(Id);
  if (AnyError) {
    Err = "checkpoint failed: " + Detail;
    return false;
  }
  return mergeAggregates(Err);
}

bool FleetSupervisor::fetchStats(std::vector<ShardStatsReport> &Out,
                                 std::string &Err, double TimeoutSeconds) {
  uint64_t Id = startFanIn(MessageType::FetchStats, {}, 0, 0);
  if (Id == 0) {
    Err = "no shard is reachable";
    return false;
  }
  auto End = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(TimeoutSeconds));
  while (!FanIns[Id].Done) {
    if (std::chrono::steady_clock::now() > End) {
      FanIns.erase(Id);
      Err = "stats broadcast timed out";
      return false;
    }
    poll(20);
  }
  Out = std::move(FanIns[Id].PerShard);
  std::sort(Out.begin(), Out.end(),
            [](const ShardStatsReport &A, const ShardStatsReport &B) {
              return A.Shard < B.Shard;
            });
  FanIns.erase(Id);
  return true;
}

void FleetSupervisor::shutdown() {
  if (ShuttingDown || !Started) {
    ShuttingDown = true;
    return;
  }
  ShuttingDown = true;
  for (ShardSlot &S : Slots)
    if (S.Pid > 0)
      ::kill(S.Pid, SIGTERM);
  // Graceful drain first; escalate to SIGKILL if a shard wedges.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (ShardSlot &S : Slots) {
    while (S.Pid > 0) {
      int Status = 0;
      pid_t R = ::waitpid(S.Pid, &Status, WNOHANG);
      if (R == S.Pid || (R < 0 && errno == ECHILD)) {
        S.Pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() > Deadline) {
        ::kill(S.Pid, SIGKILL);
        ::waitpid(S.Pid, &Status, 0);
        S.Pid = -1;
        break;
      }
      Net->poll(20); // Keep draining network traffic meanwhile.
    }
    if (S.ListenFd >= 0) {
      ::close(S.ListenFd);
      S.ListenFd = -1;
    }
  }
  if (FrontFd >= 0) {
    ::close(FrontFd);
    FrontFd = -1;
  }
}
