//===- fleet/Shard.h - One serving shard process ----------------*- C++ -*-===//
///
/// \file
/// The body of a shard process: an EpollServer over a listening socket
/// *inherited from the supervisor* (socket-activation style -- the
/// supervisor binds and listens, so the port survives shard crashes and
/// the kernel queues connections across a restart window), wrapping a
/// VmService worker pool. The epoll loop is single-threaded; sessions
/// retire on VmService workers and re-enter the loop through an outbox
/// drained on the eventfd wake path, so no network state needs locks.
///
/// Admission control: once VmService::queueDepth() reaches the
/// configured bound, RunSession requests get a typed Backpressure reply
/// instead of queueing without bound -- the client sees the rejection
/// immediately, with the depth and bound, rather than a timeout.
///
/// Durability: the shard checkpoints its profiles to
/// <state>/shard-<id>/ and warm-boots from the fleet aggregate in
/// <state>/fleet/ -- so a restarted shard starts from the *fleet's*
/// collective profile, not cold.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FLEET_SHARD_H
#define JTC_FLEET_SHARD_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jtc {
namespace fleet {

struct ShardOptions {
  int ListenFd = -1;    ///< Inherited listening socket (required).
  uint32_t ShardId = 0;
  unsigned Workers = 1; ///< VmService worker threads.
  std::string StateDir; ///< Empty: no checkpointing / warm boot.
  uint64_t MaxQueueDepth = 64;
  double IdleTimeoutSeconds = 0;
  double CheckpointIntervalSeconds = 0;
  /// Workloads to register at boot: (registry name, scale; 0 = default).
  std::vector<std::pair<std::string, uint32_t>> Workloads;
};

/// Per-shard checkpoint directory under \p StateDir.
std::string shardCheckpointDir(const std::string &StateDir, uint32_t ShardId);

/// Where the aggregation tier writes merged snapshots and shards
/// warm-boot from.
std::string fleetAggregateDir(const std::string &StateDir);

/// Runs the shard loop until SIGTERM/SIGINT, then drains, checkpoints
/// and returns the process exit code. Never returns on success paths
/// other than a requested stop.
int runShardProcess(const ShardOptions &O);

} // namespace fleet
} // namespace jtc

#endif // JTC_FLEET_SHARD_H
