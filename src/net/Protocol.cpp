//===- net/Protocol.cpp ---------------------------------------------------===//

#include "net/Protocol.h"

using namespace jtc;
using namespace jtc::net;
using persist::ByteReader;
using persist::ByteWriter;

const char *net::messageTypeName(MessageType T) {
  switch (T) {
  case MessageType::Ping:
    return "ping";
  case MessageType::Pong:
    return "pong";
  case MessageType::SubmitProgram:
    return "submit-program";
  case MessageType::SubmitAck:
    return "submit-ack";
  case MessageType::RunSession:
    return "run-session";
  case MessageType::SessionDone:
    return "session-done";
  case MessageType::Backpressure:
    return "backpressure";
  case MessageType::FetchStats:
    return "fetch-stats";
  case MessageType::StatsReply:
    return "stats-reply";
  case MessageType::Checkpoint:
    return "checkpoint";
  case MessageType::CheckpointAck:
    return "checkpoint-ack";
  case MessageType::Error:
    return "error";
  }
  return "unknown";
}

const char *net::netErrorKindName(NetErrorKind K) {
  switch (K) {
  case NetErrorKind::None:
    return "ok";
  case NetErrorKind::BadMagic:
    return "bad-magic";
  case NetErrorKind::VersionSkew:
    return "version-skew";
  case NetErrorKind::BadType:
    return "bad-type";
  case NetErrorKind::Oversize:
    return "oversize";
  case NetErrorKind::Truncated:
    return "truncated";
  case NetErrorKind::Malformed:
    return "malformed";
  }
  return "unknown";
}

const ErrorDomain &net::netErrorDomain() {
  static const ErrorDomain D = {"net", [](uint32_t Code) {
                                  return netErrorKindName(
                                      static_cast<NetErrorKind>(Code));
                                }};
  return D;
}

TypedError NetError::typed() const {
  if (ok())
    return TypedError();
  return TypedError(netErrorDomain(), static_cast<uint32_t>(Kind), Detail);
}

std::string NetError::message() const { return typed().message(); }

std::vector<uint8_t> net::encodeFrame(MessageType Type, uint64_t RequestId,
                                      const std::vector<uint8_t> &Payload) {
  ByteWriter W;
  W.u32(FrameMagic);
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.u8(static_cast<uint8_t>(Type));
  W.u8(ProtocolVersion);
  W.u16(0);
  W.u64(RequestId);
  W.bytes(Payload.data(), Payload.size());
  return W.take();
}

void FrameReader::feed(const uint8_t *Data, size_t Size) {
  if (failed())
    return;
  // Compact the already-consumed prefix before it grows unboundedly.
  if (Consumed > 0 && (Consumed == Buf.size() || Consumed >= 64 * 1024)) {
    Buf.erase(Buf.begin(),
              Buf.begin() + static_cast<std::ptrdiff_t>(Consumed));
    Consumed = 0;
  }
  Buf.insert(Buf.end(), Data, Data + Size);
}

bool FrameReader::next(Frame &Out) {
  if (failed())
    return false;
  const size_t Avail = Buf.size() - Consumed;
  if (Avail < FrameHeaderBytes)
    return false;
  ByteReader R(Buf.data() + Consumed, Avail);
  uint32_t Magic = 0, Len = 0;
  uint8_t Type = 0, Ver = 0;
  uint16_t Rsvd = 0;
  uint64_t ReqId = 0;
  // The header is complete (Avail >= FrameHeaderBytes), so these reads
  // cannot fail.
  R.u32(Magic);
  R.u32(Len);
  R.u8(Type);
  R.u8(Ver);
  R.u16(Rsvd);
  R.u64(ReqId);
  if (Magic != FrameMagic) {
    Err = NetError::make(NetErrorKind::BadMagic, "stream is not framed");
    return false;
  }
  if (Ver != ProtocolVersion) {
    Err = NetError::make(NetErrorKind::VersionSkew,
                         "protocol version " + std::to_string(Ver));
    return false;
  }
  if (Type >= NumMessageTypes) {
    Err = NetError::make(NetErrorKind::BadType,
                         "message type " + std::to_string(Type));
    return false;
  }
  if (Len > MaxPayloadBytes) {
    Err = NetError::make(NetErrorKind::Oversize,
                         "declared payload of " + std::to_string(Len) +
                             " bytes");
    return false;
  }
  if (Avail < FrameHeaderBytes + Len)
    return false; // Torn mid-payload: wait for more bytes.
  Out.Type = static_cast<MessageType>(Type);
  Out.RequestId = ReqId;
  Out.Payload.assign(Buf.begin() +
                         static_cast<std::ptrdiff_t>(Consumed +
                                                     FrameHeaderBytes),
                     Buf.begin() + static_cast<std::ptrdiff_t>(
                                       Consumed + FrameHeaderBytes + Len));
  Consumed += FrameHeaderBytes + Len;
  return true;
}

namespace {

bool fail(NetError &Err, NetErrorKind K, const char *What) {
  Err = NetError::make(K, What);
  return false;
}

void putString(ByteWriter &W, const std::string &S) {
  W.varint(S.size());
  W.bytes(reinterpret_cast<const uint8_t *>(S.data()), S.size());
}

bool getString(ByteReader &R, std::string &Out, NetError &Err,
               const char *What) {
  uint64_t Len = 0;
  if (!R.varint(Len))
    return fail(Err, NetErrorKind::Truncated, What);
  if (Len > R.remaining())
    return fail(Err, NetErrorKind::Truncated, What);
  const uint8_t *Data = nullptr;
  R.span(static_cast<size_t>(Len), Data);
  Out.assign(reinterpret_cast<const char *>(Data),
             static_cast<size_t>(Len));
  return true;
}

/// Every payload must consume exactly its bytes: trailing garbage means
/// the peer speaks a different dialect.
bool finish(ByteReader &R, NetError &Err, const char *What) {
  if (!R.exhausted())
    return fail(Err, NetErrorKind::Malformed, What);
  return true;
}

} // namespace

std::vector<uint8_t> SubmitProgramMsg::encode() const {
  ByteWriter W;
  putString(W, Name);
  putString(W, Jasm);
  return W.take();
}

bool SubmitProgramMsg::decode(const std::vector<uint8_t> &Payload,
                              NetError &Err) {
  ByteReader R(Payload.data(), Payload.size());
  SubmitProgramMsg M;
  if (!getString(R, M.Name, Err, "submit-program name") ||
      !getString(R, M.Jasm, Err, "submit-program text") ||
      !finish(R, Err, "submit-program trailing bytes"))
    return false;
  if (M.Name.empty())
    return fail(Err, NetErrorKind::Malformed, "submit-program empty name");
  *this = std::move(M);
  return true;
}

std::vector<uint8_t> RunSessionMsg::encode() const {
  ByteWriter W;
  putString(W, SessionKey);
  putString(W, Module);
  W.varint(MaxInstructions);
  return W.take();
}

bool RunSessionMsg::decode(const std::vector<uint8_t> &Payload,
                           NetError &Err) {
  ByteReader R(Payload.data(), Payload.size());
  RunSessionMsg M;
  if (!getString(R, M.SessionKey, Err, "run-session key") ||
      !getString(R, M.Module, Err, "run-session module"))
    return false;
  if (!R.varint(M.MaxInstructions))
    return fail(Err, NetErrorKind::Truncated, "run-session budget");
  if (!finish(R, Err, "run-session trailing bytes"))
    return false;
  if (M.Module.empty())
    return fail(Err, NetErrorKind::Malformed, "run-session empty module");
  *this = std::move(M);
  return true;
}

std::vector<uint8_t> SessionDoneMsg::encode() const {
  ByteWriter W;
  W.u8(Status);
  W.u8(Trap);
  W.u8(WarmStart ? 1 : 0);
  W.varint(Shard);
  W.varint(BlocksExecuted);
  W.varint(Instructions);
  W.u64(HeapDigest);
  W.u64(OutputDigest);
  W.u64(StatsDigest);
  uint64_t SecondsBits = 0;
  static_assert(sizeof(SecondsBits) == sizeof(Seconds));
  __builtin_memcpy(&SecondsBits, &Seconds, sizeof(SecondsBits));
  W.u64(SecondsBits);
  return W.take();
}

bool SessionDoneMsg::decode(const std::vector<uint8_t> &Payload,
                            NetError &Err) {
  ByteReader R(Payload.data(), Payload.size());
  SessionDoneMsg M;
  uint8_t Warm = 0;
  uint64_t Shard64 = 0, SecondsBits = 0;
  if (!R.u8(M.Status) || !R.u8(M.Trap) || !R.u8(Warm) ||
      !R.varint(Shard64) || !R.varint(M.BlocksExecuted) ||
      !R.varint(M.Instructions) || !R.u64(M.HeapDigest) ||
      !R.u64(M.OutputDigest) || !R.u64(M.StatsDigest) || !R.u64(SecondsBits))
    return fail(Err, NetErrorKind::Truncated, "session-done fields");
  if (!finish(R, Err, "session-done trailing bytes"))
    return false;
  if (Warm > 1 || Shard64 > 0xffffffffull)
    return fail(Err, NetErrorKind::Malformed, "session-done fields");
  M.WarmStart = Warm != 0;
  M.Shard = static_cast<uint32_t>(Shard64);
  __builtin_memcpy(&M.Seconds, &SecondsBits, sizeof(M.Seconds));
  *this = M;
  return true;
}

std::vector<uint8_t> BackpressureMsg::encode() const {
  ByteWriter W;
  W.varint(QueueDepth);
  W.varint(Bound);
  return W.take();
}

bool BackpressureMsg::decode(const std::vector<uint8_t> &Payload,
                             NetError &Err) {
  ByteReader R(Payload.data(), Payload.size());
  BackpressureMsg M;
  if (!R.varint(M.QueueDepth) || !R.varint(M.Bound))
    return fail(Err, NetErrorKind::Truncated, "backpressure fields");
  if (!finish(R, Err, "backpressure trailing bytes"))
    return false;
  *this = M;
  return true;
}

std::vector<uint8_t> StatsReplyMsg::encode() const {
  ByteWriter W;
  W.varint(Counters.size());
  for (const auto &[Key, Value] : Counters) {
    putString(W, Key);
    W.varint(Value);
  }
  return W.take();
}

bool StatsReplyMsg::decode(const std::vector<uint8_t> &Payload,
                           NetError &Err) {
  ByteReader R(Payload.data(), Payload.size());
  uint64_t N = 0;
  if (!R.varint(N))
    return fail(Err, NetErrorKind::Truncated, "stats-reply count");
  // Two bytes is the smallest possible entry (empty key + 1-byte value).
  if (N > R.remaining())
    return fail(Err, NetErrorKind::Malformed, "stats-reply count");
  StatsReplyMsg M;
  M.Counters.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I < N; ++I) {
    std::string Key;
    uint64_t Value = 0;
    if (!getString(R, Key, Err, "stats-reply key"))
      return false;
    if (!R.varint(Value))
      return fail(Err, NetErrorKind::Truncated, "stats-reply value");
    M.Counters.emplace_back(std::move(Key), Value);
  }
  if (!finish(R, Err, "stats-reply trailing bytes"))
    return false;
  *this = std::move(M);
  return true;
}

std::vector<uint8_t> CheckpointAckMsg::encode() const {
  ByteWriter W;
  W.varint(Saved);
  return W.take();
}

bool CheckpointAckMsg::decode(const std::vector<uint8_t> &Payload,
                              NetError &Err) {
  ByteReader R(Payload.data(), Payload.size());
  CheckpointAckMsg M;
  if (!R.varint(M.Saved))
    return fail(Err, NetErrorKind::Truncated, "checkpoint-ack fields");
  if (!finish(R, Err, "checkpoint-ack trailing bytes"))
    return false;
  *this = M;
  return true;
}

std::vector<uint8_t> ErrorMsg::encode() const {
  ByteWriter W;
  W.varint(Code);
  putString(W, Detail);
  return W.take();
}

bool ErrorMsg::decode(const std::vector<uint8_t> &Payload, NetError &Err) {
  ByteReader R(Payload.data(), Payload.size());
  ErrorMsg M;
  uint64_t Code64 = 0;
  if (!R.varint(Code64))
    return fail(Err, NetErrorKind::Truncated, "error code");
  if (Code64 > 0xffffffffull)
    return fail(Err, NetErrorKind::Malformed, "error code");
  M.Code = static_cast<uint32_t>(Code64);
  if (!getString(R, M.Detail, Err, "error detail") ||
      !finish(R, Err, "error trailing bytes"))
    return false;
  *this = std::move(M);
  return true;
}

uint64_t net::outputDigest(const std::vector<int64_t> &Output) {
  uint64_t H = 1469598103934665603ull; // FNV offset basis.
  for (int64_t V : Output) {
    uint64_t U = static_cast<uint64_t>(V);
    for (int I = 0; I < 8; ++I) {
      H ^= (U >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  }
  return H;
}
