//===- net/Client.cpp -----------------------------------------------------===//

#include "net/Client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace jtc;
using namespace jtc::net;

BlockingClient::~BlockingClient() {
  if (Fd >= 0)
    ::close(Fd);
}

std::unique_ptr<BlockingClient> BlockingClient::connect(uint16_t Port,
                                                        std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = std::string("connect: ") + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return std::unique_ptr<BlockingClient>(new BlockingClient(Fd));
}

bool BlockingClient::send(MessageType Type, uint64_t RequestId,
                          const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Bytes = encodeFrame(Type, RequestId, Payload);
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool BlockingClient::recv(Frame &Out, NetError &Err, double TimeoutSeconds) {
  for (;;) {
    if (Reader.failed()) {
      Err = Reader.error();
      return false;
    }
    if (Reader.next(Out))
      return true;
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, static_cast<int>(TimeoutSeconds * 1000));
    if (R == 0) {
      Err = NetError::make(NetErrorKind::Truncated, "timeout");
      return false;
    }
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Err = NetError::make(NetErrorKind::Truncated,
                           std::string("poll: ") + std::strerror(errno));
      return false;
    }
    uint8_t Buf[64 * 1024];
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N == 0) {
      Err = NetError::make(NetErrorKind::Truncated, "peer closed");
      return false;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = NetError::make(NetErrorKind::Truncated,
                           std::string("read: ") + std::strerror(errno));
      return false;
    }
    Reader.feed(Buf, static_cast<size_t>(N));
  }
}

bool BlockingClient::call(MessageType Type,
                          const std::vector<uint8_t> &Payload, Frame &Out,
                          NetError &Err, double TimeoutSeconds) {
  uint64_t Id = nextRequestId();
  if (!send(Type, Id, Payload)) {
    Err = NetError::make(NetErrorKind::Truncated, "send failed");
    return false;
  }
  if (!recv(Out, Err, TimeoutSeconds))
    return false;
  if (Out.RequestId != Id) {
    Err = NetError::make(NetErrorKind::Malformed,
                         "response correlates to a different request");
    return false;
  }
  return true;
}
