//===- net/EpollServer.h - Non-blocking epoll front-end ---------*- C++ -*-===//
///
/// \file
/// The event loop under both halves of the serving fleet: each shard
/// process runs one EpollServer over its inherited listening socket, and
/// the supervisor runs another that multiplexes client connections and
/// the per-shard upstream connections in a single epoll set.
///
/// The loop is deliberately single-threaded: every callback fires on the
/// thread calling poll(), so handlers touch connection state without
/// locks. Work finished on other threads (a VmService worker retiring a
/// session) re-enters the loop through wake() -- an eventfd registered in
/// the same epoll set -- and the handler drains its own outbox in
/// onWake(). Connection lifecycle is all here: non-blocking accept,
/// per-connection read buffering through FrameReader, write buffering
/// with EPOLLOUT armed only while a partial write is outstanding, idle
/// timeouts, and typed protocol-error teardown.
///
/// Connections are addressed by stable 64-bit ids, never raw fds: an fd
/// number is reused by the kernel the instant a connection closes, but a
/// ConnId held in a pending-request map stays dead forever, so a late
/// response can never be routed to an unrelated fresh connection.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_NET_EPOLLSERVER_H
#define JTC_NET_EPOLLSERVER_H

#include "net/Protocol.h"

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace jtc {
namespace net {

/// Serving counters every front-end reports (shard and supervisor).
struct NetCounters {
  uint64_t ConnsAccepted = 0;
  uint64_t ConnsClosed = 0;
  uint64_t IdleClosed = 0;      ///< Subset of ConnsClosed: idle timeout.
  uint64_t ProtocolErrors = 0;  ///< Connections torn down on a NetError.
  uint64_t FramesIn = 0;
  uint64_t FramesOut = 0;
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
};

class EpollServer {
public:
  struct Config {
    /// Close connections with no traffic for this long (0 = never).
    /// Outgoing (connectTo) connections are exempt; their lifetime is the
    /// owner's business.
    double IdleTimeoutSeconds = 0;
    /// A connection whose peer stops reading while responses pile up is
    /// torn down once its write buffer passes this bound.
    size_t MaxWriteBufferBytes = 64u << 20;
  };

  /// Loop callbacks. All fire on the poll()ing thread.
  class Handler {
  public:
    virtual ~Handler();
    /// A complete frame arrived on \p ConnId.
    virtual void onFrame(uint64_t ConnId, Frame F) = 0;
    /// \p ConnId is gone (peer close, error, idle timeout, closeConn).
    virtual void onConnClosed(uint64_t ConnId);
    /// wake() was called from some thread since the last poll.
    virtual void onWake();
  };

  EpollServer(Config C, Handler &H);
  ~EpollServer();

  EpollServer(const EpollServer &) = delete;
  EpollServer &operator=(const EpollServer &) = delete;

  /// Creates a non-blocking listening TCP socket on 127.0.0.1:\p Port
  /// (0 = kernel-assigned); fills \p BoundPort. Returns -1 with \p Err
  /// set on failure. The fd is close-on-exec OFF so a supervisor can pass
  /// it to a forked shard and keep it across shard restarts.
  static int makeListenSocket(uint16_t Port, uint16_t &BoundPort,
                              std::string &Err);

  /// Registers \p Fd (a listening socket) for accepts. Does NOT take
  /// ownership: the supervisor keeps shard listen fds alive across
  /// restarts.
  bool addListener(int Fd, std::string &Err);

  /// Opens a connection to 127.0.0.1:\p Port and registers it in the
  /// loop. Returns 0 with \p Err set on failure. The connect is allowed
  /// to block briefly (loopback; the peer's backlog accepts instantly).
  uint64_t connectTo(uint16_t Port, std::string &Err);

  /// Queues one frame on \p ConnId and flushes as far as the socket
  /// accepts. Unknown / dead ids are silently dropped (the session that
  /// asked is gone; there is nobody to tell).
  void send(uint64_t ConnId, MessageType Type, uint64_t RequestId,
            const std::vector<uint8_t> &Payload);

  void closeConn(uint64_t ConnId);
  bool connAlive(uint64_t ConnId) const { return Conns.count(ConnId) != 0; }

  /// Thread-safe: makes the next (or current) poll() return and fire
  /// Handler::onWake.
  void wake();

  /// One epoll_wait round: dispatches accepts, reads (frames to
  /// onFrame), writes, wake-ups, then sweeps idle connections.
  void poll(int TimeoutMs);

  const NetCounters &counters() const { return Counters; }
  size_t numConnections() const { return Conns.size(); }

private:
  struct Conn {
    int Fd = -1;
    uint64_t Id = 0;
    bool Outgoing = false; ///< connectTo (idle-exempt) vs accepted.
    bool WantWrite = false; ///< EPOLLOUT currently armed.
    FrameReader Reader;
    std::vector<uint8_t> WriteBuf;
    size_t WriteOff = 0; ///< Flushed prefix of WriteBuf.
    std::chrono::steady_clock::time_point LastActivity;
  };

  uint64_t registerConn(int Fd, bool Outgoing);
  void doAccept(int ListenFd);
  void doRead(Conn &C);
  bool flush(Conn &C); ///< False when the connection died mid-write.
  void updateEvents(Conn &C);
  void destroyConn(uint64_t ConnId, bool Idle);
  void sweepIdle();

  Config Cfg;
  Handler &H;
  int EpollFd = -1;
  int WakeFd = -1; ///< eventfd.
  std::vector<int> Listeners;
  std::map<uint64_t, Conn> Conns; ///< ConnId -> connection.
  std::map<int, uint64_t> FdToConn;
  uint64_t NextConnId = 1;
  NetCounters Counters;
};

} // namespace net
} // namespace jtc

#endif // JTC_NET_EPOLLSERVER_H
