//===- net/Protocol.h - Fleet serving wire protocol -------------*- C++ -*-===//
///
/// \file
/// The length-prefixed binary protocol the sharded serving fleet speaks:
/// a fixed 20-byte frame header (magic, payload length, message type,
/// protocol version, request id) followed by a typed payload encoded with
/// the persist layer's bounds-checked ByteWriter/ByteReader primitives.
/// Request ids let one connection carry many requests concurrently -- the
/// supervisor multiplexes every client's sessions over a single upstream
/// connection per shard and correlates responses by id.
///
/// The decode side follows the repo's strict-loader discipline: arbitrary
/// bytes land in a typed NetError (bad magic, version skew, an oversized
/// declared payload, truncation, malformed payload), never in undefined
/// behaviour and never in a partially applied message. FrameReader
/// reassembles frames from an arbitrary re-slicing of the byte stream --
/// a torn read that splits a header or payload mid-byte just waits for
/// more input -- which is what tests/net_test.cpp's byte-at-a-time and
/// fuzz-sliced framing tests pin down.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_NET_PROTOCOL_H
#define JTC_NET_PROTOCOL_H

#include "persist/ByteStream.h"
#include "support/TypedError.h"

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace jtc {
namespace net {

/// "JTCF", little-endian, as the first 4 bytes of every frame.
inline constexpr uint32_t FrameMagic = 0x4643544Au;
inline constexpr uint8_t ProtocolVersion = 1;
/// Frames declaring a larger payload are rejected before buffering (a
/// hostile peer cannot make a connection allocate unboundedly).
inline constexpr uint32_t MaxPayloadBytes = 16u << 20;
inline constexpr size_t FrameHeaderBytes = 20;

/// Every message the fleet protocol speaks. Requests flow client ->
/// supervisor -> shard; each has exactly one response type (or Error /
/// Backpressure), correlated by the request id.
enum class MessageType : uint8_t {
  Ping = 0,      ///< Liveness probe; also the supervisor's keepalive.
  Pong,          ///< Response to Ping.
  SubmitProgram, ///< Register a .jasm program fleet-wide {name, text}.
  SubmitAck,     ///< Program accepted (verified + registered).
  RunSession,    ///< Run a session {session key, module, budget}.
  SessionDone,   ///< Session retired; carries outcome + digests.
  Backpressure,  ///< Typed admission-control rejection {depth, bound}.
  FetchStats,    ///< Request the serving counters.
  StatsReply,    ///< Counter name/value pairs.
  Checkpoint,    ///< Checkpoint published profiles to disk now.
  CheckpointAck, ///< Checkpoint finished {files written}.
  Error,         ///< Typed request failure {code, detail}.
};

inline constexpr unsigned NumMessageTypes =
    static_cast<unsigned>(MessageType::Error) + 1;

/// Stable machine-readable name ("ping", "run-session", ...).
const char *messageTypeName(MessageType T);

/// Why a byte stream failed to parse as frames / payloads.
enum class NetErrorKind : unsigned char {
  None,          ///< Success.
  BadMagic,      ///< Frame does not start with FrameMagic.
  VersionSkew,   ///< Protocol version this build does not speak.
  BadType,       ///< Message type byte outside the vocabulary.
  Oversize,      ///< Declared payload exceeds MaxPayloadBytes.
  Truncated,     ///< Payload ends before its declared structure does.
  Malformed,     ///< Structure decodes but violates the message spec.
};

const char *netErrorKindName(NetErrorKind K);

/// The TypedError domain for protocol failures ("net").
const ErrorDomain &netErrorDomain();

/// One framing/decode failure. Default-constructed means success.
struct NetError {
  NetErrorKind Kind = NetErrorKind::None;
  std::string Detail;

  bool ok() const { return Kind == NetErrorKind::None; }
  TypedError typed() const;
  std::string message() const;

  static NetError make(NetErrorKind K, std::string Detail) {
    return NetError{K, std::move(Detail)};
  }
};

/// Typed request-level failures carried by MessageType::Error.
enum class RequestErrorCode : uint32_t {
  UnknownModule = 1, ///< RunSession named a module no shard has.
  ShardDown = 2,     ///< Target shard crashed; the supervisor is
                     ///< restarting it. Retryable.
  BadRequest = 3,    ///< Request payload was structurally unacceptable.
  ProgramRejected = 4, ///< SubmitProgram failed to parse or verify.
  Shutdown = 5,      ///< Peer is draining and no longer accepts work.
};

/// One reassembled frame.
struct Frame {
  MessageType Type = MessageType::Ping;
  uint64_t RequestId = 0;
  std::vector<uint8_t> Payload;
};

/// Serializes a complete frame (header + payload), ready to write.
std::vector<uint8_t> encodeFrame(MessageType Type, uint64_t RequestId,
                                 const std::vector<uint8_t> &Payload);

/// Incremental frame reassembly over an arbitrarily sliced byte stream.
/// feed() buffers input; next() pops completed frames in order. The first
/// structural violation (magic, version, type, oversize) latches into
/// error() and next() never yields again -- the connection owner closes.
class FrameReader {
public:
  void feed(const uint8_t *Data, size_t Size);

  /// Pops the next complete frame into \p Out. Returns false when no
  /// complete frame is buffered (or the reader is in error).
  bool next(Frame &Out);

  const NetError &error() const { return Err; }
  bool failed() const { return !Err.ok(); }

  /// Bytes buffered but not yet consumed as frames.
  size_t pendingBytes() const { return Buf.size() - Consumed; }

private:
  std::vector<uint8_t> Buf;
  size_t Consumed = 0; ///< Prefix of Buf already emitted as frames.
  NetError Err;
};

//===--- Message payloads -------------------------------------------------===//
///
/// Each message struct encodes into payload bytes and strictly decodes
/// from them; decode returns false (with \p Err typed) on truncation or
/// spec violations and leaves no partial state behind. Strings are
/// varint-length-prefixed; decode bounds string lengths by the payload
/// size, so a hostile length cannot drive allocation past the (already
/// bounded) frame.

struct SubmitProgramMsg {
  std::string Name;
  std::string Jasm; ///< Program text (text/AsmParser syntax).

  std::vector<uint8_t> encode() const;
  bool decode(const std::vector<uint8_t> &Payload, NetError &Err);
};

struct RunSessionMsg {
  std::string SessionKey; ///< Consistent-hash routing key.
  std::string Module;     ///< Registered module name.
  uint64_t MaxInstructions = 0; ///< 0: the shard's configured budget.

  std::vector<uint8_t> encode() const;
  bool decode(const std::vector<uint8_t> &Payload, NetError &Err);
};

struct SessionDoneMsg {
  uint8_t Status = 0;     ///< RunStatus.
  uint8_t Trap = 0;       ///< TrapKind.
  bool WarmStart = false; ///< Session was seeded from a snapshot.
  uint32_t Shard = 0;     ///< Shard that ran the session.
  uint64_t BlocksExecuted = 0;
  uint64_t Instructions = 0;
  uint64_t HeapDigest = 0;   ///< jtc::heapDigest of the final heap.
  uint64_t OutputDigest = 0; ///< FNV-1a over the printed values.
  uint64_t StatsDigest = 0;  ///< VmStats::digest() of the session.
  double Seconds = 0;        ///< Shard-side session wall clock.

  std::vector<uint8_t> encode() const;
  bool decode(const std::vector<uint8_t> &Payload, NetError &Err);
};

struct BackpressureMsg {
  uint64_t QueueDepth = 0; ///< Sessions in flight at rejection time.
  uint64_t Bound = 0;      ///< The shard's admission bound.

  std::vector<uint8_t> encode() const;
  bool decode(const std::vector<uint8_t> &Payload, NetError &Err);
};

struct StatsReplyMsg {
  /// Counter name -> value, in emission order. Names are stable
  /// kebab-case keys; the supervisor sums same-named counters across
  /// shards.
  std::vector<std::pair<std::string, uint64_t>> Counters;

  std::vector<uint8_t> encode() const;
  bool decode(const std::vector<uint8_t> &Payload, NetError &Err);
};

struct CheckpointAckMsg {
  uint64_t Saved = 0; ///< .jtcp files written.

  std::vector<uint8_t> encode() const;
  bool decode(const std::vector<uint8_t> &Payload, NetError &Err);
};

struct ErrorMsg {
  uint32_t Code = 0; ///< RequestErrorCode.
  std::string Detail;

  std::vector<uint8_t> encode() const;
  bool decode(const std::vector<uint8_t> &Payload, NetError &Err);
};

/// FNV-1a over a program's printed output, the digest SessionDoneMsg
/// carries so a load generator can gate every remote session against a
/// local single-process reference run.
uint64_t outputDigest(const std::vector<int64_t> &Output);

} // namespace net
} // namespace jtc

#endif // JTC_NET_PROTOCOL_H
