//===- net/Client.h - Blocking fleet protocol client ------------*- C++ -*-===//
///
/// \file
/// The client half of the fleet protocol: a plain blocking socket wrapped
/// in frame encode/decode, used by the load generator, the fleet tests
/// and jtc-fleet's own end-of-run stats fetch. Requests can be pipelined
/// -- send() any number of frames, then recv() responses as they arrive
/// and correlate by request id -- or driven strictly call()-at-a-time.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_NET_CLIENT_H
#define JTC_NET_CLIENT_H

#include "net/Protocol.h"

#include <memory>
#include <string>

namespace jtc {
namespace net {

class BlockingClient {
public:
  ~BlockingClient();

  BlockingClient(const BlockingClient &) = delete;
  BlockingClient &operator=(const BlockingClient &) = delete;

  /// Connects to 127.0.0.1:\p Port; null with \p Err set on failure.
  static std::unique_ptr<BlockingClient> connect(uint16_t Port,
                                                 std::string &Err);

  /// Writes one frame (blocking until fully written). False on a dead
  /// connection.
  bool send(MessageType Type, uint64_t RequestId,
            const std::vector<uint8_t> &Payload);

  /// Blocks until the next complete frame arrives (or \p TimeoutSeconds
  /// passes, or the peer closes). False with \p Err typed on failure;
  /// a timeout reports NetErrorKind::Truncated with a "timeout" detail.
  bool recv(Frame &Out, NetError &Err, double TimeoutSeconds = 30.0);

  /// send + recv, asserting the response correlates to this request.
  /// Any response type is accepted (Error and Backpressure are valid
  /// protocol answers); callers dispatch on Out.Type.
  bool call(MessageType Type, const std::vector<uint8_t> &Payload,
            Frame &Out, NetError &Err, double TimeoutSeconds = 30.0);

  /// Next pipelined request id this client will use.
  uint64_t nextRequestId() { return NextId++; }

private:
  explicit BlockingClient(int Fd) : Fd(Fd) {}

  int Fd;
  FrameReader Reader;
  uint64_t NextId = 1;
};

} // namespace net
} // namespace jtc

#endif // JTC_NET_CLIENT_H
