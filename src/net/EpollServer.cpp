//===- net/EpollServer.cpp ------------------------------------------------===//

#include "net/EpollServer.h"

#include <cassert>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace jtc;
using namespace jtc::net;

EpollServer::Handler::~Handler() = default;
void EpollServer::Handler::onConnClosed(uint64_t) {}
void EpollServer::Handler::onWake() {}

namespace {

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

void setNoDelay(int Fd) {
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

} // namespace

EpollServer::EpollServer(Config C, Handler &H) : Cfg(C), H(H) {
  EpollFd = epoll_create1(EPOLL_CLOEXEC);
  assert(EpollFd >= 0 && "epoll_create1 failed");
  WakeFd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  assert(WakeFd >= 0 && "eventfd failed");
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.u64 = 0; // Sentinel: the wake fd.
  epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev);
}

EpollServer::~EpollServer() {
  // Conns own their fds; listeners are the owner's (kept across shard
  // restarts), so only deregister them.
  for (auto &[Id, C] : Conns)
    ::close(C.Fd);
  for (int Fd : Listeners)
    epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  if (WakeFd >= 0)
    ::close(WakeFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
}

int EpollServer::makeListenSocket(uint16_t Port, uint16_t &BoundPort,
                                  std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 512) != 0 || !setNonBlocking(Fd)) {
    Err = std::string("bind/listen: ") + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  socklen_t Len = sizeof(Addr);
  if (getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    Err = std::string("getsockname: ") + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  BoundPort = ntohs(Addr.sin_port);
  return Fd;
}

bool EpollServer::addListener(int Fd, std::string &Err) {
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  // Listeners are tagged by (id = 1, fd) packed into u64: id 0 is the
  // wake fd, odd-low-bit tags a listener, connections use their ConnId
  // shifted past the tag bits.
  Ev.data.u64 = (static_cast<uint64_t>(Fd) << 2) | 1;
  if (epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) != 0) {
    Err = std::string("epoll_ctl add listener: ") + std::strerror(errno);
    return false;
  }
  Listeners.push_back(Fd);
  return true;
}

uint64_t EpollServer::registerConn(int Fd, bool Outgoing) {
  setNonBlocking(Fd);
  setNoDelay(Fd);
  uint64_t Id = NextConnId++;
  Conn C;
  C.Fd = Fd;
  C.Id = Id;
  C.Outgoing = Outgoing;
  C.LastActivity = std::chrono::steady_clock::now();
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.u64 = (Id << 2) | 2;
  if (epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) != 0) {
    ::close(Fd);
    return 0;
  }
  FdToConn[Fd] = Id;
  Conns.emplace(Id, std::move(C));
  return Id;
}

uint64_t EpollServer::connectTo(uint16_t Port, std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return 0;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = std::string("connect: ") + std::strerror(errno);
    ::close(Fd);
    return 0;
  }
  uint64_t Id = registerConn(Fd, /*Outgoing=*/true);
  if (!Id)
    Err = "epoll registration failed";
  return Id;
}

void EpollServer::doAccept(int ListenFd) {
  for (;;) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr, SOCK_CLOEXEC);
    if (Fd < 0)
      return; // EAGAIN or a transient error: nothing more to accept now.
    if (registerConn(Fd, /*Outgoing=*/false))
      ++Counters.ConnsAccepted;
  }
}

void EpollServer::doRead(Conn &C) {
  uint8_t Buf[64 * 1024];
  for (;;) {
    ssize_t N = ::read(C.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Counters.BytesIn += static_cast<uint64_t>(N);
      C.LastActivity = std::chrono::steady_clock::now();
      C.Reader.feed(Buf, static_cast<size_t>(N));
      if (static_cast<size_t>(N) < sizeof(Buf))
        break; // Drained (short read); avoid one extra EAGAIN syscall.
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    // EOF or hard error.
    destroyConn(C.Id, /*Idle=*/false);
    return;
  }
  uint64_t Id = C.Id;
  Frame F;
  while (Conns.count(Id) && Conns.at(Id).Reader.next(F)) {
    ++Counters.FramesIn;
    H.onFrame(Id, std::move(F)); // May close Id or others.
    F = Frame();
  }
  auto It = Conns.find(Id);
  if (It != Conns.end() && It->second.Reader.failed()) {
    ++Counters.ProtocolErrors;
    destroyConn(Id, /*Idle=*/false);
  }
}

bool EpollServer::flush(Conn &C) {
  while (C.WriteOff < C.WriteBuf.size()) {
    ssize_t N = ::write(C.Fd, C.WriteBuf.data() + C.WriteOff,
                        C.WriteBuf.size() - C.WriteOff);
    if (N > 0) {
      Counters.BytesOut += static_cast<uint64_t>(N);
      C.WriteOff += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    destroyConn(C.Id, /*Idle=*/false);
    return false;
  }
  if (C.WriteOff == C.WriteBuf.size()) {
    C.WriteBuf.clear();
    C.WriteOff = 0;
  } else if (C.WriteOff >= 64 * 1024) {
    C.WriteBuf.erase(C.WriteBuf.begin(),
                     C.WriteBuf.begin() +
                         static_cast<std::ptrdiff_t>(C.WriteOff));
    C.WriteOff = 0;
  }
  updateEvents(C);
  return true;
}

void EpollServer::updateEvents(Conn &C) {
  bool Want = !C.WriteBuf.empty();
  if (Want == C.WantWrite)
    return;
  C.WantWrite = Want;
  epoll_event Ev{};
  Ev.events = EPOLLIN | (Want ? EPOLLOUT : 0u);
  Ev.data.u64 = (C.Id << 2) | 2;
  epoll_ctl(EpollFd, EPOLL_CTL_MOD, C.Fd, &Ev);
}

void EpollServer::send(uint64_t ConnId, MessageType Type, uint64_t RequestId,
                       const std::vector<uint8_t> &Payload) {
  auto It = Conns.find(ConnId);
  if (It == Conns.end())
    return;
  Conn &C = It->second;
  std::vector<uint8_t> Bytes = encodeFrame(Type, RequestId, Payload);
  C.WriteBuf.insert(C.WriteBuf.end(), Bytes.begin(), Bytes.end());
  ++Counters.FramesOut;
  if (C.WriteBuf.size() - C.WriteOff > Cfg.MaxWriteBufferBytes) {
    destroyConn(ConnId, /*Idle=*/false); // Peer stopped reading.
    return;
  }
  C.LastActivity = std::chrono::steady_clock::now();
  flush(C);
}

void EpollServer::closeConn(uint64_t ConnId) {
  if (Conns.count(ConnId))
    destroyConn(ConnId, /*Idle=*/false);
}

void EpollServer::destroyConn(uint64_t ConnId, bool Idle) {
  auto It = Conns.find(ConnId);
  if (It == Conns.end())
    return;
  int Fd = It->second.Fd;
  epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  ::close(Fd);
  FdToConn.erase(Fd);
  Conns.erase(It);
  ++Counters.ConnsClosed;
  if (Idle)
    ++Counters.IdleClosed;
  H.onConnClosed(ConnId);
}

void EpollServer::wake() {
  uint64_t One = 1;
  ssize_t Ignored = ::write(WakeFd, &One, sizeof(One));
  (void)Ignored; // A full counter still wakes the loop.
}

void EpollServer::sweepIdle() {
  if (Cfg.IdleTimeoutSeconds <= 0)
    return;
  auto Now = std::chrono::steady_clock::now();
  std::vector<uint64_t> Victims;
  for (const auto &[Id, C] : Conns) {
    if (C.Outgoing)
      continue;
    double Idle = std::chrono::duration<double>(Now - C.LastActivity).count();
    if (Idle > Cfg.IdleTimeoutSeconds)
      Victims.push_back(Id);
  }
  for (uint64_t Id : Victims)
    destroyConn(Id, /*Idle=*/true);
}

void EpollServer::poll(int TimeoutMs) {
  epoll_event Events[128];
  int N = epoll_wait(EpollFd, Events, 128, TimeoutMs);
  bool Woken = false;
  for (int I = 0; I < N; ++I) {
    uint64_t Tag = Events[I].data.u64;
    if (Tag == 0) {
      uint64_t Drain = 0;
      while (::read(WakeFd, &Drain, sizeof(Drain)) > 0) {
      }
      Woken = true;
      continue;
    }
    if ((Tag & 3) == 1) {
      doAccept(static_cast<int>(Tag >> 2));
      continue;
    }
    uint64_t ConnId = Tag >> 2;
    auto It = Conns.find(ConnId);
    if (It == Conns.end())
      continue; // Closed earlier this round.
    if (Events[I].events & (EPOLLHUP | EPOLLERR)) {
      // Flush what the peer will still take, then read for EOF below.
      if (!flush(It->second))
        continue;
    }
    if (Events[I].events & EPOLLOUT) {
      if (!flush(It->second))
        continue;
      It = Conns.find(ConnId);
      if (It == Conns.end())
        continue;
    }
    if (Events[I].events & (EPOLLIN | EPOLLHUP | EPOLLERR))
      doRead(It->second);
  }
  if (Woken)
    H.onWake();
  sweepIdle();
}
