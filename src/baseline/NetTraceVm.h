//===- baseline/NetTraceVm.h - Dynamo-style NET baseline --------*- C++ -*-===//
///
/// \file
/// The baseline the paper positions itself against (section 2): Dynamo's
/// next-executing-tail (NET) trace selection [Bala et al., PLDI 2000],
/// re-implemented over the same block-dispatch substrate so the two
/// strategies are directly comparable on the paper's dependent values.
///
/// NET in brief: lightweight counters sit on potential trace heads --
/// targets of backward-taken transitions (loop headers) and the blocks
/// that follow a trace exit. When a counter crosses the hot threshold,
/// the interpreter switches to *recording* mode and captures the blocks
/// executed immediately afterwards ("the next executing tail") until a
/// backward-taken transition, an existing trace head, or the length cap
/// ends the trace. Recorded traces dispatch exactly like the BCG cache's
/// traces (entered at their head block, matched block by block, partial
/// exits allowed). Dynamo's cache-pressure heuristic is included: a burst
/// of trace creations flushes the whole cache (the paper contrasts this
/// with the BCG's targeted reconstruction, section 3.6).
///
/// The paper's qualitative claims this baseline lets the benches test:
/// NET achieves comparable coverage with much cheaper profiling, but its
/// traces complete less often (the tail is assumed, not verified) and
/// the cache is less stable.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BASELINE_NETTRACEVM_H
#define JTC_BASELINE_NETTRACEVM_H

#include "interp/BlockStepper.h"
#include "vm/VmStats.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace jtc {

struct NetConfig {
  /// Executions of a candidate head before a trace is recorded (Dynamo
  /// uses ~50).
  uint32_t HotThreshold = 50;

  /// Maximum blocks per recorded trace.
  uint32_t MaxTraceBlocks = 64;

  /// Cache-pressure flush: if more than FlushLimit traces are created
  /// within any FlushWindow block dispatches, the whole cache is flushed.
  /// Set FlushLimit to 0 to disable.
  uint64_t FlushWindow = 1 << 16;
  uint32_t FlushLimit = 64;

  /// Stop after this many executed instructions.
  uint64_t MaxInstructions = ~0ull;
};

/// One NET trace: a head block and the tail recorded after it went hot.
struct NetTrace {
  BlockId Head = InvalidBlockId;
  std::vector<BlockId> Blocks; ///< Head first; always >= 2 blocks.
  uint32_t InstrCount = 0;
  uint64_t Entered = 0;
  uint64_t Completed = 0;
};

/// Extra counters specific to the NET strategy.
struct NetStats {
  uint64_t HeadCandidates = 0; ///< Distinct counters allocated.
  uint64_t Recordings = 0;     ///< Recording sessions started.
  uint64_t Flushes = 0;        ///< Whole-cache flushes (pressure).
};

/// Runs \p PM's entry method under NET trace selection and dispatch.
/// VmStats reuses the same field meanings as TraceVM (Signals and the
/// BCG-specific fields stay zero; TracesConstructed counts recordings
/// that were installed).
class NetTraceVm {
public:
  NetTraceVm(const PreparedModule &PM, NetConfig Config);

  RunResult run();

  const VmStats &stats() const { return Stats; }
  const NetStats &netStats() const { return Net; }
  Machine &machine() { return Mach; }
  const std::vector<NetTrace> &traces() const { return Traces; }
  size_t numLiveTraces() const { return HeadToTrace.size(); }

private:
  /// True when the transition (\p From -> \p To) is backward: same
  /// method, target at or before the source block's start.
  bool isBackward(BlockId From, BlockId To) const;

  void onNonTraceTransition(BlockId Cur, BlockId Next);
  void finishRecording(bool Install);
  void flushCache();

  const PreparedModule *PM;
  NetConfig Config;
  Machine Mach;
  BlockStepper Stepper;
  VmStats Stats;
  NetStats Net;

  std::unordered_map<BlockId, uint32_t> HeadCounter;
  std::unordered_map<BlockId, uint32_t> HeadToTrace; ///< Head -> index.
  std::vector<NetTrace> Traces;

  // Execution modes.
  bool Recording = false;
  std::vector<BlockId> Record;
  int32_t ActiveTrace = -1; ///< Index into Traces, or -1.
  uint32_t TracePos = 0;

  // Flush bookkeeping.
  uint64_t WindowStart = 0;
  uint32_t WindowCreations = 0;
  /// Set after a trace exit: the next transition's target is a hot-head
  /// candidate even without a backward transition.
  bool PendingBump = false;
  bool Ran = false;
};

} // namespace jtc

#endif // JTC_BASELINE_NETTRACEVM_H
