//===- baseline/NetTraceVm.cpp --------------------------------------------===//

#include "baseline/NetTraceVm.h"

using namespace jtc;

NetTraceVm::NetTraceVm(const PreparedModule &PM, NetConfig Config)
    : PM(&PM), Config(Config), Mach(PM.module()), Stepper(PM, Mach) {}

bool NetTraceVm::isBackward(BlockId From, BlockId To) const {
  const BasicBlock &F = PM->block(From);
  const BasicBlock &T = PM->block(To);
  return F.MethodId == T.MethodId && T.StartPc <= F.StartPc;
}

void NetTraceVm::flushCache() {
  HeadToTrace.clear();
  ++Net.Flushes;
  WindowCreations = 0;
  WindowStart = Stats.BlocksExecuted;
}

void NetTraceVm::finishRecording(bool Install) {
  Recording = false;
  if (Install && Record.size() >= 2) {
    NetTrace T;
    T.Head = Record[0];
    T.Blocks = std::move(Record);
    for (BlockId B : T.Blocks)
      T.InstrCount += PM->blockSize(B);
    HeadToTrace[T.Head] = static_cast<uint32_t>(Traces.size());
    Traces.push_back(std::move(T));
    ++Stats.TracesConstructed;

    // Dynamo's cache-pressure heuristic: a burst of creations flushes
    // the whole cache (contrast with the BCG's targeted rebuilds).
    if (Config.FlushLimit != 0 && ++WindowCreations > Config.FlushLimit)
      flushCache();
  }
  Record.clear();
}

void NetTraceVm::onNonTraceTransition(BlockId Cur, BlockId Next) {
  // Roll the creation-rate window.
  if (Stats.BlocksExecuted - WindowStart >= Config.FlushWindow) {
    WindowStart = Stats.BlocksExecuted;
    WindowCreations = 0;
  }

  bool Backward = isBackward(Cur, Next);

  if (Recording) {
    // The next executing tail ends at a backward-taken transition, an
    // existing trace head, or the length cap.
    if (Record.size() >= Config.MaxTraceBlocks || Backward ||
        HeadToTrace.count(Next)) {
      finishRecording(/*Install=*/true);
      // Fall through: this transition is processed normally (it may
      // immediately enter the trace just recorded).
    } else {
      Record.push_back(Next);
      ++Stats.BlockDispatches;
      return;
    }
  }

  // Trace entry: NET dispatches on reaching a hot head.
  auto TraceIt = HeadToTrace.find(Next);
  if (TraceIt != HeadToTrace.end()) {
    ActiveTrace = static_cast<int32_t>(TraceIt->second);
    TracePos = 0;
    ++Stats.TraceDispatches;
    ++Traces[ActiveTrace].Entered;
    PendingBump = false;
    return;
  }
  ++Stats.BlockDispatches;

  // Hot-head counting: targets of backward transitions and the blocks
  // reached right after a trace exit.
  if (Backward || PendingBump) {
    uint32_t &C = HeadCounter[Next];
    if (C == 0)
      ++Net.HeadCandidates;
    if (++C >= Config.HotThreshold) {
      HeadCounter.erase(Next);
      Recording = true;
      Record.assign(1, Next);
      ++Net.Recordings;
    }
  }
  PendingBump = false;
}

RunResult NetTraceVm::run() {
  assert(!Ran && "NetTraceVm::run is single-shot");
  Ran = true;

  RunResult R;
  Stepper.start();
  BlockId Cur = Stepper.currentBlock();
  ++Stats.BlockDispatches;

  while (true) {
    BlockStepper::StepStatus S = Stepper.step(); // executes Cur
    ++Stats.BlocksExecuted;
    if (ActiveTrace >= 0) {
      NetTrace &T = Traces[static_cast<uint32_t>(ActiveTrace)];
      ++Stats.BlocksInTraces;
      Stats.InstructionsInTraces += PM->blockSize(Cur);
      if (TracePos + 1 == T.Blocks.size()) {
        ++Stats.TracesCompleted;
        ++T.Completed;
        Stats.BlocksInCompletedTraces += T.Blocks.size();
        Stats.InstructionsInCompletedTraces += T.InstrCount;
        ActiveTrace = -1;
        TracePos = 0;
        PendingBump = true; // the block after a trace is a head candidate
      }
    }

    if (S != BlockStepper::StepStatus::Continue) {
      if (Recording)
        finishRecording(/*Install=*/false);
      R.Status = S == BlockStepper::StepStatus::Finished ? RunStatus::Finished
                                                         : RunStatus::Trapped;
      R.Trap = Mach.trap();
      break;
    }
    if (Stepper.instructions() >= Config.MaxInstructions) {
      if (Recording)
        finishRecording(/*Install=*/false);
      R.Status = RunStatus::BudgetExhausted;
      break;
    }

    BlockId Next = Stepper.currentBlock();
    if (ActiveTrace >= 0) {
      NetTrace &T = Traces[static_cast<uint32_t>(ActiveTrace)];
      if (Next == T.Blocks[TracePos + 1]) {
        ++TracePos;
      } else {
        // Partial exit: the assumed tail was not executed.
        ActiveTrace = -1;
        TracePos = 0;
        PendingBump = true; // side exits are hot-head candidates too
        onNonTraceTransition(Cur, Next);
      }
    } else {
      onNonTraceTransition(Cur, Next);
    }
    Cur = Next;
  }

  Stats.Instructions = Stepper.instructions();
  Stats.LiveTraces = HeadToTrace.size();
  R.Instructions = Stats.Instructions;
  R.Dispatches = Stats.totalDispatches();
  return R;
}
