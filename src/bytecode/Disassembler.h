//===- bytecode/Disassembler.h - Textual code dumps -------------*- C++ -*-===//
///
/// \file
/// Renders instructions, methods and modules as text for the examples and
/// for debugging trace contents.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BYTECODE_DISASSEMBLER_H
#define JTC_BYTECODE_DISASSEMBLER_H

#include "bytecode/Program.h"

#include <ostream>
#include <string>

namespace jtc {

/// One instruction as "iconst 5" / "if_icmplt -> 12" / etc. \p M and
/// \p Mth provide names for call targets and switch tables when available.
std::string disassemble(const Instruction &I, const Module *M = nullptr,
                        const Method *Mth = nullptr);

/// Dumps a whole method, one "pc: text" line per instruction.
void disassembleMethod(std::ostream &OS, const Module &M, uint32_t MethodId);

/// Dumps every method, class and slot in the module.
void disassembleModule(std::ostream &OS, const Module &M);

} // namespace jtc

#endif // JTC_BYTECODE_DISASSEMBLER_H
