//===- bytecode/Program.h - Methods, classes, modules -----------*- C++ -*-===//
///
/// \file
/// The static program model: a Module owns Methods (pre-decoded code),
/// Classes (field counts plus a vtable), and virtual-call SlotInfo
/// signatures shared by all classes. This plays the role of a loaded and
/// prepared set of Java class files in the original SableVM setting.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BYTECODE_PROGRAM_H
#define JTC_BYTECODE_PROGRAM_H

#include "bytecode/Instruction.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jtc {

/// Sentinel for "no method" (e.g. an unimplemented vtable entry).
constexpr uint32_t InvalidMethod = 0xffffffffu;

/// Jump table backing a Tableswitch instruction.
///
/// A selector S maps to Targets[S - Low] when S is within
/// [Low, Low + Targets.size()), otherwise to DefaultTarget. Targets are
/// instruction indices in the owning method.
struct SwitchTable {
  int32_t Low = 0;
  std::vector<uint32_t> Targets;
  uint32_t DefaultTarget = 0;
};

/// Declared type of a value-returning method's result. The instruction set
/// carries no argument types (locals are untyped int64 slots), but return
/// types are declared so the typed verifier can reject a method that
/// returns a reference where callers were promised an integer. `Int` is
/// the default and what the textual form's historic `returns=int` means;
/// `ref` is spelled explicitly.
enum class TypeTag : uint8_t { Int, Ref };

/// One method: a name, a signature, and pre-decoded code.
///
/// For virtual methods the receiver reference is argument 0, so NumArgs
/// includes it. Locals [0, NumArgs) are initialized from the operand stack
/// at call time; the rest start as zero.
struct Method {
  std::string Name;
  uint32_t NumArgs = 0;
  uint32_t NumLocals = 0;
  bool ReturnsValue = false;
  /// Declared result type; meaningful only when ReturnsValue.
  TypeTag RetType = TypeTag::Int;
  std::vector<Instruction> Code;
  std::vector<SwitchTable> SwitchTables;
};

/// Signature of a virtual-call slot. Every class's vtable entry for a slot
/// must match its ArgCount (including the receiver) and ReturnsValue.
struct SlotInfo {
  std::string Name;
  uint32_t ArgCount = 1;
  bool ReturnsValue = false;
  /// Declared result type; meaningful only when ReturnsValue. Every
  /// implementation's RetType must agree with the slot's.
  TypeTag RetType = TypeTag::Int;
};

/// One class: instance field count and a vtable with one entry per module
/// slot (InvalidMethod where the class does not implement the slot).
struct Class {
  std::string Name;
  uint32_t NumFields = 0;
  std::vector<uint32_t> Vtable;
};

/// A complete program.
struct Module {
  std::vector<Method> Methods;
  std::vector<Class> Classes;
  std::vector<SlotInfo> Slots;
  uint32_t EntryMethod = 0;

  const Method &method(uint32_t Idx) const { return Methods[Idx]; }
  const Class &klass(uint32_t Idx) const { return Classes[Idx]; }
};

} // namespace jtc

#endif // JTC_BYTECODE_PROGRAM_H
