//===- bytecode/Opcode.cpp ------------------------------------------------===//

#include "bytecode/Opcode.h"

#include <cassert>

using namespace jtc;

namespace {

struct OpInfo {
  const char *Mnemonic;
  int8_t Pops;
  int8_t Pushes;
  OpKind Kind;
};

const OpInfo Infos[] = {
#define JTC_OPCODE(Name, Mnemonic, Pops, Pushes, Kind)                         \
  {Mnemonic, Pops, Pushes, OpKind::Kind},
#include "bytecode/Opcodes.def"
};

const OpInfo &info(Opcode Op) {
  unsigned Idx = static_cast<unsigned>(Op);
  assert(Idx < sizeof(Infos) / sizeof(Infos[0]) && "invalid opcode");
  return Infos[Idx];
}

} // namespace

unsigned jtc::numOpcodes() { return sizeof(Infos) / sizeof(Infos[0]); }

const char *jtc::mnemonic(Opcode Op) { return info(Op).Mnemonic; }

OpKind jtc::opKind(Opcode Op) { return info(Op).Kind; }

int jtc::opPops(Opcode Op) { return info(Op).Pops; }

int jtc::opPushes(Opcode Op) { return info(Op).Pushes; }

bool jtc::endsBlock(Opcode Op) { return opKind(Op) != OpKind::Normal; }
