//===- bytecode/Assembler.h - Program construction API ----------*- C++ -*-===//
///
/// \file
/// A builder API for constructing Modules in memory. The workload
/// generators, examples and tests all assemble programs through this
/// interface. Methods are declared first (so forward calls work), then
/// defined through a MethodBuilder that supports labels with back-patching.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BYTECODE_ASSEMBLER_H
#define JTC_BYTECODE_ASSEMBLER_H

#include "bytecode/Program.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace jtc {

class Assembler;

/// An unresolved branch target. Create with MethodBuilder::newLabel(),
/// place with bind(), reference from branch emitters. All labels must be
/// bound before finish().
struct Label {
  uint32_t Id = 0xffffffffu;
  bool valid() const { return Id != 0xffffffffu; }
};

/// Streams instructions into one method, resolving labels at finish().
///
/// Builders are obtained from Assembler::beginMethod() and must be
/// finished before the next beginMethod() or build() call.
class MethodBuilder {
public:
  MethodBuilder(MethodBuilder &&) = default;
  MethodBuilder(const MethodBuilder &) = delete;
  MethodBuilder &operator=(const MethodBuilder &) = delete;

  /// Creates a fresh, unbound label.
  Label newLabel();

  /// Binds \p L to the next emitted instruction. A label may be bound only
  /// once.
  void bind(Label L);

  /// Emits a raw instruction. Prefer the typed helpers below.
  void emit(Opcode Op, int32_t A = 0, int32_t B = 0);

  /// Emits a branch/jump whose target is \p L (back-patched at finish()).
  void branch(Opcode Op, Label L);

  /// Emits a tableswitch over \p Targets starting at selector \p Low with
  /// default \p Default.
  void tableswitch(int32_t Low, const std::vector<Label> &Targets,
                   Label Default);

  // Typed convenience emitters.
  void iconst(int64_t V);
  void iload(uint32_t Local) { emit(Opcode::Iload, static_cast<int32_t>(Local)); }
  void istore(uint32_t Local) { emit(Opcode::Istore, static_cast<int32_t>(Local)); }
  void iinc(uint32_t Local, int32_t Delta) {
    emit(Opcode::Iinc, static_cast<int32_t>(Local), Delta);
  }
  void invokestatic(uint32_t MethodId) {
    emit(Opcode::InvokeStatic, static_cast<int32_t>(MethodId));
  }
  void invokevirtual(uint32_t Slot) {
    emit(Opcode::InvokeVirtual, static_cast<int32_t>(Slot));
  }
  void getfield(uint32_t Field) { emit(Opcode::GetField, static_cast<int32_t>(Field)); }
  void putfield(uint32_t Field) { emit(Opcode::PutField, static_cast<int32_t>(Field)); }
  void newobj(uint32_t ClassId) { emit(Opcode::New, static_cast<int32_t>(ClassId)); }
  void ret() { emit(Opcode::Return); }
  void iret() { emit(Opcode::Ireturn); }
  void halt() { emit(Opcode::Halt); }

  /// Instruction index the next emit() will occupy.
  uint32_t nextPc() const;

  /// Resolves all label references and commits the code to the module.
  /// Asserts if any referenced label is unbound.
  void finish();

private:
  friend class Assembler;
  MethodBuilder(Assembler &Asm, uint32_t MethodId);

  Assembler *Asm;
  uint32_t MethodId;
  bool Finished = false;
  std::vector<uint32_t> LabelPcs;          // per label: bound pc or ~0
  struct Fixup {
    uint32_t Pc;       // instruction to patch
    uint32_t LabelId;  // label providing the target
    int32_t SwitchIdx; // -1: patch A; >=0: patch switch table entry
    int32_t SwitchSlot;// -1: default target, else Targets[SwitchSlot]
  };
  std::vector<Fixup> Fixups;
};

/// Accumulates slots, classes and methods into a Module.
class Assembler {
public:
  Assembler() = default;

  /// Declares a virtual-call slot shared by all classes. \p ArgCount
  /// includes the receiver. \p RetType is the declared result type
  /// (meaningful only when \p ReturnsValue); implementations must match.
  uint32_t declareSlot(const std::string &Name, uint32_t ArgCount,
                       bool ReturnsValue, TypeTag RetType = TypeTag::Int);

  /// Declares a class with \p NumFields instance fields; its vtable is
  /// sized to the current slot count (grown automatically on build()).
  uint32_t declareClass(const std::string &Name, uint32_t NumFields);

  /// Points \p ClassId's vtable entry for \p Slot at \p MethodId.
  void setVtableEntry(uint32_t ClassId, uint32_t Slot, uint32_t MethodId);

  /// Reserves a method id so other methods can call it before it is
  /// defined. NumLocals must be >= NumArgs. \p RetType declares the
  /// result type (only meaningful when \p ReturnsValue); `returns=ref`
  /// methods must provably return a reference or null.
  uint32_t declareMethod(const std::string &Name, uint32_t NumArgs,
                         uint32_t NumLocals, bool ReturnsValue,
                         TypeTag RetType = TypeTag::Int);

  /// Starts defining a previously declared method. Only one builder may be
  /// live at a time.
  MethodBuilder beginMethod(uint32_t MethodId);

  /// Selects the method executed by the VM first.
  void setEntry(uint32_t MethodId);

  /// Finalizes and returns the module. Pads every vtable to the final slot
  /// count. The assembler is left empty.
  Module build();

private:
  friend class MethodBuilder;
  Module M;
  bool BuilderLive = false;
};

} // namespace jtc

#endif // JTC_BYTECODE_ASSEMBLER_H
