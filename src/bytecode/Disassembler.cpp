//===- bytecode/Disassembler.cpp ------------------------------------------===//

#include "bytecode/Disassembler.h"

#include <sstream>

using namespace jtc;

std::string jtc::disassemble(const Instruction &I, const Module *M,
                             const Method *Mth) {
  std::ostringstream OS;
  OS << mnemonic(I.Op);
  switch (I.Op) {
  case Opcode::Iconst:
  case Opcode::Iload:
  case Opcode::Istore:
  case Opcode::New:
  case Opcode::GetField:
  case Opcode::PutField:
    OS << " " << I.A;
    break;
  case Opcode::Iinc:
    OS << " " << I.A << " by " << I.B;
    break;
  case Opcode::Goto:
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfGe:
  case Opcode::IfGt:
  case Opcode::IfLe:
  case Opcode::IfIcmpEq:
  case Opcode::IfIcmpNe:
  case Opcode::IfIcmpLt:
  case Opcode::IfIcmpGe:
  case Opcode::IfIcmpGt:
  case Opcode::IfIcmpLe:
    OS << " -> " << I.A;
    break;
  case Opcode::Tableswitch:
    OS << " table#" << I.A;
    if (Mth && I.A >= 0 && static_cast<size_t>(I.A) < Mth->SwitchTables.size()) {
      const SwitchTable &T = Mth->SwitchTables[I.A];
      OS << " low=" << T.Low << " [";
      for (size_t J = 0; J < T.Targets.size(); ++J)
        OS << (J ? "," : "") << T.Targets[J];
      OS << "] default=" << T.DefaultTarget;
    }
    break;
  case Opcode::InvokeStatic:
    OS << " #" << I.A;
    if (M && I.A >= 0 && static_cast<size_t>(I.A) < M->Methods.size())
      OS << " (" << M->Methods[I.A].Name << ")";
    break;
  case Opcode::InvokeVirtual:
    OS << " slot#" << I.A;
    if (M && I.A >= 0 && static_cast<size_t>(I.A) < M->Slots.size())
      OS << " (" << M->Slots[I.A].Name << ")";
    break;
  default:
    break;
  }
  return OS.str();
}

void jtc::disassembleMethod(std::ostream &OS, const Module &M,
                            uint32_t MethodId) {
  const Method &Mth = M.Methods[MethodId];
  OS << "method #" << MethodId << " " << Mth.Name << " (args=" << Mth.NumArgs
     << " locals=" << Mth.NumLocals
     << (Mth.ReturnsValue ? " returns int" : " returns void") << ")\n";
  for (size_t Pc = 0; Pc < Mth.Code.size(); ++Pc)
    OS << "  " << Pc << ": " << disassemble(Mth.Code[Pc], &M, &Mth) << "\n";
}

void jtc::disassembleModule(std::ostream &OS, const Module &M) {
  OS << "module: " << M.Methods.size() << " methods, " << M.Classes.size()
     << " classes, " << M.Slots.size() << " virtual slots, entry #"
     << M.EntryMethod << "\n";
  for (size_t S = 0; S < M.Slots.size(); ++S)
    OS << "slot #" << S << " " << M.Slots[S].Name
       << " (args=" << M.Slots[S].ArgCount
       << (M.Slots[S].ReturnsValue ? ", returns int" : "") << ")\n";
  for (size_t C = 0; C < M.Classes.size(); ++C) {
    const Class &Cls = M.Classes[C];
    OS << "class #" << C << " " << Cls.Name << " (fields=" << Cls.NumFields
       << ") vtable: [";
    for (size_t S = 0; S < Cls.Vtable.size(); ++S) {
      OS << (S ? "," : "");
      if (Cls.Vtable[S] == InvalidMethod)
        OS << "-";
      else
        OS << Cls.Vtable[S];
    }
    OS << "]\n";
  }
  for (uint32_t Id = 0; Id < M.Methods.size(); ++Id)
    disassembleMethod(OS, M, Id);
}
