//===- bytecode/Instruction.h - Decoded instruction -------------*- C++ -*-===//
///
/// \file
/// Fixed-width decoded instruction representation. Programs are stored
/// pre-decoded (the equivalent of SableVM's code preparation), so an
/// instruction index doubles as its program counter.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BYTECODE_INSTRUCTION_H
#define JTC_BYTECODE_INSTRUCTION_H

#include "bytecode/Opcode.h"

#include <cstdint>

namespace jtc {

/// One decoded bytecode instruction.
///
/// The meaning of A and B depends on the opcode:
///  - Iconst: A = immediate value
///  - Iload/Istore: A = local index
///  - Iinc: A = local index, B = signed delta
///  - branches/Goto: A = target instruction index
///  - Tableswitch: A = index into Method::SwitchTables
///  - InvokeStatic: A = module method index
///  - InvokeVirtual: A = vtable slot index
///  - New: A = module class index
///  - GetField/PutField: A = field slot index
struct Instruction {
  Opcode Op = Opcode::Nop;
  int32_t A = 0;
  int32_t B = 0;

  Instruction() = default;
  Instruction(Opcode Op, int32_t A = 0, int32_t B = 0) : Op(Op), A(A), B(B) {}

  bool operator==(const Instruction &O) const = default;
};

} // namespace jtc

#endif // JTC_BYTECODE_INSTRUCTION_H
