//===- bytecode/Opcode.h - Bytecode opcode set ------------------*- C++ -*-===//
///
/// \file
/// The Java-like bytecode instruction set interpreted by the VM. The set is
/// a stack-machine subset modelled on JVM bytecode: integer locals and
/// arithmetic, conditional branches, a tableswitch, static and virtual
/// invocation, object fields and integer arrays. See Opcodes.def for the
/// full list and per-opcode metadata.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BYTECODE_OPCODE_H
#define JTC_BYTECODE_OPCODE_H

#include <cstdint>

namespace jtc {

/// Classifies how an opcode affects control flow; used by basic-block
/// discovery and the verifier.
enum class OpKind : uint8_t {
  Normal, ///< Falls through to the next instruction.
  Branch, ///< Conditional branch; target instruction index in operand A.
  Jump,   ///< Unconditional branch; target in operand A.
  Switch, ///< Tableswitch; switch-table index in operand A.
  Call,   ///< Invokes another method, then resumes at the next instruction.
  Ret,    ///< Returns from the current method.
  End,    ///< Halts the virtual machine.
};

enum class Opcode : uint8_t {
#define JTC_OPCODE(Name, Mnemonic, Pops, Pushes, Kind) Name,
#include "bytecode/Opcodes.def"
};

namespace detail {

struct OpInfo {
  const char *Mnemonic;
  int8_t Pops;
  int8_t Pushes;
  OpKind Kind;
};

inline constexpr OpInfo OpInfos[] = {
#define JTC_OPCODE(Name, Mnemonic, Pops, Pushes, Kind)                         \
  {Mnemonic, Pops, Pushes, OpKind::Kind},
#include "bytecode/Opcodes.def"
};

} // namespace detail

// The metadata accessors are constexpr so both the interpreters' dispatch
// loops and the static-analysis library can fold them; keeping them in the
// header also lets jtc_analysis depend on bytecode *headers* only (no link
// dependency, so jtc_bytecode may in turn link jtc_analysis for the typed
// verifier without a cycle).

/// Number of defined opcodes.
constexpr unsigned numOpcodes() {
  return sizeof(detail::OpInfos) / sizeof(detail::OpInfos[0]);
}

/// Human-readable mnemonic, e.g. "if_icmplt".
constexpr const char *mnemonic(Opcode Op) {
  return detail::OpInfos[static_cast<unsigned>(Op)].Mnemonic;
}

/// Control-flow classification of \p Op.
constexpr OpKind opKind(Opcode Op) {
  return detail::OpInfos[static_cast<unsigned>(Op)].Kind;
}

/// Operand-stack pop count; -1 when it depends on a callee signature.
constexpr int opPops(Opcode Op) {
  return detail::OpInfos[static_cast<unsigned>(Op)].Pops;
}

/// Operand-stack push count; -1 when it depends on a callee signature.
constexpr int opPushes(Opcode Op) {
  return detail::OpInfos[static_cast<unsigned>(Op)].Pushes;
}

/// True for opcodes that terminate a basic block in the
/// direct-threaded-inlining preparation: branches, jumps, switches, calls,
/// returns and halt. A dispatch occurs after every such instruction.
constexpr bool endsBlock(Opcode Op) { return opKind(Op) != OpKind::Normal; }

} // namespace jtc

#endif // JTC_BYTECODE_OPCODE_H
