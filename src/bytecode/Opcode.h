//===- bytecode/Opcode.h - Bytecode opcode set ------------------*- C++ -*-===//
///
/// \file
/// The Java-like bytecode instruction set interpreted by the VM. The set is
/// a stack-machine subset modelled on JVM bytecode: integer locals and
/// arithmetic, conditional branches, a tableswitch, static and virtual
/// invocation, object fields and integer arrays. See Opcodes.def for the
/// full list and per-opcode metadata.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BYTECODE_OPCODE_H
#define JTC_BYTECODE_OPCODE_H

#include <cstdint>

namespace jtc {

/// Classifies how an opcode affects control flow; used by basic-block
/// discovery and the verifier.
enum class OpKind : uint8_t {
  Normal, ///< Falls through to the next instruction.
  Branch, ///< Conditional branch; target instruction index in operand A.
  Jump,   ///< Unconditional branch; target in operand A.
  Switch, ///< Tableswitch; switch-table index in operand A.
  Call,   ///< Invokes another method, then resumes at the next instruction.
  Ret,    ///< Returns from the current method.
  End,    ///< Halts the virtual machine.
};

enum class Opcode : uint8_t {
#define JTC_OPCODE(Name, Mnemonic, Pops, Pushes, Kind) Name,
#include "bytecode/Opcodes.def"
};

/// Number of defined opcodes.
unsigned numOpcodes();

/// Human-readable mnemonic, e.g. "if_icmplt".
const char *mnemonic(Opcode Op);

/// Control-flow classification of \p Op.
OpKind opKind(Opcode Op);

/// Operand-stack pop count; -1 when it depends on a callee signature.
int opPops(Opcode Op);

/// Operand-stack push count; -1 when it depends on a callee signature.
int opPushes(Opcode Op);

/// True for opcodes that terminate a basic block in the
/// direct-threaded-inlining preparation: branches, jumps, switches, calls,
/// returns and halt. A dispatch occurs after every such instruction.
bool endsBlock(Opcode Op);

} // namespace jtc

#endif // JTC_BYTECODE_OPCODE_H
