//===- bytecode/Verifier.cpp ----------------------------------------------===//

#include "bytecode/Verifier.h"

#include "analysis/Analysis.h"

#include <cassert>
#include <deque>
#include <sstream>

using namespace jtc;

namespace {

/// Per-method verification context running the abstract stack-height
/// interpretation.
class MethodVerifier {
public:
  MethodVerifier(const Module &M, uint32_t MethodId,
                 std::vector<VerifyError> &Errors)
      : M(M), Mth(M.Methods[MethodId]), MethodId(MethodId), Errors(Errors) {}

  void run();

private:
  void error(uint32_t Pc, const std::string &Msg) {
    Errors.push_back({MethodId, Pc, Msg});
  }

  /// Validates operands of the instruction at \p Pc; returns false if the
  /// instruction is malformed badly enough that flow analysis must stop.
  bool checkStatic(uint32_t Pc);

  /// Records that \p Target is reachable with stack height \p Height,
  /// enqueueing it if new and reporting merges with mismatched heights.
  void flowTo(uint32_t FromPc, uint32_t Target, int Height);

  /// Stack effect of the instruction at \p Pc given module signatures.
  void stackEffect(const Instruction &I, int &Pops, int &Pushes) const;

  const Module &M;
  const Method &Mth;
  uint32_t MethodId;
  std::vector<VerifyError> &Errors;

  static constexpr int Unreached = -1;
  std::vector<int> HeightAt; // stack height on entry, or Unreached
  std::vector<bool> StaticOk; // per-pc result of the structural sweep
  std::deque<uint32_t> Worklist;
};

bool MethodVerifier::checkStatic(uint32_t Pc) {
  const Instruction &I = Mth.Code[Pc];
  auto CodeSize = static_cast<uint32_t>(Mth.Code.size());
  switch (I.Op) {
  case Opcode::Iload:
  case Opcode::Istore:
  case Opcode::Iinc:
    if (I.A < 0 || static_cast<uint32_t>(I.A) >= Mth.NumLocals) {
      error(Pc, "local index out of range");
      return false;
    }
    return true;
  case Opcode::Goto:
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfGe:
  case Opcode::IfGt:
  case Opcode::IfLe:
  case Opcode::IfIcmpEq:
  case Opcode::IfIcmpNe:
  case Opcode::IfIcmpLt:
  case Opcode::IfIcmpGe:
  case Opcode::IfIcmpGt:
  case Opcode::IfIcmpLe:
    if (I.A < 0 || static_cast<uint32_t>(I.A) >= CodeSize) {
      error(Pc, "branch target out of range");
      return false;
    }
    return true;
  case Opcode::Tableswitch: {
    if (I.A < 0 || static_cast<size_t>(I.A) >= Mth.SwitchTables.size()) {
      error(Pc, "switch table index out of range");
      return false;
    }
    const SwitchTable &T = Mth.SwitchTables[I.A];
    if (T.DefaultTarget >= CodeSize) {
      error(Pc, "switch default target out of range");
      return false;
    }
    for (uint32_t Tgt : T.Targets)
      if (Tgt >= CodeSize) {
        error(Pc, "switch case target out of range");
        return false;
      }
    return true;
  }
  case Opcode::InvokeStatic:
    if (I.A < 0 || static_cast<size_t>(I.A) >= M.Methods.size()) {
      error(Pc, "invokestatic: unknown method");
      return false;
    }
    return true;
  case Opcode::InvokeVirtual:
    if (I.A < 0 || static_cast<size_t>(I.A) >= M.Slots.size()) {
      error(Pc, "invokevirtual: unknown slot");
      return false;
    }
    return true;
  case Opcode::New:
    if (I.A < 0 || static_cast<size_t>(I.A) >= M.Classes.size()) {
      error(Pc, "new: unknown class");
      return false;
    }
    return true;
  case Opcode::GetField:
  case Opcode::PutField:
    // The receiver's dynamic class determines the field count, so field
    // indices are range-checked at run time; only reject negatives here.
    if (I.A < 0) {
      error(Pc, "negative field index");
      return false;
    }
    return true;
  case Opcode::Ireturn:
    if (!Mth.ReturnsValue) {
      error(Pc, "ireturn in a void method");
      return false;
    }
    return true;
  case Opcode::Return:
    if (Mth.ReturnsValue) {
      error(Pc, "return in a value-returning method");
      return false;
    }
    return true;
  default:
    return true;
  }
}

void MethodVerifier::stackEffect(const Instruction &I, int &Pops,
                                 int &Pushes) const {
  Pops = opPops(I.Op);
  Pushes = opPushes(I.Op);
  if (I.Op == Opcode::InvokeStatic) {
    const Method &Callee = M.Methods[I.A];
    Pops = static_cast<int>(Callee.NumArgs);
    Pushes = Callee.ReturnsValue ? 1 : 0;
  } else if (I.Op == Opcode::InvokeVirtual) {
    const SlotInfo &Slot = M.Slots[I.A];
    Pops = static_cast<int>(Slot.ArgCount);
    Pushes = Slot.ReturnsValue ? 1 : 0;
  }
  assert(Pops >= 0 && Pushes >= 0 && "unresolved stack effect");
}

void MethodVerifier::flowTo(uint32_t FromPc, uint32_t Target, int Height) {
  if (Target >= Mth.Code.size()) {
    error(FromPc, "control falls off the end of the method");
    return;
  }
  if (HeightAt[Target] == Unreached) {
    HeightAt[Target] = Height;
    Worklist.push_back(Target);
    return;
  }
  if (HeightAt[Target] != Height)
    error(FromPc, "inconsistent stack height at merge point");
}

void MethodVerifier::run() {
  if (Mth.NumLocals < Mth.NumArgs) {
    error(0, "method declares fewer locals than arguments");
    return;
  }
  if (Mth.Code.empty()) {
    error(0, "method has no code");
    return;
  }

  // Layer 1: structural sweep over every instruction, reachable or not.
  // Unreachable code with wild operands used to be silently accepted; the
  // dataflow passes (and any tool that builds a CFG) need all targets and
  // indices to be in range, so it is rejected outright now.
  StaticOk.assign(Mth.Code.size(), true);
  for (uint32_t Pc = 0; Pc < Mth.Code.size(); ++Pc)
    StaticOk[Pc] = checkStatic(Pc);

  // A method must end in a terminator (goto/switch/return/halt). Height
  // flow reports reachable fall-offs; this rule also covers fall-offs
  // only reachable through paths the height pass cannot see.
  switch (opKind(Mth.Code.back().Op)) {
  case OpKind::Normal:
  case OpKind::Branch:
  case OpKind::Call:
    error(static_cast<uint32_t>(Mth.Code.size()) - 1,
          "method may fall off the end (last instruction is not a "
          "terminator)");
    break;
  case OpKind::Jump:
  case OpKind::Switch:
  case OpKind::Ret:
  case OpKind::End:
    break;
  }

  // Layer 2: abstract stack-height interpretation over reachable code.
  HeightAt.assign(Mth.Code.size(), Unreached);
  HeightAt[0] = 0;
  Worklist.push_back(0);

  while (!Worklist.empty()) {
    uint32_t Pc = Worklist.front();
    Worklist.pop_front();
    const Instruction &I = Mth.Code[Pc];
    if (!StaticOk[Pc])
      continue;

    int Pops = 0, Pushes = 0;
    stackEffect(I, Pops, Pushes);
    int Height = HeightAt[Pc];
    if (Height < Pops) {
      error(Pc, "operand stack underflow");
      continue;
    }
    int After = Height - Pops + Pushes;

    switch (opKind(I.Op)) {
    case OpKind::Normal:
    case OpKind::Call:
      flowTo(Pc, Pc + 1, After);
      break;
    case OpKind::Jump:
      flowTo(Pc, static_cast<uint32_t>(I.A), After);
      break;
    case OpKind::Branch:
      flowTo(Pc, static_cast<uint32_t>(I.A), After);
      flowTo(Pc, Pc + 1, After);
      break;
    case OpKind::Switch: {
      const SwitchTable &T = Mth.SwitchTables[I.A];
      flowTo(Pc, T.DefaultTarget, After);
      for (uint32_t Tgt : T.Targets)
        flowTo(Pc, Tgt, After);
      break;
    }
    case OpKind::Ret:
    case OpKind::End:
      // Leftover operand stack entries are permitted (the frame pop
      // discards them), matching JVM semantics.
      break;
    }
  }
}

/// Block index of \p Pc: the number of basic-block leaders at or before
/// it. Tolerant of malformed methods (out-of-range targets are ignored),
/// since errors are exactly where malformed code shows up.
uint32_t blockIndexOf(const Method &Mth, uint32_t Pc) {
  auto N = static_cast<uint32_t>(Mth.Code.size());
  if (Pc >= N)
    return 0;
  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  auto mark = [&](uint32_t T) {
    if (T < N)
      Leader[T] = true;
  };
  for (uint32_t P = 0; P < N; ++P) {
    const Instruction &I = Mth.Code[P];
    switch (opKind(I.Op)) {
    case OpKind::Branch:
    case OpKind::Jump:
      mark(static_cast<uint32_t>(I.A));
      break;
    case OpKind::Switch:
      if (I.A >= 0 && static_cast<size_t>(I.A) < Mth.SwitchTables.size()) {
        const SwitchTable &T = Mth.SwitchTables[I.A];
        mark(T.DefaultTarget);
        for (uint32_t Tgt : T.Targets)
          mark(Tgt);
      }
      break;
    default:
      break;
    }
    if (endsBlock(I.Op))
      mark(P + 1);
  }
  uint32_t Block = 0;
  for (uint32_t P = 1; P <= Pc; ++P)
    if (Leader[P])
      ++Block;
  return Block;
}

} // namespace

std::vector<VerifyError> jtc::verifyModule(const Module &M) {
  std::vector<VerifyError> Errors;

  if (M.EntryMethod >= M.Methods.size()) {
    Errors.push_back({0, 0, "entry method does not exist"});
    return Errors;
  }
  if (M.Methods[M.EntryMethod].NumArgs != 0)
    Errors.push_back({M.EntryMethod, 0, "entry method must take no arguments"});

  for (uint32_t Id = 0; Id < M.Methods.size(); ++Id) {
    size_t Before = Errors.size();
    MethodVerifier(M, Id, Errors).run();

    // Layer 3: typed abstract interpretation, only over methods that are
    // structurally and height-clean (the analyses assume both).
    if (Errors.size() == Before) {
      analysis::MethodCfg Cfg(M, Id);
      analysis::MethodValueFacts Facts = analysis::MethodValueFacts::compute(Cfg);
      for (const analysis::TypeError &E : analysis::checkMethodTypes(Facts))
        Errors.push_back({Id, E.Pc, E.Message});
    }
  }

  for (uint32_t C = 0; C < M.Classes.size(); ++C) {
    const Class &Cls = M.Classes[C];
    if (Cls.Vtable.size() != M.Slots.size()) {
      Errors.push_back({0, 0, "class '" + Cls.Name + "' has a mis-sized vtable"});
      continue;
    }
    for (uint32_t S = 0; S < Cls.Vtable.size(); ++S) {
      uint32_t Target = Cls.Vtable[S];
      if (Target == InvalidMethod)
        continue;
      if (Target >= M.Methods.size()) {
        Errors.push_back(
            {0, 0, "class '" + Cls.Name + "' vtable points at unknown method"});
        continue;
      }
      const Method &Impl = M.Methods[Target];
      const SlotInfo &Slot = M.Slots[S];
      if (Impl.NumArgs != Slot.ArgCount ||
          Impl.ReturnsValue != Slot.ReturnsValue ||
          (Impl.ReturnsValue && Impl.RetType != Slot.RetType))
        Errors.push_back({Target, 0,
                          "method '" + Impl.Name + "' does not match slot '" +
                              Slot.Name + "' signature"});
    }
  }

  // Annotate each error with the basic block containing its pc, so the
  // diagnostics line up with CFG-level tooling (jtc-analyze, traces).
  for (VerifyError &E : Errors)
    if (E.MethodId < M.Methods.size())
      E.Block = blockIndexOf(M.Methods[E.MethodId], E.Pc);
  return Errors;
}

bool jtc::isValid(const Module &M) { return verifyModule(M).empty(); }

std::string jtc::formatErrors(const std::vector<VerifyError> &Errors) {
  std::ostringstream OS;
  for (const VerifyError &E : Errors)
    OS << "method " << E.MethodId << " block " << E.Block << " @" << E.Pc
       << ": " << E.Message << "\n";
  return OS.str();
}
