//===- bytecode/Verifier.h - Static bytecode checking -----------*- C++ -*-===//
///
/// \file
/// A static verifier for Modules, modelled on the JVM's bytecode verifier
/// but scoped to this instruction set. It checks structural validity
/// (operand ranges, branch targets) and performs an abstract interpretation
/// of operand-stack heights so the interpreters can rely on stack
/// discipline and skip dynamic underflow checks.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BYTECODE_VERIFIER_H
#define JTC_BYTECODE_VERIFIER_H

#include "bytecode/Program.h"

#include <string>
#include <vector>

namespace jtc {

/// One verification failure, with enough location info to act on it.
struct VerifyError {
  uint32_t MethodId = 0;
  uint32_t Pc = 0;
  std::string Message;
};

/// Verifies \p M and returns all errors found (empty = valid).
///
/// Checks, per method: local indices in range; branch/switch targets in
/// range; call targets and slot indices valid; call-site stack depth
/// sufficient; Ireturn only in value-returning methods (and vice versa);
/// no path falls off the end of the code; operand stack heights consistent
/// at merge points and never negative. Checks, per class: vtable entries
/// match their slot signature. Checks that the entry method exists and
/// takes no arguments.
std::vector<VerifyError> verifyModule(const Module &M);

/// Convenience wrapper: true when verifyModule() reports no errors.
bool isValid(const Module &M);

/// Renders errors as "method 3 @12: message" lines for diagnostics.
std::string formatErrors(const std::vector<VerifyError> &Errors);

} // namespace jtc

#endif // JTC_BYTECODE_VERIFIER_H
