//===- bytecode/Verifier.h - Static bytecode checking -----------*- C++ -*-===//
///
/// \file
/// A static verifier for Modules, modelled on the JVM's bytecode verifier
/// but scoped to this instruction set. It checks structural validity
/// (operand ranges, branch targets) and performs an abstract interpretation
/// of operand-stack heights so the interpreters can rely on stack
/// discipline and skip dynamic underflow checks.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BYTECODE_VERIFIER_H
#define JTC_BYTECODE_VERIFIER_H

#include "bytecode/Program.h"

#include <string>
#include <vector>

namespace jtc {

/// One verification failure, with enough location info to act on it.
/// Block is the index of the basic block containing Pc (0 when the
/// method is too malformed for block discovery); it is filled in by
/// verifyModule so diagnostics can be correlated with CFG-level tools.
struct VerifyError {
  uint32_t MethodId = 0;
  uint32_t Pc = 0;
  std::string Message;
  uint32_t Block = 0;
};

/// Verifies \p M and returns all errors found (empty = valid).
///
/// Runs in three layers, cheapest first:
///  1. Structural: every instruction's operands in range (including
///     unreachable ones), Ireturn/Return matching the signature, and the
///     method's last instruction being a terminator so control cannot
///     fall off the end through any path, reachable or not.
///  2. Stack heights: abstract interpretation of operand-stack depth
///     (underflow, merge consistency) -- the fast pass the interpreters
///     rely on to skip dynamic underflow checks.
///  3. Types: for methods clean under 1-2, the analysis library's typed
///     abstract interpretation (see analysis/TypeCheck.h) rejects
///     reference/integer confusion, provably-null receivers,
///     type-inconsistent merges and wrong-typed returns.
/// Checks, per class: vtable entries match their slot signature
/// (including the declared return type). Checks that the entry method
/// exists and takes no arguments.
std::vector<VerifyError> verifyModule(const Module &M);

/// Convenience wrapper: true when verifyModule() reports no errors.
bool isValid(const Module &M);

/// Renders errors as "method 3 block 1 @12: message" lines for
/// diagnostics.
std::string formatErrors(const std::vector<VerifyError> &Errors);

} // namespace jtc

#endif // JTC_BYTECODE_VERIFIER_H
