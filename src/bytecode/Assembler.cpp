//===- bytecode/Assembler.cpp ---------------------------------------------===//

#include "bytecode/Assembler.h"

#include <limits>

using namespace jtc;

static constexpr uint32_t UnboundPc = 0xffffffffu;

//===----------------------------------------------------------------------===//
// MethodBuilder
//===----------------------------------------------------------------------===//

MethodBuilder::MethodBuilder(Assembler &A, uint32_t Id)
    : Asm(&A), MethodId(Id) {}

Label MethodBuilder::newLabel() {
  Label L;
  L.Id = static_cast<uint32_t>(LabelPcs.size());
  LabelPcs.push_back(UnboundPc);
  return L;
}

void MethodBuilder::bind(Label L) {
  assert(L.valid() && L.Id < LabelPcs.size() && "unknown label");
  assert(LabelPcs[L.Id] == UnboundPc && "label bound twice");
  LabelPcs[L.Id] = nextPc();
}

uint32_t MethodBuilder::nextPc() const {
  return static_cast<uint32_t>(Asm->M.Methods[MethodId].Code.size());
}

void MethodBuilder::emit(Opcode Op, int32_t A, int32_t B) {
  assert(!Finished && "emit after finish");
  Asm->M.Methods[MethodId].Code.emplace_back(Op, A, B);
}

void MethodBuilder::branch(Opcode Op, Label L) {
  assert((opKind(Op) == OpKind::Branch || opKind(Op) == OpKind::Jump) &&
         "branch() requires a branch or jump opcode");
  assert(L.valid() && "branch to invalid label");
  Fixups.push_back({nextPc(), L.Id, /*SwitchIdx=*/-1, /*SwitchSlot=*/-1});
  emit(Op, /*A=*/0);
}

void MethodBuilder::tableswitch(int32_t Low, const std::vector<Label> &Targets,
                                Label Default) {
  Method &M = Asm->M.Methods[MethodId];
  auto TableIdx = static_cast<int32_t>(M.SwitchTables.size());
  SwitchTable Table;
  Table.Low = Low;
  Table.Targets.resize(Targets.size(), 0);
  for (size_t I = 0; I < Targets.size(); ++I) {
    assert(Targets[I].valid() && "switch target label invalid");
    Fixups.push_back({nextPc(), Targets[I].Id, TableIdx,
                      static_cast<int32_t>(I)});
  }
  assert(Default.valid() && "switch default label invalid");
  Fixups.push_back({nextPc(), Default.Id, TableIdx, /*SwitchSlot=*/-1});
  M.SwitchTables.push_back(std::move(Table));
  emit(Opcode::Tableswitch, TableIdx);
}

void MethodBuilder::iconst(int64_t V) {
  // The instruction encoding carries 32-bit immediates; the workloads only
  // need that range.
  assert(V >= std::numeric_limits<int32_t>::min() &&
         V <= std::numeric_limits<int32_t>::max() &&
         "iconst immediate out of 32-bit range");
  emit(Opcode::Iconst, static_cast<int32_t>(V));
}

void MethodBuilder::finish() {
  assert(!Finished && "finish called twice");
  Method &M = Asm->M.Methods[MethodId];
  for (const Fixup &F : Fixups) {
    uint32_t Target = LabelPcs[F.LabelId];
    assert(Target != UnboundPc && "branch to unbound label");
    if (F.SwitchIdx < 0) {
      M.Code[F.Pc].A = static_cast<int32_t>(Target);
      continue;
    }
    SwitchTable &Table = M.SwitchTables[F.SwitchIdx];
    if (F.SwitchSlot < 0)
      Table.DefaultTarget = Target;
    else
      Table.Targets[F.SwitchSlot] = Target;
  }
  Finished = true;
  Asm->BuilderLive = false;
}

//===----------------------------------------------------------------------===//
// Assembler
//===----------------------------------------------------------------------===//

uint32_t Assembler::declareSlot(const std::string &Name, uint32_t ArgCount,
                                bool ReturnsValue, TypeTag RetType) {
  assert(ArgCount >= 1 && "virtual slots include the receiver argument");
  auto Id = static_cast<uint32_t>(M.Slots.size());
  M.Slots.push_back({Name, ArgCount, ReturnsValue, RetType});
  return Id;
}

uint32_t Assembler::declareClass(const std::string &Name, uint32_t NumFields) {
  auto Id = static_cast<uint32_t>(M.Classes.size());
  Class C;
  C.Name = Name;
  C.NumFields = NumFields;
  C.Vtable.assign(M.Slots.size(), InvalidMethod);
  M.Classes.push_back(std::move(C));
  return Id;
}

void Assembler::setVtableEntry(uint32_t ClassId, uint32_t Slot,
                               uint32_t MethodId) {
  assert(ClassId < M.Classes.size() && "unknown class");
  assert(Slot < M.Slots.size() && "unknown slot");
  assert(MethodId < M.Methods.size() && "unknown method");
  Class &C = M.Classes[ClassId];
  if (C.Vtable.size() < M.Slots.size())
    C.Vtable.resize(M.Slots.size(), InvalidMethod);
  C.Vtable[Slot] = MethodId;
}

uint32_t Assembler::declareMethod(const std::string &Name, uint32_t NumArgs,
                                  uint32_t NumLocals, bool ReturnsValue,
                                  TypeTag RetType) {
  assert(NumLocals >= NumArgs && "locals must cover the arguments");
  auto Id = static_cast<uint32_t>(M.Methods.size());
  Method Mth;
  Mth.Name = Name;
  Mth.NumArgs = NumArgs;
  Mth.NumLocals = NumLocals;
  Mth.ReturnsValue = ReturnsValue;
  Mth.RetType = RetType;
  M.Methods.push_back(std::move(Mth));
  return Id;
}

MethodBuilder Assembler::beginMethod(uint32_t MethodId) {
  assert(MethodId < M.Methods.size() && "unknown method");
  assert(!BuilderLive && "previous MethodBuilder not finished");
  assert(M.Methods[MethodId].Code.empty() && "method defined twice");
  BuilderLive = true;
  return MethodBuilder(*this, MethodId);
}

void Assembler::setEntry(uint32_t MethodId) {
  assert(MethodId < M.Methods.size() && "unknown method");
  M.EntryMethod = MethodId;
}

Module Assembler::build() {
  assert(!BuilderLive && "a MethodBuilder is still live");
  for (Class &C : M.Classes)
    if (C.Vtable.size() < M.Slots.size())
      C.Vtable.resize(M.Slots.size(), InvalidMethod);
  Module Out = std::move(M);
  M = Module();
  return Out;
}
