//===- persist/ByteStream.cpp ---------------------------------------------===//

#include "persist/ByteStream.h"

#include <cassert>

using namespace jtc;
using namespace jtc::persist;

void ByteWriter::u16(uint16_t V) {
  u8(static_cast<uint8_t>(V));
  u8(static_cast<uint8_t>(V >> 8));
}

void ByteWriter::u32(uint32_t V) {
  u16(static_cast<uint16_t>(V));
  u16(static_cast<uint16_t>(V >> 16));
}

void ByteWriter::u64(uint64_t V) {
  u32(static_cast<uint32_t>(V));
  u32(static_cast<uint32_t>(V >> 32));
}

void ByteWriter::varint(uint64_t V) {
  while (V >= 0x80) {
    u8(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  u8(static_cast<uint8_t>(V));
}

void ByteWriter::svarint(int64_t V) {
  // Zigzag: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ...
  varint((static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63));
}

void ByteWriter::patchU32(size_t At, uint32_t V) {
  assert(At + 4 <= Buf.size() && "patch out of range");
  for (int I = 0; I < 4; ++I)
    Buf[At + I] = static_cast<uint8_t>(V >> (I * 8));
}

bool ByteReader::u8(uint8_t &V) {
  if (Failed || Cur == End) {
    Failed = true;
    return false;
  }
  V = *Cur++;
  return true;
}

bool ByteReader::u16(uint16_t &V) {
  const uint8_t *P;
  if (!span(2, P))
    return false;
  V = static_cast<uint16_t>(P[0] | (P[1] << 8));
  return true;
}

bool ByteReader::u32(uint32_t &V) {
  const uint8_t *P;
  if (!span(4, P))
    return false;
  V = static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
      (static_cast<uint32_t>(P[2]) << 16) |
      (static_cast<uint32_t>(P[3]) << 24);
  return true;
}

bool ByteReader::u64(uint64_t &V) {
  uint32_t Lo, Hi;
  if (!u32(Lo) || !u32(Hi))
    return false;
  V = static_cast<uint64_t>(Lo) | (static_cast<uint64_t>(Hi) << 32);
  return true;
}

bool ByteReader::varint(uint64_t &V) {
  uint64_t Out = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    uint8_t B;
    if (!u8(B))
      return false;
    Out |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80)) {
      // Reject non-canonical overlong final groups that would shift bits
      // off the top (only possible in the 10th byte, shift 63).
      if (Shift == 63 && (B >> 1) != 0) {
        Failed = true;
        return false;
      }
      V = Out;
      return true;
    }
  }
  Failed = true; // 10 continuation bytes: not a 64-bit varint.
  return false;
}

bool ByteReader::svarint(int64_t &V) {
  uint64_t Z;
  if (!varint(Z))
    return false;
  V = static_cast<int64_t>(Z >> 1) ^ -static_cast<int64_t>(Z & 1);
  return true;
}

bool ByteReader::span(size_t Size, const uint8_t *&Data) {
  if (Failed || static_cast<size_t>(End - Cur) < Size) {
    Failed = true;
    return false;
  }
  Data = Cur;
  Cur += Size;
  return true;
}
