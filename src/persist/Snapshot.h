//===- persist/Snapshot.h - Durable profile snapshots -----------*- C++ -*-===//
///
/// \file
/// The persist subsystem: durable, validated serialization of a TraceVM's
/// adaptive state -- BCG edge counters with their decay phase, the live
/// trace set with its retirement bookkeeping, and the fingerprint of the
/// module it was all learned over -- as a versioned, checksummed binary
/// .jtcp file (SnapshotFormat.h). This is what lets a restarted process
/// resume hot: the warm handoff of the server layer survives only within
/// one process, while a .jtcp snapshot carries the same VmSeed across
/// process boundaries and machine reboots.
///
/// Loading never trusts the file. The pipeline is:
///
///   bytes --decode--> SnapshotData     strict structural parse: magic,
///                                      version, layout flags, per-section
///                                      CRC32, bounds-checked varints
///         --fingerprint--> gate        snapshot must match the module
///         --validateSeed--> gate       every block id in range, traces
///                                      well-formed, entries unique
///         --completion filter-->       donor traces that had already
///                                      failed retirement are dropped
///         --importSeed--> installed    through the same VmSeed path the
///                                      in-process warm handoff uses
///
/// Any failure surfaces as a typed PersistError; nothing is partially
/// installed. Seeds are only ever installed over modules the bytecode
/// verifier (including the typed pass) has already accepted -- every
/// PreparedModule in the system is constructed from verified modules --
/// so a loaded trace can reference only blocks the verifier proved
/// well-formed.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_PERSIST_SNAPSHOT_H
#define JTC_PERSIST_SNAPSHOT_H

#include "persist/PersistError.h"
#include "vm/TraceVM.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jtc {
namespace persist {

/// Everything a .jtcp file carries, in memory: the portable VmSeed plus
/// the provenance tags (module fingerprint, donor maturity) the loader
/// gates on.
struct SnapshotData {
  uint64_t Fingerprint = 0; ///< moduleFingerprint of the donor's module.
  uint64_t DonorBlocks = 0; ///< Blocks the donor had executed at capture.
  VmSeed Seed;

  bool empty() const { return Seed.empty(); }
};

/// Captures \p VM's current adaptive state, tagged with its module's
/// fingerprint. Usable after (or during) the donor's run.
SnapshotData captureSnapshot(const TraceVM &VM);

/// Serializes \p S into .jtcp bytes (deterministic for a given input).
std::vector<uint8_t> encodeSnapshot(const SnapshotData &S);

/// Strictly parses .jtcp bytes. On success fills \p Out and returns true;
/// on any structural problem returns false with \p Err set and \p Out
/// untouched. Never exhibits undefined behaviour on arbitrary input.
bool decodeSnapshot(const uint8_t *Data, size_t Size, SnapshotData &Out,
                    PersistError &Err);

/// Re-validates a decoded seed against the module it is about to be
/// installed over: every node and trace block id must name a block of
/// \p PM, node pairs and trace entry pairs must be unique, and per-trace
/// bookkeeping must be internally consistent. Returns false with \p Err
/// (IncompatibleSeed) on the first violation.
bool validateSeed(const VmSeed &Seed, const PreparedModule &PM,
                  PersistError &Err);

/// Order-sensitive FNV-1a digest of a seed's installable state: node
/// counters and trace contents, excluding the donor-side Entered /
/// Completed history (which seeding intentionally resets). Equal digests
/// mean a fresh session seeded from either state installs identical
/// profiler and cache contents -- the round-trip property the fuzzer
/// audits.
uint64_t seedDigest(const VmSeed &Seed);

/// Writes \p S to \p Path atomically (temp file + rename), so a crash
/// mid-checkpoint can never leave a torn file where a good snapshot was.
bool saveSnapshotFile(const SnapshotData &S, const std::string &Path,
                      PersistError &Err);

/// Reads and strictly decodes \p Path.
bool loadSnapshotFile(const std::string &Path, SnapshotData &Out,
                      PersistError &Err);

/// What a successful loadProfile installed (for logs / JSON).
struct LoadReport {
  size_t Nodes = 0;
  size_t Traces = 0;
  /// Donor traces dropped by the completion filter: their observed
  /// completion had already fallen below threshold - margin over at
  /// least RetirementCheckEntries donor entries, so re-installing them
  /// would only re-run the retirement they already failed.
  size_t TracesDroppedByCompletion = 0;
  uint64_t DonorBlocks = 0;
};

/// The full load pipeline (see file comment) against \p VM, which must
/// not have run yet. On success installs the seed and records a
/// SnapshotLoaded telemetry event; on failure records SnapshotRejected
/// and installs nothing. Components disabled by the VM's options
/// (profiling / traces) are skipped exactly as importSeed does.
bool loadProfile(TraceVM &VM, const std::string &Path, LoadReport &Report,
                 PersistError &Err);

/// Captures \p VM and writes \p Path atomically; records a SnapshotSaved
/// telemetry event. \p VM is non-const only for the event ring.
bool saveProfile(TraceVM &VM, const std::string &Path, PersistError &Err);

/// Honours VmOptions::loadProfilePath() when set (no-op otherwise):
/// call between construction and run().
bool applyProfileOptions(TraceVM &VM, LoadReport &Report, PersistError &Err);

/// Honours VmOptions::saveProfilePath() when set (no-op otherwise):
/// call after run().
bool finishProfileOptions(TraceVM &VM, PersistError &Err);

} // namespace persist
} // namespace jtc

#endif // JTC_PERSIST_SNAPSHOT_H
