//===- persist/PersistError.cpp -------------------------------------------===//

#include "persist/PersistError.h"

using namespace jtc;
using namespace jtc::persist;

const char *persist::persistErrorKindName(PersistErrorKind K) {
  switch (K) {
  case PersistErrorKind::None:
    return "ok";
  case PersistErrorKind::Io:
    return "io";
  case PersistErrorKind::BadMagic:
    return "bad-magic";
  case PersistErrorKind::VersionSkew:
    return "version-skew";
  case PersistErrorKind::LayoutUnsupported:
    return "layout-unsupported";
  case PersistErrorKind::Truncated:
    return "truncated";
  case PersistErrorKind::ChecksumMismatch:
    return "checksum-mismatch";
  case PersistErrorKind::Malformed:
    return "malformed";
  case PersistErrorKind::FingerprintMismatch:
    return "fingerprint-mismatch";
  case PersistErrorKind::IncompatibleSeed:
    return "incompatible-seed";
  }
  return "unknown";
}

std::string PersistError::message() const {
  std::string M = persistErrorKindName(Kind);
  if (!Detail.empty()) {
    M += ": ";
    M += Detail;
  }
  return M;
}
