//===- persist/PersistError.cpp -------------------------------------------===//

#include "persist/PersistError.h"

using namespace jtc;
using namespace jtc::persist;

const char *persist::persistErrorKindName(PersistErrorKind K) {
  switch (K) {
  case PersistErrorKind::None:
    return "ok";
  case PersistErrorKind::Io:
    return "io";
  case PersistErrorKind::BadMagic:
    return "bad-magic";
  case PersistErrorKind::VersionSkew:
    return "version-skew";
  case PersistErrorKind::LayoutUnsupported:
    return "layout-unsupported";
  case PersistErrorKind::Truncated:
    return "truncated";
  case PersistErrorKind::ChecksumMismatch:
    return "checksum-mismatch";
  case PersistErrorKind::Malformed:
    return "malformed";
  case PersistErrorKind::FingerprintMismatch:
    return "fingerprint-mismatch";
  case PersistErrorKind::IncompatibleSeed:
    return "incompatible-seed";
  }
  return "unknown";
}

const ErrorDomain &persist::persistErrorDomain() {
  static const ErrorDomain Dom = {"persist", [](uint32_t Code) {
                                    return persistErrorKindName(
                                        static_cast<PersistErrorKind>(Code));
                                  }};
  return Dom;
}

TypedError PersistError::typed() const {
  if (ok())
    return TypedError();
  return TypedError(persistErrorDomain(), static_cast<uint32_t>(Kind), Detail);
}

std::string PersistError::message() const { return typed().message(); }
