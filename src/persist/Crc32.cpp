//===- persist/Crc32.cpp --------------------------------------------------===//

#include "persist/Crc32.h"

#include <array>

using namespace jtc;

namespace {

/// The 256-entry table for the reflected 0xEDB88320 polynomial, computed
/// once at static-initialization time (constexpr, so actually at compile
/// time).
constexpr std::array<uint32_t, 256> makeTable() {
  std::array<uint32_t, 256> T{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    T[I] = C;
  }
  return T;
}

constexpr std::array<uint32_t, 256> Table = makeTable();

} // namespace

uint32_t persist::crc32Update(uint32_t State, const uint8_t *Data,
                              size_t Size) {
  for (size_t I = 0; I < Size; ++I)
    State = Table[(State ^ Data[I]) & 0xff] ^ (State >> 8);
  return State;
}

uint32_t persist::crc32(const uint8_t *Data, size_t Size) {
  return crc32Final(crc32Update(crc32Init(), Data, Size));
}
