//===- persist/SnapshotFormat.h - .jtcp wire-format constants ---*- C++ -*-===//
///
/// \file
/// The on-disk layout of a .jtcp durable profile snapshot, version 1:
///
///   header (12 bytes):
///     u8[4]  magic        "JTCP"
///     u16    version      FormatVersion (little-endian, like all ints)
///     u16    layout       layout-capability flags; a loader rejects any
///                         flag it does not implement (LayoutUnsupported)
///     u32    sections     section count (v1: exactly 3)
///   then each section, in the fixed order Meta, Nodes, Traces:
///     u8     tag          'M' / 'N' / 'T'
///     u32    length       payload byte count
///     u8[length] payload
///     u32    crc32        CRC-32 (0xEDB88320, reflected) of the payload
///   nothing may follow the last section.
///
/// Section payloads (all varints are LEB128; all signed values zigzag):
///
///   Meta:   u64 module fingerprint, u64 donor blocks executed,
///           varint node count, varint trace count. The counts are
///           deliberately redundant with the Nodes/Traces sections and
///           cross-checked on load.
///   Nodes:  per node: svarint dFrom (delta vs. previous node's From),
///           svarint dTo (delta vs. this node's From), varint start-delay
///           left, varint since-decay, varint executions, varint
///           correlation count; per correlation: svarint dSucc (delta vs.
///           the previous successor, starting from To), varint count
///           (<= 0xffff).
///   Traces: per trace: svarint dEntryFrom (delta vs. previous trace's
///           EntryFrom), varint block count (>= 2); per block: svarint
///           delta vs. the previous block (starting from EntryFrom); then
///           u64 expected-completion IEEE-754 bits, varint entered,
///           varint completed (<= entered).
///
/// Block ids cluster (a trace is a path through neighbouring blocks; the
/// node table is sorted by creation order, which follows execution
/// locality), so the zigzag deltas keep hot-path ids to one or two bytes
/// -- the same trick hardware branch-trace formats use for address
/// streams.
///
/// Versioning policy: Version is bumped for any change a v-old loader
/// cannot safely ignore; there are no optional backward-compatible
/// extensions in the header itself -- new capabilities get a layout flag,
/// and a loader that sees an unknown flag refuses rather than guessing.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_PERSIST_SNAPSHOTFORMAT_H
#define JTC_PERSIST_SNAPSHOTFORMAT_H

#include <cstdint>

namespace jtc {
namespace persist {

/// "JTCP", as the first four file bytes.
inline constexpr uint8_t Magic[4] = {'J', 'T', 'C', 'P'};

/// The (single) format version this build reads and writes.
inline constexpr uint16_t FormatVersion = 1;

/// Layout flags. v1 always sets LayoutVarintDelta; any other bit is
/// from a future writer and makes this loader refuse.
inline constexpr uint16_t LayoutVarintDelta = 0x0001;
inline constexpr uint16_t SupportedLayoutMask = LayoutVarintDelta;

/// Section tags, in required file order.
inline constexpr uint8_t SectionMeta = 'M';
inline constexpr uint8_t SectionNodes = 'N';
inline constexpr uint8_t SectionTraces = 'T';
inline constexpr uint32_t NumSections = 3;

/// Fixed header size (magic + version + layout + section count).
inline constexpr size_t HeaderSize = 12;

} // namespace persist
} // namespace jtc

#endif // JTC_PERSIST_SNAPSHOTFORMAT_H
