//===- persist/SnapshotMerge.h - Merging .jtcp profile snapshots -*- C++ -*-===//
///
/// \file
/// Deterministic merging of profile snapshots captured over the *same*
/// module by different sessions, processes or machines -- the primitive
/// under the fleet's profile-aggregation tier and the `jtcvm
/// --merge-profiles` CLI. A merged snapshot is what a freshly booted
/// shard loads so it starts disk-warm from the fleet's collective
/// profile rather than any single donor's.
///
/// Merge semantics are chosen so aggregation is safe to repeat, reorder
/// and re-apply (aggregators crash, shards double-report):
///
///  - BCG counters merge by element-wise MAX, keyed by (from, to) node
///    and per-successor correlation target. Max is commutative,
///    associative and idempotent, so merging a snapshot with itself is
///    the identity (up to canonical ordering) and the aggregation tier
///    can fold shard checkpoints in any order, any number of times.
///    Summing would double-count a shard that reported twice.
///  - Decay-epoch reconciliation: counters captured at different decay
///    phases are not directly comparable (an older capture has been
///    halved fewer times at a lower execution count). Each snapshot's
///    DonorBlocks is its decay epoch -- the donor's logical clock at
///    capture -- and the merged snapshot takes the MAX epoch; per-node
///    scalar state that cannot be averaged (start-delay remaining,
///    blocks since the last decay pass) reconciles toward the most
///    mature side: min(StartDelayLeft), max(SinceDecay), max(Execs).
///  - Traces dedup by fingerprint (entry pair + exact block sequence).
///    Duplicates keep the max of either side's Entered / Completed
///    history, and the persist layer's donor-completion filter then
///    drops traces whose merged history already failed the retirement
///    bar -- the same filter loadProfile applies on installation.
///
/// Output is canonical: nodes sorted by (from, to), correlations by
/// target block, traces by (entry, blocks). Two merges over the same
/// multiset of inputs are byte-identical however the inputs were
/// ordered.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_PERSIST_SNAPSHOTMERGE_H
#define JTC_PERSIST_SNAPSHOTMERGE_H

#include "persist/Snapshot.h"
#include "trace/TraceConfig.h"

#include <string>
#include <vector>

namespace jtc {
namespace persist {

/// Structure-only fingerprint of one portable trace: entry pair plus the
/// exact block sequence (not its execution history). Two seeds with equal
/// fingerprints are the same trace observed by different sessions.
uint64_t traceFingerprint(const TraceCache::TraceSeed &T);

/// The load-time donor-completion filter (shared by loadProfile and the
/// merge pipeline): true when \p T 's donor history does NOT already
/// prove it a retirement candidate under \p TC.
bool passesCompletionFilter(const TraceCache::TraceSeed &T,
                            const TraceConfig &TC);

/// Canonical ordering: nodes by (From, To) with correlations by target
/// block; traces by (EntryFrom, Blocks, Entered, Completed). merge
/// results are always canonical; canonicalizing is idempotent.
SnapshotData canonicalSnapshot(SnapshotData S);

/// What a merge did (for logs / JSON / CLI).
struct MergeReport {
  size_t Inputs = 0;
  size_t Nodes = 0;       ///< Distinct (from, to) nodes in the output.
  size_t Traces = 0;      ///< Traces kept in the output.
  size_t TracesDeduped = 0; ///< Duplicate observations folded away.
  size_t TracesDroppedByCompletion = 0;
  uint64_t Epoch = 0;     ///< Output DonorBlocks (max input epoch).
};

/// Merges \p Inputs (at least one) into \p Out under the semantics above.
/// All inputs must carry the same module fingerprint; a mismatch is a
/// typed FingerprintMismatch error and \p Out is untouched. \p TC drives
/// the donor-completion filter.
bool mergeSnapshots(const std::vector<SnapshotData> &Inputs,
                    const TraceConfig &TC, SnapshotData &Out,
                    MergeReport &Report, PersistError &Err);

/// File-level convenience: strictly loads every input .jtcp, merges, and
/// atomically writes \p OutPath. Any load failure is that file's typed
/// error with the path in the detail.
bool mergeSnapshotFiles(const std::vector<std::string> &InPaths,
                        const std::string &OutPath, const TraceConfig &TC,
                        MergeReport &Report, PersistError &Err);

} // namespace persist
} // namespace jtc

#endif // JTC_PERSIST_SNAPSHOTMERGE_H
