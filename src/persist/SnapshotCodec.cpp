//===- persist/SnapshotCodec.cpp - .jtcp encode / decode ------------------===//
///
/// The codec proper. Encoding is straightforward; decoding is written
/// defensively throughout: every count is bounded by the bytes that could
/// plausibly back it before anything is allocated, every delta is
/// range-checked before the arithmetic that consumes it, and each section
/// must be consumed exactly. The rule is that arbitrary input bytes land
/// in a typed PersistError, never in UB or a partially filled result.
///
//===----------------------------------------------------------------------===//

#include "persist/ByteStream.h"
#include "persist/Crc32.h"
#include "persist/Snapshot.h"
#include "persist/SnapshotFormat.h"

#include "support/Ids.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_set>

using namespace jtc;
using namespace jtc::persist;

namespace {

bool fail(PersistError &Err, PersistErrorKind K, std::string Detail) {
  Err = PersistError::make(K, std::move(Detail));
  return false;
}

uint64_t doubleBits(double V) {
  uint64_t B;
  std::memcpy(&B, &V, sizeof(B));
  return B;
}

double bitsDouble(uint64_t B) {
  double V;
  std::memcpy(&V, &B, sizeof(V));
  return V;
}

/// Applies a decoded zigzag delta to a block-id base. Rejects deltas that
/// could overflow the arithmetic and results outside the valid id range
/// (InvalidBlockId is excluded: it never names a real block).
bool applyDelta(BlockId Base, int64_t Delta, BlockId &Out) {
  constexpr int64_t Bound = int64_t(1) << 33;
  if (Delta > Bound || Delta < -Bound)
    return false;
  int64_t V = static_cast<int64_t>(Base) + Delta;
  if (V < 0 || V >= static_cast<int64_t>(InvalidBlockId))
    return false;
  Out = static_cast<BlockId>(V);
  return true;
}

void writeSection(ByteWriter &W, uint8_t Tag, const ByteWriter &Payload) {
  W.u8(Tag);
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.bytes(Payload.buffer().data(), Payload.size());
  W.u32(crc32(Payload.buffer().data(), Payload.size()));
}

} // namespace

std::vector<uint8_t> persist::encodeSnapshot(const SnapshotData &S) {
  // Meta.
  ByteWriter Meta;
  Meta.u64(S.Fingerprint);
  Meta.u64(S.DonorBlocks);
  Meta.varint(S.Seed.Nodes.size());
  Meta.varint(S.Seed.Traces.size());

  // Nodes: delta chains over (From) across nodes and (successor) within
  // a node's correlation list.
  ByteWriter Nodes;
  BlockId PrevFrom = 0;
  for (const BcgNodeSnapshot &N : S.Seed.Nodes) {
    Nodes.svarint(static_cast<int64_t>(N.From) -
                  static_cast<int64_t>(PrevFrom));
    Nodes.svarint(static_cast<int64_t>(N.To) - static_cast<int64_t>(N.From));
    Nodes.varint(N.StartDelayLeft);
    Nodes.varint(N.SinceDecay);
    Nodes.varint(N.Execs);
    Nodes.varint(N.Corrs.size());
    BlockId PrevSucc = N.To;
    for (const auto &[Succ, Count] : N.Corrs) {
      Nodes.svarint(static_cast<int64_t>(Succ) -
                    static_cast<int64_t>(PrevSucc));
      Nodes.varint(Count);
      PrevSucc = Succ;
    }
    PrevFrom = N.From;
  }

  // Traces: delta chains over (EntryFrom) across traces and (block)
  // within a trace's path.
  ByteWriter TracesW;
  BlockId PrevEntry = 0;
  for (const TraceCache::TraceSeed &T : S.Seed.Traces) {
    TracesW.svarint(static_cast<int64_t>(T.EntryFrom) -
                    static_cast<int64_t>(PrevEntry));
    TracesW.varint(T.Blocks.size());
    BlockId Prev = T.EntryFrom;
    for (BlockId B : T.Blocks) {
      TracesW.svarint(static_cast<int64_t>(B) - static_cast<int64_t>(Prev));
      Prev = B;
    }
    TracesW.u64(doubleBits(T.ExpectedCompletion));
    TracesW.varint(T.Entered);
    TracesW.varint(T.Completed);
    PrevEntry = T.EntryFrom;
  }

  ByteWriter Out;
  Out.bytes(Magic, sizeof(Magic));
  Out.u16(FormatVersion);
  Out.u16(LayoutVarintDelta);
  Out.u32(NumSections);
  writeSection(Out, SectionMeta, Meta);
  writeSection(Out, SectionNodes, Nodes);
  writeSection(Out, SectionTraces, TracesW);
  return Out.take();
}

namespace {

struct Section {
  const uint8_t *Data = nullptr;
  size_t Size = 0;
};

/// Reads one framed section: tag, length, payload, CRC. The CRC check
/// runs before any payload byte is interpreted.
bool readSection(ByteReader &R, uint8_t WantTag, Section &S,
                 PersistError &Err) {
  uint8_t Tag;
  uint32_t Len;
  if (!R.u8(Tag) || !R.u32(Len))
    return fail(Err, PersistErrorKind::Truncated, "section header cut short");
  if (Tag != WantTag) {
    std::ostringstream OS;
    OS << "expected section '" << static_cast<char>(WantTag) << "', found 0x"
       << std::hex << static_cast<unsigned>(Tag);
    return fail(Err, PersistErrorKind::Malformed, OS.str());
  }
  if (!R.span(Len, S.Data))
    return fail(Err, PersistErrorKind::Truncated,
                "section payload cut short");
  uint32_t Crc;
  if (!R.u32(Crc))
    return fail(Err, PersistErrorKind::Truncated, "section crc cut short");
  if (crc32(S.Data, Len) != Crc) {
    std::string D = "section '";
    D += static_cast<char>(WantTag);
    D += "'";
    return fail(Err, PersistErrorKind::ChecksumMismatch, std::move(D));
  }
  S.Size = Len;
  return true;
}

bool decodeNodes(const Section &S, uint64_t Count,
                 std::vector<BcgNodeSnapshot> &Out, PersistError &Err) {
  ByteReader R(S.Data, S.Size);
  // Each node costs at least 6 payload bytes, so a count exceeding the
  // payload size is corrupt -- checked before the reserve so a flipped
  // count byte cannot demand gigabytes.
  if (Count > S.Size)
    return fail(Err, PersistErrorKind::Malformed,
                "node count exceeds section size");
  Out.reserve(static_cast<size_t>(Count));
  BlockId PrevFrom = 0;
  for (uint64_t I = 0; I < Count; ++I) {
    BcgNodeSnapshot N;
    int64_t DFrom, DTo;
    uint64_t Delay, Decay, Execs, NumCorrs;
    if (!R.svarint(DFrom) || !R.svarint(DTo) || !R.varint(Delay) ||
        !R.varint(Decay) || !R.varint(Execs) || !R.varint(NumCorrs))
      return fail(Err, PersistErrorKind::Truncated, "node record cut short");
    if (!applyDelta(PrevFrom, DFrom, N.From) ||
        !applyDelta(N.From, DTo, N.To))
      return fail(Err, PersistErrorKind::Malformed,
                  "node block id out of range");
    if (Delay > 0xffffffffu || Decay > 0xffffffffu)
      return fail(Err, PersistErrorKind::Malformed,
                  "node counter out of range");
    if (NumCorrs > R.remaining())
      return fail(Err, PersistErrorKind::Malformed,
                  "correlation count exceeds section size");
    N.StartDelayLeft = static_cast<uint32_t>(Delay);
    N.SinceDecay = static_cast<uint32_t>(Decay);
    N.Execs = Execs;
    N.Corrs.reserve(static_cast<size_t>(NumCorrs));
    BlockId PrevSucc = N.To;
    for (uint64_t C = 0; C < NumCorrs; ++C) {
      int64_t DSucc;
      uint64_t CountV;
      if (!R.svarint(DSucc) || !R.varint(CountV))
        return fail(Err, PersistErrorKind::Truncated,
                    "correlation record cut short");
      BlockId Succ;
      if (!applyDelta(PrevSucc, DSucc, Succ))
        return fail(Err, PersistErrorKind::Malformed,
                    "correlation successor out of range");
      if (CountV > 0xffffu)
        return fail(Err, PersistErrorKind::Malformed,
                    "correlation count exceeds 16 bits");
      N.Corrs.emplace_back(Succ, static_cast<uint16_t>(CountV));
      PrevSucc = Succ;
    }
    PrevFrom = N.From;
    Out.push_back(std::move(N));
  }
  if (!R.exhausted())
    return fail(Err, PersistErrorKind::Malformed,
                "trailing bytes in node section");
  return true;
}

bool decodeTraces(const Section &S, uint64_t Count,
                  std::vector<TraceCache::TraceSeed> &Out,
                  PersistError &Err) {
  ByteReader R(S.Data, S.Size);
  if (Count > S.Size)
    return fail(Err, PersistErrorKind::Malformed,
                "trace count exceeds section size");
  Out.reserve(static_cast<size_t>(Count));
  BlockId PrevEntry = 0;
  for (uint64_t I = 0; I < Count; ++I) {
    TraceCache::TraceSeed T;
    int64_t DEntry;
    uint64_t NumBlocks;
    if (!R.svarint(DEntry) || !R.varint(NumBlocks))
      return fail(Err, PersistErrorKind::Truncated, "trace record cut short");
    if (!applyDelta(PrevEntry, DEntry, T.EntryFrom))
      return fail(Err, PersistErrorKind::Malformed,
                  "trace entry block out of range");
    if (NumBlocks < 2)
      return fail(Err, PersistErrorKind::Malformed,
                  "trace shorter than two blocks");
    if (NumBlocks > R.remaining())
      return fail(Err, PersistErrorKind::Malformed,
                  "trace block count exceeds section size");
    T.Blocks.reserve(static_cast<size_t>(NumBlocks));
    BlockId Prev = T.EntryFrom;
    for (uint64_t B = 0; B < NumBlocks; ++B) {
      int64_t DB;
      if (!R.svarint(DB))
        return fail(Err, PersistErrorKind::Truncated,
                    "trace block cut short");
      BlockId Block;
      if (!applyDelta(Prev, DB, Block))
        return fail(Err, PersistErrorKind::Malformed,
                    "trace block id out of range");
      T.Blocks.push_back(Block);
      Prev = Block;
    }
    uint64_t CompletionBits;
    if (!R.u64(CompletionBits) || !R.varint(T.Entered) ||
        !R.varint(T.Completed))
      return fail(Err, PersistErrorKind::Truncated, "trace record cut short");
    T.ExpectedCompletion = bitsDouble(CompletionBits);
    if (!std::isfinite(T.ExpectedCompletion) || T.ExpectedCompletion < 0.0 ||
        T.ExpectedCompletion > 1.0)
      return fail(Err, PersistErrorKind::Malformed,
                  "trace completion probability outside [0, 1]");
    if (T.Completed > T.Entered)
      return fail(Err, PersistErrorKind::Malformed,
                  "trace completed count exceeds entered count");
    PrevEntry = T.EntryFrom;
    Out.push_back(std::move(T));
  }
  if (!R.exhausted())
    return fail(Err, PersistErrorKind::Malformed,
                "trailing bytes in trace section");
  return true;
}

} // namespace

bool persist::decodeSnapshot(const uint8_t *Data, size_t Size,
                             SnapshotData &Out, PersistError &Err) {
  ByteReader R(Data, Size);

  const uint8_t *M;
  if (!R.span(sizeof(Magic), M))
    return fail(Err, PersistErrorKind::Truncated, "shorter than the magic");
  if (std::memcmp(M, Magic, sizeof(Magic)) != 0)
    return fail(Err, PersistErrorKind::BadMagic, "not a .jtcp file");

  uint16_t Version, Layout;
  uint32_t Sections;
  if (!R.u16(Version) || !R.u16(Layout) || !R.u32(Sections))
    return fail(Err, PersistErrorKind::Truncated, "header cut short");
  if (Version != FormatVersion) {
    std::ostringstream OS;
    OS << "format version " << Version << ", this build speaks "
       << FormatVersion;
    return fail(Err, PersistErrorKind::VersionSkew, OS.str());
  }
  if ((Layout & ~SupportedLayoutMask) != 0 ||
      (Layout & LayoutVarintDelta) == 0) {
    std::ostringstream OS;
    OS << "layout flags 0x" << std::hex << Layout << " unsupported";
    return fail(Err, PersistErrorKind::LayoutUnsupported, OS.str());
  }
  if (Sections != NumSections)
    return fail(Err, PersistErrorKind::Malformed,
                "unexpected section count");

  Section Meta, Nodes, Traces;
  if (!readSection(R, SectionMeta, Meta, Err) ||
      !readSection(R, SectionNodes, Nodes, Err) ||
      !readSection(R, SectionTraces, Traces, Err))
    return false;
  if (!R.exhausted())
    return fail(Err, PersistErrorKind::Malformed,
                "trailing bytes after the last section");

  SnapshotData S;
  uint64_t NodeCount, TraceCount;
  {
    ByteReader MR(Meta.Data, Meta.Size);
    if (!MR.u64(S.Fingerprint) || !MR.u64(S.DonorBlocks) ||
        !MR.varint(NodeCount) || !MR.varint(TraceCount))
      return fail(Err, PersistErrorKind::Truncated, "meta section cut short");
    if (!MR.exhausted())
      return fail(Err, PersistErrorKind::Malformed,
                  "trailing bytes in meta section");
    if (S.Fingerprint == 0)
      return fail(Err, PersistErrorKind::Malformed, "null module fingerprint");
  }

  if (!decodeNodes(Nodes, NodeCount, S.Seed.Nodes, Err) ||
      !decodeTraces(Traces, TraceCount, S.Seed.Traces, Err))
    return false;

  Out = std::move(S);
  return true;
}

bool persist::validateSeed(const VmSeed &Seed, const PreparedModule &PM,
                           PersistError &Err) {
  const uint64_t NumBlocks = PM.numBlocks();
  auto Bad = [&Err](std::string Detail) {
    return fail(Err, PersistErrorKind::IncompatibleSeed, std::move(Detail));
  };

  std::unordered_set<uint64_t> NodePairs;
  NodePairs.reserve(Seed.Nodes.size());
  for (const BcgNodeSnapshot &N : Seed.Nodes) {
    if (N.From >= NumBlocks || N.To >= NumBlocks)
      return Bad("node names a block the module does not have");
    if (!NodePairs.insert(pairKey(N.From, N.To)).second)
      return Bad("duplicate node for one block pair");
    std::unordered_set<BlockId> Succs;
    Succs.reserve(N.Corrs.size());
    for (const auto &[Succ, Count] : N.Corrs) {
      (void)Count;
      if (Succ >= NumBlocks)
        return Bad("correlation successor outside the module");
      if (!Succs.insert(Succ).second)
        return Bad("duplicate correlation successor in one node");
    }
  }

  std::unordered_set<uint64_t> Entries;
  Entries.reserve(Seed.Traces.size());
  for (const TraceCache::TraceSeed &T : Seed.Traces) {
    if (T.Blocks.size() < 2)
      return Bad("trace shorter than two blocks");
    if (T.EntryFrom >= NumBlocks)
      return Bad("trace entry predecessor outside the module");
    for (BlockId B : T.Blocks)
      if (B >= NumBlocks)
        return Bad("trace block outside the module");
    if (!Entries.insert(pairKey(T.EntryFrom, T.Blocks[0])).second)
      return Bad("duplicate trace entry pair");
    if (T.ExpectedCompletion < 0.0 || T.ExpectedCompletion > 1.0)
      return Bad("trace completion probability outside [0, 1]");
    if (T.Completed > T.Entered)
      return Bad("trace completed count exceeds entered count");
  }
  return true;
}

uint64_t persist::seedDigest(const VmSeed &Seed) {
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis.
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  Mix(Seed.Nodes.size());
  for (const BcgNodeSnapshot &N : Seed.Nodes) {
    Mix(N.From);
    Mix(N.To);
    Mix(N.StartDelayLeft);
    Mix(N.SinceDecay);
    Mix(N.Execs);
    Mix(N.Corrs.size());
    for (const auto &[Succ, Count] : N.Corrs) {
      Mix(Succ);
      Mix(Count);
    }
  }
  Mix(Seed.Traces.size());
  for (const TraceCache::TraceSeed &T : Seed.Traces) {
    Mix(T.EntryFrom);
    Mix(T.Blocks.size());
    for (BlockId B : T.Blocks)
      Mix(B);
    Mix(doubleBits(T.ExpectedCompletion));
    // Entered / Completed intentionally excluded: seeding resets them.
  }
  return H;
}
