//===- persist/PersistError.h - Typed snapshot diagnostics ------*- C++ -*-===//
///
/// \file
/// The error vocabulary of the persist subsystem. Every way a durable
/// .jtcp snapshot can fail to load -- I/O, a foreign file, version or
/// layout skew, truncation, corruption, a structurally invalid seed, or a
/// snapshot from a different module -- maps to exactly one kind, so
/// callers (CLI diagnostics, service counters, adversarial tests) can
/// dispatch on the failure class instead of parsing message strings. A
/// strict loader plus this taxonomy is the whole safety story: malformed
/// input is rejected with a kind, never undefined behaviour and never a
/// partial install.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_PERSIST_PERSISTERROR_H
#define JTC_PERSIST_PERSISTERROR_H

#include "support/TypedError.h"

#include <string>

namespace jtc {
namespace persist {

enum class PersistErrorKind : unsigned char {
  None,                ///< Success.
  Io,                  ///< File could not be opened / read / written.
  BadMagic,            ///< Not a .jtcp file.
  VersionSkew,         ///< Format version this build does not speak.
  LayoutUnsupported,   ///< Header layout flags this build does not speak.
  Truncated,           ///< Data ends before the declared structure does.
  ChecksumMismatch,    ///< A section's CRC32 does not match its payload.
  Malformed,           ///< Structure decodes but violates the format spec.
  FingerprintMismatch, ///< Snapshot was captured over a different module.
  IncompatibleSeed,    ///< Decoded state fails re-validation vs the module.
};

/// Stable machine-readable kind name ("bad-magic", "version-skew", ...).
const char *persistErrorKindName(PersistErrorKind K);

/// The TypedError domain for snapshot/btrace decode failures ("persist").
const ErrorDomain &persistErrorDomain();

/// One load/save failure. Default-constructed means success; ok() is the
/// polarity every persist API reports through its out-parameter.
struct PersistError {
  PersistErrorKind Kind = PersistErrorKind::None;
  std::string Detail;

  bool ok() const { return Kind == PersistErrorKind::None; }

  /// This failure as the repo-uniform TypedError (success when ok()).
  TypedError typed() const;

  /// "kind: detail" (or "ok"), for diagnostics. Rendered through typed().
  std::string message() const;

  static PersistError make(PersistErrorKind K, std::string Detail) {
    return PersistError{K, std::move(Detail)};
  }
};

} // namespace persist
} // namespace jtc

#endif // JTC_PERSIST_PERSISTERROR_H
