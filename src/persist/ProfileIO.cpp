//===- persist/ProfileIO.cpp - Snapshot file I/O and VM wiring ------------===//
///
/// The file-level half of the persist subsystem: atomic .jtcp writes,
/// whole-file reads, and the load pipeline against a live (not yet run)
/// TraceVM -- decode, fingerprint gate, seed re-validation, the donor
/// completion filter, and finally installation through the ordinary
/// VmSeed import path. Telemetry snapshot events are recorded here, at
/// the boundary where persistence actually happens.
///
//===----------------------------------------------------------------------===//

#include "persist/Snapshot.h"
#include "persist/SnapshotFormat.h"
#include "persist/SnapshotMerge.h"

#include "vm/ModuleFingerprint.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace jtc;
using namespace jtc::persist;

namespace {

bool fail(PersistError &Err, PersistErrorKind K, std::string Detail) {
  Err = PersistError::make(K, std::move(Detail));
  return false;
}

void recordRejected(TraceVM &VM, const PersistError &Err) {
  JTC_RECORD_EVENT(VM.telemetry(), EventKind::SnapshotRejected, 0,
                   static_cast<uint32_t>(Err.Kind));
  (void)VM;
  (void)Err;
}

} // namespace

SnapshotData persist::captureSnapshot(const TraceVM &VM) {
  SnapshotData S;
  S.Fingerprint = moduleFingerprint(VM.prepared());
  S.DonorBlocks = VM.currentStats().BlocksExecuted;
  S.Seed = VM.exportSeed();
  return S;
}

bool persist::saveSnapshotFile(const SnapshotData &S, const std::string &Path,
                               PersistError &Err) {
  std::vector<uint8_t> Bytes = encodeSnapshot(S);
  // Write-to-temp + rename: a reader (or a crash) can only ever observe
  // the old complete file or the new complete file.
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS)
      return fail(Err, PersistErrorKind::Io,
                  "cannot open '" + Tmp + "' for writing");
    OS.write(reinterpret_cast<const char *>(Bytes.data()),
             static_cast<std::streamsize>(Bytes.size()));
    OS.flush();
    if (!OS)
      return fail(Err, PersistErrorKind::Io, "short write to '" + Tmp + "'");
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Path, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return fail(Err, PersistErrorKind::Io,
                "cannot rename '" + Tmp + "' to '" + Path + "'");
  }
  return true;
}

bool persist::loadSnapshotFile(const std::string &Path, SnapshotData &Out,
                               PersistError &Err) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return fail(Err, PersistErrorKind::Io, "cannot open '" + Path + "'");
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(IS)),
                             std::istreambuf_iterator<char>());
  if (IS.bad())
    return fail(Err, PersistErrorKind::Io, "read error on '" + Path + "'");
  return decodeSnapshot(Bytes.data(), Bytes.size(), Out, Err);
}

bool persist::loadProfile(TraceVM &VM, const std::string &Path,
                          LoadReport &Report, PersistError &Err) {
  SnapshotData S;
  if (!loadSnapshotFile(Path, S, Err)) {
    recordRejected(VM, Err);
    return false;
  }

  uint64_t Want = moduleFingerprint(VM.prepared());
  if (S.Fingerprint != Want) {
    std::ostringstream OS;
    OS << "snapshot fingerprint " << std::hex << S.Fingerprint
       << " does not match module fingerprint " << Want;
    fail(Err, PersistErrorKind::FingerprintMismatch, OS.str());
    recordRejected(VM, Err);
    return false;
  }

  if (!validateSeed(S.Seed, VM.prepared(), Err)) {
    recordRejected(VM, Err);
    return false;
  }

  // Donor completion filter: a trace the donor had already measured as a
  // retirement candidate (enough entries, observed completion below the
  // bar) is not re-installed -- re-running a retirement the donor already
  // performed would only waste dispatches on a known under-performer.
  const TraceConfig TC = VM.options().traceConfig();
  VmSeed Installed;
  Installed.Nodes = std::move(S.Seed.Nodes);
  Installed.Traces.reserve(S.Seed.Traces.size());
  for (TraceCache::TraceSeed &T : S.Seed.Traces) {
    if (!passesCompletionFilter(T, TC)) {
      ++Report.TracesDroppedByCompletion;
      continue;
    }
    Installed.Traces.push_back(std::move(T));
  }

  VM.importSeed(Installed);
  Report.Nodes = Installed.Nodes.size();
  Report.Traces = Installed.Traces.size();
  Report.DonorBlocks = S.DonorBlocks;
  JTC_RECORD_EVENT(VM.telemetry(), EventKind::SnapshotLoaded,
                   static_cast<uint32_t>(Report.Traces),
                   static_cast<uint32_t>(Report.Nodes));
  return true;
}

bool persist::saveProfile(TraceVM &VM, const std::string &Path,
                          PersistError &Err) {
  SnapshotData S = captureSnapshot(VM);
  if (!saveSnapshotFile(S, Path, Err))
    return false;
  JTC_RECORD_EVENT(VM.telemetry(), EventKind::SnapshotSaved,
                   static_cast<uint32_t>(S.Seed.Traces.size()),
                   static_cast<uint32_t>(S.Seed.Nodes.size()));
  return true;
}

bool persist::applyProfileOptions(TraceVM &VM, LoadReport &Report,
                                  PersistError &Err) {
  if (VM.options().loadProfilePath().empty())
    return true;
  return loadProfile(VM, VM.options().loadProfilePath(), Report, Err);
}

bool persist::finishProfileOptions(TraceVM &VM, PersistError &Err) {
  if (VM.options().saveProfilePath().empty())
    return true;
  return saveProfile(VM, VM.options().saveProfilePath(), Err);
}
