//===- persist/SnapshotMerge.cpp ------------------------------------------===//

#include "persist/SnapshotMerge.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

using namespace jtc;
using namespace jtc::persist;

uint64_t persist::traceFingerprint(const TraceCache::TraceSeed &T) {
  uint64_t H = 1469598103934665603ull; // FNV-1a.
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  Mix(T.EntryFrom);
  Mix(T.Blocks.size());
  for (BlockId B : T.Blocks)
    Mix(B);
  return H;
}

bool persist::passesCompletionFilter(const TraceCache::TraceSeed &T,
                                     const TraceConfig &TC) {
  double Observed = T.Entered == 0
                        ? 1.0
                        : static_cast<double>(T.Completed) /
                              static_cast<double>(T.Entered);
  double Bar = TC.CompletionThreshold - TC.RetirementMargin;
  return !(T.Entered >= TC.RetirementCheckEntries && Observed < Bar);
}

namespace {

bool traceLess(const TraceCache::TraceSeed &A, const TraceCache::TraceSeed &B) {
  return std::tie(A.EntryFrom, A.Blocks, A.Entered, A.Completed,
                  A.ExpectedCompletion) <
         std::tie(B.EntryFrom, B.Blocks, B.Entered, B.Completed,
                  B.ExpectedCompletion);
}

} // namespace

SnapshotData persist::canonicalSnapshot(SnapshotData S) {
  for (BcgNodeSnapshot &N : S.Seed.Nodes)
    std::sort(N.Corrs.begin(), N.Corrs.end());
  std::sort(S.Seed.Nodes.begin(), S.Seed.Nodes.end(),
            [](const BcgNodeSnapshot &A, const BcgNodeSnapshot &B) {
              return std::tie(A.From, A.To) < std::tie(B.From, B.To);
            });
  std::sort(S.Seed.Traces.begin(), S.Seed.Traces.end(), traceLess);
  return S;
}

bool persist::mergeSnapshots(const std::vector<SnapshotData> &Inputs,
                             const TraceConfig &TC, SnapshotData &Out,
                             MergeReport &Report, PersistError &Err) {
  if (Inputs.empty()) {
    Err = PersistError::make(PersistErrorKind::Malformed,
                             "merge needs at least one snapshot");
    return false;
  }
  const uint64_t Fingerprint = Inputs.front().Fingerprint;
  for (const SnapshotData &S : Inputs)
    if (S.Fingerprint != Fingerprint) {
      std::ostringstream OS;
      OS << "snapshot fingerprints " << std::hex << Fingerprint << " and "
         << S.Fingerprint << " were captured over different modules";
      Err = PersistError::make(PersistErrorKind::FingerprintMismatch,
                               OS.str());
      return false;
    }

  Report = MergeReport();
  Report.Inputs = Inputs.size();

  // Node merge: element-wise max, most-mature-side scalar reconciliation.
  std::map<std::pair<BlockId, BlockId>, BcgNodeSnapshot> Nodes;
  for (const SnapshotData &S : Inputs) {
    for (const BcgNodeSnapshot &N : S.Seed.Nodes) {
      auto [It, Fresh] = Nodes.try_emplace({N.From, N.To}, N);
      if (Fresh)
        continue;
      BcgNodeSnapshot &M = It->second;
      M.StartDelayLeft = std::min(M.StartDelayLeft, N.StartDelayLeft);
      M.SinceDecay = std::max(M.SinceDecay, N.SinceDecay);
      M.Execs = std::max(M.Execs, N.Execs);
      std::map<BlockId, uint16_t> Corrs(M.Corrs.begin(), M.Corrs.end());
      for (const auto &[Target, Count] : N.Corrs) {
        uint16_t &Slot = Corrs[Target];
        Slot = std::max(Slot, Count);
      }
      M.Corrs.assign(Corrs.begin(), Corrs.end());
    }
  }

  // Trace dedup by structural fingerprint, history merged by max so a
  // doubly reported observation is counted once.
  std::map<uint64_t, TraceCache::TraceSeed> Traces;
  for (const SnapshotData &S : Inputs) {
    for (const TraceCache::TraceSeed &T : S.Seed.Traces) {
      auto [It, Fresh] = Traces.try_emplace(traceFingerprint(T), T);
      if (Fresh)
        continue;
      TraceCache::TraceSeed &M = It->second;
      ++Report.TracesDeduped;
      M.Entered = std::max(M.Entered, T.Entered);
      M.Completed = std::max(M.Completed, T.Completed);
      M.ExpectedCompletion = std::max(M.ExpectedCompletion,
                                      T.ExpectedCompletion);
    }
  }

  SnapshotData Merged;
  Merged.Fingerprint = Fingerprint;
  for (const SnapshotData &S : Inputs)
    Merged.DonorBlocks = std::max(Merged.DonorBlocks, S.DonorBlocks);
  Merged.Seed.Nodes.reserve(Nodes.size());
  for (auto &[Key, N] : Nodes)
    Merged.Seed.Nodes.push_back(std::move(N));
  Merged.Seed.Traces.reserve(Traces.size());
  for (auto &[Key, T] : Traces) {
    if (!passesCompletionFilter(T, TC)) {
      ++Report.TracesDroppedByCompletion;
      continue;
    }
    Merged.Seed.Traces.push_back(std::move(T));
  }

  Out = canonicalSnapshot(std::move(Merged));
  Report.Nodes = Out.Seed.Nodes.size();
  Report.Traces = Out.Seed.Traces.size();
  Report.Epoch = Out.DonorBlocks;
  return true;
}

bool persist::mergeSnapshotFiles(const std::vector<std::string> &InPaths,
                                 const std::string &OutPath,
                                 const TraceConfig &TC, MergeReport &Report,
                                 PersistError &Err) {
  std::vector<SnapshotData> Inputs;
  Inputs.reserve(InPaths.size());
  for (const std::string &Path : InPaths) {
    SnapshotData S;
    if (!loadSnapshotFile(Path, S, Err)) {
      Err.Detail = Path + ": " + Err.Detail;
      return false;
    }
    Inputs.push_back(std::move(S));
  }
  SnapshotData Out;
  if (!mergeSnapshots(Inputs, TC, Out, Report, Err))
    return false;
  return saveSnapshotFile(Out, OutPath, Err);
}
