//===- persist/ByteStream.h - Bounds-checked binary I/O ---------*- C++ -*-===//
///
/// \file
/// The primitive encoding layer of the .jtcp format: little-endian fixed
/// integers, LEB128 varints, and zigzag signed deltas (the compact
/// branch-stream idiom: consecutive block ids in profiles and traces are
/// close together, so their signed differences varint-encode into one or
/// two bytes). The writer appends to a growable buffer; the reader walks a
/// read-only span and *never* reads past its end -- every primitive read
/// reports failure instead, which the snapshot decoder turns into a typed
/// Truncated / Malformed PersistError. Corrupt input must land in the
/// error path, not in undefined behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_PERSIST_BYTESTREAM_H
#define JTC_PERSIST_BYTESTREAM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jtc {
namespace persist {

/// Append-only little-endian encoder.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V);
  void u32(uint32_t V);
  void u64(uint64_t V);

  /// Unsigned LEB128.
  void varint(uint64_t V);

  /// Zigzag-mapped signed LEB128 (small magnitudes of either sign encode
  /// short).
  void svarint(int64_t V);

  /// Raw bytes, verbatim.
  void bytes(const uint8_t *Data, size_t Size) {
    Buf.insert(Buf.end(), Data, Data + Size);
  }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

  /// Overwrites 4 bytes at \p At (little-endian), for back-patching
  /// length fields. \p At + 4 must be within the current buffer.
  void patchU32(size_t At, uint32_t V);

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian decoder over a read-only span. Every
/// read returns false (leaving the output untouched) instead of reading
/// past End; once a read fails the reader stays failed.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size)
      : Cur(Data), End(Data + Size) {}

  bool u8(uint8_t &V);
  bool u16(uint16_t &V);
  bool u32(uint32_t &V);
  bool u64(uint64_t &V);

  /// Unsigned LEB128; rejects encodings wider than 64 bits.
  bool varint(uint64_t &V);

  /// Zigzag-mapped signed LEB128.
  bool svarint(int64_t &V);

  /// Exposes \p Size raw bytes in place (no copy); fails when fewer
  /// remain.
  bool span(size_t Size, const uint8_t *&Data);

  size_t remaining() const { return Failed ? 0 : static_cast<size_t>(End - Cur); }
  bool exhausted() const { return remaining() == 0; }
  bool failed() const { return Failed; }

private:
  const uint8_t *Cur;
  const uint8_t *End;
  bool Failed = false;
};

} // namespace persist
} // namespace jtc

#endif // JTC_PERSIST_BYTESTREAM_H
