//===- persist/Crc32.h - CRC-32 (IEEE 802.3) --------------------*- C++ -*-===//
///
/// \file
/// The per-section checksum of the .jtcp format: reflected CRC-32 with the
/// 0xEDB88320 polynomial (the zlib/PNG/Ethernet CRC), table-driven. A
/// section whose stored CRC disagrees with its payload is rejected before
/// any of its contents are decoded, so a flipped bit can never smuggle a
/// structurally plausible but wrong value into the profiler.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_PERSIST_CRC32_H
#define JTC_PERSIST_CRC32_H

#include <cstddef>
#include <cstdint>

namespace jtc {
namespace persist {

/// CRC-32 of \p Size bytes at \p Data (init 0xFFFFFFFF, final xor-out).
uint32_t crc32(const uint8_t *Data, size_t Size);

//===--- Incremental variant ----------------------------------------------===//
//
// The btrace encoder checksums a stream it never holds in one buffer
// (chunks are flushed to their sink as they fill), so the CRC state is
// threaded through explicitly: init, any number of updates, final.
// crc32(d, n) == crc32Final(crc32Update(crc32Init(), d, n)).

/// Initial CRC-32 state.
inline uint32_t crc32Init() { return 0xFFFFFFFFu; }

/// Folds \p Size bytes at \p Data into \p State.
uint32_t crc32Update(uint32_t State, const uint8_t *Data, size_t Size);

/// Final xor-out.
inline uint32_t crc32Final(uint32_t State) { return State ^ 0xFFFFFFFFu; }

} // namespace persist
} // namespace jtc

#endif // JTC_PERSIST_CRC32_H
