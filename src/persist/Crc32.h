//===- persist/Crc32.h - CRC-32 (IEEE 802.3) --------------------*- C++ -*-===//
///
/// \file
/// The per-section checksum of the .jtcp format: reflected CRC-32 with the
/// 0xEDB88320 polynomial (the zlib/PNG/Ethernet CRC), table-driven. A
/// section whose stored CRC disagrees with its payload is rejected before
/// any of its contents are decoded, so a flipped bit can never smuggle a
/// structurally plausible but wrong value into the profiler.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_PERSIST_CRC32_H
#define JTC_PERSIST_CRC32_H

#include <cstddef>
#include <cstdint>

namespace jtc {
namespace persist {

/// CRC-32 of \p Size bytes at \p Data (init 0xFFFFFFFF, final xor-out).
uint32_t crc32(const uint8_t *Data, size_t Size);

} // namespace persist
} // namespace jtc

#endif // JTC_PERSIST_CRC32_H
