//===- trace/TraceBuilder.h - Trace construction algorithm ------*- C++ -*-===//
///
/// \file
/// The trace construction pipeline of paper section 4.2, run in response
/// to a profiler state-change signal:
///
///   1. findEntryPoints(): backtrack from the changed node along incoming
///      strongly correlated edges to every branch context likely to reach
///      it; the terminal elements are the candidate trace entry points.
///   2. walkPath(): from each entry point follow the path of maximum
///      likelihood until it reaches a weakly correlated (or cold) branch
///      or a node already on the path (a loop).
///   3. cut(): if the path ends in a loop, unroll the loop once and emit
///      it first; then cut node paths greedily into block sequences whose
///      cumulative completion probability stays at or above the
///      completion threshold.
///
/// The builder is a pure function of the branch correlation graph; the
/// TraceCache owns installation, hash-consing and replacement.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TRACE_TRACEBUILDER_H
#define JTC_TRACE_TRACEBUILDER_H

#include "profile/BranchCorrelationGraph.h"
#include "trace/TraceConfig.h"

#include <vector>

namespace jtc {

/// A not-yet-installed trace produced by the builder.
struct TraceCandidate {
  BlockId EntryFrom = InvalidBlockId;
  std::vector<BlockId> Blocks;
  double Completion = 1.0;
};

class TraceBuilder {
public:
  TraceBuilder(const BranchCorrelationGraph &Graph, TraceConfig Config)
      : Graph(&Graph), Config(Config) {}

  /// Result of one build pass: the candidates to install and every node
  /// examined (which the cache acknowledges to stop signal cascades).
  struct BuildResult {
    std::vector<TraceCandidate> Candidates;
    std::vector<NodeId> Visited;
  };

  /// Runs the full pipeline for a state change on \p Changed.
  BuildResult build(NodeId Changed) const;

  /// Step 1: candidate entry points for traces affected by \p Changed.
  /// Always returns at least \p Changed itself when nothing backtracks.
  std::vector<NodeId> findEntryPoints(NodeId Changed) const;

  /// Step 2 result: a node path, with loop information when the walk
  /// closed a cycle. When EndsInLoop, Nodes[LoopStart..] form the loop
  /// body (the successor of Nodes.back() is Nodes[LoopStart]).
  struct Path {
    std::vector<NodeId> Nodes;
    bool EndsInLoop = false;
    size_t LoopStart = 0;
  };

  /// Step 2: follow the maximum-likelihood path from \p Entry.
  Path walkPath(NodeId Entry) const;

  /// Step 3: cut a node path into candidates meeting the threshold. The
  /// path node sequence N_{X0 X1}, N_{X1 X2}, ... yields block sequences
  /// over X0, X1, X2, ...; the probability charged between consecutive
  /// nodes is the correlation of the later pair's block given the earlier
  /// pair.
  std::vector<TraceCandidate> cut(const std::vector<NodeId> &Nodes) const;

private:
  /// True when traces may flow *through* this node (strong or unique and
  /// past its start delay).
  bool extendable(const BranchNode &N) const;

  const BranchCorrelationGraph *Graph;
  TraceConfig Config;
};

} // namespace jtc

#endif // JTC_TRACE_TRACEBUILDER_H
