//===- trace/Trace.h - Trace representation ---------------------*- C++ -*-===//
///
/// \file
/// A trace: a sequence of basic blocks expected to execute to completion
/// (paper section 3). A trace is entered when the interpreter performs the
/// block transition (EntryFrom -> Blocks[0]); it then executes Blocks in
/// order, exiting early if the program diverges. ExpectedCompletion is the
/// product of the branch-correlation edge probabilities along the trace at
/// construction time; the builder guarantees it is at least the completion
/// threshold.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TRACE_TRACE_H
#define JTC_TRACE_TRACE_H

#include "support/Ids.h"

#include <cstdint>
#include <vector>

namespace jtc {

using TraceId = uint32_t;
constexpr TraceId InvalidTraceId = 0xffffffffu;

/// Outcome of construction-time translation validation (src/validate),
/// recorded by the trace cache's validate hook. Rejected traces stay
/// dispatchable -- dispatch always runs the unoptimized block sequence --
/// but the optimized form proved unsound and must not be used.
enum class TraceValidation : uint8_t {
  Unchecked, ///< No validator installed (validation off).
  Accepted,  ///< Optimized form proved a sound refinement.
  Rejected,  ///< Proof failed; fall back to the unoptimized form.
};

/// One heap access on the trace path whose dynamic checks the alias
/// analysis proved redundant (src/analysis/Alias.h's analyzeTraceMemory;
/// this POD mirrors its TraceMemFact so the trace layer stays below the
/// analysis layer in the link order). The facts hold only while execution
/// is *inside* the trace -- every block before BlockIndex matched the
/// recorded sequence -- which is exactly when the backends consult them.
struct MemElision {
  /// Values of Kind. An enum class would force the analysis layer to
  /// depend on this header (or vice versa); two named constants keep the
  /// mirror one-way.
  static constexpr uint8_t NullOnly = 0; ///< Skip the liveness/class
                                         ///< check; keep the bounds check.
  static constexpr uint8_t Full = 1;     ///< Skip every check: the access
                                         ///< provably cannot trap.
  uint32_t BlockIndex = 0; ///< Index into Trace::Blocks.
  uint32_t Pc = 0;         ///< Instruction pc within that block's method.
  uint8_t Kind = NullOnly;
};

struct Trace {
  TraceId Id = InvalidTraceId;
  BlockId EntryFrom = InvalidBlockId;  ///< Predecessor block P of the entry.
  std::vector<BlockId> Blocks;         ///< B0..Bn; always >= 2 blocks.
  double ExpectedCompletion = 1.0;
  uint32_t InstrCount = 0; ///< Total instructions over Blocks.
  bool Alive = true;       ///< False once replaced by a newer trace.
  TraceValidation Validation = TraceValidation::Unchecked;

  /// Check-elision facts, ordered by (BlockIndex, Pc), installed by the
  /// trace cache's annotate hook (AdaptiveEngine runs the alias analysis
  /// over the block sequence at construction time). Both execution tiers
  /// honor them: the interpreter tier via Machine::execOneElided, the JIT
  /// via unchecked helper templates. Empty when annotation is off or
  /// nothing was provable. Purely an execution shortcut -- the elided
  /// checks are proven to pass, so behaviour and digests are unchanged.
  std::vector<MemElision> MemElisions;

  /// Runtime behaviour, maintained by the trace cache: how often the
  /// trace was dispatched and how often it ran to completion. Used to
  /// retire traces whose observed completion falls measurably below the
  /// threshold (built from immature counters before the program's
  /// behaviour was fully visible).
  uint64_t Entered = 0;
  uint64_t Completed = 0;

  double observedCompletion() const {
    return Entered == 0 ? 1.0
                        : static_cast<double>(Completed) /
                              static_cast<double>(Entered);
  }

  size_t length() const { return Blocks.size(); }
};

} // namespace jtc

#endif // JTC_TRACE_TRACE_H
