//===- trace/TraceBuilder.cpp ---------------------------------------------===//

#include "trace/TraceBuilder.h"

#include <unordered_map>
#include <unordered_set>

using namespace jtc;

bool TraceBuilder::extendable(const BranchNode &N) const {
  return N.hot() && (N.state() == NodeState::StronglyCorrelated ||
                     N.state() == NodeState::Unique);
}

std::vector<NodeId> TraceBuilder::findEntryPoints(NodeId Changed) const {
  std::vector<NodeId> Entries;
  std::unordered_set<NodeId> Visited;
  std::vector<NodeId> Stack;
  Stack.push_back(Changed);

  while (!Stack.empty() && Visited.size() < Config.MaxBacktrackVisits &&
         Entries.size() < Config.MaxEntryPoints) {
    NodeId Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second)
      continue;

    // A predecessor funnels into Cur when it is strongly correlated (or
    // unique) and its maximally correlated successor is Cur: executing it
    // makes executing Cur likely.
    bool AnyPred = false;
    for (NodeId P : Graph->node(Cur).predecessors()) {
      const BranchNode &PN = Graph->node(P);
      if (!extendable(PN) || PN.maxSuccNode() != Cur)
        continue;
      AnyPred = true;
      if (!Visited.count(P))
        Stack.push_back(P);
    }
    if (!AnyPred)
      Entries.push_back(Cur);
  }

  // Pure cycles have no terminal element; fall back to the changed node
  // itself so the loop still gets (re)built.
  if (Entries.empty())
    Entries.push_back(Changed);
  return Entries;
}

TraceBuilder::Path TraceBuilder::walkPath(NodeId Entry) const {
  Path P;
  std::unordered_map<NodeId, size_t> IndexOf;
  NodeId Cur = Entry;

  while (Cur != InvalidNodeId && P.Nodes.size() < Config.MaxPathNodes) {
    auto It = IndexOf.find(Cur);
    if (It != IndexOf.end()) {
      P.EndsInLoop = true;
      P.LoopStart = It->second;
      break;
    }
    IndexOf.emplace(Cur, P.Nodes.size());
    P.Nodes.push_back(Cur);

    // A weakly correlated (or still-cold) branch ends the path; the node
    // itself is included since only its successor is uncertain.
    const BranchNode &N = Graph->node(Cur);
    if (!extendable(N))
      break;
    Cur = N.maxSuccNode();
  }
  return P;
}

std::vector<TraceCandidate>
TraceBuilder::cut(const std::vector<NodeId> &Nodes) const {
  std::vector<TraceCandidate> Out;
  if (Nodes.empty())
    return Out;

  // Edge probability between consecutive path nodes N_{XY} and N_{YZ}:
  // the correlation of Z within N_{XY}, i.e. P(Z | X, Y).
  auto edgeProb = [&](size_t K) {
    const BranchNode &N = Graph->node(Nodes[K]);
    return N.probabilityOf(Graph->node(Nodes[K + 1]).to());
  };

  // Small tolerance so a product of probabilities equal to the threshold
  // is not rejected by floating-point rounding.
  const double Floor = Config.CompletionThreshold - 1e-12;

  size_t I = 0;
  while (I < Nodes.size()) {
    double Product = 1.0;
    size_t J = I;
    while (J + 1 < Nodes.size() &&
           (J - I + 2) <= Config.MaxTraceBlocks) {
      double P = edgeProb(J);
      if (Product * P < Floor)
        break;
      Product *= P;
      ++J;
    }

    size_t NumBlocks = J - I + 1;
    if (NumBlocks < Config.MinTraceBlocks) {
      // The pair at I cannot anchor a trace; move on.
      ++I;
      continue;
    }

    TraceCandidate C;
    C.EntryFrom = Graph->node(Nodes[I]).from();
    C.Blocks.reserve(NumBlocks);
    for (size_t K = I; K <= J; ++K)
      C.Blocks.push_back(Graph->node(Nodes[K]).to());
    C.Completion = Product;
    Out.push_back(std::move(C));
    I = J + 1;
  }
  return Out;
}

TraceBuilder::BuildResult TraceBuilder::build(NodeId Changed) const {
  BuildResult R;
  std::vector<NodeId> Entries = findEntryPoints(Changed);

  for (NodeId Entry : Entries) {
    Path P = walkPath(Entry);
    R.Visited.insert(R.Visited.end(), P.Nodes.begin(), P.Nodes.end());

    if (P.EndsInLoop) {
      // Process the loop first (paper section 4.2): unroll it once so the
      // trace carries two iterations of the body, then cut the straight
      // prefix that leads into it.
      std::vector<NodeId> Loop(P.Nodes.begin() +
                                   static_cast<ptrdiff_t>(P.LoopStart),
                               P.Nodes.end());
      std::vector<NodeId> Unrolled = Loop;
      Unrolled.insert(Unrolled.end(), Loop.begin(), Loop.end());
      for (TraceCandidate &C : cut(Unrolled))
        R.Candidates.push_back(std::move(C));

      std::vector<NodeId> Prefix(P.Nodes.begin(),
                                 P.Nodes.begin() +
                                     static_cast<ptrdiff_t>(P.LoopStart));
      for (TraceCandidate &C : cut(Prefix))
        R.Candidates.push_back(std::move(C));
    } else {
      for (TraceCandidate &C : cut(P.Nodes))
        R.Candidates.push_back(std::move(C));
    }
  }
  return R;
}
