//===- trace/TraceCache.h - The trace cache ---------------------*- C++ -*-===//
///
/// \file
/// The trace cache of paper section 4.2. It listens for profiler
/// state-change signals, runs the TraceBuilder over the affected region,
/// and installs the resulting traces. Identical block sequences are
/// hash-consed ("the trace cache hash table"), and installing a different
/// trace at an occupied entry point replaces (kills) the old trace.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TRACE_TRACECACHE_H
#define JTC_TRACE_TRACECACHE_H

#include "profile/BranchCorrelationGraph.h"
#include "trace/Trace.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceConfig.h"

#include <functional>
#include <map>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace jtc {

class TraceCache : public SignalSink {
public:
  /// \p BlockSize, when provided, maps a block id to its instruction
  /// count so traces can carry their total instruction size (used by the
  /// coverage metrics). \p Graph is non-const: handled signals are
  /// acknowledged back into it. The caller must also register the cache
  /// as the graph's sink: Graph.setSink(&Cache).
  TraceCache(BranchCorrelationGraph &Graph, TraceConfig Config,
             std::function<uint32_t(BlockId)> BlockSize = {});

  /// SignalSink: rebuild the traces affected by \p Id's state change.
  void onStateChange(NodeId Id) override;

  /// Attaches the telemetry event ring; trace construction, reuse,
  /// replacement, invalidation and retirement are recorded into it. Null
  /// (the default) disables recording.
  void setTelemetry(EventRing *R) { Telem = R; }

  /// Verdict returned by the translation-validation hook. ReasonCode is a
  /// validate::Reason, opaque to the cache (the trace layer sits below
  /// the optimizer and validator in the link order).
  struct ValidationVerdict {
    bool Accepted = true;
    uint32_t ReasonCode = 0;
  };
  using ValidateHook = std::function<ValidationVerdict(const Trace &)>;

  /// Installs a construction-time validation hook. Every freshly
  /// constructed or seeded trace is handed to it once (hash-cons reuse
  /// keeps the original verdict: same content, same proof); the verdict
  /// is recorded on the trace, tallied into CacheStats, and mirrored as a
  /// TraceValidated / TraceValidationRejected telemetry event.
  void setValidateHook(ValidateHook H) { Validate = std::move(H); }

  using AnnotateHook = std::function<void(Trace &)>;

  /// Installs a construction-time annotation hook, called once per
  /// freshly constructed or seeded trace (after validation; hash-cons
  /// reuse keeps the original annotation) to attach derived execution
  /// facts -- today the alias analysis' MemElisions. Like validation it
  /// runs off the dispatch path, and it is skipped for traces whose
  /// optimized form validation rejected: a failed proof means analysis
  /// and optimizer disagreed somewhere, so the trace runs fully checked.
  void setAnnotateHook(AnnotateHook H) { Annotate = std::move(H); }

  /// Trace entered by the block transition (\p From -> \p To), or null.
  /// This is the per-dispatch lookup the interpreter performs.
  const Trace *findTrace(BlockId From, BlockId To) const {
    auto It = EntryMap.find(pairKey(From, To));
    return It == EntryMap.end() ? nullptr : &Traces[It->second];
  }

  /// Records one execution of trace \p Id (\p CompletedRun: it ran to
  /// completion). Periodically compares the observed completion rate
  /// against the threshold and retires persistent under-performers,
  /// immediately rebuilding their region from current profile data. May
  /// invalidate Trace pointers (rebuilds can grow the trace table).
  void recordExecution(TraceId Id, bool CompletedRun);

  struct CacheStats {
    uint64_t SignalsHandled = 0;
    uint64_t TracesConstructed = 0; ///< New traces materialized.
    uint64_t TracesReused = 0;      ///< Candidates matching a cached trace.
    uint64_t TracesReplaced = 0;    ///< Old traces killed by installs.
    uint64_t TracesInvalidated = 0; ///< Stale fragments retired by rebuilds.
    uint64_t TracesRetired = 0;     ///< Killed for poor observed completion.
    uint64_t TracesSeeded = 0;      ///< Installed from a donor snapshot.
    uint64_t CandidatesSeen = 0;
    uint64_t TracesValidated = 0;   ///< Traces handed to the validate hook.
    uint64_t ValidationRejects = 0; ///< Hook verdicts that rejected.
    /// Rejections tallied by validate::Reason code (ordered so JSON
    /// emission is deterministic).
    std::map<uint32_t, uint64_t> RejectsByReason;
  };

  /// One live trace in portable form, captured by exportLiveTraces() and
  /// installed into a fresh cache by seedTraces() (the server layer's
  /// warm handoff).
  struct TraceSeed {
    BlockId EntryFrom = InvalidBlockId;
    std::vector<BlockId> Blocks;
    double ExpectedCompletion = 1.0;
    /// Donor-side execution history (entries / completed runs). seedTraces
    /// deliberately does NOT install it -- a seeded trace is judged by this
    /// session's behaviour alone -- but the persist layer uses it as a
    /// load-time filter: a donor trace whose observed completion had
    /// already fallen below the retirement bar is not worth re-installing.
    uint64_t Entered = 0;
    uint64_t Completed = 0;
  };

  /// Captures every live (dispatchable) trace.
  std::vector<TraceSeed> exportLiveTraces() const;

  /// Installs donor traces into this cache, which must be fresh (no
  /// traces). Seeded traces are dispatchable immediately -- no profiler
  /// signal is consumed or emitted -- and are counted under
  /// CacheStats::TracesSeeded, not TracesConstructed. Their execution
  /// history starts at zero, so observed-completion retirement judges
  /// them against this session's behaviour alone.
  void seedTraces(const std::vector<TraceSeed> &Seeds);

  const CacheStats &stats() const { return Stats; }

  /// Live (dispatchable) traces.
  size_t numLiveTraces() const;

  /// Every trace ever constructed, including replaced ones.
  const std::vector<Trace> &traces() const { return Traces; }

  const TraceBuilder &builder() const { return Builder; }

  /// Dumps live traces with their entries and completion estimates.
  void dump(std::ostream &OS) const;

private:
  void install(const TraceCandidate &C);
  /// Runs the validate hook (if any) over a just-built trace, recording
  /// the verdict on the trace, in stats and in telemetry.
  void applyValidation(Trace &T);
  static uint64_t contentHash(BlockId EntryFrom,
                              const std::vector<BlockId> &Blocks);

  BranchCorrelationGraph *Graph;
  TraceConfig Config;
  TraceBuilder Builder;
  EventRing *Telem = nullptr;
  ValidateHook Validate;
  AnnotateHook Annotate;
  std::function<uint32_t(BlockId)> BlockSize;
  std::vector<Trace> Traces;
  /// (EntryFrom, Blocks[0]) pair key -> live trace id.
  std::unordered_map<uint64_t, TraceId> EntryMap;
  /// Content hash -> all trace ids ever built with that hash.
  std::unordered_map<uint64_t, std::vector<TraceId>> ByContent;
  /// Entry keys and trace ids installed or reused by the in-progress
  /// rebuild; traces keyed at interior transitions of a fresh trace (and
  /// not themselves fresh) are retired as stale fragments.
  std::unordered_set<uint64_t> FreshEntryKeys;
  std::vector<TraceId> FreshIds;
  CacheStats Stats;
};

} // namespace jtc

#endif // JTC_TRACE_TRACECACHE_H
