//===- trace/TraceConfig.h - Trace cache parameters -------------*- C++ -*-===//
///
/// \file
/// Knobs of the trace construction algorithm. CompletionThreshold is the
/// paper's central parameter; the caps bound work per signal so one signal
/// cannot reconstruct an unbounded region (the paper observes fewer than
/// five traces per signal in practice).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TRACE_TRACECONFIG_H
#define JTC_TRACE_TRACECONFIG_H

#include <cstdint>

namespace jtc {

/// Deliberate cache-bookkeeping bugs, injectable for fuzzer self-tests:
/// the differential-fuzzing oracle must be able to catch a broken trace
/// cache, and these faults are the controlled way to prove it does
/// (src/fuzz/). Production configurations always use None.
enum class CacheFault : uint8_t {
  /// Correct behaviour.
  None,
  /// Rebuilds mark stale fragments dead but "forget" to remove their
  /// entry-map keys, so findTrace() can hand out a dead trace.
  SkipInvalidation,
  /// Observed-completion retirement never fires: persistently
  /// under-performing traces survive every evaluation pass.
  SkipRetirement,
};

struct TraceConfig {
  /// Minimum expected completion probability of an installed trace.
  double CompletionThreshold = 0.97;

  /// Maximum blocks per trace.
  uint32_t MaxTraceBlocks = 64;

  /// Maximum nodes examined along one max-likelihood path walk.
  uint32_t MaxPathNodes = 256;

  /// Maximum entry points collected by one backtracking pass.
  uint32_t MaxEntryPoints = 16;

  /// Maximum nodes visited while backtracking for entry points.
  uint32_t MaxBacktrackVisits = 256;

  /// Traces shorter than this many blocks are not installed (a 1-block
  /// trace is just an ordinary block dispatch).
  uint32_t MinTraceBlocks = 2;

  /// Observed-completion retirement: once a trace has been entered this
  /// many times, its measured completion rate is checked every so many
  /// entries, and the trace is retired (and its region rebuilt from the
  /// now-mature counters) when the rate falls more than
  /// RetirementMargin below the completion threshold. This implements
  /// the cache-maintenance goal of paper section 3.6 and protects
  /// against traces built from immature counters early in a run.
  uint64_t RetirementCheckEntries = 64;
  double RetirementMargin = 0.02;

  /// Injected bookkeeping bug (fuzzer self-tests only).
  CacheFault Fault = CacheFault::None;
};

} // namespace jtc

#endif // JTC_TRACE_TRACECONFIG_H
