//===- trace/TraceCache.cpp -----------------------------------------------===//

#include "trace/TraceCache.h"

#include "telemetry/EventRing.h"

using namespace jtc;

TraceCache::TraceCache(BranchCorrelationGraph &Graph, TraceConfig Config,
                       std::function<uint32_t(BlockId)> BlockSize)
    : Graph(&Graph), Config(Config), Builder(Graph, Config),
      BlockSize(std::move(BlockSize)) {}

uint64_t TraceCache::contentHash(BlockId EntryFrom,
                                 const std::vector<BlockId> &Blocks) {
  // FNV-1a over the entry predecessor and the block sequence.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint32_t V) {
    for (int Shift = 0; Shift < 32; Shift += 8) {
      H ^= (V >> Shift) & 0xff;
      H *= 1099511628211ull;
    }
  };
  Mix(EntryFrom);
  for (BlockId B : Blocks)
    Mix(B);
  return H;
}

void TraceCache::onStateChange(NodeId Id) {
  ++Stats.SignalsHandled;
  TraceBuilder::BuildResult R = Builder.build(Id);
  FreshEntryKeys.clear();
  FreshIds.clear();
  for (const TraceCandidate &C : R.Candidates)
    install(C);

  // Paper step 3: "the new traces are compared to those in the cache and
  // all newly discovered trace cache entries are reconstructed". A live
  // trace whose entry pair occurs as an *interior* transition of a trace
  // just installed is a stale fragment of the new structure -- typically
  // a one-iteration loop trace built before the whole loop was warm,
  // whose self-chaining entry would otherwise capture dispatch forever.
  // Retire those; the fresh trace covers the flow at its own entry. The
  // rule applies only when the fresh trace is *cyclic* (completing it
  // re-enters its own entry, so it captures the whole loop's flow); an
  // acyclic fresh trace -- a straight-line join executed once per region
  // entry -- must not retire anything, because an orbit trace keyed
  // inside it recurs far more often than the join does.
  for (TraceId Fresh : FreshIds) {
    const Trace &T = Traces[Fresh];
    if (T.EntryFrom != T.Blocks.back())
      continue;
    for (size_t I = 0; I + 1 < T.Blocks.size(); ++I) {
      uint64_t Key = pairKey(T.Blocks[I], T.Blocks[I + 1]);
      if (FreshEntryKeys.count(Key))
        continue;
      auto It = EntryMap.find(Key);
      if (It == EntryMap.end() || It->second == Fresh)
        continue;
      JTC_RECORD_EVENT(Telem, EventKind::TraceInvalidated, It->second, Fresh);
      Traces[It->second].Alive = false;
      // Injected bug (fuzzer self-test): leave the stale entry key behind,
      // so findTrace() keeps returning the dead fragment.
      if (Config.Fault != CacheFault::SkipInvalidation)
        EntryMap.erase(It);
      ++Stats.TracesInvalidated;
    }
  }

  // Mark everything examined as up to date so this rebuild does not
  // trigger further signals for the same region (paper section 4.2).
  for (NodeId N : R.Visited)
    Graph->acknowledge(N);
  Graph->acknowledge(Id);
}

void TraceCache::install(const TraceCandidate &C) {
  ++Stats.CandidatesSeen;
  assert(C.Blocks.size() >= 2 && "builder produced a degenerate trace");

  uint64_t EntryKey = pairKey(C.EntryFrom, C.Blocks[0]);
  uint64_t Hash = contentHash(C.EntryFrom, C.Blocks);

  // Hash-consing: an identical live trace is reused, re-pointing the
  // entry at it if needed.
  auto ContentIt = ByContent.find(Hash);
  if (ContentIt != ByContent.end()) {
    for (TraceId Id : ContentIt->second) {
      Trace &T = Traces[Id];
      if (!T.Alive || T.EntryFrom != C.EntryFrom || T.Blocks != C.Blocks)
        continue;
      auto [It, Inserted] = EntryMap.try_emplace(EntryKey, Id);
      if (!Inserted && It->second != Id) {
        JTC_RECORD_EVENT(Telem, EventKind::TraceReplaced, It->second, Id);
        Traces[It->second].Alive = false;
        ++Stats.TracesReplaced;
        It->second = Id;
      }
      T.Alive = true;
      ++Stats.TracesReused;
      JTC_RECORD_EVENT(Telem, EventKind::TraceReused, Id,
                       static_cast<uint32_t>(T.Blocks.size()));
      FreshEntryKeys.insert(EntryKey);
      FreshIds.push_back(Id);
      return;
    }
  }

  Trace T;
  T.Id = static_cast<TraceId>(Traces.size());
  T.EntryFrom = C.EntryFrom;
  T.Blocks = C.Blocks;
  T.ExpectedCompletion = C.Completion;
  if (BlockSize)
    for (BlockId B : T.Blocks)
      T.InstrCount += BlockSize(B);

  auto [It, Inserted] = EntryMap.try_emplace(EntryKey, T.Id);
  if (!Inserted) {
    JTC_RECORD_EVENT(Telem, EventKind::TraceReplaced, It->second, T.Id);
    Traces[It->second].Alive = false;
    ++Stats.TracesReplaced;
    It->second = T.Id;
  }
  ByContent[Hash].push_back(T.Id);
  FreshEntryKeys.insert(EntryKey);
  FreshIds.push_back(T.Id);
  JTC_RECORD_EVENT(Telem, EventKind::TraceConstructed, T.Id,
                   static_cast<uint32_t>(T.Blocks.size()));
  applyValidation(T);
  Traces.push_back(std::move(T));
  ++Stats.TracesConstructed;
}

void TraceCache::applyValidation(Trace &T) {
  if (Validate) {
    ValidationVerdict V = Validate(T);
    ++Stats.TracesValidated;
    if (V.Accepted) {
      T.Validation = TraceValidation::Accepted;
      JTC_RECORD_EVENT(Telem, EventKind::TraceValidated, T.Id,
                       static_cast<uint32_t>(T.Blocks.size()));
    } else {
      // Sound fallback: the trace stays dispatchable (dispatch interprets
      // the unoptimized block sequence), but the optimized form is
      // poisoned.
      T.Validation = TraceValidation::Rejected;
      ++Stats.ValidationRejects;
      ++Stats.RejectsByReason[V.ReasonCode];
      JTC_RECORD_EVENT(Telem, EventKind::TraceValidationRejected, T.Id,
                       V.ReasonCode);
    }
  }
  if (Annotate && T.Validation != TraceValidation::Rejected)
    Annotate(T);
}

void TraceCache::recordExecution(TraceId Id, bool CompletedRun) {
  assert(Id < Traces.size() && "unknown trace");
  {
    Trace &T = Traces[Id];
    ++T.Entered;
    if (CompletedRun)
      ++T.Completed;
    if (!T.Alive || T.Entered % Config.RetirementCheckEntries != 0)
      return;
    if (T.observedCompletion() + Config.RetirementMargin >=
        Config.CompletionThreshold)
      return;
    // Injected bug (fuzzer self-test): the under-performer survives the
    // evaluation pass it should have been retired by.
    if (Config.Fault == CacheFault::SkipRetirement)
      return;
    // The trace persistently under-performs its design threshold: it was
    // built from counters that had not yet seen the branch's real
    // behaviour. Retire it and rebuild the region from today's data.
    JTC_RECORD_EVENT(Telem, EventKind::TraceRetired, Id,
                     static_cast<uint32_t>(T.observedCompletion() * 10000));
    T.Alive = false;
    auto It = EntryMap.find(pairKey(T.EntryFrom, T.Blocks[0]));
    if (It != EntryMap.end() && It->second == Id)
      EntryMap.erase(It);
    ++Stats.TracesRetired;
  }
  // Note: T is dead above before rebuilding -- onStateChange may grow the
  // trace table and invalidate references.
  NodeId Entry =
      Graph->findNode(Traces[Id].EntryFrom, Traces[Id].Blocks[0]);
  if (Entry != InvalidNodeId)
    onStateChange(Entry);
}

std::vector<TraceCache::TraceSeed> TraceCache::exportLiveTraces() const {
  std::vector<TraceSeed> Out;
  for (const Trace &T : Traces) {
    if (!T.Alive)
      continue;
    TraceSeed S;
    S.EntryFrom = T.EntryFrom;
    S.Blocks = T.Blocks;
    S.ExpectedCompletion = T.ExpectedCompletion;
    S.Entered = T.Entered;
    S.Completed = T.Completed;
    Out.push_back(std::move(S));
  }
  return Out;
}

void TraceCache::seedTraces(const std::vector<TraceSeed> &Seeds) {
  assert(Traces.empty() && "seedTraces requires a fresh cache");
  for (const TraceSeed &S : Seeds) {
    assert(S.Blocks.size() >= 2 && "degenerate seeded trace");
    uint64_t EntryKey = pairKey(S.EntryFrom, S.Blocks[0]);
    Trace T;
    T.Id = static_cast<TraceId>(Traces.size());
    T.EntryFrom = S.EntryFrom;
    T.Blocks = S.Blocks;
    T.ExpectedCompletion = S.ExpectedCompletion;
    if (BlockSize)
      for (BlockId B : T.Blocks)
        T.InstrCount += BlockSize(B);
    // Live traces have unique entry pairs, so a colliding seed means the
    // donor list itself is malformed; keep the first and drop the rest.
    auto [It, Inserted] = EntryMap.try_emplace(EntryKey, T.Id);
    (void)It;
    if (!Inserted)
      continue;
    ByContent[contentHash(T.EntryFrom, T.Blocks)].push_back(T.Id);
    applyValidation(T);
    Traces.push_back(std::move(T));
    ++Stats.TracesSeeded;
  }
}

size_t TraceCache::numLiveTraces() const {
  size_t N = 0;
  for (const Trace &T : Traces)
    if (T.Alive)
      ++N;
  return N;
}

void TraceCache::dump(std::ostream &OS) const {
  OS << "trace cache: " << numLiveTraces() << " live traces ("
     << Traces.size() << " ever built)\n";
  for (const Trace &T : Traces) {
    if (!T.Alive)
      continue;
    OS << "  trace " << T.Id << ": entry (" << T.EntryFrom << " -> "
       << T.Blocks[0] << ") blocks [";
    for (size_t I = 0; I < T.Blocks.size(); ++I)
      OS << (I ? " " : "") << T.Blocks[I];
    OS << "] completion=" << T.ExpectedCompletion
       << " instrs=" << T.InstrCount << "\n";
  }
}
