//===- profile/BranchCorrelationGraph.cpp ---------------------------------===//

#include "profile/BranchCorrelationGraph.h"

#include "telemetry/EventRing.h"

using namespace jtc;

SignalSink::~SignalSink() = default;

const char *jtc::nodeStateName(NodeState S) {
  switch (S) {
  case NodeState::NewlyCreated:
    return "newly-created";
  case NodeState::WeaklyCorrelated:
    return "weakly-correlated";
  case NodeState::StronglyCorrelated:
    return "strongly-correlated";
  case NodeState::Unique:
    return "unique";
  }
  return "unknown";
}

double BranchNode::probabilityOf(BlockId Succ) const {
  if (Total == 0)
    return 0.0;
  for (const Correlation &C : Corrs)
    if (C.Succ == Succ)
      return static_cast<double>(C.Count.value()) / Total;
  return 0.0;
}

BranchCorrelationGraph::BranchCorrelationGraph(ProfilerConfig Config,
                                               SignalSink *Sink)
    : Config(Config), Sink(Sink) {
  assert(Config.StartStateDelay >= 1 && "delay of 0 would never go hot");
  assert(Config.DecayInterval >= 2 && "degenerate decay interval");
}

NodeId BranchCorrelationGraph::findNode(BlockId X, BlockId Y) const {
  auto It = PairToNode.find(pairKey(X, Y));
  return It == PairToNode.end() ? InvalidNodeId : It->second;
}

NodeId BranchCorrelationGraph::getOrCreateNode(BlockId X, BlockId Y) {
  uint64_t Key = pairKey(X, Y);
  auto It = PairToNode.find(Key);
  if (It != PairToNode.end())
    return It->second;

  auto Id = static_cast<NodeId>(Nodes.size());
  BranchNode N;
  N.From = X;
  N.To = Y;
  N.StartDelayLeft = Config.StartStateDelay;
  Nodes.push_back(std::move(N));
  PairToNode.emplace(Key, Id);
  ++Stats.NodesCreated;
  return Id;
}

void BranchCorrelationGraph::resetContext() {
  Ctx = InvalidNodeId;
  Last = InvalidBlockId;
}

void BranchCorrelationGraph::forceContext(BlockId X, BlockId Y) {
  Ctx = getOrCreateNode(X, Y);
  Last = Y;
}

void BranchCorrelationGraph::onBlockDispatch(BlockId Next) {
  ++Stats.Hooks;

  // The first block of the program establishes half a pair; the second
  // establishes the first context.
  if (Last == InvalidBlockId) {
    Last = Next;
    return;
  }
  if (Ctx == InvalidNodeId) {
    Ctx = getOrCreateNode(Last, Next);
    Last = Next;
    return;
  }

  // Find (or lazily create) the correlation E for successor Next within
  // the current context. The inline cache is checked first (section
  // 4.1.2); on a miss the list of previously encountered successors is
  // searched; otherwise a new correlation is constructed.
  NodeId CtxId = Ctx;
  uint32_t CorrIdx;
  {
    BranchNode &N = Nodes[CtxId];
    if (!N.Corrs.empty() && N.Corrs[N.CacheIdx].Succ == Next) {
      CorrIdx = N.CacheIdx;
      ++Stats.InlineCacheHits;
    } else {
      ++Stats.ListSearches;
      CorrIdx = BranchNode::InvalidIdx;
      for (uint32_t I = 0; I < N.Corrs.size(); ++I)
        if (N.Corrs[I].Succ == Next) {
          CorrIdx = I;
          break;
        }
      if (CorrIdx == BranchNode::InvalidIdx) {
        CorrIdx = static_cast<uint32_t>(N.Corrs.size());
        Correlation C;
        C.Succ = Next;
        N.Corrs.push_back(C);
        ++Stats.EdgesCreated;
      } else if (CorrIdx > 0) {
        // Transpose heuristic: nudge the found correlation one slot
        // toward the front so hot successors of wide nodes (polymorphic
        // sites, big switches) stay cheap to find.
        std::swap(N.Corrs[CorrIdx], N.Corrs[CorrIdx - 1]);
        auto Fix = [CorrIdx](uint32_t &Idx) {
          if (Idx == CorrIdx)
            --Idx;
          else if (Idx == CorrIdx - 1)
            ++Idx;
        };
        Fix(N.CacheIdx);
        if (N.MaxIdx != BranchNode::InvalidIdx)
          Fix(N.MaxIdx);
        --CorrIdx;
      }
    }
  }

  // Resolve the correlation's target context (node N_YZ) lazily. This may
  // reallocate Nodes, so re-fetch references afterwards.
  if (Nodes[CtxId].Corrs[CorrIdx].Target == InvalidNodeId) {
    NodeId TargetId = getOrCreateNode(Last, Next);
    Nodes[CtxId].Corrs[CorrIdx].Target = TargetId;
    Nodes[TargetId].Preds.push_back(CtxId);
  }

  BranchNode &N = Nodes[CtxId];
  Correlation &C = N.Corrs[CorrIdx];
  C.Count.increment();
  if (N.Total != 0xffffffffu)
    ++N.Total;
  ++N.Execs;

  // Keep the inline cache pointed at the heaviest correlation; a simple
  // greedy update suffices since decay re-derives the true maximum.
  if (C.Count.value() >= N.Corrs[N.CacheIdx].Count.value())
    N.CacheIdx = CorrIdx;

  // Start-state delay: count down to "not rare" (section 3.3). Becoming
  // hot only makes the node *eligible*; its state is summarized to the
  // trace cache at the next decay pass (the paper re-checks state "during
  // the decay process" only), so branches executing fewer than a decay
  // interval of times never signal and never enter traces.
  if (N.StartDelayLeft > 0) {
    if (--N.StartDelayLeft == 0)
      ++Stats.HotPromotions;
  }

  // Periodic decay (section 4.1.1).
  if (++N.SinceDecay >= Config.DecayInterval) {
    N.SinceDecay = 0;
    decay(CtxId);
  }

  // Advance the context through the correlation's cached target.
  Ctx = Nodes[CtxId].Corrs[CorrIdx].Target;
  Last = Next;
}

void BranchCorrelationGraph::decay(NodeId Id) {
  ++Stats.DecayPasses;
  JTC_RECORD_EVENT(Telem, EventKind::DecayPass, Id);
  BranchNode &N = Nodes[Id];
  uint32_t Total = 0;
  for (Correlation &C : N.Corrs) {
    C.Count.decay();
    Total += C.Count.value();
  }
  N.Total = Total;
  evaluate(Id);
}

void BranchCorrelationGraph::deriveState(BranchNode &N) const {
  // Re-derive the maximally correlated successor.
  uint32_t MaxIdx = BranchNode::InvalidIdx;
  uint32_t MaxCount = 0;
  for (uint32_t I = 0; I < N.Corrs.size(); ++I) {
    uint32_t V = N.Corrs[I].Count.value();
    if (MaxIdx == BranchNode::InvalidIdx || V > MaxCount) {
      MaxIdx = I;
      MaxCount = V;
    }
  }
  N.MaxIdx = MaxIdx;

  NodeState State;
  uint32_t Bp = Config.thresholdBasisPoints();
  if (!N.hot()) {
    State = NodeState::NewlyCreated;
  } else if (N.Corrs.size() == 1) {
    State = NodeState::Unique;
  } else if (N.Total > 0 && Bp < 10000 &&
             static_cast<uint64_t>(MaxCount) * 10000 >=
                 static_cast<uint64_t>(Bp) * N.Total) {
    // At the 100% threshold the strong and unique states merge (paper
    // section 5.2): a branch with more than one observed successor is
    // never strong there, even in windows where every competing count
    // happens to have decayed to zero.
    State = NodeState::StronglyCorrelated;
  } else {
    State = NodeState::WeaklyCorrelated;
  }
  N.State = State;
}

void BranchCorrelationGraph::evaluate(NodeId Id) {
  BranchNode &N = Nodes[Id];
  deriveState(N);

  if (!N.hot())
    return;
  // A state change always signals. A change of the maximally correlated
  // successor matters only while it is usable for trace construction,
  // i.e. when the node is (or was) strongly correlated or unique -- a
  // weak node's flapping maximum is of no interest to the trace cache and
  // signalling it would swamp the signal budget (uniform switches flap on
  // nearly every decay).
  BlockId MaxSucc = N.maxSucc();
  if (N.State == N.AckState &&
      (MaxSucc == N.AckMaxSucc || N.State == NodeState::WeaklyCorrelated))
    return;
  N.AckState = N.State;
  N.AckMaxSucc = MaxSucc;
  ++Stats.Signals;
  JTC_RECORD_EVENT(Telem, EventKind::ProfilerSignal, Id,
                   static_cast<uint32_t>(N.State));
  if (Sink)
    Sink->onStateChange(Id);
}

std::vector<BcgNodeSnapshot> BranchCorrelationGraph::exportNodes() const {
  std::vector<BcgNodeSnapshot> Out;
  Out.reserve(Nodes.size());
  for (const BranchNode &N : Nodes) {
    BcgNodeSnapshot S;
    S.From = N.From;
    S.To = N.To;
    S.StartDelayLeft = N.StartDelayLeft;
    S.SinceDecay = N.SinceDecay;
    S.Execs = N.Execs;
    S.Corrs.reserve(N.Corrs.size());
    for (const Correlation &C : N.Corrs)
      S.Corrs.emplace_back(C.Succ, C.Count.value());
    Out.push_back(std::move(S));
  }
  return Out;
}

void BranchCorrelationGraph::importNodes(
    const std::vector<BcgNodeSnapshot> &Snapshot) {
  assert(Nodes.empty() && Ctx == InvalidNodeId &&
         "importNodes requires a fresh graph");
  Nodes.reserve(Snapshot.size());
  for (const BcgNodeSnapshot &S : Snapshot) {
    auto Id = static_cast<NodeId>(Nodes.size());
    BranchNode N;
    N.From = S.From;
    N.To = S.To;
    N.StartDelayLeft = S.StartDelayLeft;
    N.SinceDecay = S.SinceDecay;
    N.Execs = S.Execs;
    uint32_t Total = 0;
    N.Corrs.reserve(S.Corrs.size());
    for (const auto &[Succ, Count] : S.Corrs) {
      Correlation C;
      C.Succ = Succ;
      C.Count.reset(Count);
      Total += Count;
      N.Corrs.push_back(C);
    }
    N.Total = Total;
    Nodes.push_back(std::move(N));
    PairToNode.emplace(pairKey(S.From, S.To), Id);
  }
  // Resolve correlation targets and predecessor links (the snapshot's
  // node set is closed under "has a correlation", but a target context
  // the donor never entered may legitimately be absent -- it stays
  // lazily resolvable, exactly as after a fresh edge creation). Then
  // re-derive and acknowledge each node's state so seeding emits no
  // signals.
  for (NodeId Id = 0; Id < Nodes.size(); ++Id) {
    BranchNode &N = Nodes[Id];
    for (Correlation &C : N.Corrs) {
      C.Target = findNode(N.To, C.Succ);
      if (C.Target != InvalidNodeId)
        Nodes[C.Target].Preds.push_back(Id);
    }
    deriveState(N);
    N.AckState = N.State;
    N.AckMaxSucc = N.maxSucc();
  }
}

void BranchCorrelationGraph::acknowledge(NodeId Id) {
  BranchNode &N = Nodes[Id];
  N.AckState = N.State;
  N.AckMaxSucc = N.maxSucc();
}

void BranchCorrelationGraph::dump(std::ostream &OS) const {
  OS << "branch correlation graph: " << Nodes.size() << " nodes\n";
  for (NodeId Id = 0; Id < Nodes.size(); ++Id) {
    const BranchNode &N = Nodes[Id];
    OS << "  node " << Id << " (" << N.From << " -> " << N.To << ") "
       << nodeStateName(N.State) << (N.hot() ? "" : " [cold]")
       << " execs=" << N.Execs << " weight=" << N.Total << "\n";
    for (const Correlation &C : N.Corrs)
      OS << "    succ " << C.Succ << " count=" << C.Count.value()
         << " p=" << N.probabilityOf(C.Succ) << "\n";
  }
}
