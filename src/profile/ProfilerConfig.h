//===- profile/ProfilerConfig.h - Profiler parameters -----------*- C++ -*-===//
///
/// \file
/// The two parameters the paper's evaluation sweeps (section 5.2) plus the
/// fixed decay interval of section 4.1.1.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_PROFILE_PROFILERCONFIG_H
#define JTC_PROFILE_PROFILERCONFIG_H

#include <cstdint>

namespace jtc {

struct ProfilerConfig {
  /// How many times a branch must execute before it leaves the
  /// newly-created state and may be included in a trace. The paper sweeps
  /// {1, 64, 4096}; 64 gave their best results.
  uint32_t StartStateDelay = 64;

  /// Executions of a branch between decay passes over its correlations.
  /// The paper fixes this at 256 (one right shift every 256 executions).
  uint32_t DecayInterval = 256;

  /// Correlation ratio at which a branch counts as strongly correlated.
  /// This equals the trace completion threshold; the paper sweeps
  /// {1.00, 0.99, 0.98, 0.97, 0.95} and recommends 0.97. Stored in basis
  /// points internally for exact comparisons at 100%.
  double CompletionThreshold = 0.97;

  /// \p CompletionThreshold in basis points (0.97 -> 9700).
  uint32_t thresholdBasisPoints() const {
    return static_cast<uint32_t>(CompletionThreshold * 10000.0 + 0.5);
  }
};

} // namespace jtc

#endif // JTC_PROFILE_PROFILERCONFIG_H
