//===- profile/BranchCorrelationGraph.h - The BCG profiler ------*- C++ -*-===//
///
/// \file
/// The branch correlation graph of paper sections 3.5 and 4.1: a depth-one
/// per-address history table over basic-block transitions. Each node N_XY
/// represents an executed block pair (X, Y); each correlation record E_XYZ
/// inside N_XY counts, in a 16-bit saturating counter, how often block Z
/// followed the pair. Correlations decay (shift right) every
/// DecayInterval executions of the node, weighting recent behaviour; at
/// each decay the node's state tag (newly created / weakly / strongly
/// correlated / unique) and its maximally correlated successor are
/// re-derived, and a state-change signal is emitted to the trace cache
/// when either differs from the last acknowledged value.
///
/// The per-dispatch hook follows paper section 4.1.2: an inline cache per
/// branch context predicts the next block; on a miss the correlation list
/// is searched and extended lazily, and each correlation caches the node
/// id of its target context so advancing the context is one load.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_PROFILE_BRANCHCORRELATIONGRAPH_H
#define JTC_PROFILE_BRANCHCORRELATIONGRAPH_H

#include "profile/ProfilerConfig.h"
#include "support/Ids.h"
#include "support/SaturatingCounter.h"

#include <cassert>
#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

namespace jtc {

class EventRing;

/// Identifies a node (branch context) in the graph.
using NodeId = uint32_t;
constexpr NodeId InvalidNodeId = 0xffffffffu;

/// The four correlation states of paper section 4.1.1, in descending
/// degree of correlation: Unique > StronglyCorrelated > WeaklyCorrelated >
/// NewlyCreated.
enum class NodeState : uint8_t {
  NewlyCreated,       ///< Start-state delay has not yet expired.
  WeaklyCorrelated,   ///< Best successor below the threshold.
  StronglyCorrelated, ///< Best successor at or above the threshold.
  Unique,             ///< Only one successor has ever been observed.
};

const char *nodeStateName(NodeState S);

/// One correlation record E_XYZ stored inside node N_XY.
struct Correlation {
  BlockId Succ = InvalidBlockId;  ///< Z: the successor block.
  SaturatingCounter Count;        ///< 16-bit decayed execution count.
  NodeId Target = InvalidNodeId;  ///< Node N_YZ, resolved lazily.
};

/// One branch context N_XY.
class BranchNode {
public:
  BlockId from() const { return From; }
  BlockId to() const { return To; }
  NodeState state() const { return State; }

  /// True once the start-state delay has expired ("not rare").
  bool hot() const { return StartDelayLeft == 0; }

  /// Sum of all correlation counts (the node weight).
  uint32_t totalWeight() const { return Total; }

  /// Total executions of this branch, undiminished by decay.
  uint64_t executions() const { return Execs; }

  const std::vector<Correlation> &correlations() const { return Corrs; }

  /// Node ids of contexts with a correlation edge into this node.
  const std::vector<NodeId> &predecessors() const { return Preds; }

  /// Block of the maximally correlated successor as of the last state
  /// evaluation, or InvalidBlockId when none exists yet.
  BlockId maxSucc() const {
    return MaxIdx == InvalidIdx ? InvalidBlockId : Corrs[MaxIdx].Succ;
  }

  /// Target node of the maximally correlated successor, or InvalidNodeId.
  NodeId maxSuccNode() const {
    return MaxIdx == InvalidIdx ? InvalidNodeId : Corrs[MaxIdx].Target;
  }

  /// P(Succ | this pair) from the decayed counters; 0 if never observed
  /// or if the node weight is 0.
  double probabilityOf(BlockId Succ) const;

  /// Probability of the maximally correlated successor.
  double maxProbability() const {
    return MaxIdx == InvalidIdx ? 0.0 : probabilityOf(Corrs[MaxIdx].Succ);
  }

private:
  friend class BranchCorrelationGraph;
  static constexpr uint32_t InvalidIdx = 0xffffffffu;

  BlockId From = InvalidBlockId;
  BlockId To = InvalidBlockId;
  NodeState State = NodeState::NewlyCreated;
  uint32_t StartDelayLeft = 0;
  uint32_t SinceDecay = 0;
  uint32_t Total = 0;
  uint64_t Execs = 0;
  uint32_t MaxIdx = InvalidIdx;   ///< Index into Corrs, cached at evaluation.
  uint32_t CacheIdx = 0;          ///< Inline cache: predicted correlation.
  NodeState AckState = NodeState::NewlyCreated; ///< Last signalled state.
  BlockId AckMaxSucc = InvalidBlockId;          ///< Last signalled max succ.
  std::vector<Correlation> Corrs;
  std::vector<NodeId> Preds;
};

/// Portable snapshot of one branch context, captured by
/// BranchCorrelationGraph::exportNodes() and restored by importNodes().
/// Carries exactly the state a warm-started session needs: the decayed
/// correlation counters, the remaining start-state delay and the decay
/// phase. Correlation targets and predecessor links are re-resolved on
/// import; derived state (tag, max successor) is re-derived.
struct BcgNodeSnapshot {
  BlockId From = InvalidBlockId;
  BlockId To = InvalidBlockId;
  uint32_t StartDelayLeft = 0;
  uint32_t SinceDecay = 0;
  uint64_t Execs = 0;
  /// (successor block, decayed 16-bit count), in correlation-list order.
  std::vector<std::pair<BlockId, uint16_t>> Corrs;
};

/// Receives state-change signals (paper section 4.2); implemented by the
/// trace cache.
class SignalSink {
public:
  virtual ~SignalSink();
  /// Node \p Id's state or maximally correlated successor changed.
  virtual void onStateChange(NodeId Id) = 0;
};

/// The profiler proper.
class BranchCorrelationGraph {
public:
  explicit BranchCorrelationGraph(ProfilerConfig Config,
                                  SignalSink *Sink = nullptr);

  /// Installs the signal receiver (the trace cache). May be null.
  void setSink(SignalSink *S) { Sink = S; }

  /// Attaches the telemetry event ring; signals and decay passes are
  /// recorded into it. Null (the default) disables recording.
  void setTelemetry(EventRing *R) { Telem = R; }

  const ProfilerConfig &config() const { return Config; }

  //===--- Hot path --------------------------------------------------===//

  /// The per-dispatch profiler hook: records that block \p Next was
  /// dispatched after the current context's pair, advances the context,
  /// and runs start-state / decay bookkeeping. May emit signals.
  void onBlockDispatch(BlockId Next);

  /// Forgets the current context (used at program start).
  void resetContext();

  /// Forces the context to pair (X, Y) without recording an execution;
  /// used to resynchronize after a trace dispatch, whose inlined blocks
  /// carry no profiling hooks. Creates the node lazily if needed.
  void forceContext(BlockId X, BlockId Y);

  //===--- Introspection (trace builder API) -------------------------===//

  size_t numNodes() const { return Nodes.size(); }

  const BranchNode &node(NodeId Id) const {
    assert(Id < Nodes.size() && "invalid node id");
    return Nodes[Id];
  }

  /// Finds node N_XY, or InvalidNodeId if that pair was never observed.
  NodeId findNode(BlockId X, BlockId Y) const;

  /// Current context node (InvalidNodeId before two blocks have run).
  NodeId currentContext() const { return Ctx; }

  /// Records the node's present (state, max successor) as acknowledged so
  /// the profiler will not re-signal until they change again. Called by
  /// the trace cache for every node it visited while rebuilding, which
  /// prevents signal cascades (paper section 4.2).
  void acknowledge(NodeId Id);

  //===--- Warm handoff ----------------------------------------------===//

  /// Captures every node's counters for seeding another graph over the
  /// same block id space (server-layer profile snapshot).
  std::vector<BcgNodeSnapshot> exportNodes() const;

  /// Restores a node set captured by exportNodes() into this graph, which
  /// must be fresh (no nodes, no recorded context). Each node's state and
  /// max successor are re-derived from the imported counters and
  /// acknowledged immediately, so importing emits no signals -- a seeded
  /// session starts from the donor's steady state, not from a burst of
  /// rebuild work.
  void importNodes(const std::vector<BcgNodeSnapshot> &Snapshot);

  struct GraphStats {
    uint64_t Hooks = 0;           ///< onBlockDispatch calls.
    uint64_t InlineCacheHits = 0; ///< Predictions that matched.
    uint64_t ListSearches = 0;    ///< Misses resolved by list search.
    uint64_t NodesCreated = 0;
    uint64_t EdgesCreated = 0;
    uint64_t DecayPasses = 0;
    uint64_t HotPromotions = 0; ///< Nodes whose start delay expired.
    uint64_t Signals = 0;
  };

  const GraphStats &stats() const { return Stats; }

  /// Dumps every node with its state and correlations.
  void dump(std::ostream &OS) const;

private:
  NodeId getOrCreateNode(BlockId X, BlockId Y);

  /// Re-derives (State, MaxIdx) from \p N's counters, without signalling.
  void deriveState(BranchNode &N) const;

  /// deriveState, then emits a signal if the acknowledged (state, max
  /// successor) no longer matches.
  void evaluate(NodeId Id);

  /// Shifts every correlation of \p Id right one bit and re-evaluates.
  void decay(NodeId Id);

  ProfilerConfig Config;
  SignalSink *Sink;
  EventRing *Telem = nullptr;
  std::vector<BranchNode> Nodes;
  std::unordered_map<uint64_t, NodeId> PairToNode;
  NodeId Ctx = InvalidNodeId;
  BlockId Last = InvalidBlockId;
  GraphStats Stats;
};

} // namespace jtc

#endif // JTC_PROFILE_BRANCHCORRELATIONGRAPH_H
