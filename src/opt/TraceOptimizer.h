//===- opt/TraceOptimizer.h - Trace-level optimization ----------*- C++ -*-===//
///
/// \file
/// The paper's future-work step (section 6): traces are "excellent
/// targets for dynamic optimization" because they have a single entry
/// and a recorded direction for every branch. This module makes that
/// concrete:
///
///  - linearizeTrace() turns a trace's block sequence into straight-line
///    *segments* of instructions in which every conditional branch or
///    switch becomes a *guard* (an assertion that execution follows the
///    recorded direction, paper section 3.7 / rePLay's assertions).
///    Segments break at call/return boundaries, where the locals frame
///    changes.
///
///  - optimizeSegment() runs a stack-caching optimizer over one segment:
///    constant folding, deferred loads and constants, store forwarding,
///    dead store elimination and guard elimination. State is materialized
///    at every guard, so an early exit observes the unoptimized machine
///    state. When linearization was given static analysis facts
///    (analysis::ModuleAnalysis), each guard carries the set of locals
///    *live* at its exit pc and the optimizer flushes only those: dead
///    locals may hold stale values at a side exit because no path from
///    the exit reads them before writing them.
///
/// The optimizer is measured (bench/ablation_trace_optimizer) rather than
/// wired into the dispatch loop; its correctness contract -- identical
/// final locals, operand stack and output for any initial state -- is
/// enforced by an evaluator-based equivalence test suite.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_OPT_TRACEOPTIMIZER_H
#define JTC_OPT_TRACEOPTIMIZER_H

#include "analysis/Liveness.h"
#include "interp/PreparedModule.h"
#include "opt/OptConfig.h"
#include "trace/Trace.h"

#include <cstdint>
#include <vector>

namespace jtc {

namespace analysis {
class ModuleAnalysis;
} // namespace analysis

/// One element of a linearized trace segment.
struct LinearOp {
  enum class Kind : uint8_t {
    Instr, ///< An ordinary non-control instruction.
    Guard, ///< A branch converted to a direction assertion.
  };

  Kind K = Kind::Instr;
  /// For Instr: the instruction. For Guard: I.Op is the original branch
  /// opcode (its pops define the guard's operands).
  Instruction I;
  /// For Guard: true when the trace follows the branch's taken edge.
  bool GuardTaken = false;
  /// For Guard: the pc interpretation resumes at when the guard fires
  /// (the direction the trace did NOT record). Switch guards can exit to
  /// several pcs and leave this 0.
  uint32_t ExitPc = 0;
  /// For Guard: when true, LiveAtExit holds the root-frame locals live at
  /// ExitPc and the optimizer may leave dead locals stale at this exit.
  /// When false (no analysis facts, switch guard, or guard inside an
  /// inlined frame) every local must be intact.
  bool HasLiveAtExit = false;
  analysis::LocalSet LiveAtExit;
  /// Source position: the trace block (index into Trace::Blocks) and the
  /// method pc this op was lowered from. Exact on linearizeTrace output;
  /// the optimizer synthesizes and moves ops, so optimized segments carry
  /// positions only as provenance hints. The trace backends (src/backend)
  /// use these to attribute a side exit or trap back to the interpreter's
  /// block/instruction accounting.
  uint32_t SrcBlockIndex = 0;
  uint32_t SrcPc = 0;

  static LinearOp instr(Instruction In) {
    LinearOp Op;
    Op.I = In;
    return Op;
  }
  static LinearOp guard(Opcode Branch, bool Taken) {
    LinearOp Op;
    Op.K = Kind::Guard;
    Op.I = Instruction(Branch);
    Op.GuardTaken = Taken;
    return Op;
  }
};

/// A straight-line run of operations within one method's frame (plus,
/// when calls were inlined, the renamed locals of flattened callees).
struct LinearSegment {
  uint32_t MethodId = 0;
  uint32_t NumLocals = 0;
  /// Locals at or above this index are synthetic (renamed inlined-callee
  /// frames): they are dead outside the segment, so the optimizer never
  /// materializes deferred stores to them at exits.
  uint32_t ScratchBase = 0;
  /// (local, value) pairs proved constant at the segment's entry pc by
  /// static value analysis. The optimizer seeds its local-value map with
  /// them, enabling folding and guard elimination across the segment
  /// boundary; the real local already holds the value, so no flush is
  /// ever owed for an unmodified seeded local.
  std::vector<std::pair<uint32_t, int64_t>> EntryConsts;
  std::vector<LinearOp> Ops;

  /// Ordinary instructions (guards excluded).
  size_t numInstructions() const;
};

/// Splits \p T into optimizable straight-line segments. Conditional
/// branches and switches interior to the trace become guards; calls,
/// returns and the trace end terminate segments.
///
/// With \p InlineStaticCalls, static calls whose callee blocks are part
/// of the trace are flattened into the segment instead of breaking it:
/// callee locals are renamed above the caller's frame, argument passing
/// becomes explicit stores, and returns become plain data flow -- the
/// "traces that inline small methods" unit of Duesterwald & Bruening
/// that the paper cites as the optimal optimization shape. (A real
/// system would need deoptimization metadata to reconstruct frames at
/// guard exits inside inlined code; this implementation measures the
/// headroom.) Virtual calls still break segments: they would need
/// receiver-class guards.
///
/// With \p Facts (a ModuleAnalysis over PM's module), every conditional
/// guard in a root (non-inlined) frame is annotated with the locals live
/// at its exit pc, which lets the optimizer skip dead locals when it
/// flushes deferred stores at that guard.
std::vector<LinearSegment>
linearizeTrace(const PreparedModule &PM, const Trace &T,
               bool InlineStaticCalls = false,
               const analysis::ModuleAnalysis *Facts = nullptr);

/// Optimization statistics, accumulated across segments.
struct OptStats {
  uint64_t InstructionsBefore = 0;
  uint64_t InstructionsAfter = 0;
  uint64_t GuardsBefore = 0;
  uint64_t GuardsAfter = 0;
  uint64_t ConstantsFolded = 0;
  uint64_t DeadStores = 0;
  uint64_t LoadsForwarded = 0;
  uint64_t GuardsEliminated = 0;
  /// Deferred local stores emitted because a surviving guard (side exit)
  /// must be able to observe the local's value.
  uint64_t GuardExitLocalsFlushed = 0;
  /// Deferred local stores a guard skipped because liveness proved the
  /// local dead at the exit pc.
  uint64_t GuardExitLocalsSkipped = 0;
  /// Heap loads eliminated because the cell's value was already known
  /// (dominating load or store to the same field/element).
  uint64_t MemLoadsEliminated = 0;
  /// Heap stores eliminated: overwritten before any observation point,
  /// or targeting a non-escaping allocation that dies in the segment.
  uint64_t MemDeadStores = 0;
  /// Pending heap stores that crossed at least one side exit because the
  /// target allocation is unreachable from the exit path.
  uint64_t MemStoresSunk = 0;

  /// Average number of locals materialized per surviving side exit -- the
  /// guard materialization cost liveness is meant to shrink.
  double localsPerSideExit() const {
    return GuardsAfter == 0 ? 0.0
                            : static_cast<double>(GuardExitLocalsFlushed) /
                                  static_cast<double>(GuardsAfter);
  }

  double reduction() const {
    return InstructionsBefore == 0
               ? 0.0
               : 1.0 - static_cast<double>(InstructionsAfter) /
                           static_cast<double>(InstructionsBefore);
  }
};

/// Optimizes one segment. The result is observably equivalent: executed
/// from any initial (locals, stack), it produces the same final locals,
/// stack, and Iprint output, and at every remaining guard the machine
/// state equals the unoptimized state -- restricted, for guards that
/// carry a LiveAtExit set, to the locals live at the exit.
///
/// \p Config selects which passes run (default: all) and carries the
/// test-only UnsoundPass mutation hook; with a mutation set the
/// equivalence contract is deliberately broken and the translation
/// validator (src/validate) must reject the result.
/// \p M (when given) enables the escape-licensed memory eliminations
/// that must prove an omitted store trap-free from class field counts;
/// without it those eliminations stay off (the alias-neutral ones --
/// redundant loads, overwritten stores -- do not need it).
LinearSegment optimizeSegment(const LinearSegment &In, OptStats &Stats,
                              const OptConfig &Config,
                              const Module *M = nullptr);
LinearSegment optimizeSegment(const LinearSegment &In, OptStats &Stats);

/// Convenience: linearize + optimize every segment of \p T, accumulating
/// into \p Stats; returns the optimized segments.
std::vector<LinearSegment>
optimizeTrace(const PreparedModule &PM, const Trace &T, OptStats &Stats,
              bool InlineStaticCalls = false,
              const analysis::ModuleAnalysis *Facts = nullptr,
              const OptConfig &Config = OptConfig());

} // namespace jtc

#endif // JTC_OPT_TRACEOPTIMIZER_H
