//===- opt/TraceOptimizer.cpp ---------------------------------------------===//

#include "opt/TraceOptimizer.h"

#include "analysis/Analysis.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <optional>

using namespace jtc;

size_t LinearSegment::numInstructions() const {
  size_t N = 0;
  for (const LinearOp &Op : Ops)
    N += Op.K == LinearOp::Kind::Instr;
  return N;
}

//===----------------------------------------------------------------------===//
// Linearization
//===----------------------------------------------------------------------===//

namespace {

/// True when \p V can be re-emitted as an Iconst immediate.
bool fitsImm(int64_t V) {
  return V >= std::numeric_limits<int32_t>::min() &&
         V <= std::numeric_limits<int32_t>::max();
}

} // namespace

std::vector<LinearSegment>
jtc::linearizeTrace(const PreparedModule &PM, const Trace &T,
                    bool InlineStaticCalls,
                    const analysis::ModuleAnalysis *Facts) {
  std::vector<LinearSegment> Segments;
  const Module &M = PM.module();
  constexpr unsigned MaxInlineDepth = 8;
  constexpr uint32_t MaxFlatLocals = 512;

  LinearSegment Cur;
  bool Open = false;
  // The inline frame stack: local-index base per flattened frame. The
  // caller (root) frame has base 0; inlined callees rename their locals
  // above the frames below them.
  struct FrameCtx {
    uint32_t MethodId = 0;
    uint32_t LocalBase = 0;
  };
  std::vector<FrameCtx> Inline;

  auto Begin = [&](uint32_t MethodId, uint32_t StartPc) {
    Cur = LinearSegment();
    Cur.MethodId = MethodId;
    Cur.NumLocals = M.Methods[MethodId].NumLocals;
    Cur.ScratchBase = Cur.NumLocals;
    Inline.assign(1, {MethodId, 0});
    Open = true;
    // Seed the optimizer with locals proved constant at the entry pc.
    if (const analysis::MethodAnalysis *MA =
            Facts ? Facts->method(MethodId) : nullptr) {
      analysis::FrameState S = MA->Values.stateBefore(StartPc);
      if (S.Reachable)
        for (uint32_t L = 0; L < S.Locals.size(); ++L)
          if (S.Locals[L].isConst() && fitsImm(S.Locals[L].Lo))
            Cur.EntryConsts.emplace_back(L, S.Locals[L].Lo);
    }
  };
  auto End = [&] {
    if (Open && !Cur.Ops.empty())
      Segments.push_back(std::move(Cur));
    Open = false;
    Inline.clear();
  };

  for (size_t Bi = 0; Bi < T.Blocks.size(); ++Bi) {
    const BasicBlock &BB = PM.block(T.Blocks[Bi]);
    const Method &Mth = M.Methods[BB.MethodId];
    // Stamps the source position onto an op before appending it.
    auto Push = [&](LinearOp Op, uint32_t Pc) {
      Op.SrcBlockIndex = static_cast<uint32_t>(Bi);
      Op.SrcPc = Pc;
      Cur.Ops.push_back(std::move(Op));
    };
    // A block in a different method than the current inline frame means
    // the previous segment ended (call break, return past the root, or
    // trace start).
    if (!Open || Inline.back().MethodId != BB.MethodId) {
      End();
      Begin(BB.MethodId, BB.StartPc);
    }
    uint32_t Base = Inline.back().LocalBase;

    for (uint32_t Pc = BB.StartPc; Pc < BB.EndPc; ++Pc) {
      const Instruction &I = Mth.Code[Pc];
      bool Last = Pc + 1 == BB.EndPc;
      switch (opKind(I.Op)) {
      case OpKind::Normal: {
        Instruction Remapped = I;
        if (Base > 0 && (I.Op == Opcode::Iload || I.Op == Opcode::Istore ||
                         I.Op == Opcode::Iinc))
          Remapped.A += static_cast<int32_t>(Base);
        Push(LinearOp::instr(Remapped), Pc);
        break;
      }
      case OpKind::Jump:
        // The trace sequence already encodes the transfer.
        assert(Last && "goto mid-block");
        break;
      case OpKind::Branch: {
        assert(Last && "branch mid-block");
        if (Bi + 1 == T.Blocks.size()) {
          // The trace's final terminator has no recorded direction.
          End();
          break;
        }
        const BasicBlock &NextBB = PM.block(T.Blocks[Bi + 1]);
        bool Taken = NextBB.MethodId == BB.MethodId &&
                     NextBB.StartPc == static_cast<uint32_t>(I.A);
        LinearOp G = LinearOp::guard(I.Op, Taken);
        // The side exit resumes at the direction the trace did not take.
        G.ExitPc = Taken ? Pc + 1 : static_cast<uint32_t>(I.A);
        // Liveness at the exit is only meaningful for root-frame guards:
        // inside an inlined frame the caller's locals escape through the
        // (unmodeled) frame reconstruction, so stay conservative there.
        if (Facts && Inline.size() == 1) {
          if (const analysis::MethodAnalysis *MA = Facts->method(BB.MethodId)) {
            G.HasLiveAtExit = true;
            G.LiveAtExit = MA->Liveness.liveIn(G.ExitPc);
          }
        }
        Push(std::move(G), Pc);
        break;
      }
      case OpKind::Switch:
        assert(Last && "switch mid-block");
        if (Bi + 1 == T.Blocks.size()) {
          End();
          break;
        }
        // The selected case is not tracked through the guard, only that
        // the selector must reproduce the recorded direction; switch
        // guards are therefore never eliminated.
        Push(LinearOp::guard(I.Op, /*Taken=*/true), Pc);
        break;
      case OpKind::Call: {
        assert(Last && "call mid-block");
        uint32_t Callee =
            I.Op == Opcode::InvokeStatic ? static_cast<uint32_t>(I.A)
                                         : InvalidMethod;
        bool CanInline =
            InlineStaticCalls && Open && Callee != InvalidMethod &&
            Bi + 1 < T.Blocks.size() &&
            T.Blocks[Bi + 1] == PM.methodEntryBlock(Callee) &&
            Inline.size() < MaxInlineDepth;
        if (CanInline) {
          const Method &CM = M.Methods[Callee];
          uint32_t NewBase = Cur.NumLocals;
          if (NewBase + CM.NumLocals > MaxFlatLocals)
            CanInline = false;
          if (CanInline) {
            // Argument passing becomes explicit stores (deepest argument
            // lands in the lowest renamed local), and non-argument
            // locals are zeroed as pushFrame would.
            for (uint32_t K = CM.NumArgs; K-- > 0;)
              Push(LinearOp::instr(Instruction(
                       Opcode::Istore, static_cast<int32_t>(NewBase + K))),
                   Pc);
            for (uint32_t K = CM.NumArgs; K < CM.NumLocals; ++K) {
              Push(LinearOp::instr(Instruction(Opcode::Iconst, 0)), Pc);
              Push(LinearOp::instr(Instruction(
                       Opcode::Istore, static_cast<int32_t>(NewBase + K))),
                   Pc);
            }
            Cur.NumLocals = NewBase + CM.NumLocals;
            Inline.push_back({Callee, NewBase});
            break;
          }
        }
        // Not inlinable: the call stays outside the segments.
        End();
        break;
      }
      case OpKind::Ret:
        assert(Last && "return mid-block");
        if (Open && Inline.size() > 1) {
          // Returning from an inlined callee: the return value (if any)
          // is already on the stack; just drop the frame.
          Inline.pop_back();
          break;
        }
        // Returning past the segment's root frame.
        End();
        break;
      case OpKind::End:
        End();
        break;
      }
      (void)Last;
    }
  }
  End();
  return Segments;
}

//===----------------------------------------------------------------------===//
// Folding helpers
//===----------------------------------------------------------------------===//

namespace {

/// Folds A op B with the Machine's wrap-around semantics. Returns false
/// when the operation cannot be folded safely (division that would trap)
/// or the result cannot be re-emitted as an immediate.
bool foldBinary(Opcode Op, int64_t A, int64_t B, int64_t &Out) {
  auto U = [](int64_t V) { return static_cast<uint64_t>(V); };
  switch (Op) {
  case Opcode::Iadd:
    Out = static_cast<int64_t>(U(A) + U(B));
    return true;
  case Opcode::Isub:
    Out = static_cast<int64_t>(U(A) - U(B));
    return true;
  case Opcode::Imul:
    Out = static_cast<int64_t>(U(A) * U(B));
    return true;
  case Opcode::Idiv:
    if (B == 0)
      return false;
    Out = (A == std::numeric_limits<int64_t>::min() && B == -1) ? A : A / B;
    return true;
  case Opcode::Irem:
    if (B == 0)
      return false;
    Out = (A == std::numeric_limits<int64_t>::min() && B == -1) ? 0 : A % B;
    return true;
  case Opcode::Ishl:
    Out = static_cast<int64_t>(U(A) << (B & 63));
    return true;
  case Opcode::Ishr:
    Out = A >> (B & 63);
    return true;
  case Opcode::Iushr:
    Out = static_cast<int64_t>(U(A) >> (B & 63));
    return true;
  case Opcode::Iand:
    Out = A & B;
    return true;
  case Opcode::Ior:
    Out = A | B;
    return true;
  case Opcode::Ixor:
    Out = A ^ B;
    return true;
  default:
    return false;
  }
}

bool foldBinaryImm(Opcode Op, int64_t A, int64_t B, int64_t &Out) {
  return foldBinary(Op, A, B, Out) && fitsImm(Out);
}

bool isBinaryArith(Opcode Op) {
  switch (Op) {
  case Opcode::Iadd:
  case Opcode::Isub:
  case Opcode::Imul:
  case Opcode::Idiv:
  case Opcode::Irem:
  case Opcode::Ishl:
  case Opcode::Ishr:
  case Opcode::Iushr:
  case Opcode::Iand:
  case Opcode::Ior:
  case Opcode::Ixor:
    return true;
  default:
    return false;
  }
}

/// Evaluates a one- or two-operand conditional branch. For two-operand
/// compares \p A is the deeper value.
bool evalBranch(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::IfEq:
    return A == 0;
  case Opcode::IfNe:
    return A != 0;
  case Opcode::IfLt:
    return A < 0;
  case Opcode::IfGe:
    return A >= 0;
  case Opcode::IfGt:
    return A > 0;
  case Opcode::IfLe:
    return A <= 0;
  case Opcode::IfIcmpEq:
    return A == B;
  case Opcode::IfIcmpNe:
    return A != B;
  case Opcode::IfIcmpLt:
    return A < B;
  case Opcode::IfIcmpGe:
    return A >= B;
  case Opcode::IfIcmpGt:
    return A > B;
  case Opcode::IfIcmpLe:
    return A <= B;
  default:
    assert(false && "not a conditional branch");
    return false;
  }
}

//===----------------------------------------------------------------------===//
// The stack-caching optimizer
//===----------------------------------------------------------------------===//

/// Abstract operand-stack entry. Materialized entries live on the real
/// stack; deferred entries (always a contiguous suffix on top) exist only
/// in the optimizer's head and are emitted on demand.
struct Entry {
  enum class Kind : uint8_t { Materialized, Const, Load } K;
  int64_t C = 0;      ///< Kind::Const: the value.
  uint32_t Local = 0; ///< Kind::Load: the local index.
};

/// What the optimizer knows about one local's current value.
struct LocalVal {
  enum class Kind : uint8_t { Unknown, Const, Copy } K = Kind::Unknown;
  int64_t C = 0;    ///< Kind::Const.
  uint32_t Src = 0; ///< Kind::Copy: the (non-dirty) source local.
};

/// Identity of one heap cell the optimizer can reason about: the local
/// currently holding the base reference plus a constant index. Valid only
/// while the base local is not redefined (redefinition drops the facts).
struct CellKey {
  enum class Group : uint8_t { Field, Elem, Len };
  Group G = Group::Field;
  uint32_t Base = 0;
  int32_t Index = 0;
  bool operator==(const CellKey &O) const = default;
};

/// What the optimizer knows about one cell's current content.
struct CellVal {
  CellKey Key;
  Entry Val; ///< Kind::Const or Kind::Load only.
};

/// A heap store held back (not yet emitted). It may be overwritten (dead
/// store), sunk past side exits that cannot reach the allocation, or
/// flushed before the next emitted effect.
struct PendingHeapStore {
  CellKey Key;
  Entry Val;     ///< Kind::Const or Kind::Load only.
  Instruction I; ///< The PutField/Iastore to re-emit.
  /// Provably cannot trap (fresh allocation, index in bounds). Required
  /// for any elimination or reordering that skips the store's checks.
  bool NoTrap = false;
  bool Sunk = false; ///< Already counted as sunk past an exit.
};

/// Tracks a local holding a freshly allocated, not-yet-escaped object:
/// such a reference aliases nothing else in the segment.
struct FreshAlloc {
  bool Fresh = false;
  bool Escaped = false;
  bool IsArray = false;
  int32_t ClassId = -1;
  int64_t ConstLen = -1;
};

class SegmentOptimizer {
public:
  SegmentOptimizer(const LinearSegment &In, OptStats &Stats,
                   const OptConfig &Cfg, const Module *Mod)
      : In(In), Stats(Stats), Cfg(Cfg), Mod(Mod) {
    Out.MethodId = In.MethodId;
    Out.NumLocals = In.NumLocals;
    Out.ScratchBase = In.ScratchBase;
    Out.EntryConsts = In.EntryConsts;
    Vals.assign(In.NumLocals, LocalVal());
    Dirty.assign(In.NumLocals, false);
    Fresh.assign(In.NumLocals, FreshAlloc());
    // Statically proved entry constants: known but clean (the real local
    // already holds the value, so nothing is owed at exits).
    for (const auto &[L, C] : In.EntryConsts)
      Vals[L] = {LocalVal::Kind::Const, C, 0};
    // Local access positions, for the liveness queries that decide
    // whether a displaced copy must be pinned or is simply dead.
    Reads.assign(In.NumLocals, {});
    Writes.assign(In.NumLocals, {});
    for (size_t I = 0; I < In.Ops.size(); ++I) {
      const LinearOp &Op = In.Ops[I];
      if (Op.K != LinearOp::Kind::Instr) {
        Guards.push_back(I);
        continue;
      }
      auto X = static_cast<uint32_t>(Op.I.A);
      switch (Op.I.Op) {
      case Opcode::Iload:
        Reads[X].push_back(I);
        break;
      case Opcode::Istore:
        Writes[X].push_back(I);
        break;
      case Opcode::Iinc:
        Reads[X].push_back(I);
        Writes[X].push_back(I);
        break;
      default:
        break;
      }
    }
  }

  LinearSegment run();

private:
  void emit(Instruction I) { Out.Ops.push_back(LinearOp::instr(I)); }

  /// Emits the pushes for every deferred entry, bottom-up, turning them
  /// into materialized entries.
  void materializeAll() {
    for (Entry &E : AbstractStack) {
      switch (E.K) {
      case Entry::Kind::Materialized:
        break;
      case Entry::Kind::Const:
        emit(Instruction(Opcode::Iconst, static_cast<int32_t>(E.C)));
        break;
      case Entry::Kind::Load:
        assert(!Dirty[E.Local] && "deferred load of a dirty local");
        emit(Instruction(Opcode::Iload, static_cast<int32_t>(E.Local)));
        markExposed(E.Local); // a persistent stack copy of the reference
        break;
      }
      E.K = Entry::Kind::Materialized;
    }
  }

  /// Materializes every deferred load of local \p X (and, to preserve
  /// stack order, everything beneath the highest such load).
  void materializeLoadsOf(uint32_t X) {
    size_t Highest = AbstractStack.size();
    for (size_t I = AbstractStack.size(); I-- > 0;) {
      if (AbstractStack[I].K == Entry::Kind::Load &&
          AbstractStack[I].Local == X) {
        Highest = I;
        break;
      }
    }
    if (Highest == AbstractStack.size())
      return;
    for (size_t I = 0; I <= Highest; ++I) {
      Entry &E = AbstractStack[I];
      switch (E.K) {
      case Entry::Kind::Materialized:
        break;
      case Entry::Kind::Const:
        emit(Instruction(Opcode::Iconst, static_cast<int32_t>(E.C)));
        break;
      case Entry::Kind::Load:
        emit(Instruction(Opcode::Iload, static_cast<int32_t>(E.Local)));
        markExposed(E.Local);
        break;
      }
      E.K = Entry::Kind::Materialized;
    }
  }

  /// Emits the deferred store of one local.
  void flushDirtyLocal(uint32_t X) {
    if (!Dirty[X])
      return;
    switch (Vals[X].K) {
    case LocalVal::Kind::Const:
      emit(Instruction(Opcode::Iconst, static_cast<int32_t>(Vals[X].C)));
      break;
    case LocalVal::Kind::Copy:
      emit(Instruction(Opcode::Iload, static_cast<int32_t>(Vals[X].Src)));
      markExposed(Vals[X].Src); // the copy lands in another local
      break;
    case LocalVal::Kind::Unknown:
      assert(false && "dirty local with unknown value");
      break;
    }
    emit(Instruction(Opcode::Istore, static_cast<int32_t>(X)));
    Dirty[X] = false;
  }

  /// Emits deferred stores so the real locals match the abstract state
  /// (required before any potential exit). Scratch locals (inlined-callee
  /// frames) are dead outside the segment and stay deferred.
  void flushDirtyLocals() {
    for (uint32_t X = 0; X < Dirty.size(); ++X) {
      if (X >= In.ScratchBase)
        continue;
      if (Dirty[X] && Cfg.Mutate == UnsoundPass::KillLiveOnExit && !Mutated) {
        // Deliberate miscompile: the deferred store is simply discarded.
        Mutated = true;
        Dirty[X] = false;
        continue;
      }
      flushDirtyLocal(X);
    }
  }

  /// Guard-point flush: like flushDirtyLocals, but when the guard knows
  /// which locals are live at its exit pc, locals that are dead there may
  /// keep their deferred (stale) value -- no path from the exit reads
  /// them before writing them.
  void flushDirtyLocalsAtGuard(const LinearOp &G) {
    for (uint32_t X = 0; X < Dirty.size(); ++X) {
      if (X >= In.ScratchBase || !Dirty[X])
        continue;
      if (Cfg.LivenessAtExits && G.HasLiveAtExit && !G.LiveAtExit.test(X)) {
        ++Stats.GuardExitLocalsSkipped;
        continue;
      }
      if (Cfg.Mutate == UnsoundPass::ReorderStorePastExit && !Mutated) {
        // Deliberate miscompile: the store slides past this side exit
        // (it still lands at a later exit point).
        Mutated = true;
        continue;
      }
      if (Cfg.Mutate == UnsoundPass::KillLiveOnExit && !Mutated) {
        Mutated = true;
        Dirty[X] = false;
        continue;
      }
      flushDirtyLocal(X);
      ++Stats.GuardExitLocalsFlushed;
    }
  }

  /// True when local \p X's current value can still be observed after
  /// operation index \p I: it is read before its next write, a side exit
  /// between here and that write can observe it, or it survives to the
  /// segment end as a non-scratch local.
  bool liveAfter(uint32_t X, size_t I) const {
    auto NextAbove = [I](const std::vector<size_t> &V) {
      auto It = std::upper_bound(V.begin(), V.end(), I);
      return It == V.end() ? ~size_t{0} : *It;
    };
    size_t NextRead = NextAbove(Reads[X]);
    size_t NextWrite = NextAbove(Writes[X]);
    if (NextRead < NextWrite)
      return true;
    // Even when the trace path overwrites X before reading it, a guard
    // in between is an exit whose off-trace continuation may read X --
    // unless liveness facts prove it dead at that exit.
    if (X < In.ScratchBase) {
      for (auto It = std::upper_bound(Guards.begin(), Guards.end(), I);
           It != Guards.end() && *It < NextWrite; ++It) {
        const LinearOp &G = In.Ops[*It];
        if (!(Cfg.LivenessAtExits && G.HasLiveAtExit && !G.LiveAtExit.test(X)))
          return true;
      }
    }
    return NextWrite == ~size_t{0} && X < In.ScratchBase;
  }

  /// Before local \p Y is modified: pin down every deferred store whose
  /// value is a copy of \p Y (unless that store is dead anyway), and
  /// drop copy knowledge derived from it.
  void invalidateCopiesOf(uint32_t Y) {
    for (uint32_t X = 0; X < Vals.size(); ++X) {
      if (Vals[X].K != LocalVal::Kind::Copy || Vals[X].Src != Y)
        continue;
      if (Dirty[X]) {
        if (liveAfter(X, CurIndex))
          flushDirtyLocal(X);
        else
          ++Stats.DeadStores;
        Dirty[X] = false;
      }
      Vals[X] = LocalVal();
    }
  }

  void push(Entry E) { AbstractStack.push_back(E); }

  /// Pops the abstract top. An empty abstract stack means the operand
  /// came in from before the segment started; incoming values are on the
  /// real stack, i.e. materialized.
  Entry pop() {
    if (AbstractStack.empty())
      return {Entry::Kind::Materialized, 0, 0};
    Entry E = AbstractStack.back();
    AbstractStack.pop_back();
    return E;
  }

  /// The constant value of \p E, if statically known.
  std::optional<int64_t> constOf(const Entry &E) const {
    if (E.K == Entry::Kind::Const)
      return E.C;
    if (E.K == Entry::Kind::Load &&
        Vals[E.Local].K == LocalVal::Kind::Const)
      return Vals[E.Local].C;
    return std::nullopt;
  }

  //===--------------------------------------------------------------------===//
  // Heap memory: redundant-load elimination, dead-store elimination and
  // store sinking over field/element cells named by (base local, index).
  //===--------------------------------------------------------------------===//

  /// The entry \p DepthFromTop below the abstract top (1 = top). Depths
  /// below the abstract stack are incoming operands, i.e. materialized.
  Entry peek(int DepthFromTop) const {
    if (static_cast<size_t>(DepthFromTop) > AbstractStack.size())
      return {Entry::Kind::Materialized, 0, 0};
    return AbstractStack[AbstractStack.size() -
                         static_cast<size_t>(DepthFromTop)];
  }

  /// A reference held in local \p L gained a second name (a stack copy, a
  /// local copy, or a heap cell): stop treating it as unaliased.
  void markExposed(uint32_t L) {
    if (L < Fresh.size())
      Fresh[L].Escaped = true;
  }

  /// True when cells \p A and \p B can never name the same storage:
  /// different groups (a length is not a field), same base with different
  /// indices, or one base holding a freshly allocated reference that has
  /// no other name. Freshness is judged at the moment both names exist,
  /// which is exactly when the question is asked: a later escape cannot
  /// retroactively alias values captured now.
  bool distinctCells(const CellKey &A, const CellKey &B) const {
    if (A.G != B.G)
      return true;
    if (A.Base == B.Base)
      return A.Index != B.Index;
    auto Unaliased = [&](uint32_t L) {
      return L < Fresh.size() && Fresh[L].Fresh && !Fresh[L].Escaped;
    };
    return Unaliased(A.Base) || Unaliased(B.Base);
  }

  const Entry *lookupCell(const CellKey &K) const {
    for (const CellVal &C : Cells)
      if (C.Key == K)
        return &C.Val;
    return nullptr;
  }

  void recordCell(const CellKey &K, Entry V) {
    for (CellVal &C : Cells) {
      if (C.Key == K) {
        C.Val = V;
        return;
      }
    }
    if (Cells.size() < 64) // bound the per-segment working set
      Cells.push_back({K, V});
  }

  /// A store to \p K kills knowledge of every cell it may alias.
  void dropCellsForStore(const CellKey &K) {
    std::erase_if(Cells,
                  [&](const CellVal &C) { return !distinctCells(K, C.Key); });
  }

  /// A store through an unidentified base kills every same-group cell
  /// except those on provably unaliased fresh allocations.
  void dropCellsUnknownStore(CellKey::Group G) {
    std::erase_if(Cells, [&](const CellVal &C) {
      return C.Key.G == G &&
             !(C.Key.Base < Fresh.size() && Fresh[C.Key.Base].Fresh &&
               !Fresh[C.Key.Base].Escaped);
    });
  }

  /// Local \p X is redefined: cells based on it name a different object
  /// now, and cells whose remembered value was "whatever X holds" are
  /// stale.
  void dropCellsOfLocal(uint32_t X) {
    std::erase_if(Cells, [&](const CellVal &C) {
      return C.Key.Base == X ||
             (C.Val.K == Entry::Kind::Load && C.Val.Local == X);
    });
  }

  bool stackHoldsLoadOf(uint32_t X) const {
    for (const Entry &E : AbstractStack)
      if (E.K == Entry::Kind::Load && E.Local == X)
        return true;
    return false;
  }

  /// Re-emits one held-back heap store. Stack-neutral, so it is safe at
  /// any emission point; base and value locals are non-dirty by the
  /// pending invariant (redefining either flushes first).
  void flushPendingStore(const PendingHeapStore &P) {
    emit(Instruction(Opcode::Iload, static_cast<int32_t>(P.Key.Base)));
    if (P.Key.G == CellKey::Group::Elem)
      emit(Instruction(Opcode::Iconst, P.Key.Index));
    if (P.Val.K == Entry::Kind::Const)
      emit(Instruction(Opcode::Iconst, static_cast<int32_t>(P.Val.C)));
    else
      emit(Instruction(Opcode::Iload, static_cast<int32_t>(P.Val.Local)));
    emit(P.I);
  }

  /// Pending stores never cross an emitted effect (print, allocation,
  /// kept heap access): they land, in program order, just before it.
  void flushPendingAll() {
    for (const PendingHeapStore &P : Pending)
      flushPendingStore(P);
    Pending.clear();
  }

  /// Local \p X is about to be redefined: pending stores based on it or
  /// valued from it must land first -- except a store into a fresh
  /// allocation whose last name dies here, which can never be observed.
  void pendingRedefine(uint32_t X) {
    enum class Act : uint8_t { Keep, Flush, Drop };
    std::vector<Act> Plan(Pending.size(), Act::Keep);
    for (size_t P = 0; P < Pending.size(); ++P) {
      PendingHeapStore &PS = Pending[P];
      bool Affected = PS.Key.Base == X ||
                      (PS.Val.K == Entry::Kind::Load && PS.Val.Local == X);
      if (!Affected)
        continue;
      if (PS.Key.Base == X && Cfg.ElimDeadStores && PS.NoTrap &&
          X < Fresh.size() && Fresh[X].Fresh && !Fresh[X].Escaped &&
          !stackHoldsLoadOf(X)) {
        ++Stats.MemDeadStores;
        Plan[P] = Act::Drop;
      } else {
        Plan[P] = Act::Flush;
      }
    }
    // Trap order: nothing flushes past a retained possibly-trapping
    // entry (its later flush would move the trap across this write).
    bool FlushAfter = false;
    for (size_t P = Pending.size(); P-- > 0;) {
      if (Plan[P] == Act::Flush)
        FlushAfter = true;
      else if (Plan[P] == Act::Keep && FlushAfter && !Pending[P].NoTrap)
        Plan[P] = Act::Flush;
    }
    std::vector<PendingHeapStore> Remaining;
    for (size_t P = 0; P < Pending.size(); ++P) {
      if (Plan[P] == Act::Flush)
        flushPendingStore(Pending[P]);
      else if (Plan[P] == Act::Keep)
        Remaining.push_back(Pending[P]);
    }
    Pending = std::move(Remaining);
  }

  /// At a surviving guard: a pending store may sink past the exit only if
  /// the exit path provably cannot reach the allocation -- the base local
  /// is dead there (or scratch), the reference never escaped, and the
  /// store itself cannot trap. Everything else lands before the guard.
  void processPendingAtGuard(const LinearOp &G) {
    for (size_t P = 0; P < Pending.size();) {
      PendingHeapStore &PS = Pending[P];
      uint32_t B = PS.Key.Base;
      bool DeadAtExit =
          B >= In.ScratchBase ||
          (Cfg.LivenessAtExits && G.HasLiveAtExit && !G.LiveAtExit.test(B));
      if (Cfg.SinkStores && PS.NoTrap && B < Fresh.size() && Fresh[B].Fresh &&
          !Fresh[B].Escaped && DeadAtExit) {
        if (!PS.Sunk) {
          PS.Sunk = true;
          ++Stats.MemStoresSunk;
        }
        ++P;
        continue;
      }
      flushPendingStore(PS);
      Pending.erase(Pending.begin() + static_cast<ptrdiff_t>(P));
    }
  }

  /// A store into \p K cannot trap when the base is a fresh allocation
  /// (live, non-null, known shape) and the index is provably in bounds.
  bool noTrapStore(Opcode Op, const CellKey &K) const {
    if (K.Base >= Fresh.size())
      return false;
    const FreshAlloc &F = Fresh[K.Base];
    if (!F.Fresh)
      return false;
    if (Op == Opcode::PutField)
      return !F.IsArray && Mod && F.ClassId >= 0 &&
             static_cast<size_t>(F.ClassId) < Mod->Classes.size() &&
             K.Index >= 0 &&
             static_cast<uint32_t>(K.Index) <
                 Mod->Classes[static_cast<size_t>(F.ClassId)].NumFields;
    return F.IsArray && F.ConstLen >= 0 && K.Index >= 0 &&
           K.Index < F.ConstLen;
  }

  /// Emits a kept heap operation. Deferred operand entries are pushed in
  /// place (no materializeAll): the base of an identified access is
  /// consumed by the access itself and does not escape through it, so
  /// only entries *below* the operand window -- which persist on the real
  /// stack -- count as exposure.
  void emitKeptHeapOp(const Instruction &I) {
    int NOps = opPops(I.Op);
    size_t N = AbstractStack.size();
    size_t First = N >= static_cast<size_t>(NOps)
                       ? N - static_cast<size_t>(NOps)
                       : 0;
    bool IsStore = I.Op == Opcode::PutField || I.Op == Opcode::Iastore;
    for (size_t J = 0; J < N; ++J) {
      Entry &E = AbstractStack[J];
      switch (E.K) {
      case Entry::Kind::Materialized:
        break;
      case Entry::Kind::Const:
        emit(Instruction(Opcode::Iconst, static_cast<int32_t>(E.C)));
        break;
      case Entry::Kind::Load:
        emit(Instruction(Opcode::Iload, static_cast<int32_t>(E.Local)));
        // Below the window: a persistent stack copy. Top of a store's
        // window: the reference is written into the heap.
        if (J < First || (IsStore && J + 1 == N))
          markExposed(E.Local);
        break;
      }
      E.K = Entry::Kind::Materialized;
    }
    emit(I);
    for (int P = 0; P < NOps; ++P)
      pop();
    for (int P = 0; P < opPushes(I.Op); ++P)
      push({Entry::Kind::Materialized, 0, 0});
  }

  void handleHeapLoad(const Instruction &I);
  void handleHeapStore(const Instruction &I);

  /// Fresh/cell bookkeeping when a materialized store lands a just-pushed
  /// value into local \p X (TA: the value was an allocation result; LK:
  /// it was an identified heap load's result).
  struct TopAllocInfo {
    bool Valid = false;
    bool IsArray = false;
    int32_t ClassId = -1;
    int64_t ConstLen = -1;
  };
  void recordMaterializedStore(uint32_t X, const TopAllocInfo &TA,
                               const std::optional<CellKey> &LK) {
    if (TA.Valid) {
      Fresh[X] = {true, false, TA.IsArray, TA.ClassId, TA.ConstLen};
      if (TA.IsArray && TA.ConstLen >= 0)
        recordCell({CellKey::Group::Len, X, 0},
                   {Entry::Kind::Const, TA.ConstLen, 0});
      return;
    }
    if (LK && LK->Base != X)
      recordCell(*LK, {Entry::Kind::Load, 0, X});
  }

  void handleInstr(const Instruction &I);
  void handleGuard(const LinearOp &Op);

  const LinearSegment &In;
  OptStats &Stats;
  const OptConfig Cfg;
  const Module *Mod; ///< For trap-freedom proofs; may be null.
  LinearSegment Out;
  std::vector<Entry> AbstractStack;
  std::vector<LocalVal> Vals; ///< Known local values.
  std::vector<bool> Dirty;    ///< Deferred (unemitted) stores.
  std::vector<std::vector<size_t>> Reads;  ///< Load positions per local.
  std::vector<std::vector<size_t>> Writes; ///< Store positions per local.
  std::vector<size_t> Guards; ///< Guard positions (side exits).
  std::vector<CellVal> Cells; ///< Known heap-cell contents.
  std::vector<PendingHeapStore> Pending; ///< Held-back heap stores.
  std::vector<FreshAlloc> Fresh;         ///< Per-local freshness.
  TopAllocInfo TopAlloc; ///< Set by New/NewArray for the next Istore.
  std::optional<CellKey> LastLoadKey; ///< Set by a kept identified load.
  size_t CurIndex = 0;  ///< Index of the op being processed.
  bool Mutated = false; ///< The UnsoundPass hook fired (at most once).
};

void SegmentOptimizer::handleInstr(const Instruction &I) {
  // Allocation-result / load-result association holds only across the
  // immediately following instruction (an Istore naming the value).
  const TopAllocInfo TA = TopAlloc;
  TopAlloc = TopAllocInfo();
  const std::optional<CellKey> LK = LastLoadKey;
  LastLoadKey.reset();

  switch (I.Op) {
  case Opcode::Nop:
    return; // dropped

  case Opcode::Iconst:
    push({Entry::Kind::Const, I.A, 0});
    return;

  case Opcode::Iload: {
    auto X = static_cast<uint32_t>(I.A);
    if (!Cfg.ForwardLoads) {
      // The deferred-load substrate still applies, but the value must
      // come from the real slot: pin any deferred store to X first.
      flushDirtyLocal(X);
      push({Entry::Kind::Load, 0, X});
      return;
    }
    switch (Vals[X].K) {
    case LocalVal::Kind::Const:
      ++Stats.LoadsForwarded;
      push({Entry::Kind::Const, Vals[X].C, 0});
      return;
    case LocalVal::Kind::Copy:
      ++Stats.LoadsForwarded;
      push({Entry::Kind::Load, 0, Vals[X].Src});
      return;
    case LocalVal::Kind::Unknown:
      push({Entry::Kind::Load, 0, X});
      return;
    }
    return;
  }

  case Opcode::Istore: {
    auto X = static_cast<uint32_t>(I.A);
    Entry E = pop();
    // `iload x; istore x` cancels outright (x is unchanged, so heap
    // facts keyed on it survive).
    if (E.K == Entry::Kind::Load && E.Local == X) {
      ++Stats.DeadStores;
      return;
    }
    // x is redefined: heap facts keyed on it die, and pending heap
    // stores based on or valued from it land (or are proven dead) while
    // the old value is still in its slot.
    pendingRedefine(X);
    dropCellsOfLocal(X);
    Fresh[X] = FreshAlloc();
    if (E.K == Entry::Kind::Load)
      markExposed(E.Local); // the reference gains a second name
    // Any deferred load of x still on the stack must observe the old
    // value, and any deferred copy *of* x must be pinned before x
    // changes.
    materializeLoadsOf(X);
    invalidateCopiesOf(X);
    if (!Cfg.DeferStores) {
      // Emit the store eagerly; constant knowledge survives (the real
      // slot holds the value, so nothing is owed at exits).
      switch (E.K) {
      case Entry::Kind::Const:
        emit(Instruction(Opcode::Iconst, static_cast<int32_t>(E.C)));
        break;
      case Entry::Kind::Load:
        emit(Instruction(Opcode::Iload, static_cast<int32_t>(E.Local)));
        break;
      case Entry::Kind::Materialized:
        break;
      }
      emit(Instruction(Opcode::Istore, static_cast<int32_t>(X)));
      Vals[X] = LocalVal();
      Dirty[X] = false;
      if (auto C = constOf(E); C && fitsImm(*C))
        Vals[X] = {LocalVal::Kind::Const, *C, 0};
      if (E.K == Entry::Kind::Materialized)
        recordMaterializedStore(X, TA, LK);
      return;
    }
    if (Dirty[X])
      ++Stats.DeadStores; // the previous deferred store is overwritten
    if (auto C = constOf(E); C && fitsImm(*C)) {
      // Defer the store itself; it becomes real at the next exit point.
      Vals[X] = {LocalVal::Kind::Const, *C, 0};
      Dirty[X] = true;
      return;
    }
    if (E.K == Entry::Kind::Load) {
      // Defer as a copy of the (non-dirty) source local.
      assert(!Dirty[E.Local] && "deferred loads never target dirty locals");
      Vals[X] = {LocalVal::Kind::Copy, 0, E.Local};
      Dirty[X] = true;
      return;
    }
    assert(E.K == Entry::Kind::Materialized &&
           "const entries are always known");
    emit(Instruction(Opcode::Istore, static_cast<int32_t>(X)));
    Vals[X] = LocalVal();
    Dirty[X] = false;
    recordMaterializedStore(X, TA, LK);
    return;
  }

  case Opcode::Iinc: {
    auto X = static_cast<uint32_t>(I.A);
    pendingRedefine(X);
    dropCellsOfLocal(X);
    Fresh[X] = FreshAlloc();
    materializeLoadsOf(X);
    invalidateCopiesOf(X);
    if (Cfg.FoldConstants && Cfg.DeferStores &&
        Vals[X].K == LocalVal::Kind::Const) {
      auto V = static_cast<int64_t>(static_cast<uint64_t>(Vals[X].C) +
                                    static_cast<uint64_t>(I.B));
      if (fitsImm(V)) {
        Vals[X].C = V;
        Dirty[X] = true;
        ++Stats.ConstantsFolded;
        return;
      }
    }
    // Pin any deferred value down, then increment for real.
    flushDirtyLocal(X);
    Vals[X] = LocalVal();
    emit(I);
    return;
  }

  case Opcode::Pop: {
    Entry E = pop();
    if (E.K == Entry::Kind::Materialized)
      emit(I);
    return; // a deferred value popped costs nothing
  }

  case Opcode::Dup: {
    if (AbstractStack.empty()) {
      // Duplicating an incoming (materialized) value.
      emit(I);
      push({Entry::Kind::Materialized, 0, 0});
      return;
    }
    Entry Top = AbstractStack.back();
    if (Top.K == Entry::Kind::Materialized)
      emit(I);
    push(Top);
    return;
  }

  case Opcode::Swap: {
    Entry B = pop(), A = pop();
    if (A.K == Entry::Kind::Materialized ||
        B.K == Entry::Kind::Materialized) {
      // Mixed forms would break the deferred-suffix invariant; pin both.
      push(A);
      push(B);
      materializeAll();
      emit(I);
      Entry &NewB = AbstractStack[AbstractStack.size() - 2];
      Entry &NewA = AbstractStack[AbstractStack.size() - 1];
      std::swap(NewA, NewB);
      return;
    }
    push(B);
    push(A);
    return;
  }

  case Opcode::Ineg: {
    Entry E = pop();
    if (auto C = Cfg.FoldConstants ? constOf(E) : std::optional<int64_t>()) {
      auto V = static_cast<int64_t>(0 - static_cast<uint64_t>(*C));
      if (fitsImm(V)) {
        ++Stats.ConstantsFolded;
        push({Entry::Kind::Const, V, 0});
        return;
      }
    }
    push(E);
    materializeAll();
    emit(I);
    return;
  }

  case Opcode::Iprint: {
    flushPendingAll(); // print is an effect: held-back stores land first
    Entry E = pop();
    // The net stack effect of push+print is zero, so a deferred operand
    // can be emitted directly without disturbing entries beneath it.
    if (auto C = constOf(E)) {
      emit(Instruction(Opcode::Iconst, static_cast<int32_t>(*C)));
    } else if (E.K == Entry::Kind::Load) {
      emit(Instruction(Opcode::Iload, static_cast<int32_t>(E.Local)));
    }
    emit(Instruction(Opcode::Iprint));
    return;
  }

  case Opcode::New:
  case Opcode::NewArray: {
    // Allocation is an effect (it can trap on exhaustion): held-back
    // stores land first so the effect order is preserved. The constant
    // length (if any) is read before materialization erases it.
    flushPendingAll();
    std::optional<int64_t> Len;
    if (I.Op == Opcode::NewArray)
      Len = constOf(peek(1));
    materializeAll();
    emit(I);
    for (int P = 0; P < opPops(I.Op); ++P)
      pop();
    push({Entry::Kind::Materialized, 0, 0});
    TopAlloc.Valid = true;
    TopAlloc.IsArray = I.Op == Opcode::NewArray;
    TopAlloc.ClassId = I.Op == Opcode::New ? I.A : -1;
    TopAlloc.ConstLen = (Len && *Len >= 0 && fitsImm(*Len)) ? *Len : -1;
    return;
  }

  case Opcode::GetField:
  case Opcode::Iaload:
  case Opcode::ArrayLength:
    handleHeapLoad(I);
    return;

  case Opcode::PutField:
  case Opcode::Iastore:
    handleHeapStore(I);
    return;

  default:
    break;
  }

  if (isBinaryArith(I.Op)) {
    Entry B = pop(), A = pop();
    auto CA = constOf(A), CB = constOf(B);
    int64_t Folded = 0;
    if (Cfg.FoldConstants && CA && CB &&
        foldBinaryImm(I.Op, *CA, *CB, Folded)) {
      if (Cfg.Mutate == UnsoundPass::WrongConstant && !Mutated) {
        // Deliberate miscompile: off-by-one fold result.
        Mutated = true;
        ++Folded;
      }
      ++Stats.ConstantsFolded;
      push({Entry::Kind::Const, Folded, 0});
      return;
    }
    push(A);
    push(B);
    materializeAll();
    emit(I);
    pop();
    pop();
    push({Entry::Kind::Materialized, 0, 0});
    return;
  }

  // Everything else (heap operations, New, arrays): operands must be on
  // the real stack; results are opaque.
  materializeAll();
  emit(I);
  for (int P = 0; P < opPops(I.Op); ++P)
    pop();
  for (int P = 0; P < opPushes(I.Op); ++P)
    push({Entry::Kind::Materialized, 0, 0});
}

void SegmentOptimizer::handleHeapLoad(const Instruction &I) {
  int NOps = opPops(I.Op); // GetField/ArrayLength: 1, Iaload: 2
  // Eliminable only when every operand is still deferred: popping them
  // then costs nothing on the real stack.
  bool Deferrable = AbstractStack.size() >= static_cast<size_t>(NOps);
  for (int P = 1; P <= NOps && Deferrable; ++P)
    Deferrable = peek(P).K != Entry::Kind::Materialized;
  std::optional<CellKey> K;
  if (Deferrable) {
    Entry Base = peek(NOps);
    if (Base.K == Entry::Kind::Load) {
      if (I.Op == Opcode::GetField)
        K = CellKey{CellKey::Group::Field, Base.Local, I.A};
      else if (I.Op == Opcode::ArrayLength)
        K = CellKey{CellKey::Group::Len, Base.Local, 0};
      else if (auto C = constOf(peek(1)); C && *C >= 0 && fitsImm(*C))
        K = CellKey{CellKey::Group::Elem, Base.Local, static_cast<int32_t>(*C)};
    }
  }
  if (Cfg.ElimRedundantLoads && K) {
    if (const Entry *V = lookupCell(*K)) {
      // The cell's content is known from a dominating access through the
      // same (unchanged) base local and index; that access also already
      // performed -- or, for a held-back store, will perform at the same
      // effect position -- this load's exact null/bounds checks.
      for (int P = 0; P < NOps; ++P)
        pop();
      push(*V);
      ++Stats.MemLoadsEliminated;
      return;
    }
  }
  if (Cfg.Mutate == UnsoundPass::AliasConfusedLoad && !Mutated && Deferrable) {
    // Deliberate miscompile: the cell is NOT known, but the load is
    // eliminated anyway with a fabricated value.
    Mutated = true;
    for (int P = 0; P < NOps; ++P)
      pop();
    push({Entry::Kind::Const, 0, 0});
    return;
  }
  flushPendingAll();
  emitKeptHeapOp(I);
  // If the very next instruction stores the result to a local, that
  // local becomes the cell's remembered value.
  LastLoadKey = K;
}

void SegmentOptimizer::handleHeapStore(const Instruction &I) {
  int NOps = opPops(I.Op); // PutField: 2, Iastore: 3
  bool Deferrable = AbstractStack.size() >= static_cast<size_t>(NOps);
  for (int P = 1; P <= NOps && Deferrable; ++P)
    Deferrable = peek(P).K != Entry::Kind::Materialized;
  std::optional<CellKey> K;
  if (Deferrable) {
    Entry Base = peek(NOps);
    if (Base.K == Entry::Kind::Load) {
      if (I.Op == Opcode::PutField)
        K = CellKey{CellKey::Group::Field, Base.Local, I.A};
      else if (auto C = constOf(peek(2)); C && *C >= 0 && fitsImm(*C))
        K = CellKey{CellKey::Group::Elem, Base.Local, static_cast<int32_t>(*C)};
    }
  }
  // The stored value must be re-creatable at the flush point: a constant
  // or a local that is pinned (flushed) before any redefinition.
  std::optional<Entry> RecVal;
  if (Deferrable) {
    Entry V = peek(1);
    if (auto C = constOf(V); C && fitsImm(*C))
      RecVal = Entry{Entry::Kind::Const, *C, 0};
    else if (V.K == Entry::Kind::Load)
      RecVal = V;
  }
  if (K && RecVal && (Cfg.ElimDeadStores || Cfg.SinkStores)) {
    // Storing a reference into the heap publishes it.
    if (RecVal->K == Entry::Kind::Load)
      markExposed(RecVal->Local);
    // An exact overwrite makes the held-back store dead; a may-alias
    // store pins it in program order first. Two ordering rules keep trap
    // positions sound: a possibly-trapping pending may be overwrite-
    // killed only while it is the most recent pending (its twin's
    // identical trap condition then replaces it with no observable
    // window), and nothing may be flushed past a *retained* possibly-
    // trapping entry (its trap would move across the flushed write).
    std::optional<PendingHeapStore> Resurrect;
    enum class Act : uint8_t { Keep, Flush, Drop };
    std::vector<Act> Plan(Pending.size(), Act::Keep);
    for (size_t P = 0; P < Pending.size(); ++P) {
      PendingHeapStore &PS = Pending[P];
      if (PS.Key == *K) {
        bool Killable = PS.NoTrap || P + 1 == Pending.size();
        if (Cfg.Mutate == UnsoundPass::ResurrectDeadStore && !Mutated &&
            Killable) {
          // Deliberate miscompile: the dead store is re-emitted *after*
          // its overwrite, resurrecting the stale value.
          Mutated = true;
          Resurrect = PS;
          Plan[P] = Act::Drop;
        } else if (Cfg.ElimDeadStores && Killable) {
          ++Stats.MemDeadStores;
          Plan[P] = Act::Drop;
        } else {
          Plan[P] = Act::Flush; // sink-only config or unkillable: it lands
        }
      } else if (!distinctCells(PS.Key, *K)) {
        Plan[P] = Act::Flush;
      }
    }
    bool FlushAfter = false;
    for (size_t P = Pending.size(); P-- > 0;) {
      if (Plan[P] == Act::Flush)
        FlushAfter = true;
      else if (Plan[P] == Act::Keep && FlushAfter && !Pending[P].NoTrap)
        Plan[P] = Act::Flush;
    }
    std::vector<PendingHeapStore> Remaining;
    for (size_t P = 0; P < Pending.size(); ++P) {
      if (Plan[P] == Act::Flush)
        flushPendingStore(Pending[P]);
      else if (Plan[P] == Act::Keep)
        Remaining.push_back(Pending[P]);
    }
    Pending = std::move(Remaining);
    for (int P = 0; P < NOps; ++P)
      pop();
    PendingHeapStore NewP;
    NewP.Key = *K;
    NewP.Val = *RecVal;
    NewP.I = I;
    NewP.NoTrap = noTrapStore(I.Op, *K);
    Pending.push_back(NewP);
    if (Resurrect)
      Pending.push_back(*Resurrect);
    dropCellsForStore(*K);
    recordCell(*K, *RecVal);
    return;
  }
  // Kept store: held-back stores land first (effect order), then the
  // store itself updates / kills cell knowledge.
  flushPendingAll();
  emitKeptHeapOp(I);
  if (K) {
    dropCellsForStore(*K);
    if (RecVal)
      recordCell(*K, *RecVal);
  } else {
    dropCellsUnknownStore(I.Op == Opcode::PutField ? CellKey::Group::Field
                                                   : CellKey::Group::Elem);
  }
}

void SegmentOptimizer::handleGuard(const LinearOp &Op) {
  TopAlloc = TopAllocInfo();
  LastLoadKey.reset();
  int Pops = opPops(Op.I.Op);
  assert(Pops >= 1 && Pops <= 2);

  if (Cfg.Mutate == UnsoundPass::DropGuard && !Mutated) {
    // Deliberate miscompile: the guard vanishes without justification.
    // Operands are disposed of properly (deferred ones cost nothing,
    // materialized ones are popped), so only the side exit is lost.
    Mutated = true;
    for (int P = 0; P < Pops; ++P) {
      Entry E = pop();
      if (E.K == Entry::Kind::Materialized)
        emit(Instruction(Opcode::Pop));
    }
    return;
  }

  // A guard whose operands are statically known and agree with the
  // recorded direction can never fire; drop it with its operands.
  if (Cfg.EliminateGuards && Op.I.Op != Opcode::Tableswitch &&
      AbstractStack.size() >= static_cast<size_t>(Pops)) {
    Entry Top = AbstractStack.back();
    Entry Below =
        Pops == 2 ? AbstractStack[AbstractStack.size() - 2] : Entry{};
    auto CT = constOf(Top);
    auto CB = Pops == 2 ? constOf(Below) : std::optional<int64_t>(0);
    if (CT && CB) {
      int64_t A = Pops == 2 ? *CB : *CT;
      int64_t B = Pops == 2 ? *CT : 0;
      if (evalBranch(Op.I.Op, A, B) == Op.GuardTaken &&
          Top.K != Entry::Kind::Materialized &&
          (Pops == 1 || Below.K != Entry::Kind::Materialized)) {
        pop();
        if (Pops == 2)
          pop();
        ++Stats.GuardsEliminated;
        return;
      }
    }
  }

  // A live guard is a potential exit: the real machine state must be
  // complete before it runs -- restricted to the exit's live locals when
  // the guard carries liveness facts.
  materializeAll();
  flushDirtyLocalsAtGuard(Op);
  // After materialization and local flushes (both of which can expose a
  // reference), decide which held-back heap stores may sink past this
  // exit and which must land before it.
  processPendingAtGuard(Op);
  Out.Ops.push_back(Op);
  for (int P = 0; P < Pops; ++P)
    pop();
  ++Stats.GuardsAfter;
}

LinearSegment SegmentOptimizer::run() {
  for (size_t I = 0; I < In.Ops.size(); ++I) {
    CurIndex = I;
    const LinearOp &Op = In.Ops[I];
    if (Op.K == LinearOp::Kind::Guard) {
      ++Stats.GuardsBefore;
      handleGuard(Op);
    } else {
      handleInstr(Op.I);
    }
  }
  // Segment end: the next thing executed is unoptimized code.
  materializeAll();
  flushDirtyLocals();
  // Held-back heap stores: a store into a fresh, never-escaped scratch
  // allocation dies with its frame; everything else lands now.
  for (const PendingHeapStore &PS : Pending) {
    uint32_t B = PS.Key.Base;
    if (Cfg.ElimDeadStores && PS.NoTrap && B >= In.ScratchBase &&
        B < Fresh.size() && Fresh[B].Fresh && !Fresh[B].Escaped) {
      ++Stats.MemDeadStores;
      continue;
    }
    flushPendingStore(PS);
  }
  Pending.clear();

  Stats.InstructionsBefore += In.numInstructions();
  Stats.InstructionsAfter += Out.numInstructions();
  return std::move(Out);
}

} // namespace

LinearSegment jtc::optimizeSegment(const LinearSegment &In, OptStats &Stats,
                                   const OptConfig &Config, const Module *M) {
  return SegmentOptimizer(In, Stats, Config, M).run();
}

LinearSegment jtc::optimizeSegment(const LinearSegment &In, OptStats &Stats) {
  return optimizeSegment(In, Stats, OptConfig(), nullptr);
}

std::vector<LinearSegment>
jtc::optimizeTrace(const PreparedModule &PM, const Trace &T, OptStats &Stats,
                   bool InlineStaticCalls,
                   const analysis::ModuleAnalysis *Facts,
                   const OptConfig &Config) {
  std::vector<LinearSegment> Out;
  for (const LinearSegment &Seg :
       linearizeTrace(PM, T, InlineStaticCalls, Facts))
    Out.push_back(optimizeSegment(Seg, Stats, Config, &PM.module()));
  return Out;
}
