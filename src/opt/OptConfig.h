//===- opt/OptConfig.h - Optimizer pass configuration -----------*- C++ -*-===//
///
/// \file
/// Per-pass toggles for the trace optimizer, plus a test-only unsound
/// mutation hook.
///
/// The toggles exist for two consumers: the ablation benchmarks (measure
/// each pass alone and stacked) and the translation validator's accept
/// coverage (every pass combination must validate cleanly). The
/// UnsoundPass hook is the validator's own false-negative test: it makes
/// the optimizer deliberately miscompile in one of four distinct ways,
/// and tests/validate_test.cpp asserts each mutation class is rejected
/// with its typed reason. The hook must never be enabled outside tests.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_OPT_OPTCONFIG_H
#define JTC_OPT_OPTCONFIG_H

#include <cstdint>

namespace jtc {

/// Test-only deliberate miscompilations. Each fires at most once per
/// segment so a single typed validator rejection can be asserted.
enum class UnsoundPass : uint8_t {
  None = 0,
  /// Drop the first surviving guard (its operands are popped so the
  /// stack stays balanced; only the side exit vanishes).
  DropGuard,
  /// Skip the first deferred-store flush owed at a guard, leaving the
  /// local stale at that side exit; the store still lands later.
  ReorderStorePastExit,
  /// Offset the first binary constant-fold result by one.
  WrongConstant,
  /// Discard the first deferred store owed at an exit flush outright:
  /// the local's final value is simply lost.
  KillLiveOnExit,
  /// When dead-store elimination overwrites a pending heap store, emit
  /// the dead store again *after* its overwrite, resurrecting the stale
  /// value as the cell's final content.
  ResurrectDeadStore,
  /// Eliminate the first heap load the alias analysis did *not* justify,
  /// substituting a fabricated value as if the cell were known.
  AliasConfusedLoad,
};

inline const char *unsoundPassName(UnsoundPass P) {
  switch (P) {
  case UnsoundPass::None:
    return "none";
  case UnsoundPass::DropGuard:
    return "drop-guard";
  case UnsoundPass::ReorderStorePastExit:
    return "reorder-store-past-exit";
  case UnsoundPass::WrongConstant:
    return "wrong-constant";
  case UnsoundPass::KillLiveOnExit:
    return "kill-live-on-exit";
  case UnsoundPass::ResurrectDeadStore:
    return "resurrect-dead-store";
  case UnsoundPass::AliasConfusedLoad:
    return "alias-confused-load";
  }
  return "none";
}

/// Which optimizer passes run over a segment. The deferred-entry stack
/// cache itself (constants and loads pushed lazily) is the optimizer's
/// substrate and is always on; the toggles gate the transformations
/// layered on top of it.
struct OptConfig {
  /// Fold constant unary/binary arithmetic and Iinc chains.
  bool FoldConstants = true;
  /// Forward known local values (constants, copies) through Iload.
  bool ForwardLoads = true;
  /// Defer Istore until an exit point, cancelling dead stores.
  bool DeferStores = true;
  /// Drop guards whose operands are statically known to agree with the
  /// recorded direction.
  bool EliminateGuards = true;
  /// Honor per-guard liveness: locals dead at a side exit's resume pc may
  /// keep a stale value there.
  bool LivenessAtExits = true;
  /// Eliminate heap loads whose cell value is already known (a dominating
  /// load or store to the same field/element on the trace path).
  bool ElimRedundantLoads = true;
  /// Eliminate heap stores that are dead: overwritten before any exit or
  /// possible aliasing read, or targeting a non-escaping allocation whose
  /// reference provably dies inside the segment.
  bool ElimDeadStores = true;
  /// Let a pending store to a non-escaping allocation sink past side
  /// exits that provably cannot reach the allocation.
  bool SinkStores = true;
  /// Test-only deliberate miscompilation (see UnsoundPass).
  UnsoundPass Mutate = UnsoundPass::None;

  bool stock() const {
    return FoldConstants && ForwardLoads && DeferStores && EliminateGuards &&
           LivenessAtExits && ElimRedundantLoads && ElimDeadStores &&
           SinkStores && Mutate == UnsoundPass::None;
  }
};

} // namespace jtc

#endif // JTC_OPT_OPTCONFIG_H
