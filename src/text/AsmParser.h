//===- text/AsmParser.h - Textual assembly parser ---------------*- C++ -*-===//
///
/// \file
/// Parses the jtc textual assembly format produced by text/AsmWriter.h
/// (see that header for the grammar). Parsing is two-pass -- declarations
/// first, bodies second -- so methods, slots and classes may be
/// referenced before they are defined. Errors carry 1-based line numbers.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TEXT_ASMPARSER_H
#define JTC_TEXT_ASMPARSER_H

#include "bytecode/Program.h"

#include <optional>
#include <string>
#include <string_view>

namespace jtc {

/// Parses \p Text into a Module. On failure returns std::nullopt and sets
/// \p Error to a "line N: message" diagnostic. The parsed module is
/// *structurally* checked only; run the verifier for full validation.
std::optional<Module> parseModule(std::string_view Text, std::string &Error);

/// Reads and parses the file at \p Path. I/O failures are reported
/// through \p Error like parse errors.
std::optional<Module> parseModuleFile(const std::string &Path,
                                      std::string &Error);

} // namespace jtc

#endif // JTC_TEXT_ASMPARSER_H
