//===- text/AsmWriter.h - Textual assembly output ---------------*- C++ -*-===//
///
/// \file
/// Serializes a Module to the jtc textual assembly format (".jasm"),
/// the inverse of text/AsmParser.h. The format is line-oriented:
///
///   ; comment
///   .slot eval args=2 returns=int
///   .class Literal fields=1
///   .vtable Literal eval evalLiteral
///   .method main args=0 locals=2 returns=void
///     iconst 0
///     istore 0
///   loop:
///     iload 0
///     iconst 10
///     if_icmpge done
///     iinc 0 1
///     goto loop
///   done:
///     halt
///   .end
///   .entry main
///
/// Branch targets are emitted as generated labels (`L<pc>`); call and
/// class operands are emitted by name. writeModule() output always parses
/// back to a structurally identical module (see the round-trip tests).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TEXT_ASMWRITER_H
#define JTC_TEXT_ASMWRITER_H

#include "bytecode/Program.h"

#include <ostream>
#include <string>

namespace jtc {

/// Writes \p M as textual assembly to \p OS.
void writeModule(std::ostream &OS, const Module &M);

/// Convenience: writeModule() into a string.
std::string moduleToString(const Module &M);

} // namespace jtc

#endif // JTC_TEXT_ASMWRITER_H
