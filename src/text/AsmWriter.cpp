//===- text/AsmWriter.cpp -------------------------------------------------===//

#include "text/AsmWriter.h"

#include "bytecode/Opcode.h"

#include <set>
#include <sstream>

using namespace jtc;

namespace {

/// Collects every pc in \p Mth that needs a label: branch/switch targets.
std::set<uint32_t> labelTargets(const Method &Mth) {
  std::set<uint32_t> Targets;
  for (const Instruction &I : Mth.Code) {
    switch (opKind(I.Op)) {
    case OpKind::Branch:
    case OpKind::Jump:
      Targets.insert(static_cast<uint32_t>(I.A));
      break;
    case OpKind::Switch: {
      const SwitchTable &T = Mth.SwitchTables[I.A];
      Targets.insert(T.DefaultTarget);
      for (uint32_t Tgt : T.Targets)
        Targets.insert(Tgt);
      break;
    }
    default:
      break;
    }
  }
  return Targets;
}

std::string labelName(uint32_t Pc) { return "L" + std::to_string(Pc); }

const char *returnsSpelling(bool ReturnsValue, jtc::TypeTag RetType) {
  if (!ReturnsValue)
    return "void";
  return RetType == jtc::TypeTag::Ref ? "ref" : "int";
}

void writeMethod(std::ostream &OS, const Module &M, const Method &Mth) {
  OS << ".method " << Mth.Name << " args=" << Mth.NumArgs
     << " locals=" << Mth.NumLocals
     << " returns=" << returnsSpelling(Mth.ReturnsValue, Mth.RetType) << "\n";

  std::set<uint32_t> Labels = labelTargets(Mth);
  for (uint32_t Pc = 0; Pc < Mth.Code.size(); ++Pc) {
    if (Labels.count(Pc))
      OS << labelName(Pc) << ":\n";
    const Instruction &I = Mth.Code[Pc];
    OS << "  " << mnemonic(I.Op);
    switch (I.Op) {
    case Opcode::Iconst:
    case Opcode::Iload:
    case Opcode::Istore:
    case Opcode::GetField:
    case Opcode::PutField:
      OS << " " << I.A;
      break;
    case Opcode::Iinc:
      OS << " " << I.A << " " << I.B;
      break;
    case Opcode::Goto:
    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfGe:
    case Opcode::IfGt:
    case Opcode::IfLe:
    case Opcode::IfIcmpEq:
    case Opcode::IfIcmpNe:
    case Opcode::IfIcmpLt:
    case Opcode::IfIcmpGe:
    case Opcode::IfIcmpGt:
    case Opcode::IfIcmpLe:
      OS << " " << labelName(static_cast<uint32_t>(I.A));
      break;
    case Opcode::Tableswitch: {
      const SwitchTable &T = Mth.SwitchTables[I.A];
      OS << " low=" << T.Low << " targets=[";
      for (size_t J = 0; J < T.Targets.size(); ++J)
        OS << (J ? "," : "") << labelName(T.Targets[J]);
      OS << "] default=" << labelName(T.DefaultTarget);
      break;
    }
    case Opcode::InvokeStatic:
      OS << " " << M.Methods[I.A].Name;
      break;
    case Opcode::InvokeVirtual:
      OS << " " << M.Slots[I.A].Name;
      break;
    case Opcode::New:
      OS << " " << M.Classes[I.A].Name;
      break;
    default:
      break;
    }
    OS << "\n";
  }
  OS << ".end\n";
}

} // namespace

void jtc::writeModule(std::ostream &OS, const Module &M) {
  OS << "; jtc textual assembly\n";
  for (const SlotInfo &S : M.Slots)
    OS << ".slot " << S.Name << " args=" << S.ArgCount
       << " returns=" << returnsSpelling(S.ReturnsValue, S.RetType) << "\n";
  for (const Class &C : M.Classes)
    OS << ".class " << C.Name << " fields=" << C.NumFields << "\n";
  for (const Class &C : M.Classes)
    for (size_t S = 0; S < C.Vtable.size(); ++S)
      if (C.Vtable[S] != InvalidMethod)
        OS << ".vtable " << C.Name << " " << M.Slots[S].Name << " "
           << M.Methods[C.Vtable[S]].Name << "\n";
  for (const Method &Mth : M.Methods) {
    OS << "\n";
    writeMethod(OS, M, Mth);
  }
  if (!M.Methods.empty())
    OS << "\n.entry " << M.Methods[M.EntryMethod].Name << "\n";
}

std::string jtc::moduleToString(const Module &M) {
  std::ostringstream OS;
  writeModule(OS, M);
  return OS.str();
}
