//===- text/AsmParser.cpp -------------------------------------------------===//

#include "text/AsmParser.h"

#include "bytecode/Assembler.h"
#include "bytecode/Opcode.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

using namespace jtc;

namespace {

/// One whitespace-split line with its comment stripped.
struct Line {
  unsigned Number = 0;
  std::vector<std::string> Tokens;

  bool empty() const { return Tokens.empty(); }
  const std::string &head() const { return Tokens[0]; }
};

/// Splits \p Text into token lines. Tokens are separated by spaces,
/// tabs and commas; '[' and ']' are standalone tokens; ';' starts a
/// comment. A trailing ':' stays attached to its token (labels).
std::vector<Line> tokenize(std::string_view Text) {
  std::vector<Line> Lines;
  unsigned Number = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string_view::npos)
      Eol = Text.size();
    std::string_view Raw = Text.substr(Pos, Eol - Pos);
    ++Number;
    Pos = Eol + 1;

    Line L;
    L.Number = Number;
    std::string Cur;
    auto Flush = [&] {
      if (!Cur.empty()) {
        L.Tokens.push_back(Cur);
        Cur.clear();
      }
    };
    for (char C : Raw) {
      if (C == ';')
        break;
      if (C == ' ' || C == '\t' || C == ',' || C == '\r') {
        Flush();
        continue;
      }
      if (C == '[' || C == ']' || C == '=') {
        Flush();
        L.Tokens.push_back(std::string(1, C));
        continue;
      }
      Cur.push_back(C);
    }
    Flush();
    if (!L.empty())
      Lines.push_back(std::move(L));
    if (Eol == Text.size())
      break;
  }
  return Lines;
}

/// Builds the mnemonic -> opcode map once.
const std::map<std::string, Opcode> &mnemonicMap() {
  static const std::map<std::string, Opcode> Map = [] {
    std::map<std::string, Opcode> M;
    for (unsigned I = 0; I < numOpcodes(); ++I)
      M.emplace(mnemonic(static_cast<Opcode>(I)), static_cast<Opcode>(I));
    return M;
  }();
  return Map;
}

class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Lines(tokenize(Text)), Error(Error) {}

  std::optional<Module> run() {
    if (!declarePass())
      return std::nullopt;
    if (!definePass())
      return std::nullopt;
    return Asm.build();
  }

private:
  bool fail(unsigned LineNo, const std::string &Msg) {
    Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  }

  /// Parses "key" "=" "value" starting at \p Idx in \p L; on success
  /// advances \p Idx past the value and stores it in \p Value.
  bool keyValue(const Line &L, size_t &Idx, const std::string &Key,
                std::string &Value) {
    if (Idx + 2 >= L.Tokens.size() || L.Tokens[Idx] != Key ||
        L.Tokens[Idx + 1] != "=")
      return fail(L.Number, "expected '" + Key + "=<value>'");
    Value = L.Tokens[Idx + 2];
    Idx += 3;
    return true;
  }

  bool parseUint(const Line &L, const std::string &Tok, uint32_t &Out) {
    for (char C : Tok)
      if (!std::isdigit(static_cast<unsigned char>(C)))
        return fail(L.Number, "expected a number, found '" + Tok + "'");
    Out = static_cast<uint32_t>(std::stoul(Tok));
    return true;
  }

  bool parseInt(const Line &L, const std::string &Tok, int32_t &Out) {
    size_t Start = Tok.size() > 1 && Tok[0] == '-' ? 1 : 0;
    if (Tok.size() == Start)
      return fail(L.Number, "expected a number, found '" + Tok + "'");
    for (size_t I = Start; I < Tok.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(Tok[I])))
        return fail(L.Number, "expected a number, found '" + Tok + "'");
    Out = static_cast<int32_t>(std::stol(Tok));
    return true;
  }

  bool parseReturns(const Line &L, const std::string &Tok, bool &Returns,
                    TypeTag &RetType) {
    RetType = TypeTag::Int;
    if (Tok == "int") {
      Returns = true;
      return true;
    }
    if (Tok == "ref") {
      Returns = true;
      RetType = TypeTag::Ref;
      return true;
    }
    if (Tok == "void") {
      Returns = false;
      return true;
    }
    return fail(L.Number, "returns must be 'int', 'ref' or 'void', found '" +
                              Tok + "'");
  }

  /// Pass 1: register every .slot, .class and .method so bodies may refer
  /// to them in any order.
  bool declarePass() {
    for (const Line &L : Lines) {
      const std::string &Head = L.head();
      if (Head == ".slot") {
        if (L.Tokens.size() < 2)
          return fail(L.Number, ".slot needs a name");
        size_t Idx = 2;
        std::string ArgsV, RetV;
        uint32_t Args = 0;
        bool Returns = false;
        TypeTag RetType = TypeTag::Int;
        if (!keyValue(L, Idx, "args", ArgsV) || !parseUint(L, ArgsV, Args) ||
            !keyValue(L, Idx, "returns", RetV) ||
            !parseReturns(L, RetV, Returns, RetType))
          return false;
        if (Slots.count(L.Tokens[1]))
          return fail(L.Number, "duplicate slot '" + L.Tokens[1] + "'");
        Slots[L.Tokens[1]] =
            Asm.declareSlot(L.Tokens[1], Args, Returns, RetType);
      } else if (Head == ".class") {
        if (L.Tokens.size() < 2)
          return fail(L.Number, ".class needs a name");
        size_t Idx = 2;
        std::string FieldsV;
        uint32_t Fields = 0;
        if (!keyValue(L, Idx, "fields", FieldsV) ||
            !parseUint(L, FieldsV, Fields))
          return false;
        if (Classes.count(L.Tokens[1]))
          return fail(L.Number, "duplicate class '" + L.Tokens[1] + "'");
        Classes[L.Tokens[1]] = Asm.declareClass(L.Tokens[1], Fields);
      } else if (Head == ".method") {
        if (L.Tokens.size() < 2)
          return fail(L.Number, ".method needs a name");
        size_t Idx = 2;
        std::string ArgsV, LocalsV, RetV;
        uint32_t Args = 0, Locals = 0;
        bool Returns = false;
        TypeTag RetType = TypeTag::Int;
        if (!keyValue(L, Idx, "args", ArgsV) || !parseUint(L, ArgsV, Args) ||
            !keyValue(L, Idx, "locals", LocalsV) ||
            !parseUint(L, LocalsV, Locals) ||
            !keyValue(L, Idx, "returns", RetV) ||
            !parseReturns(L, RetV, Returns, RetType))
          return false;
        if (Locals < Args)
          return fail(L.Number, "locals must be >= args");
        if (Methods.count(L.Tokens[1]))
          return fail(L.Number, "duplicate method '" + L.Tokens[1] + "'");
        Methods[L.Tokens[1]] =
            Asm.declareMethod(L.Tokens[1], Args, Locals, Returns, RetType);
      }
    }
    return true;
  }

  /// Pass 2: vtables, entry, and method bodies.
  bool definePass() {
    bool SawEntry = false;
    for (size_t I = 0; I < Lines.size(); ++I) {
      const Line &L = Lines[I];
      const std::string &Head = L.head();
      if (Head == ".slot" || Head == ".class")
        continue;
      if (Head == ".vtable") {
        if (L.Tokens.size() != 4)
          return fail(L.Number, ".vtable needs <class> <slot> <method>");
        auto C = Classes.find(L.Tokens[1]);
        auto S = Slots.find(L.Tokens[2]);
        auto M = Methods.find(L.Tokens[3]);
        if (C == Classes.end())
          return fail(L.Number, "unknown class '" + L.Tokens[1] + "'");
        if (S == Slots.end())
          return fail(L.Number, "unknown slot '" + L.Tokens[2] + "'");
        if (M == Methods.end())
          return fail(L.Number, "unknown method '" + L.Tokens[3] + "'");
        Asm.setVtableEntry(C->second, S->second, M->second);
        continue;
      }
      if (Head == ".entry") {
        if (L.Tokens.size() != 2)
          return fail(L.Number, ".entry needs a method name");
        auto M = Methods.find(L.Tokens[1]);
        if (M == Methods.end())
          return fail(L.Number, "unknown method '" + L.Tokens[1] + "'");
        Asm.setEntry(M->second);
        SawEntry = true;
        continue;
      }
      if (Head == ".method") {
        if (!parseBody(I))
          return false;
        continue;
      }
      return fail(L.Number, "unexpected '" + Head + "' outside a method");
    }
    if (!SawEntry)
      return fail(Lines.empty() ? 1 : Lines.back().Number,
                  "missing .entry directive");
    return true;
  }

  /// Parses one method body; \p I indexes the .method line on entry and
  /// the .end line on exit.
  bool parseBody(size_t &I) {
    const Line &HeaderLine = Lines[I];
    MethodBuilder B = Asm.beginMethod(Methods[HeaderLine.Tokens[1]]);
    std::map<std::string, Label> LabelsByName;
    auto GetLabel = [&](const std::string &Name) {
      auto It = LabelsByName.find(Name);
      if (It == LabelsByName.end())
        It = LabelsByName.emplace(Name, B.newLabel()).first;
      return It->second;
    };
    std::map<std::string, bool> Bound;

    for (++I;; ++I) {
      if (I >= Lines.size())
        return fail(HeaderLine.Number, "method '" + HeaderLine.Tokens[1] +
                                           "' missing .end");
      const Line &L = Lines[I];
      const std::string &Head = L.head();
      if (Head == ".end")
        break;
      if (Head[0] == '.')
        return fail(L.Number, "unexpected directive '" + Head +
                                  "' inside a method body (missing .end?)");

      // Label definition?
      if (Head.size() > 1 && Head.back() == ':') {
        std::string Name = Head.substr(0, Head.size() - 1);
        if (Bound[Name])
          return fail(L.Number, "label '" + Name + "' bound twice");
        Bound[Name] = true;
        B.bind(GetLabel(Name));
        if (L.Tokens.size() > 1)
          return fail(L.Number, "labels must be on their own line");
        continue;
      }

      auto OpIt = mnemonicMap().find(Head);
      if (OpIt == mnemonicMap().end())
        return fail(L.Number, "unknown instruction '" + Head + "'");
      Opcode Op = OpIt->second;
      if (!parseInstruction(B, L, Op, GetLabel))
        return false;
    }

    for (const auto &[Name, Lbl] : LabelsByName)
      if (!Bound[Name])
        return fail(HeaderLine.Number, "label '" + Name + "' used but never "
                                                          "bound");
    B.finish();
    return true;
  }

  template <typename GetLabelT>
  bool parseInstruction(MethodBuilder &B, const Line &L, Opcode Op,
                        GetLabelT &GetLabel) {
    auto NeedOperands = [&](size_t N) {
      if (L.Tokens.size() == N + 1)
        return true;
      return fail(L.Number, "'" + L.head() + "' expects " +
                                std::to_string(N) + " operand(s)");
    };

    switch (Op) {
    case Opcode::Iconst:
    case Opcode::Iload:
    case Opcode::Istore:
    case Opcode::GetField:
    case Opcode::PutField: {
      int32_t A = 0;
      if (!NeedOperands(1) || !parseInt(L, L.Tokens[1], A))
        return false;
      B.emit(Op, A);
      return true;
    }
    case Opcode::Iinc: {
      int32_t A = 0, Delta = 0;
      if (!NeedOperands(2) || !parseInt(L, L.Tokens[1], A) ||
          !parseInt(L, L.Tokens[2], Delta))
        return false;
      B.emit(Op, A, Delta);
      return true;
    }
    case Opcode::Goto:
    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfGe:
    case Opcode::IfGt:
    case Opcode::IfLe:
    case Opcode::IfIcmpEq:
    case Opcode::IfIcmpNe:
    case Opcode::IfIcmpLt:
    case Opcode::IfIcmpGe:
    case Opcode::IfIcmpGt:
    case Opcode::IfIcmpLe:
      if (!NeedOperands(1))
        return false;
      B.branch(Op, GetLabel(L.Tokens[1]));
      return true;
    case Opcode::Tableswitch:
      return parseTableswitch(B, L, GetLabel);
    case Opcode::InvokeStatic: {
      if (!NeedOperands(1))
        return false;
      auto M = Methods.find(L.Tokens[1]);
      if (M == Methods.end())
        return fail(L.Number, "unknown method '" + L.Tokens[1] + "'");
      B.invokestatic(M->second);
      return true;
    }
    case Opcode::InvokeVirtual: {
      if (!NeedOperands(1))
        return false;
      auto S = Slots.find(L.Tokens[1]);
      if (S == Slots.end())
        return fail(L.Number, "unknown slot '" + L.Tokens[1] + "'");
      B.invokevirtual(S->second);
      return true;
    }
    case Opcode::New: {
      if (!NeedOperands(1))
        return false;
      auto C = Classes.find(L.Tokens[1]);
      if (C == Classes.end())
        return fail(L.Number, "unknown class '" + L.Tokens[1] + "'");
      B.newobj(C->second);
      return true;
    }
    default:
      if (!NeedOperands(0))
        return false;
      B.emit(Op);
      return true;
    }
  }

  template <typename GetLabelT>
  bool parseTableswitch(MethodBuilder &B, const Line &L, GetLabelT &GetLabel) {
    // tableswitch low=N targets= [ a b c ] default=d
    size_t Idx = 1;
    std::string LowV;
    int32_t Low = 0;
    if (!keyValue(L, Idx, "low", LowV) || !parseInt(L, LowV, Low))
      return false;
    if (Idx + 2 >= L.Tokens.size() || L.Tokens[Idx] != "targets" ||
        L.Tokens[Idx + 1] != "=" || L.Tokens[Idx + 2] != "[")
      return fail(L.Number, "expected 'targets=[...]'");
    Idx += 3;
    std::vector<Label> Targets;
    while (Idx < L.Tokens.size() && L.Tokens[Idx] != "]")
      Targets.push_back(GetLabel(L.Tokens[Idx++]));
    if (Idx >= L.Tokens.size())
      return fail(L.Number, "unterminated target list");
    ++Idx; // ']'
    std::string DefV;
    if (!keyValue(L, Idx, "default", DefV))
      return false;
    B.tableswitch(Low, Targets, GetLabel(DefV));
    return true;
  }

  std::vector<Line> Lines;
  std::string &Error;
  Assembler Asm;
  std::map<std::string, uint32_t> Slots;
  std::map<std::string, uint32_t> Classes;
  std::map<std::string, uint32_t> Methods;
};

} // namespace

std::optional<Module> jtc::parseModule(std::string_view Text,
                                       std::string &Error) {
  return Parser(Text, Error).run();
}

std::optional<Module> jtc::parseModuleFile(const std::string &Path,
                                           std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parseModule(SS.str(), Error);
}
