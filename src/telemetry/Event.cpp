//===- telemetry/Event.cpp ------------------------------------------------===//

#include "telemetry/Event.h"

using namespace jtc;

const char *jtc::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::TraceConstructed:
    return "trace-constructed";
  case EventKind::TraceReused:
    return "trace-reused";
  case EventKind::TraceReplaced:
    return "trace-replaced";
  case EventKind::TraceInvalidated:
    return "trace-invalidated";
  case EventKind::TraceRetired:
    return "trace-retired";
  case EventKind::TraceDispatched:
    return "trace-dispatched";
  case EventKind::TraceCompleted:
    return "trace-completed";
  case EventKind::TraceEarlyExit:
    return "trace-early-exit";
  case EventKind::ProfilerSignal:
    return "profiler-signal";
  case EventKind::DecayPass:
    return "decay-pass";
  case EventKind::SnapshotSaved:
    return "snapshot-saved";
  case EventKind::SnapshotLoaded:
    return "snapshot-loaded";
  case EventKind::SnapshotRejected:
    return "snapshot-rejected";
  case EventKind::BtraceStarted:
    return "btrace-started";
  case EventKind::BtraceFlushed:
    return "btrace-flushed";
  case EventKind::BtraceDropped:
    return "btrace-dropped";
  case EventKind::TraceValidated:
    return "trace-validated";
  case EventKind::TraceValidationRejected:
    return "trace-validation-rejected";
  case EventKind::TraceCompiled:
    return "trace-compiled";
  case EventKind::TraceCompileFallback:
    return "trace-compile-fallback";
  case EventKind::ConnAccepted:
    return "conn-accepted";
  case EventKind::ConnClosed:
    return "conn-closed";
  case EventKind::RequestRejectedBackpressure:
    return "request-rejected-backpressure";
  case EventKind::ShardRestarted:
    return "shard-restarted";
  case EventKind::AggregateMerged:
    return "aggregate-merged";
  }
  return "unknown";
}
