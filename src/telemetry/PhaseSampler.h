//===- telemetry/PhaseSampler.h - Stats time-series sampling ----*- C++ -*-===//
///
/// \file
/// Periodic snapshots of a counter-bearing stats struct, making program
/// phases visible: warmup (trace construction, signal bursts) vs. steady
/// state (near-pure trace dispatch) show up as changing per-interval
/// deltas. The sampler is a template over the stats type so the telemetry
/// library does not depend on the VM layer above it; the VM instantiates
/// PhaseSampler<VmStats>.
///
/// The stats type must expose a static fields() table whose entries carry
/// a nullable `Counter` pointer-to-member (VmStats::fields() is the model;
/// non-counter entries are ignored). Each sample stores both the
/// cumulative snapshot and the per-interval delta of every counter;
/// derived-metric methods evaluated on the delta snapshot yield
/// per-interval rates (e.g. coverage within the window).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TELEMETRY_PHASESAMPLER_H
#define JTC_TELEMETRY_PHASESAMPLER_H

#include <cstdint>
#include <vector>

namespace jtc {

template <typename StatsT> struct PhaseSample {
  uint64_t Clock = 0;     ///< Logical clock (blocks executed) at the sample.
  StatsT Cumulative{};    ///< Snapshot at the sample point.
  StatsT Delta{};         ///< Counter changes since the previous sample.
};

template <typename StatsT> class PhaseSampler {
public:
  /// A default-constructed (or interval-0) sampler is disabled.
  PhaseSampler() = default;
  explicit PhaseSampler(uint64_t Interval)
      : Interval(Interval), NextAt(Interval) {}

  bool enabled() const { return Interval != 0; }
  uint64_t interval() const { return Interval; }

  /// The clock value at (or past) which the next sample is due; the VM
  /// compares BlocksExecuted against this once per block.
  uint64_t nextSampleAt() const { return NextAt; }

  /// Takes one sample. \p Cur must be a complete snapshot (the VM
  /// assembles one with live profiler/cache counters folded in).
  void sample(uint64_t Clock, const StatsT &Cur) {
    PhaseSample<StatsT> S;
    S.Clock = Clock;
    S.Cumulative = Cur;
    S.Delta = Cur;
    for (const auto &F : StatsT::fields())
      if (F.Counter)
        S.Delta.*(F.Counter) = Cur.*(F.Counter) - Prev.*(F.Counter);
    Prev = Cur;
    Samples.push_back(S);
    NextAt = Clock + Interval;
  }

  const std::vector<PhaseSample<StatsT>> &samples() const { return Samples; }
  bool empty() const { return Samples.empty(); }

private:
  uint64_t Interval = 0;
  uint64_t NextAt = 0;
  StatsT Prev{};
  std::vector<PhaseSample<StatsT>> Samples;
};

} // namespace jtc

#endif // JTC_TELEMETRY_PHASESAMPLER_H
