//===- telemetry/EventRing.h - Fixed-capacity event buffer ------*- C++ -*-===//
///
/// \file
/// A fixed-capacity ring buffer of telemetry Events. The capacity is
/// allocated once up front, so recording never allocates: at capacity the
/// oldest event is overwritten and counted as dropped. Events are stamped
/// with a logical clock read through a pointer (the VM passes
/// &VmStats::BlocksExecuted), which keeps the ring independent of the VM
/// layering while still giving every event the paper's natural time axis.
///
/// The instrumentation sites in the profiler, trace cache and VM go
/// through the JTC_RECORD_EVENT macro below: compiled out entirely when
/// the JTC_TELEMETRY CMake option is OFF, and a single predictable
/// null-pointer test when telemetry is compiled in but disabled at
/// runtime.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TELEMETRY_EVENTRING_H
#define JTC_TELEMETRY_EVENTRING_H

#include "telemetry/Event.h"

#include <cstddef>
#include <vector>

namespace jtc {

class EventRing {
public:
  /// A default-constructed ring is disabled: record() is a no-op.
  EventRing() = default;

  /// \p Capacity events are retained (older ones are overwritten);
  /// \p Clock, when non-null, stamps each recorded event.
  explicit EventRing(size_t Capacity, const uint64_t *Clock = nullptr)
      : Buf(Capacity), Clock(Clock) {}

  bool enabled() const { return !Buf.empty(); }
  size_t capacity() const { return Buf.size(); }

  /// Events currently retained (<= capacity).
  size_t size() const {
    return Total < Buf.size() ? static_cast<size_t>(Total) : Buf.size();
  }

  /// Every event ever recorded, including overwritten ones.
  uint64_t totalRecorded() const { return Total; }

  /// Events lost to overwriting.
  uint64_t dropped() const { return Total - size(); }

  /// Records one event stamped with the current logical clock.
  void record(EventKind K, uint32_t Id, uint32_t Arg = 0) {
    recordAt(Clock ? *Clock : 0, K, Id, Arg);
  }

  /// Records one event with an explicit clock (tests, replays).
  void recordAt(uint64_t At, EventKind K, uint32_t Id, uint32_t Arg = 0) {
    if (Buf.empty())
      return;
    Event &E = Buf[static_cast<size_t>(Total % Buf.size())];
    E.Clock = At;
    E.Id = Id;
    E.Arg = Arg;
    E.Kind = K;
    ++Total;
  }

  /// The \p I-th oldest retained event (0 = oldest surviving).
  const Event &event(size_t I) const {
    size_t Start = Total < Buf.size() ? 0 : static_cast<size_t>(Total % Buf.size());
    return Buf[(Start + I) % Buf.size()];
  }

  /// Visits retained events oldest to newest.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t I = 0, N = size(); I < N; ++I)
      F(event(I));
  }

  /// Retained events oldest to newest, as a fresh vector.
  std::vector<Event> snapshot() const {
    std::vector<Event> Out;
    Out.reserve(size());
    forEach([&Out](const Event &E) { Out.push_back(E); });
    return Out;
  }

  /// Forgets all retained events (capacity and clock are kept).
  void clear() { Total = 0; }

private:
  std::vector<Event> Buf;
  const uint64_t *Clock = nullptr;
  uint64_t Total = 0;
};

/// Instrumentation-site wrapper: \p RingPtr is an EventRing*, null when
/// telemetry is disabled at runtime. Expands to nothing when telemetry is
/// compiled out.
#ifdef JTC_TELEMETRY
#define JTC_RECORD_EVENT(RingPtr, ...)                                         \
  do {                                                                         \
    if (RingPtr)                                                               \
      (RingPtr)->record(__VA_ARGS__);                                          \
  } while (0)
#else
#define JTC_RECORD_EVENT(RingPtr, ...)                                         \
  do {                                                                         \
  } while (0)
#endif

} // namespace jtc

#endif // JTC_TELEMETRY_EVENTRING_H
