//===- telemetry/Export.h - Event and time-series exporters -----*- C++ -*-===//
///
/// \file
/// Serializers for the telemetry data:
///
///  - writeEventsJsonl: one compact JSON object per event, one per line --
///    the grep/jq-friendly dump.
///  - writeChromeTrace: the Chrome trace_event format (load the file in
///    Perfetto / chrome://tracing). Each trace's lifetime is an async
///    "b"/"e" span keyed by its trace id, with dispatches, completions
///    and early exits as instants on that span; profiler signals and
///    decay passes are thread instants; phase-sampler deltas become
///    counter ("C") tracks, one per stats field. Timestamps are the
///    logical clock (blocks executed), not microseconds.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TELEMETRY_EXPORT_H
#define JTC_TELEMETRY_EXPORT_H

#include "support/Json.h"
#include "telemetry/EventRing.h"
#include "telemetry/PhaseSampler.h"

#include <ostream>

namespace jtc {

/// One JSON object per retained event, oldest first, one per line:
///   {"clock":1234,"kind":"trace-constructed","id":3,"arg":9}
void writeEventsJsonl(std::ostream &OS, const EventRing &Ring);

namespace telemetry_detail {
/// Emits the header fields of the trace document (inside an open object).
void writeChromeHeader(JsonWriter &W, const EventRing &Ring);
/// Emits every retained event (inside an open traceEvents array).
void writeChromeEvents(JsonWriter &W, const EventRing &Ring);
/// Emits one counter-track event (inside an open traceEvents array).
void writeCounterEvent(JsonWriter &W, const char *Series, uint64_t Clock,
                       double Value);
} // namespace telemetry_detail

/// Chrome trace of the event ring alone.
void writeChromeTrace(std::ostream &OS, const EventRing &Ring);

/// Chrome trace of the event ring plus one counter track per stats field
/// of the phase sampler (per-interval deltas and per-interval derived
/// rates). StatsT follows the VmStats::fields() protocol.
template <typename StatsT>
void writeChromeTrace(std::ostream &OS, const EventRing &Ring,
                      const PhaseSampler<StatsT> &Sampler) {
  JsonWriter W(OS);
  W.beginObject();
  telemetry_detail::writeChromeHeader(W, Ring);
  W.key("traceEvents").beginArray();
  telemetry_detail::writeChromeEvents(W, Ring);
  for (const auto &S : Sampler.samples()) {
    for (const auto &F : StatsT::fields()) {
      double V;
      if (F.Counter)
        V = static_cast<double>(S.Delta.*(F.Counter));
      else if (F.Derived)
        V = (S.Delta.*(F.Derived))();
      else if (F.DerivedCount)
        V = static_cast<double>((S.Delta.*(F.DerivedCount))());
      else
        continue;
      telemetry_detail::writeCounterEvent(W, F.Key, S.Clock, V);
    }
  }
  W.endArray();
  W.endObject();
  OS << "\n";
}

} // namespace jtc

#endif // JTC_TELEMETRY_EXPORT_H
