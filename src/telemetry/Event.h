//===- telemetry/Event.h - Trace lifecycle events ---------------*- C++ -*-===//
///
/// \file
/// The POD event vocabulary of the telemetry subsystem. Every adaptive
/// action the system takes -- a trace being constructed, dispatched,
/// completed, exited early, replaced, retired or invalidated, a profiler
/// state-change signal, a decay pass -- is recordable as one fixed-size
/// Event stamped with the VM's logical clock (VmStats::BlocksExecuted),
/// so a run's adaptive behaviour can be replayed and visualized after the
/// fact. This is the observability layer the paper's whole evaluation
/// implicitly relies on: Tables I-V are aggregates over exactly these
/// events.
///
/// Telemetry is compiled out entirely when the JTC_TELEMETRY CMake option
/// is OFF; the instrumentation sites use JTC_RECORD_EVENT (EventRing.h),
/// which expands to nothing in that configuration. When compiled in but
/// disabled at runtime, each site costs one predictable null-pointer
/// branch.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TELEMETRY_EVENT_H
#define JTC_TELEMETRY_EVENT_H

#include <cstdint>

namespace jtc {

#ifdef JTC_TELEMETRY
/// True when the telemetry instrumentation is compiled in
/// (-DJTC_TELEMETRY=ON, the default).
inline constexpr bool TelemetryCompiledIn = true;
#else
inline constexpr bool TelemetryCompiledIn = false;
#endif

/// What happened. The Id/Arg payload of the Event depends on the kind;
/// see each enumerator.
enum class EventKind : uint8_t {
  TraceConstructed,  ///< Id = trace, Arg = length in blocks.
  TraceReused,       ///< Hash-cons hit: Id = trace, Arg = length.
  TraceReplaced,     ///< Id = killed trace, Arg = the replacing trace.
  TraceInvalidated,  ///< Stale fragment: Id = killed, Arg = fresh trace.
  TraceRetired,      ///< Poor completion: Id = trace, Arg = observed
                     ///< completion in basis points (0..10000).
  TraceDispatched,   ///< Entry-pair hit: Id = trace.
  TraceCompleted,    ///< Ran to the last block: Id = trace, Arg = length.
  TraceEarlyExit,    ///< Divergence: Id = trace, Arg = blocks executed.
  ProfilerSignal,    ///< Id = BCG node, Arg = new NodeState.
  DecayPass,         ///< Id = BCG node whose counters were halved.
  SnapshotSaved,     ///< Durable .jtcp written: Id = traces, Arg = nodes.
  SnapshotLoaded,    ///< Durable .jtcp installed: Id = traces, Arg = nodes.
  SnapshotRejected,  ///< Load refused: Arg = PersistErrorKind.
  BtraceStarted,     ///< Branch-trace capture began: Arg = sync interval.
  BtraceFlushed,     ///< Encoder buffer flushed: Arg = bytes written.
  BtraceDropped,     ///< Capture abandoned (sink write failed): Arg =
                     ///< bytes lost in the unflushed buffer.
  TraceValidated,    ///< Translation validation accepted: Id = trace,
                     ///< Arg = length in blocks.
  TraceValidationRejected, ///< Validation proof failed (optimized form
                           ///< discarded): Id = trace, Arg =
                           ///< validate::Reason code.
  TraceCompiled,         ///< Backend promoted a trace to native code:
                         ///< Id = trace, Arg = code bytes emitted.
  TraceCompileFallback,  ///< Promotion failed; the trace stays on the
                         ///< interpreter tier: Id = trace, Arg =
                         ///< backend::CompileFallback code.
  ConnAccepted,          ///< Fleet front-end accepted a connection:
                         ///< Id = connection id.
  ConnClosed,            ///< Connection ended (either side): Id = conn.
  RequestRejectedBackpressure, ///< Admission control refused a session:
                               ///< Id = shard, Arg = queue depth.
  ShardRestarted,        ///< Supervisor respawned a crashed shard:
                         ///< Id = shard, Arg = restart count.
  AggregateMerged,       ///< Fleet profile aggregate rebuilt: Id =
                         ///< traces kept, Arg = snapshots merged.
};

inline constexpr unsigned NumEventKinds =
    static_cast<unsigned>(EventKind::AggregateMerged) + 1;

/// Stable machine-readable name ("trace-constructed", "decay-pass", ...).
const char *eventKindName(EventKind K);

/// One recorded occurrence. Trivially copyable plain data.
struct Event {
  uint64_t Clock = 0; ///< VmStats::BlocksExecuted at record time.
  uint32_t Id = 0;    ///< TraceId or NodeId, per EventKind.
  uint32_t Arg = 0;   ///< Kind-specific payload (see EventKind).
  EventKind Kind = EventKind::TraceConstructed;

  bool isTraceLifecycle() const { return Kind < EventKind::ProfilerSignal; }
};

} // namespace jtc

#endif // JTC_TELEMETRY_EVENT_H
