//===- telemetry/Export.cpp -----------------------------------------------===//

#include "telemetry/Export.h"

using namespace jtc;

void jtc::writeEventsJsonl(std::ostream &OS, const EventRing &Ring) {
  Ring.forEach([&OS](const Event &E) {
    JsonWriter W(OS);
    W.beginObject()
        .fieldUInt("clock", E.Clock)
        .field("kind", eventKindName(E.Kind))
        .fieldUInt("id", E.Id)
        .fieldUInt("arg", E.Arg)
        .endObject();
    OS << "\n";
  });
}

void jtc::telemetry_detail::writeChromeHeader(JsonWriter &W,
                                              const EventRing &Ring) {
  W.field("displayTimeUnit", "ms");
  W.key("otherData")
      .beginObject()
      .field("clock", "blocks_executed")
      .fieldUInt("events_recorded", Ring.totalRecorded())
      .fieldUInt("events_dropped", Ring.dropped())
      .endObject();
}

namespace {

/// Common prefix of every emitted trace event.
void eventPrelude(JsonWriter &W, const char *Name, const char *Cat,
                  const char *Ph, uint64_t Ts) {
  W.beginObject()
      .field("name", Name)
      .field("cat", Cat)
      .field("ph", Ph)
      .fieldUInt("ts", Ts)
      .fieldUInt("pid", 1)
      .fieldUInt("tid", 1);
}

} // namespace

void jtc::telemetry_detail::writeChromeEvents(JsonWriter &W,
                                              const EventRing &Ring) {
  Ring.forEach([&W](const Event &E) {
    const char *Kind = eventKindName(E.Kind);
    switch (E.Kind) {
    case EventKind::TraceConstructed:
    case EventKind::TraceReused:
      // Birth (or re-install) of a trace: an async span begins, keyed by
      // the trace id so every later event of this trace lands on it.
      eventPrelude(W, "trace", "trace", "b", E.Clock);
      W.fieldUInt("id", E.Id)
          .key("args")
          .beginObject()
          .field("event", Kind)
          .fieldUInt("blocks", E.Arg)
          .endObject()
          .endObject();
      break;
    case EventKind::TraceReplaced:
    case EventKind::TraceInvalidated:
    case EventKind::TraceRetired:
      // Death of a trace: the async span ends, with the reason attached.
      eventPrelude(W, "trace", "trace", "e", E.Clock);
      W.fieldUInt("id", E.Id)
          .key("args")
          .beginObject()
          .field("event", Kind)
          .fieldUInt("arg", E.Arg)
          .endObject()
          .endObject();
      break;
    case EventKind::TraceDispatched:
    case EventKind::TraceCompleted:
    case EventKind::TraceEarlyExit:
      // Execution activity: async instants on the trace's span.
      eventPrelude(W, "trace", "trace", "n", E.Clock);
      W.fieldUInt("id", E.Id)
          .key("args")
          .beginObject()
          .field("event", Kind)
          .fieldUInt("arg", E.Arg)
          .endObject()
          .endObject();
      break;
    case EventKind::ProfilerSignal:
    case EventKind::DecayPass:
      // Profiler activity: thread-scoped instants.
      eventPrelude(W, Kind, "profiler", "i", E.Clock);
      W.field("s", "t")
          .key("args")
          .beginObject()
          .fieldUInt("node", E.Id)
          .fieldUInt("arg", E.Arg)
          .endObject()
          .endObject();
      break;
    case EventKind::SnapshotSaved:
    case EventKind::SnapshotLoaded:
    case EventKind::SnapshotRejected:
      // Durable-profile lifecycle: thread-scoped instants.
      eventPrelude(W, Kind, "persist", "i", E.Clock);
      W.field("s", "t")
          .key("args")
          .beginObject()
          .fieldUInt("id", E.Id)
          .fieldUInt("arg", E.Arg)
          .endObject()
          .endObject();
      break;
    case EventKind::BtraceStarted:
    case EventKind::BtraceFlushed:
    case EventKind::BtraceDropped:
      // Branch-trace capture lifecycle: thread-scoped instants.
      eventPrelude(W, Kind, "btrace", "i", E.Clock);
      W.field("s", "t")
          .key("args")
          .beginObject()
          .fieldUInt("id", E.Id)
          .fieldUInt("arg", E.Arg)
          .endObject()
          .endObject();
      break;
    case EventKind::TraceValidated:
    case EventKind::TraceValidationRejected:
      // Translation validation verdicts: async instants on the trace's
      // span (they land between construction and first dispatch).
      eventPrelude(W, "trace", "validate", "n", E.Clock);
      W.fieldUInt("id", E.Id)
          .key("args")
          .beginObject()
          .field("event", Kind)
          .fieldUInt("arg", E.Arg)
          .endObject()
          .endObject();
      break;
    case EventKind::TraceCompiled:
    case EventKind::TraceCompileFallback:
      // Tier promotion verdicts: async instants on the trace's span.
      eventPrelude(W, "trace", "backend", "n", E.Clock);
      W.fieldUInt("id", E.Id)
          .key("args")
          .beginObject()
          .field("event", Kind)
          .fieldUInt("arg", E.Arg)
          .endObject()
          .endObject();
      break;
    case EventKind::ConnAccepted:
    case EventKind::ConnClosed:
    case EventKind::RequestRejectedBackpressure:
    case EventKind::ShardRestarted:
    case EventKind::AggregateMerged:
      // Fleet/net lifecycle: thread-scoped instants.
      eventPrelude(W, Kind, "fleet", "i", E.Clock);
      W.field("s", "t")
          .key("args")
          .beginObject()
          .fieldUInt("id", E.Id)
          .fieldUInt("arg", E.Arg)
          .endObject()
          .endObject();
      break;
    }
  });
}

void jtc::telemetry_detail::writeCounterEvent(JsonWriter &W,
                                              const char *Series,
                                              uint64_t Clock, double Value) {
  eventPrelude(W, Series, "phase", "C", Clock);
  W.key("args").beginObject().fieldReal("value", Value).endObject().endObject();
}

void jtc::writeChromeTrace(std::ostream &OS, const EventRing &Ring) {
  JsonWriter W(OS);
  W.beginObject();
  telemetry_detail::writeChromeHeader(W, Ring);
  W.key("traceEvents").beginArray();
  telemetry_detail::writeChromeEvents(W, Ring);
  W.endArray();
  W.endObject();
  OS << "\n";
}
