//===- fuzz/BtraceAudit.h - Branch-trace round-trip auditing ----*- C++ -*-===//
///
/// \file
/// The fuzzer's oracle for the btrace pipeline: every profiled run can be
/// captured twice -- once as the literal block sequence the VM dispatched
/// (the ground truth) and once through the compressed encoder into an
/// in-memory stream. The audit then decodes the stream and demands the
/// exact ground-truth sequence back, replays it through a fresh adaptive
/// engine and demands the recorded stats digest, and (when the stream
/// grew sync packets) re-runs the loss-tolerant tail recovery and demands
/// a suffix of the ground truth. Any daylight between the three is a
/// found bug in the encoder, the decoder, or the replay engine.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FUZZ_BTRACEAUDIT_H
#define JTC_FUZZ_BTRACEAUDIT_H

#include "btrace/BtraceEncoder.h"
#include "fuzz/Invariants.h"
#include "vm/TraceVM.h"

#include <memory>
#include <vector>

namespace jtc {
namespace fuzz {

/// A transition sink that records the dispatched block sequence verbatim
/// while forwarding everything to a BtraceEncoder writing into memory.
/// Attach with attach() before VM.run(); the VM holds a plain pointer, so
/// the recorder must outlive the run.
class BtraceRecorder : public BlockTransitionSink {
public:
  /// \p SyncInterval overrides the VM's configured interval so short
  /// fuzz programs still exercise sync emission.
  BtraceRecorder(const PreparedModule &PM, const TraceVM &VM,
                 uint32_t SyncInterval = 64);
  ~BtraceRecorder() override;

  void attach(TraceVM &VM) { VM.setTransitionSink(this); }

  void onRunStart(BlockId Entry) override;
  void onTransition(BlockId From, BlockId To) override;
  void onRunEnd(const RunResult &R, const VmStats &Final) override;

  /// The ground truth: every dispatched block, in order.
  const std::vector<BlockId> &blocks() const { return Blocks; }
  /// The complete encoded stream (valid after the run ends).
  const std::vector<uint8_t> &stream() const { return Stream; }
  const btrace::SuccessorTable &successors() const { return *ST; }

private:
  std::vector<BlockId> Blocks;
  std::vector<uint8_t> Stream;
  std::unique_ptr<btrace::SuccessorTable> ST;
  std::unique_ptr<btrace::BtraceEncoder> Enc;
};

/// Audits one recorded run: strict decode reproduces blocks() exactly,
/// replay reproduces the stats digest, and tail recovery (when sync
/// packets exist) reproduces a suffix. Rules: "btrace-encode",
/// "btrace-decode", "btrace-block-mismatch", "btrace-count-mismatch",
/// "btrace-digest-mismatch", "btrace-recover-mismatch".
std::vector<Violation> checkBtraceRoundTrip(const PreparedModule &PM,
                                            const BtraceRecorder &Rec);

} // namespace fuzz
} // namespace jtc

#endif // JTC_FUZZ_BTRACEAUDIT_H
