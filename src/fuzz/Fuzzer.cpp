//===- fuzz/Fuzzer.cpp ----------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Minimizer.h"
#include "support/Timer.h"
#include "text/AsmParser.h"
#include "text/AsmWriter.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace jtc;
using namespace jtc::fuzz;

namespace {

/// First line of \p S (finding details can be multi-line).
std::string firstLine(const std::string &S) {
  size_t N = S.find('\n');
  return N == std::string::npos ? S : S.substr(0, N);
}

/// Renders the reproducer: a comment header identifying the failure,
/// then the module itself (parseable as-is; comments are skipped).
std::string renderRepro(const Module &M, const FuzzFailure &F) {
  std::ostringstream OS;
  OS << "; jtc-fuzz reproducer\n";
  OS << "; seed=" << F.Seed << " iteration=" << F.Iteration << "\n";
  for (const OracleFinding &Fd : F.Findings)
    OS << "; " << Fd.Engine << ": " << Fd.Rule << ": " << firstLine(Fd.Detail)
       << "\n";
  OS << "\n" << moduleToString(M);
  return OS.str();
}

} // namespace

FuzzReport fuzz::runFuzzer(const FuzzOptions &Options) {
  Timer Clock;
  FuzzReport Report;

  for (uint64_t It = 0; It < Options.Iterations; ++It) {
    if (Options.TimeLimitSeconds > 0 &&
        Clock.seconds() >= Options.TimeLimitSeconds)
      break;

    uint64_t Seed = Options.Seed + It;
    RandomProgramBuilder Gen(Seed, Options.Gen, &Report.Coverage);
    Module M = Gen.build();
    ++Report.Iterations;

    OracleResult R = runOracle(M, Options.Oracle);
    if (R.Skipped) {
      ++Report.SkippedRuns;
      continue;
    }
    if (R.Ok) {
      ++Report.CleanRuns;
      continue;
    }

    FuzzFailure F;
    F.Seed = Seed;
    F.Iteration = It;
    F.Findings = R.Findings;

    Module Repro = M;
    if (Options.Minimize) {
      auto StillFails = [&Options](const Module &Cand) {
        OracleResult RR = runOracle(Cand, Options.Oracle);
        return !RR.Ok;
      };
      Repro = minimizeModule(M, StillFails);
      // Report the findings of the minimized case, not the original's.
      F.Findings = runOracle(Repro, Options.Oracle).Findings;
    }
    F.ModuleText = renderRepro(Repro, F);

    if (!Options.ReproDir.empty()) {
      std::error_code EC;
      std::filesystem::create_directories(Options.ReproDir, EC);
      std::ostringstream Name;
      Name << "repro-seed" << Seed << ".jasm";
      std::filesystem::path P =
          std::filesystem::path(Options.ReproDir) / Name.str();
      std::ofstream Out(P);
      if (Out) {
        Out << F.ModuleText;
        F.ReproPath = P.string();
      }
    }

    Report.Failures.push_back(std::move(F));
    if (Options.MaxFailures != 0 &&
        Report.Failures.size() >= Options.MaxFailures)
      break;
  }

  Report.Seconds = Clock.seconds();
  return Report;
}

OracleResult fuzz::replayFile(const std::string &Path,
                              const OracleConfig &Config) {
  std::string Error;
  std::optional<Module> M = parseModuleFile(Path, Error);
  if (!M) {
    OracleResult R;
    R.Ok = false;
    R.Findings.push_back({"parser", "parse-error", Error});
    return R;
  }
  return runOracle(*M, Config);
}
