//===- fuzz/Minimizer.h - Greedy failing-case reduction ---------*- C++ -*-===//
///
/// \file
/// Delta-debugging for oracle failures. Given a module and a predicate
/// that re-runs the failing check, the minimizer greedily shrinks the
/// module while the failure reproduces: whole non-entry methods are
/// stubbed out, contiguous instruction ranges are deleted (with branch
/// and switch targets remapped across the cut), and constants are
/// zeroed. Every candidate is gated through the static verifier before
/// the predicate runs, so the reduction never leaves the space of valid
/// programs and the final module is a valid, small reproducer.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FUZZ_MINIMIZER_H
#define JTC_FUZZ_MINIMIZER_H

#include "bytecode/Program.h"

#include <cstdint>
#include <functional>

namespace jtc {
namespace fuzz {

struct MinimizerStats {
  uint64_t CandidatesTried = 0;    ///< Valid candidates handed to the predicate.
  uint64_t CandidatesAccepted = 0; ///< Candidates that still failed.
  unsigned Rounds = 0;             ///< Full pass rounds executed.
};

/// Shrinks \p M while \p StillFails holds. \p StillFails must return true
/// for \p M itself (the unreduced failure); it is only ever called with
/// verifier-valid modules. Runs full rounds of all reduction passes until
/// a round makes no progress or \p MaxRounds is reached, and returns the
/// smallest failing module found.
Module minimizeModule(const Module &M,
                      const std::function<bool(const Module &)> &StillFails,
                      unsigned MaxRounds = 8, MinimizerStats *Stats = nullptr);

/// Total instruction count over all methods (the minimizer's size metric).
uint64_t moduleSize(const Module &M);

} // namespace fuzz
} // namespace jtc

#endif // JTC_FUZZ_MINIMIZER_H
