//===- fuzz/ProgramGen.cpp ------------------------------------------------===//

#include "fuzz/ProgramGen.h"

#include <algorithm>
#include <string>

using namespace jtc;
using namespace jtc::fuzz;

const char *jtc::fuzz::stmtKindName(StmtKind K) {
  switch (K) {
  case StmtKind::Arith:
    return "arith";
  case StmtKind::Print:
    return "print";
  case StmtKind::Shuffle:
    return "shuffle";
  case StmtKind::If:
    return "if";
  case StmtKind::Call:
    return "call";
  case StmtKind::Loop:
    return "loop";
  case StmtKind::Switch:
    return "switch";
  case StmtKind::VirtualCall:
    return "virtual-call";
  case StmtKind::FieldOp:
    return "field-op";
  case StmtKind::ArrayOp:
    return "array-op";
  case StmtKind::TrapOp:
    return "trap-op";
  }
  return "unknown";
}

Module RandomProgramBuilder::build() {
  Assembler Asm;
  const GenFeatures &F = Config.Features;

  // Shared virtual-dispatch scaffolding: one slot, two classes with one
  // field each, and a leaf implementation per class. Declared before the
  // static methods so their ids never enter the acyclic-call method list.
  HaveClasses = F.VirtualCalls || F.Fields;
  if (HaveClasses) {
    Slot = Asm.declareSlot("val", /*ArgCount=*/1, /*ReturnsValue=*/true);
    ClassA = Asm.declareClass("A", /*NumFields=*/1);
    ClassB = Asm.declareClass("B", /*NumFields=*/1);
    uint32_t MA = Asm.declareMethod("A.val", 1, 1, /*ReturnsValue=*/true);
    {
      MethodBuilder B = Asm.beginMethod(MA);
      B.iload(0);
      B.getfield(0);
      B.iconst(static_cast<int32_t>(Rng.nextInRange(1, 16)));
      B.emit(Opcode::Iadd);
      B.iret();
      B.finish();
    }
    uint32_t MB = Asm.declareMethod("B.val", 1, 1, /*ReturnsValue=*/true);
    {
      MethodBuilder B = Asm.beginMethod(MB);
      B.iload(0);
      B.getfield(0);
      B.iconst(static_cast<int32_t>(Rng.nextInRange(2, 5)));
      B.emit(Opcode::Imul);
      B.iret();
      B.finish();
    }
    Asm.setVtableEntry(ClassA, Slot, MA);
    Asm.setVtableEntry(ClassB, Slot, MB);
  }

  unsigned NumMethods =
      Config.MinMethods +
      static_cast<unsigned>(
          Rng.nextBelow(Config.MaxMethods - Config.MinMethods + 1));
  std::vector<uint32_t> Methods;
  // Declare all statically callable methods first: method I may only call
  // methods > I, so the call graph is acyclic and every run terminates.
  for (unsigned I = 0; I < NumMethods; ++I) {
    uint32_t NumArgs =
        I == 0 ? 0 : 1 + static_cast<uint32_t>(Rng.nextBelow(2));
    // Reserved tail locals: the loop counter always, plus an object and
    // an array local when those features are on.
    uint32_t Reserved = 1 + (HaveClasses ? 1 : 0) + (F.Arrays ? 1 : 0);
    uint32_t NumLocals =
        NumArgs + 2 + Reserved + static_cast<uint32_t>(Rng.nextBelow(3));
    Args.push_back(NumArgs);
    Locals.push_back(NumLocals);
    ObjLocal.push_back(HaveClasses ? NumLocals - 2 : NoLocal);
    ArrLocal.push_back(F.Arrays ? NumLocals - 2 - (HaveClasses ? 1 : 0)
                                : NoLocal);
    ArrLen.push_back(1 + static_cast<int32_t>(Rng.nextBelow(8)));
    Methods.push_back(Asm.declareMethod("m" + std::to_string(I), NumArgs,
                                        NumLocals, /*ReturnsValue=*/I != 0));
  }

  for (unsigned I = 0; I < NumMethods; ++I) {
    MethodBuilder B = Asm.beginMethod(Methods[I]);
    // Prologue: initialize the reserved object and array locals so every
    // later FieldOp/VirtualCall/ArrayOp statement has a live receiver.
    if (ObjLocal[I] != NoLocal) {
      B.newobj(Rng.chancePercent(50) ? ClassA : ClassB);
      B.emit(Opcode::Dup);
      B.iconst(static_cast<int32_t>(Rng.nextInRange(-8, 8)));
      B.putfield(0);
      B.istore(ObjLocal[I]);
    }
    if (ArrLocal[I] != NoLocal) {
      B.iconst(ArrLen[I]);
      B.emit(Opcode::NewArray);
      B.istore(ArrLocal[I]);
    }
    unsigned Statements =
        Config.MinStatements +
        static_cast<unsigned>(
            Rng.nextBelow(Config.MaxStatements - Config.MinStatements + 1));
    for (unsigned S = 0; S < Statements; ++S)
      emitStatement(B, Methods, I, /*Depth=*/0, /*InLoop=*/false);
    if (I == 0) {
      B.iload(0);
      B.emit(Opcode::Iprint);
      B.halt();
    } else {
      B.iload(0);
      B.iret();
    }
    B.finish();
  }
  Asm.setEntry(Methods[0]);
  return Asm.build();
}

void RandomProgramBuilder::emitExpr(MethodBuilder &B, unsigned Self) {
  // Push one integer value: a constant or an integer-typed local. The
  // reserved object/array locals hold references and never feed
  // arithmetic -- the typed verifier rejects reference/integer confusion,
  // so generated programs stay verified-by-construction.
  if (Rng.chancePercent(40)) {
    B.iconst(static_cast<int32_t>(Rng.nextInRange(-100, 100)));
    return;
  }
  // Integer locals are [0, RefBase) plus the loop counter (the last
  // local); the reference band sits between them.
  uint32_t RefBase = Locals[Self] - 1;
  if (ObjLocal[Self] != NoLocal)
    RefBase = std::min(RefBase, ObjLocal[Self]);
  if (ArrLocal[Self] != NoLocal)
    RefBase = std::min(RefBase, ArrLocal[Self]);
  uint32_t Pick = static_cast<uint32_t>(Rng.nextBelow(RefBase + 1));
  B.iload(Pick == RefBase ? Locals[Self] - 1 : Pick);
}

uint32_t RandomProgramBuilder::storeTarget(unsigned Self) {
  // Reserved tail locals (loop counter, object, array) are never stored
  // to; the counter's immutability is what guarantees loop termination.
  uint32_t Reserved =
      1 + (ObjLocal[Self] != NoLocal ? 1 : 0) + (ArrLocal[Self] != NoLocal ? 1 : 0);
  return static_cast<uint32_t>(Rng.nextBelow(Locals[Self] - Reserved));
}

StmtKind RandomProgramBuilder::chooseKind(
    const std::vector<StmtKind> &Eligible) {
  // Coverage direction: weight each eligible kind by the inverse of how
  // often it has been emitted (campaign-wide when a shared histogram is
  // attached), so rarely exercised constructs are drawn more often.
  double Total = 0;
  std::array<double, NumStmtKinds> W{};
  for (StmtKind K : Eligible) {
    uint64_t Seen = Local.count(K) + (Shared ? Shared->count(K) : 0);
    double Weight = 1.0 / (1.0 + static_cast<double>(Seen));
    W[static_cast<unsigned>(K)] = Weight;
    Total += Weight;
  }
  double Draw = Rng.nextUnit() * Total;
  for (StmtKind K : Eligible) {
    Draw -= W[static_cast<unsigned>(K)];
    if (Draw <= 0)
      return K;
  }
  return Eligible.back();
}

void RandomProgramBuilder::emitStatement(MethodBuilder &B,
                                         const std::vector<uint32_t> &Methods,
                                         unsigned Self, unsigned Depth,
                                         bool InLoop) {
  const GenFeatures &F = Config.Features;

  // Calls and loops are only emitted outside loop bodies, which bounds
  // every run: per-method work is constant and the call graph is acyclic
  // with a statically bounded number of call sites. Nesting of control
  // statements is capped at depth 2.
  std::vector<StmtKind> Eligible = {StmtKind::Arith, StmtKind::Print,
                                    StmtKind::Shuffle};
  if (Depth < 2) {
    Eligible.push_back(StmtKind::If);
    if (F.Switches)
      Eligible.push_back(StmtKind::Switch);
  }
  if (!InLoop) {
    if (F.Calls && Self + 1 < Methods.size())
      Eligible.push_back(StmtKind::Call);
    if (F.Loops && Depth < 2)
      Eligible.push_back(StmtKind::Loop);
  }
  if (F.VirtualCalls && ObjLocal[Self] != NoLocal)
    Eligible.push_back(StmtKind::VirtualCall);
  if (F.Fields && ObjLocal[Self] != NoLocal)
    Eligible.push_back(StmtKind::FieldOp);
  if (F.Arrays && ArrLocal[Self] != NoLocal)
    Eligible.push_back(StmtKind::ArrayOp);
  if (F.Traps)
    Eligible.push_back(StmtKind::TrapOp);

  StmtKind Kind = chooseKind(Eligible);
  ++Local.Counts[static_cast<unsigned>(Kind)];
  if (Shared)
    ++Shared->Counts[static_cast<unsigned>(Kind)];

  switch (Kind) {
  case StmtKind::Arith: {
    emitExpr(B, Self);
    emitExpr(B, Self);
    static const Opcode Ops[] = {Opcode::Iadd, Opcode::Isub, Opcode::Imul,
                                 Opcode::Iand, Opcode::Ior,  Opcode::Ixor};
    B.emit(Ops[Rng.nextBelow(6)]);
    B.istore(storeTarget(Self));
    break;
  }
  case StmtKind::Print:
    emitExpr(B, Self);
    B.emit(Opcode::Iprint);
    break;
  case StmtKind::Shuffle: {
    emitExpr(B, Self);
    emitExpr(B, Self);
    B.emit(Opcode::Swap);
    B.emit(Opcode::Dup);
    B.emit(Opcode::Pop);
    B.emit(Opcode::Isub);
    B.istore(storeTarget(Self));
    break;
  }
  case StmtKind::If: {
    Label Else = B.newLabel(), Join = B.newLabel();
    emitExpr(B, Self);
    static const Opcode Branches[] = {Opcode::IfEq, Opcode::IfNe,
                                      Opcode::IfLt, Opcode::IfGe};
    B.branch(Branches[Rng.nextBelow(4)], Else);
    emitStatement(B, Methods, Self, Depth + 1, InLoop);
    B.branch(Opcode::Goto, Join);
    B.bind(Else);
    emitStatement(B, Methods, Self, Depth + 1, InLoop);
    B.bind(Join);
    break;
  }
  case StmtKind::Call: {
    auto Callee = Self + 1 + static_cast<unsigned>(
                                 Rng.nextBelow(Methods.size() - Self - 1));
    for (uint32_t A = 0; A < Args[Callee]; ++A)
      emitExpr(B, Self);
    B.invokestatic(Methods[Callee]);
    B.istore(storeTarget(Self));
    break;
  }
  case StmtKind::Loop: {
    uint32_t Counter = Locals[Self] - 1;
    auto Bound = static_cast<int32_t>(
        2 + Rng.nextBelow(static_cast<uint64_t>(Config.MaxLoopBound) - 1));
    Label Loop = B.newLabel(), Done = B.newLabel();
    B.iconst(0);
    B.istore(Counter);
    B.bind(Loop);
    B.iload(Counter);
    B.iconst(Bound);
    B.branch(Opcode::IfIcmpGe, Done);
    emitStatement(B, Methods, Self, Depth + 1, /*InLoop=*/true);
    B.iinc(Counter, 1);
    B.branch(Opcode::Goto, Loop);
    B.bind(Done);
    break;
  }
  case StmtKind::Switch: {
    // Mask the selector into [0, 3] so cases are actually reachable;
    // Iand with a non-negative constant is total on negative inputs too.
    unsigned NumCases = 2 + static_cast<unsigned>(Rng.nextBelow(3));
    std::vector<Label> Cases;
    for (unsigned C = 0; C < NumCases; ++C)
      Cases.push_back(B.newLabel());
    Label Def = B.newLabel(), Join = B.newLabel();
    emitExpr(B, Self);
    B.iconst(3);
    B.emit(Opcode::Iand);
    B.tableswitch(0, Cases, Def);
    for (unsigned C = 0; C < NumCases; ++C) {
      B.bind(Cases[C]);
      emitStatement(B, Methods, Self, Depth + 1, InLoop);
      B.branch(Opcode::Goto, Join);
    }
    B.bind(Def);
    emitStatement(B, Methods, Self, Depth + 1, InLoop);
    B.bind(Join);
    break;
  }
  case StmtKind::VirtualCall:
    B.iload(ObjLocal[Self]);
    B.invokevirtual(Slot);
    B.istore(storeTarget(Self));
    break;
  case StmtKind::FieldOp:
    if (Rng.chancePercent(50)) {
      B.iload(ObjLocal[Self]);
      emitExpr(B, Self);
      B.putfield(0);
    } else {
      B.iload(ObjLocal[Self]);
      B.getfield(0);
      B.istore(storeTarget(Self));
    }
    break;
  case StmtKind::ArrayOp: {
    auto Idx = static_cast<int32_t>(Rng.nextBelow(ArrLen[Self]));
    if (Rng.chancePercent(50)) {
      B.iload(ArrLocal[Self]);
      B.iconst(Idx);
      emitExpr(B, Self);
      B.emit(Opcode::Iastore);
    } else {
      B.iload(ArrLocal[Self]);
      B.iconst(Idx);
      B.emit(Opcode::Iaload);
      B.istore(storeTarget(Self));
    }
    break;
  }
  case StmtKind::TrapOp: {
    // Deliberately partial operations; whether a trap actually fires
    // depends on the values that flow here.
    unsigned Variants = 1 + (ArrLocal[Self] != NoLocal ? 1 : 0) +
                        (HaveClasses ? 1 : 0);
    uint64_t Pick = Rng.nextBelow(Variants);
    if (Pick == 0) {
      emitExpr(B, Self);
      emitExpr(B, Self);
      B.emit(Rng.chancePercent(50) ? Opcode::Idiv : Opcode::Irem);
      B.istore(storeTarget(Self));
    } else if (Pick == 1 && ArrLocal[Self] != NoLocal) {
      B.iload(ArrLocal[Self]);
      emitExpr(B, Self);
      B.emit(Opcode::Iaload);
      B.istore(storeTarget(Self));
    } else {
      // Nullable receiver: a runtime condition picks between null and the
      // live object local, so the typed verifier sees a *nullable*
      // reference (accepted) while the trap still fires whenever the
      // condition selects the null arm. The condition must not be
      // constant-foldable or branch pruning would leave an always-null
      // receiver (rejected); the object's field value is opaque to the
      // analysis.
      Label NonNull = B.newLabel(), Merge = B.newLabel();
      B.iload(ObjLocal[Self]);
      B.getfield(0);
      B.branch(Opcode::IfNe, NonNull);
      B.iconst(0); // the null reference
      B.branch(Opcode::Goto, Merge);
      B.bind(NonNull);
      B.iload(ObjLocal[Self]);
      B.bind(Merge);
      B.getfield(0);
      B.istore(storeTarget(Self));
    }
    break;
  }
  }
}
