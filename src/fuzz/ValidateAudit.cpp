//===- fuzz/ValidateAudit.cpp ---------------------------------------------===//

#include "fuzz/ValidateAudit.h"

#include "analysis/Analysis.h"
#include "validate/Validator.h"
#include "vm/TraceVM.h"

#include <sstream>

using namespace jtc;
using namespace jtc::fuzz;

std::vector<Violation> fuzz::checkValidateAudit(const PreparedModule &PM,
                                                const TraceVM &VM) {
  std::vector<Violation> Violations;
  const OptConfig &Cfg = VM.options().optConfig();
  // Under a deliberate miscompile, rejections are the expected outcome;
  // the audit only polices false rejects of sound optimizer output.
  if (Cfg.Mutate != UnsoundPass::None)
    return Violations;

  const std::vector<Trace> &Traces = VM.traceCache().traces();
  if (Traces.empty())
    return Violations;

  analysis::ModuleAnalysis Facts =
      analysis::ModuleAnalysis::compute(PM.module());
  for (const Trace &T : Traces) {
    if (T.Validation == TraceValidation::Rejected) {
      std::ostringstream OS;
      OS << "trace " << T.Id << " (" << T.Blocks.size()
         << " blocks) was rejected by the in-session validation hook on a "
            "run the execution oracle accepted";
      Violations.push_back({"validate-hook-reject", OS.str()});
    }
    validate::Result R = validate::validateTrace(PM, T, Cfg, &Facts);
    if (!R.Ok) {
      std::ostringstream OS;
      OS << "trace " << T.Id << " (" << T.Blocks.size()
         << " blocks): " << validate::reasonName(R.Why) << " in segment "
         << R.SegmentIndex;
      if (!R.Detail.empty())
        OS << ": " << R.Detail;
      Violations.push_back({"validate-false-reject", OS.str()});
    }
  }
  return Violations;
}
