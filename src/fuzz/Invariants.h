//===- fuzz/Invariants.h - Profiler/cache invariant auditing ----*- C++ -*-===//
///
/// \file
/// Structural invariants of the BCG profiler and the trace cache, audited
/// by the fuzzer after every run. Trace dispatch is semantically
/// transparent by construction (the trace layer drives the same Machine),
/// so a broken cache rarely shows up as wrong output -- it shows up as
/// inconsistent bookkeeping. These checks are the oracle for that class
/// of bug:
///
///  - BCG probability laws: per-node counters sum to the maintained node
///    weight, probabilities form a (sub-)distribution, correlation edges
///    and predecessor lists agree structurally;
///  - trace-cache laws: the entry map only hands out live traces, every
///    live trace is reachable through its own entry pair, expected
///    completion honours the construction threshold, and no trace whose
///    observed completion fell below the retirement threshold survives an
///    evaluation pass;
///  - counter reconciliation: dispatch/completion/hook counters obey the
///    dispatch-model identities, and when the telemetry ring is attached
///    (and nothing was dropped) the recorded event stream reproduces the
///    aggregate statistics exactly.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FUZZ_INVARIANTS_H
#define JTC_FUZZ_INVARIANTS_H

#include "interp/RunResult.h"

#include <string>
#include <vector>

namespace jtc {

class BranchCorrelationGraph;
class TraceVM;
class NetTraceVm;

namespace fuzz {

/// One violated invariant. Rule is a stable identifier ("entry-map-live",
/// "retirement-law", ...); Detail says which object broke it and how.
struct Violation {
  std::string Rule;
  std::string Detail;
};

/// Audits the BCG probability and structure laws.
std::vector<Violation> checkGraph(const BranchCorrelationGraph &G);

/// Audits a finished TraceVM run: graph laws, trace-cache laws, dispatch
/// identities and (when telemetry is on and lossless) event/counter
/// reconciliation. \p Status is the run's outcome; a few instruction
/// attribution checks only hold for cleanly finished runs.
std::vector<Violation> checkTraceVm(const TraceVM &VM, RunStatus Status);

/// Audits a finished NetTraceVm run (the subset of laws NET shares).
std::vector<Violation> checkNetVm(const NetTraceVm &VM);

/// Audits the persist layer against \p VM as donor: capture -> encode ->
/// decode -> re-validate -> reinstall into a fresh session over the same
/// module, asserting at each hop that the restored BCG counters and trace
/// set digest-match the donor exactly. Skipped (returns empty) when the
/// session has profiling or traces disabled (nothing to persist).
std::vector<Violation> checkPersistRoundTrip(const TraceVM &VM);

/// Renders violations one per line for diagnostics.
std::string formatViolations(const std::vector<Violation> &Vs);

} // namespace fuzz
} // namespace jtc

#endif // JTC_FUZZ_INVARIANTS_H
