//===- fuzz/Refinement.cpp ------------------------------------------------===//

#include "fuzz/Refinement.h"

#include "analysis/Analysis.h"
#include "runtime/Machine.h"

#include <sstream>

using namespace jtc;
using namespace jtc::fuzz;

namespace {

/// Most violations after the first are the same bug cascading through
/// the rest of the run; a small cap keeps reports readable.
constexpr size_t MaxViolations = 8;

class RefinementAuditor {
public:
  RefinementAuditor(const Module &M, const analysis::ModuleAnalysis &Facts,
                    std::vector<Violation> &Out)
      : M(M), Facts(Facts), Out(Out) {}

  bool full() const { return Out.size() >= MaxViolations; }

  /// Checks one dynamic frame against the static facts at \p Pc, which
  /// must be a block leader of \p MethodId.
  void atLeader(Machine &Mach, uint32_t MethodId, uint32_t Pc) {
    const analysis::MethodAnalysis *MA = Facts.method(MethodId);
    if (!MA)
      return; // Empty method: nothing was analyzed (and nothing runs).
    uint32_t B = MA->Cfg.blockAt(Pc);
    const analysis::FrameState &S = MA->Values.blockEntry(B);
    if (!S.Reachable) {
      violation("refinement-reachability", MethodId, Pc,
                "executed a block the analysis proved unreachable");
      return;
    }
    const Method &Fn = M.Methods[MethodId];
    for (uint32_t L = 0; L < Fn.NumLocals && !full(); ++L)
      checkLocal(Mach, MethodId, Pc, L, S.Locals[L]);
  }

private:
  void checkLocal(Machine &Mach, uint32_t MethodId, uint32_t Pc,
                  uint32_t L, const analysis::AbstractValue &A) {
    int64_t V = Mach.local(L);
    switch (A.K) {
    case analysis::AbstractValue::Kind::Top:
    case analysis::AbstractValue::Kind::Conflict:
      return; // Nothing claimed.
    case analysis::AbstractValue::Kind::Bot:
      violation("refinement-bot", MethodId, Pc,
                describe(L, V, A, "reachable point carries static bot"));
      return;
    case analysis::AbstractValue::Kind::Int:
      if (V < A.Lo || V > A.Hi)
        violation("refinement-range", MethodId, Pc,
                  describe(L, V, A, "dynamic value outside static range"));
      return;
    case analysis::AbstractValue::Kind::Ref:
      checkRef(Mach, MethodId, Pc, L, V, A);
      return;
    }
  }

  void checkRef(Machine &Mach, uint32_t MethodId, uint32_t Pc,
                uint32_t L, int64_t V, const analysis::AbstractValue &A) {
    if (V == Heap::Null) {
      if (!A.MayBeNull)
        violation("refinement-null", MethodId, Pc,
                  describe(L, V, A, "null where the ref is non-null"));
      return;
    }
    const Heap &H = Mach.heap();
    if (!H.isLive(V)) {
      violation("refinement-ref", MethodId, Pc,
                describe(L, V, A, "static ref holds a dead handle"));
      return;
    }
    uint32_t C = H.classOf(V);
    bool InMaySet = C == Heap::ArrayClass ? A.MayBeArray
                                          : A.Classes.mayContain(C);
    if (!InMaySet)
      violation("refinement-class", MethodId, Pc,
                describe(L, V, A, "dynamic class outside static may-set"));
  }

  std::string describe(uint32_t L, int64_t V,
                       const analysis::AbstractValue &A, const char *What) {
    std::ostringstream OS;
    OS << What << ": local " << L << " = " << V << ", static " << A.str();
    return OS.str();
  }

  void violation(const char *Rule, uint32_t MethodId, uint32_t Pc,
                 std::string Detail) {
    if (full())
      return;
    std::ostringstream OS;
    OS << "method " << M.Methods[MethodId].Name << " @" << Pc << ": "
       << Detail;
    Out.push_back({Rule, OS.str()});
  }

  const Module &M;
  const analysis::ModuleAnalysis &Facts;
  std::vector<Violation> &Out;
};

} // namespace

std::vector<Violation> fuzz::checkRefinement(const Module &M,
                                             uint64_t MaxInstructions) {
  analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
  return checkRefinement(M, Facts, MaxInstructions);
}

std::vector<Violation>
fuzz::checkRefinement(const Module &M, const analysis::ModuleAnalysis &Facts,
                      uint64_t MaxInstructions) {
  std::vector<Violation> Out;
  RefinementAuditor Audit(M, Facts, Out);

  // Mirror of runInstructions(), with a leader check before each
  // dispatch. Pc is checked on *entry* to the instruction, so the
  // audited frame state is exactly the analysis' block-entry state.
  Machine Mach(M);
  Mach.start(M.EntryMethod);
  uint32_t Pc = 0;
  uint64_t Executed = 0;

  while (Executed < MaxInstructions && !Audit.full()) {
    uint32_t MethodId = Mach.currentMethodId();
    const Method &Fn = Mach.currentMethod();
    const analysis::MethodAnalysis *MA = Facts.method(MethodId);
    if (MA && MA->Cfg.isLeader(Pc))
      Audit.atLeader(Mach, MethodId, Pc);

    Effect E = Mach.execOne(Fn.Code[Pc]);
    ++Executed;
    switch (E.Kind) {
    case EffectKind::Next:
      ++Pc;
      break;
    case EffectKind::Jump:
      Pc = E.Target;
      break;
    case EffectKind::Call:
      if (!Mach.pushFrame(E.Target, Pc + 1))
        return Out; // Stack overflow trap: dynamic facts end here.
      Pc = 0;
      break;
    case EffectKind::Ret: {
      Machine::PopInfo Info = Mach.popFrame(E.HasValue);
      if (Info.BottomFrame)
        return Out;
      Pc = Info.ReturnPc;
      break;
    }
    case EffectKind::Halt:
    case EffectKind::Trap:
      return Out;
    }
  }
  return Out;
}
