//===- fuzz/Fuzzer.h - The differential fuzzing campaign loop ---*- C++ -*-===//
///
/// \file
/// Ties the subsystem together: generate a program (coverage-directed,
/// campaign-wide), run it through the cross-engine oracle, and on a
/// failure minimize the module and emit a self-contained .jasm
/// reproducer. Deterministic: iteration I of a campaign seeded S always
/// generates from seed S + I, so any failure is reproducible from the
/// (seed, iteration) pair alone.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FUZZ_FUZZER_H
#define JTC_FUZZ_FUZZER_H

#include "fuzz/Oracle.h"
#include "fuzz/ProgramGen.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jtc {
namespace fuzz {

struct FuzzOptions {
  uint64_t Seed = 1;
  uint64_t Iterations = 1000;
  /// Wall-clock bound in seconds; 0 = unbounded (iterations only).
  double TimeLimitSeconds = 0;
  /// Stop after this many failing cases (0 = never stop early).
  unsigned MaxFailures = 1;
  bool Minimize = true;
  /// Directory to write reproducer .jasm files into; empty = don't write.
  std::string ReproDir;

  OracleConfig Oracle;
  GenConfig Gen;
};

/// One failing case: everything needed to reproduce and report it.
struct FuzzFailure {
  uint64_t Seed = 0;      ///< Generator seed of the failing program.
  uint64_t Iteration = 0; ///< Campaign iteration that produced it.
  std::vector<OracleFinding> Findings;
  /// The (minimized, when enabled) failing module as textual assembly.
  std::string ModuleText;
  /// Path of the written reproducer, when ReproDir was set.
  std::string ReproPath;
};

struct FuzzReport {
  uint64_t Iterations = 0; ///< Programs actually generated and run.
  uint64_t CleanRuns = 0;  ///< Runs with full agreement and no violations.
  uint64_t SkippedRuns = 0; ///< Reference exhausted the budget.
  std::vector<FuzzFailure> Failures;
  FeatureCoverage Coverage; ///< Campaign-wide statement-kind histogram.
  double Seconds = 0;

  bool ok() const { return Failures.empty(); }
};

/// Runs one fuzzing campaign.
FuzzReport runFuzzer(const FuzzOptions &Options);

/// Re-runs the oracle over one parsed module (corpus replay). Returns the
/// oracle result; parsing/verification failures surface as findings.
OracleResult replayFile(const std::string &Path, const OracleConfig &Config);

} // namespace fuzz
} // namespace jtc

#endif // JTC_FUZZ_FUZZER_H
