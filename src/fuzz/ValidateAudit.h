//===- fuzz/ValidateAudit.h - Validator-vs-oracle audit ---------*- C++ -*-===//
///
/// \file
/// The cross-check between the two independent soundness oracles this
/// repository has for the trace optimizer: the differential execution
/// oracle (Oracle.h, "did the optimized VM produce the reference
/// output?") and the construction-time translation validator
/// (validate/Validator.h, "is each optimized trace a provable refinement
/// of its source?"). On a run the execution oracle accepted, the
/// validator must accept every trace the session built: a rejection
/// there is a false positive -- a completeness bug in the validator (or
/// an optimizer bug the execution happened not to witness, which the
/// oracle wants to know about even more).
///
/// The audit re-validates every constructed trace offline, with the
/// session's own optimizer configuration and a freshly computed
/// ModuleAnalysis, and also flags any trace the in-VM hook already
/// rejected. It is meaningful only for stock optimizer configurations;
/// under an UnsoundPass mutation rejections are the desired outcome.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FUZZ_VALIDATEAUDIT_H
#define JTC_FUZZ_VALIDATEAUDIT_H

#include "fuzz/Invariants.h"

namespace jtc {

class PreparedModule;
class TraceVM;

namespace fuzz {

/// Re-validates every trace in \p VM's cache (live and dead; a trace
/// that was later retired still had to be sound while it ran) and
/// reports each rejection as a "validate-false-reject" violation, plus a
/// "validate-hook-reject" for any trace the in-session hook rejected.
/// Returns empty when the session built no traces.
std::vector<Violation> checkValidateAudit(const PreparedModule &PM,
                                          const TraceVM &VM);

} // namespace fuzz
} // namespace jtc

#endif // JTC_FUZZ_VALIDATEAUDIT_H
