//===- fuzz/Oracle.h - Cross-engine differential oracle ---------*- C++ -*-===//
///
/// \file
/// The differential oracle at the core of the fuzzing subsystem. One
/// module is executed by every engine the repository implements -- the
/// per-instruction reference interpreter, the direct-threaded engine, the
/// TraceVM across a grid of (threshold, start-state delay, decay
/// interval) configurations, and the Dynamo-NET baseline -- and all
/// observable outcomes are cross-checked against the reference: run
/// status, trap kind, executed instruction count, printed output and a
/// digest of the final heap. After each profiled run the structural
/// invariants of Invariants.h are audited as well, so bookkeeping bugs
/// that cannot change program output are still caught.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FUZZ_ORACLE_H
#define JTC_FUZZ_ORACLE_H

#include "interp/RunResult.h"
#include "trace/TraceConfig.h"
#include "vm/VmOptions.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jtc {

struct Module;
class Heap;

namespace fuzz {

/// One TraceVM configuration to cross-check (mirrors the paper's
/// parameter sweep axes).
struct GridPoint {
  double Threshold = 0.97;
  uint32_t Delay = 1;
  uint32_t Decay = 32;
};

/// The default grid: the degenerate threshold, the paper's default with
/// an eager and a conservative profiler, and a permissive threshold that
/// builds speculative traces (exercising early exits and retirement).
std::vector<GridPoint> defaultGrid();

struct OracleConfig {
  /// Instruction budget per engine run. Generated programs are bounded
  /// far below this; a reference run that exhausts it is skipped rather
  /// than compared (engines disagree on where a budget cut lands).
  uint64_t MaxInstructions = 20'000'000;

  /// TraceVM configurations to run; empty means defaultGrid().
  std::vector<GridPoint> Grid;

  bool IncludeThreaded = true;
  bool IncludeNet = true;

  /// Attach the telemetry ring to TraceVM runs; enables the event/counter
  /// reconciliation and retirement-law audits.
  bool Telemetry = true;
  uint32_t TelemetryCapacity = 1u << 18;

  /// Audit profiler/cache invariants after every profiled run.
  bool CheckInvariants = true;

  /// Audit the persist layer after every profiled run: capture the VM's
  /// snapshot, encode, decode, re-validate and reinstall it into a fresh
  /// session, asserting the restored BCG + trace-cache digest matches the
  /// donor exactly (checkPersistRoundTrip in Invariants.h).
  bool CheckPersist = true;

  /// Audit that dynamic facts refine the static analysis' may-sets
  /// (Refinement.h): replays the reference run with per-block-leader
  /// checks against a computed ModuleAnalysis.
  bool CheckRefinement = true;

  /// Audit the btrace pipeline after every profiled run: record the
  /// dispatched block sequence, encode it through the compressed branch
  /// tracer, then demand that strict decode reproduces the sequence
  /// exactly, that replay reproduces the stats digest, and that tail
  /// recovery lands on a suffix (checkBtraceRoundTrip in BtraceAudit.h).
  /// Skipped automatically under an injected cache fault (the replay
  /// engine has no fault to mirror).
  bool CheckBtrace = true;

  /// Audit the translation validator against the execution oracle after
  /// every profiled run: re-validate every trace the session built and
  /// flag any rejection, since on a run whose output matched the
  /// reference a rejection is a validator false positive
  /// (checkValidateAudit in ValidateAudit.h). Skipped under an injected
  /// cache fault, like the btrace audit.
  bool CheckValidate = true;

  /// Differential backend axis: re-run every grid point under
  /// --backend=jit (promotion threshold 0, so every dispatched trace is
  /// compiled) and demand the exact observable run back -- status, trap,
  /// instruction count, output, heap, the folded VmStats digest and,
  /// when the btrace audit is on, the byte-identical compressed stream.
  /// This is the interp/JIT equivalence contract of
  /// backend/TraceBackend.h, enforced program-by-program. Skipped on
  /// hosts without template-JIT support and under an injected fault.
  bool CheckBackends = true;

  /// Validation mode for the grid's TraceVM runs. On exercises the
  /// construction-time hook on every generated program; Strict turns any
  /// in-session rejection into an abort (CI smoke runs use this).
  ValidateMode Validate = ValidateMode::On;

  /// Injected trace-cache bug, for oracle self-tests (see TraceConfig.h).
  CacheFault Fault = CacheFault::None;
};

/// One disagreement or invariant violation. Engine identifies the run
/// ("threaded", "net", "tracevm[t=0.97 delay=1 decay=32]"); Rule is a
/// stable identifier shared with Invariants.h.
struct OracleFinding {
  std::string Engine;
  std::string Rule;
  std::string Detail;
};

struct OracleResult {
  /// True when every engine agreed and every invariant held.
  bool Ok = true;

  /// True when the reference run exhausted the instruction budget and
  /// the cross-checks were skipped (counts as Ok).
  bool Skipped = false;

  /// Reference (per-instruction interpreter) outcome.
  RunStatus RefStatus = RunStatus::Finished;
  TrapKind RefTrap = TrapKind::None;
  uint64_t RefInstructions = 0;
  std::vector<int64_t> RefOutput;

  std::vector<OracleFinding> Findings;
};

/// Order-sensitive digest of a heap's final state (cell classes, sizes
/// and slot contents). The allocation order of all engines sharing
/// Machine semantics is identical, so equal digests mean equal heaps.
/// Alias for jtc::heapDigest (runtime/Heap.h), kept for fuzz callers.
uint64_t heapDigest(const Heap &H);

/// Runs \p M through every configured engine and cross-checks. \p M must
/// be verifier-valid; an invalid module yields a single "verifier"
/// finding and no runs.
OracleResult runOracle(const Module &M, const OracleConfig &Config);

/// Renders findings one per line for diagnostics.
std::string formatFindings(const std::vector<OracleFinding> &Fs);

} // namespace fuzz
} // namespace jtc

#endif // JTC_FUZZ_ORACLE_H
