//===- fuzz/Oracle.cpp ----------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "baseline/NetTraceVm.h"
#include "bytecode/Verifier.h"
#include "fuzz/BtraceAudit.h"
#include "fuzz/Invariants.h"
#include "fuzz/Refinement.h"
#include "fuzz/ValidateAudit.h"
#include "interp/InstructionInterpreter.h"
#include "interp/PreparedModule.h"
#include "interp/ThreadedInterpreter.h"
#include "runtime/Machine.h"
#include "vm/TraceVM.h"

#include <algorithm>
#include <memory>
#include <sstream>

using namespace jtc;
using namespace jtc::fuzz;

std::vector<GridPoint> fuzz::defaultGrid() {
  return {
      {1.0, 1, 32},    // Degenerate threshold: only sure-thing traces.
      {0.97, 1, 32},   // Paper default threshold, eager profiler.
      {0.97, 64, 256}, // Paper default threshold, default pacing.
      {0.9, 1, 64},    // Permissive: speculative traces, early exits.
  };
}

uint64_t fuzz::heapDigest(const Heap &H) { return jtc::heapDigest(H); }

namespace {

const char *statusName(RunStatus S) {
  switch (S) {
  case RunStatus::Finished:
    return "finished";
  case RunStatus::Trapped:
    return "trapped";
  case RunStatus::BudgetExhausted:
    return "budget-exhausted";
  }
  return "?";
}

/// Collects comparisons against the fixed reference outcome.
class Comparer {
public:
  Comparer(OracleResult &Result, std::string Engine)
      : Result(Result), Engine(std::move(Engine)) {}

  void finding(const char *Rule, std::string Detail) {
    Result.Findings.push_back({Engine, Rule, std::move(Detail)});
  }

  void outcome(RunStatus Status, TrapKind Trap) {
    if (Status != Result.RefStatus)
      finding("status-mismatch",
              std::string("got ") + statusName(Status) + ", reference " +
                  statusName(Result.RefStatus));
    if (Trap != Result.RefTrap)
      finding("trap-mismatch", std::string("got ") + trapName(Trap) +
                                   ", reference " + trapName(Result.RefTrap));
  }

  void instructions(uint64_t N) {
    if (N != Result.RefInstructions) {
      std::ostringstream OS;
      OS << "executed " << N << ", reference " << Result.RefInstructions;
      finding("instruction-mismatch", OS.str());
    }
  }

  void output(const std::vector<int64_t> &Out) {
    if (Out == Result.RefOutput)
      return;
    std::ostringstream OS;
    OS << Out.size() << " values, reference " << Result.RefOutput.size();
    size_t N = std::min(Out.size(), Result.RefOutput.size());
    for (size_t I = 0; I < N; ++I)
      if (Out[I] != Result.RefOutput[I]) {
        OS << "; first divergence at [" << I << "]: " << Out[I] << " vs "
           << Result.RefOutput[I];
        break;
      }
    finding("output-mismatch", OS.str());
  }

  void heap(uint64_t Digest, uint64_t RefDigest) {
    if (Digest != RefDigest) {
      std::ostringstream OS;
      OS << "digest " << std::hex << Digest << ", reference " << RefDigest;
      finding("heap-mismatch", OS.str());
    }
  }

  void violations(std::vector<Violation> Vs) {
    for (Violation &V : Vs)
      Result.Findings.push_back(
          {Engine, std::move(V.Rule), std::move(V.Detail)});
  }

private:
  OracleResult &Result;
  std::string Engine;
};

} // namespace

OracleResult fuzz::runOracle(const Module &M, const OracleConfig &Config) {
  OracleResult Result;

  std::vector<VerifyError> Errors = verifyModule(M);
  if (!Errors.empty()) {
    Result.Findings.push_back(
        {"verifier", "invalid-module", formatErrors(Errors)});
    Result.Ok = false;
    return Result;
  }

  // Reference: the per-instruction interpreter.
  Machine Ref(M);
  RunResult RR = runInstructions(Ref, Config.MaxInstructions);
  Result.RefStatus = RR.Status;
  Result.RefTrap = Ref.trap();
  Result.RefInstructions = RR.Instructions;
  Result.RefOutput = Ref.output();
  uint64_t RefDigest = fuzz::heapDigest(Ref.heap());

  // A budget cut lands mid-run at an engine-specific point; nothing
  // meaningful can be compared.
  if (RR.Status == RunStatus::BudgetExhausted) {
    Result.Skipped = true;
    return Result;
  }

  // Dynamic-refines-static audit: a second reference-speed replay that
  // checks every executed block leader against the static analysis.
  // Output comparison cannot catch analysis soundness bugs (the analysis
  // is off the execution path), so this is its only oracle.
  if (Config.CheckRefinement) {
    Comparer C(Result, "static-analysis");
    C.violations(checkRefinement(M, Config.MaxInstructions));
  }

  PreparedModule PM(M);

  if (Config.IncludeThreaded) {
    Comparer C(Result, "threaded");
    ThreadedProgram TP(PM);
    ThreadedResult TR = TP.run(Config.MaxInstructions);
    C.outcome(TR.Status, TR.Trap);
    // The threaded engine checks its budget at block granularity, so a
    // trapped run's count can legitimately differ by the trap position
    // inside a block; compare counts only for clean completion.
    if (Result.RefStatus == RunStatus::Finished)
      C.instructions(TR.Instructions);
    C.output(TR.Output);
  }

  const std::vector<GridPoint> Grid =
      Config.Grid.empty() ? defaultGrid() : Config.Grid;
  for (const GridPoint &G : Grid) {
    std::ostringstream Name;
    Name << "tracevm[t=" << G.Threshold << " delay=" << G.Delay
         << " decay=" << G.Decay << "]";
    Comparer C(Result, Name.str());

    // The backend axis below re-runs this exact configuration on the
    // JIT tier, so the base run pins Interp explicitly (a JTC_BACKEND
    // override must not collapse the two sides onto one tier).
    VmOptions Base = VmOptions()
                         .completionThreshold(G.Threshold)
                         .startStateDelay(G.Delay)
                         .decayInterval(G.Decay)
                         .maxInstructions(Config.MaxInstructions)
                         .telemetry(Config.Telemetry)
                         .telemetryCapacity(Config.TelemetryCapacity)
                         .validate(Config.Validate)
                         .cacheFault(Config.Fault);
    TraceVM VM(PM,
               VmOptions(Base).backend(backend::BackendKind::Interp));
    // The btrace recorder shadows the run: ground-truth block sequence
    // plus an in-memory compressed stream, audited after the run.
    std::unique_ptr<BtraceRecorder> Rec;
    if (Config.CheckBtrace && Config.Fault == CacheFault::None) {
      Rec = std::make_unique<BtraceRecorder>(PM, VM);
      Rec->attach(VM);
    }
    RunResult R = VM.run();
    C.outcome(R.Status, VM.machine().trap());
    C.instructions(R.Instructions);
    C.output(VM.machine().output());
    C.heap(fuzz::heapDigest(VM.machine().heap()), RefDigest);
    if (Config.CheckInvariants)
      C.violations(checkTraceVm(VM, R.Status));
    if (Config.CheckPersist)
      C.violations(checkPersistRoundTrip(VM));
    if (Rec)
      C.violations(checkBtraceRoundTrip(PM, *Rec));
    if (Config.CheckValidate && Config.Fault == CacheFault::None)
      C.violations(checkValidateAudit(PM, VM));

    // Memory-elision equivalence: the same configuration with dynamic
    // check elision disabled must be observationally identical (elision
    // only skips checks the alias analysis proved redundant), and the
    // stats digest must not move either -- the elision counters are
    // digest-excluded by design, so --mem-elide is replay-neutral.
    if (Config.Fault == CacheFault::None) {
      std::ostringstream EName;
      EName << "tracevm-noelide[t=" << G.Threshold << " delay=" << G.Delay
            << " decay=" << G.Decay << "]";
      Comparer EC(Result, EName.str());
      TraceVM EVM(PM, VmOptions(Base)
                          .backend(backend::BackendKind::Interp)
                          .memElide(false));
      RunResult ER = EVM.run();
      EC.outcome(ER.Status, EVM.machine().trap());
      EC.instructions(ER.Instructions);
      EC.output(EVM.machine().output());
      EC.heap(fuzz::heapDigest(EVM.machine().heap()), RefDigest);
      if (VM.currentStats().digest() != EVM.currentStats().digest()) {
        std::ostringstream OS;
        OS << "elide-on digest " << std::hex << VM.currentStats().digest()
           << ", elide-off digest " << EVM.currentStats().digest();
        Result.Findings.push_back(
            {EName.str(), "mem-elide-digest-mismatch", OS.str()});
      }
    }

    // Backend equivalence: the same configuration on the JIT tier must
    // be observationally indistinguishable -- including the adaptive
    // bookkeeping (stats digest) and the emitted btrace stream, which
    // deliberately has no backend field.
    if (Config.CheckBackends && Config.Fault == CacheFault::None &&
        backend::jitSupportedHost()) {
      std::ostringstream JName;
      JName << "tracevm-jit[t=" << G.Threshold << " delay=" << G.Delay
            << " decay=" << G.Decay << "]";
      Comparer JC(Result, JName.str());
      TraceVM JitVM(PM, VmOptions(Base)
                            .backend(backend::BackendKind::Jit)
                            .jitPromoteAfter(0));
      std::unique_ptr<BtraceRecorder> JitRec;
      if (Rec) {
        JitRec = std::make_unique<BtraceRecorder>(PM, JitVM);
        JitRec->attach(JitVM);
      }
      RunResult JR = JitVM.run();
      JC.outcome(JR.Status, JitVM.machine().trap());
      JC.instructions(JR.Instructions);
      JC.output(JitVM.machine().output());
      JC.heap(fuzz::heapDigest(JitVM.machine().heap()), RefDigest);
      if (VM.currentStats().digest() != JitVM.currentStats().digest()) {
        std::ostringstream OS;
        OS << "interp digest " << std::hex << VM.currentStats().digest()
           << ", jit digest " << JitVM.currentStats().digest();
        Result.Findings.push_back(
            {JName.str(), "backend-digest-mismatch", OS.str()});
      }
      if (JitRec) {
        if (JitRec->blocks() != Rec->blocks()) {
          std::ostringstream OS;
          OS << "interp dispatched " << Rec->blocks().size()
             << " blocks, jit " << JitRec->blocks().size();
          Result.Findings.push_back(
              {JName.str(), "backend-block-mismatch", OS.str()});
        } else if (JitRec->stream() != Rec->stream()) {
          std::ostringstream OS;
          OS << "identical block sequence encoded to different streams ("
             << Rec->stream().size() << " vs " << JitRec->stream().size()
             << " bytes)";
          Result.Findings.push_back(
              {JName.str(), "backend-stream-mismatch", OS.str()});
        }
      }
      if (Config.CheckInvariants)
        JC.violations(checkTraceVm(JitVM, JR.Status));
    }
  }

  if (Config.IncludeNet) {
    Comparer C(Result, "net");
    NetConfig NC;
    NC.MaxInstructions = Config.MaxInstructions;
    NetTraceVm VM(PM, NC);
    RunResult R = VM.run();
    C.outcome(R.Status, VM.machine().trap());
    C.instructions(R.Instructions);
    C.output(VM.machine().output());
    C.heap(fuzz::heapDigest(VM.machine().heap()), RefDigest);
    if (Config.CheckInvariants)
      C.violations(checkNetVm(VM));
  }

  Result.Ok = Result.Findings.empty();
  return Result;
}

std::string fuzz::formatFindings(const std::vector<OracleFinding> &Fs) {
  std::ostringstream OS;
  for (const OracleFinding &F : Fs)
    OS << F.Engine << ": " << F.Rule << ": " << F.Detail << "\n";
  return OS.str();
}
