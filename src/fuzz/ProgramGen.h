//===- fuzz/ProgramGen.h - Coverage-directed program generation -*- C++ -*-===//
///
/// \file
/// The random bytecode program generator behind the differential fuzzing
/// subsystem. Programs are *verified by construction*: every generated
/// module passes the static verifier, and (unless traps are enabled)
/// every run terminates -- loop bounds are constants, a reserved counter
/// local is never overwritten, the call graph is acyclic (methods only
/// call higher-id methods) and virtual methods are leaves.
///
/// Generation is coverage-directed: every emitted statement kind is
/// tallied in a FeatureCoverage histogram and the next kind is drawn with
/// weight inversely proportional to how often it has been emitted, so a
/// long fuzzing campaign spreads its programs across loops, switches,
/// virtual calls, field traffic, arrays and (optionally) trapping
/// operations instead of collapsing onto the cheapest kinds.
///
/// This class grew out of the test-only RandomProgramBuilder in
/// tests/TestPrograms.h and replaces it; the test header re-exports it.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FUZZ_PROGRAMGEN_H
#define JTC_FUZZ_PROGRAMGEN_H

#include "bytecode/Assembler.h"
#include "support/Prng.h"

#include <array>
#include <cstdint>
#include <vector>

namespace jtc {
namespace fuzz {

/// The statement vocabulary of the generator. TrapOp is the only kind
/// that can end a run abnormally; all others are total.
enum class StmtKind : uint8_t {
  Arith,       ///< Binary arithmetic into a local.
  Print,       ///< Iprint of an expression (observable output).
  Shuffle,     ///< Dup/Swap/Pop stack traffic.
  If,          ///< Two-armed conditional.
  Call,        ///< Static call to a higher-id method (acyclic).
  Loop,        ///< Constant-bound loop over the reserved counter local.
  Switch,      ///< Tableswitch over a masked selector.
  VirtualCall, ///< Invokevirtual through the shared slot.
  FieldOp,     ///< GetField/PutField on the reserved object local.
  ArrayOp,     ///< In-bounds Iaload/Iastore on the reserved array local.
  TrapOp,      ///< Possibly-trapping operation (div/rem, wild index, null).
};

inline constexpr unsigned NumStmtKinds =
    static_cast<unsigned>(StmtKind::TrapOp) + 1;

/// Stable machine-readable name ("arith", "virtual-call", ...).
const char *stmtKindName(StmtKind K);

/// Which statement kinds the generator may emit. Traps default off so
/// that transparency sweeps exercise Finished runs; the fuzzer turns them
/// on to cover trap paths.
struct GenFeatures {
  bool Loops = true;
  bool Calls = true;
  bool Switches = true;
  bool VirtualCalls = true;
  bool Fields = true;
  bool Arrays = true;
  bool Traps = false;
};

/// Size and shape knobs.
struct GenConfig {
  GenFeatures Features;
  unsigned MinMethods = 2;
  unsigned MaxMethods = 5;
  unsigned MinStatements = 2;
  unsigned MaxStatements = 6;
  /// Upper bound (inclusive) for constant loop trip counts; at least 2.
  /// Large enough that hot loops form traces in aggressive VM configs.
  int32_t MaxLoopBound = 64;
};

/// Histogram of emitted statement kinds. Shared across iterations by the
/// fuzzer so coverage direction acts campaign-wide, not per program.
struct FeatureCoverage {
  std::array<uint64_t, NumStmtKinds> Counts{};

  uint64_t total() const {
    uint64_t T = 0;
    for (uint64_t C : Counts)
      T += C;
    return T;
  }
  uint64_t count(StmtKind K) const {
    return Counts[static_cast<unsigned>(K)];
  }
  void merge(const FeatureCoverage &O) {
    for (unsigned I = 0; I < NumStmtKinds; ++I)
      Counts[I] += O.Counts[I];
  }
};

/// Constrained random program generator (see the file comment for the
/// construction guarantees). Deterministic: the same seed, config and
/// starting coverage always produce the same module.
class RandomProgramBuilder {
public:
  explicit RandomProgramBuilder(uint64_t Seed) : Rng(Seed) {}

  /// \p Coverage, when non-null, both biases kind selection and
  /// accumulates this program's emissions (campaign-wide direction).
  RandomProgramBuilder(uint64_t Seed, const GenConfig &Config,
                       FeatureCoverage *Coverage = nullptr)
      : Rng(Seed), Config(Config), Shared(Coverage) {}

  /// Builds one module. Single-shot per builder.
  Module build();

  /// Statement kinds emitted by the last build().
  const FeatureCoverage &coverage() const { return Local; }

private:
  static constexpr uint32_t NoLocal = 0xffffffffu;

  void emitExpr(MethodBuilder &B, unsigned Self);
  uint32_t storeTarget(unsigned Self);
  StmtKind chooseKind(const std::vector<StmtKind> &Eligible);
  void emitStatement(MethodBuilder &B, const std::vector<uint32_t> &Methods,
                     unsigned Self, unsigned Depth, bool InLoop);

  Prng Rng;
  GenConfig Config;
  FeatureCoverage *Shared = nullptr;
  FeatureCoverage Local;

  // Per-method layout, filled during declaration.
  std::vector<uint32_t> Args;
  std::vector<uint32_t> Locals;
  std::vector<uint32_t> ObjLocal;    ///< Reserved object local or NoLocal.
  std::vector<uint32_t> ArrLocal;    ///< Reserved array local or NoLocal.
  std::vector<int32_t> ArrLen;       ///< Constant array length per method.

  // Shared virtual-dispatch scaffolding (when VirtualCalls or Fields on).
  bool HaveClasses = false;
  uint32_t Slot = 0;
  uint32_t ClassA = 0;
  uint32_t ClassB = 0;
};

} // namespace fuzz
} // namespace jtc

#endif // JTC_FUZZ_PROGRAMGEN_H
