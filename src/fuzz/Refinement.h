//===- fuzz/Refinement.h - Dynamic-refines-static audit ---------*- C++ -*-===//
///
/// \file
/// The bridge between the fuzzer and the static analysis framework: a
/// sound may-analysis promises that every dynamically observable fact is
/// inside its static may-sets. This audit replays a module under the
/// reference interpreter and checks that promise at every block leader:
///
///  - every executed block is statically reachable (including blocks the
///    constant-propagation edge pruning claims are dead);
///  - every local refines its abstract value: static Int[Lo,Hi] contains
///    the dynamic value (constants compare equal), a static non-null Ref
///    is dynamically a live heap handle whose class is in the may-set,
///    and a reachable point never carries a static Bot.
///
/// A violation here is an analysis soundness bug (or an interpreter
/// divergence from the transfer function) -- exactly the class of defect
/// differential output comparison cannot see, because the analysis is
/// not on any execution path.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_FUZZ_REFINEMENT_H
#define JTC_FUZZ_REFINEMENT_H

#include "fuzz/Invariants.h"

#include <cstdint>

namespace jtc {

struct Module;

namespace analysis {
class ModuleAnalysis;
} // namespace analysis

namespace fuzz {

/// Runs \p M (which must be verifier-valid) under the reference
/// interpreter for at most \p MaxInstructions and audits every block
/// leader against a freshly computed analysis::ModuleAnalysis. Reports
/// at most a handful of violations (the first one is the interesting
/// one; the rest are usually its cascade).
std::vector<Violation> checkRefinement(const Module &M,
                                       uint64_t MaxInstructions);

/// Same audit against caller-supplied facts. Exposed so tests can prove
/// the audit *fires*: facts computed over a structurally identical but
/// semantically different module stand in for an unsound analysis.
std::vector<Violation> checkRefinement(const Module &M,
                                       const analysis::ModuleAnalysis &Facts,
                                       uint64_t MaxInstructions);

} // namespace fuzz
} // namespace jtc

#endif // JTC_FUZZ_REFINEMENT_H
