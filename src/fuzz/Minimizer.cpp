//===- fuzz/Minimizer.cpp -------------------------------------------------===//

#include "fuzz/Minimizer.h"

#include "bytecode/Verifier.h"

#include <utility>

using namespace jtc;
using namespace jtc::fuzz;

uint64_t fuzz::moduleSize(const Module &M) {
  uint64_t N = 0;
  for (const Method &Mt : M.Methods)
    N += Mt.Code.size();
  return N;
}

namespace {

/// Shared reduction state: the current (smallest known failing) module
/// and the gate every candidate must pass.
class Reducer {
public:
  Module Cur;
  const std::function<bool(const Module &)> &StillFails;
  MinimizerStats Stats;

  Reducer(Module M, const std::function<bool(const Module &)> &StillFails)
      : Cur(std::move(M)), StillFails(StillFails) {}

  /// Adopts \p Cand when it is valid and still fails.
  bool tryAdopt(Module &&Cand) {
    if (!isValid(Cand))
      return false;
    ++Stats.CandidatesTried;
    if (!StillFails(Cand))
      return false;
    ++Stats.CandidatesAccepted;
    Cur = std::move(Cand);
    return true;
  }
};

/// Replaces \p M's body with the shortest verifier-valid stub.
void stubBody(Method &M, bool IsEntry) {
  M.Code.clear();
  M.SwitchTables.clear();
  if (IsEntry) {
    M.Code.emplace_back(Opcode::Halt);
  } else if (M.ReturnsValue) {
    M.Code.emplace_back(Opcode::Iconst, 0);
    M.Code.emplace_back(Opcode::Ireturn);
  } else {
    M.Code.emplace_back(Opcode::Return);
  }
}

bool stubMethods(Reducer &R) {
  bool Any = false;
  for (unsigned Id = 0; Id < R.Cur.Methods.size(); ++Id) {
    if (R.Cur.Methods[Id].Code.size() <= 2)
      continue;
    Module Cand = R.Cur;
    stubBody(Cand.Methods[Id], Id == Cand.EntryMethod);
    Any |= R.tryAdopt(std::move(Cand));
  }
  return Any;
}

/// Deletes instructions [\p Lo, \p Hi) of \p M and remaps every branch,
/// jump and switch target across the cut: targets past the cut shift
/// down, targets inside it collapse onto the cut point.
void deleteRange(Method &M, uint32_t Lo, uint32_t Hi) {
  M.Code.erase(M.Code.begin() + Lo, M.Code.begin() + Hi);
  uint32_t Cut = Hi - Lo;
  auto Remap = [Lo, Hi, Cut](uint32_t T) {
    return T < Lo ? T : (T >= Hi ? T - Cut : Lo);
  };
  for (Instruction &I : M.Code) {
    OpKind K = opKind(I.Op);
    if (K == OpKind::Branch || K == OpKind::Jump)
      I.A = static_cast<int32_t>(Remap(static_cast<uint32_t>(I.A)));
  }
  for (SwitchTable &T : M.SwitchTables) {
    for (uint32_t &Tgt : T.Targets)
      Tgt = Remap(Tgt);
    T.DefaultTarget = Remap(T.DefaultTarget);
  }
}

/// ddmin over one method's code: contiguous chunks, halving granularity.
bool shrinkMethod(Reducer &R, unsigned Id) {
  bool Any = false;
  for (size_t Chunk = R.Cur.Methods[Id].Code.size() / 2; Chunk >= 1;) {
    bool Progress = false;
    size_t Lo = 0;
    while (Lo + Chunk <= R.Cur.Methods[Id].Code.size()) {
      Module Cand = R.Cur;
      deleteRange(Cand.Methods[Id], static_cast<uint32_t>(Lo),
                  static_cast<uint32_t>(Lo + Chunk));
      if (R.tryAdopt(std::move(Cand)))
        Progress = Any = true; // Same Lo now addresses the next chunk.
      else
        Lo += Chunk;
    }
    if (!Progress)
      Chunk /= 2;
  }
  return Any;
}

/// Zeroes immediate payloads (Iconst values, Iinc deltas), one method at
/// a time: failures that do not depend on data values lose their noise.
bool zeroConstants(Reducer &R) {
  bool Any = false;
  for (unsigned Id = 0; Id < R.Cur.Methods.size(); ++Id) {
    Module Cand = R.Cur;
    bool Changed = false;
    for (Instruction &I : Cand.Methods[Id].Code) {
      if (I.Op == Opcode::Iconst && I.A != 0) {
        I.A = 0;
        Changed = true;
      } else if (I.Op == Opcode::Iinc && I.B != 0) {
        I.B = 0;
        Changed = true;
      }
    }
    if (Changed)
      Any |= R.tryAdopt(std::move(Cand));
  }
  return Any;
}

} // namespace

Module fuzz::minimizeModule(
    const Module &M, const std::function<bool(const Module &)> &StillFails,
    unsigned MaxRounds, MinimizerStats *Stats) {
  Reducer R(M, StillFails);
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    ++R.Stats.Rounds;
    bool Any = stubMethods(R);
    for (unsigned Id = 0; Id < R.Cur.Methods.size(); ++Id)
      Any |= shrinkMethod(R, Id);
    Any |= zeroConstants(R);
    if (!Any)
      break;
  }
  if (Stats)
    *Stats = R.Stats;
  return std::move(R.Cur);
}
