//===- fuzz/BtraceAudit.cpp -----------------------------------------------===//

#include "fuzz/BtraceAudit.h"

#include "btrace/BtraceDecoder.h"
#include "btrace/BtraceReplay.h"
#include "vm/ModuleFingerprint.h"

#include <sstream>

using namespace jtc;
using namespace jtc::fuzz;
using namespace jtc::btrace;

BtraceRecorder::BtraceRecorder(const PreparedModule &PM, const TraceVM &VM,
                               uint32_t SyncInterval) {
  BtraceHeader H = BtraceHeader::fromOptions(VM.options());
  H.Fingerprint = moduleFingerprint(PM);
  H.SyncInterval = SyncInterval;
  H.Spec = "fuzz";
  ST = std::make_unique<SuccessorTable>(PM);
  Enc = std::make_unique<BtraceEncoder>(
      PM, *ST, std::move(H), [this](const uint8_t *Data, size_t Size) {
        Stream.insert(Stream.end(), Data, Data + Size);
        return true;
      });
}

BtraceRecorder::~BtraceRecorder() = default;

void BtraceRecorder::onRunStart(BlockId Entry) {
  Blocks.push_back(Entry);
  Enc->onRunStart(Entry);
}

void BtraceRecorder::onTransition(BlockId From, BlockId To) {
  Blocks.push_back(To);
  Enc->onTransition(From, To);
}

void BtraceRecorder::onRunEnd(const RunResult &R, const VmStats &Final) {
  Enc->onRunEnd(R, Final);
}

std::vector<Violation>
fuzz::checkBtraceRoundTrip(const PreparedModule &PM,
                           const BtraceRecorder &Rec) {
  std::vector<Violation> Out;
  auto Fail = [&Out](const char *Rule, std::string Detail) {
    Out.push_back({Rule, std::move(Detail)});
  };

  if (!Rec.stream().size()) {
    Fail("btrace-encode", "encoder produced an empty stream");
    return Out;
  }

  // Strict decode must reproduce the ground-truth sequence exactly.
  std::vector<BlockId> Decoded;
  Decoded.reserve(Rec.blocks().size());
  BtraceHeader H;
  BtraceEnd E;
  persist::PersistError Err;
  if (!decodeBtrace(Rec.stream().data(), Rec.stream().size(), PM,
                    Rec.successors(), H, E,
                    [&Decoded](BlockId B) { Decoded.push_back(B); }, Err)) {
    Fail("btrace-decode", Err.message());
    return Out;
  }
  if (Decoded.size() != Rec.blocks().size()) {
    std::ostringstream OS;
    OS << "decoded " << Decoded.size() << " blocks, VM dispatched "
       << Rec.blocks().size();
    Fail("btrace-count-mismatch", OS.str());
  } else if (Decoded != Rec.blocks()) {
    for (size_t I = 0; I < Decoded.size(); ++I)
      if (Decoded[I] != Rec.blocks()[I]) {
        std::ostringstream OS;
        OS << "first divergence at [" << I << "]: decoded " << Decoded[I]
           << ", VM dispatched " << Rec.blocks()[I];
        Fail("btrace-block-mismatch", OS.str());
        break;
      }
  }

  // Replay must rebuild the adaptive state bit-identically.
  ReplayResult RR;
  if (!replayBtrace(Rec.stream().data(), Rec.stream().size(), PM, RR, Err)) {
    Fail("btrace-decode", "replay: " + Err.message());
    return Out;
  }
  if (!RR.DigestMatch) {
    std::ostringstream OS;
    OS << "replayed stats digest " << std::hex << RR.ReplayDigest
       << ", encoder recorded " << RR.End.StatsDigest;
    Fail("btrace-digest-mismatch", OS.str());
  }

  // Loss-tolerant recovery over the *undamaged* stream must land on a
  // suffix of the ground truth ending at the last block.
  TailRecovery T = recoverTail(Rec.stream().data(), Rec.stream().size(), PM,
                               Rec.successors());
  if (T.Found) {
    bool Ok = T.SawEnd && T.Blocks.size() <= Rec.blocks().size() &&
              T.From.BlocksExecuted >= 1 &&
              T.From.BlocksExecuted - 1 + T.Blocks.size() ==
                  Rec.blocks().size();
    if (Ok)
      for (size_t I = 0; I < T.Blocks.size(); ++I)
        if (T.Blocks[I] !=
            Rec.blocks()[Rec.blocks().size() - T.Blocks.size() + I]) {
          Ok = false;
          break;
        }
    if (!Ok) {
      std::ostringstream OS;
      OS << "recovered " << T.Blocks.size() << " blocks from sync at "
         << T.From.BlocksExecuted << " (sawEnd=" << T.SawEnd
         << "), not a suffix of the " << Rec.blocks().size()
         << " dispatched";
      Fail("btrace-recover-mismatch", OS.str());
    }
  }

  return Out;
}
