//===- fuzz/Invariants.cpp ------------------------------------------------===//

#include "fuzz/Invariants.h"

#include "baseline/NetTraceVm.h"
#include "persist/Snapshot.h"
#include "profile/BranchCorrelationGraph.h"
#include "support/SaturatingCounter.h"
#include "vm/TraceVM.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

using namespace jtc;
using namespace jtc::fuzz;

namespace {

class Auditor {
public:
  std::vector<Violation> Violations;

  template <typename... Args>
  void fail(const char *Rule, Args &&...Parts) {
    std::ostringstream OS;
    (OS << ... << Parts);
    Violations.push_back({Rule, OS.str()});
  }

  /// Checks \p Cond; on failure records Rule with the rendered detail.
  template <typename... Args>
  void check(bool Cond, const char *Rule, Args &&...Parts) {
    if (!Cond)
      fail(Rule, std::forward<Args>(Parts)...);
  }
};

} // namespace

std::vector<Violation> fuzz::checkGraph(const BranchCorrelationGraph &G) {
  Auditor A;
  for (NodeId Id = 0; Id < G.numNodes(); ++Id) {
    const BranchNode &N = G.node(Id);

    // The decayed node weight can never exceed the undiminished execution
    // count: decay only shrinks it.
    A.check(N.totalWeight() <= N.executions(), "bcg-weight-bound", "node ",
            Id, ": weight ", N.totalWeight(), " > execs ", N.executions());

    // Counter law: the maintained weight equals the counter sum, except
    // when a 16-bit counter may have saturated (then the sum lags).
    uint64_t CountSum = 0;
    std::unordered_set<BlockId> Succs;
    for (const Correlation &C : N.correlations()) {
      CountSum += C.Count.value();
      A.check(Succs.insert(C.Succ).second, "bcg-duplicate-succ", "node ", Id,
              ": successor ", C.Succ, " recorded twice");

      double P = N.probabilityOf(C.Succ);
      A.check(P >= 0.0 && P <= 1.0 + 1e-12, "bcg-probability-range", "node ",
              Id, " succ ", C.Succ, ": p=", P);

      // Structural law: the cached target context of E_XYZ is N_YZ.
      if (C.Target != InvalidNodeId) {
        A.check(C.Target < G.numNodes(), "bcg-target-range", "node ", Id,
                ": target ", C.Target, " out of range");
        if (C.Target < G.numNodes()) {
          const BranchNode &T = G.node(C.Target);
          A.check(T.from() == N.to() && T.to() == C.Succ, "bcg-target-pair",
                  "node ", Id, " (", N.from(), "->", N.to(), ") succ ",
                  C.Succ, ": target node is (", T.from(), "->", T.to(), ")");
          const std::vector<NodeId> &Preds = T.predecessors();
          A.check(std::find(Preds.begin(), Preds.end(), Id) != Preds.end(),
                  "bcg-pred-backlink", "node ", Id, " targets ", C.Target,
                  " but is not in its predecessor list");
        }
      }
    }
    if (N.totalWeight() < SaturatingCounter::Max)
      A.check(CountSum == N.totalWeight(), "bcg-count-sum", "node ", Id,
              ": counts sum to ", CountSum, ", weight is ", N.totalWeight());
    else
      A.check(CountSum <= N.totalWeight(), "bcg-count-sum", "node ", Id,
              ": counts sum to ", CountSum, " above weight ",
              N.totalWeight());

    // Every recorded predecessor must hold an edge into this node.
    for (NodeId P : N.predecessors()) {
      A.check(P < G.numNodes(), "bcg-pred-range", "node ", Id, ": pred ", P,
              " out of range");
      if (P >= G.numNodes())
        continue;
      bool Found = false;
      for (const Correlation &C : G.node(P).correlations())
        if (C.Target == Id)
          Found = true;
      A.check(Found, "bcg-pred-edge", "node ", Id, ": pred ", P,
              " has no correlation targeting it");
    }
  }
  return std::move(A.Violations);
}

std::vector<Violation> fuzz::checkTraceVm(const TraceVM &VM,
                                          RunStatus Status) {
  Auditor A;
  const VmStats &S = VM.stats();
  const VmOptions &C = VM.options();
  const TraceCache &Cache = VM.traceCache();
  const TraceConfig TC = C.traceConfig();

  // Dispatch-model identities: every executed block is attributed to
  // exactly one single-block dispatch or to the trace it ran inside.
  A.check(S.BlocksExecuted == S.BlockDispatches + S.BlocksInTraces,
          "blocks-identity", "executed ", S.BlocksExecuted, " != ",
          S.BlockDispatches, " dispatched + ", S.BlocksInTraces,
          " in traces");
  A.check(S.TracesCompleted <= S.TraceDispatches, "completion-bound",
          "completed ", S.TracesCompleted, " > dispatched ",
          S.TraceDispatches);
  A.check(S.BlocksInCompletedTraces <= S.BlocksInTraces, "completed-blocks",
          S.BlocksInCompletedTraces, " > ", S.BlocksInTraces);
  A.check(S.InstructionsInCompletedTraces <= S.InstructionsInTraces,
          "completed-instructions", S.InstructionsInCompletedTraces, " > ",
          S.InstructionsInTraces);
  // A trap can cut a block short after its size was attributed, so the
  // instruction attribution bound only holds for cleanly finished runs.
  if (Status == RunStatus::Finished)
    A.check(S.InstructionsInTraces <= S.Instructions, "trace-instructions",
            S.InstructionsInTraces, " attributed, only ", S.Instructions,
            " executed");

  // Hook law: outside traces every dispatch is preceded by one hook, and
  // each early exit suppresses exactly one hook -- except a final early
  // exit at the very end of the run, whose suppression never happens.
  if (C.profiling()) {
    uint64_t Floor = S.BlockDispatches + S.TracesCompleted;
    A.check(S.Hooks >= Floor && S.Hooks <= Floor + 1, "hook-law", "hooks ",
            S.Hooks, " outside [", Floor, ", ", Floor + 1, "]");
  }

  // Per-trace laws and the aggregate dispatch reconciliation.
  uint64_t Entered = 0, Completed = 0;
  for (const Trace &T : Cache.traces()) {
    Entered += T.Entered;
    Completed += T.Completed;
    A.check(T.Blocks.size() >= TC.MinTraceBlocks, "trace-min-blocks",
            "trace ", T.Id, ": ", T.Blocks.size(), " blocks");
    A.check(T.Completed <= T.Entered, "trace-completion-bound", "trace ",
            T.Id, ": completed ", T.Completed, " > entered ", T.Entered);
    A.check(T.ExpectedCompletion >= TC.CompletionThreshold - 1e-9 &&
                T.ExpectedCompletion <= 1.0 + 1e-9,
            "trace-threshold", "trace ", T.Id, ": expected completion ",
            T.ExpectedCompletion, " vs threshold ", TC.CompletionThreshold);
    uint32_t Size = 0;
    for (BlockId B : T.Blocks)
      Size += VM.prepared().blockSize(B);
    A.check(Size == T.InstrCount, "trace-size", "trace ", T.Id,
            ": recorded ", T.InstrCount, " instructions, blocks sum to ",
            Size);

    // The entry map must never hand out a dead trace, and must map every
    // live trace at its own entry pair. This is exactly the bookkeeping a
    // partial invalidation (mark dead, forget the key) breaks.
    const Trace *Found = Cache.findTrace(T.EntryFrom, T.Blocks[0]);
    if (Found)
      A.check(Found->Alive, "entry-map-live", "entry (", T.EntryFrom, "->",
              T.Blocks[0], ") resolves to dead trace ", Found->Id);
    if (T.Alive)
      A.check(Found == &T, "live-trace-mapped", "live trace ", T.Id,
              " is not reachable through its entry pair (", T.EntryFrom,
              "->", T.Blocks[0], ")");
  }
  A.check(Entered == S.TraceDispatches, "dispatch-reconcile",
          "trace Entered sums to ", Entered, ", VM dispatched ",
          S.TraceDispatches);
  A.check(Completed == S.TracesCompleted, "completion-reconcile",
          "trace Completed sums to ", Completed, ", VM completed ",
          S.TracesCompleted);

  // Telemetry reconciliation and the retirement law both need the full
  // event stream; skip them when the ring is off or overflowed.
  bool HaveEvents = TelemetryCompiledIn && C.telemetry() &&
                    VM.events().dropped() == 0;
  if (HaveEvents) {
    uint64_t Counts[NumEventKinds] = {};
    // Traces whose lifecycle included a kill/revive transition carry
    // observed-completion history across it, so the retirement law is
    // only asserted for traces that were never killed.
    std::unordered_set<TraceId> Killed;
    VM.events().forEach([&](const Event &E) {
      ++Counts[static_cast<unsigned>(E.Kind)];
      if (E.Kind == EventKind::TraceRetired ||
          E.Kind == EventKind::TraceInvalidated ||
          E.Kind == EventKind::TraceReplaced)
        Killed.insert(E.Id);
    });
    auto Of = [&Counts](EventKind K) {
      return Counts[static_cast<unsigned>(K)];
    };
    auto Reconcile = [&A](const char *What, uint64_t Events,
                          uint64_t Counter) {
      A.check(Events == Counter, "telemetry-reconcile", What, ": ", Events,
              " events vs counter ", Counter);
    };
    Reconcile("dispatched", Of(EventKind::TraceDispatched),
              S.TraceDispatches);
    Reconcile("completed", Of(EventKind::TraceCompleted), S.TracesCompleted);
    Reconcile("early-exit", Of(EventKind::TraceEarlyExit),
              S.TraceDispatches - S.TracesCompleted);
    Reconcile("constructed", Of(EventKind::TraceConstructed),
              S.TracesConstructed);
    Reconcile("reused", Of(EventKind::TraceReused), S.TracesReused);
    Reconcile("replaced", Of(EventKind::TraceReplaced), S.TracesReplaced);
    Reconcile("retired", Of(EventKind::TraceRetired), S.TracesRetired);
    Reconcile("invalidated", Of(EventKind::TraceInvalidated),
              Cache.stats().TracesInvalidated);
    Reconcile("signals", Of(EventKind::ProfilerSignal), S.Signals);
    Reconcile("decay-passes", Of(EventKind::DecayPass), S.DecayPasses);
    // Validation events: every validated trace emitted exactly one
    // accepted-or-rejected event (hash-cons reuse keeps the original
    // verdict and emits neither).
    if (C.validate() != ValidateMode::Off) {
      Reconcile("validated", Of(EventKind::TraceValidated),
                S.TracesValidated - S.TraceValidationRejects);
      Reconcile("validation-rejected", Of(EventKind::TraceValidationRejected),
                S.TraceValidationRejects);
    }

    // Retirement law: a live trace has passed every retirement checkpoint
    // it crossed, so at its most recent checkpoint E0 its observed
    // completion was within the margin of the threshold. Completed only
    // grows afterwards, making the bound checkable post-hoc.
    double Need = TC.CompletionThreshold - TC.RetirementMargin;
    for (const Trace &T : Cache.traces()) {
      if (!T.Alive || Killed.count(T.Id) ||
          T.Entered < TC.RetirementCheckEntries)
        continue;
      uint64_t E0 = T.Entered - T.Entered % TC.RetirementCheckEntries;
      A.check(static_cast<double>(T.Completed) + 1e-6 >=
                  Need * static_cast<double>(E0),
              "retirement-law", "trace ", T.Id, ": completed ", T.Completed,
              " of ", T.Entered, " entries survives checkpoint ", E0,
              " below threshold ", Need);
    }
  }

  if (C.profiling())
    for (Violation &V : checkGraph(VM.graph()))
      A.Violations.push_back(std::move(V));
  return std::move(A.Violations);
}

std::vector<Violation> fuzz::checkNetVm(const NetTraceVm &VM) {
  Auditor A;
  const VmStats &S = VM.stats();
  A.check(S.BlocksExecuted == S.BlockDispatches + S.BlocksInTraces,
          "net-blocks-identity", "executed ", S.BlocksExecuted, " != ",
          S.BlockDispatches, " dispatched + ", S.BlocksInTraces,
          " in traces");
  A.check(S.TracesCompleted <= S.TraceDispatches, "net-completion-bound",
          "completed ", S.TracesCompleted, " > dispatched ",
          S.TraceDispatches);
  uint64_t Entered = 0, Completed = 0;
  for (const NetTrace &T : VM.traces()) {
    Entered += T.Entered;
    Completed += T.Completed;
    A.check(T.Blocks.size() >= 2, "net-trace-min-blocks", "trace at head ",
            T.Head, ": ", T.Blocks.size(), " blocks");
    A.check(!T.Blocks.empty() && T.Blocks[0] == T.Head, "net-trace-head",
            "trace head ", T.Head, " is not its first block");
    A.check(T.Completed <= T.Entered, "net-trace-completion", "trace at ",
            T.Head, ": completed ", T.Completed, " > entered ", T.Entered);
  }
  A.check(Entered == S.TraceDispatches, "net-dispatch-reconcile",
          "trace Entered sums to ", Entered, ", VM dispatched ",
          S.TraceDispatches);
  A.check(Completed == S.TracesCompleted, "net-completion-reconcile",
          "trace Completed sums to ", Completed, ", VM completed ",
          S.TracesCompleted);
  A.check(VM.numLiveTraces() <= VM.traces().size(), "net-live-bound",
          VM.numLiveTraces(), " live of ", VM.traces().size());
  return std::move(A.Violations);
}

std::vector<Violation> fuzz::checkPersistRoundTrip(const TraceVM &VM) {
  // Nothing to persist when the adaptive machinery is off; captureSnapshot
  // would just hand back an empty seed.
  if (!VM.options().profiling())
    return {};

  Auditor A;

  persist::SnapshotData Donor = persist::captureSnapshot(VM);
  uint64_t DonorDigest = persist::seedDigest(Donor.Seed);

  std::vector<uint8_t> Bytes = persist::encodeSnapshot(Donor);
  persist::SnapshotData Decoded;
  persist::PersistError Err;
  if (!persist::decodeSnapshot(Bytes.data(), Bytes.size(), Decoded, Err)) {
    A.fail("persist-decode", "own encoding refused: ", Err.message());
    return std::move(A.Violations);
  }

  A.check(Decoded.Fingerprint == Donor.Fingerprint, "persist-fingerprint",
          "fingerprint changed across encode/decode: ", Donor.Fingerprint,
          " -> ", Decoded.Fingerprint);
  A.check(Decoded.DonorBlocks == Donor.DonorBlocks, "persist-donor-blocks",
          "donor maturity changed across encode/decode: ", Donor.DonorBlocks,
          " -> ", Decoded.DonorBlocks);
  if (!persist::validateSeed(Decoded.Seed, VM.prepared(), Err))
    A.fail("persist-revalidate", "decoded seed refused by validateSeed: ",
           Err.message());

  uint64_t DecodedDigest = persist::seedDigest(Decoded.Seed);
  A.check(DecodedDigest == DonorDigest, "persist-digest",
          "decoded seed digest ", DecodedDigest, " != donor digest ",
          DonorDigest);
  if (!A.Violations.empty())
    return std::move(A.Violations);

  // Reinstall into a fresh session over the same module and re-export: the
  // restored BCG + trace-cache state must digest-match the donor exactly.
  // Profile paths are cleared so the audit never touches the filesystem;
  // telemetry is off because this session never runs (and its ring would
  // dominate the audit's cost).
  VmOptions FreshOpts = VM.options();
  FreshOpts.loadProfilePath("").saveProfilePath("").telemetry(false);
  TraceVM Fresh(VM.prepared(), FreshOpts);
  Fresh.importSeed(Decoded.Seed);
  uint64_t Reinstalled = persist::seedDigest(Fresh.exportSeed());
  A.check(Reinstalled == DonorDigest, "persist-reinstall-digest",
          "seed re-exported after importSeed digests to ", Reinstalled,
          ", donor was ", DonorDigest);
  return std::move(A.Violations);
}

std::string fuzz::formatViolations(const std::vector<Violation> &Vs) {
  std::ostringstream OS;
  for (const Violation &V : Vs)
    OS << V.Rule << ": " << V.Detail << "\n";
  return OS.str();
}
