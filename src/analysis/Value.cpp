//===- analysis/Value.cpp - Abstract value rendering ----------------------===//

#include "analysis/Value.h"

#include <sstream>

namespace jtc {
namespace analysis {

std::string AbstractValue::str() const {
  switch (K) {
  case Kind::Bot:
    return "bot";
  case Kind::Top:
    return "top";
  case Kind::Conflict:
    return "conflict";
  case Kind::Int: {
    std::ostringstream OS;
    if (Lo == Hi) {
      OS << "int " << Lo;
    } else if (Lo == MinInt && Hi == MaxInt) {
      OS << "int";
    } else {
      OS << "int[";
      if (Lo == MinInt)
        OS << "min";
      else
        OS << Lo;
      OS << ",";
      if (Hi == MaxInt)
        OS << "max";
      else
        OS << Hi;
      OS << "]";
    }
    return OS.str();
  }
  case Kind::Ref: {
    std::ostringstream OS;
    OS << "ref{";
    if (Classes.any()) {
      OS << "*";
    } else {
      bool First = true;
      Classes.forEach([&](uint32_t C) {
        if (!First)
          OS << ",";
        OS << C;
        First = false;
      });
    }
    OS << "}";
    if (MayBeArray)
      OS << "[]";
    if (MayBeNull)
      OS << "?";
    return OS.str();
  }
  }
  return "?";
}

} // namespace analysis
} // namespace jtc
