//===- analysis/Alias.cpp - Field-sensitive alias & escape facts ----------===//

#include "analysis/Alias.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace jtc {
namespace analysis {

const char *escapeClassName(EscapeClass E) {
  switch (E) {
  case EscapeClass::NoEscape:
    return "no-escape";
  case EscapeClass::ArgEscape:
    return "arg-escape";
  case EscapeClass::GlobalEscape:
    return "global-escape";
  }
  return "?";
}

namespace {

/// Classification of one heap access given the abstract base value.
/// \p TraceNonNullObject is the trace-local receiver fact: the base is a
/// live non-array object of unknown class (virtual dispatch succeeded).
struct AccessClass {
  enum class Kind : uint8_t { ElideNull, ElideFull, MayNull, Unknown } K;
};

AccessClass classifyAccess(const Module &M, const Instruction &I,
                           const AbstractValue &V, bool TraceNonNullObject) {
  using K = AccessClass::Kind;
  // Provably a non-null array: allocation-typed, never joined with an
  // object class or null.
  bool DefArray = V.isNonNullRef() && V.Classes.empty() && V.MayBeArray;
  // Provably a non-null object (non-array).
  bool DefObject =
      (V.isNonNullRef() && !V.MayBeArray && !V.Classes.empty()) ||
      TraceNonNullObject;
  switch (I.Op) {
  case Opcode::Iaload:
  case Opcode::Iastore:
    // The bounds check stays: indexes are dynamic.
    if (DefArray)
      return {K::ElideNull};
    break;
  case Opcode::ArrayLength:
    // Length reads have no bounds check, so the proof removes everything.
    if (DefArray)
      return {K::ElideFull};
    break;
  case Opcode::GetField:
  case Opcode::PutField:
    if (DefObject) {
      // The slot check folds away too when every class the base may be
      // declares the field.
      bool SlotOk = !TraceNonNullObject && !V.Classes.any();
      if (SlotOk) {
        V.Classes.forEach([&](uint32_t C) {
          if (C >= M.Classes.size() ||
              static_cast<uint32_t>(I.A) >= M.Classes[C].NumFields)
            SlotOk = false;
        });
      }
      return {SlotOk ? K::ElideFull : K::ElideNull};
    }
    break;
  default:
    assert(false && "not a heap access");
    break;
  }
  if (V.isRef() && V.MayBeNull)
    return {K::MayNull};
  return {K::Unknown};
}

/// Stack depth of the base reference below the top, before the access.
int baseDepth(Opcode Op) {
  switch (Op) {
  case Opcode::GetField:
  case Opcode::ArrayLength:
    return 1;
  case Opcode::PutField:
  case Opcode::Iaload:
    return 2;
  case Opcode::Iastore:
    return 3;
  default:
    return 0;
  }
}

bool isHeapAccess(Opcode Op) { return baseDepth(Op) != 0; }

} // namespace

//===----------------------------------------------------------------------===//
// Per-method allocation-site points-to & escape
//===----------------------------------------------------------------------===//

namespace {

/// Points-to state: one may-point-to bitset (over tracked allocation
/// sites) per local and stack slot.
struct PtState {
  bool Init = false;
  std::vector<uint64_t> Locals;
  std::vector<uint64_t> Stack;
};

bool joinInto(PtState &Dst, const PtState &Src) {
  if (!Src.Init)
    return false;
  if (!Dst.Init) {
    Dst = Src;
    return true;
  }
  bool Changed = false;
  // Verified code has consistent heights; clamp defensively anyway.
  size_t NL = std::min(Dst.Locals.size(), Src.Locals.size());
  size_t NS = std::min(Dst.Stack.size(), Src.Stack.size());
  for (size_t I = 0; I < NL; ++I)
    if ((Dst.Locals[I] | Src.Locals[I]) != Dst.Locals[I]) {
      Dst.Locals[I] |= Src.Locals[I];
      Changed = true;
    }
  for (size_t I = 0; I < NS; ++I)
    if ((Dst.Stack[I] | Src.Stack[I]) != Dst.Stack[I]) {
      Dst.Stack[I] |= Src.Stack[I];
      Changed = true;
    }
  return Changed;
}

} // namespace

MethodEscapeFacts analyzeMethodEscapes(const MethodCfg &Cfg,
                                       const MethodValueFacts &Values,
                                       const ModuleSummaries &Summaries) {
  (void)Values;
  const Module &M = Cfg.module();
  const Method &Fn = Cfg.method();
  MethodEscapeFacts R;

  std::vector<int> SiteOf(Fn.Code.size(), -1);
  for (uint32_t Pc = 0; Pc < Fn.Code.size(); ++Pc) {
    Opcode Op = Fn.Code[Pc].Op;
    if (Op != Opcode::New && Op != Opcode::NewArray)
      continue;
    AllocSite S;
    S.Pc = Pc;
    S.IsArray = Op == Opcode::NewArray;
    if (R.Sites.size() < 64) {
      SiteOf[Pc] = static_cast<int>(R.Sites.size());
    } else {
      // Untracked overflow sites: assume the worst.
      S.Escape = EscapeClass::GlobalEscape;
      R.Overflowed = true;
    }
    R.Sites.push_back(S);
  }
  if (R.Sites.empty())
    return R;

  auto Escape = [&R](uint64_t Mask, EscapeClass E) {
    for (uint32_t B = 0; Mask != 0 && B < 64; ++B)
      if (Mask & (uint64_t{1} << B))
        if (R.Sites[B].Escape < E)
          R.Sites[B].Escape = E;
  };

  std::vector<PtState> In(Cfg.numBlocks());
  if (!Cfg.rpo().empty()) {
    PtState &E = In[Cfg.rpo().front()];
    E.Init = true;
    E.Locals.assign(Fn.NumLocals, 0);
  }

  bool Changed = true;
  for (int Round = 0; Changed && Round < 200; ++Round) {
    Changed = false;
    for (uint32_t B : Cfg.rpo()) {
      if (!In[B].Init)
        continue;
      PtState S = In[B];
      const CfgBlock &CB = Cfg.block(B);
      auto Pop = [&S]() -> uint64_t {
        if (S.Stack.empty())
          return 0;
        uint64_t V = S.Stack.back();
        S.Stack.pop_back();
        return V;
      };
      auto Push = [&S](uint64_t V) { S.Stack.push_back(V); };
      for (uint32_t Pc = CB.Start; Pc < CB.End; ++Pc) {
        const Instruction &I = Fn.Code[Pc];
        switch (I.Op) {
        case Opcode::New:
          Push(SiteOf[Pc] >= 0 ? uint64_t{1} << SiteOf[Pc] : 0);
          break;
        case Opcode::NewArray:
          Pop();
          Push(SiteOf[Pc] >= 0 ? uint64_t{1} << SiteOf[Pc] : 0);
          break;
        case Opcode::Iload:
          Push(S.Locals[I.A]);
          break;
        case Opcode::Istore:
          S.Locals[I.A] = Pop();
          break;
        case Opcode::Iinc:
          S.Locals[I.A] = 0; // Arithmetic result, no longer the reference.
          break;
        case Opcode::Dup:
          Push(S.Stack.empty() ? 0 : S.Stack.back());
          break;
        case Opcode::Swap:
          if (S.Stack.size() >= 2)
            std::swap(S.Stack[S.Stack.size() - 1], S.Stack[S.Stack.size() - 2]);
          break;
        case Opcode::PutField: {
          uint64_t V = Pop();
          Pop();
          Escape(V, EscapeClass::GlobalEscape);
          break;
        }
        case Opcode::Iastore: {
          uint64_t V = Pop();
          Pop();
          Pop();
          Escape(V, EscapeClass::GlobalEscape);
          break;
        }
        case Opcode::InvokeStatic:
        case Opcode::InvokeVirtual: {
          uint32_t Args, Rets;
          if (I.Op == Opcode::InvokeStatic) {
            const Method &Callee = M.Methods[I.A];
            Args = Callee.NumArgs;
            Rets = Callee.ReturnsValue ? 1 : 0;
          } else {
            const SlotInfo &Slot = M.Slots[I.A];
            Args = Slot.ArgCount;
            Rets = Slot.ReturnsValue ? 1 : 0;
          }
          auto CS = Summaries.callSite(M, I);
          EscapeClass E = (!CS || CS->WritesHeap) ? EscapeClass::GlobalEscape
                                                  : EscapeClass::ArgEscape;
          uint64_t ArgMask = 0;
          for (uint32_t K = 0; K < Args; ++K)
            ArgMask |= Pop();
          Escape(ArgMask, E);
          // The return value may alias any argument (identity-shaped
          // callees), so the argument sites flow through it.
          for (uint32_t K = 0; K < Rets; ++K)
            Push(ArgMask);
          break;
        }
        case Opcode::Ireturn:
          Escape(Pop(), EscapeClass::ArgEscape);
          break;
        default: {
          int P = opPops(I.Op), Q = opPushes(I.Op);
          for (int K = 0; K < P; ++K)
            Pop();
          for (int K = 0; K < Q; ++K)
            Push(0);
          break;
        }
        }
      }
      for (uint32_t Succ : CB.Succs)
        Changed |= joinInto(In[Succ], S);
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Trace-level memory facts
//===----------------------------------------------------------------------===//

namespace {

/// One frame of the trace's call stack during the walk.
struct WalkFrame {
  uint32_t MethodId = 0;
  /// Trace-local non-null facts per local (receiver rule).
  std::vector<uint8_t> NonNull;
  /// Which local each stack slot was loaded from (-1 unknown).
  std::vector<int32_t> Tags;
};

} // namespace

std::vector<TraceMemFact>
analyzeTraceMemory(const Module &M, const ValueFactsFn &Facts,
                   const std::vector<TraceBlockSpan> &Blocks,
                   AliasStats *Stats) {
  std::vector<TraceMemFact> Out;
  if (Blocks.empty())
    return Out;

  std::vector<WalkFrame> Saved;
  WalkFrame F;
  auto Reset = [&](uint32_t MethodId) {
    F = WalkFrame();
    F.MethodId = MethodId;
    F.NonNull.assign(M.Methods[MethodId].NumLocals, 0);
  };
  Reset(Blocks[0].MethodId);

  for (size_t Bi = 0; Bi < Blocks.size(); ++Bi) {
    const TraceBlockSpan &BB = Blocks[Bi];
    if (Bi > 0) {
      // Frame bookkeeping across the block transition.
      const TraceBlockSpan &Prev = Blocks[Bi - 1];
      const Instruction &Last = M.Methods[Prev.MethodId].Code[Prev.EndPc - 1];
      switch (opKind(Last.Op)) {
      case OpKind::Call:
        Saved.push_back(std::move(F));
        Reset(BB.MethodId);
        if (Last.Op == Opcode::InvokeVirtual && !F.NonNull.empty())
          F.NonNull[0] = 1; // Dispatch traps on null/non-object receivers.
        break;
      case OpKind::Ret:
        if (!Saved.empty()) {
          F = std::move(Saved.back());
          Saved.pop_back();
          if (Last.Op == Opcode::Ireturn)
            F.Tags.push_back(-1);
        } else {
          Reset(BB.MethodId); // Returned past the trace's root frame.
        }
        break;
      default:
        if (F.MethodId != BB.MethodId)
          Reset(BB.MethodId); // Defensive; should not happen.
        break;
      }
    }

    const MethodValueFacts *MVF = Facts ? Facts(BB.MethodId) : nullptr;
    const Method &Fn = M.Methods[BB.MethodId];
    if (!MVF) {
      F.Tags.clear();
      continue;
    }
    FrameState S = MVF->stateBefore(BB.StartPc);
    if (!S.Reachable) {
      F.Tags.clear();
      continue;
    }
    if (F.Tags.size() != S.Stack.size())
      F.Tags.assign(S.Stack.size(), -1);

    for (uint32_t Pc = BB.StartPc; Pc < BB.EndPc && S.Reachable; ++Pc) {
      const Instruction &I = Fn.Code[Pc];
      if (isHeapAccess(I.Op) &&
          S.Stack.size() >= static_cast<size_t>(baseDepth(I.Op))) {
        size_t Pos = S.Stack.size() - static_cast<size_t>(baseDepth(I.Op));
        const AbstractValue &V = S.Stack[Pos];
        int32_t Tag = Pos < F.Tags.size() ? F.Tags[Pos] : -1;
        bool TraceNN = Tag >= 0 &&
                       static_cast<size_t>(Tag) < F.NonNull.size() &&
                       F.NonNull[Tag];
        AccessClass C = classifyAccess(M, I, V, TraceNN);
        if (Stats)
          ++Stats->MemOps;
        switch (C.K) {
        case AccessClass::Kind::ElideNull:
          Out.push_back({static_cast<uint32_t>(Bi), Pc, MemElide::NullOnly});
          if (Stats)
            ++Stats->ElidedNull;
          break;
        case AccessClass::Kind::ElideFull:
          Out.push_back({static_cast<uint32_t>(Bi), Pc, MemElide::Full});
          if (Stats)
            ++Stats->ElidedFull;
          break;
        case AccessClass::Kind::MayNull:
          if (Stats)
            ++Stats->MayNullBase;
          break;
        case AccessClass::Kind::Unknown:
          if (Stats)
            ++Stats->UnknownBase;
          break;
        }
      }
      // Maintain the load-provenance tags in lockstep with the stack.
      switch (I.Op) {
      case Opcode::Iload:
        F.Tags.push_back(I.A);
        break;
      case Opcode::Istore:
        if (!F.Tags.empty())
          F.Tags.pop_back();
        if (static_cast<size_t>(I.A) < F.NonNull.size())
          F.NonNull[I.A] = 0;
        break;
      case Opcode::Iinc:
        if (static_cast<size_t>(I.A) < F.NonNull.size())
          F.NonNull[I.A] = 0;
        break;
      case Opcode::Dup:
        F.Tags.push_back(F.Tags.empty() ? -1 : F.Tags.back());
        break;
      case Opcode::Swap:
        if (F.Tags.size() >= 2)
          std::swap(F.Tags[F.Tags.size() - 1], F.Tags[F.Tags.size() - 2]);
        break;
      default: {
        if (opKind(I.Op) == OpKind::Normal || opKind(I.Op) == OpKind::Branch ||
            opKind(I.Op) == OpKind::Switch) {
          for (int K = 0; K < opPops(I.Op) && !F.Tags.empty(); ++K)
            F.Tags.pop_back();
          for (int K = 0; K < opPushes(I.Op); ++K)
            F.Tags.push_back(-1);
        }
        break;
      }
      }
      MethodValueFacts::stepInstruction(M, Fn, Pc, S);
    }
    if (!S.Reachable)
      F.Tags.clear();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Module-wide report
//===----------------------------------------------------------------------===//

ModuleAliasReport analyzeModuleAliasing(const Module &M,
                                        const ValueFactsFn &Facts,
                                        const ModuleSummaries &Summaries) {
  ModuleAliasReport R;
  R.Escapes.resize(M.Methods.size());
  constexpr size_t MaxDiags = 64;

  for (uint32_t F = 0; F < M.Methods.size(); ++F) {
    const MethodValueFacts *MVF = Facts ? Facts(F) : nullptr;
    if (!MVF)
      continue;
    const MethodCfg &Cfg = MVF->cfg();
    R.Escapes[F] = analyzeMethodEscapes(Cfg, *MVF, Summaries);
    for (const AllocSite &S : R.Escapes[F].Sites) {
      ++R.Stats.AllocSites;
      switch (S.Escape) {
      case EscapeClass::NoEscape:
        ++R.Stats.NoEscape;
        break;
      case EscapeClass::ArgEscape:
        ++R.Stats.ArgEscape;
        break;
      case EscapeClass::GlobalEscape:
        ++R.Stats.GlobalEscape;
        break;
      }
    }
    const Method &Fn = M.Methods[F];
    for (uint32_t B : Cfg.rpo()) {
      MVF->forEachInstruction(B, [&](uint32_t Pc, const FrameState &S) {
        const Instruction &I = Fn.Code[Pc];
        if (!isHeapAccess(I.Op) ||
            S.Stack.size() < static_cast<size_t>(baseDepth(I.Op)))
          return;
        const AbstractValue &V =
            S.Stack[S.Stack.size() - static_cast<size_t>(baseDepth(I.Op))];
        AccessClass C = classifyAccess(M, I, V, /*TraceNonNullObject=*/false);
        ++R.Stats.MemOps;
        switch (C.K) {
        case AccessClass::Kind::ElideNull:
          ++R.Stats.ElidedNull;
          return;
        case AccessClass::Kind::ElideFull:
          ++R.Stats.ElidedFull;
          return;
        case AccessClass::Kind::MayNull:
          ++R.Stats.MayNullBase;
          break;
        case AccessClass::Kind::Unknown:
          ++R.Stats.UnknownBase;
          break;
        }
        if (R.Diagnostics.size() < MaxDiags) {
          std::ostringstream OS;
          OS << Fn.Name << " pc " << Pc << ": " << mnemonic(I.Op)
             << (C.K == AccessClass::Kind::MayNull
                     ? ": base may be null"
                     : ": base shape unknown");
          R.Diagnostics.push_back(OS.str());
        }
      });
    }
  }
  return R;
}

} // namespace analysis
} // namespace jtc
