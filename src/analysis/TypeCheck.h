//===- analysis/TypeCheck.h - Typed verification pass -----------*- C++ -*-===//
///
/// \file
/// The typed verification rules layered on top of the value analysis.
/// The VM's execution is total (every misuse is a defined trap), so these
/// are static *discipline* rules in the spirit of the JVM verifier: code
/// that provably confuses references and integers is rejected before it
/// runs, rather than trapping at runtime.
///
/// Rejected (each with a distinct diagnostic):
///  - a definitely-reference value used as an arithmetic/shift/logic
///    operand, switch selector, array length or iinc target;
///  - a definitely-integer (non-zero) value used as a field/array/virtual
///    receiver;
///  - a receiver that is the constant 0, i.e. provably always null;
///  - a value of conflicting merged types (reference on one path, non-zero
///    integer on another) consumed by any type-demanding position;
///  - an Ireturn whose operand contradicts the method's declared return
///    type (a definite reference under `returns=int`, or anything not
///    provably a reference-or-null under `returns=ref`).
///
/// Permissive positions -- conditional branches (idiomatic null tests),
/// istore/iload, iprint, putfield/iastore values -- accept any type.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_ANALYSIS_TYPECHECK_H
#define JTC_ANALYSIS_TYPECHECK_H

#include "analysis/ValueAnalysis.h"

#include <string>
#include <vector>

namespace jtc {
namespace analysis {

struct TypeError {
  uint32_t Pc = 0;
  std::string Message;
};

/// Checks one method's typed discipline given its value-analysis fixpoint.
/// Unreachable code is not checked (it cannot execute).
std::vector<TypeError> checkMethodTypes(const MethodValueFacts &Facts);

} // namespace analysis
} // namespace jtc

#endif // JTC_ANALYSIS_TYPECHECK_H
