//===- analysis/ValueAnalysis.cpp - Typed/constant abstract interp --------===//

#include "analysis/ValueAnalysis.h"
#include "analysis/Dataflow.h"

#include <cassert>

namespace jtc {
namespace analysis {

namespace {

// --- integer range arithmetic -------------------------------------------
//
// Constant folds replicate Machine.cpp exactly (wrapping add/sub/mul via
// uint64, INT64_MIN/-1 defined, shift counts masked to 6 bits); range
// results fall back to the full range whenever the interval arithmetic
// could overflow, which keeps the facts sound without an exact wrapped-
// interval domain.

int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

bool bothInt(const AbstractValue &A, const AbstractValue &B) {
  return A.isInt() && B.isInt();
}

AbstractValue rangeAdd(const AbstractValue &A, const AbstractValue &B) {
  if (!bothInt(A, B))
    return AbstractValue::intAny();
  int64_t Lo, Hi;
  if (__builtin_add_overflow(A.Lo, B.Lo, &Lo) ||
      __builtin_add_overflow(A.Hi, B.Hi, &Hi))
    return AbstractValue::intAny();
  return AbstractValue::intRange(Lo, Hi);
}

AbstractValue rangeSub(const AbstractValue &A, const AbstractValue &B) {
  if (!bothInt(A, B))
    return AbstractValue::intAny();
  int64_t Lo, Hi;
  if (__builtin_sub_overflow(A.Lo, B.Hi, &Lo) ||
      __builtin_sub_overflow(A.Hi, B.Lo, &Hi))
    return AbstractValue::intAny();
  return AbstractValue::intRange(Lo, Hi);
}

AbstractValue rangeMul(const AbstractValue &A, const AbstractValue &B) {
  if (A.isConst() && B.isConst())
    return AbstractValue::intConst(wrapMul(A.Lo, B.Lo));
  if (!bothInt(A, B))
    return AbstractValue::intAny();
  // Interval multiply over the four corner products, bailing on overflow.
  int64_t Corners[4];
  const int64_t As[2] = {A.Lo, A.Hi}, Bs[2] = {B.Lo, B.Hi};
  int Idx = 0;
  for (int64_t X : As)
    for (int64_t Y : Bs)
      if (__builtin_mul_overflow(X, Y, &Corners[Idx++]))
        return AbstractValue::intAny();
  int64_t Lo = Corners[0], Hi = Corners[0];
  for (int64_t C : Corners) {
    Lo = std::min(Lo, C);
    Hi = std::max(Hi, C);
  }
  return AbstractValue::intRange(Lo, Hi);
}

int64_t machDiv(int64_t A, int64_t B) {
  if (A == AbstractValue::MinInt && B == -1)
    return AbstractValue::MinInt;
  return A / B;
}
int64_t machRem(int64_t A, int64_t B) {
  if (A == AbstractValue::MinInt && B == -1)
    return 0;
  return A % B;
}

/// Condition range of a value used as a branch operand: references are
/// positive opaque handles (null is 0), so a non-null reference compares
/// like [1, max] and a nullable one like [0, max].
struct CondRange {
  int64_t Lo = AbstractValue::MinInt;
  int64_t Hi = AbstractValue::MaxInt;
};

CondRange condRange(const AbstractValue &V) {
  if (V.isInt())
    return {V.Lo, V.Hi};
  if (V.isRef())
    return {V.MayBeNull ? 0 : 1, AbstractValue::MaxInt};
  return {};
}

BranchDecision fromBools(bool Always, bool Never) {
  if (Always)
    return BranchDecision::AlwaysTaken;
  if (Never)
    return BranchDecision::NeverTaken;
  return BranchDecision::Unknown;
}

} // namespace

BranchDecision MethodValueFacts::decideBranch(const Instruction &I,
                                              const FrameState &Before) {
  if (!Before.Reachable || Before.Stack.empty())
    return BranchDecision::Unknown;
  switch (I.Op) {
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfGe:
  case Opcode::IfGt:
  case Opcode::IfLe: {
    CondRange V = condRange(Before.Stack.back());
    switch (I.Op) {
    case Opcode::IfEq:
      return fromBools(V.Lo == 0 && V.Hi == 0, V.Lo > 0 || V.Hi < 0);
    case Opcode::IfNe:
      return fromBools(V.Lo > 0 || V.Hi < 0, V.Lo == 0 && V.Hi == 0);
    case Opcode::IfLt:
      return fromBools(V.Hi < 0, V.Lo >= 0);
    case Opcode::IfGe:
      return fromBools(V.Lo >= 0, V.Hi < 0);
    case Opcode::IfGt:
      return fromBools(V.Lo > 0, V.Hi <= 0);
    case Opcode::IfLe:
      return fromBools(V.Hi <= 0, V.Lo > 0);
    default:
      return BranchDecision::Unknown;
    }
  }
  case Opcode::IfIcmpEq:
  case Opcode::IfIcmpNe:
  case Opcode::IfIcmpLt:
  case Opcode::IfIcmpGe:
  case Opcode::IfIcmpGt:
  case Opcode::IfIcmpLe: {
    if (Before.Stack.size() < 2)
      return BranchDecision::Unknown;
    // Stack is [... A B]; the comparison is A <op> B.
    CondRange A = condRange(Before.Stack[Before.Stack.size() - 2]);
    CondRange B = condRange(Before.Stack.back());
    bool Disjoint = A.Hi < B.Lo || B.Hi < A.Lo;
    bool BothSameConst = A.Lo == A.Hi && B.Lo == B.Hi && A.Lo == B.Lo;
    switch (I.Op) {
    case Opcode::IfIcmpEq:
      return fromBools(BothSameConst, Disjoint);
    case Opcode::IfIcmpNe:
      return fromBools(Disjoint, BothSameConst);
    case Opcode::IfIcmpLt:
      return fromBools(A.Hi < B.Lo, A.Lo >= B.Hi);
    case Opcode::IfIcmpGe:
      return fromBools(A.Lo >= B.Hi, A.Hi < B.Lo);
    case Opcode::IfIcmpGt:
      return fromBools(A.Lo > B.Hi, A.Hi <= B.Lo);
    case Opcode::IfIcmpLe:
      return fromBools(A.Hi <= B.Lo, A.Lo > B.Hi);
    default:
      return BranchDecision::Unknown;
    }
  }
  default:
    return BranchDecision::Unknown;
  }
}

std::optional<std::vector<uint32_t>>
MethodValueFacts::feasibleSwitchTargets(const Method &Fn, uint32_t Pc,
                                        const FrameState &Before) {
  if (!Before.Reachable || Before.Stack.empty())
    return std::nullopt;
  const Instruction &I = Fn.Code[Pc];
  assert(I.Op == Opcode::Tableswitch);
  const AbstractValue &Sel = Before.Stack.back();
  if (!Sel.isInt())
    return std::nullopt;
  const SwitchTable &T = Fn.SwitchTables[static_cast<uint32_t>(I.A)];
  const int64_t TableLen = static_cast<int64_t>(T.Targets.size());
  // Only enumerate usefully small selector ranges. Width is computed in
  // unsigned arithmetic: Hi - Lo overflows int64 for wide intervals.
  constexpr uint64_t MaxEnum = 1024;
  if (Sel.Hi < Sel.Lo ||
      static_cast<uint64_t>(Sel.Hi) - static_cast<uint64_t>(Sel.Lo) > MaxEnum)
    return std::nullopt;
  std::vector<uint32_t> Out;
  auto add = [&](uint32_t Target) {
    for (uint32_t O : Out)
      if (O == Target)
        return;
    Out.push_back(Target);
  };
  for (int64_t S = Sel.Lo; S <= Sel.Hi; ++S) {
    int64_t Off = S - T.Low;
    if (Off >= 0 && Off < TableLen)
      add(T.Targets[static_cast<uint32_t>(Off)]);
    else
      add(T.DefaultTarget);
  }
  return Out;
}

void MethodValueFacts::stepInstruction(const Module &M, const Method &Fn,
                                       uint32_t Pc, FrameState &S) {
  if (!S.Reachable)
    return;
  const Instruction &I = Fn.Code[Pc];
  auto pop = [&]() {
    assert(!S.Stack.empty() && "stack underflow; height-verify first");
    AbstractValue V = S.Stack.back();
    S.Stack.pop_back();
    return V;
  };
  auto push = [&](const AbstractValue &V) { S.Stack.push_back(V); };
  // A provable trap abandons the frame: no state flows onward.
  auto traps = [&]() {
    S.Reachable = false;
    S.Stack.clear();
  };

  switch (I.Op) {
  case Opcode::Nop:
    break;
  case Opcode::Iconst:
    push(AbstractValue::intConst(I.A));
    break;
  case Opcode::Iload:
    push(S.Locals[static_cast<uint32_t>(I.A)]);
    break;
  case Opcode::Istore:
    S.Locals[static_cast<uint32_t>(I.A)] = pop();
    break;
  case Opcode::Iinc: {
    AbstractValue &L = S.Locals[static_cast<uint32_t>(I.A)];
    if (L.isInt()) {
      if (L.isConst())
        L = AbstractValue::intConst(wrapAdd(L.Lo, I.B));
      else
        L = rangeAdd(L, AbstractValue::intConst(I.B));
    } else {
      L = AbstractValue::top();
    }
    break;
  }
  case Opcode::Pop:
    pop();
    break;
  case Opcode::Dup: {
    AbstractValue V = pop();
    push(V);
    push(V);
    break;
  }
  case Opcode::Swap: {
    AbstractValue B = pop(), A = pop();
    push(B);
    push(A);
    break;
  }
  case Opcode::Iadd: {
    AbstractValue B = pop(), A = pop();
    if (A.isConst() && B.isConst())
      push(AbstractValue::intConst(wrapAdd(A.Lo, B.Lo)));
    else
      push(rangeAdd(A, B));
    break;
  }
  case Opcode::Isub: {
    AbstractValue B = pop(), A = pop();
    if (A.isConst() && B.isConst())
      push(AbstractValue::intConst(wrapSub(A.Lo, B.Lo)));
    else
      push(rangeSub(A, B));
    break;
  }
  case Opcode::Imul: {
    AbstractValue B = pop(), A = pop();
    push(rangeMul(A, B));
    break;
  }
  case Opcode::Idiv:
  case Opcode::Irem: {
    AbstractValue B = pop(), A = pop();
    if (B.isZero()) {
      traps();
      break;
    }
    if (A.isConst() && B.isConst())
      push(AbstractValue::intConst(I.Op == Opcode::Idiv ? machDiv(A.Lo, B.Lo)
                                                        : machRem(A.Lo, B.Lo)));
    else
      push(AbstractValue::intAny());
    break;
  }
  case Opcode::Ineg: {
    AbstractValue A = pop();
    if (A.isConst())
      push(AbstractValue::intConst(wrapNeg(A.Lo)));
    else if (A.isInt() && A.Lo != AbstractValue::MinInt)
      push(AbstractValue::intRange(-A.Hi, -A.Lo));
    else
      push(AbstractValue::intAny());
    break;
  }
  case Opcode::Ishl: {
    AbstractValue B = pop(), A = pop();
    if (A.isConst() && B.isConst())
      push(AbstractValue::intConst(static_cast<int64_t>(
          static_cast<uint64_t>(A.Lo) << (B.Lo & 63))));
    else
      push(AbstractValue::intAny());
    break;
  }
  case Opcode::Ishr: {
    AbstractValue B = pop(), A = pop();
    if (A.isConst() && B.isConst())
      push(AbstractValue::intConst(A.Lo >> (B.Lo & 63)));
    else
      push(AbstractValue::intAny());
    break;
  }
  case Opcode::Iushr: {
    AbstractValue B = pop(), A = pop();
    if (A.isConst() && B.isConst())
      push(AbstractValue::intConst(static_cast<int64_t>(
          static_cast<uint64_t>(A.Lo) >> (B.Lo & 63))));
    else
      push(AbstractValue::intAny());
    break;
  }
  case Opcode::Iand: {
    AbstractValue B = pop(), A = pop();
    if (A.isConst() && B.isConst())
      push(AbstractValue::intConst(A.Lo & B.Lo));
    else if (A.isInt() && B.isInt() && A.Lo >= 0 && B.Lo >= 0)
      push(AbstractValue::intRange(0, std::min(A.Hi, B.Hi)));
    else
      push(AbstractValue::intAny());
    break;
  }
  case Opcode::Ior: {
    AbstractValue B = pop(), A = pop();
    if (A.isConst() && B.isConst())
      push(AbstractValue::intConst(A.Lo | B.Lo));
    else
      push(AbstractValue::intAny());
    break;
  }
  case Opcode::Ixor: {
    AbstractValue B = pop(), A = pop();
    if (A.isConst() && B.isConst())
      push(AbstractValue::intConst(A.Lo ^ B.Lo));
    else
      push(AbstractValue::intAny());
    break;
  }
  case Opcode::Goto:
    break;
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfGe:
  case Opcode::IfGt:
  case Opcode::IfLe:
    pop();
    break;
  case Opcode::IfIcmpEq:
  case Opcode::IfIcmpNe:
  case Opcode::IfIcmpLt:
  case Opcode::IfIcmpGe:
  case Opcode::IfIcmpGt:
  case Opcode::IfIcmpLe:
    pop();
    pop();
    break;
  case Opcode::Tableswitch:
    pop();
    break;
  case Opcode::InvokeStatic: {
    const Method &Callee = M.Methods[static_cast<uint32_t>(I.A)];
    for (uint32_t K = 0; K < Callee.NumArgs; ++K)
      pop();
    if (Callee.ReturnsValue)
      push(Callee.RetType == TypeTag::Ref ? AbstractValue::anyRef()
                                          : AbstractValue::intAny());
    break;
  }
  case Opcode::InvokeVirtual: {
    const SlotInfo &Slot = M.Slots[static_cast<uint32_t>(I.A)];
    AbstractValue Recv =
        S.Stack.size() >= Slot.ArgCount
            ? S.Stack[S.Stack.size() - Slot.ArgCount]
            : AbstractValue::top();
    for (uint32_t K = 0; K < Slot.ArgCount; ++K)
      pop();
    if (Recv.isZero()) {
      traps(); // Provable null receiver.
      break;
    }
    if (Slot.ReturnsValue)
      push(Slot.RetType == TypeTag::Ref ? AbstractValue::anyRef()
                                        : AbstractValue::intAny());
    break;
  }
  case Opcode::Return:
    break;
  case Opcode::Ireturn:
    pop();
    break;
  case Opcode::New:
    push(AbstractValue::objectRef(static_cast<uint32_t>(I.A)));
    break;
  case Opcode::GetField: {
    AbstractValue Recv = pop();
    if (Recv.isZero()) {
      traps();
      break;
    }
    push(AbstractValue::top());
    break;
  }
  case Opcode::PutField: {
    pop(); // value
    AbstractValue Recv = pop();
    if (Recv.isZero())
      traps();
    break;
  }
  case Opcode::NewArray: {
    AbstractValue Len = pop();
    if (Len.isInt() && Len.Hi < 0) {
      traps(); // Provably negative length.
      break;
    }
    push(AbstractValue::arrayRef());
    break;
  }
  case Opcode::Iaload: {
    pop(); // index
    AbstractValue Recv = pop();
    if (Recv.isZero()) {
      traps();
      break;
    }
    push(AbstractValue::top());
    break;
  }
  case Opcode::Iastore: {
    pop(); // value
    pop(); // index
    AbstractValue Recv = pop();
    if (Recv.isZero())
      traps();
    break;
  }
  case Opcode::ArrayLength: {
    AbstractValue Recv = pop();
    if (Recv.isZero()) {
      traps();
      break;
    }
    push(AbstractValue::intRange(0, AbstractValue::MaxInt));
    break;
  }
  case Opcode::Iprint:
    pop();
    break;
  case Opcode::Halt:
    break;
  }
}

namespace {

/// Solver adapter: forward problem over FrameState with constant-aware
/// edge pruning at branches and switches.
class ValueProblem {
public:
  using State = FrameState;
  static constexpr bool Forward = true;

  explicit ValueProblem(const MethodCfg &Cfg) : Cfg(Cfg) {
    LastDecision.assign(Cfg.numBlocks(), BranchDecision::Unknown);
    LastFeasible.assign(Cfg.numBlocks(), std::nullopt);
  }

  State boundary() const {
    const Method &Fn = Cfg.method();
    State S;
    S.Reachable = true;
    S.Locals.resize(Fn.NumLocals);
    for (uint32_t L = 0; L < Fn.NumLocals; ++L)
      S.Locals[L] = L < Fn.NumArgs ? AbstractValue::top()
                                   : AbstractValue::intConst(0);
    return S;
  }

  State initial() const { return State{}; }

  void transfer(uint32_t Block, State &S) {
    const CfgBlock &B = Cfg.block(Block);
    const Method &Fn = Cfg.method();
    LastDecision[Block] = BranchDecision::Unknown;
    LastFeasible[Block] = std::nullopt;
    for (uint32_t Pc = B.Start; Pc < B.End && S.Reachable; ++Pc) {
      const Instruction &I = Fn.Code[Pc];
      if (Pc + 1 == B.End) {
        if (opKind(I.Op) == OpKind::Branch)
          LastDecision[Block] = MethodValueFacts::decideBranch(I, S);
        else if (opKind(I.Op) == OpKind::Switch)
          LastFeasible[Block] =
              MethodValueFacts::feasibleSwitchTargets(Fn, Pc, S);
      }
      MethodValueFacts::stepInstruction(Cfg.module(), Fn, Pc, S);
    }
  }

  bool join(State &Into, const State &From, bool Widen) {
    if (!From.Reachable)
      return false;
    if (!Into.Reachable) {
      Into = From;
      return true;
    }
    bool Changed = false;
    assert(Into.Locals.size() == From.Locals.size());
    for (uint32_t L = 0; L < Into.Locals.size(); ++L)
      Changed |= Into.Locals[L].join(From.Locals[L], Widen);
    // Stack heights agree at merge points for height-verified methods.
    assert(Into.Stack.size() == From.Stack.size());
    uint32_t H = static_cast<uint32_t>(
        std::min(Into.Stack.size(), From.Stack.size()));
    for (uint32_t D = 0; D < H; ++D)
      Changed |= Into.Stack[D].join(From.Stack[D], Widen);
    return Changed;
  }

  std::optional<State> edgeState(uint32_t From, uint32_t To, const State &S) {
    if (!S.Reachable)
      return std::nullopt;
    const CfgBlock &FromBlk = Cfg.block(From);
    const Method &Fn = Cfg.method();
    const Instruction &Last = Fn.Code[FromBlk.End - 1];
    uint32_t ToPc = Cfg.block(To).Start;
    if (opKind(Last.Op) == OpKind::Branch) {
      uint32_t TakenPc = static_cast<uint32_t>(Last.A);
      uint32_t FallPc = FromBlk.End;
      if (TakenPc != FallPc) {
        if (LastDecision[From] == BranchDecision::AlwaysTaken && ToPc == FallPc)
          return std::nullopt;
        if (LastDecision[From] == BranchDecision::NeverTaken && ToPc == TakenPc)
          return std::nullopt;
      }
    } else if (opKind(Last.Op) == OpKind::Switch && LastFeasible[From]) {
      const std::vector<uint32_t> &Feasible = *LastFeasible[From];
      bool Found = false;
      for (uint32_t Pc : Feasible)
        Found |= (Pc == ToPc);
      if (!Found)
        return std::nullopt;
    }
    return S;
  }

private:
  const MethodCfg &Cfg;
  std::vector<BranchDecision> LastDecision;
  std::vector<std::optional<std::vector<uint32_t>>> LastFeasible;
};

} // namespace

MethodValueFacts MethodValueFacts::compute(const MethodCfg &Cfg) {
  MethodValueFacts Facts;
  Facts.Cfg = &Cfg;
  ValueProblem P(Cfg);
  Facts.Entry = solve(Cfg, P);
  Facts.Decisions.assign(Cfg.method().Code.size(), BranchDecision::Unknown);

  // Record per-branch decisions from the fixpoint states.
  const Method &Fn = Cfg.method();
  for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
    Facts.forEachInstruction(B, [&](uint32_t Pc, const FrameState &Before) {
      const Instruction &I = Fn.Code[Pc];
      if (opKind(I.Op) == OpKind::Branch) {
        Facts.Decisions[Pc] = decideBranch(I, Before);
      } else if (opKind(I.Op) == OpKind::Switch) {
        std::optional<std::vector<uint32_t>> Feasible =
            feasibleSwitchTargets(Fn, Pc, Before);
        if (Feasible && Feasible->size() == 1)
          Facts.Decisions[Pc] = BranchDecision::AlwaysTaken;
      }
    });
  }
  return Facts;
}

FrameState MethodValueFacts::stateBefore(uint32_t Pc) const {
  uint32_t B = Cfg->blockAt(Pc);
  FrameState S = Entry[B];
  if (!S.Reachable)
    return S;
  for (uint32_t P = Cfg->block(B).Start; P < Pc && S.Reachable; ++P)
    stepInstruction(Cfg->module(), Cfg->method(), P, S);
  return S;
}

} // namespace analysis
} // namespace jtc
