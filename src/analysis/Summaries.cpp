//===- analysis/Summaries.cpp - Per-method effect summaries ---------------===//

#include "analysis/Summaries.h"

#include <sstream>

namespace jtc {
namespace analysis {

std::string EffectSummary::str() const {
  if (pure())
    return "pure";
  std::ostringstream OS;
  const char *Sep = "";
  auto emit = [&](bool Flag, const char *Name) {
    if (Flag) {
      OS << Sep << Name;
      Sep = ",";
    }
  };
  emit(ReadsHeap, "reads");
  emit(WritesHeap, "writes");
  emit(Allocates, "allocates");
  emit(MayTrap, "traps");
  emit(Prints, "prints");
  emit(MayHalt, "halts");
  return OS.str();
}

namespace {

/// Direct effects of one method's own instructions, ignoring callees.
EffectSummary localEffects(const Method &Fn) {
  EffectSummary E;
  for (const Instruction &I : Fn.Code) {
    switch (I.Op) {
    case Opcode::GetField:
    case Opcode::Iaload:
    case Opcode::ArrayLength:
      E.ReadsHeap = true;
      E.MayTrap = true; // Null receiver / bad index.
      break;
    case Opcode::PutField:
    case Opcode::Iastore:
      E.WritesHeap = true;
      E.MayTrap = true;
      break;
    case Opcode::New:
    case Opcode::NewArray:
      E.Allocates = true;
      E.MayTrap = true; // Out of memory / negative length.
      break;
    case Opcode::Idiv:
    case Opcode::Irem:
      E.MayTrap = true; // Divide by zero.
      break;
    case Opcode::InvokeVirtual:
      E.MayTrap = true; // Null / non-object receiver, missing impl.
      break;
    case Opcode::Iprint:
      E.Prints = true;
      break;
    case Opcode::Halt:
      E.MayHalt = true;
      break;
    default:
      break;
    }
  }
  return E;
}

/// Appends every possible direct callee of \p Fn.
void appendCallees(const Module &M, const Method &Fn,
                   std::vector<uint32_t> &Out) {
  for (const Instruction &I : Fn.Code) {
    if (I.Op == Opcode::InvokeStatic) {
      Out.push_back(static_cast<uint32_t>(I.A));
    } else if (I.Op == Opcode::InvokeVirtual) {
      uint32_t Slot = static_cast<uint32_t>(I.A);
      for (const Class &C : M.Classes)
        if (Slot < C.Vtable.size() && C.Vtable[Slot] != InvalidMethod)
          Out.push_back(C.Vtable[Slot]);
    }
  }
}

} // namespace

std::optional<EffectSummary>
ModuleSummaries::callSite(const Module &M, const Instruction &I) const {
  if (I.Op == Opcode::InvokeStatic) {
    auto Target = static_cast<uint32_t>(I.A);
    if (Target >= Summaries.size())
      return std::nullopt;
    return Summaries[Target];
  }
  if (I.Op != Opcode::InvokeVirtual)
    return std::nullopt;
  uint32_t Slot = static_cast<uint32_t>(I.A);
  EffectSummary E;
  E.MayTrap = true; // Dispatch traps on null / non-object receivers.
  bool Any = false;
  for (const Class &C : M.Classes)
    if (Slot < C.Vtable.size() && C.Vtable[Slot] != InvalidMethod &&
        C.Vtable[Slot] < Summaries.size()) {
      E.merge(Summaries[C.Vtable[Slot]]);
      Any = true;
    }
  if (!Any)
    return std::nullopt;
  return E;
}

ModuleSummaries ModuleSummaries::compute(const Module &M) {
  const uint32_t N = static_cast<uint32_t>(M.Methods.size());
  ModuleSummaries S;
  S.Summaries.resize(N);
  S.Recursive.assign(N, false);

  std::vector<std::vector<uint32_t>> Callees(N);
  for (uint32_t F = 0; F < N; ++F) {
    S.Summaries[F] = localEffects(M.Methods[F]);
    appendCallees(M, M.Methods[F], Callees[F]);
  }

  // Cycle detection (iterative DFS, colors: 0 unseen, 1 on stack, 2 done).
  // A back edge to an on-stack method marks every method on the stack from
  // that point as recursive; recursion can overflow the frame stack, so
  // those methods may trap regardless of their bodies.
  std::vector<uint8_t> Color(N, 0);
  std::vector<std::pair<uint32_t, uint32_t>> Stack;
  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Color[Root] != 0)
      continue;
    Stack.emplace_back(Root, 0);
    Color[Root] = 1;
    while (!Stack.empty()) {
      auto &[F, Next] = Stack.back();
      if (Next < Callees[F].size()) {
        uint32_t C = Callees[F][Next++];
        if (Color[C] == 0) {
          Color[C] = 1;
          Stack.emplace_back(C, 0);
        } else if (Color[C] == 1) {
          for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
            S.Recursive[It->first] = true;
            if (It->first == C)
              break;
          }
        }
      } else {
        Color[F] = 2;
        Stack.pop_back();
      }
    }
  }
  for (uint32_t F = 0; F < N; ++F)
    if (S.Recursive[F])
      S.Summaries[F].MayTrap = true; // Potential stack overflow.

  // Propagate callee effects to callers until stable. Effects only grow
  // and the lattice is finite, so this terminates quickly.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t F = 0; F < N; ++F)
      for (uint32_t C : Callees[F])
        Changed |= S.Summaries[F].merge(S.Summaries[C]);
  }
  return S;
}

} // namespace analysis
} // namespace jtc
