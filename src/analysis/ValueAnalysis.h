//===- analysis/ValueAnalysis.h - Typed/constant abstract interp *- C++ -*-===//
///
/// \file
/// Forward abstract interpretation of a method's operand stack and locals
/// over the AbstractValue lattice: type facts (int vs reference, class
/// may-sets, nullability) and integer constant/range facts in one pass,
/// with constant conditions pruning infeasible branch and switch edges.
/// This is the engine behind the typed verifier, the reachability/
/// dead-branch facts, the lint CLI and the trace optimizer's constant
/// seeding.
///
/// Requires a method that already passed the structural + stack-height
/// verifier pass (merge heights consistent, targets in range).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_ANALYSIS_VALUE_ANALYSIS_H
#define JTC_ANALYSIS_VALUE_ANALYSIS_H

#include "analysis/Cfg.h"
#include "analysis/Value.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace jtc {
namespace analysis {

/// Abstract machine frame: one lattice value per local and stack slot.
/// `Reachable` distinguishes bottom (no execution reaches the block) from
/// a genuinely empty frame.
struct FrameState {
  bool Reachable = false;
  std::vector<AbstractValue> Locals;
  std::vector<AbstractValue> Stack;

  bool operator==(const FrameState &O) const = default;
};

/// What the analysis concluded about one conditional branch or switch.
enum class BranchDecision : uint8_t {
  Unknown,     ///< Both outcomes feasible (or the instruction unreachable).
  AlwaysTaken, ///< Condition provably true / single feasible switch target.
  NeverTaken,  ///< Condition provably false; only the fallthrough survives.
};

/// Fixpoint result for one method. Stores the frame state at every block
/// entry; per-instruction facts are recomputed on demand by replaying the
/// transfer function through the block (blocks are short).
class MethodValueFacts {
public:
  /// Runs the analysis to fixpoint. \p Cfg must outlive the result.
  static MethodValueFacts compute(const MethodCfg &Cfg);

  const MethodCfg &cfg() const { return *Cfg; }

  /// Frame state at the entry of \p Block (Reachable=false when constant
  /// propagation proved the block dead, even if raw edges reach it).
  const FrameState &blockEntry(uint32_t Block) const { return Entry[Block]; }

  bool blockReachable(uint32_t Block) const {
    return Entry[Block].Reachable;
  }

  /// Decision for the Branch/Switch instruction at \p Pc; Unknown for
  /// other opcodes or unreachable code.
  BranchDecision decisionAt(uint32_t Pc) const { return Decisions[Pc]; }

  /// Replays \p Block from its entry state, invoking
  /// `F(pc, const FrameState &before)` for each instruction in order.
  /// No-op when the block is unreachable.
  template <typename Fn> void forEachInstruction(uint32_t Block, Fn &&F) const {
    FrameState S = Entry[Block];
    if (!S.Reachable)
      return;
    const CfgBlock &B = Cfg->block(Block);
    // Stops early if a provable trap (e.g. constant division by zero)
    // abandons the frame mid-block: the instructions after it never run.
    for (uint32_t Pc = B.Start; Pc < B.End && S.Reachable; ++Pc) {
      F(Pc, static_cast<const FrameState &>(S));
      stepInstruction(Cfg->module(), Cfg->method(), Pc, S);
    }
  }

  /// State immediately before the instruction at \p Pc (replays the
  /// containing block). Unreachable instructions yield a !Reachable state.
  FrameState stateBefore(uint32_t Pc) const;

  /// Applies the effect of the instruction at \p Pc to \p S. Public so
  /// the typed checker and the fuzzer's refinement audit share one
  /// transfer function. Conservative: trap outcomes simply stop
  /// contributing to the state (the frame is abandoned on a trap).
  static void stepInstruction(const Module &M, const Method &Fn, uint32_t Pc,
                              FrameState &S);

  /// Classifies the outcome of the conditional branch at \p Pc given the
  /// abstract condition operand(s); used by stepInstruction's callers and
  /// the edge-pruning logic.
  static BranchDecision decideBranch(const Instruction &I,
                                     const FrameState &Before);

  /// Feasible successor pcs of the Tableswitch at \p Pc given the
  /// abstract selector, or nullopt when all listed targets are feasible.
  static std::optional<std::vector<uint32_t>>
  feasibleSwitchTargets(const Method &Fn, uint32_t Pc,
                        const FrameState &Before);

private:
  const MethodCfg *Cfg = nullptr;
  std::vector<FrameState> Entry;     ///< Per block.
  std::vector<BranchDecision> Decisions; ///< Per pc.
};

} // namespace analysis
} // namespace jtc

#endif // JTC_ANALYSIS_VALUE_ANALYSIS_H
