//===- analysis/Cfg.h - Per-method control-flow graph -----------*- C++ -*-===//
///
/// \file
/// Basic-block control-flow graph for a single method, plus the
/// reverse-post-order schedule the dataflow solver iterates in. Block
/// discovery mirrors the interpreter's preparation pass (leaders at
/// branch/switch targets and after any block-ending instruction) but adds
/// explicit successor/predecessor edges; calls are fallthrough edges here
/// because the callee's effects are interprocedural.
///
/// Construction requires a structurally valid method (all branch targets
/// in range) -- run the structural verifier pass first.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_ANALYSIS_CFG_H
#define JTC_ANALYSIS_CFG_H

#include "bytecode/Program.h"

#include <cstdint>
#include <vector>

namespace jtc {
namespace analysis {

struct CfgBlock {
  uint32_t Start = 0; ///< First instruction index.
  uint32_t End = 0;   ///< One past the last instruction index.
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;
};

class MethodCfg {
public:
  MethodCfg(const Module &M, uint32_t MethodId);

  uint32_t methodId() const { return MethodIdx; }
  const Method &method() const { return Mod->Methods[MethodIdx]; }
  const Module &module() const { return *Mod; }

  uint32_t numBlocks() const { return static_cast<uint32_t>(Blocks.size()); }
  const CfgBlock &block(uint32_t Id) const { return Blocks[Id]; }

  /// Id of the block containing instruction \p Pc.
  uint32_t blockAt(uint32_t Pc) const { return BlockOfPc[Pc]; }

  /// True when \p Pc is the first instruction of its block.
  bool isLeader(uint32_t Pc) const { return Blocks[BlockOfPc[Pc]].Start == Pc; }

  /// Reverse post-order over blocks reachable from the entry by raw edges
  /// (before any constant-based pruning). Blocks not listed here are
  /// structurally unreachable.
  const std::vector<uint32_t> &rpo() const { return Rpo; }

  /// Position of each block in rpo(), or UINT32_MAX for structurally
  /// unreachable blocks. Used as the solver's worklist priority.
  uint32_t rpoIndex(uint32_t Block) const { return RpoIndex[Block]; }

private:
  const Module *Mod;
  uint32_t MethodIdx;
  std::vector<CfgBlock> Blocks;
  std::vector<uint32_t> BlockOfPc;
  std::vector<uint32_t> Rpo;
  std::vector<uint32_t> RpoIndex;
};

} // namespace analysis
} // namespace jtc

#endif // JTC_ANALYSIS_CFG_H
