//===- analysis/Liveness.h - Backward liveness of locals --------*- C++ -*-===//
///
/// \file
/// Classic backward may-liveness of method locals: a local is live at a
/// program point when some path from that point reads it before writing
/// it. Only Iload/Istore/Iinc touch locals in this instruction set
/// (calls communicate through the operand stack), so the transfer
/// function is tiny. The trace optimizer uses the per-pc live-in sets to
/// avoid materializing dead locals at side exits, and the lint pass uses
/// them to flag dead stores.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_ANALYSIS_LIVENESS_H
#define JTC_ANALYSIS_LIVENESS_H

#include "analysis/Cfg.h"

#include <cstdint>
#include <vector>

namespace jtc {
namespace analysis {

/// A set of local indices as a flat bitset.
class LocalSet {
public:
  LocalSet() = default;
  explicit LocalSet(uint32_t NumLocals)
      : Words((NumLocals + 63) / 64, 0) {}

  void set(uint32_t L) { Words[L / 64] |= uint64_t{1} << (L % 64); }
  void clear(uint32_t L) { Words[L / 64] &= ~(uint64_t{1} << (L % 64)); }
  bool test(uint32_t L) const {
    return L / 64 < Words.size() &&
           (Words[L / 64] >> (L % 64)) & 1;
  }

  /// Into |= From; returns true when anything changed.
  bool unionWith(const LocalSet &From) {
    if (Words.size() < From.Words.size())
      Words.resize(From.Words.size(), 0);
    bool Changed = false;
    for (uint32_t W = 0; W < From.Words.size(); ++W) {
      uint64_t Next = Words[W] | From.Words[W];
      Changed |= Next != Words[W];
      Words[W] = Next;
    }
    return Changed;
  }

  uint32_t count() const {
    uint32_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<uint32_t>(__builtin_popcountll(W));
    return N;
  }

  bool operator==(const LocalSet &O) const = default;

private:
  std::vector<uint64_t> Words;
};

/// Per-pc live-in sets for one method.
class LivenessFacts {
public:
  static LivenessFacts compute(const MethodCfg &Cfg);

  /// Locals live immediately before the instruction at \p Pc. A \p Pc of
  /// Code.size() (a fallthrough exit) yields the empty set.
  const LocalSet &liveIn(uint32_t Pc) const {
    return Pc < PerPc.size() ? PerPc[Pc] : Empty;
  }

  bool isLiveIn(uint32_t Pc, uint32_t Local) const {
    return liveIn(Pc).test(Local);
  }

private:
  std::vector<LocalSet> PerPc;
  LocalSet Empty;
};

} // namespace analysis
} // namespace jtc

#endif // JTC_ANALYSIS_LIVENESS_H
