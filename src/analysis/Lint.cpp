//===- analysis/Lint.cpp - Advisory bytecode lints ------------------------===//

#include "analysis/Lint.h"

#include <sstream>

namespace jtc {
namespace analysis {

const char *lintKindName(LintFinding::Kind K) {
  switch (K) {
  case LintFinding::Kind::UnreachableBlock:
    return "unreachable-block";
  case LintFinding::Kind::DeadBranch:
    return "dead-branch";
  case LintFinding::Kind::DeadStore:
    return "dead-store";
  case LintFinding::Kind::UnusedLocal:
    return "unused-local";
  case LintFinding::Kind::StackNeutralLoop:
    return "stack-neutral-loop";
  }
  return "unknown";
}

namespace {

/// Iterative Tarjan SCC over the CFG; returns the component id per block.
/// Components are numbered in reverse topological order.
std::vector<uint32_t> sccOf(const MethodCfg &Cfg, uint32_t &NumSccs) {
  const uint32_t N = Cfg.numBlocks();
  std::vector<uint32_t> Index(N, UINT32_MAX), Low(N, 0), Comp(N, UINT32_MAX);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Stack;
  std::vector<std::pair<uint32_t, uint32_t>> Work;
  uint32_t NextIndex = 0;
  NumSccs = 0;

  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != UINT32_MAX)
      continue;
    Work.emplace_back(Root, 0);
    while (!Work.empty()) {
      auto &[B, Next] = Work.back();
      if (Next == 0) {
        Index[B] = Low[B] = NextIndex++;
        Stack.push_back(B);
        OnStack[B] = true;
      }
      const std::vector<uint32_t> &Succs = Cfg.block(B).Succs;
      if (Next < Succs.size()) {
        uint32_t S = Succs[Next++];
        if (Index[S] == UINT32_MAX) {
          Work.emplace_back(S, 0);
        } else if (OnStack[S]) {
          Low[B] = std::min(Low[B], Index[S]);
        }
      } else {
        if (Low[B] == Index[B]) {
          uint32_t C = NumSccs++;
          uint32_t Popped;
          do {
            Popped = Stack.back();
            Stack.pop_back();
            OnStack[Popped] = false;
            Comp[Popped] = C;
          } while (Popped != B);
        }
        uint32_t Done = B;
        Work.pop_back();
        if (!Work.empty())
          Low[Work.back().first] =
              std::min(Low[Work.back().first], Low[Done]);
      }
    }
  }
  return Comp;
}

/// True when executing \p I could change anything a loop condition might
/// depend on (locals, heap, or control leaving through a call).
bool hasLoopEffect(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Istore:
  case Opcode::Iinc:
  case Opcode::PutField:
  case Opcode::Iastore:
  case Opcode::GetField: // Reads can vary if another iteration wrote; but
  case Opcode::Iaload:   // with no writes in the loop they are constant --
                         // still treated as effects to stay conservative,
                         // since the value feeds the condition.
  case Opcode::ArrayLength:
  case Opcode::New:
  case Opcode::NewArray:
  case Opcode::InvokeStatic:
  case Opcode::InvokeVirtual:
  case Opcode::Iprint:
  case Opcode::Halt:
  case Opcode::Return:
  case Opcode::Ireturn:
    return true;
  default:
    return false;
  }
}

} // namespace

std::vector<LintFinding> lintMethod(const MethodValueFacts &Values,
                                    const LivenessFacts &Liveness) {
  std::vector<LintFinding> Out;
  const MethodCfg &Cfg = Values.cfg();
  const Method &Fn = Cfg.method();
  const uint32_t MethodId = Cfg.methodId();

  auto finding = [&](LintFinding::Kind K, uint32_t Block, uint32_t Pc,
                     std::string Msg) {
    Out.push_back(LintFinding{K, MethodId, Block, Pc, std::move(Msg)});
  };

  // Unreachable blocks: structurally (no raw path) or via constant facts.
  for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
    if (Values.blockReachable(B))
      continue;
    std::ostringstream OS;
    OS << "block " << B << " (pc " << Cfg.block(B).Start << ".."
       << Cfg.block(B).End - 1 << ") is unreachable"
       << (Cfg.rpoIndex(B) == UINT32_MAX ? "" : " (constant condition)");
    finding(LintFinding::Kind::UnreachableBlock, B, Cfg.block(B).Start,
            OS.str());
  }

  // Dead branches and dead stores, per reachable instruction.
  for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
    Values.forEachInstruction(B, [&](uint32_t Pc, const FrameState &) {
      const Instruction &I = Fn.Code[Pc];
      BranchDecision D = Values.decisionAt(Pc);
      if (D != BranchDecision::Unknown) {
        std::ostringstream OS;
        OS << mnemonic(I.Op) << " at pc " << Pc << " is "
           << (D == BranchDecision::AlwaysTaken ? "always" : "never")
           << " taken";
        finding(LintFinding::Kind::DeadBranch, B, Pc, OS.str());
      }
      if (I.Op == Opcode::Istore || I.Op == Opcode::Iinc) {
        uint32_t L = static_cast<uint32_t>(I.A);
        if (!Liveness.isLiveIn(Pc + 1, L)) {
          std::ostringstream OS;
          OS << mnemonic(I.Op) << " to local " << L << " at pc " << Pc
             << " is dead (never read afterwards)";
          finding(LintFinding::Kind::DeadStore, B, Pc, OS.str());
        }
      }
    });
  }

  // Unused locals: non-argument locals never read anywhere.
  {
    std::vector<bool> Read(Fn.NumLocals, false), Written(Fn.NumLocals, false);
    for (const Instruction &I : Fn.Code) {
      if (I.Op == Opcode::Iload || I.Op == Opcode::Iinc)
        Read[static_cast<uint32_t>(I.A)] = true;
      if (I.Op == Opcode::Istore || I.Op == Opcode::Iinc)
        Written[static_cast<uint32_t>(I.A)] = true;
    }
    for (uint32_t L = Fn.NumArgs; L < Fn.NumLocals; ++L) {
      if (Read[L])
        continue;
      std::ostringstream OS;
      if (Written[L])
        OS << "local " << L << " is written but never read";
      else
        OS << "local " << L << " is never referenced";
      finding(LintFinding::Kind::UnusedLocal, 0, 0, OS.str());
    }
  }

  // Stack-neutral loops: a non-trivial SCC none of whose instructions can
  // change locals, the heap, or observable state cannot make progress --
  // its exit condition evaluates identically every iteration.
  {
    uint32_t NumSccs = 0;
    std::vector<uint32_t> Comp = sccOf(Cfg, NumSccs);
    std::vector<uint32_t> SccSize(NumSccs, 0);
    for (uint32_t B = 0; B < Cfg.numBlocks(); ++B)
      if (Comp[B] != UINT32_MAX)
        ++SccSize[Comp[B]];
    // Single-block components only loop if they have a self edge.
    std::vector<bool> SelfLoop(Cfg.numBlocks(), false);
    for (uint32_t B = 0; B < Cfg.numBlocks(); ++B)
      for (uint32_t S : Cfg.block(B).Succs)
        if (S == B)
          SelfLoop[B] = true;

    std::vector<bool> Effectful(NumSccs, false);
    std::vector<uint32_t> Header(NumSccs, UINT32_MAX);
    for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
      uint32_t C = Comp[B];
      if (C == UINT32_MAX)
        continue;
      if (Header[C] == UINT32_MAX ||
          Cfg.block(B).Start < Cfg.block(Header[C]).Start)
        Header[C] = B;
      const CfgBlock &Blk = Cfg.block(B);
      for (uint32_t Pc = Blk.Start; Pc < Blk.End; ++Pc)
        if (hasLoopEffect(Fn.Code[Pc]))
          Effectful[C] = true;
    }
    for (uint32_t C = 0; C < NumSccs; ++C) {
      if (Effectful[C])
        continue;
      uint32_t H = Header[C];
      bool IsLoop = SccSize[C] > 1 || (SccSize[C] == 1 && SelfLoop[H]);
      if (!IsLoop || !Values.blockReachable(H))
        continue;
      std::ostringstream OS;
      OS << "loop headed at block " << H << " (pc " << Cfg.block(H).Start
         << ") has no effects; its exit condition cannot change";
      finding(LintFinding::Kind::StackNeutralLoop, H, Cfg.block(H).Start,
              OS.str());
    }
  }

  return Out;
}

} // namespace analysis
} // namespace jtc
