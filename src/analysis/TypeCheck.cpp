//===- analysis/TypeCheck.cpp - Typed verification pass -------------------===//

#include "analysis/TypeCheck.h"

#include <sstream>

namespace jtc {
namespace analysis {

namespace {

class Checker {
public:
  Checker(const MethodValueFacts &Facts, std::vector<TypeError> &Errors)
      : Facts(Facts), Errors(Errors) {}

  void checkAll() {
    const MethodCfg &Cfg = Facts.cfg();
    for (uint32_t B = 0; B < Cfg.numBlocks(); ++B)
      Facts.forEachInstruction(B, [&](uint32_t Pc, const FrameState &S) {
        check(Pc, S);
      });
  }

private:
  const MethodValueFacts &Facts;
  std::vector<TypeError> &Errors;

  void error(uint32_t Pc, const std::string &Msg) {
    Errors.push_back(TypeError{Pc, Msg});
  }

  const AbstractValue &fromTop(const FrameState &S, uint32_t Depth) const {
    return S.Stack[S.Stack.size() - 1 - Depth];
  }

  /// A position that consumes an integer: definite references and
  /// conflicting merges are rejected; Top and any Int (including 0) pass.
  void demandInt(uint32_t Pc, const AbstractValue &V, const char *What) {
    if (V.isRef()) {
      std::ostringstream OS;
      OS << "reference value " << V.str() << " used as " << What;
      error(Pc, OS.str());
    } else if (V.isConflict()) {
      std::ostringstream OS;
      OS << "type-inconsistent merge consumed as " << What;
      error(Pc, OS.str());
    }
  }

  /// A position that dereferences: the constant 0 (always null) and
  /// definite non-zero integers are rejected, as are conflicting merges.
  void demandReceiver(uint32_t Pc, const AbstractValue &V, const char *What) {
    if (V.isZero()) {
      std::ostringstream OS;
      OS << What << " receiver is always null";
      error(Pc, OS.str());
    } else if (V.isInt()) {
      std::ostringstream OS;
      OS << "integer value " << V.str() << " used as " << What
         << " receiver";
      error(Pc, OS.str());
    } else if (V.isConflict()) {
      std::ostringstream OS;
      OS << "type-inconsistent merge used as " << What << " receiver";
      error(Pc, OS.str());
    }
  }

  void check(uint32_t Pc, const FrameState &S) {
    const Method &Fn = Facts.cfg().method();
    const Module &M = Facts.cfg().module();
    const Instruction &I = Fn.Code[Pc];
    switch (I.Op) {
    case Opcode::Iadd:
    case Opcode::Isub:
    case Opcode::Imul:
    case Opcode::Idiv:
    case Opcode::Irem:
    case Opcode::Ishl:
    case Opcode::Ishr:
    case Opcode::Iushr:
    case Opcode::Iand:
    case Opcode::Ior:
    case Opcode::Ixor:
      demandInt(Pc, fromTop(S, 1), "arithmetic operand");
      demandInt(Pc, fromTop(S, 0), "arithmetic operand");
      break;
    case Opcode::Ineg:
      demandInt(Pc, fromTop(S, 0), "arithmetic operand");
      break;
    case Opcode::Iinc:
      demandInt(Pc, S.Locals[static_cast<uint32_t>(I.A)], "iinc target");
      break;
    case Opcode::Tableswitch:
      demandInt(Pc, fromTop(S, 0), "switch selector");
      break;
    case Opcode::NewArray:
      demandInt(Pc, fromTop(S, 0), "array length");
      break;
    case Opcode::GetField:
      demandReceiver(Pc, fromTop(S, 0), "getfield");
      break;
    case Opcode::PutField:
      demandReceiver(Pc, fromTop(S, 1), "putfield");
      break;
    case Opcode::Iaload:
      demandReceiver(Pc, fromTop(S, 1), "iaload");
      break;
    case Opcode::Iastore:
      demandReceiver(Pc, fromTop(S, 2), "iastore");
      break;
    case Opcode::ArrayLength:
      demandReceiver(Pc, fromTop(S, 0), "arraylength");
      break;
    case Opcode::InvokeVirtual: {
      const SlotInfo &Slot = M.Slots[static_cast<uint32_t>(I.A)];
      if (S.Stack.size() >= Slot.ArgCount)
        demandReceiver(Pc, fromTop(S, Slot.ArgCount - 1), "invokevirtual");
      break;
    }
    case Opcode::Ireturn: {
      const AbstractValue &V = fromTop(S, 0);
      if (Fn.RetType == TypeTag::Int) {
        if (V.isRef()) {
          std::ostringstream OS;
          OS << "return type mismatch: returns reference " << V.str()
             << " from a method declared returns=int";
          error(Pc, OS.str());
        } else if (V.isConflict()) {
          error(Pc, "return type mismatch: type-inconsistent merge returned "
                    "from a method declared returns=int");
        }
      } else {
        // returns=ref is a strong promise: callers type the result as a
        // reference-or-null, so the operand must provably be one.
        if (!V.isRef() && !V.isZero()) {
          std::ostringstream OS;
          OS << "return type mismatch: value " << V.str()
             << " not provably a reference from a method declared "
                "returns=ref";
          error(Pc, OS.str());
        }
      }
      break;
    }
    default:
      break;
    }
  }
};

} // namespace

std::vector<TypeError> checkMethodTypes(const MethodValueFacts &Facts) {
  std::vector<TypeError> Errors;
  Checker(Facts, Errors).checkAll();
  return Errors;
}

} // namespace analysis
} // namespace jtc
