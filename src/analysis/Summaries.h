//===- analysis/Summaries.h - Per-method effect summaries -------*- C++ -*-===//
///
/// \file
/// Conservative per-method effect summaries propagated over the call
/// graph: does a method read or write the heap, allocate, possibly trap,
/// print, or halt the VM? Virtual calls merge the summaries of every
/// implementation of the slot; methods involved in call-graph cycles are
/// marked may-trap because unbounded recursion can exhaust the frame
/// stack. A method with no effect bits set is pure: executing it can only
/// consume time and produce a return value.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_ANALYSIS_SUMMARIES_H
#define JTC_ANALYSIS_SUMMARIES_H

#include "bytecode/Program.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace jtc {
namespace analysis {

struct EffectSummary {
  bool ReadsHeap = false;
  bool WritesHeap = false;
  bool Allocates = false;
  bool MayTrap = false;
  bool Prints = false;
  bool MayHalt = false;

  /// No observable effect besides the returned value.
  bool pure() const {
    return !ReadsHeap && !WritesHeap && !Allocates && !MayTrap && !Prints &&
           !MayHalt;
  }

  /// Into |= From; returns true when anything changed.
  bool merge(const EffectSummary &O) {
    bool Changed =
        (O.ReadsHeap && !ReadsHeap) || (O.WritesHeap && !WritesHeap) ||
        (O.Allocates && !Allocates) || (O.MayTrap && !MayTrap) ||
        (O.Prints && !Prints) || (O.MayHalt && !MayHalt);
    ReadsHeap |= O.ReadsHeap;
    WritesHeap |= O.WritesHeap;
    Allocates |= O.Allocates;
    MayTrap |= O.MayTrap;
    Prints |= O.Prints;
    MayHalt |= O.MayHalt;
    return Changed;
  }

  /// Compact rendering like "pure" or "reads,traps".
  std::string str() const;
};

/// Summaries for every method of a module.
class ModuleSummaries {
public:
  static ModuleSummaries compute(const Module &M);

  const EffectSummary &method(uint32_t Id) const { return Summaries[Id]; }
  uint32_t numMethods() const {
    return static_cast<uint32_t>(Summaries.size());
  }

  /// True when the method participates in a call-graph cycle (directly or
  /// mutually recursive).
  bool isRecursive(uint32_t Id) const { return Recursive[Id]; }

  /// Effect facts for one call instruction, i.e. per trace op rather than
  /// per enclosing method: the merged summary of every method \p I can
  /// dispatch to. InvokeStatic resolves to its single target; InvokeVirtual
  /// merges every implementation of the slot across the module's vtables
  /// (and is always MayTrap: dispatch itself can fail on a null or
  /// non-object receiver). Returns nullopt when \p I is not a call or the
  /// virtual slot has no implementation anywhere.
  std::optional<EffectSummary> callSite(const Module &M,
                                        const Instruction &I) const;

private:
  std::vector<EffectSummary> Summaries;
  std::vector<bool> Recursive;
};

} // namespace analysis
} // namespace jtc

#endif // JTC_ANALYSIS_SUMMARIES_H
