//===- analysis/Cfg.cpp - Per-method control-flow graph -------------------===//

#include "analysis/Cfg.h"

#include <algorithm>
#include <cassert>

namespace jtc {
namespace analysis {

namespace {

/// Appends every explicit control-flow target of the instruction at \p Pc
/// (branch targets, switch cases); fallthrough is handled by the caller.
void appendTargets(const Method &M, uint32_t Pc, std::vector<uint32_t> &Out) {
  const Instruction &I = M.Code[Pc];
  switch (opKind(I.Op)) {
  case OpKind::Branch:
  case OpKind::Jump:
    Out.push_back(static_cast<uint32_t>(I.A));
    break;
  case OpKind::Switch: {
    const SwitchTable &T = M.SwitchTables[static_cast<uint32_t>(I.A)];
    Out.push_back(T.DefaultTarget);
    Out.insert(Out.end(), T.Targets.begin(), T.Targets.end());
    break;
  }
  case OpKind::Normal:
  case OpKind::Call:
  case OpKind::Ret:
  case OpKind::End:
    break;
  }
}

/// True when control may continue at Pc+1 after executing \p I.
bool fallsThrough(const Instruction &I) {
  switch (opKind(I.Op)) {
  case OpKind::Normal:
  case OpKind::Branch:
  case OpKind::Call:
    return true;
  case OpKind::Jump:
  case OpKind::Switch:
  case OpKind::Ret:
  case OpKind::End:
    return false;
  }
  return false;
}

} // namespace

MethodCfg::MethodCfg(const Module &M, uint32_t MethodId)
    : Mod(&M), MethodIdx(MethodId) {
  const Method &Fn = M.Methods[MethodId];
  uint32_t N = static_cast<uint32_t>(Fn.Code.size());
  assert(N > 0 && "cannot build a CFG for an empty method");

  // Mark leaders: entry, every explicit target, and the instruction after
  // any block-ending opcode.
  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  std::vector<uint32_t> Targets;
  for (uint32_t Pc = 0; Pc < N; ++Pc) {
    Targets.clear();
    appendTargets(Fn, Pc, Targets);
    for (uint32_t T : Targets) {
      assert(T < N && "branch target out of range; verify first");
      Leader[T] = true;
    }
    if (endsBlock(Fn.Code[Pc].Op) && Pc + 1 < N)
      Leader[Pc + 1] = true;
  }

  // Materialize blocks and the pc -> block map.
  BlockOfPc.assign(N, 0);
  for (uint32_t Pc = 0; Pc < N; ++Pc) {
    if (Leader[Pc]) {
      if (!Blocks.empty())
        Blocks.back().End = Pc;
      Blocks.push_back(CfgBlock{Pc, N, {}, {}});
    }
    BlockOfPc[Pc] = static_cast<uint32_t>(Blocks.size() - 1);
  }

  // Edges. A block's last instruction decides its successors; blocks that
  // end merely because the next pc is a leader fall through.
  for (uint32_t B = 0; B < Blocks.size(); ++B) {
    CfgBlock &Blk = Blocks[B];
    uint32_t LastPc = Blk.End - 1;
    Targets.clear();
    appendTargets(Fn, LastPc, Targets);
    if (fallsThrough(Fn.Code[LastPc]) && Blk.End < N)
      Targets.push_back(Blk.End);
    // Dedup (a switch may list the same target many times) while keeping
    // first-occurrence order so the fallthrough/default stay predictable.
    for (uint32_t T : Targets) {
      uint32_t S = BlockOfPc[T];
      assert(Blocks[S].Start == T && "edge into the middle of a block");
      if (std::find(Blk.Succs.begin(), Blk.Succs.end(), S) == Blk.Succs.end())
        Blk.Succs.push_back(S);
    }
    for (uint32_t S : Blk.Succs)
      Blocks[S].Preds.push_back(B);
  }

  // Reverse post-order via iterative DFS from the entry block.
  RpoIndex.assign(Blocks.size(), UINT32_MAX);
  std::vector<uint8_t> State(Blocks.size(), 0); // 0=unseen 1=open 2=done
  std::vector<std::pair<uint32_t, uint32_t>> Stack; // (block, next-succ)
  std::vector<uint32_t> PostOrder;
  Stack.emplace_back(0, 0);
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < Blocks[B].Succs.size()) {
      uint32_t S = Blocks[B].Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
    } else {
      State[B] = 2;
      PostOrder.push_back(B);
      Stack.pop_back();
    }
  }
  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;
}

} // namespace analysis
} // namespace jtc
