//===- analysis/Dataflow.h - Iterative worklist solver ----------*- C++ -*-===//
///
/// \file
/// A small generic fixpoint engine over a MethodCfg. An analysis supplies
/// its state type and three operations; the solver owns scheduling:
/// blocks are processed from a worklist prioritized by reverse post-order
/// (post-order for backward problems), which visits loop bodies before
/// re-examining their heads and typically reaches the fixpoint in a
/// handful of passes.
///
/// The analysis concept:
///
///   struct MyAnalysis {
///     using State = ...;                       // copyable
///     static constexpr bool Forward = true;    // direction
///     State boundary();                        // entry (or exit) state
///     State initial();                         // bottom for other blocks
///     void transfer(uint32_t Block, State &S); // apply block's effect
///     // Join From into Into; return true when Into changed. Widen is
///     // set once a block has been re-joined often enough that infinite
///     // ascending chains (ranges) must be cut off.
///     bool join(State &Into, const State &From, bool Widen);
///     // Optional; when present the solver calls it per edge instead of
///     // propagating the post-transfer state verbatim. Returning nullopt
///     // prunes the edge -- this is how constant conditions make branch
///     // arms unreachable.
///     std::optional<State> edgeState(uint32_t From, uint32_t To,
///                                    const State &AfterTransfer);
///   };
///
/// solve() returns the per-block input states (state at block entry for
/// forward problems, at block exit for backward ones); callers re-run the
/// transfer locally when they need per-instruction facts.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_ANALYSIS_DATAFLOW_H
#define JTC_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

namespace jtc {
namespace analysis {

/// Number of times a block may be re-joined before joins start widening.
inline constexpr uint32_t WidenAfterJoins = 4;

template <typename Analysis>
std::vector<typename Analysis::State> solve(const MethodCfg &Cfg,
                                            Analysis &A) {
  const uint32_t N = Cfg.numBlocks();
  std::vector<typename Analysis::State> In;
  In.reserve(N);
  for (uint32_t B = 0; B < N; ++B)
    In.push_back(A.initial());

  // Priority for backward problems is reverse RPO; unreachable blocks
  // (UINT32_MAX priority) sort last either way and are only processed if
  // an edge actually reaches them.
  auto priority = [&](uint32_t B) {
    uint32_t P = Cfg.rpoIndex(B);
    if (!Analysis::Forward && P != UINT32_MAX)
      P = static_cast<uint32_t>(Cfg.rpo().size()) - 1 - P;
    return P;
  };

  std::set<std::pair<uint32_t, uint32_t>> Worklist; // (priority, block)
  std::vector<uint32_t> JoinCount(N, 0);

  auto enqueue = [&](uint32_t B) { Worklist.insert({priority(B), B}); };

  if constexpr (Analysis::Forward) {
    typename Analysis::State Boundary = A.boundary();
    A.join(In[0], Boundary, false);
    enqueue(0);
  } else {
    // Backward: every block whose terminator leaves the method (or that
    // has no successors at all) gets the boundary state. Every block is
    // enqueued once regardless: backward problems have no reachability
    // pruning, and seeding only the exits deadlocks when an exit's state
    // is empty -- the join into its predecessors changes nothing, so the
    // rest of the graph would never be processed and its uses never seen.
    typename Analysis::State Boundary = A.boundary();
    for (uint32_t B = 0; B < N; ++B) {
      if (Cfg.block(B).Succs.empty())
        A.join(In[B], Boundary, false);
      enqueue(B);
    }
  }

  while (!Worklist.empty()) {
    uint32_t B = Worklist.begin()->second;
    Worklist.erase(Worklist.begin());

    typename Analysis::State S = In[B];
    A.transfer(B, S);

    const std::vector<uint32_t> &Next =
        Analysis::Forward ? Cfg.block(B).Succs : Cfg.block(B).Preds;
    for (uint32_t T : Next) {
      bool Widen = ++JoinCount[T] > WidenAfterJoins * (1 + Next.size());
      if constexpr (requires { A.edgeState(B, T, S); }) {
        std::optional<typename Analysis::State> Edge = A.edgeState(B, T, S);
        if (!Edge)
          continue;
        if (A.join(In[T], *Edge, Widen))
          enqueue(T);
      } else {
        if (A.join(In[T], S, Widen))
          enqueue(T);
      }
    }
  }
  return In;
}

} // namespace analysis
} // namespace jtc

#endif // JTC_ANALYSIS_DATAFLOW_H
