//===- analysis/Lint.h - Advisory bytecode lints ----------------*- C++ -*-===//
///
/// \file
/// Advisory findings derived from the dataflow facts: code that is legal
/// (it verifies and runs) but probably not what the author meant. These
/// back the `jtc-analyze` CLI; none of them are verification errors.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_ANALYSIS_LINT_H
#define JTC_ANALYSIS_LINT_H

#include "analysis/Liveness.h"
#include "analysis/ValueAnalysis.h"

#include <string>
#include <vector>

namespace jtc {
namespace analysis {

struct LintFinding {
  enum class Kind : uint8_t {
    UnreachableBlock, ///< No path from entry (structurally or by constants).
    DeadBranch,       ///< Conditional branch/switch with a provable outcome.
    DeadStore,        ///< istore/iinc whose value is never read afterwards.
    UnusedLocal,      ///< Non-argument local never read in the method.
    StackNeutralLoop, ///< Loop whose body cannot change any state that
                      ///< could affect its exit condition.
  };

  Kind K = Kind::UnreachableBlock;
  uint32_t MethodId = 0;
  uint32_t Block = 0; ///< Block id (or the loop header for loops).
  uint32_t Pc = 0;    ///< Anchor instruction.
  std::string Message;
};

/// Stable lowercase identifier for JSON output, e.g. "dead-store".
const char *lintKindName(LintFinding::Kind K);

/// Lints one method given its analysis facts.
std::vector<LintFinding> lintMethod(const MethodValueFacts &Values,
                                    const LivenessFacts &Liveness);

} // namespace analysis
} // namespace jtc

#endif // JTC_ANALYSIS_LINT_H
