//===- analysis/Analysis.h - Umbrella + per-module bundle -------*- C++ -*-===//
///
/// \file
/// Convenience entry point: ModuleAnalysis computes and owns the CFG,
/// value facts and liveness for every method of a module plus the
/// call-graph effect summaries. Requires a module that already passed
/// the structural + height verifier pass (see bytecode/Verifier.h);
/// building analyses over malformed code is undefined.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_ANALYSIS_ANALYSIS_H
#define JTC_ANALYSIS_ANALYSIS_H

#include "analysis/Alias.h"
#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"
#include "analysis/Lint.h"
#include "analysis/Liveness.h"
#include "analysis/Summaries.h"
#include "analysis/TypeCheck.h"
#include "analysis/Value.h"
#include "analysis/ValueAnalysis.h"

#include <memory>
#include <vector>

namespace jtc {
namespace analysis {

/// All facts for one method. Owns the CFG the fact objects point into.
struct MethodAnalysis {
  explicit MethodAnalysis(const Module &M, uint32_t MethodId)
      : Cfg(M, MethodId), Values(MethodValueFacts::compute(Cfg)),
        Liveness(LivenessFacts::compute(Cfg)) {}

  MethodCfg Cfg;
  MethodValueFacts Values;
  LivenessFacts Liveness;
};

/// Facts for every method of a module.
class ModuleAnalysis {
public:
  /// \p M must outlive the result and must be structurally verified.
  static ModuleAnalysis compute(const Module &M) {
    ModuleAnalysis A;
    A.PerMethod.reserve(M.Methods.size());
    for (uint32_t F = 0; F < M.Methods.size(); ++F)
      A.PerMethod.push_back(M.Methods[F].Code.empty()
                                ? nullptr
                                : std::make_unique<MethodAnalysis>(M, F));
    A.Effects = ModuleSummaries::compute(M);
    return A;
  }

  /// Null for (malformed) empty methods.
  const MethodAnalysis *method(uint32_t Id) const {
    return PerMethod[Id].get();
  }
  uint32_t numMethods() const {
    return static_cast<uint32_t>(PerMethod.size());
  }
  const ModuleSummaries &summaries() const { return Effects; }

private:
  // unique_ptr keeps each MethodAnalysis at a stable address; the fact
  // objects hold pointers into their sibling Cfg.
  std::vector<std::unique_ptr<MethodAnalysis>> PerMethod;
  ModuleSummaries Effects;
};

} // namespace analysis
} // namespace jtc

#endif // JTC_ANALYSIS_ANALYSIS_H
