//===- analysis/Liveness.cpp - Backward liveness of locals ----------------===//

#include "analysis/Liveness.h"
#include "analysis/Dataflow.h"

namespace jtc {
namespace analysis {

namespace {

/// Applies one instruction's backward effect: live = (live \ defs) u uses.
void stepBackward(const Instruction &I, LocalSet &Live) {
  switch (I.Op) {
  case Opcode::Iload:
    Live.set(static_cast<uint32_t>(I.A));
    break;
  case Opcode::Istore:
    Live.clear(static_cast<uint32_t>(I.A));
    break;
  case Opcode::Iinc:
    // Reads and writes the local; the read keeps it live.
    Live.set(static_cast<uint32_t>(I.A));
    break;
  default:
    break; // Everything else only touches the operand stack / heap.
  }
}

class LivenessProblem {
public:
  using State = LocalSet;
  static constexpr bool Forward = false;

  explicit LivenessProblem(const MethodCfg &Cfg) : Cfg(Cfg) {}

  State boundary() const { return LocalSet(Cfg.method().NumLocals); }
  State initial() const { return LocalSet(Cfg.method().NumLocals); }

  void transfer(uint32_t Block, State &S) {
    const CfgBlock &B = Cfg.block(Block);
    const Method &Fn = Cfg.method();
    for (uint32_t Pc = B.End; Pc > B.Start; --Pc)
      stepBackward(Fn.Code[Pc - 1], S);
  }

  bool join(State &Into, const State &From, bool /*Widen*/) {
    return Into.unionWith(From);
  }

private:
  const MethodCfg &Cfg;
};

} // namespace

LivenessFacts LivenessFacts::compute(const MethodCfg &Cfg) {
  LivenessProblem P(Cfg);
  // For a backward problem the solver returns the live-out set of every
  // block; replay each block backward to recover per-pc live-in sets.
  std::vector<LocalSet> Out = solve(Cfg, P);

  LivenessFacts Facts;
  const Method &Fn = Cfg.method();
  Facts.Empty = LocalSet(Fn.NumLocals);
  Facts.PerPc.assign(Fn.Code.size(), LocalSet(Fn.NumLocals));
  for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
    const CfgBlock &Blk = Cfg.block(B);
    LocalSet Live = Out[B];
    for (uint32_t Pc = Blk.End; Pc > Blk.Start; --Pc) {
      stepBackward(Fn.Code[Pc - 1], Live);
      Facts.PerPc[Pc - 1] = Live;
    }
  }
  return Facts;
}

} // namespace analysis
} // namespace jtc
