//===- analysis/Alias.h - Field-sensitive alias & escape facts --*- C++ -*-===//
///
/// \file
/// Field-sensitive alias and escape analysis over allocation sites, and
/// the trace-level memory facts it licenses.
///
/// Two consumers share this module:
///
///  * `analyzeMethodEscapes` runs an allocation-site points-to pass over
///    one method: every New/NewArray is a site, locals and stack slots
///    carry may-point-to bitsets, and each site is classified on the
///    {NoEscape, ArgEscape, GlobalEscape} lattice. Call sites are seeded
///    from the per-call-site `ModuleSummaries::callSite` facts: passing a
///    site to a callee that may write the heap is a global escape, to any
///    other callee an argument escape.
///
///  * `analyzeTraceMemory` walks a trace's block sequence with the value
///    analysis' per-instruction frame states and decides, per heap
///    access, which dynamic checks are provably redundant on the trace
///    path: a definitely-non-null receiver of a known shape needs no
///    liveness/class check (`MemElide::NullOnly` keeps only the bounds
///    check; `MemElide::Full` drops every check). Virtual-call receivers
///    are non-null by dispatch (the call would have trapped), a
///    trace-local fact the static analysis cannot see.
///
/// `analyzeModuleAliasing` bundles both into the per-module statistics
/// and unsupported-pattern diagnostics surfaced by `jtc-analyze`.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_ANALYSIS_ALIAS_H
#define JTC_ANALYSIS_ALIAS_H

#include "analysis/Cfg.h"
#include "analysis/Summaries.h"
#include "analysis/ValueAnalysis.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace jtc {
namespace analysis {

/// Where an allocation may become visible outside its allocating frame.
enum class EscapeClass : uint8_t {
  NoEscape,     ///< Never leaves the frame: dead at every return.
  ArgEscape,    ///< Reaches a callee or the caller (returned), heap-free.
  GlobalEscape, ///< Stored into the heap or passed to a heap-writing callee.
};

const char *escapeClassName(EscapeClass E);

/// One New/NewArray instruction and its escape classification.
struct AllocSite {
  uint32_t Pc = 0;
  bool IsArray = false;
  EscapeClass Escape = EscapeClass::NoEscape;
};

/// Escape results for one method.
struct MethodEscapeFacts {
  std::vector<AllocSite> Sites;
  /// More than 64 sites: the untracked tail is conservatively
  /// GlobalEscape and excluded from points-to tracking.
  bool Overflowed = false;
};

/// Allocation-site points-to + escape pass for one method. \p Values must
/// belong to \p Cfg.
MethodEscapeFacts analyzeMethodEscapes(const MethodCfg &Cfg,
                                       const MethodValueFacts &Values,
                                       const ModuleSummaries &Summaries);

/// Which dynamic checks of a heap access are provably redundant.
enum class MemElide : uint8_t {
  NullOnly, ///< Skip the liveness/class check; keep the bounds check.
  Full,     ///< Skip every check: the access cannot trap.
};

/// One elidable heap access inside a trace, addressed by the trace's
/// block index and the instruction's pc in its method.
struct TraceMemFact {
  uint32_t BlockIndex = 0;
  uint32_t Pc = 0;
  MemElide Elide = MemElide::NullOnly;
};

/// Aggregate counters for heap-access classification; the non-elidable
/// buckets name the unsupported pattern that blocked the proof.
struct AliasStats {
  uint64_t MemOps = 0;        ///< Heap accesses examined.
  uint64_t ElidedNull = 0;    ///< Liveness/class check elidable.
  uint64_t ElidedFull = 0;    ///< All checks elidable.
  uint64_t MayNullBase = 0;   ///< Blocked: base may be null.
  uint64_t UnknownBase = 0;   ///< Blocked: base shape unknown (top/any).
  uint64_t AllocSites = 0;
  uint64_t NoEscape = 0;
  uint64_t ArgEscape = 0;
  uint64_t GlobalEscape = 0;
};

/// One block of a trace, decoupled from the profile layer's block table.
struct TraceBlockSpan {
  uint32_t MethodId = 0;
  uint32_t StartPc = 0;
  uint32_t EndPc = 0;
};

/// Provider of per-method value facts (null when the method has none).
using ValueFactsFn = std::function<const MethodValueFacts *(uint32_t)>;

/// Walks \p Blocks as the trace executes them (tracking the frame stack
/// across the calls and returns that separate blocks) and returns every
/// heap access whose checks the analysis can prove redundant, ordered by
/// position. \p Stats, when given, accumulates classification counters.
std::vector<TraceMemFact> analyzeTraceMemory(const Module &M,
                                             const ValueFactsFn &Facts,
                                             const std::vector<TraceBlockSpan> &Blocks,
                                             AliasStats *Stats = nullptr);

/// Per-module report for jtc-analyze.
struct ModuleAliasReport {
  AliasStats Stats;
  /// Human-readable unsupported-pattern diagnostics (capped).
  std::vector<std::string> Diagnostics;
  /// Per-method escape facts, indexed by method id.
  std::vector<MethodEscapeFacts> Escapes;
};

ModuleAliasReport analyzeModuleAliasing(const Module &M,
                                        const ValueFactsFn &Facts,
                                        const ModuleSummaries &Summaries);

} // namespace analysis
} // namespace jtc

#endif // JTC_ANALYSIS_ALIAS_H
