//===- analysis/Value.h - Abstract value lattice ----------------*- C++ -*-===//
///
/// \file
/// The abstract value domain shared by the typed and constant/range
/// analyses: a product of a type component and, for integers, a constant
/// range. The VM's runtime values are untyped int64 slots (references are
/// opaque nonzero handles, 0 is null), so the lattice models what can be
/// proved statically about a slot:
///
///   Bot                      -- unreachable / no value
///   Int [Lo, Hi]             -- definitely an integer the program computed
///                               (constants, arithmetic results); [0,0] is
///                               the constant zero, which doubles as null
///   Ref {classes, array?, null?} -- definitely a reference produced by an
///                               allocation (or null when MayBeNull)
///   Conflict                 -- join of incompatible definite facts
///                               (e.g. a nonzero integer and a reference);
///                               using such a value in a type-demanding
///                               position is a verification error
///   Top                      -- unknown (method arguments, heap loads)
///
/// The join is sound for may-analysis: every dynamic value a program can
/// observe at a point is described by the static value there. The
/// constant zero joins into references as "may be null" because 0 *is*
/// the null reference.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_ANALYSIS_VALUE_H
#define JTC_ANALYSIS_VALUE_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

namespace jtc {
namespace analysis {

/// A may-set of class ids, with array cells tracked separately. Class ids
/// at or above 64 collapse into the Any overflow bit; modules that large
/// simply get coarser receiver facts.
class ClassSet {
public:
  static constexpr uint32_t MaxTracked = 64;

  void insert(uint32_t ClassId) {
    if (ClassId >= MaxTracked)
      Any = true;
    else
      Bits |= uint64_t{1} << ClassId;
  }

  bool any() const { return Any; }
  bool empty() const { return !Any && Bits == 0; }

  /// True when \p ClassId may be in the set.
  bool mayContain(uint32_t ClassId) const {
    return Any || (ClassId < MaxTracked && (Bits & (uint64_t{1} << ClassId)));
  }

  /// Visits every tracked id; only meaningful when !any().
  template <typename Fn> void forEach(Fn &&F) const {
    for (uint32_t C = 0; C < MaxTracked; ++C)
      if (Bits & (uint64_t{1} << C))
        F(C);
  }

  void merge(const ClassSet &O) {
    Bits |= O.Bits;
    Any |= O.Any;
  }

  bool operator==(const ClassSet &O) const = default;

private:
  uint64_t Bits = 0;
  bool Any = false;
};

struct AbstractValue {
  enum class Kind : uint8_t { Bot, Int, Ref, Conflict, Top };

  static constexpr int64_t MinInt = std::numeric_limits<int64_t>::min();
  static constexpr int64_t MaxInt = std::numeric_limits<int64_t>::max();

  Kind K = Kind::Bot;
  /// Kind::Int: inclusive range of possible values.
  int64_t Lo = 0;
  int64_t Hi = 0;
  /// Kind::Ref: which allocations may flow here.
  ClassSet Classes;
  bool MayBeArray = false;
  bool MayBeNull = false;

  static AbstractValue bot() { return {}; }
  static AbstractValue top() {
    AbstractValue V;
    V.K = Kind::Top;
    return V;
  }
  static AbstractValue conflict() {
    AbstractValue V;
    V.K = Kind::Conflict;
    return V;
  }
  static AbstractValue intRange(int64_t Lo, int64_t Hi) {
    AbstractValue V;
    V.K = Kind::Int;
    V.Lo = Lo;
    V.Hi = Hi;
    return V;
  }
  static AbstractValue intConst(int64_t C) { return intRange(C, C); }
  static AbstractValue intAny() { return intRange(MinInt, MaxInt); }
  static AbstractValue objectRef(uint32_t ClassId) {
    AbstractValue V;
    V.K = Kind::Ref;
    V.Classes.insert(ClassId);
    return V;
  }
  static AbstractValue arrayRef() {
    AbstractValue V;
    V.K = Kind::Ref;
    V.MayBeArray = true;
    return V;
  }
  /// A reference about which nothing further is known (any class, array
  /// or null) -- the result of a declared-ref call.
  static AbstractValue anyRef() {
    AbstractValue V;
    V.K = Kind::Ref;
    V.Classes = ClassSet();
    V.MayBeArray = true;
    V.MayBeNull = true;
    AnyClasses(V.Classes);
    return V;
  }

  bool isBot() const { return K == Kind::Bot; }
  bool isTop() const { return K == Kind::Top; }
  bool isInt() const { return K == Kind::Int; }
  bool isRef() const { return K == Kind::Ref; }
  bool isConflict() const { return K == Kind::Conflict; }
  bool isConst() const { return isInt() && Lo == Hi; }
  /// The constant zero, i.e. the null reference spelled as an integer.
  bool isZero() const { return isConst() && Lo == 0; }
  /// A reference that is provably never null.
  bool isNonNullRef() const { return isRef() && !MayBeNull; }

  /// Least upper bound. Returns true when *this changed (for fixpoint
  /// detection). \p Widen replaces growing ranges with the full range so
  /// loops converge.
  bool join(const AbstractValue &O, bool Widen = false) {
    if (O.K == Kind::Bot)
      return false;
    if (K == Kind::Bot) {
      *this = O;
      return true;
    }
    if (K == Kind::Top)
      return false;
    if (O.K == Kind::Top) {
      *this = top();
      return true;
    }
    if (K == Kind::Conflict)
      return false;
    if (O.K == Kind::Conflict) {
      *this = conflict();
      return true;
    }
    if (K == Kind::Int && O.K == Kind::Int) {
      int64_t NLo = std::min(Lo, O.Lo), NHi = std::max(Hi, O.Hi);
      if (Widen && (NLo < Lo || NHi > Hi)) {
        if (NLo < Lo)
          NLo = MinInt;
        if (NHi > Hi)
          NHi = MaxInt;
      }
      bool Changed = NLo != Lo || NHi != Hi;
      Lo = NLo;
      Hi = NHi;
      return Changed;
    }
    if (K == Kind::Ref && O.K == Kind::Ref) {
      AbstractValue Before = *this;
      Classes.merge(O.Classes);
      MayBeArray |= O.MayBeArray;
      MayBeNull |= O.MayBeNull;
      return !(*this == Before);
    }
    // Int vs Ref: the constant zero is the null reference, so it folds
    // into the reference as nullability; any other integer conflicts.
    if (K == Kind::Ref && O.isZero()) {
      if (MayBeNull)
        return false;
      MayBeNull = true;
      return true;
    }
    if (isZero() && O.K == Kind::Ref) {
      AbstractValue V = O;
      V.MayBeNull = true;
      *this = V;
      return true;
    }
    *this = conflict();
    return true;
  }

  bool operator==(const AbstractValue &O) const = default;

  /// Short diagnostic rendering, e.g. "int[0,63]", "ref{2}", "top".
  std::string str() const;

private:
  static void AnyClasses(ClassSet &S) {
    S.insert(MaxTrackedSentinel);
  }
  static constexpr uint32_t MaxTrackedSentinel = ClassSet::MaxTracked;
};

} // namespace analysis
} // namespace jtc

#endif // JTC_ANALYSIS_VALUE_H
