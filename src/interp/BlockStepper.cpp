//===- interp/BlockStepper.cpp --------------------------------------------===//

#include "interp/BlockStepper.h"

using namespace jtc;

BlockStepper::BlockStepper(const PreparedModule &PM, Machine &Mach)
    : PM(&PM), Mach(&Mach) {}

void BlockStepper::start() {
  Mach->start(PM->module().EntryMethod);
  Cur = PM->entryBlock();
  Instructions = 0;
}

/// Dynamic checks one elided heap access skips: the liveness/class check
/// always, plus the bounds check when Kind is Full (ArrayLength has no
/// bounds check to begin with).
static uint64_t elisionWeight(Opcode Op, uint8_t Kind) {
  if (Kind != MemElision::Full || Op == Opcode::ArrayLength)
    return 1;
  return 2;
}

BlockStepper::StepStatus BlockStepper::step() {
  assert(Cur != InvalidBlockId && "step() before start() or after finish");
  const BasicBlock &BB = PM->block(Cur);
  const Method &M = PM->module().Methods[BB.MethodId];

  // Consume the one-shot elision span armed for this block (null on the
  // vast majority of steps: one predictable branch per instruction).
  const MemElision *EF = Elide;
  const size_t EN = ElideCount;
  size_t EI = 0;
  Elide = nullptr;
  ElideCount = 0;

  for (uint32_t Pc = BB.StartPc; Pc < BB.EndPc; ++Pc) {
    Effect E;
    if (EF && EI < EN && EF[EI].Pc == Pc) {
      E = Mach->execOneElided(M.Code[Pc], EF[EI].Kind == MemElision::Full);
      ChecksElided += elisionWeight(M.Code[Pc].Op, EF[EI].Kind);
      ++EI;
    } else {
      E = Mach->execOne(M.Code[Pc]);
    }
    ++Instructions;

    switch (E.Kind) {
    case EffectKind::Next:
      break;
    case EffectKind::Jump:
      assert(Pc + 1 == BB.EndPc && "control transfer not at block end");
      Cur = PM->blockStartingAt(BB.MethodId, E.Target);
      return StepStatus::Continue;
    case EffectKind::Call:
      assert(Pc + 1 == BB.EndPc && "call not at block end");
      if (!Mach->pushFrame(E.Target, Pc + 1))
        return StepStatus::Trapped;
      Cur = PM->methodEntryBlock(E.Target);
      return StepStatus::Continue;
    case EffectKind::Ret: {
      assert(Pc + 1 == BB.EndPc && "return not at block end");
      Machine::PopInfo Info = Mach->popFrame(E.HasValue);
      if (Info.BottomFrame) {
        Cur = InvalidBlockId;
        return StepStatus::Finished;
      }
      Cur = PM->blockStartingAt(Mach->currentMethodId(), Info.ReturnPc);
      return StepStatus::Continue;
    }
    case EffectKind::Halt:
      Cur = InvalidBlockId;
      return StepStatus::Finished;
    case EffectKind::Trap:
      Cur = InvalidBlockId;
      return StepStatus::Trapped;
    }
  }

  // The block fell through into the leader at EndPc.
  Cur = PM->blockStartingAt(BB.MethodId, BB.EndPc);
  return StepStatus::Continue;
}

RunResult jtc::runBlocks(BlockStepper &Stepper, uint64_t MaxInstructions) {
  return runBlocksWithHook(Stepper, [](BlockId) {}, MaxInstructions);
}
