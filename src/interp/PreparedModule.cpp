//===- interp/PreparedModule.cpp ------------------------------------------===//

#include "interp/PreparedModule.h"

using namespace jtc;

PreparedModule::PreparedModule(const Module &Mod) : M(&Mod) {
  LeaderToBlock.resize(Mod.Methods.size());

  for (uint32_t MethodId = 0; MethodId < Mod.Methods.size(); ++MethodId) {
    const Method &Mth = Mod.Methods[MethodId];
    auto CodeSize = static_cast<uint32_t>(Mth.Code.size());
    assert(CodeSize > 0 && "prepared methods must have code");

    // Pass 1: mark leaders. Instruction 0 is a leader; so is every branch
    // or switch target, and the instruction after any block-ending
    // instruction (the fallthrough successor or call continuation).
    std::vector<bool> Leader(CodeSize, false);
    Leader[0] = true;
    for (uint32_t Pc = 0; Pc < CodeSize; ++Pc) {
      const Instruction &I = Mth.Code[Pc];
      switch (opKind(I.Op)) {
      case OpKind::Normal:
        break;
      case OpKind::Branch:
      case OpKind::Jump:
        assert(static_cast<uint32_t>(I.A) < CodeSize && "unverified target");
        Leader[static_cast<uint32_t>(I.A)] = true;
        if (Pc + 1 < CodeSize)
          Leader[Pc + 1] = true;
        break;
      case OpKind::Switch: {
        const SwitchTable &T = Mth.SwitchTables[I.A];
        Leader[T.DefaultTarget] = true;
        for (uint32_t Tgt : T.Targets)
          Leader[Tgt] = true;
        if (Pc + 1 < CodeSize)
          Leader[Pc + 1] = true;
        break;
      }
      case OpKind::Call:
      case OpKind::Ret:
      case OpKind::End:
        if (Pc + 1 < CodeSize)
          Leader[Pc + 1] = true;
        break;
      }
    }

    // Pass 2: cut blocks at leaders and block-ending instructions.
    LeaderToBlock[MethodId].assign(CodeSize, InvalidBlockId);
    uint32_t Start = 0;
    for (uint32_t Pc = 0; Pc < CodeSize; ++Pc) {
      bool LastInBlock =
          endsBlock(Mth.Code[Pc].Op) || Pc + 1 == CodeSize || Leader[Pc + 1];
      if (!LastInBlock)
        continue;
      auto Id = static_cast<BlockId>(Blocks.size());
      Blocks.push_back({MethodId, Start, Pc + 1});
      LeaderToBlock[MethodId][Start] = Id;
      Start = Pc + 1;
    }
  }
}

void PreparedModule::dump(std::ostream &OS) const {
  OS << "prepared module: " << Blocks.size() << " blocks\n";
  for (BlockId B = 0; B < Blocks.size(); ++B) {
    const BasicBlock &BB = Blocks[B];
    OS << "  block " << B << ": method #" << BB.MethodId << " ("
       << M->Methods[BB.MethodId].Name << ") pc [" << BB.StartPc << ", "
       << BB.EndPc << ")\n";
  }
}
