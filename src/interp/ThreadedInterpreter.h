//===- interp/ThreadedInterpreter.h - Direct-threaded engine ----*- C++ -*-===//
///
/// \file
/// A direct-threaded execution engine in the style the paper's substrate
/// (SableVM) actually uses: the whole module is flattened into one code
/// array whose instructions carry the *address of their handler* (GNU
/// labels-as-values; a tight switch loop on other compilers), so dispatch
/// is a single indirect goto. Operand stack, locals and frames live in
/// raw arrays.
///
/// This engine exists for the wall-clock experiments (paper Tables VI and
/// VII): the relative cost of the per-block profiler hook is only
/// meaningful against a fast interpreter. Semantics are identical to the
/// Machine-based interpreters (enforced by differential tests).
///
/// Block-dispatch modelling: a "dispatch" happens whenever control enters
/// a basic block, exactly as in BlockStepper. Fallthrough into a block
/// leader costs a synthetic zero-operand dispatch instruction, mirroring
/// the dispatch code a direct-threaded-inlining system appends to each
/// block.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_INTERP_THREADEDINTERPRETER_H
#define JTC_INTERP_THREADEDINTERPRETER_H

#include "interp/PreparedModule.h"
#include "interp/RunResult.h"
#include "profile/BranchCorrelationGraph.h"
#include "runtime/Trap.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace jtc {

/// Outcome of a threaded run.
struct ThreadedResult {
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  uint64_t Instructions = 0;    ///< Real instructions (synthetics excluded).
  uint64_t BlockDispatches = 0; ///< Block entries, as in the Fig. 2 model.
  std::vector<int64_t> Output;  ///< Iprint values, in order.
};

/// A module flattened for threaded execution. Construction resolves every
/// branch target, call site and block boundary to flat indices; run() and
/// runProfiled() then execute with no per-instruction decoding.
class ThreadedProgram {
public:
  /// Flattens \p PM. The PreparedModule must outlive this object.
  explicit ThreadedProgram(const PreparedModule &PM);
  ~ThreadedProgram();

  ThreadedProgram(const ThreadedProgram &) = delete;
  ThreadedProgram &operator=(const ThreadedProgram &) = delete;

  /// Runs to completion with no profiling.
  ThreadedResult run(uint64_t MaxInstructions = ~0ull) const;

  /// Runs with the branch-correlation-graph hook executed at every block
  /// dispatch (the paper's Table VI configuration).
  ThreadedResult runProfiled(BranchCorrelationGraph &Graph,
                             uint64_t MaxInstructions = ~0ull) const;

  /// Flattened code size in slots (includes synthetic dispatch slots).
  size_t codeSize() const;

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

} // namespace jtc

#endif // JTC_INTERP_THREADEDINTERPRETER_H
