//===- interp/InstructionInterpreter.h - Fig. 1 dispatch model --*- C++ -*-===//
///
/// \file
/// The ordinary interpreter of the paper's Figure 1: one dispatch per
/// instruction. It exists as the baseline dispatch model and as a
/// differential-testing oracle for the block interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_INTERP_INSTRUCTIONINTERPRETER_H
#define JTC_INTERP_INSTRUCTIONINTERPRETER_H

#include "interp/RunResult.h"
#include "runtime/Machine.h"

namespace jtc {

/// Runs \p Mach's module entry method to completion, dispatching one
/// instruction at a time. \p Mach must be freshly reset; its output and
/// heap are left in place for inspection. RunResult::Dispatches equals
/// RunResult::Instructions under this model.
RunResult runInstructions(Machine &Mach, uint64_t MaxInstructions = ~0ull);

} // namespace jtc

#endif // JTC_INTERP_INSTRUCTIONINTERPRETER_H
