//===- interp/RunResult.h - Interpreter run outcomes ------------*- C++ -*-===//
///
/// \file
/// The result record shared by both dispatch models: how a run ended and
/// the dispatch/instruction counts the experiments consume.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_INTERP_RUNRESULT_H
#define JTC_INTERP_RUNRESULT_H

#include "runtime/Trap.h"

#include <cstdint>

namespace jtc {

/// Why a run stopped.
enum class RunStatus : uint8_t {
  Finished,        ///< Entry method returned or Halt executed.
  Trapped,         ///< A runtime trap fired; see RunResult::Trap.
  BudgetExhausted, ///< The instruction budget ran out.
};

struct RunResult {
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  uint64_t Instructions = 0; ///< Instructions executed.
  uint64_t Dispatches = 0;   ///< Dispatches the model performed.
};

} // namespace jtc

#endif // JTC_INTERP_RUNRESULT_H
