//===- interp/BlockStepper.h - Fig. 2 dispatch model ------------*- C++ -*-===//
///
/// \file
/// The direct-threaded-inlining dispatch model of the paper's Figure 2:
/// one dispatch per basic block. The stepper executes exactly one block
/// per step() and exposes the resulting block transition, which is the
/// event stream the profiler and trace cache consume. TraceVM drives a
/// BlockStepper directly; plain runs use runBlocks().
///
//===----------------------------------------------------------------------===//

#ifndef JTC_INTERP_BLOCKSTEPPER_H
#define JTC_INTERP_BLOCKSTEPPER_H

#include "interp/PreparedModule.h"
#include "interp/RunResult.h"
#include "runtime/Machine.h"
#include "trace/Trace.h" // MemElision (header-only POD; no link edge)

#include <cstddef>

namespace jtc {

/// Executes a prepared module one basic block at a time.
class BlockStepper {
public:
  /// \p Mach must be a fresh machine over \p PM's module.
  BlockStepper(const PreparedModule &PM, Machine &Mach);

  /// Pushes the entry frame; currentBlock() becomes the entry block.
  void start();

  enum class StepStatus : uint8_t {
    Continue, ///< Block executed; currentBlock() is the successor.
    Finished, ///< Entry method returned or Halt executed.
    Trapped,  ///< A runtime trap fired mid-block.
  };

  /// Executes currentBlock() to its end and computes the successor block.
  StepStatus step();

  /// The block about to be executed by the next step().
  BlockId currentBlock() const { return Cur; }

  /// Repositions the stepper at \p B without executing anything. Used by
  /// the trace backends: after native code runs a trace, the stepper must
  /// resume at the successor (or side-exit) block the native code reached.
  void resumeAt(BlockId B) { Cur = B; }

  /// Credits \p N instructions executed outside step() (by JIT-compiled
  /// trace code) so instructions() stays the whole-run total no matter
  /// which tier executed.
  void creditInstructions(uint64_t N) { Instructions += N; }

  /// Total instructions executed so far.
  uint64_t instructions() const { return Instructions; }

  /// Arms check elision for the *next* step() only: \p Facts (\p Count
  /// entries, pc-ordered, all for the block about to execute) name the
  /// heap accesses to run through Machine::execOneElided. The trace
  /// backends arm this per trace block; the one-shot contract means an
  /// ordinary (non-trace) step can never execute reduced-check code. The
  /// caller guarantees the facts' proof obligations -- execution reached
  /// this block along the trace path the alias analysis assumed.
  void setElisions(const MemElision *Facts, size_t Count) {
    Elide = Facts;
    ElideCount = Count;
  }

  /// Dynamic checks skipped via elision so far (whole-run total, the
  /// MemChecksElided statistic). Like creditChecksElided, whichever tier
  /// executed contributes.
  uint64_t checksElided() const { return ChecksElided; }

  /// Credits \p N checks elided by JIT-compiled trace code.
  void creditChecksElided(uint64_t N) { ChecksElided += N; }

  const PreparedModule &prepared() const { return *PM; }
  Machine &machine() { return *Mach; }

private:
  const PreparedModule *PM;
  Machine *Mach;
  BlockId Cur = InvalidBlockId;
  uint64_t Instructions = 0;
  // One-shot elision span for the next step() (see setElisions).
  const MemElision *Elide = nullptr;
  size_t ElideCount = 0;
  uint64_t ChecksElided = 0;
};

/// Runs \p Stepper to completion, invoking \p OnDispatch(NextBlock) before
/// every block dispatch (including the entry block). The hook is a
/// template parameter so a no-op hook compiles to the plain interpreter --
/// this is how the Table VI experiment compares the profiled and
/// unprofiled interpreters on identical dispatch loops.
template <typename HookT>
RunResult runBlocksWithHook(BlockStepper &Stepper, HookT &&OnDispatch,
                            uint64_t MaxInstructions = ~0ull) {
  RunResult R;
  Stepper.start();
  while (true) {
    OnDispatch(Stepper.currentBlock());
    ++R.Dispatches;
    BlockStepper::StepStatus S = Stepper.step();
    R.Instructions = Stepper.instructions();
    if (S == BlockStepper::StepStatus::Finished) {
      R.Status = RunStatus::Finished;
      return R;
    }
    if (S == BlockStepper::StepStatus::Trapped) {
      R.Status = RunStatus::Trapped;
      R.Trap = Stepper.machine().trap();
      return R;
    }
    if (R.Instructions >= MaxInstructions) {
      R.Status = RunStatus::BudgetExhausted;
      return R;
    }
  }
}

/// Runs \p Stepper to completion with no per-dispatch hook.
RunResult runBlocks(BlockStepper &Stepper, uint64_t MaxInstructions = ~0ull);

} // namespace jtc

#endif // JTC_INTERP_BLOCKSTEPPER_H
