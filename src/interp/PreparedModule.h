//===- interp/PreparedModule.h - Basic-block discovery ----------*- C++ -*-===//
///
/// \file
/// Code preparation for the direct-threaded-inlining dispatch model
/// (paper section 3.1, following Piumarta & Riccardi and SableVM): every
/// method is partitioned into basic blocks, and the block interpreter
/// dispatches one block at a time. Blocks end at any control-transfer
/// instruction -- branches, jumps, switches, calls, returns, halt -- or
/// where the next instruction is a branch target (fallthrough into a
/// leader). Block ids are globally unique across the module.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_INTERP_PREPAREDMODULE_H
#define JTC_INTERP_PREPAREDMODULE_H

#include "bytecode/Program.h"
#include "support/Ids.h"

#include <cassert>
#include <ostream>
#include <vector>

namespace jtc {

/// One basic block: the half-open instruction range [StartPc, EndPc) of a
/// method. The block's last instruction either transfers control or falls
/// through into the leader at EndPc.
struct BasicBlock {
  uint32_t MethodId = 0;
  uint32_t StartPc = 0;
  uint32_t EndPc = 0;

  uint32_t numInstructions() const { return EndPc - StartPc; }
};

/// A verified Module plus its discovered basic blocks and the leader maps
/// needed to turn (method, pc) control transfers into block transitions.
class PreparedModule {
public:
  /// Prepares \p M. The module must outlive the PreparedModule and should
  /// already have passed the verifier (preparation asserts on structural
  /// errors instead of reporting them).
  explicit PreparedModule(const Module &M);

  const Module &module() const { return *M; }

  size_t numBlocks() const { return Blocks.size(); }

  const BasicBlock &block(BlockId B) const {
    assert(B < Blocks.size() && "invalid block id");
    return Blocks[B];
  }

  /// The block whose first instruction is (\p MethodId, \p Pc). \p Pc must
  /// be a leader: every pc that can be reached by a control transfer
  /// (branch target, call continuation, method entry) is one.
  BlockId blockStartingAt(uint32_t MethodId, uint32_t Pc) const {
    assert(MethodId < LeaderToBlock.size() && "invalid method");
    assert(Pc < LeaderToBlock[MethodId].size() && "pc out of range");
    BlockId B = LeaderToBlock[MethodId][Pc];
    assert(B != InvalidBlockId && "pc is not a block leader");
    return B;
  }

  /// Entry block of \p MethodId (its pc 0 block).
  BlockId methodEntryBlock(uint32_t MethodId) const {
    return blockStartingAt(MethodId, 0);
  }

  /// Entry block of the module's entry method.
  BlockId entryBlock() const { return methodEntryBlock(M->EntryMethod); }

  /// Instruction count of block \p B, used when attributing executed
  /// instructions to traces.
  uint32_t blockSize(BlockId B) const { return block(B).numInstructions(); }

  /// Dumps the block structure, one line per block.
  void dump(std::ostream &OS) const;

private:
  const Module *M;
  std::vector<BasicBlock> Blocks;
  /// Per method, per pc: block id if pc is a leader, else InvalidBlockId.
  std::vector<std::vector<BlockId>> LeaderToBlock;
};

} // namespace jtc

#endif // JTC_INTERP_PREPAREDMODULE_H
