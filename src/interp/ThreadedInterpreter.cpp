//===- interp/ThreadedInterpreter.cpp -------------------------------------===//

#include "interp/ThreadedInterpreter.h"

#include "runtime/Heap.h"

#include <cassert>
#include <limits>

using namespace jtc;

namespace {

/// Flat-code operation indices: the Opcode values plus one synthetic.
enum : uint8_t {
  // 0 .. numOpcodes()-1 are the Opcode values themselves.
  OpFall = 0xff, ///< Synthetic dispatch at a fallthrough block boundary.
};

/// One flattened instruction slot.
struct Slot {
  uint8_t Op = 0;
  int32_t A = 0;
  int32_t B = 0;
};

struct FlatSwitch {
  int32_t Low = 0;
  std::vector<uint32_t> Targets; ///< Flat indices.
  uint32_t DefaultTarget = 0;    ///< Flat index.
};

struct FlatMethod {
  uint32_t Entry = 0; ///< Flat index of the first instruction.
  uint32_t NumArgs = 0;
  uint32_t NumLocals = 0;
  uint32_t MaxStack = 0; ///< Safe overbound: the method's code length.
};

struct Frame {
  uint32_t ReturnFlat = 0;
  uint32_t LocalsBase = 0;
  uint32_t StackBase = 0;
};

} // namespace

struct ThreadedProgram::Impl {
  const PreparedModule *PM = nullptr;
  std::vector<Slot> Code;
  std::vector<BlockId> BlockAtSlot; ///< Block led by this slot, or Invalid.
  std::vector<FlatSwitch> Switches;
  std::vector<FlatMethod> Methods;
  uint32_t EntryFlat = 0;
  BlockId EntryBlock = InvalidBlockId;

  template <bool Profiled>
  ThreadedResult runImpl(BranchCorrelationGraph *Graph,
                         uint64_t MaxInstructions) const;
};

ThreadedProgram::~ThreadedProgram() = default;

size_t ThreadedProgram::codeSize() const { return P->Code.size(); }

ThreadedProgram::ThreadedProgram(const PreparedModule &PM)
    : P(std::make_unique<Impl>()) {
  P->PM = &PM;
  const Module &M = PM.module();

  // Leader map reconstruction: a pc leads a block iff blockStartingAt
  // would succeed; recover it from the prepared blocks directly.
  std::vector<std::vector<BlockId>> LeaderBlock(M.Methods.size());
  for (uint32_t Mi = 0; Mi < M.Methods.size(); ++Mi)
    LeaderBlock[Mi].assign(M.Methods[Mi].Code.size(), InvalidBlockId);
  for (BlockId B = 0; B < PM.numBlocks(); ++B) {
    const BasicBlock &BB = PM.block(B);
    LeaderBlock[BB.MethodId][BB.StartPc] = B;
  }

  // Pass 1: emit slots, recording the flat index of every (method, pc)
  // and inserting a synthetic dispatch before fallthrough leaders.
  std::vector<std::vector<uint32_t>> FlatOf(M.Methods.size());
  P->Methods.resize(M.Methods.size());
  for (uint32_t Mi = 0; Mi < M.Methods.size(); ++Mi) {
    const Method &Mth = M.Methods[Mi];
    FlatOf[Mi].assign(Mth.Code.size(), 0);
    FlatMethod &FM = P->Methods[Mi];
    FM.NumArgs = Mth.NumArgs;
    FM.NumLocals = Mth.NumLocals;
    FM.MaxStack = static_cast<uint32_t>(Mth.Code.size()) + 4;

    for (uint32_t Pc = 0; Pc < Mth.Code.size(); ++Pc) {
      const Instruction &I = Mth.Code[Pc];
      // A leader reached by fallthrough (the previous instruction does
      // not end a block) costs one synthetic dispatch slot.
      if (Pc > 0 && LeaderBlock[Mi][Pc] != InvalidBlockId &&
          !endsBlock(Mth.Code[Pc - 1].Op)) {
        Slot Fall;
        Fall.Op = OpFall;
        P->Code.push_back(Fall);
        P->BlockAtSlot.push_back(InvalidBlockId);
      }
      FlatOf[Mi][Pc] = static_cast<uint32_t>(P->Code.size());
      Slot S;
      S.Op = static_cast<uint8_t>(I.Op);
      S.A = I.A;
      S.B = I.B;
      // Virtual call slots carry the argument count inline.
      if (I.Op == Opcode::InvokeVirtual)
        S.B = static_cast<int32_t>(M.Slots[I.A].ArgCount);
      P->Code.push_back(S);
      P->BlockAtSlot.push_back(LeaderBlock[Mi][Pc]);
    }
    FM.Entry = FlatOf[Mi][0];
  }

  // Pass 2: resolve branch targets and switch tables to flat indices.
  for (uint32_t Mi = 0; Mi < M.Methods.size(); ++Mi) {
    const Method &Mth = M.Methods[Mi];
    for (uint32_t Pc = 0; Pc < Mth.Code.size(); ++Pc) {
      Slot &S = P->Code[FlatOf[Mi][Pc]];
      const Instruction &I = Mth.Code[Pc];
      switch (opKind(I.Op)) {
      case OpKind::Branch:
      case OpKind::Jump:
        S.A = static_cast<int32_t>(FlatOf[Mi][static_cast<uint32_t>(I.A)]);
        break;
      case OpKind::Switch: {
        const SwitchTable &T = Mth.SwitchTables[I.A];
        FlatSwitch FS;
        FS.Low = T.Low;
        FS.DefaultTarget = FlatOf[Mi][T.DefaultTarget];
        for (uint32_t Tgt : T.Targets)
          FS.Targets.push_back(FlatOf[Mi][Tgt]);
        S.A = static_cast<int32_t>(P->Switches.size());
        P->Switches.push_back(std::move(FS));
        break;
      }
      default:
        break;
      }
    }
  }

  P->EntryFlat = P->Methods[M.EntryMethod].Entry;
  P->EntryBlock = PM.entryBlock();
}

ThreadedResult ThreadedProgram::run(uint64_t MaxInstructions) const {
  return P->runImpl<false>(nullptr, MaxInstructions);
}

ThreadedResult ThreadedProgram::runProfiled(BranchCorrelationGraph &Graph,
                                            uint64_t MaxInstructions) const {
  return P->runImpl<true>(&Graph, MaxInstructions);
}

// The engine proper. Token-threaded dispatch: each handler ends with an
// indirect goto through the handler table, so there is no central loop.
template <bool Profiled>
ThreadedResult
ThreadedProgram::Impl::runImpl(BranchCorrelationGraph *Graph,
                               uint64_t MaxInstructions) const {
  ThreadedResult R;
  const Module &M = PM->module();
  Heap TheHeap;

  std::vector<int64_t> Stack(1u << 16);
  std::vector<int64_t> Locals(1u << 16);
  std::vector<Frame> Frames;
  Frames.reserve(256);
  const size_t MaxFrames = 2048;

  uint64_t Instr = 0;
  uint64_t Dispatches = 0;

  // Stack/locals tops as indices; kept in locals for speed and because
  // the arenas may grow at call sites.
  size_t SP = 0;
  size_t LP = 0;

  const Slot *CodeBase = Code.data();
  uint32_t Pc = EntryFlat;

  // Entry frame.
  Frames.push_back({0, 0, 0});
  LP = Methods[M.EntryMethod].NumLocals;
  if (Locals.size() < LP + 64)
    Locals.resize(LP + 64);
  for (size_t I = 0; I < LP; ++I)
    Locals[I] = 0;

  auto Push = [&](int64_t V) { Stack[SP++] = V; };
  auto Pop = [&]() { return Stack[--SP]; };

  TrapKind Trap = TrapKind::None;

  // Per-block-dispatch bookkeeping; also the budget checkpoint.
  auto EnterBlock = [&](uint32_t Dest) -> bool {
    ++Dispatches;
    if constexpr (Profiled)
      Graph->onBlockDispatch(BlockAtSlot[Dest]);
    return Instr < MaxInstructions;
  };

  if (!EnterBlock(EntryFlat)) {
    R.Status = RunStatus::BudgetExhausted;
    return R;
  }

#if defined(__GNUC__) || defined(__clang__)
#define JTC_THREADED 1
#else
#define JTC_THREADED 0
#endif

#if JTC_THREADED
  // Handler table indexed by Slot::Op; OpFall aliases index
  // numOpcodes()..255 via a filled table.
  static const void *Handlers[256] = {nullptr};
  if (!Handlers[0]) {
#define JTC_OPCODE(Name, Mnemonic, Pops, Pushes, Kind)                         \
  Handlers[static_cast<unsigned>(Opcode::Name)] = &&H_##Name;
#include "bytecode/Opcodes.def"
    for (unsigned I = numOpcodes(); I < 256; ++I)
      Handlers[I] = &&H_Fall;
  }
  const Slot *I;
#define DISPATCH()                                                             \
  do {                                                                         \
    I = &CodeBase[Pc];                                                         \
    goto *Handlers[I->Op];                                                     \
  } while (0)
#define NEXT()                                                                 \
  do {                                                                         \
    ++Pc;                                                                      \
    DISPATCH();                                                                \
  } while (0)
#define CASE(Name) H_##Name:
#else
  const Slot *I;
  // Portable fallback: a tight switch loop with the same handler bodies.
#define DISPATCH() goto dispatch_loop
#define NEXT()                                                                 \
  do {                                                                         \
    ++Pc;                                                                      \
    goto dispatch_loop;                                                        \
  } while (0)
#define CASE(Name) case static_cast<unsigned>(Opcode::Name):
dispatch_loop:
  I = &CodeBase[Pc];
  switch (I->Op == OpFall ? 256u : static_cast<unsigned>(I->Op)) {
#endif

  // NOLINTBEGIN -- label-per-opcode engine.
#if JTC_THREADED
  DISPATCH();
#endif

  CASE(Nop) { ++Instr; NEXT(); }
  CASE(Iconst) { ++Instr; Push(I->A); NEXT(); }
  CASE(Iload) {
    ++Instr;
    Push(Locals[Frames.back().LocalsBase + static_cast<uint32_t>(I->A)]);
    NEXT();
  }
  CASE(Istore) {
    ++Instr;
    Locals[Frames.back().LocalsBase + static_cast<uint32_t>(I->A)] = Pop();
    NEXT();
  }
  CASE(Iinc) {
    ++Instr;
    Locals[Frames.back().LocalsBase + static_cast<uint32_t>(I->A)] += I->B;
    NEXT();
  }
  CASE(Pop) { ++Instr; --SP; NEXT(); }
  CASE(Dup) { ++Instr; Stack[SP] = Stack[SP - 1]; ++SP; NEXT(); }
  CASE(Swap) {
    ++Instr;
    std::swap(Stack[SP - 1], Stack[SP - 2]);
    NEXT();
  }
  CASE(Iadd) {
    ++Instr;
    int64_t B = Pop();
    Stack[SP - 1] = static_cast<int64_t>(
        static_cast<uint64_t>(Stack[SP - 1]) + static_cast<uint64_t>(B));
    NEXT();
  }
  CASE(Isub) {
    ++Instr;
    int64_t B = Pop();
    Stack[SP - 1] = static_cast<int64_t>(
        static_cast<uint64_t>(Stack[SP - 1]) - static_cast<uint64_t>(B));
    NEXT();
  }
  CASE(Imul) {
    ++Instr;
    int64_t B = Pop();
    Stack[SP - 1] = static_cast<int64_t>(
        static_cast<uint64_t>(Stack[SP - 1]) * static_cast<uint64_t>(B));
    NEXT();
  }
  CASE(Idiv) {
    ++Instr;
    int64_t B = Pop(), A = Pop();
    if (B == 0) {
      Trap = TrapKind::DivideByZero;
      goto trapped;
    }
    if (A == std::numeric_limits<int64_t>::min() && B == -1)
      Push(A);
    else
      Push(A / B);
    NEXT();
  }
  CASE(Irem) {
    ++Instr;
    int64_t B = Pop(), A = Pop();
    if (B == 0) {
      Trap = TrapKind::DivideByZero;
      goto trapped;
    }
    if (A == std::numeric_limits<int64_t>::min() && B == -1)
      Push(0);
    else
      Push(A % B);
    NEXT();
  }
  CASE(Ineg) {
    ++Instr;
    Stack[SP - 1] =
        static_cast<int64_t>(0 - static_cast<uint64_t>(Stack[SP - 1]));
    NEXT();
  }
  CASE(Ishl) {
    ++Instr;
    int64_t B = Pop();
    Stack[SP - 1] = static_cast<int64_t>(
        static_cast<uint64_t>(Stack[SP - 1]) << (B & 63));
    NEXT();
  }
  CASE(Ishr) {
    ++Instr;
    int64_t B = Pop();
    Stack[SP - 1] = Stack[SP - 1] >> (B & 63);
    NEXT();
  }
  CASE(Iushr) {
    ++Instr;
    int64_t B = Pop();
    Stack[SP - 1] = static_cast<int64_t>(
        static_cast<uint64_t>(Stack[SP - 1]) >> (B & 63));
    NEXT();
  }
  CASE(Iand) {
    ++Instr;
    int64_t B = Pop();
    Stack[SP - 1] &= B;
    NEXT();
  }
  CASE(Ior) {
    ++Instr;
    int64_t B = Pop();
    Stack[SP - 1] |= B;
    NEXT();
  }
  CASE(Ixor) {
    ++Instr;
    int64_t B = Pop();
    Stack[SP - 1] ^= B;
    NEXT();
  }

  CASE(Goto) {
    ++Instr;
    Pc = static_cast<uint32_t>(I->A);
    if (!EnterBlock(Pc))
      goto budget;
    DISPATCH();
  }

#define JTC_IF1(Name, Cond)                                                    \
  CASE(Name) {                                                                 \
    ++Instr;                                                                   \
    int64_t V = Pop();                                                         \
    Pc = (Cond) ? static_cast<uint32_t>(I->A) : Pc + 1;                        \
    if (!EnterBlock(Pc))                                                       \
      goto budget;                                                             \
    DISPATCH();                                                                \
  }
  JTC_IF1(IfEq, V == 0)
  JTC_IF1(IfNe, V != 0)
  JTC_IF1(IfLt, V < 0)
  JTC_IF1(IfGe, V >= 0)
  JTC_IF1(IfGt, V > 0)
  JTC_IF1(IfLe, V <= 0)
#undef JTC_IF1

#define JTC_IF2(Name, Cond)                                                    \
  CASE(Name) {                                                                 \
    ++Instr;                                                                   \
    int64_t B = Pop(), A = Pop();                                              \
    Pc = (Cond) ? static_cast<uint32_t>(I->A) : Pc + 1;                        \
    if (!EnterBlock(Pc))                                                       \
      goto budget;                                                             \
    DISPATCH();                                                                \
  }
  JTC_IF2(IfIcmpEq, A == B)
  JTC_IF2(IfIcmpNe, A != B)
  JTC_IF2(IfIcmpLt, A < B)
  JTC_IF2(IfIcmpGe, A >= B)
  JTC_IF2(IfIcmpGt, A > B)
  JTC_IF2(IfIcmpLe, A <= B)
#undef JTC_IF2

  CASE(Tableswitch) {
    ++Instr;
    const FlatSwitch &T = Switches[static_cast<uint32_t>(I->A)];
    int64_t Sel = Pop();
    int64_t Off = Sel - T.Low;
    Pc = (Off >= 0 && Off < static_cast<int64_t>(T.Targets.size()))
             ? T.Targets[static_cast<size_t>(Off)]
             : T.DefaultTarget;
    if (!EnterBlock(Pc))
      goto budget;
    DISPATCH();
  }

  CASE(InvokeStatic) {
    ++Instr;
    {
      uint32_t Callee = static_cast<uint32_t>(I->A);
      const FlatMethod &FM = Methods[Callee];
      if (Frames.size() >= MaxFrames) {
        Trap = TrapKind::StackOverflow;
        goto trapped;
      }
      // Move arguments into fresh locals.
      size_t ArgBase = SP - FM.NumArgs;
      if (LP + FM.NumLocals + 64 > Locals.size())
        Locals.resize((LP + FM.NumLocals + 64) * 2);
      for (uint32_t K = 0; K < FM.NumArgs; ++K)
        Locals[LP + K] = Stack[ArgBase + K];
      for (uint32_t K = FM.NumArgs; K < FM.NumLocals; ++K)
        Locals[LP + K] = 0;
      SP = ArgBase;
      if (SP + FM.MaxStack + 64 > Stack.size())
        Stack.resize((SP + FM.MaxStack + 64) * 2);
      Frames.push_back({Pc + 1, static_cast<uint32_t>(LP),
                        static_cast<uint32_t>(SP)});
      LP += FM.NumLocals;
      Pc = FM.Entry;
      if (!EnterBlock(Pc))
        goto budget;
      DISPATCH();
    }
  }

  CASE(InvokeVirtual) {
    ++Instr;
    {
      int64_t Receiver = Stack[SP - static_cast<uint32_t>(I->B)];
      if (!TheHeap.isLive(Receiver)) {
        Trap = TrapKind::NullReference;
        goto trapped;
      }
      uint32_t ClassId = TheHeap.classOf(Receiver);
      if (ClassId == Heap::ArrayClass) {
        Trap = TrapKind::BadVirtualDispatch;
        goto trapped;
      }
      uint32_t Target =
          M.Classes[ClassId].Vtable[static_cast<uint32_t>(I->A)];
      if (Target == InvalidMethod) {
        Trap = TrapKind::BadVirtualDispatch;
        goto trapped;
      }
      uint32_t Callee = Target;
      // Reuse the static-call path.
      {
        const FlatMethod &FM = Methods[Callee];
        if (Frames.size() >= MaxFrames) {
          Trap = TrapKind::StackOverflow;
          goto trapped;
        }
        size_t ArgBase = SP - FM.NumArgs;
        if (LP + FM.NumLocals + 64 > Locals.size())
          Locals.resize((LP + FM.NumLocals + 64) * 2);
        for (uint32_t K = 0; K < FM.NumArgs; ++K)
          Locals[LP + K] = Stack[ArgBase + K];
        for (uint32_t K = FM.NumArgs; K < FM.NumLocals; ++K)
          Locals[LP + K] = 0;
        SP = ArgBase;
        if (SP + FM.MaxStack + 64 > Stack.size())
          Stack.resize((SP + FM.MaxStack + 64) * 2);
        Frames.push_back({Pc + 1, static_cast<uint32_t>(LP),
                          static_cast<uint32_t>(SP)});
        LP += FM.NumLocals;
        Pc = FM.Entry;
        if (!EnterBlock(Pc))
          goto budget;
        DISPATCH();
      }
    }
  }

  CASE(Return) {
    ++Instr;
    {
      Frame F = Frames.back();
      Frames.pop_back();
      SP = F.StackBase;
      LP = F.LocalsBase;
      if (Frames.empty())
        goto finished;
      Pc = F.ReturnFlat;
      if (!EnterBlock(Pc))
        goto budget;
      DISPATCH();
    }
  }
  CASE(Ireturn) {
    ++Instr;
    {
      int64_t V = Pop();
      Frame F = Frames.back();
      Frames.pop_back();
      SP = F.StackBase;
      LP = F.LocalsBase;
      if (Frames.empty())
        goto finished;
      Push(V);
      Pc = F.ReturnFlat;
      if (!EnterBlock(Pc))
        goto budget;
      DISPATCH();
    }
  }

  CASE(New) {
    ++Instr;
    {
      const Class &C = M.Classes[static_cast<uint32_t>(I->A)];
      int64_t Ref =
          TheHeap.allocObject(static_cast<uint32_t>(I->A), C.NumFields);
      if (Ref == Heap::Null) {
        Trap = TrapKind::OutOfMemory;
        goto trapped;
      }
      Push(Ref);
    }
    NEXT();
  }
  CASE(GetField) {
    ++Instr;
    {
      int64_t Ref = Pop();
      if (!TheHeap.isLive(Ref) || TheHeap.classOf(Ref) == Heap::ArrayClass) {
        Trap = TrapKind::NullReference;
        goto trapped;
      }
      auto Idx = static_cast<size_t>(I->A);
      if (Idx >= TheHeap.slotCount(Ref)) {
        Trap = TrapKind::FieldBounds;
        goto trapped;
      }
      Push(TheHeap.load(Ref, Idx));
    }
    NEXT();
  }
  CASE(PutField) {
    ++Instr;
    {
      int64_t Value = Pop();
      int64_t Ref = Pop();
      if (!TheHeap.isLive(Ref) || TheHeap.classOf(Ref) == Heap::ArrayClass) {
        Trap = TrapKind::NullReference;
        goto trapped;
      }
      auto Idx = static_cast<size_t>(I->A);
      if (Idx >= TheHeap.slotCount(Ref)) {
        Trap = TrapKind::FieldBounds;
        goto trapped;
      }
      TheHeap.store(Ref, Idx, Value);
    }
    NEXT();
  }
  CASE(NewArray) {
    ++Instr;
    {
      int64_t Len = Pop();
      if (Len < 0) {
        Trap = TrapKind::NegativeArraySize;
        goto trapped;
      }
      int64_t Ref = TheHeap.allocArray(Len);
      if (Ref == Heap::Null) {
        Trap = TrapKind::OutOfMemory;
        goto trapped;
      }
      Push(Ref);
    }
    NEXT();
  }
  CASE(Iaload) {
    ++Instr;
    {
      int64_t Idx = Pop();
      int64_t Ref = Pop();
      if (!TheHeap.isLive(Ref) || TheHeap.classOf(Ref) != Heap::ArrayClass) {
        Trap = TrapKind::NullReference;
        goto trapped;
      }
      if (Idx < 0 || static_cast<size_t>(Idx) >= TheHeap.slotCount(Ref)) {
        Trap = TrapKind::ArrayBounds;
        goto trapped;
      }
      Push(TheHeap.load(Ref, static_cast<size_t>(Idx)));
    }
    NEXT();
  }
  CASE(Iastore) {
    ++Instr;
    {
      int64_t Value = Pop();
      int64_t Idx = Pop();
      int64_t Ref = Pop();
      if (!TheHeap.isLive(Ref) || TheHeap.classOf(Ref) != Heap::ArrayClass) {
        Trap = TrapKind::NullReference;
        goto trapped;
      }
      if (Idx < 0 || static_cast<size_t>(Idx) >= TheHeap.slotCount(Ref)) {
        Trap = TrapKind::ArrayBounds;
        goto trapped;
      }
      TheHeap.store(Ref, static_cast<size_t>(Idx), Value);
    }
    NEXT();
  }
  CASE(ArrayLength) {
    ++Instr;
    {
      int64_t Ref = Pop();
      if (!TheHeap.isLive(Ref) || TheHeap.classOf(Ref) != Heap::ArrayClass) {
        Trap = TrapKind::NullReference;
        goto trapped;
      }
      Push(static_cast<int64_t>(TheHeap.slotCount(Ref)));
    }
    NEXT();
  }
  CASE(Iprint) {
    ++Instr;
    R.Output.push_back(Pop());
    NEXT();
  }
  CASE(Halt) {
    ++Instr;
    goto finished;
  }

#if JTC_THREADED
H_Fall : {
  // Synthetic dispatch at a fallthrough block boundary: the next slot
  // leads a block.
  ++Pc;
  if (!EnterBlock(Pc))
    goto budget;
  DISPATCH();
}
#else
  case 256u: {
    ++Pc;
    if (!EnterBlock(Pc))
      goto budget;
    DISPATCH();
  }
  }
  // Unreachable: every handler transfers control.
  goto finished;
#endif
  // NOLINTEND

finished:
  R.Status = RunStatus::Finished;
  R.Instructions = Instr;
  R.BlockDispatches = Dispatches;
  return R;

trapped:
  R.Status = RunStatus::Trapped;
  R.Trap = Trap;
  R.Instructions = Instr;
  R.BlockDispatches = Dispatches;
  return R;

budget:
  R.Status = RunStatus::BudgetExhausted;
  R.Instructions = Instr;
  R.BlockDispatches = Dispatches;
  return R;

#undef DISPATCH
#undef NEXT
#undef CASE
#undef JTC_THREADED
}
