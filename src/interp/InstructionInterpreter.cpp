//===- interp/InstructionInterpreter.cpp ----------------------------------===//

#include "interp/InstructionInterpreter.h"

using namespace jtc;

RunResult jtc::runInstructions(Machine &Mach, uint64_t MaxInstructions) {
  RunResult R;
  Mach.start(Mach.module().EntryMethod);
  uint32_t Pc = 0;

  while (true) {
    if (R.Instructions >= MaxInstructions) {
      R.Status = RunStatus::BudgetExhausted;
      return R;
    }
    const Method &M = Mach.currentMethod();
    assert(Pc < M.Code.size() && "pc ran off the end (verifier bug)");
    Effect E = Mach.execOne(M.Code[Pc]);
    ++R.Instructions;
    ++R.Dispatches;

    switch (E.Kind) {
    case EffectKind::Next:
      ++Pc;
      break;
    case EffectKind::Jump:
      Pc = E.Target;
      break;
    case EffectKind::Call:
      if (!Mach.pushFrame(E.Target, Pc + 1)) {
        R.Status = RunStatus::Trapped;
        R.Trap = Mach.trap();
        return R;
      }
      Pc = 0;
      break;
    case EffectKind::Ret: {
      Machine::PopInfo Info = Mach.popFrame(E.HasValue);
      if (Info.BottomFrame) {
        R.Status = RunStatus::Finished;
        return R;
      }
      Pc = Info.ReturnPc;
      break;
    }
    case EffectKind::Halt:
      R.Status = RunStatus::Finished;
      return R;
    case EffectKind::Trap:
      R.Status = RunStatus::Trapped;
      R.Trap = Mach.trap();
      return R;
    }
  }
}
