//===- btrace/BtraceDecoder.h - Strict branch-trace decoder -----*- C++ -*-===//
///
/// \file
/// The reconstruction side of the btrace pipeline. Given a .btc stream
/// and the module it was captured over, the strict decoder re-derives
/// the *exact* block sequence of the original run: inferable transitions
/// come from the SuccessorTable (returns via a shadow call stack),
/// conditional outcomes from the TNT bit queue, indirect targets from
/// the TIP delta queue. Strictness is the persist subsystem's contract
/// applied to streams: every way the input can be wrong -- bad magic,
/// version skew, truncation, checksum mismatch, structural nonsense,
/// underrun or leftover packet data, sync points that contradict the
/// walk, totals that contradict the blocks -- maps to one typed
/// PersistError and never to undefined behaviour or a partial answer.
///
/// The sync packets additionally make damaged streams partially
/// salvageable: recoverTail() scans for the last intact sync marker and
/// replays the walk from its recorded state, so the freshest end of a
/// torn capture survives (the PT PSB+ idiom).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BTRACE_BTRACEDECODER_H
#define JTC_BTRACE_BTRACEDECODER_H

#include "btrace/BtraceFormat.h"
#include "btrace/SuccessorTable.h"

#include <functional>

namespace jtc {
namespace btrace {

/// One CRC-validated SYNC packet: where it sits in the stream and the
/// walk state it asserts.
struct SyncPoint {
  size_t Offset = 0;      ///< Byte offset of the marker's first byte.
  size_t AfterOffset = 0; ///< First byte past the packet.
  uint64_t BlocksExecuted = 0;
  BlockId Cur = InvalidBlockId;
  std::vector<BlockId> Stack; ///< Shadow stack, bottom to top.
};

/// Strictly decodes a complete stream over \p PM, invoking \p OnBlock
/// for every executed block in program order (the entry block first; a
/// stream of N BlocksExecuted yields N calls). On success fills \p H and
/// \p E and returns true; on any defect returns false with a typed
/// \p Err, and \p OnBlock may have been called for a prefix.
///
/// Validation includes: header integrity and fingerprint against \p PM,
/// packet structure, stream CRC, exact consumption of both packet
/// queues, every sync point against the walk, end-status consistency
/// (a Finished stream must end in a halt or a bottom return), and the
/// recorded instruction total against the walked blocks.
bool decodeBtrace(const uint8_t *Data, size_t Size, const PreparedModule &PM,
                  const SuccessorTable &ST, BtraceHeader &H, BtraceEnd &E,
                  const std::function<void(BlockId)> &OnBlock,
                  persist::PersistError &Err);

/// Scans \p Data for CRC-valid sync packets (marker match + payload
/// CRC), in stream order. Works on damaged streams; structurally
/// invalid candidates are skipped, not reported.
std::vector<SyncPoint> scanSyncPoints(const uint8_t *Data, size_t Size);

/// What recoverTail() salvaged from a damaged stream.
struct TailRecovery {
  bool Found = false;     ///< A usable sync point existed.
  SyncPoint From;         ///< The sync point the walk resumed at.
  /// The recovered block sequence; Blocks.front() == From.Cur (the block
  /// the original walk was at when the sync was emitted).
  std::vector<BlockId> Blocks;
  bool SawEnd = false; ///< The stream's END packet was reached intact.
  BtraceEnd End;       ///< Valid when SawEnd.
};

/// Best-effort loss-tolerant decode: resumes the walk from the last
/// CRC-valid sync point and follows packets until the stream ends, the
/// data turns invalid, or \p MaxBlocks is reached. Never fails -- an
/// unusable stream just returns Found = false.
TailRecovery recoverTail(const uint8_t *Data, size_t Size,
                         const PreparedModule &PM, const SuccessorTable &ST,
                         uint64_t MaxBlocks = 1ull << 26);

} // namespace btrace
} // namespace jtc

#endif // JTC_BTRACE_BTRACEDECODER_H
