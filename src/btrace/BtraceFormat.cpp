//===- btrace/BtraceFormat.cpp --------------------------------------------===//

#include "btrace/BtraceFormat.h"

#include "persist/ByteStream.h"
#include "persist/Crc32.h"

#include <cstring>

using namespace jtc;
using namespace jtc::btrace;
using persist::PersistError;
using persist::PersistErrorKind;

VmOptions BtraceHeader::toOptions() const {
  return VmOptions()
      .completionThreshold(Threshold)
      .startStateDelay(Delay)
      .decayInterval(Decay)
      .maxTraceBlocks(TraceBlocks)
      .profiling(Profiling)
      .traces(Traces)
      .maxInstructions(Budget)
      .btraceSyncInterval(SyncInterval);
}

BtraceHeader BtraceHeader::fromOptions(const VmOptions &O) {
  BtraceHeader H;
  H.Threshold = O.completionThreshold();
  H.Delay = O.startStateDelay();
  H.Decay = O.decayInterval();
  H.TraceBlocks = O.maxTraceBlocks();
  H.Profiling = O.profiling();
  H.Traces = O.traces();
  H.Budget = O.maxInstructions();
  H.SyncInterval = O.btraceSyncInterval();
  return H;
}

std::vector<uint8_t> btrace::encodeHeader(const BtraceHeader &H) {
  persist::ByteWriter W;
  W.bytes(Magic, sizeof(Magic));
  W.u32(H.Version);
  W.u32(H.Flags);
  W.u64(H.Fingerprint);
  uint64_t ThresholdBits;
  static_assert(sizeof(ThresholdBits) == sizeof(H.Threshold));
  std::memcpy(&ThresholdBits, &H.Threshold, sizeof(ThresholdBits));
  W.u64(ThresholdBits);
  W.u32(H.Delay);
  W.u32(H.Decay);
  W.u32(H.TraceBlocks);
  W.u8(H.Profiling ? 1 : 0);
  W.u8(H.Traces ? 1 : 0);
  W.u64(H.Budget);
  W.u32(H.SyncInterval);
  W.u32(H.Scale);
  W.varint(H.Spec.size());
  W.bytes(reinterpret_cast<const uint8_t *>(H.Spec.data()), H.Spec.size());
  W.varint(H.EntryBlock);
  if (H.hasSeed()) {
    W.varint(H.Seed.size());
    W.bytes(H.Seed.data(), H.Seed.size());
  }
  W.u32(persist::crc32(W.buffer().data(), W.size()));
  return W.take();
}

bool btrace::decodeHeader(const uint8_t *Data, size_t Size, BtraceHeader &H,
                          size_t &HeaderSize, PersistError &Err) {
  persist::ByteReader R(Data, Size);
  const uint8_t *M = nullptr;
  if (!R.span(sizeof(Magic), M)) {
    Err = PersistError::make(PersistErrorKind::Truncated,
                             "stream shorter than the magic");
    return false;
  }
  if (std::memcmp(M, Magic, sizeof(Magic)) != 0) {
    Err = PersistError::make(PersistErrorKind::BadMagic, "not a .btc stream");
    return false;
  }
  BtraceHeader Out;
  if (!R.u32(Out.Version)) {
    Err = PersistError::make(PersistErrorKind::Truncated, "no version field");
    return false;
  }
  if (Out.Version != FormatVersion) {
    Err = PersistError::make(PersistErrorKind::VersionSkew,
                             "btrace format version " +
                                 std::to_string(Out.Version) +
                                 " (this build speaks " +
                                 std::to_string(FormatVersion) + ")");
    return false;
  }

  uint64_t ThresholdBits = 0;
  uint8_t Profiling = 0, Traces = 0;
  uint64_t SpecLen = 0;
  uint64_t Entry = 0;
  bool Ok = R.u32(Out.Flags) && R.u64(Out.Fingerprint) &&
            R.u64(ThresholdBits) && R.u32(Out.Delay) && R.u32(Out.Decay) &&
            R.u32(Out.TraceBlocks) && R.u8(Profiling) && R.u8(Traces) &&
            R.u64(Out.Budget) && R.u32(Out.SyncInterval) && R.u32(Out.Scale) &&
            R.varint(SpecLen);
  const uint8_t *Spec = nullptr;
  Ok = Ok && R.span(SpecLen, Spec) && R.varint(Entry);
  uint64_t SeedLen = 0;
  const uint8_t *Seed = nullptr;
  if (Ok && (Out.Flags & FlagHasSeed) != 0)
    Ok = R.varint(SeedLen) && R.span(SeedLen, Seed);
  uint32_t Crc = 0;
  size_t CrcAt = Ok ? Size - R.remaining() : 0;
  Ok = Ok && R.u32(Crc);
  if (!Ok) {
    Err = PersistError::make(PersistErrorKind::Truncated,
                             "stream ends inside the header");
    return false;
  }
  if (persist::crc32(Data, CrcAt) != Crc) {
    Err = PersistError::make(PersistErrorKind::ChecksumMismatch,
                             "header CRC mismatch");
    return false;
  }
  if (Entry > 0xffffffffull - 1) {
    Err = PersistError::make(PersistErrorKind::Malformed,
                             "entry block id out of range");
    return false;
  }
  std::memcpy(&Out.Threshold, &ThresholdBits, sizeof(Out.Threshold));
  Out.Profiling = Profiling != 0;
  Out.Traces = Traces != 0;
  if (SpecLen != 0)
    Out.Spec.assign(reinterpret_cast<const char *>(Spec), SpecLen);
  Out.EntryBlock = static_cast<BlockId>(Entry);
  if (SeedLen != 0)
    Out.Seed.assign(Seed, Seed + SeedLen);
  H = std::move(Out);
  HeaderSize = Size - R.remaining();
  Err = PersistError();
  return true;
}
