//===- btrace/SuccessorTable.h - Static successor classification -*- C++ -*-===//
///
/// \file
/// The static control-flow knowledge both ends of the btrace pipeline
/// share: for every basic block, how its last instruction transfers
/// control and which successors are statically known. The encoder
/// consults it to decide what (if anything) a transition costs on the
/// wire; the decoder consults it to re-infer every transition the
/// encoder omitted. It is the moral equivalent of the binary image a
/// hardware-trace decoder walks.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BTRACE_SUCCESSORTABLE_H
#define JTC_BTRACE_SUCCESSORTABLE_H

#include "interp/PreparedModule.h"
#include "support/Ids.h"

#include <vector>

namespace jtc {
namespace btrace {

/// How a block's last instruction transfers control, from the stream's
/// point of view.
enum class SuccKind : uint8_t {
  FallThrough,  ///< Next is the leader at EndPc. Free.
  Jump,         ///< Unconditional; Next is Taken. Free.
  CondBranch,   ///< Taken or Fall, decided at runtime. One TNT bit.
  Indirect,     ///< Tableswitch: dynamic target. One TIP packet.
  StaticCall,   ///< InvokeStatic: Next is the callee entry (Taken); the
                ///< continuation (Fall) goes on the shadow stack. Free.
  IndirectCall, ///< InvokeVirtual: dynamic callee. One TIP packet; the
                ///< continuation (Fall) goes on the shadow stack.
  Ret,          ///< Next is the shadow-stack top. Free.
  Halt,         ///< No successor, ever.
};

/// The static successors of one block. Unset slots are InvalidBlockId
/// (e.g. a call continuation that is not a leader because the program
/// never returns across it).
struct SuccInfo {
  SuccKind Kind = SuccKind::Halt;
  BlockId Taken = InvalidBlockId; ///< Branch/jump target or static callee.
  BlockId Fall = InvalidBlockId;  ///< Fallthrough / call continuation.
};

/// Per-block successor classification over one PreparedModule.
class SuccessorTable {
public:
  /// \p PM must outlive the table.
  explicit SuccessorTable(const PreparedModule &PM);

  size_t numBlocks() const { return Infos.size(); }

  const SuccInfo &info(BlockId B) const { return Infos[B]; }

  /// True when \p B is a method entry (pc 0), the only legal target of
  /// an indirect call.
  bool isMethodEntry(BlockId B) const { return MethodEntry[B]; }

  /// True for kinds whose transition carries no wire bytes.
  static bool inferable(SuccKind K) {
    return K != SuccKind::CondBranch && K != SuccKind::Indirect &&
           K != SuccKind::IndirectCall;
  }

private:
  std::vector<SuccInfo> Infos;
  std::vector<bool> MethodEntry;
};

} // namespace btrace
} // namespace jtc

#endif // JTC_BTRACE_SUCCESSORTABLE_H
