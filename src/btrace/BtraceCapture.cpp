//===- btrace/BtraceCapture.cpp -------------------------------------------===//

#include "btrace/BtraceCapture.h"

#include "persist/Snapshot.h"
#include "vm/ModuleFingerprint.h"

using namespace jtc;
using namespace jtc::btrace;
using persist::PersistError;
using persist::PersistErrorKind;

std::unique_ptr<BtraceFileCapture>
BtraceFileCapture::start(TraceVM &VM, const std::string &Path,
                         const std::string &Spec, uint32_t Scale,
                         PersistError &Err) {
  std::unique_ptr<BtraceFileCapture> C(new BtraceFileCapture());
  C->Path = Path;
  C->Out.open(Path, std::ios::binary | std::ios::trunc);
  if (!C->Out) {
    Err = PersistError::make(PersistErrorKind::Io,
                             "cannot open btrace output '" + Path + "'");
    return nullptr;
  }

  BtraceHeader H = BtraceHeader::fromOptions(VM.options());
  H.Fingerprint = moduleFingerprint(VM.prepared());
  H.Spec = Spec;
  H.Scale = Scale;
  // Capture the state the session will actually start from: anything a
  // --load-profile installed is already in the VM here.
  persist::SnapshotData SD = persist::captureSnapshot(VM);
  if (!SD.empty()) {
    H.Seed = persist::encodeSnapshot(SD);
    H.Flags |= FlagHasSeed;
  }

  C->ST = std::make_unique<SuccessorTable>(VM.prepared());
  std::ofstream *OutPtr = &C->Out;
  C->Enc = std::make_unique<BtraceEncoder>(
      VM.prepared(), *C->ST, std::move(H),
      [OutPtr](const uint8_t *Data, size_t Size) {
        OutPtr->write(reinterpret_cast<const char *>(Data),
                      static_cast<std::streamsize>(Size));
        return static_cast<bool>(*OutPtr);
      });
  C->Enc->setTelemetry(VM.telemetry());
  VM.setTransitionSink(C->Enc.get());
  Err = PersistError();
  return C;
}

bool BtraceFileCapture::finish(PersistError &Err) {
  Out.close();
  if (!Enc->ok() || Out.fail()) {
    Err = PersistError::make(PersistErrorKind::Io,
                             "btrace capture to '" + Path + "' failed");
    return false;
  }
  Err = PersistError();
  return true;
}
