//===- btrace/BtraceReplay.cpp --------------------------------------------===//

#include "btrace/BtraceReplay.h"

#include "persist/Snapshot.h"
#include "vm/AdaptiveEngine.h"

using namespace jtc;
using namespace jtc::btrace;
using persist::PersistError;
using persist::PersistErrorKind;

bool btrace::replayBtrace(const uint8_t *Data, size_t Size,
                          const PreparedModule &PM, ReplayResult &Out,
                          PersistError &Err) {
  // Parse the header first: the engine must exist (configured and
  // seeded) before the walk starts feeding it transitions.
  BtraceHeader H;
  size_t HeaderSize = 0;
  if (!decodeHeader(Data, Size, H, HeaderSize, Err))
    return false;

  VmOptions Options = H.toOptions();
  AdaptiveEngine Engine(PM, Options);

  ReplayResult R;
  if (H.hasSeed()) {
    persist::SnapshotData SD;
    if (!persist::decodeSnapshot(H.Seed.data(), H.Seed.size(), SD, Err))
      return false;
    if (SD.Fingerprint != H.Fingerprint) {
      Err = PersistError::make(
          PersistErrorKind::FingerprintMismatch,
          "embedded seed was captured over a different module");
      return false;
    }
    if (!persist::validateSeed(SD.Seed, PM, Err))
      return false;
    // Verbatim install: the capture exported exactly the state the live
    // session started from, so no completion filtering here -- filtering
    // again would diverge from the run being replayed.
    Engine.importSeed(SD.Seed);
    R.SeedNodes = SD.Seed.Nodes.size();
    R.SeedTraces = SD.Seed.Traces.size();
  }

  SuccessorTable ST(PM);
  bool First = true;
  BlockId Prev = InvalidBlockId;
  uint64_t Walked = 0;
  auto Drive = [&](BlockId B) {
    // The exact call sequence of TraceVM::run: begin(entry), then
    // executed(cur) before each transition(cur, next).
    if (First) {
      Engine.begin(B);
      First = false;
    } else {
      Engine.transition(Prev, B);
    }
    Engine.executed(B);
    Prev = B;
    ++Walked;
  };
  if (!decodeBtrace(Data, Size, PM, ST, R.Header, R.End, Drive, Err))
    return false;
  Engine.endRun();

  R.Stats = Engine.snapshotStats(R.End.Instructions);
  R.ReplayDigest = R.Stats.digest();
  R.DigestMatch = R.ReplayDigest == R.End.StatsDigest;
  R.BlocksWalked = Walked;
  Out = std::move(R);
  Err = PersistError();
  return true;
}
