//===- btrace/BtraceEncoder.h - Compressed branch-trace encoder -*- C++ -*-===//
///
/// \file
/// The capture side of the btrace pipeline: a BlockTransitionSink that
/// compresses a TraceVM session's block stream into .btc packets
/// (BtraceFormat.h) as it happens. Per transition the cost is a table
/// lookup plus, for the non-inferable kinds, a bit in the TNT buffer or
/// one short TIP packet; everything else is free. Output is buffered and
/// handed to a caller-supplied write callback; a failing write abandons
/// the capture (recording a BtraceDropped event) without disturbing the
/// VM run -- observability must never turn into a VM fault.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BTRACE_BTRACEENCODER_H
#define JTC_BTRACE_BTRACEENCODER_H

#include "btrace/BtraceFormat.h"
#include "btrace/SuccessorTable.h"
#include "persist/ByteStream.h"
#include "telemetry/EventRing.h"
#include "vm/BlockTransitionSink.h"

#include <functional>

namespace jtc {
namespace btrace {

/// Sink for encoded bytes. Returns false on failure (disk full, closed
/// pipe); the encoder then drops the capture permanently.
using WriteFn = std::function<bool(const uint8_t *Data, size_t Size)>;

/// Capture-side accounting, reported by tools and the service layer.
struct EncoderStats {
  uint64_t BytesWritten = 0; ///< Bytes successfully handed to the sink.
  uint64_t TntPackets = 0;
  uint64_t TipPackets = 0;
  uint64_t SyncPackets = 0;
  uint64_t Flushes = 0;
  uint64_t Blocks = 0;  ///< Blocks observed (= stream BlocksExecuted).
  bool Dropped = false; ///< The sink failed; the stream is abandoned.
};

class BtraceEncoder : public BlockTransitionSink {
public:
  /// \p Header must be fully populated except EntryBlock (stamped at
  /// onRunStart). \p PM and \p ST must outlive the encoder.
  BtraceEncoder(const PreparedModule &PM, const SuccessorTable &ST,
                BtraceHeader Header, WriteFn Write);

  /// Attaches the telemetry ring for Btrace* events (null detaches).
  void setTelemetry(EventRing *R) { Telem = R; }

  void onRunStart(BlockId Entry) override;
  void onTransition(BlockId From, BlockId To) override;
  void onRunEnd(const RunResult &R, const VmStats &Final) override;

  const EncoderStats &encoderStats() const { return Stats; }

  /// False once the sink has failed (the stream on disk is truncated and
  /// carries no END packet).
  bool ok() const { return !Stats.Dropped; }

private:
  void flushTnt();
  void emitSync(BlockId Cur);
  void flush(bool Force);

  const PreparedModule *PM;
  const SuccessorTable *ST;
  BtraceHeader Header;
  WriteFn Write;
  EventRing *Telem = nullptr;

  persist::ByteWriter Buf;
  size_t CrcdInBuf = 0; ///< Buf prefix already folded into CrcState.
  uint32_t CrcState = 0;

  uint64_t TntBits = 0;
  uint32_t TntCount = 0;
  std::vector<BlockId> Stack; ///< Shadow call stack of continuations.

  EncoderStats Stats;
};

} // namespace btrace
} // namespace jtc

#endif // JTC_BTRACE_BTRACEENCODER_H
