//===- btrace/BtraceReplay.h - Deterministic stream replay ------*- C++ -*-===//
///
/// \file
/// Deterministic re-execution of a captured session's *adaptive*
/// behaviour from nothing but the .btc stream and the module. The
/// decoded block sequence drives an AdaptiveEngine through exactly the
/// calls the live TraceVM made -- same options, same warm-start seed,
/// same transition order -- so the profiler, the trace cache and every
/// VmStats counter recompute bit-identically. The replayed stats digest
/// is compared against the digest the encoder recorded at run end: a
/// match proves the stream captured everything the adaptive machinery
/// depended on; a mismatch means the stream, the module or the engine
/// diverged (which the fuzzer treats as a found bug).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BTRACE_BTRACEREPLAY_H
#define JTC_BTRACE_BTRACEREPLAY_H

#include "btrace/BtraceDecoder.h"
#include "vm/VmStats.h"

namespace jtc {
namespace btrace {

/// Outcome of a successful replay (decode + engine drive).
struct ReplayResult {
  BtraceHeader Header;
  BtraceEnd End;
  VmStats Stats;             ///< Recomputed by the replay engine.
  uint64_t ReplayDigest = 0; ///< Stats.digest().
  bool DigestMatch = false;  ///< ReplayDigest == End.StatsDigest.
  uint64_t BlocksWalked = 0;
  size_t SeedNodes = 0;  ///< Warm-start seed contents, when present.
  size_t SeedTraces = 0;
};

/// Replays \p Data over \p PM. Returns true with \p Out filled when the
/// stream decodes cleanly and the engine consumed it (DigestMatch still
/// reports whether the stats matched); false with a typed \p Err when
/// the stream is unusable (decode failure, or an embedded seed that does
/// not validate against \p PM).
bool replayBtrace(const uint8_t *Data, size_t Size, const PreparedModule &PM,
                  ReplayResult &Out, persist::PersistError &Err);

} // namespace btrace
} // namespace jtc

#endif // JTC_BTRACE_BTRACEREPLAY_H
