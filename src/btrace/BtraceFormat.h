//===- btrace/BtraceFormat.h - .btc branch-trace wire format ----*- C++ -*-===//
///
/// \file
/// The compressed branch-trace (.btc) stream format, the hardware
/// processor-trace idiom (Intel PT, RISC-V N-trace) applied to the VM's
/// block dispatch stream: the encoder records only control flow the
/// decoder cannot infer from the module itself. Transitions whose target
/// is statically known -- fallthroughs, unconditional jumps, static
/// calls, and returns (reconstructed by a decoder-side shadow call
/// stack) -- cost zero bits; a conditional branch costs one bit in a
/// taken/not-taken bitmap packet; only genuinely indirect transfers
/// (tableswitch, virtual dispatch) carry a target, and then as a
/// zigzag-varint block-id delta. Real workloads land well under a byte
/// per executed block (bench/btrace_overhead measures this).
///
/// Stream layout:
///
///   header                                        (see BtraceHeader)
///   packet*                                       TNT | TIP | SYNC
///   END packet                                    exactly one, last
///
/// Packets:
///
///   TNT  0x01  u8 count(1..64), ceil(count/8) bytes   conditional
///        outcomes, oldest in the lowest bit, 1 = taken.
///   TIP  0x02  svarint(To - From)                     indirect target,
///        resolved against the source block at consumption time.
///   SYNC 0x03  + 7 fixed marker bytes, then varint BlocksExecuted,
///        varint CurBlock, varint StackDepth, StackDepth varint block
///        ids (bottom to top), u32 CRC32 of the payload varints. A
///        self-delimiting resynchronization point: the 8-byte marker is
///        scannable from arbitrary offsets (the PT PSB idiom), and the
///        recorded walk state lets a decoder resume after upstream loss.
///        The encoder drains its TNT buffer first, so both logical
///        sub-streams are empty exactly at a sync.
///   END  0x04  u8 RunStatus, u8 TrapKind, varint BlocksExecuted,
///        varint Instructions, u64 VmStats digest, u32 CRC32 of the
///        whole stream up to this field. Anything after it is an error.
///
/// All multi-byte fixed integers are little-endian; varints are LEB128
/// and svarints zigzag-LEB128 (persist/ByteStream.h).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BTRACE_BTRACEFORMAT_H
#define JTC_BTRACE_BTRACEFORMAT_H

#include "interp/RunResult.h"
#include "persist/PersistError.h"
#include "support/Ids.h"
#include "vm/VmOptions.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jtc {
namespace btrace {

inline constexpr uint8_t Magic[4] = {'J', 'T', 'C', 'B'};
inline constexpr uint32_t FormatVersion = 1;

/// Header flag: a persist-encoded warm-start seed blob is present.
inline constexpr uint32_t FlagHasSeed = 1u << 0;

enum class PacketKind : uint8_t {
  Tnt = 0x01,
  Tip = 0x02,
  Sync = 0x03,
  End = 0x04,
};

/// The full SYNC marker, beginning with the packet byte. Scanning for
/// these 8 bytes finds resynchronization points in a damaged stream; a
/// false positive is rejected by the payload CRC.
inline constexpr uint8_t SyncMarker[8] = {0x03, 0x82, 'J', 'T',
                                          'C',  'S',  0x99, 0x7d};

/// Everything the stream header carries: the identity gate (module
/// fingerprint), the complete adaptive configuration of the captured
/// session (so replay reconstructs the profiler and trace cache with the
/// exact same knobs), provenance (module spec string + workload scale,
/// informational), the entry block, and the optional warm-start seed the
/// session began from.
struct BtraceHeader {
  uint32_t Version = FormatVersion;
  uint32_t Flags = 0;
  uint64_t Fingerprint = 0; ///< moduleFingerprint of the captured module.

  // The captured session's VmOptions (the adaptive subset).
  double Threshold = 0.97;
  uint32_t Delay = 64;
  uint32_t Decay = 256;
  uint32_t TraceBlocks = 64;
  bool Profiling = true;
  bool Traces = true;
  uint64_t Budget = ~0ull;
  uint32_t SyncInterval = 4096;

  uint32_t Scale = 1;      ///< Workload scale (informational).
  std::string Spec;        ///< Module spec, e.g. "workload:compress".
  BlockId EntryBlock = 0;

  /// persist::encodeSnapshot blob of the seed installed before the run
  /// (empty for a cold session). Replay installs it verbatim.
  std::vector<uint8_t> Seed;

  bool hasSeed() const { return (Flags & FlagHasSeed) != 0; }

  /// The VmOptions a replay engine must use to reproduce the run.
  VmOptions toOptions() const;

  /// Populates the adaptive fields from \p O (everything except
  /// fingerprint, spec/scale, entry and seed).
  static BtraceHeader fromOptions(const VmOptions &O);
};

/// The END packet: how the run stopped, the oracle totals, and the
/// digest replay must reproduce.
struct BtraceEnd {
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  uint64_t BlocksExecuted = 0;
  uint64_t Instructions = 0;
  uint64_t StatsDigest = 0;
};

/// Serializes \p H (including its trailing header CRC32).
std::vector<uint8_t> encodeHeader(const BtraceHeader &H);

/// Strictly parses a stream header. On success fills \p H, sets
/// \p HeaderSize to the number of bytes consumed (the first packet
/// starts there) and returns true; otherwise returns false with a typed
/// \p Err (BadMagic / VersionSkew / Truncated / ChecksumMismatch /
/// Malformed) and leaves \p H unspecified.
bool decodeHeader(const uint8_t *Data, size_t Size, BtraceHeader &H,
                  size_t &HeaderSize, persist::PersistError &Err);

} // namespace btrace
} // namespace jtc

#endif // JTC_BTRACE_BTRACEFORMAT_H
