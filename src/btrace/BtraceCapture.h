//===- btrace/BtraceCapture.h - File-backed capture sessions ----*- C++ -*-===//
///
/// \file
/// Convenience layer tying a BtraceEncoder to a TraceVM and a file:
/// builds the header from the VM's options and module fingerprint,
/// embeds the warm-start seed the VM actually holds (exported *after*
/// any profile load, so replay starts from the same state), attaches the
/// encoder as the VM's transition sink, and streams packets to disk.
/// Used by jtcvm --btrace-out and by the service layer's per-session
/// capture with rotation.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BTRACE_BTRACECAPTURE_H
#define JTC_BTRACE_BTRACECAPTURE_H

#include "btrace/BtraceEncoder.h"
#include "vm/TraceVM.h"

#include <fstream>
#include <memory>
#include <string>

namespace jtc {
namespace btrace {

/// One file-backed capture. Lifecycle: start() before VM.run(), then run,
/// then finish(). The capture object must outlive the run.
class BtraceFileCapture {
public:
  /// Opens \p Path and attaches a capture to \p VM (which must not have
  /// run). \p Spec and \p Scale are recorded as provenance. If the VM
  /// holds a non-empty profile (e.g. --load-profile ran first), it is
  /// embedded as the stream's seed. Returns null with \p Err on I/O
  /// failure.
  static std::unique_ptr<BtraceFileCapture>
  start(TraceVM &VM, const std::string &Path, const std::string &Spec,
        uint32_t Scale, persist::PersistError &Err);

  /// Closes the stream after the run. False (with \p Err, kind Io) when
  /// any write or the final flush failed -- the file then lacks an END
  /// packet and only recoverTail() can read it.
  bool finish(persist::PersistError &Err);

  const EncoderStats &encoderStats() const { return Enc->encoderStats(); }
  const std::string &path() const { return Path; }

private:
  BtraceFileCapture() = default;

  std::string Path;
  std::ofstream Out;
  std::unique_ptr<SuccessorTable> ST;
  std::unique_ptr<BtraceEncoder> Enc;
};

} // namespace btrace
} // namespace jtc

#endif // JTC_BTRACE_BTRACECAPTURE_H
