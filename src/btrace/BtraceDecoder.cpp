//===- btrace/BtraceDecoder.cpp -------------------------------------------===//

#include "btrace/BtraceDecoder.h"

#include "persist/ByteStream.h"
#include "persist/Crc32.h"
#include "vm/ModuleFingerprint.h"

#include <cstring>

using namespace jtc;
using namespace jtc::btrace;
using persist::PersistError;
using persist::PersistErrorKind;

namespace {

/// Upper bound on a sync packet's recorded call depth; anything larger
/// is corruption, not a program (the Machine traps StackOverflow far
/// below this).
constexpr uint64_t MaxSyncDepth = 1u << 20;

/// The packet side of a stream, separated into the two logical
/// sub-streams plus the bookkeeping packets.
struct PacketSet {
  std::vector<uint8_t> Bits; ///< TNT outcomes, one per entry, in order.
  std::vector<int64_t> Deltas;
  std::vector<SyncPoint> Syncs;
  bool SawEnd = false;
  BtraceEnd End;
};

PersistError malformed(std::string Detail) {
  return PersistError::make(PersistErrorKind::Malformed, std::move(Detail));
}

/// Scans packets in [Start, Size). Strict mode reports the first defect
/// (including the stream CRC and trailing-garbage checks, which need
/// \p Data from byte 0); tolerant mode stops collecting at the first
/// defect and reports success with what it has.
bool scanPackets(const uint8_t *Data, size_t Size, size_t Start, bool Strict,
                 PacketSet &Out, PersistError &Err) {
  persist::ByteReader R(Data + Start, Size - Start);
  auto Offset = [&]() { return Size - R.remaining(); };
  while (!R.exhausted()) {
    uint8_t Kind = 0;
    R.u8(Kind);
    switch (static_cast<PacketKind>(Kind)) {
    case PacketKind::Tnt: {
      uint8_t Count = 0;
      const uint8_t *Payload = nullptr;
      if (!R.u8(Count) || Count == 0 || Count > 64 ||
          !R.span((Count + 7) / 8, Payload)) {
        Err = Count > 64 || (Count == 0 && !R.failed())
                  ? malformed("bad TNT bit count")
                  : PersistError::make(PersistErrorKind::Truncated,
                                       "stream ends inside a TNT packet");
        return !Strict;
      }
      for (uint8_t I = 0; I < Count; ++I)
        Out.Bits.push_back((Payload[I / 8] >> (I % 8)) & 1);
      break;
    }
    case PacketKind::Tip: {
      int64_t Delta = 0;
      if (!R.svarint(Delta)) {
        Err = PersistError::make(PersistErrorKind::Truncated,
                                 "stream ends inside a TIP packet");
        return !Strict;
      }
      Out.Deltas.push_back(Delta);
      break;
    }
    case PacketKind::Sync: {
      size_t MarkerAt = Offset() - 1;
      const uint8_t *Tail = nullptr;
      if (!R.span(sizeof(SyncMarker) - 1, Tail) ||
          std::memcmp(Tail, SyncMarker + 1, sizeof(SyncMarker) - 1) != 0) {
        Err = Tail ? malformed("bad sync marker")
                   : PersistError::make(PersistErrorKind::Truncated,
                                        "stream ends inside a sync marker");
        return !Strict;
      }
      size_t PayloadAt = Offset();
      SyncPoint S;
      S.Offset = MarkerAt;
      uint64_t Cur = 0, Depth = 0;
      bool Ok = R.varint(S.BlocksExecuted) && R.varint(Cur) && R.varint(Depth);
      if (Ok && Depth > MaxSyncDepth) {
        Err = malformed("absurd sync stack depth");
        return !Strict;
      }
      for (uint64_t I = 0; Ok && I < Depth; ++I) {
        uint64_t B = 0;
        Ok = R.varint(B) && B <= InvalidBlockId;
        if (Ok)
          S.Stack.push_back(static_cast<BlockId>(B));
      }
      size_t CrcAt = Offset();
      uint32_t Crc = 0;
      Ok = Ok && Cur <= InvalidBlockId && R.u32(Crc);
      if (!Ok) {
        Err = PersistError::make(PersistErrorKind::Truncated,
                                 "stream ends inside a sync packet");
        return !Strict;
      }
      if (persist::crc32(Data + PayloadAt, CrcAt - PayloadAt) != Crc) {
        Err = PersistError::make(PersistErrorKind::ChecksumMismatch,
                                 "sync packet CRC mismatch");
        return !Strict;
      }
      S.Cur = static_cast<BlockId>(Cur);
      S.AfterOffset = Offset();
      Out.Syncs.push_back(std::move(S));
      break;
    }
    case PacketKind::End: {
      uint8_t Status = 0, Trap = 0;
      BtraceEnd E;
      bool Ok = R.u8(Status) && R.u8(Trap) && R.varint(E.BlocksExecuted) &&
                R.varint(E.Instructions) && R.u64(E.StatsDigest);
      size_t CrcAt = Offset();
      uint32_t Crc = 0;
      Ok = Ok && R.u32(Crc);
      if (!Ok) {
        Err = PersistError::make(PersistErrorKind::Truncated,
                                 "stream ends inside the END packet");
        return !Strict;
      }
      if (Status > static_cast<uint8_t>(RunStatus::BudgetExhausted) ||
          Trap > static_cast<uint8_t>(TrapKind::VmReuse)) {
        Err = malformed("END packet with unknown status or trap");
        return !Strict;
      }
      E.Status = static_cast<RunStatus>(Status);
      E.Trap = static_cast<TrapKind>(Trap);
      if (Strict) {
        if (persist::crc32(Data, CrcAt) != Crc) {
          Err = PersistError::make(PersistErrorKind::ChecksumMismatch,
                                   "stream CRC mismatch");
          return false;
        }
        if (!R.exhausted()) {
          Err = malformed("trailing data after the END packet");
          return false;
        }
      }
      Out.End = E;
      Out.SawEnd = true;
      return true;
    }
    default:
      Err = malformed("unknown packet kind " + std::to_string(Kind));
      return !Strict;
    }
  }
  Err = PersistError::make(PersistErrorKind::Truncated,
                           "stream has no END packet");
  return !Strict;
}

} // namespace

bool btrace::decodeBtrace(const uint8_t *Data, size_t Size,
                          const PreparedModule &PM, const SuccessorTable &ST,
                          BtraceHeader &H, BtraceEnd &E,
                          const std::function<void(BlockId)> &OnBlock,
                          PersistError &Err) {
  size_t HeaderSize = 0;
  if (!decodeHeader(Data, Size, H, HeaderSize, Err))
    return false;
  if (H.Fingerprint != moduleFingerprint(PM)) {
    Err = PersistError::make(PersistErrorKind::FingerprintMismatch,
                             "stream was captured over a different module");
    return false;
  }

  PacketSet P;
  if (!scanPackets(Data, Size, HeaderSize, /*Strict=*/true, P, Err))
    return false;
  E = P.End;

  const size_t NumBlocks = ST.numBlocks();
  const uint64_t N = E.BlocksExecuted;
  if (N == 0) {
    Err = malformed("END packet records zero executed blocks");
    return false;
  }
  if (H.EntryBlock != PM.entryBlock()) {
    Err = malformed("stream does not begin at the module entry block");
    return false;
  }

  // The walk. Failure past this point is Malformed: the stream is
  // structurally sound but tells an impossible story about the module.
  size_t BitsAt = 0, DeltasAt = 0, SyncsAt = 0;
  std::vector<BlockId> Stack;
  BlockId Cur = H.EntryBlock;
  uint64_t Count = 1;
  uint64_t InstrSum = PM.blockSize(Cur);
  uint64_t LastSize = InstrSum;
  OnBlock(Cur);

  auto CheckSyncs = [&]() -> bool {
    while (SyncsAt < P.Syncs.size() &&
           P.Syncs[SyncsAt].BlocksExecuted <= Count) {
      const SyncPoint &S = P.Syncs[SyncsAt];
      if (S.BlocksExecuted != Count || S.Cur != Cur || S.Stack != Stack)
        return false;
      ++SyncsAt;
    }
    return true;
  };
  if (!CheckSyncs()) {
    Err = malformed("sync packet contradicts the walk");
    return false;
  }

  while (Count < N) {
    const SuccInfo &I = ST.info(Cur);
    BlockId Next = InvalidBlockId;
    switch (I.Kind) {
    case SuccKind::FallThrough:
      Next = I.Fall;
      break;
    case SuccKind::Jump:
      Next = I.Taken;
      break;
    case SuccKind::CondBranch:
      if (BitsAt >= P.Bits.size()) {
        Err = malformed("TNT bit stream underrun");
        return false;
      }
      Next = P.Bits[BitsAt++] ? I.Taken : I.Fall;
      break;
    case SuccKind::Indirect:
    case SuccKind::IndirectCall: {
      if (DeltasAt >= P.Deltas.size()) {
        Err = malformed("TIP delta stream underrun");
        return false;
      }
      int64_t Target = static_cast<int64_t>(Cur) + P.Deltas[DeltasAt++];
      if (Target < 0 || Target >= static_cast<int64_t>(NumBlocks)) {
        Err = malformed("TIP target out of range");
        return false;
      }
      Next = static_cast<BlockId>(Target);
      if (I.Kind == SuccKind::IndirectCall) {
        if (!ST.isMethodEntry(Next)) {
          Err = malformed("indirect call to a non-entry block");
          return false;
        }
        Stack.push_back(I.Fall);
      }
      break;
    }
    case SuccKind::StaticCall:
      Stack.push_back(I.Fall);
      Next = I.Taken;
      break;
    case SuccKind::Ret:
      if (Stack.empty()) {
        // A bottom-frame return ends the run; it cannot have a
        // successor mid-stream.
        Err = malformed("return past the shadow stack bottom");
        return false;
      }
      Next = Stack.back();
      Stack.pop_back();
      break;
    case SuccKind::Halt:
      Err = malformed("successor recorded for a halting block");
      return false;
    }
    if (Next == InvalidBlockId) {
      Err = malformed("walk reached a successor that is not a block");
      return false;
    }
    Cur = Next;
    ++Count;
    LastSize = PM.blockSize(Cur);
    InstrSum += LastSize;
    OnBlock(Cur);
    if (!CheckSyncs()) {
      Err = malformed("sync packet contradicts the walk");
      return false;
    }
  }

  // Exact-consumption: a correct encoder leaves nothing over.
  if (BitsAt != P.Bits.size()) {
    Err = malformed("unconsumed TNT bits after the walk");
    return false;
  }
  if (DeltasAt != P.Deltas.size()) {
    Err = malformed("unconsumed TIP deltas after the walk");
    return false;
  }
  if (SyncsAt != P.Syncs.size()) {
    Err = malformed("sync packet beyond the recorded block count");
    return false;
  }

  // End-condition consistency.
  if (E.Status == RunStatus::Finished) {
    SuccKind K = ST.info(Cur).Kind;
    bool BottomRet = K == SuccKind::Ret && Stack.empty();
    if (K != SuccKind::Halt && !BottomRet) {
      Err = malformed("Finished stream does not end at a halt or return");
      return false;
    }
  }

  // Instruction-total consistency. Finished and budget-exhausted runs
  // execute every walked block to its end; a trap may cut the last block
  // short (but executes at least its first instruction).
  bool InstrOk = E.Status == RunStatus::Trapped
                     ? E.Instructions > InstrSum - LastSize &&
                           E.Instructions <= InstrSum
                     : E.Instructions == InstrSum;
  if (!InstrOk) {
    Err = malformed("recorded instruction total contradicts the blocks");
    return false;
  }

  Err = PersistError();
  return true;
}

std::vector<SyncPoint> btrace::scanSyncPoints(const uint8_t *Data,
                                              size_t Size) {
  std::vector<SyncPoint> Out;
  if (Size < sizeof(SyncMarker))
    return Out;
  for (size_t I = 0; I + sizeof(SyncMarker) <= Size;) {
    if (std::memcmp(Data + I, SyncMarker, sizeof(SyncMarker)) != 0) {
      ++I;
      continue;
    }
    size_t PayloadAt = I + sizeof(SyncMarker);
    persist::ByteReader R(Data + PayloadAt, Size - PayloadAt);
    SyncPoint S;
    S.Offset = I;
    uint64_t Cur = 0, Depth = 0;
    bool Ok = R.varint(S.BlocksExecuted) && R.varint(Cur) && R.varint(Depth) &&
              Depth <= MaxSyncDepth && Cur <= InvalidBlockId;
    for (uint64_t J = 0; Ok && J < Depth; ++J) {
      uint64_t B = 0;
      Ok = R.varint(B) && B <= InvalidBlockId;
      if (Ok)
        S.Stack.push_back(static_cast<BlockId>(B));
    }
    size_t CrcAt = Ok ? Size - R.remaining() : 0;
    uint32_t Crc = 0;
    Ok = Ok && R.u32(Crc) &&
         persist::crc32(Data + PayloadAt, CrcAt - PayloadAt) == Crc;
    if (!Ok) {
      ++I; // not a real sync; keep scanning inside it
      continue;
    }
    S.Cur = static_cast<BlockId>(Cur);
    S.AfterOffset = Size - R.remaining();
    I = S.AfterOffset;
    Out.push_back(std::move(S));
  }
  return Out;
}

TailRecovery btrace::recoverTail(const uint8_t *Data, size_t Size,
                                 const PreparedModule & /*PM*/,
                                 const SuccessorTable &ST,
                                 uint64_t MaxBlocks) {
  TailRecovery Out;
  std::vector<SyncPoint> Syncs = scanSyncPoints(Data, Size);
  const size_t NumBlocks = ST.numBlocks();

  for (size_t Idx = Syncs.size(); Idx-- > 0;) {
    const SyncPoint &S = Syncs[Idx];
    if (S.Cur >= NumBlocks)
      continue; // CRC-valid but nonsensical for this module
    PacketSet P;
    PersistError Ignored;
    scanPackets(Data, Size, S.AfterOffset, /*Strict=*/false, P, Ignored);

    Out.Found = true;
    Out.From = S;
    Out.SawEnd = P.SawEnd;
    Out.End = P.End;
    Out.Blocks.clear();
    Out.Blocks.push_back(S.Cur);

    size_t BitsAt = 0, DeltasAt = 0;
    std::vector<BlockId> Stack = S.Stack;
    BlockId Cur = S.Cur;
    uint64_t Count = S.BlocksExecuted;
    while (Out.Blocks.size() < MaxBlocks &&
           !(P.SawEnd && Count >= P.End.BlocksExecuted)) {
      const SuccInfo &I = ST.info(Cur);
      BlockId Next = InvalidBlockId;
      bool Stop = false;
      switch (I.Kind) {
      case SuccKind::FallThrough:
        Next = I.Fall;
        break;
      case SuccKind::Jump:
        Next = I.Taken;
        break;
      case SuccKind::CondBranch:
        if (BitsAt >= P.Bits.size())
          Stop = true; // the stream was cut here
        else
          Next = P.Bits[BitsAt++] ? I.Taken : I.Fall;
        break;
      case SuccKind::Indirect:
      case SuccKind::IndirectCall:
        if (DeltasAt >= P.Deltas.size()) {
          Stop = true;
        } else {
          int64_t T = static_cast<int64_t>(Cur) + P.Deltas[DeltasAt++];
          if (T < 0 || T >= static_cast<int64_t>(NumBlocks))
            Stop = true;
          else {
            Next = static_cast<BlockId>(T);
            if (I.Kind == SuccKind::IndirectCall) {
              if (!ST.isMethodEntry(Next))
                Stop = true;
              else
                Stack.push_back(I.Fall);
            }
          }
        }
        break;
      case SuccKind::StaticCall:
        Stack.push_back(I.Fall);
        Next = I.Taken;
        break;
      case SuccKind::Ret:
        if (Stack.empty())
          Stop = true; // bottom-frame return: the run ended
        else {
          Next = Stack.back();
          Stack.pop_back();
        }
        break;
      case SuccKind::Halt:
        Stop = true;
        break;
      }
      if (Stop || Next == InvalidBlockId)
        break;
      Cur = Next;
      ++Count;
      Out.Blocks.push_back(Cur);
    }
    return Out;
  }
  return Out;
}
