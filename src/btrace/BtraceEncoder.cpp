//===- btrace/BtraceEncoder.cpp -------------------------------------------===//

#include "btrace/BtraceEncoder.h"

#include "persist/Crc32.h"

#include <cassert>

using namespace jtc;
using namespace jtc::btrace;

namespace {
/// Flush the output buffer once it holds this much.
constexpr size_t FlushThreshold = 64 * 1024;
} // namespace

BtraceEncoder::BtraceEncoder(const PreparedModule &PM,
                             const SuccessorTable &ST, BtraceHeader Header,
                             WriteFn Write)
    : PM(&PM), ST(&ST), Header(std::move(Header)), Write(std::move(Write)),
      CrcState(persist::crc32Init()) {}

void BtraceEncoder::onRunStart(BlockId Entry) {
  Header.EntryBlock = Entry;
  std::vector<uint8_t> H = encodeHeader(Header);
  Buf.bytes(H.data(), H.size());
  Stats.Blocks = 1; // the entry block executes before any transition
  JTC_RECORD_EVENT(Telem, EventKind::BtraceStarted, 0, Header.SyncInterval);
}

void BtraceEncoder::onTransition(BlockId From, BlockId To) {
  if (Stats.Dropped)
    return;
  const SuccInfo &I = ST->info(From);
  switch (I.Kind) {
  case SuccKind::FallThrough:
  case SuccKind::Jump:
    assert((To == I.Fall || To == I.Taken) && "inferable successor diverged");
    break;
  case SuccKind::CondBranch:
    assert((To == I.Taken || To == I.Fall) && "branch to a third target");
    TntBits |= static_cast<uint64_t>(To == I.Taken) << TntCount;
    if (++TntCount == 64)
      flushTnt();
    break;
  case SuccKind::Indirect:
    Buf.u8(static_cast<uint8_t>(PacketKind::Tip));
    Buf.svarint(static_cast<int64_t>(To) - static_cast<int64_t>(From));
    ++Stats.TipPackets;
    break;
  case SuccKind::StaticCall:
    assert(To == I.Taken && "static call to an unexpected callee");
    Stack.push_back(I.Fall);
    break;
  case SuccKind::IndirectCall:
    Buf.u8(static_cast<uint8_t>(PacketKind::Tip));
    Buf.svarint(static_cast<int64_t>(To) - static_cast<int64_t>(From));
    ++Stats.TipPackets;
    Stack.push_back(I.Fall);
    break;
  case SuccKind::Ret:
    assert(!Stack.empty() && "return past the shadow stack bottom");
    assert(To == Stack.back() && "return to an unexpected continuation");
    Stack.pop_back();
    break;
  case SuccKind::Halt:
    assert(false && "transition out of a halting block");
    break;
  }

  ++Stats.Blocks;
  if (Header.SyncInterval != 0 && Stats.Blocks % Header.SyncInterval == 0)
    emitSync(To);
  if (Buf.size() >= FlushThreshold)
    flush(/*Force=*/false);
}

void BtraceEncoder::onRunEnd(const RunResult &R, const VmStats &Final) {
  if (Stats.Dropped)
    return;
  assert(Stats.Blocks == Final.BlocksExecuted &&
         "sink block count diverged from the VM's");
  flushTnt();
  Buf.u8(static_cast<uint8_t>(PacketKind::End));
  Buf.u8(static_cast<uint8_t>(R.Status));
  Buf.u8(static_cast<uint8_t>(R.Trap));
  Buf.varint(Final.BlocksExecuted);
  Buf.varint(R.Instructions);
  Buf.u64(Final.digest());
  // The stream CRC covers everything up to (not including) itself.
  CrcState = persist::crc32Update(CrcState, Buf.buffer().data() + CrcdInBuf,
                                  Buf.size() - CrcdInBuf);
  CrcdInBuf = Buf.size();
  Buf.u32(persist::crc32Final(CrcState));
  flush(/*Force=*/true);
}

void BtraceEncoder::flushTnt() {
  if (TntCount == 0)
    return;
  Buf.u8(static_cast<uint8_t>(PacketKind::Tnt));
  Buf.u8(static_cast<uint8_t>(TntCount));
  for (uint32_t I = 0; I < TntCount; I += 8)
    Buf.u8(static_cast<uint8_t>(TntBits >> I));
  TntBits = 0;
  TntCount = 0;
  ++Stats.TntPackets;
}

void BtraceEncoder::emitSync(BlockId Cur) {
  // Drain the TNT buffer so both logical sub-streams are empty here: a
  // decoder resuming from this point starts with clean queues.
  flushTnt();
  Buf.bytes(SyncMarker, sizeof(SyncMarker));
  persist::ByteWriter P;
  P.varint(Stats.Blocks);
  P.varint(Cur);
  P.varint(Stack.size());
  for (BlockId B : Stack)
    P.varint(B);
  Buf.bytes(P.buffer().data(), P.size());
  Buf.u32(persist::crc32(P.buffer().data(), P.size()));
  ++Stats.SyncPackets;
}

void BtraceEncoder::flush(bool Force) {
  if (Stats.Dropped || (Buf.size() == 0 && !Force))
    return;
  CrcState = persist::crc32Update(CrcState, Buf.buffer().data() + CrcdInBuf,
                                  Buf.size() - CrcdInBuf);
  CrcdInBuf = Buf.size();
  size_t N = Buf.size();
  if (N != 0 && !Write(Buf.buffer().data(), N)) {
    Stats.Dropped = true;
    JTC_RECORD_EVENT(Telem, EventKind::BtraceDropped, 0,
                     static_cast<uint32_t>(N));
    return;
  }
  Stats.BytesWritten += N;
  ++Stats.Flushes;
  JTC_RECORD_EVENT(Telem, EventKind::BtraceFlushed, 0,
                   static_cast<uint32_t>(N));
  Buf = persist::ByteWriter();
  CrcdInBuf = 0;
}
