//===- btrace/SuccessorTable.cpp ------------------------------------------===//

#include "btrace/SuccessorTable.h"

#include <unordered_map>

using namespace jtc;
using namespace jtc::btrace;

SuccessorTable::SuccessorTable(const PreparedModule &PM) {
  size_t N = PM.numBlocks();
  Infos.resize(N);
  MethodEntry.resize(N, false);

  // A non-asserting leader map: (method, pc) -> block. PreparedModule's
  // own accessor asserts on non-leaders, but here an absent leader is a
  // legitimate answer (a continuation no return ever reaches).
  std::unordered_map<uint64_t, BlockId> Leader;
  Leader.reserve(N);
  for (BlockId B = 0; B < N; ++B) {
    const BasicBlock &BB = PM.block(B);
    Leader.emplace(pairKey(BB.MethodId, BB.StartPc), B);
    MethodEntry[B] = BB.StartPc == 0;
  }
  auto Lookup = [&Leader](uint32_t MethodId, uint32_t Pc) -> BlockId {
    auto It = Leader.find(pairKey(MethodId, Pc));
    return It == Leader.end() ? InvalidBlockId : It->second;
  };

  const Module &M = PM.module();
  for (BlockId B = 0; B < N; ++B) {
    const BasicBlock &BB = PM.block(B);
    const Instruction &Last = M.Methods[BB.MethodId].Code[BB.EndPc - 1];
    SuccInfo &I = Infos[B];
    switch (opKind(Last.Op)) {
    case OpKind::Normal: // Block ends because EndPc is a leader.
      I.Kind = SuccKind::FallThrough;
      I.Fall = Lookup(BB.MethodId, BB.EndPc);
      break;
    case OpKind::Jump:
      I.Kind = SuccKind::Jump;
      I.Taken = Lookup(BB.MethodId, static_cast<uint32_t>(Last.A));
      break;
    case OpKind::Branch:
      I.Taken = Lookup(BB.MethodId, static_cast<uint32_t>(Last.A));
      I.Fall = Lookup(BB.MethodId, BB.EndPc);
      // A branch whose two arms are the same block decides nothing; as a
      // Jump it costs no TNT bit, and encoder and decoder must agree on
      // the degradation.
      I.Kind = I.Taken == I.Fall ? SuccKind::Jump : SuccKind::CondBranch;
      break;
    case OpKind::Switch:
      I.Kind = SuccKind::Indirect;
      break;
    case OpKind::Call:
      I.Kind = Last.Op == Opcode::InvokeStatic ? SuccKind::StaticCall
                                               : SuccKind::IndirectCall;
      if (Last.Op == Opcode::InvokeStatic)
        I.Taken = Lookup(static_cast<uint32_t>(Last.A), 0);
      I.Fall = Lookup(BB.MethodId, BB.EndPc);
      break;
    case OpKind::Ret:
      I.Kind = SuccKind::Ret;
      break;
    case OpKind::End:
      I.Kind = SuccKind::Halt;
      break;
    }
  }
}
