//===- vm/ModuleFingerprint.h - Structural module identity ------*- C++ -*-===//
///
/// \file
/// The structural fingerprint every profile-carrying artifact is tagged
/// with. Adaptive state (BCG counters, traces) names blocks by their
/// module-relative BlockId, so it is only meaningful over an identically
/// prepared module; the fingerprint is how the warm-handoff snapshot
/// (server layer) and the durable .jtcp snapshot (persist layer) both
/// detect that precondition instead of trusting their callers.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_VM_MODULEFINGERPRINT_H
#define JTC_VM_MODULEFINGERPRINT_H

#include <cstdint>

namespace jtc {

class PreparedModule;

/// Structural FNV-1a fingerprint of a prepared module: entry method, block
/// count and every block's (method, pc-range) triple. Two prepared modules
/// with equal fingerprints have identical block-id spaces, which is the
/// property seeding relies on. Never returns 0 (the "no snapshot"
/// sentinel).
uint64_t moduleFingerprint(const PreparedModule &PM);

} // namespace jtc

#endif // JTC_VM_MODULEFINGERPRINT_H
