//===- vm/AdaptiveEngine.cpp ----------------------------------------------===//

#include "vm/AdaptiveEngine.h"

#include "analysis/Analysis.h"
#include "validate/Validator.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace jtc;

AdaptiveEngine::AdaptiveEngine(const PreparedModule &PM,
                               const VmOptions &Options)
    : PM(&PM), Options(&Options), Graph(Options.profilerConfig()),
      Cache(Graph, Options.traceConfig(),
            [P = &PM](BlockId B) { return P->blockSize(B); }) {
  // Trace construction is driven by profiler signals, so trace dispatch
  // requires profiling.
  if (Options.profiling() && Options.traces()) {
    Graph.setSink(&Cache);
    if (Options.validate() != ValidateMode::Off)
      Cache.setValidateHook(
          [this](const Trace &T) { return validateCandidate(T); });
    if (Options.memElide())
      Cache.setAnnotateHook([this](Trace &T) { annotateCandidate(T); });
  }
}

AdaptiveEngine::~AdaptiveEngine() = default;
AdaptiveEngine::AdaptiveEngine(AdaptiveEngine &&) noexcept = default;
AdaptiveEngine &AdaptiveEngine::operator=(AdaptiveEngine &&) noexcept = default;

const analysis::ModuleAnalysis &AdaptiveEngine::moduleFacts() {
  if (!Facts)
    Facts = std::make_unique<analysis::ModuleAnalysis>(
        analysis::ModuleAnalysis::compute(PM->module()));
  return *Facts;
}

TraceCache::ValidationVerdict AdaptiveEngine::validateCandidate(const Trace &T) {
  validate::Result R =
      validate::validateTrace(*PM, T, Options->optConfig(), &moduleFacts());
  if (!R.Ok && Options->validate() == ValidateMode::Strict) {
    std::fprintf(stderr,
                 "jtc: --validate=strict: trace %u rejected by translation "
                 "validation: %s (segment %u)\n",
                 T.Id, R.typed().qualifiedMessage().c_str(), R.SegmentIndex);
    std::abort();
  }
  return {R.Ok, static_cast<uint32_t>(R.Why)};
}

void AdaptiveEngine::annotateCandidate(Trace &T) {
  const analysis::ModuleAnalysis &A = moduleFacts();
  std::vector<analysis::TraceBlockSpan> Spans;
  Spans.reserve(T.Blocks.size());
  for (BlockId B : T.Blocks) {
    const BasicBlock &BB = PM->block(B);
    Spans.push_back({BB.MethodId, BB.StartPc, BB.EndPc});
  }
  std::vector<analysis::TraceMemFact> MemFacts = analysis::analyzeTraceMemory(
      PM->module(),
      [&A](uint32_t MethodId) -> const analysis::MethodValueFacts * {
        const analysis::MethodAnalysis *MA = A.method(MethodId);
        return MA ? &MA->Values : nullptr;
      },
      Spans);
  T.MemElisions.clear();
  T.MemElisions.reserve(MemFacts.size());
  for (const analysis::TraceMemFact &F : MemFacts)
    T.MemElisions.push_back({F.BlockIndex, F.Pc,
                             F.Elide == analysis::MemElide::Full
                                 ? MemElision::Full
                                 : MemElision::NullOnly});
  Stats.MemElisionSites += T.MemElisions.size();
}

void AdaptiveEngine::setTelemetry(EventRing *R) {
  Telem = R;
  Graph.setTelemetry(R);
  Cache.setTelemetry(R);
}

VmSeed AdaptiveEngine::exportSeed() const {
  VmSeed S;
  S.Nodes = Graph.exportNodes();
  S.Traces = Cache.exportLiveTraces();
  return S;
}

void AdaptiveEngine::importSeed(const VmSeed &Seed) {
  if (!Options->profiling())
    return;
  Graph.importNodes(Seed.Nodes);
  if (Options->traces())
    Cache.seedTraces(Seed.Traces);
}

void AdaptiveEngine::begin(BlockId Entry) {
  // The entry block is an ordinary block dispatch.
  ++Stats.BlockDispatches;
  if (Options->profiling())
    Graph.onBlockDispatch(Entry);
}

void AdaptiveEngine::executed(BlockId Cur) {
  ++Stats.BlocksExecuted;
  if (Active) {
    ++Stats.BlocksInTraces;
    Stats.InstructionsInTraces += PM->blockSize(Cur);
    if (TracePos + 1 == Active->Blocks.size())
      completeActiveTrace(); // the trace's last block just ran
  }
}

void AdaptiveEngine::transition(BlockId Cur, BlockId Next) {
  if (Active) {
    if (Next == Active->Blocks[TracePos + 1]) {
      ++TracePos; // matched; stay inside the trace, no hook, no dispatch
    } else {
      exitActiveTraceEarly(TracePos + 1);
      onNonTraceTransition(Cur, Next);
    }
  } else {
    onNonTraceTransition(Cur, Next);
  }
}

void AdaptiveEngine::endRun() {
  if (Active)
    exitActiveTraceEarly(TracePos + 1);
}

void AdaptiveEngine::onNonTraceTransition(BlockId Cur, BlockId Next) {
  // The profiler hook runs first: it may emit signals that build (or
  // rebuild) a trace starting exactly at this transition, which the entry
  // lookup below will then see.
  //
  // The one transition never profiled is the divergence that exited a
  // trace early: while a trace is stable its interior transitions carry
  // no hooks, so the common outcomes of its branches are invisible to the
  // profiler -- but every rare divergence would escape and be recorded.
  // Counting those samples would systematically skew interior branch
  // correlations toward their rare outcomes and make later rebuilds
  // fragment perfectly good traces.
  if (Options->profiling() && !SkipHookOnce)
    Graph.onBlockDispatch(Next);
  SkipHookOnce = false;

  if (Options->profiling() && Options->traces()) {
    if (const Trace *T = Cache.findTrace(Cur, Next)) {
      Active = T;
      TracePos = 0;
      ++Stats.TraceDispatches;
      JTC_RECORD_EVENT(Telem, EventKind::TraceDispatched, T->Id);
      return;
    }
  }
  ++Stats.BlockDispatches;
}

void AdaptiveEngine::completeActiveTrace() {
  ++Stats.TracesCompleted;
  Stats.BlocksInCompletedTraces += Active->Blocks.size();
  Stats.InstructionsInCompletedTraces += Active->InstrCount;
  JTC_RECORD_EVENT(Telem, EventKind::TraceCompleted, Active->Id,
                   static_cast<uint32_t>(Active->Blocks.size()));
  // The inlined blocks carried no profiling hooks; resynchronize the
  // context from the trace's final block pair.
  if (Options->profiling()) {
    size_t N = Active->Blocks.size();
    Graph.forceContext(Active->Blocks[N - 2], Active->Blocks[N - 1]);
  }
  TraceId Id = Active->Id;
  Active = nullptr;
  TracePos = 0;
  // After Active is cleared: the bookkeeping may retire the trace and
  // rebuild its region, which can reallocate the trace table.
  Cache.recordExecution(Id, /*CompletedRun=*/true);
}

void AdaptiveEngine::exitActiveTraceEarly(uint32_t BlocksRun) {
  assert(BlocksRun >= 1 && "a dispatched trace executes at least one block");
  JTC_RECORD_EVENT(Telem, EventKind::TraceEarlyExit, Active->Id, BlocksRun);
  if (Options->profiling()) {
    if (BlocksRun >= 2)
      Graph.forceContext(Active->Blocks[BlocksRun - 2],
                         Active->Blocks[BlocksRun - 1]);
    else
      Graph.forceContext(Active->EntryFrom, Active->Blocks[0]);
  }
  SkipHookOnce = true;
  TraceId Id = Active->Id;
  Active = nullptr;
  TracePos = 0;
  Cache.recordExecution(Id, /*CompletedRun=*/false);
}

VmStats AdaptiveEngine::snapshotStats(uint64_t Instructions) const {
  VmStats S = Stats;
  S.Instructions = Instructions;
  const BranchCorrelationGraph::GraphStats &GS = Graph.stats();
  S.Hooks = GS.Hooks;
  S.InlineCacheHits = GS.InlineCacheHits;
  S.DecayPasses = GS.DecayPasses;
  S.Signals = GS.Signals;
  const TraceCache::CacheStats &CS = Cache.stats();
  S.TracesConstructed = CS.TracesConstructed;
  S.TracesReused = CS.TracesReused;
  S.TracesReplaced = CS.TracesReplaced;
  S.TracesRetired = CS.TracesRetired;
  S.TracesSeeded = CS.TracesSeeded;
  S.TracesValidated = CS.TracesValidated;
  S.TraceValidationRejects = CS.ValidationRejects;
  S.LiveTraces = Cache.numLiveTraces();
  S.GraphNodes = Graph.numNodes();
  return S;
}
