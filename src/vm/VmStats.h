//===- vm/VmStats.h - Run metrics -------------------------------*- C++ -*-===//
///
/// \file
/// Counters collected during a TraceVM run, plus the derived quantities
/// the paper's evaluation reports (section 5.2): average executed trace
/// length, instruction stream coverage, dynamic trace completion rate,
/// state signal rate and trace event interval.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_VM_VMSTATS_H
#define JTC_VM_VMSTATS_H

#include <cstdint>
#include <ostream>
#include <vector>

namespace jtc {

class JsonWriter;

struct VmStats {
  //===--- Raw execution counters -------------------------------------===//
  uint64_t Instructions = 0;   ///< Every instruction executed.
  uint64_t BlocksExecuted = 0; ///< Every block executed, in or out of traces.
  uint64_t BlockDispatches = 0; ///< Dispatches of single blocks.
  uint64_t TraceDispatches = 0; ///< Dispatches of whole traces (entries).

  //===--- Trace behaviour --------------------------------------------===//
  uint64_t TracesCompleted = 0;
  uint64_t BlocksInTraces = 0;
  uint64_t BlocksInCompletedTraces = 0;
  uint64_t InstructionsInTraces = 0;
  uint64_t InstructionsInCompletedTraces = 0;

  //===--- Profiler / cache activity (copied at end of run) -----------===//
  uint64_t Hooks = 0;
  uint64_t InlineCacheHits = 0;
  uint64_t DecayPasses = 0;
  uint64_t Signals = 0;
  uint64_t TracesConstructed = 0;
  uint64_t TracesReused = 0;
  uint64_t TracesReplaced = 0;
  uint64_t TracesRetired = 0;
  uint64_t TracesSeeded = 0; ///< Installed from a donor snapshot (warm start).
  uint64_t LiveTraces = 0;
  uint64_t GraphNodes = 0;

  //===--- Translation validation (src/validate) -----------------------===//
  /// Traces handed to the construction-time translation validator, and
  /// how many it rejected (the optimized form fell back to unoptimized).
  /// Validation never changes what executes, and whether it runs at all
  /// depends on --validate / build wiring a replay cannot see, so both
  /// are digest-excluded like EventsDropped.
  uint64_t TracesValidated = 0;
  uint64_t TraceValidationRejects = 0;

  //===--- Backend tiering (src/backend) -------------------------------===//
  /// Which execution tier served trace dispatches, and what the JIT
  /// compiled. Tier selection is a --backend configuration choice that
  /// by contract never changes execution semantics (interp and JIT runs
  /// are bit-equivalent), so like the validation counters all five are
  /// digest-excluded: a replay or an oracle run under a different
  /// backend still matches.
  uint64_t TracesJitCompiled = 0;     ///< Traces compiled to native code.
  uint64_t TraceCompileFallbacks = 0; ///< Compiles that bailed to interp.
  uint64_t TraceDispatchesJit = 0;    ///< Trace entries run natively.
  uint64_t TraceDispatchesInterp = 0; ///< Trace entries run by stepTrace.
  uint64_t JitCodeBytes = 0;          ///< Native code bytes installed.

  //===--- Memory-check elision (src/analysis) --------------------------===//
  /// Heap-access check elision proved by the trace-path alias analysis
  /// (Trace::MemElisions). Sites counts annotated access sites over all
  /// installed traces; ChecksElided counts the dynamic checks both tiers
  /// actually skipped. Elision never changes execution semantics (the
  /// checks were proved to pass), and whether it runs at all is the
  /// --mem-elide configuration, so like the validation and tier counters
  /// both are digest-excluded.
  uint64_t MemElisionSites = 0;  ///< Annotated heap-access sites.
  uint64_t MemChecksElided = 0;  ///< Dynamic checks skipped at run time.

  //===--- Observability ----------------------------------------------===//
  /// Telemetry events lost to ring overwriting (EventRing::dropped). Not
  /// part of the execution semantics, so digest() excludes it: a replay
  /// with a different ring capacity still matches the live run.
  uint64_t EventsDropped = 0;

  //===--- Derived values (paper section 5.2) -------------------------===//

  /// Dispatches the trace-dispatching model performs (block + trace).
  uint64_t totalDispatches() const { return BlockDispatches + TraceDispatches; }

  /// Average executed trace length in basic blocks, over traces that ran
  /// to completion (Table I).
  double avgCompletedTraceLength() const {
    return TracesCompleted == 0
               ? 0.0
               : static_cast<double>(BlocksInCompletedTraces) /
                     static_cast<double>(TracesCompleted);
  }

  /// Fraction of all executed instructions executed by completed traces
  /// (Table II).
  double completedCoverage() const {
    return Instructions == 0
               ? 0.0
               : static_cast<double>(InstructionsInCompletedTraces) /
                     static_cast<double>(Instructions);
  }

  /// Fraction of all executed instructions executed inside the trace
  /// cache, including partially executed traces.
  double traceCoverage() const {
    return Instructions == 0 ? 0.0
                             : static_cast<double>(InstructionsInTraces) /
                                   static_cast<double>(Instructions);
  }

  /// Completed traces over entered traces (Table III).
  double completionRate() const {
    return TraceDispatches == 0 ? 0.0
                                : static_cast<double>(TracesCompleted) /
                                      static_cast<double>(TraceDispatches);
  }

  /// Block executions per profiler state-change signal (Table IV reports
  /// this in thousands). Block executions are the dispatches a plain
  /// direct-threaded-inlining interpreter would make.
  double dispatchesPerSignal() const {
    return Signals == 0 ? 0.0
                        : static_cast<double>(BlocksExecuted) /
                              static_cast<double>(Signals);
  }

  /// Block executions per trace event, where an event is a signal or a
  /// constructed trace (Table V reports this in thousands).
  double dispatchesPerTraceEvent() const {
    uint64_t Events = Signals + TracesConstructed;
    return Events == 0 ? 0.0
                       : static_cast<double>(BlocksExecuted) /
                             static_cast<double>(Events);
  }

  //===--- The field table --------------------------------------------===//
  //
  // One entry per reported quantity, raw counter or derived metric. Both
  // print() and the JSON serialization iterate this table, so the
  // human-readable and machine-readable outputs can never drift apart;
  // the telemetry PhaseSampler also uses the Counter pointers to compute
  // per-interval deltas.

  /// How a value is rendered by print(). JSON always gets the raw value
  /// (a ratio stays a 0..1 ratio).
  enum class FieldFormat : uint8_t {
    Count,   ///< Integer counter.
    Percent, ///< Ratio, printed scaled by 100 with a "%" suffix.
    Real,    ///< Plain double.
  };

  /// One reported quantity. Exactly one of Counter / Derived /
  /// DerivedCount is set.
  struct FieldInfo {
    const char *Label; ///< Human-readable print() label.
    const char *Key;   ///< Machine-readable JSON key (snake_case).
    FieldFormat Format;
    uint64_t VmStats::*Counter;
    double (VmStats::*Derived)() const;
    uint64_t (VmStats::*DerivedCount)() const;
    const char *Suffix; ///< Unit suffix in print() (e.g. " blocks").
    bool InPrint;       ///< print() shows it; JSON always includes it.
  };

  /// All fields, in print() order.
  static const std::vector<FieldInfo> &fields();

  /// The raw (counter or derived) value of one field, as a double.
  double fieldValue(const FieldInfo &F) const {
    if (F.Counter)
      return static_cast<double>(this->*F.Counter);
    if (F.Derived)
      return (this->*F.Derived)();
    return static_cast<double>((this->*F.DerivedCount)());
  }

  /// A stable FNV-1a hash over every raw execution counter (in field-
  /// table order, EventsDropped excluded). Two sessions with equal
  /// digests made the same dispatches, built the same traces and saw the
  /// same profiler activity; btrace replay verifies reconstruction
  /// against the digest the encoder recorded at run end.
  uint64_t digest() const;

  /// Accumulates \p Other's raw counters into this object (derived
  /// metrics are recomputed from the sums). Used by the service layer to
  /// fold per-session stats into fleet-wide aggregates.
  void merge(const VmStats &Other);

  /// One-per-line human-readable dump.
  void print(std::ostream &OS) const;

  /// Every counter and derived metric as key/value pairs, written into an
  /// already-open JSON object (for embedding in larger documents).
  void writeJsonFields(JsonWriter &W) const;

  /// Standalone JSON object with every counter and derived metric.
  void toJson(std::ostream &OS) const;
};

} // namespace jtc

#endif // JTC_VM_VMSTATS_H
