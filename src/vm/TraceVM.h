//===- vm/TraceVM.h - The trace-dispatching virtual machine -----*- C++ -*-===//
///
/// \file
/// TraceVM glues the three mechanisms of paper section 4 together: the
/// direct-threaded-inlining block interpreter, the branch correlation
/// graph profiler, and the trace cache.
///
/// On every block transition outside a trace the profiler hook runs and
/// the trace-cache entry table is consulted; a hit dispatches the whole
/// trace. While a trace executes, per-block profiler hooks are suppressed
/// (a trace dispatch costs a single profiling statement, paper section
/// 4.1.2) and the actual successors are matched against the trace. A
/// mismatch exits the trace early (a partial execution); matching through
/// the last block completes it. On any exit the profiler context is
/// resynchronized from the last executed block pair.
///
/// The adaptive half of this machinery (profiler, trace cache, active-
/// trace matching, statistics) lives in AdaptiveEngine so it can also be
/// driven by a decoded btrace stream; TraceVM contributes the execution
/// half (Machine + BlockStepper) and feeds the engine the live transition
/// stream. An optional BlockTransitionSink observes that same stream,
/// which is how the btrace encoder captures a session.
///
/// A TraceVM is one *session*: it is configured once through VmOptions,
/// runs once, and is then discarded. Profile state can be carried between
/// sessions over the same PreparedModule with exportSeed()/importSeed()
/// (the server layer's warm handoff).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_VM_TRACEVM_H
#define JTC_VM_TRACEVM_H

#include "backend/TraceBackend.h"
#include "interp/BlockStepper.h"
#include "telemetry/EventRing.h"
#include "telemetry/PhaseSampler.h"
#include "vm/AdaptiveEngine.h"
#include "vm/BlockTransitionSink.h"
#include "vm/VmOptions.h"
#include "vm/VmStats.h"

#include <memory>

namespace jtc {

/// One virtual machine instance over a prepared module.
///
/// Single-shot: run() may be called exactly once per instance. A second
/// call executes nothing -- it asserts in checked builds and returns a
/// TrapKind::VmReuse trap in release builds. Construct a fresh TraceVM
/// (optionally seeded from the old one) for another run.
class TraceVM {
public:
  /// \p PM must outlive the VM.
  explicit TraceVM(const PreparedModule &PM, VmOptions Options = VmOptions());

  /// Runs the module's entry method to completion (or trap / instruction
  /// budget) and returns the outcome. See the class comment for the
  /// single-shot contract.
  RunResult run();

  /// Captures the session's profiler counters and live traces for warm
  /// handoff into a fresh session over the same PreparedModule.
  VmSeed exportSeed() const { return Engine.exportSeed(); }

  /// Adopts a donor session's profile: the branch correlation graph is
  /// restored with its decayed counters and the donor's live traces are
  /// installed, dispatchable immediately and without consuming profiler
  /// signals. Must be called before run() on an unseeded session.
  /// Components disabled by the options (profiling / traces) are left
  /// empty.
  void importSeed(const VmSeed &Seed);

  /// Attaches an observer of the full block-transition stream (null
  /// detaches). Must be set before run(); the unset case costs one
  /// null-pointer branch per transition.
  void setTransitionSink(BlockTransitionSink *S) { Sink = S; }

  const VmStats &stats() const { return Engine.stats(); }

  /// A complete statistics snapshot at this instant, with the live
  /// profiler and cache counters folded in; usable mid-run (stats() is
  /// only complete after run() returns).
  VmStats currentStats() const;

  /// The telemetry event ring (empty unless Options.telemetry() and
  /// compiled in).
  const EventRing &events() const { return Ring; }

  /// The active ring for instrumentation sites outside the VM (the
  /// persist layer's snapshot events), or null when telemetry is off.
  /// Pass to JTC_RECORD_EVENT, which handles null.
  EventRing *telemetry() { return Telem; }

  /// The phase-sample time series (empty unless Options.sampleInterval()).
  const PhaseSampler<VmStats> &sampler() const { return Sampler; }

  /// The trace-execution backend this session dispatches through (after
  /// Auto resolution). Tests assert on its name() and tier accounting.
  const backend::TraceBackend &traceBackend() const { return *Backend; }

  const VmOptions &options() const { return Options; }
  const PreparedModule &prepared() const { return *PM; }
  const BranchCorrelationGraph &graph() const { return Engine.graph(); }
  const TraceCache &traceCache() const { return Engine.traceCache(); }
  Machine &machine() { return Mach; }
  const Machine &machine() const { return Mach; }

private:
  /// Runs the trace AdaptiveEngine just entered through the backend, then
  /// replays the summary through the engine (executed/transition per
  /// block, in the live loop's exact order) so adaptive state, telemetry
  /// clocks and the btrace stream are bit-identical across backends.
  /// Returns false when the run ended inside the trace (finish / trap /
  /// budget), with \p R filled in; true to continue the dispatch loop.
  bool runActiveTrace(const Trace &T, RunResult &R);

  const PreparedModule *PM;
  VmOptions Options;
  Machine Mach;
  BlockStepper Stepper;
  AdaptiveEngine Engine;
  std::unique_ptr<backend::TraceBackend> Backend;

  // Telemetry. Telem is &Ring when enabled, null otherwise -- the null
  // check is the instrumentation sites' only cost when telemetry is off.
  EventRing Ring;
  PhaseSampler<VmStats> Sampler;
  EventRing *Telem = nullptr;

  BlockTransitionSink *Sink = nullptr;
  bool Ran = false;
};

} // namespace jtc

#endif // JTC_VM_TRACEVM_H
