//===- vm/TraceVM.h - The trace-dispatching virtual machine -----*- C++ -*-===//
///
/// \file
/// TraceVM glues the three mechanisms of paper section 4 together: the
/// direct-threaded-inlining block interpreter, the branch correlation
/// graph profiler, and the trace cache.
///
/// On every block transition outside a trace the profiler hook runs and
/// the trace-cache entry table is consulted; a hit dispatches the whole
/// trace. While a trace executes, per-block profiler hooks are suppressed
/// (a trace dispatch costs a single profiling statement, paper section
/// 4.1.2) and the actual successors are matched against the trace. A
/// mismatch exits the trace early (a partial execution); matching through
/// the last block completes it. On any exit the profiler context is
/// resynchronized from the last executed block pair.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_VM_TRACEVM_H
#define JTC_VM_TRACEVM_H

#include "interp/BlockStepper.h"
#include "profile/BranchCorrelationGraph.h"
#include "telemetry/EventRing.h"
#include "telemetry/PhaseSampler.h"
#include "trace/TraceCache.h"
#include "vm/VmStats.h"

#include <memory>

namespace jtc {

/// Configuration for one TraceVM run.
struct VmConfig {
  /// Start-state delay in branch executions (paper sweeps 1/64/4096).
  uint32_t StartStateDelay = 64;
  /// Trace completion threshold; also the strong-correlation threshold.
  double CompletionThreshold = 0.97;
  /// Branch executions between decay passes.
  uint32_t DecayInterval = 256;
  /// Trace construction caps.
  uint32_t MaxTraceBlocks = 64;

  /// Master switches, used by the overhead experiments: profiling off
  /// yields the plain block interpreter; traces off yields the profiled
  /// interpreter without trace dispatch.
  bool ProfilingEnabled = true;
  bool TracesEnabled = true;

  /// Stop after this many executed instructions (safety and workload
  /// scaling).
  uint64_t MaxInstructions = ~0ull;

  /// Telemetry (no effect when compiled out with -DJTC_TELEMETRY=OFF).
  /// When enabled, trace lifecycle events, profiler signals and decay
  /// passes are recorded into a fixed-capacity ring, stamped with
  /// BlocksExecuted as a logical clock. When disabled (the default) the
  /// hot dispatch path pays one predictable null-pointer branch per
  /// instrumentation site.
  bool TelemetryEnabled = false;
  uint32_t TelemetryCapacity = 1u << 16;
  /// Phase sampling: snapshot VmStats deltas every this many executed
  /// blocks (0 = off). Requires TelemetryEnabled.
  uint64_t SampleInterval = 0;

  /// Deliberate trace-cache bug injection (fuzzer self-tests only; see
  /// trace/TraceConfig.h). Always None in real configurations.
  CacheFault Fault = CacheFault::None;

  ProfilerConfig profilerConfig() const {
    ProfilerConfig P;
    P.StartStateDelay = StartStateDelay;
    P.DecayInterval = DecayInterval;
    P.CompletionThreshold = CompletionThreshold;
    return P;
  }

  TraceConfig traceConfig() const {
    TraceConfig T;
    T.CompletionThreshold = CompletionThreshold;
    T.MaxTraceBlocks = MaxTraceBlocks;
    T.Fault = Fault;
    return T;
  }
};

/// One virtual machine instance over a prepared module.
class TraceVM {
public:
  /// \p PM must outlive the VM.
  TraceVM(const PreparedModule &PM, VmConfig Config);

  /// Runs the module's entry method to completion (or trap / instruction
  /// budget) and returns the outcome. Single-shot: construct a fresh VM
  /// for another run.
  RunResult run();

  const VmStats &stats() const { return Stats; }

  /// A complete statistics snapshot at this instant, with the live
  /// profiler and cache counters folded in; usable mid-run (stats() is
  /// only complete after run() returns).
  VmStats currentStats() const;

  /// The telemetry event ring (empty unless Config.TelemetryEnabled and
  /// compiled in).
  const EventRing &events() const { return Ring; }

  /// The phase-sample time series (empty unless Config.SampleInterval).
  const PhaseSampler<VmStats> &sampler() const { return Sampler; }

  const VmConfig &config() const { return Config; }
  const PreparedModule &prepared() const { return *PM; }
  const BranchCorrelationGraph &graph() const { return Graph; }
  const TraceCache &traceCache() const { return Cache; }
  Machine &machine() { return Mach; }
  const Machine &machine() const { return Mach; }

private:
  /// Handles the transition (\p Cur -> \p Next) when not inside a trace:
  /// profiler hook, then trace-entry lookup.
  void onNonTraceTransition(BlockId Cur, BlockId Next);

  /// Records completion of the active trace and leaves trace mode.
  void completeActiveTrace();

  /// Leaves trace mode after a divergence; \p BlocksRun blocks of the
  /// trace actually executed.
  void exitActiveTraceEarly(uint32_t BlocksRun);

  const PreparedModule *PM;
  VmConfig Config;
  Machine Mach;
  BlockStepper Stepper;
  BranchCorrelationGraph Graph;
  TraceCache Cache;
  VmStats Stats;

  // Telemetry. Telem is &Ring when enabled, null otherwise -- the null
  // check is the instrumentation sites' only cost when telemetry is off.
  EventRing Ring;
  PhaseSampler<VmStats> Sampler;
  EventRing *Telem = nullptr;

  // Active-trace state.
  const Trace *Active = nullptr;
  uint32_t TracePos = 0; ///< Index in Active->Blocks of the current block.
  /// Set after an early trace exit: the divergent transition is not
  /// profiled (see onNonTraceTransition).
  bool SkipHookOnce = false;
  bool Ran = false;
};

} // namespace jtc

#endif // JTC_VM_TRACEVM_H
