//===- vm/BlockTransitionSink.h - Block-transition observer -----*- C++ -*-===//
///
/// \file
/// The observation interface the btrace subsystem (and any other
/// full-stream consumer) hooks into TraceVM. Unlike the telemetry ring,
/// which records discrete adaptive *events*, a transition sink sees the
/// complete control-flow history of a session: the entry dispatch, every
/// block-to-block transition in program order (inside and outside
/// traces), and the run's final outcome with its folded statistics.
///
/// The interface lives in the vm layer so TraceVM does not depend on any
/// encoder; when no sink is attached the hot loop pays one predictable
/// null-pointer branch per transition, exactly the telemetry pattern.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_VM_BLOCKTRANSITIONSINK_H
#define JTC_VM_BLOCKTRANSITIONSINK_H

#include "interp/RunResult.h"
#include "support/Ids.h"
#include "vm/VmStats.h"

namespace jtc {

/// Observes a single TraceVM session's full block stream. Callback order
/// is: one onRunStart, then onTransition once per executed transition
/// (From was just executed, To is about to be), then exactly one
/// onRunEnd. A run that finishes, traps, or exhausts its budget on block
/// N makes N-1 onTransition calls: the final block has no successor.
class BlockTransitionSink {
public:
  virtual ~BlockTransitionSink() = default;

  /// The entry block is about to be executed.
  virtual void onRunStart(BlockId Entry) = 0;

  /// \p From was executed and control passed to \p To.
  virtual void onTransition(BlockId From, BlockId To) = 0;

  /// The session ended; \p Final is the complete folded statistics block
  /// (what TraceVM::stats() will return).
  virtual void onRunEnd(const RunResult &R, const VmStats &Final) = 0;
};

} // namespace jtc

#endif // JTC_VM_BLOCKTRANSITIONSINK_H
