//===- vm/VmStats.cpp -----------------------------------------------------===//

#include "vm/VmStats.h"

using namespace jtc;

void VmStats::print(std::ostream &OS) const {
  OS << "instructions:                  " << Instructions << "\n"
     << "blocks executed:               " << BlocksExecuted << "\n"
     << "block dispatches:              " << BlockDispatches << "\n"
     << "trace dispatches:              " << TraceDispatches << "\n"
     << "traces completed:              " << TracesCompleted << "\n"
     << "avg completed trace length:    " << avgCompletedTraceLength()
     << " blocks\n"
     << "completed-trace coverage:      " << completedCoverage() * 100 << "%\n"
     << "any-trace coverage:            " << traceCoverage() * 100 << "%\n"
     << "trace completion rate:         " << completionRate() * 100 << "%\n"
     << "profiler hooks:                " << Hooks << "\n"
     << "inline cache hits:             " << InlineCacheHits << "\n"
     << "decay passes:                  " << DecayPasses << "\n"
     << "state change signals:          " << Signals << "\n"
     << "traces constructed:            " << TracesConstructed << "\n"
     << "traces reused:                 " << TracesReused << "\n"
     << "traces replaced:               " << TracesReplaced << "\n"
     << "traces retired (completion):   " << TracesRetired << "\n"
     << "live traces:                   " << LiveTraces << "\n"
     << "branch graph nodes:            " << GraphNodes << "\n"
     << "dispatches per signal:         " << dispatchesPerSignal() << "\n"
     << "dispatches per trace event:    " << dispatchesPerTraceEvent() << "\n";
}
