//===- vm/VmStats.cpp -----------------------------------------------------===//

#include "vm/VmStats.h"

#include "support/Json.h"

#include <string>

using namespace jtc;

const std::vector<VmStats::FieldInfo> &VmStats::fields() {
  // Print order. Entries with InPrint=false are JSON-only: the four
  // trace-attribution counters print() never showed (kept out to preserve
  // its historical byte-exact output) and the derived dispatch total.
  auto Counter = [](const char *Label, const char *Key,
                    uint64_t VmStats::*M, bool InPrint = true) {
    return FieldInfo{Label, Key, FieldFormat::Count, M, nullptr, nullptr, "",
                     InPrint};
  };
  auto Derived = [](const char *Label, const char *Key, FieldFormat Fmt,
                    double (VmStats::*M)() const, const char *Suffix = "") {
    return FieldInfo{Label, Key, Fmt, nullptr, M, nullptr, Suffix, true};
  };
  static const std::vector<FieldInfo> Fields = {
      Counter("instructions", "instructions", &VmStats::Instructions),
      Counter("blocks executed", "blocks_executed", &VmStats::BlocksExecuted),
      Counter("block dispatches", "block_dispatches",
              &VmStats::BlockDispatches),
      Counter("trace dispatches", "trace_dispatches",
              &VmStats::TraceDispatches),
      Counter("traces completed", "traces_completed",
              &VmStats::TracesCompleted),
      Counter("blocks in traces", "blocks_in_traces", &VmStats::BlocksInTraces,
              /*InPrint=*/false),
      Counter("blocks in completed traces", "blocks_in_completed_traces",
              &VmStats::BlocksInCompletedTraces, /*InPrint=*/false),
      Counter("instructions in traces", "instructions_in_traces",
              &VmStats::InstructionsInTraces, /*InPrint=*/false),
      Counter("instructions in completed traces",
              "instructions_in_completed_traces",
              &VmStats::InstructionsInCompletedTraces, /*InPrint=*/false),
      Derived("avg completed trace length", "avg_completed_trace_length",
              FieldFormat::Real, &VmStats::avgCompletedTraceLength, " blocks"),
      Derived("completed-trace coverage", "completed_coverage",
              FieldFormat::Percent, &VmStats::completedCoverage),
      Derived("any-trace coverage", "trace_coverage", FieldFormat::Percent,
              &VmStats::traceCoverage),
      Derived("trace completion rate", "completion_rate", FieldFormat::Percent,
              &VmStats::completionRate),
      Counter("profiler hooks", "hooks", &VmStats::Hooks),
      Counter("inline cache hits", "inline_cache_hits",
              &VmStats::InlineCacheHits),
      Counter("decay passes", "decay_passes", &VmStats::DecayPasses),
      Counter("state change signals", "signals", &VmStats::Signals),
      Counter("traces constructed", "traces_constructed",
              &VmStats::TracesConstructed),
      Counter("traces reused", "traces_reused", &VmStats::TracesReused),
      Counter("traces replaced", "traces_replaced", &VmStats::TracesReplaced),
      Counter("traces retired (completion)", "traces_retired",
              &VmStats::TracesRetired),
      Counter("traces seeded", "traces_seeded", &VmStats::TracesSeeded,
              /*InPrint=*/false),
      Counter("traces validated", "traces_validated", &VmStats::TracesValidated,
              /*InPrint=*/false),
      Counter("trace validation rejects", "trace_validation_rejects",
              &VmStats::TraceValidationRejects, /*InPrint=*/false),
      Counter("traces jit compiled", "traces_jit_compiled",
              &VmStats::TracesJitCompiled, /*InPrint=*/false),
      Counter("trace compile fallbacks", "trace_compile_fallbacks",
              &VmStats::TraceCompileFallbacks, /*InPrint=*/false),
      Counter("trace dispatches (jit)", "trace_dispatches_jit",
              &VmStats::TraceDispatchesJit, /*InPrint=*/false),
      Counter("trace dispatches (interp)", "trace_dispatches_interp",
              &VmStats::TraceDispatchesInterp, /*InPrint=*/false),
      Counter("jit code bytes", "jit_code_bytes", &VmStats::JitCodeBytes,
              /*InPrint=*/false),
      Counter("mem elision sites", "mem_elision_sites",
              &VmStats::MemElisionSites, /*InPrint=*/false),
      Counter("mem checks elided", "mem_checks_elided",
              &VmStats::MemChecksElided, /*InPrint=*/false),
      Counter("live traces", "live_traces", &VmStats::LiveTraces),
      Counter("branch graph nodes", "graph_nodes", &VmStats::GraphNodes),
      Counter("telemetry events dropped", "events_dropped",
              &VmStats::EventsDropped, /*InPrint=*/false),
      Derived("dispatches per signal", "dispatches_per_signal",
              FieldFormat::Real, &VmStats::dispatchesPerSignal),
      Derived("dispatches per trace event", "dispatches_per_trace_event",
              FieldFormat::Real, &VmStats::dispatchesPerTraceEvent),
      FieldInfo{"total dispatches", "total_dispatches", FieldFormat::Count,
                nullptr, nullptr, &VmStats::totalDispatches, "",
                /*InPrint=*/false},
  };
  return Fields;
}

uint64_t VmStats::digest() const {
  // FNV-1a over the raw counters in field-table order. EventsDropped is
  // observability of the telemetry channel, not of the execution, and
  // depends on ring capacity; the validation counters likewise depend on
  // the --validate mode, which btrace replay reconstructs with defaults.
  // All three are excluded so replay digests are configuration-
  // independent.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  // The backend-tier counters are excluded for the same reason: which
  // tier ran a trace is a --backend choice, and interp/JIT runs are
  // bit-equivalent by contract.
  auto Excluded = [](uint64_t VmStats::*M) {
    return M == &VmStats::EventsDropped || M == &VmStats::TracesValidated ||
           M == &VmStats::TraceValidationRejects ||
           M == &VmStats::TracesJitCompiled ||
           M == &VmStats::TraceCompileFallbacks ||
           M == &VmStats::TraceDispatchesJit ||
           M == &VmStats::TraceDispatchesInterp ||
           M == &VmStats::JitCodeBytes ||
           // Elision accounting is configuration (--mem-elide) like the
           // tier counters; the elided checks were proved to pass, so the
           // execution semantics are identical either way.
           M == &VmStats::MemElisionSites || M == &VmStats::MemChecksElided;
  };
  for (const FieldInfo &F : fields())
    if (F.Counter && !Excluded(F.Counter))
      Mix(this->*F.Counter);
  return H;
}

void VmStats::merge(const VmStats &Other) {
  // Every raw counter is in the field table; derived metrics recompute
  // from the summed counters, so the table drives merging too.
  for (const FieldInfo &F : fields())
    if (F.Counter)
      this->*F.Counter += Other.*F.Counter;
}

void VmStats::print(std::ostream &OS) const {
  // Values start at column 31, matching the historical hand-aligned dump.
  constexpr size_t ValueColumn = 31;
  for (const FieldInfo &F : fields()) {
    if (!F.InPrint)
      continue;
    std::string Label = std::string(F.Label) + ":";
    Label.resize(ValueColumn, ' ');
    OS << Label;
    switch (F.Format) {
    case FieldFormat::Count:
      OS << (F.Counter ? this->*F.Counter : (this->*F.DerivedCount)());
      break;
    case FieldFormat::Percent:
      OS << fieldValue(F) * 100 << "%";
      break;
    case FieldFormat::Real:
      OS << fieldValue(F);
      break;
    }
    OS << F.Suffix << "\n";
  }
}

void VmStats::writeJsonFields(JsonWriter &W) const {
  for (const FieldInfo &F : fields()) {
    if (F.Counter)
      W.fieldUInt(F.Key, this->*F.Counter);
    else if (F.DerivedCount)
      W.fieldUInt(F.Key, (this->*F.DerivedCount)());
    else
      W.fieldReal(F.Key, (this->*F.Derived)());
  }
}

void VmStats::toJson(std::ostream &OS) const {
  JsonWriter W(OS);
  W.beginObject();
  writeJsonFields(W);
  W.endObject();
}
