//===- vm/AdaptiveEngine.h - The adaptive state machine ---------*- C++ -*-===//
///
/// \file
/// The profiler + trace-cache state machine of TraceVM, factored out of
/// the execution loop so it can be driven by *any* source of block
/// transitions: the live BlockStepper (TraceVM::run) or a decoded btrace
/// stream (btrace replay). Both drivers make the same calls in the same
/// order -- begin(entry), then executed(block) / transition(from, to) per
/// step, then endRun() -- so a replayed session recomputes bit-identical
/// profiler, trace-cache and VmStats state from nothing but the recorded
/// control flow. That determinism is what makes a captured production
/// stream a reproducible benchmark.
///
/// The engine owns everything adaptive (branch correlation graph, trace
/// cache, statistics, active-trace tracking); it knows nothing about the
/// Machine, the Stepper, or instruction execution.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_VM_ADAPTIVEENGINE_H
#define JTC_VM_ADAPTIVEENGINE_H

#include "interp/PreparedModule.h"
#include "profile/BranchCorrelationGraph.h"
#include "telemetry/EventRing.h"
#include "trace/TraceCache.h"
#include "vm/VmOptions.h"
#include "vm/VmStats.h"

#include <memory>

namespace jtc {

namespace analysis {
class ModuleAnalysis;
} // namespace analysis

/// Portable profiler + trace-cache state captured from a mature session
/// (the donor) and imported into a fresh session over the same
/// PreparedModule, so the new session skips the start-state delay and the
/// trace-construction warmup the paper measures. Block ids are module-
/// relative, so a seed is only meaningful for an identically prepared
/// module.
struct VmSeed {
  std::vector<BcgNodeSnapshot> Nodes;
  std::vector<TraceCache::TraceSeed> Traces;

  bool empty() const { return Nodes.empty() && Traces.empty(); }
};

/// The adaptive half of one VM session, driven by a block-transition
/// stream. See the file comment for the driver contract.
class AdaptiveEngine {
public:
  /// \p PM and \p Options must outlive the engine.
  AdaptiveEngine(const PreparedModule &PM, const VmOptions &Options);
  ~AdaptiveEngine(); // out of line: ModuleAnalysis is incomplete here

  // Movable so TraceVM factories can return by value (the move is elided
  // in practice; like the Graph/Cache cross-references, the validation
  // hook's self-pointer does not survive a genuine move).
  AdaptiveEngine(AdaptiveEngine &&) noexcept;
  AdaptiveEngine &operator=(AdaptiveEngine &&) noexcept;

  /// Attaches the telemetry ring (propagated to the profiler and cache);
  /// null detaches.
  void setTelemetry(EventRing *R);

  /// The entry block is about to execute: the initial block dispatch.
  void begin(BlockId Entry);

  /// \p Cur was just executed: trace accounting and completion detection.
  void executed(BlockId Cur);

  /// Control passed from \p Cur to \p Next: match against the active
  /// trace or run the profiler hook + trace-entry lookup.
  void transition(BlockId Cur, BlockId Next);

  /// The run ended (finish, trap or budget); an active trace is exited
  /// early.
  void endRun();

  /// The statistics with the live profiler and cache counters folded in;
  /// \p Instructions is supplied by the driver (the stepper's count, or
  /// the recorded count during replay).
  VmStats snapshotStats(uint64_t Instructions) const;

  /// Captures the session's profiler counters and live traces for warm
  /// handoff into a fresh session over the same PreparedModule.
  VmSeed exportSeed() const;

  /// Adopts a donor session's profile (see TraceVM::importSeed).
  void importSeed(const VmSeed &Seed);

  VmStats &stats() { return Stats; }
  const VmStats &stats() const { return Stats; }

  /// The trace the engine just entered (set by transition() on a trace-
  /// cache hit, cleared on completion/divergence). TraceVM consults this
  /// at the top of its loop to hand the whole trace to the TraceBackend
  /// instead of stepping block by block. The pointer is owned by the
  /// trace cache and is invalidated by the cache mutation at the end of
  /// the trace's execution -- callers must not hold it across
  /// completeActiveTrace / exitActiveTraceEarly.
  const Trace *activeTrace() const { return Active; }
  const BranchCorrelationGraph &graph() const { return Graph; }
  const TraceCache &traceCache() const { return Cache; }

private:
  /// Handles the transition (\p Cur -> \p Next) when not inside a trace:
  /// profiler hook, then trace-entry lookup.
  void onNonTraceTransition(BlockId Cur, BlockId Next);

  /// Records completion of the active trace and leaves trace mode.
  void completeActiveTrace();

  /// Leaves trace mode after a divergence; \p BlocksRun blocks of the
  /// trace actually executed.
  void exitActiveTraceEarly(uint32_t BlocksRun);

  /// The TraceCache validation hook (--validate != off): re-runs the
  /// optimizer on \p T's linearized form and proves the result a sound
  /// refinement of the source bytecode (validate::validateTrace). Under
  /// --validate=strict a rejection aborts the process.
  TraceCache::ValidationVerdict validateCandidate(const Trace &T);

  /// The TraceCache annotation hook (memElide on): runs the alias
  /// analysis over \p T's block sequence (analysis::analyzeTraceMemory)
  /// and records the heap accesses whose dynamic checks are provably
  /// redundant on the trace path, for both execution tiers to skip.
  void annotateCandidate(Trace &T);

  /// The lazily computed per-module analysis shared by validation and
  /// annotation.
  const analysis::ModuleAnalysis &moduleFacts();

  const PreparedModule *PM;
  const VmOptions *Options;
  BranchCorrelationGraph Graph;
  TraceCache Cache;
  VmStats Stats;
  EventRing *Telem = nullptr;
  /// Dataflow facts for guard-justified validation, computed lazily on
  /// the first trace validated (never on the dispatch path).
  std::unique_ptr<analysis::ModuleAnalysis> Facts;

  // Active-trace state.
  const Trace *Active = nullptr;
  uint32_t TracePos = 0; ///< Index in Active->Blocks of the current block.
  /// Set after an early trace exit: the divergent transition is not
  /// profiled (see onNonTraceTransition).
  bool SkipHookOnce = false;
};

} // namespace jtc

#endif // JTC_VM_ADAPTIVEENGINE_H
