//===- vm/ModuleFingerprint.cpp -------------------------------------------===//

#include "vm/ModuleFingerprint.h"

#include "interp/PreparedModule.h"

using namespace jtc;

uint64_t jtc::moduleFingerprint(const PreparedModule &PM) {
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis.
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  Mix(PM.module().EntryMethod);
  Mix(PM.numBlocks());
  for (BlockId B = 0; B < PM.numBlocks(); ++B) {
    const BasicBlock &BB = PM.block(B);
    Mix(BB.MethodId);
    Mix(BB.StartPc);
    Mix(BB.EndPc);
  }
  // 0 is the "no snapshot" sentinel; remap the (vanishingly unlikely)
  // collision rather than special-casing it everywhere.
  return H == 0 ? 1 : H;
}
