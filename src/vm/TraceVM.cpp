//===- vm/TraceVM.cpp -----------------------------------------------------===//

#include "vm/TraceVM.h"

#include <cassert>

using namespace jtc;

TraceVM::TraceVM(const PreparedModule &PM, VmOptions Options)
    : PM(&PM), Options(Options), Mach(PM.module()), Stepper(PM, Mach),
      Engine(PM, this->Options),
      Backend(backend::makeBackend(this->Options.backend(), PM,
                                   this->Options.backendConfig())) {
#ifdef JTC_TELEMETRY
  if (this->Options.telemetry()) {
    Ring = EventRing(this->Options.telemetryCapacity(),
                     &Engine.stats().BlocksExecuted);
    Telem = &Ring;
    Engine.setTelemetry(&Ring);
    Backend->setTelemetry(&Ring);
    Sampler = PhaseSampler<VmStats>(this->Options.sampleInterval());
  }
#endif
}

void TraceVM::importSeed(const VmSeed &Seed) {
  assert(!Ran && "importSeed must precede run()");
  Engine.importSeed(Seed);
}

RunResult TraceVM::run() {
  // Single-shot contract: executing again over the dirty machine, graph
  // and cache state would silently produce garbage, so a reuse surfaces
  // as a distinct trap (and an assertion failure in checked builds).
  if (Ran) {
    assert(!Ran && "TraceVM::run is single-shot; construct a fresh VM");
    RunResult R;
    R.Status = RunStatus::Trapped;
    R.Trap = TrapKind::VmReuse;
    return R;
  }
  Ran = true;

  RunResult R;
  Stepper.start();
  BlockId Cur = Stepper.currentBlock();

  Engine.begin(Cur);
  if (Sink)
    Sink->onRunStart(Cur);

  VmStats &Stats = Engine.stats();
  while (true) {
    // A trace-cache hit hands the whole trace to the backend; this is the
    // only place a dispatched trace executes. Everything below the check
    // is the plain single-block path.
    if (const Trace *T = Engine.activeTrace()) {
      if (!runActiveTrace(*T, R))
        break;
      Cur = Stepper.currentBlock();
      continue;
    }

    BlockStepper::StepStatus S = Stepper.step(); // executes Cur
    Engine.executed(Cur);
#ifdef JTC_TELEMETRY
    if (Sampler.enabled() && Stats.BlocksExecuted >= Sampler.nextSampleAt())
      Sampler.sample(Stats.BlocksExecuted, currentStats());
#endif

    if (S != BlockStepper::StepStatus::Continue) {
      Engine.endRun();
      R.Status = S == BlockStepper::StepStatus::Finished ? RunStatus::Finished
                                                         : RunStatus::Trapped;
      R.Trap = Mach.trap();
      break;
    }
    if (Stepper.instructions() >= Options.maxInstructions()) {
      Engine.endRun();
      R.Status = RunStatus::BudgetExhausted;
      break;
    }

    BlockId Next = Stepper.currentBlock();
    if (Sink)
      Sink->onTransition(Cur, Next);
    Engine.transition(Cur, Next);
    Cur = Next;
  }

  Stats = currentStats();
  R.Instructions = Stats.Instructions;
  R.Dispatches = Stats.totalDispatches();
  if (Sink)
    Sink->onRunEnd(R, Stats);
  return R;
}

bool TraceVM::runActiveTrace(const Trace &T, RunResult &R) {
  // The main loop only reaches here with budget remaining, so the
  // subtraction cannot underflow.
  backend::TraceRunContext Ctx{*PM, Mach, Stepper,
                               Options.maxInstructions() -
                                   Stepper.instructions()};
  backend::TraceRunResult TR = Backend->run(T, Ctx);
  assert(TR.BlocksRun >= 1 && "a dispatched trace executes at least a block");

  // Replay the summary through the engine in exactly the live loop's
  // per-block order (executed, sampler, status, budget, sink, transition)
  // so every BlocksExecuted-stamped clock and the btrace stream are
  // bit-identical to a block-stepped run. The trace pointer stays valid
  // throughout: the cache mutates only inside the *final* engine call of
  // this replay (completeActiveTrace inside the last executed(), or
  // exitActiveTraceEarly inside the last transition()/endRun()), and every
  // read of T happens before it.
  VmStats &Stats = Engine.stats();
  (void)Stats;
  for (uint32_t I = 0; I + 1 < TR.BlocksRun; ++I) {
    BlockId B = T.Blocks[I];
    BlockId Next = T.Blocks[I + 1];
    Engine.executed(B);
#ifdef JTC_TELEMETRY
    if (Sampler.enabled() && Stats.BlocksExecuted >= Sampler.nextSampleAt())
      Sampler.sample(Stats.BlocksExecuted, currentStats());
#endif
    if (Sink)
      Sink->onTransition(B, Next);
    Engine.transition(B, Next);
  }

  BlockId Last = T.Blocks[TR.BlocksRun - 1];
  Engine.executed(Last); // completes the trace when TR.End == Completed
#ifdef JTC_TELEMETRY
  if (Sampler.enabled() && Stats.BlocksExecuted >= Sampler.nextSampleAt())
    Sampler.sample(Stats.BlocksExecuted, currentStats());
#endif

  switch (TR.End) {
  case backend::TraceRunEnd::Finished:
  case backend::TraceRunEnd::Trapped:
    Engine.endRun();
    R.Status = TR.End == backend::TraceRunEnd::Finished ? RunStatus::Finished
                                                        : RunStatus::Trapped;
    R.Trap = Mach.trap();
    return false;
  case backend::TraceRunEnd::Budget:
    Engine.endRun();
    R.Status = RunStatus::BudgetExhausted;
    return false;
  case backend::TraceRunEnd::Completed:
  case backend::TraceRunEnd::Diverged:
    // The live loop checks the budget after executing a block and before
    // its outgoing transition; a run that ends exactly on the budget at a
    // completion/divergence boundary must end the same way here.
    if (Stepper.instructions() >= Options.maxInstructions()) {
      Engine.endRun();
      R.Status = RunStatus::BudgetExhausted;
      return false;
    }
    if (Sink)
      Sink->onTransition(Last, TR.NextBlock);
    Engine.transition(Last, TR.NextBlock);
    Stepper.resumeAt(TR.NextBlock);
    return true;
  }
  return true; // unreachable
}

VmStats TraceVM::currentStats() const {
  VmStats S = Engine.snapshotStats(Stepper.instructions());
  S.EventsDropped = Ring.dropped();
  const backend::BackendStats &BS = Backend->stats();
  S.TracesJitCompiled = BS.TracesCompiled;
  S.TraceCompileFallbacks = BS.CompileFallbacks;
  S.TraceDispatchesJit = BS.CompiledDispatches;
  S.TraceDispatchesInterp = BS.InterpDispatches;
  S.JitCodeBytes = BS.CodeBytes;
  S.MemChecksElided = BS.MemChecksElided;
  return S;
}
