//===- vm/TraceVM.cpp -----------------------------------------------------===//

#include "vm/TraceVM.h"

#include <cassert>

using namespace jtc;

TraceVM::TraceVM(const PreparedModule &PM, VmOptions Options)
    : PM(&PM), Options(Options), Mach(PM.module()), Stepper(PM, Mach),
      Engine(PM, this->Options) {
#ifdef JTC_TELEMETRY
  if (this->Options.telemetry()) {
    Ring = EventRing(this->Options.telemetryCapacity(),
                     &Engine.stats().BlocksExecuted);
    Telem = &Ring;
    Engine.setTelemetry(&Ring);
    Sampler = PhaseSampler<VmStats>(this->Options.sampleInterval());
  }
#endif
}

void TraceVM::importSeed(const VmSeed &Seed) {
  assert(!Ran && "importSeed must precede run()");
  Engine.importSeed(Seed);
}

RunResult TraceVM::run() {
  // Single-shot contract: executing again over the dirty machine, graph
  // and cache state would silently produce garbage, so a reuse surfaces
  // as a distinct trap (and an assertion failure in checked builds).
  if (Ran) {
    assert(!Ran && "TraceVM::run is single-shot; construct a fresh VM");
    RunResult R;
    R.Status = RunStatus::Trapped;
    R.Trap = TrapKind::VmReuse;
    return R;
  }
  Ran = true;

  RunResult R;
  Stepper.start();
  BlockId Cur = Stepper.currentBlock();

  Engine.begin(Cur);
  if (Sink)
    Sink->onRunStart(Cur);

  VmStats &Stats = Engine.stats();
  while (true) {
    BlockStepper::StepStatus S = Stepper.step(); // executes Cur
    Engine.executed(Cur);
#ifdef JTC_TELEMETRY
    if (Sampler.enabled() && Stats.BlocksExecuted >= Sampler.nextSampleAt())
      Sampler.sample(Stats.BlocksExecuted, currentStats());
#endif

    if (S != BlockStepper::StepStatus::Continue) {
      Engine.endRun();
      R.Status = S == BlockStepper::StepStatus::Finished ? RunStatus::Finished
                                                         : RunStatus::Trapped;
      R.Trap = Mach.trap();
      break;
    }
    if (Stepper.instructions() >= Options.maxInstructions()) {
      Engine.endRun();
      R.Status = RunStatus::BudgetExhausted;
      break;
    }

    BlockId Next = Stepper.currentBlock();
    if (Sink)
      Sink->onTransition(Cur, Next);
    Engine.transition(Cur, Next);
    Cur = Next;
  }

  Stats = currentStats();
  R.Instructions = Stats.Instructions;
  R.Dispatches = Stats.totalDispatches();
  if (Sink)
    Sink->onRunEnd(R, Stats);
  return R;
}

VmStats TraceVM::currentStats() const {
  VmStats S = Engine.snapshotStats(Stepper.instructions());
  S.EventsDropped = Ring.dropped();
  return S;
}
