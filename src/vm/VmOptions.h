//===- vm/VmOptions.h - VM configuration builder ----------------*- C++ -*-===//
///
/// \file
/// The single source of truth for configuring a TraceVM. Parameters that
/// several subsystems consume -- most importantly the completion
/// threshold, which the profiler uses as its strong-correlation bound and
/// the trace cache as its construction / retirement bound -- are stored
/// exactly once here, and the ProfilerConfig / TraceConfig
/// sub-configurations are derived in one place (profilerConfig() /
/// traceConfig()), so they can never silently diverge.
///
/// Setters return *this, so embedders configure fluently:
///
///   TraceVM VM(PM, VmOptions().completionThreshold(0.95).startStateDelay(1));
///
/// A default-constructed VmOptions reproduces the paper's recommended
/// operating point (threshold 0.97, delay 64, decay 256).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_VM_VMOPTIONS_H
#define JTC_VM_VMOPTIONS_H

#include "profile/ProfilerConfig.h"
#include "trace/TraceConfig.h"

#include <cstdint>
#include <string>

namespace jtc {

class VmOptions {
public:
  VmOptions() = default;

  //===--- Fluent setters ----------------------------------------------===//

  /// Trace completion threshold; also the strong-correlation threshold.
  /// The paper sweeps {1.00, 0.99, 0.98, 0.97, 0.95} and recommends 0.97.
  VmOptions &completionThreshold(double V) {
    Threshold = V;
    return *this;
  }

  /// Start-state delay in branch executions (paper sweeps 1/64/4096).
  VmOptions &startStateDelay(uint32_t V) {
    Delay = V;
    return *this;
  }

  /// Branch executions between decay passes.
  VmOptions &decayInterval(uint32_t V) {
    Decay = V;
    return *this;
  }

  /// Trace construction cap: maximum blocks per trace.
  VmOptions &maxTraceBlocks(uint32_t V) {
    TraceBlocks = V;
    return *this;
  }

  /// Master switches, used by the overhead experiments: profiling off
  /// yields the plain block interpreter; traces off yields the profiled
  /// interpreter without trace dispatch.
  VmOptions &profiling(bool On) {
    Profiling = On;
    return *this;
  }
  VmOptions &traces(bool On) {
    Traces = On;
    return *this;
  }

  /// Stop after this many executed instructions (safety and workload
  /// scaling).
  VmOptions &maxInstructions(uint64_t N) {
    Budget = N;
    return *this;
  }

  /// Telemetry (no effect when compiled out with -DJTC_TELEMETRY=OFF).
  /// When enabled, trace lifecycle events, profiler signals and decay
  /// passes are recorded into a fixed-capacity ring, stamped with
  /// BlocksExecuted as a logical clock. When disabled (the default) the
  /// hot dispatch path pays one predictable null-pointer branch per
  /// instrumentation site.
  VmOptions &telemetry(bool On) {
    Telemetry = On;
    return *this;
  }
  VmOptions &telemetryCapacity(uint32_t N) {
    TelemetryCap = N;
    return *this;
  }

  /// Phase sampling: snapshot VmStats deltas every this many executed
  /// blocks (0 = off). Requires telemetry(true).
  VmOptions &sampleInterval(uint64_t N) {
    Sampling = N;
    return *this;
  }

  /// Branch-trace capture: blocks between sync packets in an encoded
  /// .btc stream. Smaller intervals make streams more seekable and more
  /// loss-tolerant at a small size cost; 0 disables sync packets (the
  /// stream is then only decodable from the start).
  VmOptions &btraceSyncInterval(uint32_t N) {
    BtraceSync = N;
    return *this;
  }

  /// Deliberate trace-cache bug injection (fuzzer self-tests only; see
  /// trace/TraceConfig.h). Always None in real configurations.
  VmOptions &cacheFault(CacheFault F) {
    Fault = F;
    return *this;
  }

  /// Durable-profile hooks, honoured by the persist layer (the VM itself
  /// never touches the filesystem): load a .jtcp snapshot into the
  /// session before it runs / save one after it finishes. Empty = off.
  VmOptions &loadProfilePath(std::string Path) {
    LoadProfile = std::move(Path);
    return *this;
  }
  VmOptions &saveProfilePath(std::string Path) {
    SaveProfile = std::move(Path);
    return *this;
  }

  //===--- Getters -----------------------------------------------------===//

  double completionThreshold() const { return Threshold; }
  uint32_t startStateDelay() const { return Delay; }
  uint32_t decayInterval() const { return Decay; }
  uint32_t maxTraceBlocks() const { return TraceBlocks; }
  bool profiling() const { return Profiling; }
  bool traces() const { return Traces; }
  uint64_t maxInstructions() const { return Budget; }
  bool telemetry() const { return Telemetry; }
  uint32_t telemetryCapacity() const { return TelemetryCap; }
  uint64_t sampleInterval() const { return Sampling; }
  uint32_t btraceSyncInterval() const { return BtraceSync; }
  CacheFault cacheFault() const { return Fault; }
  const std::string &loadProfilePath() const { return LoadProfile; }
  const std::string &saveProfilePath() const { return SaveProfile; }

  //===--- Derived sub-configurations ----------------------------------===//
  //
  // The only place the profiler and trace-cache views of the shared
  // parameters are produced.

  ProfilerConfig profilerConfig() const {
    ProfilerConfig P;
    P.StartStateDelay = Delay;
    P.DecayInterval = Decay;
    P.CompletionThreshold = Threshold;
    return P;
  }

  TraceConfig traceConfig() const {
    TraceConfig T;
    T.CompletionThreshold = Threshold;
    T.MaxTraceBlocks = TraceBlocks;
    T.Fault = Fault;
    return T;
  }

private:
  double Threshold = 0.97;
  uint32_t Delay = 64;
  uint32_t Decay = 256;
  uint32_t TraceBlocks = 64;
  bool Profiling = true;
  bool Traces = true;
  uint64_t Budget = ~0ull;
  bool Telemetry = false;
  uint32_t TelemetryCap = 1u << 16;
  uint64_t Sampling = 0;
  uint32_t BtraceSync = 4096;
  CacheFault Fault = CacheFault::None;
  std::string LoadProfile;
  std::string SaveProfile;
};

} // namespace jtc

#endif // JTC_VM_VMOPTIONS_H
