//===- vm/VmOptions.h - VM configuration builder ----------------*- C++ -*-===//
///
/// \file
/// The single source of truth for configuring a TraceVM. Parameters that
/// several subsystems consume -- most importantly the completion
/// threshold, which the profiler uses as its strong-correlation bound and
/// the trace cache as its construction / retirement bound -- are stored
/// exactly once here, and the ProfilerConfig / TraceConfig
/// sub-configurations are derived in one place (profilerConfig() /
/// traceConfig()), so they can never silently diverge.
///
/// Setters return *this, so embedders configure fluently:
///
///   TraceVM VM(PM, VmOptions().completionThreshold(0.95).startStateDelay(1));
///
/// A default-constructed VmOptions reproduces the paper's recommended
/// operating point (threshold 0.97, delay 64, decay 256).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_VM_VMOPTIONS_H
#define JTC_VM_VMOPTIONS_H

#include "backend/BackendKind.h"
#include "backend/TraceBackend.h"
#include "opt/OptConfig.h"
#include "profile/ProfilerConfig.h"
#include "trace/TraceConfig.h"

#include <cstdint>
#include <cstdlib>
#include <string>

namespace jtc {

/// Construction-time translation validation of optimized traces
/// (src/validate).
enum class ValidateMode : uint8_t {
  Off,    ///< Traces install unchecked.
  On,     ///< Validate every constructed/seeded trace; a rejected trace
          ///< falls back to its unoptimized form (the default).
  Strict, ///< Like On, but a rejection aborts the process -- for CI and
          ///< fuzzing, where any rejection of stock optimizer output is
          ///< a bug in either the optimizer or the validator.
};

inline const char *validateModeName(ValidateMode M) {
  switch (M) {
  case ValidateMode::Off:
    return "off";
  case ValidateMode::On:
    return "on";
  case ValidateMode::Strict:
    return "strict";
  }
  return "on";
}

/// The backend a default-constructed VmOptions selects. Normally Interp
/// (the JIT is opt-in via --backend), but the JTC_BACKEND environment
/// variable overrides it so CI can force a tier across an entire test
/// suite without threading a flag through every harness.
inline backend::BackendKind defaultBackendKind() {
  static const backend::BackendKind Kind = [] {
    backend::BackendKind K = backend::BackendKind::Interp;
    if (const char *Env = std::getenv("JTC_BACKEND"))
      (void)backend::parseBackendKind(Env, K);
    return K;
  }();
  return Kind;
}

class VmOptions {
public:
  VmOptions() = default;

  //===--- Fluent setters ----------------------------------------------===//

  /// Trace completion threshold; also the strong-correlation threshold.
  /// The paper sweeps {1.00, 0.99, 0.98, 0.97, 0.95} and recommends 0.97.
  VmOptions &completionThreshold(double V) {
    Threshold = V;
    return *this;
  }

  /// Start-state delay in branch executions (paper sweeps 1/64/4096).
  VmOptions &startStateDelay(uint32_t V) {
    Delay = V;
    return *this;
  }

  /// Branch executions between decay passes.
  VmOptions &decayInterval(uint32_t V) {
    Decay = V;
    return *this;
  }

  /// Trace construction cap: maximum blocks per trace.
  VmOptions &maxTraceBlocks(uint32_t V) {
    TraceBlocks = V;
    return *this;
  }

  /// Master switches, used by the overhead experiments: profiling off
  /// yields the plain block interpreter; traces off yields the profiled
  /// interpreter without trace dispatch.
  VmOptions &profiling(bool On) {
    Profiling = On;
    return *this;
  }
  VmOptions &traces(bool On) {
    Traces = On;
    return *this;
  }

  /// Stop after this many executed instructions (safety and workload
  /// scaling).
  VmOptions &maxInstructions(uint64_t N) {
    Budget = N;
    return *this;
  }

  /// Telemetry (no effect when compiled out with -DJTC_TELEMETRY=OFF).
  /// When enabled, trace lifecycle events, profiler signals and decay
  /// passes are recorded into a fixed-capacity ring, stamped with
  /// BlocksExecuted as a logical clock. When disabled (the default) the
  /// hot dispatch path pays one predictable null-pointer branch per
  /// instrumentation site.
  VmOptions &telemetry(bool On) {
    Telemetry = On;
    return *this;
  }
  VmOptions &telemetryCapacity(uint32_t N) {
    TelemetryCap = N;
    return *this;
  }

  /// Phase sampling: snapshot VmStats deltas every this many executed
  /// blocks (0 = off). Requires telemetry(true).
  VmOptions &sampleInterval(uint64_t N) {
    Sampling = N;
    return *this;
  }

  /// Branch-trace capture: blocks between sync packets in an encoded
  /// .btc stream. Smaller intervals make streams more seekable and more
  /// loss-tolerant at a small size cost; 0 disables sync packets (the
  /// stream is then only decodable from the start).
  VmOptions &btraceSyncInterval(uint32_t N) {
    BtraceSync = N;
    return *this;
  }

  /// Deliberate trace-cache bug injection (fuzzer self-tests only; see
  /// trace/TraceConfig.h). Always None in real configurations.
  VmOptions &cacheFault(CacheFault F) {
    Fault = F;
    return *this;
  }

  /// Durable-profile hooks, honoured by the persist layer (the VM itself
  /// never touches the filesystem): load a .jtcp snapshot into the
  /// session before it runs / save one after it finishes. Empty = off.
  VmOptions &loadProfilePath(std::string Path) {
    LoadProfile = std::move(Path);
    return *this;
  }
  VmOptions &saveProfilePath(std::string Path) {
    SaveProfile = std::move(Path);
    return *this;
  }

  /// Construction-time translation validation of every optimized trace.
  /// On by default: validation runs off the dispatch path (once per
  /// constructed trace) and is the safety net under the optimizer.
  VmOptions &validate(ValidateMode M) {
    Validate = M;
    return *this;
  }

  /// Alias-analysis check elision: annotate every installed trace with
  /// the heap accesses whose null/class/bounds checks are provably
  /// redundant on the trace path, and let both execution tiers skip
  /// them. On by default; the analysis runs once per constructed trace,
  /// off the dispatch path, and elision never changes behaviour (the
  /// skipped checks are proven to pass), so digests are unaffected.
  VmOptions &memElide(bool On) {
    MemElide = On;
    return *this;
  }

  /// Optimizer pass selection, threaded through to validation (the
  /// validator re-optimizes under the same configuration it checks).
  /// Also carries the test-only UnsoundPass mutation hook, which lets
  /// the mutation tests drive a deliberate miscompile through the whole
  /// VM and watch the validator catch it.
  VmOptions &optConfig(const OptConfig &C) {
    Opt = C;
    return *this;
  }

  /// Trace execution backend: interp (portable reference tier), jit
  /// (x86-64 template JIT, errors where unsupported builds would lie
  /// about what ran -- makeBackend still falls back per-trace on compile
  /// bails), or auto (jit when the host supports it, else interp).
  // (jtc::backend is spelled in full below: the member function named
  // `backend` hides the namespace inside this class's scope.)
  VmOptions &backend(jtc::backend::BackendKind K) {
    Backend = K;
    return *this;
  }

  /// How many completed executions promote a trace to native code
  /// (--backend=jit/auto only). 0 compiles on first dispatch.
  VmOptions &jitPromoteAfter(uint32_t N) {
    JitPromote = N;
    return *this;
  }

  /// Test/CI hook: pretend the host cannot run the JIT, so
  /// --backend=auto's graceful-fallback path is exercisable on any
  /// machine, including x86-64 ones.
  VmOptions &simulateUnsupportedHost(bool On) {
    SimUnsupported = On;
    return *this;
  }

  //===--- Getters -----------------------------------------------------===//

  double completionThreshold() const { return Threshold; }
  uint32_t startStateDelay() const { return Delay; }
  uint32_t decayInterval() const { return Decay; }
  uint32_t maxTraceBlocks() const { return TraceBlocks; }
  bool profiling() const { return Profiling; }
  bool traces() const { return Traces; }
  uint64_t maxInstructions() const { return Budget; }
  bool telemetry() const { return Telemetry; }
  uint32_t telemetryCapacity() const { return TelemetryCap; }
  uint64_t sampleInterval() const { return Sampling; }
  uint32_t btraceSyncInterval() const { return BtraceSync; }
  CacheFault cacheFault() const { return Fault; }
  const std::string &loadProfilePath() const { return LoadProfile; }
  const std::string &saveProfilePath() const { return SaveProfile; }
  ValidateMode validate() const { return Validate; }
  bool memElide() const { return MemElide; }
  const OptConfig &optConfig() const { return Opt; }
  jtc::backend::BackendKind backend() const { return Backend; }
  uint32_t jitPromoteAfter() const { return JitPromote; }
  bool simulateUnsupportedHost() const { return SimUnsupported; }

  //===--- Derived sub-configurations ----------------------------------===//
  //
  // The only place the profiler and trace-cache views of the shared
  // parameters are produced.

  ProfilerConfig profilerConfig() const {
    ProfilerConfig P;
    P.StartStateDelay = Delay;
    P.DecayInterval = Decay;
    P.CompletionThreshold = Threshold;
    return P;
  }

  TraceConfig traceConfig() const {
    TraceConfig T;
    T.CompletionThreshold = Threshold;
    T.MaxTraceBlocks = TraceBlocks;
    T.Fault = Fault;
    return T;
  }

  jtc::backend::BackendConfig backendConfig() const {
    jtc::backend::BackendConfig B;
    B.JitPromoteAfter = JitPromote;
    B.SimulateUnsupportedHost = SimUnsupported;
    return B;
  }

private:
  double Threshold = 0.97;
  uint32_t Delay = 64;
  uint32_t Decay = 256;
  uint32_t TraceBlocks = 64;
  bool Profiling = true;
  bool Traces = true;
  uint64_t Budget = ~0ull;
  bool Telemetry = false;
  uint32_t TelemetryCap = 1u << 16;
  uint64_t Sampling = 0;
  uint32_t BtraceSync = 4096;
  CacheFault Fault = CacheFault::None;
  std::string LoadProfile;
  std::string SaveProfile;
  ValidateMode Validate = ValidateMode::On;
  bool MemElide = true;
  OptConfig Opt;
  jtc::backend::BackendKind Backend = defaultBackendKind();
  uint32_t JitPromote = 2;
  bool SimUnsupported = false;
};

} // namespace jtc

#endif // JTC_VM_VMOPTIONS_H
