//===- server/VmService.cpp -----------------------------------------------===//

#include "server/VmService.h"

#include "btrace/BtraceCapture.h"
#include "persist/Snapshot.h"
#include "runtime/Heap.h"
#include "support/Json.h"

#include <cassert>
#include <chrono>
#include <filesystem>

using namespace jtc;

void ServiceStats::writeJsonFields(JsonWriter &W) const {
  W.fieldUInt("submitted", Submitted)
      .fieldUInt("completed", Completed)
      .fieldUInt("rejected", Rejected)
      .fieldUInt("warm_starts", WarmStarts)
      .fieldUInt("cold_starts", ColdStarts)
      .fieldUInt("snapshots_published", SnapshotsPublished)
      .fieldUInt("checkpoints_saved", CheckpointsSaved)
      .fieldUInt("checkpoints_loaded", CheckpointsLoaded)
      .fieldUInt("checkpoint_load_rejects", CheckpointLoadRejects)
      .fieldUInt("btrace_streams", BtraceStreams)
      .fieldUInt("btrace_bytes", BtraceBytes)
      .fieldUInt("btrace_drops", BtraceDrops)
      .fieldReal("busy_seconds", BusySeconds);
  W.key("events").beginObject();
  for (unsigned K = 0; K < NumEventKinds; ++K)
    W.fieldUInt(eventKindName(static_cast<EventKind>(K)), EventsByKind[K]);
  W.endObject();
  W.key("aggregate").beginObject();
  Aggregate.writeJsonFields(W);
  W.endObject();
}

VmService::VmService(ServiceOptions Opts) : Options(Opts) {
  Workers.reserve(Options.workers());
  for (unsigned I = 0; I < Options.workers(); ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
  if (!Options.checkpointDir().empty() &&
      Options.checkpointIntervalSeconds() > 0)
    CheckpointThread = std::thread([this] { checkpointLoop(); });
}

VmService::~VmService() { shutdown(); }

void VmService::registerModule(const std::string &Name, Module M,
                               std::string Spec, uint32_t Scale) {
  auto Entry = std::make_unique<ModuleEntry>(
      std::move(M), Spec.empty() ? Name : std::move(Spec), Scale);
  // Durable warm start: adopt a previous process's checkpoint before the
  // entry becomes visible to any worker.
  maybeLoadCheckpoint(*Entry, Name);
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  std::unique_ptr<ModuleEntry> &Slot = Modules[Name];
  if (Slot) // Keep the replaced entry alive for sessions already using it.
    Retired.push_back(std::move(Slot));
  Slot = std::move(Entry);
}

void VmService::registerWorkload(const WorkloadInfo &W, uint32_t Scale) {
  uint32_t S = Scale ? Scale : W.DefaultScale;
  registerModule(W.Name, W.Build(S), "workload:" + std::string(W.Name), S);
}

bool VmService::hasModule(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  return Modules.count(Name) != 0;
}

std::future<SessionResult> VmService::submit(RunRequest R) {
  auto Promise = std::make_shared<std::promise<SessionResult>>();
  std::future<SessionResult> F = Promise->get_future();
  submitAsync(std::move(R), [Promise](SessionResult Result) {
    Promise->set_value(std::move(Result));
  });
  return F;
}

void VmService::submitAsync(RunRequest R,
                            std::function<void(SessionResult)> Done) {
  PendingRun P;
  P.Request = std::move(R);
  P.Done = std::move(Done);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping) {
      // The pool is gone; resolve rather than leave the caller hanging.
      SessionResult Dead;
      Dead.Module = P.Request.Module;
      Dead.Rejected = true;
      P.Done(std::move(Dead));
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Stats.Submitted;
      ++Stats.Rejected;
      return;
    }
    Queue.push_back(std::move(P));
  }
  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    ++Stats.Submitted;
  }
  QueueCv.notify_one();
}

SessionResult VmService::run(RunRequest R) { return submit(std::move(R)).get(); }

uint64_t VmService::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return Queue.size() + InFlight;
}

void VmService::drain() {
  {
    std::unique_lock<std::mutex> Lock(QueueMutex);
    IdleCv.wait(Lock, [this] { return Queue.empty() && InFlight == 0; });
  }
  checkpointAll();
}

size_t VmService::checkpointAll() {
  const std::string &Dir = Options.checkpointDir();
  if (Dir.empty())
    return 0;
  // Snapshot pointers are immutable once published, so collect them under
  // the locks and do the (slow) file writes with no locks held.
  std::vector<std::pair<std::string, std::shared_ptr<const ProfileSnapshot>>>
      Work;
  {
    std::lock_guard<std::mutex> RLock(RegistryMutex);
    std::lock_guard<std::mutex> SLock(SnapMutex);
    for (const auto &KV : Modules)
      if (KV.second->Snap)
        Work.emplace_back(KV.first, KV.second->Snap);
  }
  if (Work.empty())
    return 0;
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  size_t Saved = 0;
  for (const auto &[Name, Snap] : Work) {
    persist::SnapshotData Data;
    Data.Fingerprint = Snap->fingerprint();
    Data.DonorBlocks = Snap->donorBlocks();
    Data.Seed = Snap->seed();
    persist::PersistError Err;
    if (persist::saveSnapshotFile(Data, Dir + "/" + Name + ".jtcp", Err))
      ++Saved;
  }
  if (Saved) {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Stats.CheckpointsSaved += Saved;
  }
  return Saved;
}

void VmService::maybeLoadCheckpoint(ModuleEntry &Entry,
                                    const std::string &Name) {
  const std::string &Dir = Options.loadDir();
  if (Dir.empty())
    return;
  std::string Path = Dir + "/" + Name + ".jtcp";
  std::error_code Ec;
  if (!std::filesystem::exists(Path, Ec))
    return; // No checkpoint for this module yet: cold start, not an error.
  persist::SnapshotData Data;
  persist::PersistError Err;
  bool Ok = persist::loadSnapshotFile(Path, Data, Err);
  if (Ok && Data.Fingerprint != moduleFingerprint(Entry.PM)) {
    Err = persist::PersistError::make(
        persist::PersistErrorKind::FingerprintMismatch,
        "checkpoint was captured over a different module");
    Ok = false;
  }
  if (Ok)
    Ok = persist::validateSeed(Data.Seed, Entry.PM, Err);
  if (Ok) {
    // The entry is not yet visible to workers (registerModule publishes it
    // after this returns), so the slot can be written without SnapMutex.
    Entry.Snap =
        std::make_shared<const ProfileSnapshot>(ProfileSnapshot::fromParts(
            std::move(Data.Seed), Data.Fingerprint, Data.DonorBlocks));
  }
  std::lock_guard<std::mutex> Lock(StatsMutex);
  if (Ok)
    ++Stats.CheckpointsLoaded;
  else
    ++Stats.CheckpointLoadRejects;
}

void VmService::checkpointLoop() {
  const auto Interval =
      std::chrono::duration<double>(Options.checkpointIntervalSeconds());
  std::unique_lock<std::mutex> Lock(CheckpointMutex);
  for (;;) {
    if (CheckpointCv.wait_for(Lock, Interval,
                              [this] { return CheckpointStop; }))
      return;
    Lock.unlock();
    checkpointAll();
    Lock.lock();
  }
}

void VmService::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(CheckpointMutex);
    CheckpointStop = true;
  }
  CheckpointCv.notify_all();
  if (CheckpointThread.joinable())
    CheckpointThread.join();
  bool WasRunning = false;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    WasRunning = !Stopping;
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
  // Final checkpoint exactly once, after every session has retired.
  if (WasRunning)
    checkpointAll();
}

void VmService::workerLoop(unsigned WorkerId) {
  for (;;) {
    PendingRun P;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping with a drained queue.
      P = std::move(Queue.front());
      Queue.pop_front();
      ++InFlight;
    }
    SessionResult R = runOne(P.Request, WorkerId);
    P.Done(std::move(R));
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --InFlight;
      if (Queue.empty() && InFlight == 0)
        IdleCv.notify_all();
    }
  }
}

SessionResult VmService::runOne(const RunRequest &R, unsigned WorkerId) {
  SessionResult Out;
  Out.Module = R.Module;
  Out.Worker = WorkerId;

  ModuleEntry *Entry = nullptr;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    auto It = Modules.find(R.Module);
    if (It != Modules.end())
      Entry = It->second.get();
  }
  if (!Entry) {
    Out.Rejected = true;
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Rejected;
    return Out;
  }

  VmOptions VO = Options.vm();
  if (R.MaxInstructions)
    VO.maxInstructions(R.MaxInstructions);

  // The session itself: thread-private VM over the shared immutable
  // PreparedModule. No locks are held while it runs.
  TraceVM VM(Entry->PM, VO);

  if (Options.warmHandoff()) {
    std::shared_ptr<const ProfileSnapshot> Snap;
    {
      std::lock_guard<std::mutex> Lock(SnapMutex);
      Snap = Entry->Snap;
    }
    if (Snap && Snap->compatibleWith(Entry->PM)) {
      Snap->seed(VM);
      Out.WarmStart = true;
    }
  }

  // Per-session branch-trace capture. Attached after the warm seed so the
  // stream embeds the exact state this session starts from; an I/O
  // failure degrades to an uncaptured (but otherwise normal) session.
  std::unique_ptr<btrace::BtraceFileCapture> Capture;
  bool CaptureFailed = false;
  if (!Options.btraceDir().empty()) {
    uint64_t Seq;
    {
      std::lock_guard<std::mutex> Lock(BtraceMutex);
      Seq = BtraceSeq[R.Module]++;
    }
    std::error_code Ec;
    std::filesystem::create_directories(Options.btraceDir(), Ec);
    std::string Path = Options.btraceDir() + "/" + R.Module + "-" +
                       std::to_string(Seq) + ".btc";
    persist::PersistError Err;
    Capture = btrace::BtraceFileCapture::start(VM, Path, Entry->Spec,
                                               Entry->Scale, Err);
    if (Capture) {
      Out.BtracePath = Path;
      // Rotation: the stream Keep sessions back has aged out.
      uint32_t Keep = Options.btraceKeepPerModule();
      if (Keep && Seq >= Keep)
        std::filesystem::remove(Options.btraceDir() + "/" + R.Module + "-" +
                                    std::to_string(Seq - Keep) + ".btc",
                                Ec);
    } else {
      CaptureFailed = true;
    }
  }

  auto T0 = std::chrono::steady_clock::now();
  Out.Run = VM.run();
  auto T1 = std::chrono::steady_clock::now();
  Out.Seconds = std::chrono::duration<double>(T1 - T0).count();
  Out.Stats = VM.stats();
  Out.Output = VM.machine().output();
  Out.HeapDigest = heapDigest(VM.machine().heap());

  uint64_t BtraceBytesOut = 0;
  if (Capture) {
    persist::PersistError Err;
    if (Capture->finish(Err))
      BtraceBytesOut = Capture->encoderStats().BytesWritten;
    else {
      CaptureFailed = true;
      Out.BtracePath.clear();
    }
  }

  // First mature cold session over the module becomes the donor. The
  // maturity bar keeps trivially short runs from publishing unrepresentative
  // profiles.
  bool Published = false;
  if (Options.warmHandoff() && !Out.WarmStart && Out.Stats.LiveTraces > 0 &&
      Out.Stats.BlocksExecuted >= Options.snapshotMinBlocks()) {
    std::lock_guard<std::mutex> Lock(SnapMutex);
    if (!Entry->Snap) {
      Entry->Snap = std::make_shared<const ProfileSnapshot>(
          ProfileSnapshot::capture(VM));
      Published = true;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Completed;
    if (Out.WarmStart)
      ++Stats.WarmStarts;
    else
      ++Stats.ColdStarts;
    if (Published)
      ++Stats.SnapshotsPublished;
    if (!Out.BtracePath.empty()) {
      ++Stats.BtraceStreams;
      Stats.BtraceBytes += BtraceBytesOut;
    }
    if (CaptureFailed)
      ++Stats.BtraceDrops;
    Stats.BusySeconds += Out.Seconds;
    Stats.Aggregate.merge(Out.Stats);
    VM.events().forEach([this](const Event &E) {
      ++Stats.EventsByKind[static_cast<unsigned>(E.Kind)];
    });
  }
  return Out;
}

ServiceStats VmService::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}

ProfileSnapshot VmService::snapshotFor(const std::string &Name) const {
  std::shared_ptr<const ProfileSnapshot> Snap;
  {
    std::lock_guard<std::mutex> RLock(RegistryMutex);
    auto It = Modules.find(Name);
    if (It != Modules.end()) {
      std::lock_guard<std::mutex> SLock(SnapMutex);
      Snap = It->second->Snap;
    }
  }
  return Snap ? *Snap : ProfileSnapshot();
}
