//===- server/VmService.cpp -----------------------------------------------===//

#include "server/VmService.h"

#include "runtime/Heap.h"
#include "support/Json.h"

#include <cassert>
#include <chrono>

using namespace jtc;

void ServiceStats::writeJsonFields(JsonWriter &W) const {
  W.fieldUInt("submitted", Submitted)
      .fieldUInt("completed", Completed)
      .fieldUInt("rejected", Rejected)
      .fieldUInt("warm_starts", WarmStarts)
      .fieldUInt("cold_starts", ColdStarts)
      .fieldUInt("snapshots_published", SnapshotsPublished)
      .fieldReal("busy_seconds", BusySeconds);
  W.key("events").beginObject();
  for (unsigned K = 0; K < NumEventKinds; ++K)
    W.fieldUInt(eventKindName(static_cast<EventKind>(K)), EventsByKind[K]);
  W.endObject();
  W.key("aggregate").beginObject();
  Aggregate.writeJsonFields(W);
  W.endObject();
}

VmService::VmService(ServiceOptions Opts) : Options(Opts) {
  Workers.reserve(Options.workers());
  for (unsigned I = 0; I < Options.workers(); ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

VmService::~VmService() { shutdown(); }

void VmService::registerModule(const std::string &Name, Module M) {
  auto Entry = std::make_unique<ModuleEntry>(std::move(M));
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  std::unique_ptr<ModuleEntry> &Slot = Modules[Name];
  if (Slot) // Keep the replaced entry alive for sessions already using it.
    Retired.push_back(std::move(Slot));
  Slot = std::move(Entry);
}

void VmService::registerWorkload(const WorkloadInfo &W, uint32_t Scale) {
  registerModule(W.Name, W.Build(Scale ? Scale : W.DefaultScale));
}

bool VmService::hasModule(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  return Modules.count(Name) != 0;
}

std::future<SessionResult> VmService::submit(RunRequest R) {
  PendingRun P;
  P.Request = std::move(R);
  std::future<SessionResult> F = P.Promise.get_future();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping) {
      // The pool is gone; resolve rather than leave the future hanging.
      SessionResult Dead;
      Dead.Module = P.Request.Module;
      Dead.Rejected = true;
      P.Promise.set_value(std::move(Dead));
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Stats.Submitted;
      ++Stats.Rejected;
      return F;
    }
    Queue.push_back(std::move(P));
  }
  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    ++Stats.Submitted;
  }
  QueueCv.notify_one();
  return F;
}

SessionResult VmService::run(RunRequest R) { return submit(std::move(R)).get(); }

void VmService::drain() {
  std::unique_lock<std::mutex> Lock(QueueMutex);
  IdleCv.wait(Lock, [this] { return Queue.empty() && InFlight == 0; });
}

void VmService::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
}

void VmService::workerLoop(unsigned WorkerId) {
  for (;;) {
    PendingRun P;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping with a drained queue.
      P = std::move(Queue.front());
      Queue.pop_front();
      ++InFlight;
    }
    SessionResult R = runOne(P.Request, WorkerId);
    P.Promise.set_value(std::move(R));
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --InFlight;
      if (Queue.empty() && InFlight == 0)
        IdleCv.notify_all();
    }
  }
}

SessionResult VmService::runOne(const RunRequest &R, unsigned WorkerId) {
  SessionResult Out;
  Out.Module = R.Module;
  Out.Worker = WorkerId;

  ModuleEntry *Entry = nullptr;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    auto It = Modules.find(R.Module);
    if (It != Modules.end())
      Entry = It->second.get();
  }
  if (!Entry) {
    Out.Rejected = true;
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Rejected;
    return Out;
  }

  VmOptions VO = Options.vm();
  if (R.MaxInstructions)
    VO.maxInstructions(R.MaxInstructions);

  // The session itself: thread-private VM over the shared immutable
  // PreparedModule. No locks are held while it runs.
  TraceVM VM(Entry->PM, VO);

  if (Options.warmHandoff()) {
    std::shared_ptr<const ProfileSnapshot> Snap;
    {
      std::lock_guard<std::mutex> Lock(SnapMutex);
      Snap = Entry->Snap;
    }
    if (Snap && Snap->compatibleWith(Entry->PM)) {
      Snap->seed(VM);
      Out.WarmStart = true;
    }
  }

  auto T0 = std::chrono::steady_clock::now();
  Out.Run = VM.run();
  auto T1 = std::chrono::steady_clock::now();
  Out.Seconds = std::chrono::duration<double>(T1 - T0).count();
  Out.Stats = VM.stats();
  Out.Output = VM.machine().output();
  Out.HeapDigest = heapDigest(VM.machine().heap());

  // First mature cold session over the module becomes the donor. The
  // maturity bar keeps trivially short runs from publishing unrepresentative
  // profiles.
  bool Published = false;
  if (Options.warmHandoff() && !Out.WarmStart && Out.Stats.LiveTraces > 0 &&
      Out.Stats.BlocksExecuted >= Options.snapshotMinBlocks()) {
    std::lock_guard<std::mutex> Lock(SnapMutex);
    if (!Entry->Snap) {
      Entry->Snap = std::make_shared<const ProfileSnapshot>(
          ProfileSnapshot::capture(VM));
      Published = true;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Completed;
    if (Out.WarmStart)
      ++Stats.WarmStarts;
    else
      ++Stats.ColdStarts;
    if (Published)
      ++Stats.SnapshotsPublished;
    Stats.BusySeconds += Out.Seconds;
    Stats.Aggregate.merge(Out.Stats);
    VM.events().forEach([this](const Event &E) {
      ++Stats.EventsByKind[static_cast<unsigned>(E.Kind)];
    });
  }
  return Out;
}

ServiceStats VmService::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}

ProfileSnapshot VmService::snapshotFor(const std::string &Name) const {
  std::shared_ptr<const ProfileSnapshot> Snap;
  {
    std::lock_guard<std::mutex> RLock(RegistryMutex);
    auto It = Modules.find(Name);
    if (It != Modules.end()) {
      std::lock_guard<std::mutex> SLock(SnapMutex);
      Snap = It->second->Snap;
    }
  }
  return Snap ? *Snap : ProfileSnapshot();
}
