//===- server/VmService.h - Concurrent multi-session VM service -*- C++ -*-===//
///
/// \file
/// The serving layer over the paper's per-session machinery: a pool of N
/// worker threads draining a queue of run requests against shared,
/// immutable PreparedModules. Each request gets its own TraceVM session,
/// so profiler and trace-cache state is thread-private and completely
/// unsynchronized on the hot dispatch path -- the only cross-thread
/// traffic is the request queue, the per-module snapshot slot, and the
/// service-level statistics fold, all of which sit outside block
/// dispatch.
///
/// Warm handoff amortizes the profile warmup the paper pays once per run:
/// the first mature session over a module publishes a ProfileSnapshot
/// (BCG counters + live traces), and every later session over the same
/// module starts from it -- traces dispatchable from the first block
/// transition, no start-state delay, no re-signaling. Under serving
/// traffic the warmup cost is paid once per module, not once per request.
///
/// Typical embedding:
///
///   VmService Svc(ServiceOptions().workers(8));
///   Svc.registerWorkload(*findWorkload("compress"), /*Scale=*/40);
///   std::future<SessionResult> F = Svc.submit({"compress"});
///   SessionResult R = F.get();          // or Svc.run(...) synchronously
///   Svc.stats();                        // fleet-wide aggregates
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SERVER_VMSERVICE_H
#define JTC_SERVER_VMSERVICE_H

#include "server/ProfileSnapshot.h"
#include "workloads/Workloads.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jtc {

class JsonWriter;

/// Service-wide configuration. The embedded VmOptions is the template for
/// every session; per-request budgets override maxInstructions().
class ServiceOptions {
public:
  ServiceOptions() = default;

  /// Worker thread count (>= 1).
  ServiceOptions &workers(unsigned N) {
    NumWorkers = N < 1 ? 1 : N;
    return *this;
  }

  /// Session template: threshold, delays, telemetry and so on.
  ServiceOptions &vm(VmOptions V) {
    Vm = V;
    return *this;
  }

  /// Publish and reuse ProfileSnapshots across sessions (default on).
  ServiceOptions &warmHandoff(bool On) {
    Warm = On;
    return *this;
  }

  /// A donor session must have executed at least this many blocks for its
  /// snapshot to be published (filters out runs too short to have built
  /// representative traces).
  ServiceOptions &snapshotMinBlocks(uint64_t N) {
    SnapMinBlocks = N;
    return *this;
  }

  /// Durable checkpointing: published snapshots are written to
  /// <dir>/<module>.jtcp on drain() and shutdown() (and periodically, see
  /// checkpointIntervalSeconds). Empty = off.
  ServiceOptions &checkpointDir(std::string Dir) {
    CheckpointTo = std::move(Dir);
    return *this;
  }

  /// Durable warm start: registerModule() looks for <dir>/<module>.jtcp
  /// and, when it decodes, fingerprint-matches and re-validates cleanly,
  /// pre-publishes it as the module's snapshot -- so the very first
  /// session after a restart runs warm. Empty = off.
  ServiceOptions &loadDir(std::string Dir) {
    LoadFrom = std::move(Dir);
    return *this;
  }

  /// Periodic checkpointing interval in seconds (0 = only on drain /
  /// shutdown). Needs checkpointDir().
  ServiceOptions &checkpointIntervalSeconds(double S) {
    CheckpointInterval = S < 0 ? 0 : S;
    return *this;
  }

  /// Per-session branch-trace capture: every session writes a replayable
  /// <dir>/<module>-<seq>.btc stream (seq counts sessions per module).
  /// Empty = off. The sync interval comes from the vm() template's
  /// btraceSyncInterval().
  ServiceOptions &btraceDir(std::string Dir) {
    BtraceTo = std::move(Dir);
    return *this;
  }

  /// Capture rotation: keep at most this many .btc streams per module,
  /// deleting the oldest as new sessions retire (0 = keep everything).
  ServiceOptions &btraceKeepPerModule(uint32_t N) {
    BtraceKeep = N;
    return *this;
  }

  unsigned workers() const { return NumWorkers; }
  const VmOptions &vm() const { return Vm; }
  bool warmHandoff() const { return Warm; }
  uint64_t snapshotMinBlocks() const { return SnapMinBlocks; }
  const std::string &checkpointDir() const { return CheckpointTo; }
  const std::string &loadDir() const { return LoadFrom; }
  double checkpointIntervalSeconds() const { return CheckpointInterval; }
  const std::string &btraceDir() const { return BtraceTo; }
  uint32_t btraceKeepPerModule() const { return BtraceKeep; }

private:
  unsigned NumWorkers = 1;
  VmOptions Vm;
  bool Warm = true;
  uint64_t SnapMinBlocks = 1024;
  std::string CheckpointTo;
  std::string LoadFrom;
  double CheckpointInterval = 0;
  std::string BtraceTo;
  uint32_t BtraceKeep = 4;
};

/// One unit of serving work: run the named module's entry method.
struct RunRequest {
  std::string Module;           ///< registerModule / registerWorkload name.
  uint64_t MaxInstructions = 0; ///< 0: use the service VmOptions budget.
};

/// Everything observable about one completed session.
struct SessionResult {
  std::string Module;
  RunResult Run;
  VmStats Stats;
  std::vector<int64_t> Output; ///< Values the program printed.
  uint64_t HeapDigest = 0;     ///< jtc::heapDigest of the final heap.
  bool WarmStart = false;      ///< Session was seeded from a snapshot.
  unsigned Worker = 0;         ///< Worker thread that ran it.
  double Seconds = 0;          ///< Wall-clock session latency.
  std::string BtracePath;      ///< Captured .btc stream (empty: no capture).

  /// True when the request was rejected before a VM ran (unknown module);
  /// Run.Trap holds TrapKind::None and Stats is empty.
  bool Rejected = false;
};

/// Fleet-wide aggregates, folded in as sessions retire.
struct ServiceStats {
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  uint64_t Rejected = 0;
  uint64_t WarmStarts = 0;
  uint64_t ColdStarts = 0;
  uint64_t SnapshotsPublished = 0;
  uint64_t CheckpointsSaved = 0;   ///< .jtcp files written.
  uint64_t CheckpointsLoaded = 0;  ///< .jtcp files pre-published at register.
  uint64_t CheckpointLoadRejects = 0; ///< Present but refused (typed error).
  uint64_t BtraceStreams = 0; ///< .btc captures completed cleanly.
  uint64_t BtraceBytes = 0;   ///< Total compressed bytes across captures.
  uint64_t BtraceDrops = 0;   ///< Captures lost to I/O failure.
  double BusySeconds = 0; ///< Sum of session wall-clock latencies.

  /// Every session's VmStats merged (see VmStats::merge).
  VmStats Aggregate;

  /// Telemetry events by kind, summed over every session's ring (all
  /// zero when telemetry is off or compiled out).
  uint64_t EventsByKind[NumEventKinds] = {};

  /// Aggregates as key/value pairs into an already-open JSON object.
  void writeJsonFields(JsonWriter &W) const;
};

/// The concurrent serving loop. Construction starts the workers;
/// destruction drains and joins them.
class VmService {
public:
  explicit VmService(ServiceOptions Options = ServiceOptions());
  ~VmService();

  VmService(const VmService &) = delete;
  VmService &operator=(const VmService &) = delete;

  /// Registers \p M under \p Name: verified callers only (preparation
  /// asserts on structural errors). The module is prepared once and
  /// shared, immutable, by every session over it. Re-registering a name
  /// replaces the module and drops any published snapshot. \p Spec and
  /// \p Scale are provenance recorded in .btc captures (a spec jtc-replay
  /// can resolve, e.g. "workload:compress"; empty = \p Name).
  void registerModule(const std::string &Name, Module M,
                      std::string Spec = "", uint32_t Scale = 0);

  /// Registers workload \p W (scale 0: the workload default) under its
  /// registry name.
  void registerWorkload(const WorkloadInfo &W, uint32_t Scale = 0);

  /// True when \p Name is registered.
  bool hasModule(const std::string &Name) const;

  /// Enqueues \p R; the future resolves when a worker retires the
  /// session. An unknown module name resolves to a Rejected result rather
  /// than throwing (the queue is asynchronous; there is nowhere to throw
  /// to).
  std::future<SessionResult> submit(RunRequest R);

  /// Callback form for event-loop embeddings (the fleet shard): \p Done
  /// runs on the worker thread that retired the session, exactly once,
  /// including when the pool is stopping (with a Rejected result). The
  /// callback must not block; hand off to your own loop (e.g. an outbox
  /// plus an eventfd wake).
  void submitAsync(RunRequest R, std::function<void(SessionResult)> Done);

  /// Convenience: submit + wait.
  SessionResult run(RunRequest R);

  /// Requests admitted but not yet retired (queued + in flight). The
  /// admission-control signal for the serving front-end.
  uint64_t queueDepth() const;

  /// Blocks until every submitted request has retired; then, when a
  /// checkpoint directory is configured, writes every published snapshot
  /// to disk (checkpoint-on-drain).
  void drain();

  /// Writes every published snapshot to <checkpointDir>/<module>.jtcp
  /// now; returns how many files were written. No-op (0) without a
  /// checkpoint directory.
  size_t checkpointAll();

  /// Stops accepting work, drains the queue and joins the workers
  /// (idempotent; the destructor calls it).
  void shutdown();

  unsigned workers() const { return Options.workers(); }
  const ServiceOptions &options() const { return Options; }

  /// Snapshot of the aggregates at this instant.
  ServiceStats stats() const;

  /// The published snapshot for \p Name (empty snapshot when none yet).
  ProfileSnapshot snapshotFor(const std::string &Name) const;

private:
  /// One registered module. The entry's address is stable for the
  /// service's lifetime (the registry stores unique_ptrs), so workers
  /// hold plain pointers while the registry mutex is released.
  struct ModuleEntry {
    ModuleEntry(Module Mod, std::string Spec, uint32_t Scale)
        : M(std::move(Mod)), PM(M), Spec(std::move(Spec)), Scale(Scale) {}

    const Module M;
    const PreparedModule PM;
    const std::string Spec; ///< Replayable provenance for .btc captures.
    const uint32_t Scale;

    /// Warm-handoff slot: null until the first mature cold session over
    /// this module publishes. Guarded by SnapMutex.
    std::shared_ptr<const ProfileSnapshot> Snap;
  };

  struct PendingRun {
    RunRequest Request;
    std::function<void(SessionResult)> Done; ///< Runs exactly once.
  };

  void workerLoop(unsigned WorkerId);

  /// Runs one request on \p WorkerId and returns the retired result.
  SessionResult runOne(const RunRequest &R, unsigned WorkerId);

  /// Tries to pre-publish <loadDir>/<Name>.jtcp into \p Entry. A missing
  /// file is silently fine; a present-but-refused one counts as a load
  /// reject and the module starts cold.
  void maybeLoadCheckpoint(ModuleEntry &Entry, const std::string &Name);

  /// Body of the periodic checkpoint thread.
  void checkpointLoop();

  ServiceOptions Options;

  mutable std::mutex RegistryMutex; ///< Guards Modules and Retired.
  std::map<std::string, std::unique_ptr<ModuleEntry>> Modules;
  /// Entries replaced by re-registration, kept alive because in-flight
  /// sessions may still reference them.
  std::vector<std::unique_ptr<ModuleEntry>> Retired;

  mutable std::mutex SnapMutex; ///< Guards every ModuleEntry::Snap.

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;    ///< Signals workers: work or stop.
  std::condition_variable IdleCv;     ///< Signals drain(): queue empty.
  std::deque<PendingRun> Queue;       ///< Guarded by QueueMutex.
  uint64_t InFlight = 0;              ///< Dequeued, not yet retired.
  bool Stopping = false;

  mutable std::mutex StatsMutex;
  ServiceStats Stats; ///< Guarded by StatsMutex.

  /// Per-module .btc sequence numbers (next to allocate). Guarded by
  /// BtraceMutex; only touched when a btrace directory is configured.
  std::mutex BtraceMutex;
  std::map<std::string, uint64_t> BtraceSeq;

  std::vector<std::thread> Workers;

  /// Periodic checkpointing (runs only with a checkpoint directory and a
  /// positive interval).
  std::mutex CheckpointMutex;
  std::condition_variable CheckpointCv;
  bool CheckpointStop = false; ///< Guarded by CheckpointMutex.
  std::thread CheckpointThread;
};

} // namespace jtc

#endif // JTC_SERVER_VMSERVICE_H
