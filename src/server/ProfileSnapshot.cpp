//===- server/ProfileSnapshot.cpp -----------------------------------------===//

#include "server/ProfileSnapshot.h"

#include "support/Json.h"

#include <cassert>

using namespace jtc;

ProfileSnapshot ProfileSnapshot::capture(const TraceVM &VM) {
  ProfileSnapshot S;
  S.Seed = VM.exportSeed();
  S.Fingerprint = moduleFingerprint(VM.prepared());
  S.DonorBlocks = VM.currentStats().BlocksExecuted;
  return S;
}

ProfileSnapshot ProfileSnapshot::fromParts(VmSeed Seed, uint64_t Fingerprint,
                                           uint64_t DonorBlocks) {
  ProfileSnapshot S;
  S.Seed = std::move(Seed);
  S.Fingerprint = Fingerprint;
  S.DonorBlocks = DonorBlocks;
  return S;
}

void ProfileSnapshot::seed(TraceVM &VM) const {
  assert(compatibleWith(VM.prepared()) &&
         "seeding a session over a structurally different module");
  VM.importSeed(Seed);
}

void ProfileSnapshot::writeJsonFields(JsonWriter &W) const {
  W.fieldUInt("fingerprint", Fingerprint);
  W.fieldUInt("nodes", numNodes());
  W.fieldUInt("traces", numTraces());
  W.fieldUInt("donor_blocks", DonorBlocks);
}
