//===- server/ProfileSnapshot.cpp -----------------------------------------===//

#include "server/ProfileSnapshot.h"

#include "support/Json.h"

#include <cassert>

using namespace jtc;

uint64_t jtc::moduleFingerprint(const PreparedModule &PM) {
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis.
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  Mix(PM.module().EntryMethod);
  Mix(PM.numBlocks());
  for (BlockId B = 0; B < PM.numBlocks(); ++B) {
    const BasicBlock &BB = PM.block(B);
    Mix(BB.MethodId);
    Mix(BB.StartPc);
    Mix(BB.EndPc);
  }
  // 0 is the "no snapshot" sentinel; remap the (vanishingly unlikely)
  // collision rather than special-casing it everywhere.
  return H == 0 ? 1 : H;
}

ProfileSnapshot ProfileSnapshot::capture(const TraceVM &VM) {
  ProfileSnapshot S;
  S.Seed = VM.exportSeed();
  S.Fingerprint = moduleFingerprint(VM.prepared());
  S.DonorBlocks = VM.currentStats().BlocksExecuted;
  return S;
}

void ProfileSnapshot::seed(TraceVM &VM) const {
  assert(compatibleWith(VM.prepared()) &&
         "seeding a session over a structurally different module");
  VM.importSeed(Seed);
}

void ProfileSnapshot::writeJsonFields(JsonWriter &W) const {
  W.fieldUInt("fingerprint", Fingerprint);
  W.fieldUInt("nodes", numNodes());
  W.fieldUInt("traces", numTraces());
  W.fieldUInt("donor_blocks", DonorBlocks);
}
