//===- server/ProfileSnapshot.h - Warm-handoff profile capture --*- C++ -*-===//
///
/// \file
/// The serialized form of a mature session's adaptive state: the branch
/// correlation graph's decayed counters and the trace cache's live
/// traces, tagged with a structural fingerprint of the module they were
/// collected over. A snapshot captured from one TraceVM session seeds a
/// fresh session over the same PreparedModule, so the new session starts
/// with the donor's traces installed and its profiler already warmed --
/// skipping the start-state delay and trace-construction warmup the paper
/// measures (Tables IV-VI) for every session after the first.
///
/// Block ids are module-relative, so a snapshot is only meaningful for an
/// identically prepared module; compatibleWith() enforces that with the
/// fingerprint rather than trusting the caller.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_SERVER_PROFILESNAPSHOT_H
#define JTC_SERVER_PROFILESNAPSHOT_H

#include "vm/ModuleFingerprint.h"
#include "vm/TraceVM.h"

#include <cstdint>
#include <iosfwd>

namespace jtc {

class JsonWriter;

class ProfileSnapshot {
public:
  ProfileSnapshot() = default;

  /// Captures \p VM's current profiler counters and live traces. Usable
  /// after (or during) the donor's run; the donor is not modified.
  static ProfileSnapshot capture(const TraceVM &VM);

  /// Rebuilds a snapshot from externally restored parts (the persist
  /// layer's disk load). The caller has already fingerprint-gated and
  /// re-validated \p Seed against the module it will seed.
  static ProfileSnapshot fromParts(VmSeed Seed, uint64_t Fingerprint,
                                   uint64_t DonorBlocks);

  /// True when \p PM 's block structure matches the donor module's, so
  /// this snapshot may seed sessions over \p PM.
  bool compatibleWith(const PreparedModule &PM) const {
    return Fingerprint != 0 && Fingerprint == moduleFingerprint(PM);
  }

  /// Seeds \p VM (which must not have run yet) with the captured state.
  /// Asserts compatibility in checked builds; callers gate on
  /// compatibleWith() first.
  void seed(TraceVM &VM) const;

  bool empty() const { return Seed.empty(); }

  /// Number of live traces the snapshot carries.
  size_t numTraces() const { return Seed.Traces.size(); }

  /// Number of profiled branch pairs the snapshot carries.
  size_t numNodes() const { return Seed.Nodes.size(); }

  uint64_t fingerprint() const { return Fingerprint; }

  /// Donor maturity: blocks the donor had executed at capture time.
  uint64_t donorBlocks() const { return DonorBlocks; }

  /// The portable state itself (the persist layer serializes it).
  const VmSeed &seed() const { return Seed; }

  /// Summary fields ("fingerprint", "nodes", "traces", "donor_blocks")
  /// into an already-open JSON object.
  void writeJsonFields(JsonWriter &W) const;

private:
  VmSeed Seed;
  uint64_t Fingerprint = 0;
  uint64_t DonorBlocks = 0;
};

} // namespace jtc

#endif // JTC_SERVER_PROFILESNAPSHOT_H
