//===- workloads/Common.cpp -----------------------------------------------===//

#include "workloads/Common.h"

#include <string>

using namespace jtc;

uint32_t jtc::addLcgMethod(Assembler &Asm) {
  uint32_t Id = Asm.declareMethod("lcg", /*NumArgs=*/1, /*NumLocals=*/1,
                                  /*ReturnsValue=*/true);
  MethodBuilder B = Asm.beginMethod(Id);
  B.iload(0);
  B.iconst(1103515245);
  B.emit(Opcode::Imul);
  B.iconst(12345);
  B.emit(Opcode::Iadd);
  B.iconst(2147483647);
  B.emit(Opcode::Iand);
  B.iret();
  B.finish();
  return Id;
}

void jtc::emitLcgFill(MethodBuilder &B, uint32_t LcgMethod, uint32_t ArrLocal,
                      uint32_t SeedLocal, uint32_t IdxLocal, int32_t Len,
                      int32_t Mask) {
  Label Loop = B.newLabel();
  Label Done = B.newLabel();
  B.iconst(0);
  B.istore(IdxLocal);
  B.bind(Loop);
  B.iload(IdxLocal);
  B.iconst(Len);
  B.branch(Opcode::IfIcmpGe, Done);
  B.iload(SeedLocal);
  B.invokestatic(LcgMethod);
  B.istore(SeedLocal);
  B.iload(ArrLocal);
  B.iload(IdxLocal);
  B.iload(SeedLocal);
  B.iconst(Mask);
  B.emit(Opcode::Iand);
  B.emit(Opcode::Iastore);
  B.iinc(IdxLocal, 1);
  B.branch(Opcode::Goto, Loop);
  B.bind(Done);
}

std::vector<uint32_t> jtc::addColdTail(Assembler &Asm, const char *Prefix,
                                       unsigned Count, unsigned Beef,
                                       uint64_t Seed, unsigned Branches) {
  Prng Rng(Seed);
  std::vector<uint32_t> Ids;
  Ids.reserve(Count);

  for (unsigned K = 0; K < Count; ++K) {
    uint32_t Id = Asm.declareMethod(std::string(Prefix) + std::to_string(K),
                                    /*NumArgs=*/1, /*NumLocals=*/2,
                                    /*ReturnsValue=*/true);
    MethodBuilder B = Asm.beginMethod(Id);

    // t = x, then a method-specific mix of arithmetic steps.
    B.iload(0);
    B.istore(1);
    unsigned Steps = Beef / 4 + Rng.nextBelow(3);
    unsigned Stride = Steps / (Branches + 1) == 0 ? 1 : Steps / (Branches + 1);
    for (unsigned S = 0; S < Steps; ++S) {
      if (S % Stride == Stride - 1 && S / Stride <= Branches && S / Stride >= 1) {
        // A data-dependent branch.
        Label Alt = B.newLabel(), Join = B.newLabel();
        B.iload(0);
        B.iconst(1 << Rng.nextBelow(4));
        B.emit(Opcode::Iand);
        B.branch(Opcode::IfEq, Alt);
        B.iload(1);
        B.iconst(static_cast<int32_t>(Rng.nextBelow(97) + 1));
        B.emit(Opcode::Iadd);
        B.istore(1);
        B.branch(Opcode::Goto, Join);
        B.bind(Alt);
        B.iload(1);
        B.iconst(3);
        B.emit(Opcode::Imul);
        B.iconst(0xffffff);
        B.emit(Opcode::Iand);
        B.istore(1);
        B.bind(Join);
        continue;
      }
      B.iload(1);
      switch (Rng.nextBelow(5)) {
      case 0:
        B.iconst(static_cast<int32_t>(Rng.nextBelow(251) + 3));
        B.emit(Opcode::Imul);
        B.iconst(0xffffff);
        B.emit(Opcode::Iand);
        break;
      case 1:
        B.iload(0);
        B.iconst(static_cast<int32_t>(Rng.nextBelow(5) + 1));
        B.emit(Opcode::Ishr);
        B.emit(Opcode::Iadd);
        break;
      case 2:
        B.iconst(static_cast<int32_t>(Rng.nextBelow(0xffff)));
        B.emit(Opcode::Ixor);
        break;
      case 3:
        B.iconst(static_cast<int32_t>(Rng.nextBelow(1023) + 1));
        B.emit(Opcode::Iadd);
        break;
      case 4:
        B.iconst(static_cast<int32_t>(Rng.nextBelow(3) + 1));
        B.emit(Opcode::Ishl);
        B.iconst(0xffffff);
        B.emit(Opcode::Iand);
        break;
      }
      B.istore(1);
    }
    B.iload(1);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.iret();
    B.finish();
    Ids.push_back(Id);
  }
  return Ids;
}

void jtc::emitTailDispatch(MethodBuilder &B,
                           const std::vector<uint32_t> &Tails) {
  assert(!Tails.empty() && "tail dispatch over an empty population");
  std::vector<Label> Sites(Tails.size());
  for (auto &L : Sites)
    L = B.newLabel();
  Label Join = B.newLabel();

  // Stack: [arg, selector]; the switch consumes the selector.
  B.tableswitch(0, Sites, /*Default=*/Sites[0]);
  for (size_t K = 0; K < Tails.size(); ++K) {
    B.bind(Sites[K]);
    B.invokestatic(Tails[K]);
    B.branch(Opcode::Goto, Join);
  }
  B.bind(Join);
}
