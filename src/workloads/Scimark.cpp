//===- workloads/Scimark.cpp - Regular numeric kernel stand-in ------------===//
///
/// Emulates scimark: SOR/matmul-style kernels whose loop bodies are long
/// unique-successor chains (single-block helper calls and array updates)
/// with no data-dependent branches at all. The only uncertain branches
/// are the 16-iteration back edges (93.75% bias -- below every threshold
/// the paper sweeps), so traces are the loop bodies themselves: their
/// length and the near-total coverage are threshold-independent, matching
/// the flat scimark rows of Tables I-III.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace jtc;

namespace {

/// Adds a single-block arithmetic helper f(a, b) built from \p Emit.
uint32_t addKernelHelper(Assembler &Asm, const char *Name,
                         void (*Emit)(MethodBuilder &)) {
  uint32_t Id = Asm.declareMethod(Name, 2, 2, true);
  MethodBuilder B = Asm.beginMethod(Id);
  Emit(B);
  B.iret();
  B.finish();
  return Id;
}

} // namespace

Module jtc::buildScimark(uint32_t Scale) {
  Assembler Asm;
  uint32_t Lcg = addLcgMethod(Asm);

  // Four straight-line kernels; each leaves one int on the stack.
  uint32_t K1 = addKernelHelper(Asm, "sorStep", [](MethodBuilder &B) {
    // (a + b) * 5 >> 1, masked
    B.iload(0);
    B.iload(1);
    B.emit(Opcode::Iadd);
    B.iconst(5);
    B.emit(Opcode::Imul);
    B.iconst(1);
    B.emit(Opcode::Ishr);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
  });
  uint32_t K2 = addKernelHelper(Asm, "fftTwiddle", [](MethodBuilder &B) {
    // a * 3 ^ (b << 2), masked
    B.iload(0);
    B.iconst(3);
    B.emit(Opcode::Imul);
    B.iload(1);
    B.iconst(2);
    B.emit(Opcode::Ishl);
    B.emit(Opcode::Ixor);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
  });
  uint32_t K3 = addKernelHelper(Asm, "luScale", [](MethodBuilder &B) {
    // (a - b) + (a >> 3)
    B.iload(0);
    B.iload(1);
    B.emit(Opcode::Isub);
    B.iload(0);
    B.iconst(3);
    B.emit(Opcode::Ishr);
    B.emit(Opcode::Iadd);
  });
  uint32_t K4 = addKernelHelper(Asm, "dotStep", [](MethodBuilder &B) {
    // a * b masked plus b
    B.iload(0);
    B.iload(1);
    B.emit(Opcode::Imul);
    B.iconst(0xffff);
    B.emit(Opcode::Iand);
    B.iload(1);
    B.emit(Opcode::Iadd);
  });

  // Locals: 0 seed, 1 iter, 2 i, 3 a[], 4 b[], 5 x, 6 y, 7 scratch idx.
  uint32_t Main = Asm.declareMethod("main", 0, 8, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    B.iconst(987);
    B.istore(0);
    B.iconst(32);
    B.emit(Opcode::NewArray);
    B.istore(3);
    B.iconst(32);
    B.emit(Opcode::NewArray);
    B.istore(4);
    emitLcgFill(B, Lcg, /*ArrLocal=*/3, /*SeedLocal=*/0, /*IdxLocal=*/7, 32,
                0xffff);
    emitLcgFill(B, Lcg, /*ArrLocal=*/4, /*SeedLocal=*/0, /*IdxLocal=*/7, 32,
                0xffff);

    Label Iter = B.newLabel(), IterEnd = B.newLabel();
    Label Sor = B.newLabel(), SorEnd = B.newLabel();
    Label Dot = B.newLabel(), DotEnd = B.newLabel();

    B.iconst(0);
    B.istore(1);
    B.bind(Iter);
    B.iload(1);
    B.iconst(static_cast<int32_t>(Scale));
    B.branch(Opcode::IfIcmpGe, IterEnd);

    // SOR-like kernel: a[i&31] = k3(k2(k1(a[i&31], b[(i+1)&31]), i), x)
    B.iconst(0);
    B.istore(2);
    B.bind(Sor);
    B.iload(2);
    B.iconst(16);
    B.branch(Opcode::IfIcmpGe, SorEnd);
    // x = k1(a[i&31], b[(i+1)&31])
    B.iload(3);
    B.iload(2);
    B.iconst(31);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iaload);
    B.iload(4);
    B.iload(2);
    B.iconst(1);
    B.emit(Opcode::Iadd);
    B.iconst(31);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iaload);
    B.invokestatic(K1);
    B.istore(5);
    // y = k2(x, i)
    B.iload(5);
    B.iload(2);
    B.invokestatic(K2);
    B.istore(6);
    // Two more pipeline stages: y = k2(k4(y, i), x).
    B.iload(6);
    B.iload(2);
    B.invokestatic(K4);
    B.istore(6);
    B.iload(6);
    B.iload(5);
    B.invokestatic(K2);
    B.istore(6);
    // a[i&31] = k3(y, x) & 0xffffff
    B.iload(3);
    B.iload(2);
    B.iconst(31);
    B.emit(Opcode::Iand);
    B.iload(6);
    B.iload(5);
    B.invokestatic(K3);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iastore);
    B.iinc(2, 1);
    B.branch(Opcode::Goto, Sor);
    B.bind(SorEnd);

    // Dot-product-like kernel: b[i&31] = k4(a[(i*3)&31], b[i&31]) + i
    B.iconst(0);
    B.istore(2);
    B.bind(Dot);
    B.iload(2);
    B.iconst(16);
    B.branch(Opcode::IfIcmpGe, DotEnd);
    B.iload(4);
    B.iload(2);
    B.iconst(31);
    B.emit(Opcode::Iand);
    B.iload(3);
    B.iload(2);
    B.iconst(3);
    B.emit(Opcode::Imul);
    B.iconst(31);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iaload);
    B.iload(4);
    B.iload(2);
    B.iconst(31);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iaload);
    B.invokestatic(K4);
    B.iload(2);
    B.emit(Opcode::Iadd);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iastore);
    B.iinc(2, 1);
    B.branch(Opcode::Goto, Dot);
    B.bind(DotEnd);

    B.iinc(1, 1);
    B.branch(Opcode::Goto, Iter);

    B.bind(IterEnd);
    B.iload(3);
    B.iconst(0);
    B.emit(Opcode::Iaload);
    B.emit(Opcode::Iprint);
    B.iload(4);
    B.iconst(0);
    B.emit(Opcode::Iaload);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}
