//===- workloads/Javac.cpp - Compiler front-end stand-in ------------------===//
///
/// Emulates SPECjvm javac: a token-driven parser over a large static code
/// footprint. Each iteration switches over a pseudo-random token kind (a
/// uniform 8-way tableswitch whose maximally correlated successor keeps
/// flapping -- the profiler's hardest case), dispatches into one of 192
/// generated "production" methods executed only a couple of hundred times
/// each (so a large slice of the stream stays at or near the start-state
/// delay), and visits one of four AST node classes through a megamorphic
/// virtual call. A one-shot "library loading" phase adds purely cold
/// stream. The result: short traces, the lowest coverage of the suite,
/// and a high signal rate, as in the paper's javac rows.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace jtc;

Module jtc::buildJavac(uint32_t Scale) {
  Assembler Asm;
  uint32_t Lcg = addLcgMethod(Asm);

  uint32_t EvalSlot = Asm.declareSlot("eval", /*ArgCount=*/2,
                                      /*ReturnsValue=*/true);

  struct NodeSpec {
    const char *ClassName;
    const char *MethodName;
  };
  const NodeSpec Specs[4] = {{"Literal", "evalLiteral"},
                             {"BinaryOp", "evalBinary"},
                             {"FieldRef", "evalField"},
                             {"CallExpr", "evalCall"}};

  uint32_t Classes[4];
  for (int K = 0; K < 4; ++K) {
    Classes[K] = Asm.declareClass(Specs[K].ClassName, /*NumFields=*/1);
    uint32_t M = Asm.declareMethod(Specs[K].MethodName, 2, 2, true);
    MethodBuilder B = Asm.beginMethod(M);
    B.iload(0);
    B.getfield(0);
    B.iload(1);
    switch (K) {
    case 0:
      B.emit(Opcode::Iadd);
      break;
    case 1:
      B.emit(Opcode::Imul);
      B.iconst(0xffff);
      B.emit(Opcode::Iand);
      break;
    case 2:
      B.emit(Opcode::Ixor);
      break;
    case 3:
      B.emit(Opcode::Isub);
      break;
    }
    B.iret();
    B.finish();
    Asm.setVtableEntry(Classes[K], EvalSlot, M);
  }

  // Grammar productions: Slice per token kind, sized so each executes
  // roughly 500 times over a run -- mostly below two decay intervals,
  // i.e. largely invisible to the trace cache.
  unsigned Slice = Scale < 64 ? 8 : Scale / 8;
  std::vector<uint32_t> Productions =
      addColdTail(Asm, "production", 8 * Slice, 16, 0x7ac0, /*Branches=*/1);
  // Library-loading routines: executed 16 times each, below any delay.
  std::vector<uint32_t> Loader = addColdTail(Asm, "classload", 160, 24, 0x10ad);

  // Locals: 0 seed, 1 i, 2 tok, 3 x, 4 tokens[], 5 nodes[], 6 acc, 7 idx.
  uint32_t Main = Asm.declareMethod("main", 0, 8, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    B.iconst(31337);
    B.istore(0);
    B.iconst(256);
    B.emit(Opcode::NewArray);
    B.istore(4);
    emitLcgFill(B, Lcg, 4, 0, 7, 256, 0x7fffffff);

    // nodes[k] = new Specs[k] with field = k * 7 + 3.
    B.iconst(4);
    B.emit(Opcode::NewArray);
    B.istore(5);
    for (int K = 0; K < 4; ++K) {
      B.iload(5);
      B.iconst(K);
      B.newobj(Classes[K]);
      B.emit(Opcode::Dup);
      B.iconst(K * 7 + 3);
      B.putfield(0);
      B.emit(Opcode::Iastore);
    }

    // Library loading: touch every loader routine 16 times.
    {
      Label Load = B.newLabel(), LoadEnd = B.newLabel();
      B.iconst(0);
      B.istore(7);
      B.bind(Load);
      B.iload(7);
      B.iconst(static_cast<int32_t>(Loader.size() * 16));
      B.branch(Opcode::IfIcmpGe, LoadEnd);
      B.iload(7); // arg
      B.iload(7);
      B.iconst(static_cast<int32_t>(Loader.size()));
      B.emit(Opcode::Irem); // selector
      emitTailDispatch(B, Loader);
      B.iload(6);
      B.emit(Opcode::Iadd);
      B.iconst(0xffffff);
      B.emit(Opcode::Iand);
      B.istore(6);
      B.iinc(7, 1);
      B.branch(Opcode::Goto, Load);
      B.bind(LoadEnd);
    }

    Label Parse = B.newLabel(), Done = B.newLabel(), Poly = B.newLabel();
    Label H[8];
    for (auto &L : H)
      L = B.newLabel();
    Label Def = B.newLabel();

    B.iconst(0);
    B.istore(1);

    B.bind(Parse);
    B.iload(1);
    B.iconst(static_cast<int32_t>(Scale * 1024));
    B.branch(Opcode::IfIcmpGe, Done);

    // Next token: a fresh LCG draw mixed with the lookahead window, so
    // the stream never cycles.
    B.iload(0);
    B.invokestatic(Lcg);
    B.istore(0);
    B.iload(4);
    B.iload(1);
    B.iconst(255);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iaload);
    B.iload(0);
    B.iconst(9);
    B.emit(Opcode::Ishr);
    B.emit(Opcode::Ixor);
    B.iconst(0x3ff);
    B.emit(Opcode::Iand);
    B.istore(2);

    // 8-way dispatch on the token kind.
    B.iload(2);
    B.iconst(7);
    B.emit(Opcode::Iand);
    B.tableswitch(0, {H[0], H[1], H[2], H[3], H[4], H[5], H[6], H[7]}, Def);

    // Each handler runs the production for (kind, tok detail): selector
    // = kind * 24 + (tok >> 3) % 24 into the production population.
    for (int K = 0; K < 8; ++K) {
      B.bind(H[K]);
      // arg = acc ^ (tok * (K + 3))
      B.iload(6);
      B.iload(2);
      B.iconst(K + 3);
      B.emit(Opcode::Imul);
      B.emit(Opcode::Ixor);
      // selector
      B.iload(2);
      B.iconst(3);
      B.emit(Opcode::Ishr);
      B.iconst(static_cast<int32_t>(Slice));
      B.emit(Opcode::Irem);
      B.iconst(static_cast<int32_t>(K * Slice));
      B.emit(Opcode::Iadd);
      emitTailDispatch(B, Productions);
      B.istore(6);
      B.branch(Opcode::Goto, Poly);
    }
    B.bind(Def); // unreachable: the kind is masked to [0, 8)
    B.branch(Opcode::Goto, Poly);

    B.bind(Poly);
    // acc += nodes[tok & 3].eval(x) -- megamorphic visit.
    B.iload(6);
    B.iconst(1023);
    B.emit(Opcode::Iand);
    B.istore(3);
    B.iload(5);
    B.iload(2);
    B.iconst(3);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iaload);
    B.iload(3);
    B.invokevirtual(EvalSlot);
    B.iload(6);
    B.emit(Opcode::Iadd);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.istore(6);

    B.iinc(1, 1);
    B.branch(Opcode::Goto, Parse);

    B.bind(Done);
    B.iload(6);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}
