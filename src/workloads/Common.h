//===- workloads/Common.h - Shared workload emitters ------------*- C++ -*-===//
///
/// \file
/// Emitter helpers shared by the workload generators: the LCG data
/// source, array-fill loops, and "cold tail" method populations.
///
/// Cold tails model the long tail of a real Java application's static
/// code footprint (library code, startup, rarely taken utility paths):
/// many distinct methods each executed only tens-to-hundreds of times.
/// Sites executed fewer times than the start-state delay never enter
/// traces at all, and sites just above it spend most of their executions
/// cold -- this is the dominant source of uncovered instruction stream in
/// the paper's less regular benchmarks (javac, soot, raytrace).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_WORKLOADS_COMMON_H
#define JTC_WORKLOADS_COMMON_H

#include "bytecode/Assembler.h"
#include "support/Prng.h"

#include <vector>

namespace jtc {

/// Adds the deterministic pseudo-random step `lcg(seed) -> seed'`
/// (a classic 31-bit linear congruential generator) and returns its
/// method id. All workload data derives from it.
uint32_t addLcgMethod(Assembler &Asm);

/// Emits, into \p B, a loop filling array local \p ArrLocal (already
/// holding an array reference of length \p Len) with successive LCG
/// values masked by \p Mask. Uses \p SeedLocal as the evolving seed and
/// \p IdxLocal as scratch.
void emitLcgFill(MethodBuilder &B, uint32_t LcgMethod, uint32_t ArrLocal,
                 uint32_t SeedLocal, uint32_t IdxLocal, int32_t Len,
                 int32_t Mask);

/// Adds \p Count generated static methods (one int argument, int result)
/// of roughly \p Beef arithmetic instructions each, with \p Branches
/// internal data-dependent branches for structural realism. Operation mixes vary per
/// method, driven deterministically by \p Seed. Returns the method ids.
std::vector<uint32_t> addColdTail(Assembler &Asm, const char *Prefix,
                                  unsigned Count, unsigned Beef,
                                  uint64_t Seed, unsigned Branches = 1);

/// Emits a dispatch into a cold-tail population. On entry the operand
/// stack holds [arg, selector] with selector already reduced to
/// [0, Tails.size()); on exit it holds the callee's int result. Compiled
/// as a tableswitch over one invokestatic call site per tail method,
/// mirroring a compiler's dispatch into many small routines.
void emitTailDispatch(MethodBuilder &B, const std::vector<uint32_t> &Tails);

} // namespace jtc

#endif // JTC_WORKLOADS_COMMON_H
