//===- workloads/Workloads.h - The six benchmark programs -------*- C++ -*-===//
///
/// \file
/// Synthetic stand-ins for the paper's benchmark suite (section 5.1):
/// four SPECjvm programs (compress, javac, raytrace, mpegaudio), soot and
/// scimark. Each is assembled in our bytecode and engineered to reproduce
/// the branch-predictability profile the original exhibits under the
/// branch correlation graph:
///
///  - compress:  tight loops with ~99.5%-biased branches (hash hits,
///               literal runs); long threshold-limited traces.
///  - javac:     a token-driven parser state machine with uniform
///               tableswitches and megamorphic virtual dispatch; short
///               traces, frequent max-successor signals.
///  - raytrace:  per-object intersection loops (straight-line call
///               chains) glued by data-dependent min-updates and rare
///               recursion; medium traces.
///  - mpegaudio: fixed-bound filter loops whose back edges sit just below
///               97% plus ~98.4%-biased quantization branches; short but
///               hot traces, high coverage.
///  - soot:      a fixpoint sweep over a synthetic CFG with a 5-way kind
///               switch and 5-receiver virtual dispatch; irregular, low
///               trace length.
///  - scimark:   regular numeric kernels built from unique-successor call
///               chains; threshold-independent traces and near-total
///               coverage.
///
/// All data is generated in-program from a deterministic LCG, so runs are
/// exactly reproducible. \p Scale multiplies the outer iteration count.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_WORKLOADS_WORKLOADS_H
#define JTC_WORKLOADS_WORKLOADS_H

#include "bytecode/Program.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace jtc {

Module buildCompress(uint32_t Scale);
Module buildJavac(uint32_t Scale);
Module buildRaytrace(uint32_t Scale);
Module buildMpegaudio(uint32_t Scale);
Module buildSoot(uint32_t Scale);
Module buildScimark(uint32_t Scale);

/// Registry entry for one workload.
struct WorkloadInfo {
  const char *Name;
  Module (*Build)(uint32_t Scale);
  /// Scale giving a run of very roughly two million instructions, used by
  /// the benchmark harness default.
  uint32_t DefaultScale;
};

/// All six workloads, in the paper's table order.
const std::vector<WorkloadInfo> &allWorkloads();

/// Looks a workload up by name; null when unknown.
const WorkloadInfo *findWorkload(std::string_view Name);

} // namespace jtc

#endif // JTC_WORKLOADS_WORKLOADS_H
