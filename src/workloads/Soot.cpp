//===- workloads/Soot.cpp - Bytecode analysis framework stand-in ----------===//
///
/// Emulates soot: a dataflow fixpoint sweep over a synthetic control-flow
/// graph. Each node has a kind (5-way switch), two successors whose
/// values are merged through a shared branchy helper, and a transfer
/// function applied through a 5-receiver virtual dispatch. The switch and
/// dispatch correlations depend on the (pseudo-random but fixed) graph
/// shape, giving the irregular, low-trace-length, signal-heavy profile of
/// the paper's soot rows.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace jtc;

Module jtc::buildSoot(uint32_t Scale) {
  Assembler Asm;
  uint32_t Lcg = addLcgMethod(Asm);

  uint32_t ApplySlot = Asm.declareSlot("apply", 2, true);

  const char *FlowNames[5] = {"CopyFlow", "AddFlow", "MaskFlow", "ShiftFlow",
                              "XorFlow"};
  uint32_t Classes[5];
  for (int K = 0; K < 5; ++K) {
    Classes[K] = Asm.declareClass(FlowNames[K], 1);
    uint32_t M = Asm.declareMethod(std::string("apply") + FlowNames[K], 2, 2,
                                   true);
    MethodBuilder B = Asm.beginMethod(M);
    B.iload(0);
    B.getfield(0);
    B.iload(1);
    switch (K) {
    case 0:
      B.emit(Opcode::Iadd);
      break;
    case 1:
      B.emit(Opcode::Iadd);
      B.iconst(1);
      B.emit(Opcode::Ishr);
      break;
    case 2:
      B.emit(Opcode::Iand);
      B.iconst(77);
      B.emit(Opcode::Iadd);
      break;
    case 3:
      B.emit(Opcode::Ishl);
      B.iconst(0xffffff);
      B.emit(Opcode::Iand);
      break;
    case 4:
      B.emit(Opcode::Ixor);
      break;
    }
    B.iret();
    B.finish();
    Asm.setVtableEntry(Classes[K], ApplySlot, M);
  }

  // merge(a, b): lattice join; shared, multi-block, data-dependent.
  uint32_t Merge = Asm.declareMethod("merge", 2, 3, true);
  {
    MethodBuilder B = Asm.beginMethod(Merge);
    Label AGreater = B.newLabel(), Out = B.newLabel();
    B.iload(0);
    B.iload(1);
    B.branch(Opcode::IfIcmpGt, AGreater);
    B.iload(1);
    B.iconst(2);
    B.emit(Opcode::Imul);
    B.iload(0);
    B.emit(Opcode::Isub);
    B.istore(2);
    B.branch(Opcode::Goto, Out);
    B.bind(AGreater);
    B.iload(0);
    B.iconst(2);
    B.emit(Opcode::Imul);
    B.iload(1);
    B.emit(Opcode::Isub);
    B.istore(2);
    B.bind(Out);
    B.iload(2);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.iret();
    B.finish();
  }

  // Transfer-function variants: 24 per node kind, each executed a few
  // hundred times over a default run -- the near-delay code that holds
  // coverage near the paper's ~83%.
  unsigned Slice = Scale < 96 ? 8 : Scale / 12;
  std::vector<uint32_t> Transfers =
      addColdTail(Asm, "transfer", 5 * Slice, 28, 0x5007);

  // Locals: 0 seed, 1 pass, 2 n, 3 kind[], 4 succ1[], 5 succ2[],
  //         6 val[], 7 analyses[], 8 k, 9 v, 10 idx.
  uint32_t Main = Asm.declareMethod("main", 0, 11, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    B.iconst(777);
    B.istore(0);

    for (uint32_t Arr = 3; Arr <= 6; ++Arr) {
      B.iconst(64);
      B.emit(Opcode::NewArray);
      B.istore(Arr);
    }
    // kind[n] in [0, 5): fill with LCG mod 5.
    {
      Label Loop = B.newLabel(), Done = B.newLabel();
      B.iconst(0);
      B.istore(10);
      B.bind(Loop);
      B.iload(10);
      B.iconst(64);
      B.branch(Opcode::IfIcmpGe, Done);
      B.iload(0);
      B.invokestatic(Lcg);
      B.istore(0);
      B.iload(3);
      B.iload(10);
      B.iload(0);
      B.iconst(5);
      B.emit(Opcode::Irem);
      B.emit(Opcode::Iastore);
      B.iinc(10, 1);
      B.branch(Opcode::Goto, Loop);
      B.bind(Done);
    }
    emitLcgFill(B, Lcg, 4, 0, 10, 64, 63);     // succ1
    emitLcgFill(B, Lcg, 5, 0, 10, 64, 63);     // succ2
    emitLcgFill(B, Lcg, 6, 0, 10, 64, 0xffff); // initial values

    // analyses[k] = new FlowNames[k] with field = k * 13 + 5.
    B.iconst(5);
    B.emit(Opcode::NewArray);
    B.istore(7);
    for (int K = 0; K < 5; ++K) {
      B.iload(7);
      B.iconst(K);
      B.newobj(Classes[K]);
      B.emit(Opcode::Dup);
      B.iconst(K * 13 + 5);
      B.putfield(0);
      B.emit(Opcode::Iastore);
    }

    Label Pass = B.newLabel(), PassEnd = B.newLabel();
    Label Node = B.newLabel(), NodeEnd = B.newLabel();
    Label K0 = B.newLabel(), K1 = B.newLabel(), K2 = B.newLabel(),
          K3 = B.newLabel(), K4 = B.newLabel(), KDef = B.newLabel(),
          KJoin = B.newLabel(), NoWiden = B.newLabel();

    B.iconst(0);
    B.istore(1);
    B.bind(Pass);
    B.iload(1);
    B.iconst(static_cast<int32_t>(Scale));
    B.branch(Opcode::IfIcmpGe, PassEnd);

    B.iconst(0);
    B.istore(2);
    B.bind(Node);
    B.iload(2);
    B.iconst(64);
    B.branch(Opcode::IfIcmpGe, NodeEnd);

    // k = kind[n]
    B.iload(3);
    B.iload(2);
    B.emit(Opcode::Iaload);
    B.istore(8);

    // v = merge(val[succ1[n]], val[succ2[n]])
    B.iload(6);
    B.iload(4);
    B.iload(2);
    B.emit(Opcode::Iaload);
    B.emit(Opcode::Iaload);
    B.iload(6);
    B.iload(5);
    B.iload(2);
    B.emit(Opcode::Iaload);
    B.emit(Opcode::Iaload);
    B.invokestatic(Merge);
    B.iload(1);
    B.iconst(7);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Ixor);
    B.istore(9);

    // Per-kind preprocessing: a 5-way switch whose outcome follows the
    // (irregular) graph shape.
    B.iload(8);
    B.tableswitch(0, {K0, K1, K2, K3, K4}, KDef);
    B.bind(K0);
    B.iload(9);
    B.iconst(1);
    B.emit(Opcode::Iadd);
    B.istore(9);
    B.branch(Opcode::Goto, KJoin);
    B.bind(K1);
    B.iload(9);
    B.iconst(3);
    B.emit(Opcode::Imul);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.istore(9);
    B.branch(Opcode::Goto, KJoin);
    B.bind(K2);
    B.iload(9);
    B.iload(2);
    B.emit(Opcode::Ixor);
    B.istore(9);
    B.branch(Opcode::Goto, KJoin);
    B.bind(K3);
    B.iload(9);
    B.iconst(2);
    B.emit(Opcode::Ishr);
    B.istore(9);
    B.branch(Opcode::Goto, KJoin);
    B.bind(K4);
    B.iinc(9, 5);
    B.branch(Opcode::Goto, KJoin);
    B.bind(KDef);
    B.branch(Opcode::Goto, KJoin);
    B.bind(KJoin);

    // v = transfer_{k, v detail}(v): dispatch into the transfer-function
    // population with selector kind * 24 + (v >> 2) % 24.
    B.iload(9); // arg
    B.iload(8);
    B.iconst(static_cast<int32_t>(Slice));
    B.emit(Opcode::Imul);
    B.iload(9);
    B.iconst(2);
    B.emit(Opcode::Ishr);
    B.iconst(static_cast<int32_t>(Slice));
    B.emit(Opcode::Irem);
    B.emit(Opcode::Iadd);
    emitTailDispatch(B, Transfers);
    B.istore(9);

    // val[n] = analyses[k].apply(v) -- 5-receiver virtual dispatch.
    B.iload(6);
    B.iload(2);
    B.iload(7);
    B.iload(8);
    B.emit(Opcode::Iaload);
    B.iload(9);
    B.invokevirtual(ApplySlot);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iastore);

    // Widening check (~96.9% skipped).
    B.iload(9);
    B.iconst(31);
    B.emit(Opcode::Iand);
    B.branch(Opcode::IfNe, NoWiden);
    B.iload(6);
    B.iload(2);
    B.iload(9);
    B.iconst(1);
    B.emit(Opcode::Ishr);
    B.emit(Opcode::Iastore);
    B.bind(NoWiden);

    B.iinc(2, 1);
    B.branch(Opcode::Goto, Node);
    B.bind(NodeEnd);

    B.iinc(1, 1);
    B.branch(Opcode::Goto, Pass);
    B.bind(PassEnd);

    B.iload(6);
    B.iconst(0);
    B.emit(Opcode::Iaload);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}
