//===- workloads/Compress.cpp - LZW-style compressor stand-in -------------===//
///
/// Emulates SPECjvm compress: a hot encode loop with one ~99.5%-biased
/// data-dependent branch per iteration (hash hit vs. literal emission).
/// Multi-iteration traces survive thresholds of 99% and below, but the
/// branch's misses stay resident in the decayed counters, so at the 100%
/// threshold it is never strong and trace length collapses. A per-block
/// "output flush" phase dispatches into a population of small buffer
/// routines executed ~100 times each -- the near-delay code that keeps
/// coverage around the paper's 90% rather than total.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace jtc;

Module jtc::buildCompress(uint32_t Scale) {
  Assembler Asm;
  uint32_t Lcg = addLcgMethod(Asm);

  // emitCode(v): one straight-line code-emission step in the hot loop.
  uint32_t EmitCode = Asm.declareMethod("emitCode", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(EmitCode);
    B.iload(0);
    B.iconst(31);
    B.emit(Opcode::Imul);
    B.iload(0);
    B.iconst(3);
    B.emit(Opcode::Ishr);
    B.emit(Opcode::Iadd);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.iret();
    B.finish();
  }

  // Output-buffer routines: a near-delay population whose width scales
  // with the run length so the cold fraction of the stream is
  // run-length invariant (longer compress runs touch more table state).
  unsigned TailWidth = 96 * ((Scale + 19) / 20);
  std::vector<uint32_t> Tail = addColdTail(Asm, "outbuf", TailWidth, 24, 0xc0ffee);

  // Locals: 0 seed, 1 total, 2 i, 3 j, 4 v, 5 f.
  uint32_t Main = Asm.declareMethod("main", 0, 6, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    Label Outer = B.newLabel(), OuterEnd = B.newLabel();
    Label Inner = B.newLabel(), InnerEnd = B.newLabel();
    Label Rare = B.newLabel(), Join = B.newLabel();
    Label Flush = B.newLabel(), FlushEnd = B.newLabel();

    B.iconst(12345);
    B.istore(0); // seed
    B.iconst(0);
    B.istore(1); // total
    B.iconst(0);
    B.istore(3); // j

    B.bind(Outer);
    B.iload(3);
    B.iconst(static_cast<int32_t>(Scale));
    B.branch(Opcode::IfIcmpGe, OuterEnd);
    B.iconst(0);
    B.istore(2); // i

    // Hot encode loop: 4096 symbols.
    B.bind(Inner);
    B.iload(2);
    B.iconst(4096);
    B.branch(Opcode::IfIcmpGe, InnerEnd);

    // seed = lcg(seed); v = seed & 2047
    B.iload(0);
    B.invokestatic(Lcg);
    B.istore(0);
    B.iload(0);
    B.iconst(7);
    B.emit(Opcode::Ishr);
    B.iconst(2047);
    B.emit(Opcode::Iand);
    B.istore(4);

    // Hash hit (~99.5%, one biased branch per iteration): total +=
    // emitCode(v). The bias is high enough that a once-unrolled
    // two-iteration trace survives the 97% threshold and a one-iteration
    // trace survives 99%, yet misses stay resident in the decayed
    // counters, so at the 100% threshold the branch is never strong and
    // trace length collapses to unique chains (paper Table I).
    B.iload(4);
    B.iconst(2038);
    B.branch(Opcode::IfIcmpGe, Rare);
    B.iload(4);
    B.invokestatic(EmitCode);
    B.iload(1);
    B.emit(Opcode::Iadd);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.istore(1);
    B.branch(Opcode::Goto, Join);
    B.bind(Rare);
    // Miss: emit a literal and reset part of the code table.
    B.iload(1);
    B.iload(4);
    B.emit(Opcode::Isub);
    B.iload(0);
    B.emit(Opcode::Ixor);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.istore(1);
    B.bind(Join);
    B.iinc(2, 1);
    B.branch(Opcode::Goto, Inner);
    B.bind(InnerEnd);

    // Output flush: 384 dispatches into the buffer-routine population.
    B.iconst(0);
    B.istore(5);
    B.bind(Flush);
    B.iload(5);
    B.iconst(384);
    B.branch(Opcode::IfIcmpGe, FlushEnd);
    B.iload(0);
    B.invokestatic(Lcg);
    B.istore(0);
    // arg = total + f; selector = seed % 96
    B.iload(1);
    B.iload(5);
    B.emit(Opcode::Iadd);
    B.iload(0);
    B.iconst(static_cast<int32_t>(TailWidth));
    B.emit(Opcode::Irem);
    emitTailDispatch(B, Tail);
    B.iload(1);
    B.emit(Opcode::Iadd);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.istore(1);
    B.iinc(5, 1);
    B.branch(Opcode::Goto, Flush);
    B.bind(FlushEnd);

    B.iload(1);
    B.emit(Opcode::Iprint);
    B.iinc(3, 1);
    B.branch(Opcode::Goto, Outer);

    B.bind(OuterEnd);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}
